#include "core/budget.h"

#include "common/error.h"

namespace fedl::core {

BudgetLedger::BudgetLedger(double total) : total_(total) {
  FEDL_CHECK_GT(total, 0.0) << "budget must be positive";
}

void BudgetLedger::charge(double amount) {
  FEDL_CHECK_GE(amount, 0.0);
  // Relative slack absorbs accumulation error from summing per-client rents;
  // anything beyond it is a real overdraw and must fail loudly.
  const double slack = 1e-9 * (1.0 + total_);
  FEDL_CHECK_LE(spent_ + amount, total_ + slack)
      << "budget overdraw: spent " << spent_ << " + charge " << amount
      << " exceeds total " << total_;
  spent_ += amount;
}

HorizonBounds BudgetLedger::horizon_bounds(double budget, std::size_t n,
                                           double min_cost, double max_cost) {
  if (budget <= 0.0 || n == 0 || min_cost <= 0.0 || max_cost < min_cost)
    throw ConfigError("horizon_bounds: invalid budget/n/cost range");
  HorizonBounds hb;
  hb.lower = budget / (static_cast<double>(n) * max_cost);
  hb.upper = budget / (static_cast<double>(n) * min_cost);
  return hb;
}

}  // namespace fedl::core
