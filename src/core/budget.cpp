#include "core/budget.h"

#include "common/error.h"

namespace fedl::core {

BudgetLedger::BudgetLedger(double total) : total_(total) {
  FEDL_CHECK_GT(total, 0.0) << "budget must be positive";
}

void BudgetLedger::charge(double amount) {
  FEDL_CHECK_GE(amount, 0.0);
  spent_ += amount;
}

HorizonBounds BudgetLedger::horizon_bounds(double budget, std::size_t n,
                                           double min_cost, double max_cost) {
  if (budget <= 0.0 || n == 0 || min_cost <= 0.0 || max_cost < min_cost)
    throw ConfigError("horizon_bounds: invalid budget/n/cost range");
  HorizonBounds hb;
  hb.lower = budget / (static_cast<double>(n) * max_cost);
  hb.upper = budget / (static_cast<double>(n) * min_cost);
  return hb;
}

}  // namespace fedl::core
