// Abstract client-selection strategy — the interface FedL and every baseline
// implement, and the harness drives.
//
// Contract per epoch t:
//  1. decide() is called with the epoch's observation (availability, costs,
//     data volumes, latency estimates) and the budget ledger. The strategy
//     may select only available clients and should respect the remaining
//     budget (the runner stops once the ledger is exhausted, mirroring
//     Algorithm 1's `while C ≥ 0`).
//  2. The engine trains with the returned decision.
//  3. observe() delivers the realized outcome (losses, η, latencies) —
//     the 0-lookahead feedback loop.
#pragma once

#include <string>

#include "core/budget.h"
#include "core/types.h"
#include "fl/engine.h"
#include "sim/environment.h"

namespace fedl::core {

class SelectionStrategy {
 public:
  virtual ~SelectionStrategy() = default;

  virtual Decision decide(const sim::EpochContext& ctx,
                          const BudgetLedger& budget) = 0;

  virtual void observe(const sim::EpochContext& ctx, const Decision& decision,
                       const fl::EpochOutcome& outcome) {
    (void)ctx;
    (void)decision;
    (void)outcome;
  }

  virtual std::string name() const = 0;
};

}  // namespace fedl::core
