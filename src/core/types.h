// Shared decision types for client-selection strategies.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace fedl::core {

// Integer decision for one epoch: who trains, and how many DANE iterations.
struct Decision {
  std::vector<std::size_t> selected;  // client ids
  std::size_t num_iterations = 1;     // l_t
};

// ρ = 1/(1−η) ⇒ l_t = ⌈ρ⌉ (the paper normalizes O(log 1/θ0) to 1).
inline std::size_t rho_to_iters(double rho, std::size_t max_iters) {
  if (!(rho >= 1.0)) rho = 1.0;  // also catches NaN
  const double l = std::ceil(rho - 1e-9);
  return std::min<std::size_t>(max_iters,
                               static_cast<std::size_t>(std::max(1.0, l)));
}

inline double eta_to_rho(double eta) {
  eta = std::clamp(eta, 0.0, 1.0 - 1e-9);
  return 1.0 / (1.0 - eta);
}

inline double rho_to_eta(double rho) {
  rho = std::max(1.0, rho);
  return 1.0 - 1.0 / rho;
}

}  // namespace fedl::core
