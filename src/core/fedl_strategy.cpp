#include "core/fedl_strategy.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "obs/metrics.h"

namespace fedl::core {
namespace {

// Clients whose post-rounding selection bit had to be flipped to bring the
// integral selection back under min(cap, remaining budget).
const obs::Counter& repaired_clients() {
  static const obs::Counter c("budget.repaired_clients");
  return c;
}

}  // namespace

FedLStrategy::FedLStrategy(std::size_t num_clients, FedLConfig cfg)
    : cfg_(cfg),
      learner_(num_clients, cfg.learner),
      rng_(cfg.seed),
      participation_(num_clients) {}

void FedLStrategy::record_fraction(std::size_t epoch) {
  const std::size_t cap = std::max<std::size_t>(cfg_.fraction_history, 1);
  if (frac_history_.size() < cap) {
    frac_history_.emplace_back(epoch, last_frac_);
    return;
  }
  frac_history_[frac_next_] = {epoch, last_frac_};
  frac_next_ = (frac_next_ + 1) % cap;
}

Decision FedLStrategy::decide(const sim::EpochContext& ctx,
                              const BudgetLedger& budget) {
  Decision dec;
  last_frac_ = learner_.decide(ctx, budget);
  const std::size_t k = last_frac_.ids.size();
  if (k == 0) {
    record_fraction(ctx.epoch);
    return dec;
  }

  // Fairness extension (future work, §7): boost the fraction of clients
  // whose long-term participation rate trails the quota, proportionally to
  // the shortfall. Applied pre-rounding so RDCS's marginal guarantee holds
  // for the adjusted fractions.
  if (cfg_.fairness.enabled &&
      participation_.epochs() >= cfg_.fairness.warmup_epochs) {
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t id = last_frac_.ids[i];
      const double shortfall =
          cfg_.fairness.min_rate - participation_.rate(id);
      if (shortfall > 0.0) {
        last_frac_.x[i] = std::min(
            1.0, last_frac_.x[i] + cfg_.fairness.boost * shortfall /
                                       cfg_.fairness.min_rate);
      }
    }
  }

  record_fraction(ctx.epoch);

  // Round the fractional selections (Algorithm 2) on a copy: observe()
  // consumes the fractional x̃, so last_frac_.x must stay fractional.
  rounded_x_ = last_frac_.x;
  identity_idx_.resize(k);
  std::iota(identity_idx_.begin(), identity_idx_.end(), std::size_t{0});
  if (cfg_.independent_rounding) {
    independent_round_subset(rounded_x_, identity_idx_, rng_);
  } else {
    rdcs_round_subset(rounded_x_, identity_idx_, rng_, rdcs_scratch_);
  }

  // --- feasibility repair ---------------------------------------------------
  // RDCS preserves Σx̃ in expectation but a realization can land below the
  // participation floor or above the budget cap (Algorithm 2 preserves Σx,
  // not Σc·x). Repair deterministically against the learner's own feasible
  // region: floor = n_eff (n_min shrunk to what the remaining budget can
  // rent — NOT the raw n_min, which may be unaffordable), ceiling =
  // min(cap, remaining).
  order_.resize(k);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::stable_sort(order_.begin(), order_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return last_frac_.x[a] > last_frac_.x[b];
                   });

  const std::size_t n_eff = std::min<std::size_t>(
      std::max<std::size_t>(last_frac_.n_eff, 1), k);
  std::size_t count = 0;
  for (std::size_t i = 0; i < k; ++i)
    count += rounded_x_[i] > 0.5 ? 1u : 0u;
  for (std::size_t oi = 0; oi < k && count < n_eff; ++oi) {
    const std::size_t i = order_[oi];
    if (rounded_x_[i] < 0.5) {
      rounded_x_[i] = 1.0;
      ++count;
    }
  }

  // Budget repair: drop rounded-up clients most-expensive-first, never below
  // the n_eff floor, until Σc ≤ min(cap, remaining). If the floor is reached
  // and the selection is still over, fall back to the n_eff cheapest
  // candidates — affordable by the learner's construction of n_eff, so the
  // committed selection can never overdraw the ledger.
  const double limit = std::min(last_frac_.cap, budget.remaining());
  double cost = 0.0;
  for (std::size_t i = 0; i < k; ++i)
    if (rounded_x_[i] > 0.5) cost += last_frac_.cost[i];
  std::size_t repaired = 0;
  if (cost > limit) {
    cost_order_.resize(k);
    std::iota(cost_order_.begin(), cost_order_.end(), std::size_t{0});
    std::stable_sort(cost_order_.begin(), cost_order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return last_frac_.cost[a] > last_frac_.cost[b];
                     });
    for (std::size_t oi = 0; oi < k; ++oi) {
      if (cost <= limit || count <= n_eff) break;
      const std::size_t i = cost_order_[oi];
      if (rounded_x_[i] < 0.5) continue;
      rounded_x_[i] = 0.0;
      --count;
      cost -= last_frac_.cost[i];
      ++repaired;
    }
    if (cost > limit) {
      // At the floor and still over the cap: swap to the cheapest n_eff.
      std::stable_sort(cost_order_.begin(), cost_order_.end(),
                       [&](std::size_t a, std::size_t b) {
                         return last_frac_.cost[a] < last_frac_.cost[b];
                       });
      target_.assign(k, 0);
      for (std::size_t oi = 0; oi < n_eff; ++oi)
        target_[cost_order_[oi]] = 1;
      cost = 0.0;
      count = n_eff;
      for (std::size_t i = 0; i < k; ++i) {
        const bool was = rounded_x_[i] > 0.5;
        const bool now = target_[i] != 0;
        if (was != now) ++repaired;
        rounded_x_[i] = now ? 1.0 : 0.0;
        if (now) cost += last_frac_.cost[i];
      }
    }
    repaired_clients().add(static_cast<std::uint64_t>(repaired));
  }
  FEDL_CHECK_LE(cost, limit + 1e-9 * (1.0 + limit))
      << "post-repair selection exceeds the budget cap";

  for (std::size_t i = 0; i < k; ++i)
    if (rounded_x_[i] > 0.5) dec.selected.push_back(last_frac_.ids[i]);
  dec.num_iterations = rho_to_iters(last_frac_.rho, cfg_.l_max);
  participation_.record(last_frac_.ids, dec.selected);

  FEDL_DEBUG << "FedL: |S|=" << dec.selected.size()
             << " l=" << dec.num_iterations << " rho=" << last_frac_.rho;
  return dec;
}

void FedLStrategy::observe(const sim::EpochContext& ctx,
                           const Decision& decision,
                           const fl::EpochOutcome& outcome) {
  (void)decision;
  // Match the outcome to the fractional decision of ITS epoch: the
  // event-driven harness delivers feedback out of order, after newer
  // decides have overwritten last_frac_. Fall back to last_frac_ when the
  // epoch is not in the ring (history too small, or a caller observing
  // synthetic outcomes) — with fraction_history == 1 the ring holds exactly
  // the last decide, so this is the previous behavior verbatim.
  const FractionalDecision* frac = &last_frac_;
  for (const auto& entry : frac_history_) {
    if (entry.first == ctx.epoch) {
      frac = &entry.second;
      break;
    }
  }
  if (frac->ids.empty()) return;
  learner_.observe(ctx, *frac, outcome);
}

}  // namespace fedl::core
