#include "core/fedl_strategy.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace fedl::core {

FedLStrategy::FedLStrategy(std::size_t num_clients, FedLConfig cfg)
    : cfg_(cfg),
      learner_(num_clients, cfg.learner),
      rng_(cfg.seed),
      participation_(num_clients) {}

Decision FedLStrategy::decide(const sim::EpochContext& ctx,
                              const BudgetLedger& budget) {
  Decision dec;
  last_frac_ = learner_.decide(ctx, budget);
  const std::size_t k = last_frac_.ids.size();
  if (k == 0) return dec;

  // Fairness extension (future work, §7): boost the fraction of clients
  // whose long-term participation rate trails the quota, proportionally to
  // the shortfall. Applied pre-rounding so RDCS's marginal guarantee holds
  // for the adjusted fractions.
  if (cfg_.fairness.enabled &&
      participation_.epochs() >= cfg_.fairness.warmup_epochs) {
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t id = last_frac_.ids[i];
      const double shortfall =
          cfg_.fairness.min_rate - participation_.rate(id);
      if (shortfall > 0.0) {
        last_frac_.x[i] = std::min(
            1.0, last_frac_.x[i] + cfg_.fairness.boost * shortfall /
                                       cfg_.fairness.min_rate);
      }
    }
  }

  // Round the fractional selections (Algorithm 2).
  std::vector<int> rounded =
      cfg_.independent_rounding
          ? independent_round(last_frac_.x, rng_)
          : rdcs_round(last_frac_.x, rng_);

  // --- feasibility repair ---------------------------------------------------
  // RDCS preserves Σx̃ in expectation but a realization can land below n or
  // above the budget; repair deterministically, preferring the learner's own
  // ranking (largest fraction first for top-ups, smallest first for drops).
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return last_frac_.x[a] > last_frac_.x[b];
  });

  const std::size_t n_eff =
      std::min<std::size_t>(cfg_.learner.n_min, k);
  std::size_t count = 0;
  for (int r : rounded) count += static_cast<std::size_t>(r);
  for (std::size_t oi = 0; oi < k && count < n_eff; ++oi) {
    const std::size_t i = order[oi];
    if (!rounded[i]) {
      rounded[i] = 1;
      ++count;
    }
  }

  // Budget repair: drop the lowest-fraction selections until affordable,
  // but keep at least one client when any single client is affordable.
  auto total_cost = [&]() {
    double c = 0.0;
    for (std::size_t i = 0; i < k; ++i)
      if (rounded[i]) c += ctx.available[i].cost;
    return c;
  };
  double cost = total_cost();
  if (cost > budget.remaining()) {
    for (auto it = order.rbegin(); it != order.rend() && count > 1; ++it) {
      const std::size_t i = *it;
      if (!rounded[i]) continue;
      if (cost <= budget.remaining()) break;
      rounded[i] = 0;
      --count;
      cost -= ctx.available[i].cost;
    }
    if (cost > budget.remaining() && count == 1) {
      // Even one client is unaffordable: swap to the cheapest, or give up.
      std::size_t cur = k;
      for (std::size_t i = 0; i < k; ++i)
        if (rounded[i]) cur = i;
      std::size_t cheapest = 0;
      for (std::size_t i = 1; i < k; ++i)
        if (ctx.available[i].cost < ctx.available[cheapest].cost) cheapest = i;
      rounded[cur] = 0;
      if (ctx.available[cheapest].cost <= budget.remaining())
        rounded[cheapest] = 1;
    }
  }

  for (std::size_t i = 0; i < k; ++i)
    if (rounded[i]) dec.selected.push_back(last_frac_.ids[i]);
  dec.num_iterations = rho_to_iters(last_frac_.rho, cfg_.l_max);
  participation_.record(last_frac_.ids, dec.selected);

  FEDL_DEBUG << "FedL: |S|=" << dec.selected.size()
             << " l=" << dec.num_iterations << " rho=" << last_frac_.rho;
  return dec;
}

void FedLStrategy::observe(const sim::EpochContext& ctx,
                           const Decision& decision,
                           const fl::EpochOutcome& outcome) {
  (void)decision;
  if (last_frac_.ids.empty()) return;
  learner_.observe(ctx, last_frac_, outcome);
}

}  // namespace fedl::core
