// Staleness-aware aggregation weights for the event-driven engine.
//
// In buffered-asynchronous FL (FedBuff-style, PAPERS.md arXiv:2106.06639
// lineage) a client's update d_k was computed against the global model
// version v_dispatch; by the time it is aggregated the server is at
// v_now ≥ v_dispatch. The staleness s = v_now − v_dispatch measures how many
// server aggregations the update missed, and its contribution is damped
// polynomially so stragglers still help but cannot drag the model toward a
// stale descent direction:
//
//     damping(s) = 1 / (1 + s)^a ,   a ≥ 0.
//
// a = 0 recovers the undamped buffered mean; a = 1/2 is the common default.
// This lives in src/core next to the selection-layer math (not in src/fl)
// because the weights are pure functions of integers — no engine state — and
// the ablation bench sweeps them the same way it sweeps learner constants.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace fedl::core {

// Damping factor 1/(1+s)^a for one update of staleness s.
inline double staleness_damping(std::size_t staleness, double exponent) {
  if (exponent == 0.0) return 1.0;
  return std::pow(1.0 + static_cast<double>(staleness), -exponent);
}

// Per-update aggregation weights for one buffer flush:
// w ← w + Σ_i weight_i · d_i  with  weight_i = damping(s_i) / |S_i|, where
// |S_i| is the size of the cohort update i was dispatched with. Normalizing
// by the DISPATCH cohort (not the buffer size |B|) keeps the server step
// per completed update identical to the synchronous selected-mean rule:
// a cohort's flushes telescope to exactly the lockstep mean when fresh
// (every s_i = 0), no matter how the buffer boundary K slices the cohort.
// Normalizing by |B| instead would scale the per-update step by |S|/K — an
// overshoot that raises the noise floor as K shrinks, which is precisely
// the regime event-driven execution wants to live in. Staleness only ever
// shrinks a contribution, never inflates its neighbors'.
inline std::vector<double> staleness_weights(
    const std::vector<std::size_t>& staleness,
    const std::vector<std::size_t>& cohort_sizes, double exponent) {
  std::vector<double> w(staleness.size(), 0.0);
  for (std::size_t i = 0; i < staleness.size(); ++i) {
    const double denom =
        static_cast<double>(cohort_sizes[i] > 0 ? cohort_sizes[i] : 1);
    w[i] = staleness_damping(staleness[i], exponent) / denom;
  }
  return w;
}

}  // namespace fedl::core
