// Dynamic regret and dynamic fit tracking (§5).
//
//   Reg_o = Σ_t f_t(Φ_t) − Σ_t f_t(Φ*_t),   f_t(Φ) = Σ_k ρ x_k (τ^loc+τ^cm)
//   Fit_o = ‖[Σ_t h_t(Φ_t)]+‖
//
// Φ*_t is the per-epoch minimizer of f_t over the relaxed feasible set: for
// a fixed minimum participation n and per-epoch budget cap, f_t is minimized
// at ρ = 1 with the n cheapest-latency affordable clients — computable in
// closed form by the greedy routine below (the same structure the paper's
// oracle uses).
#pragma once

#include <cstddef>
#include <vector>

#include "core/budget.h"
#include "core/types.h"
#include "fl/engine.h"
#include "sim/environment.h"

namespace fedl::core {

struct RegretConfig {
  double theta = 0.5;     // θ in h^0
  std::size_t n_min = 5;  // minimum participation (for Φ*_t)
  double pacing = 1.5;    // same per-epoch cap the strategies use
};

// Per-epoch optimum value f_t(Φ*_t): the n fastest clients under the cost
// cap at ρ = 1. Returns 0 when nothing is available. When `picked` is
// non-null it receives the chosen client ids (the support of Φ*_t).
double per_epoch_optimum(const sim::EpochContext& ctx, double cost_cap,
                         std::size_t n_min,
                         std::vector<std::size_t>* picked = nullptr);

// Assumption 1–2 constants for Theorem 2's bound R_{T_C} (13a). Callers pick
// them for their scenario: G_f bounds ‖∇f_t‖, G_h bounds ‖h_t‖, R is the
// feasible-domain radius, ξ the Slater constant of Assumption 2.
struct TheoremConstants {
  double g_f = 1.0;
  double g_h = 1.0;
  double radius = 1.0;
  double xi = 1.0;
  double beta = 0.2;
  double delta = 0.5;
};

// ‖μ̂‖ from Lemma 2 (12). `v_h_step_max` is V̂(h), the largest one-step
// constraint drift; must be < xi (Assumption 2) or the bound is vacuous
// (returns +inf).
double lemma2_mu_bound(const TheoremConstants& c, double v_h_step_max);

// R_{T_C} from Theorem 2 (13a) given the measured path lengths
// V({Φ*}) and V({h}) and the horizon T_C.
double theorem2_regret_bound(const TheoremConstants& c, double v_phi,
                             double v_h, double v_h_step_max, double t_c);

// Fit bound ‖μ̂‖/δ from Theorem 2 (13).
double theorem2_fit_bound(const TheoremConstants& c, double v_h_step_max);

class RegretTracker {
 public:
  RegretTracker(std::size_t num_clients, RegretConfig cfg);

  // Record one realized epoch of an online strategy.
  void record(const sim::EpochContext& ctx, const BudgetLedger& budget,
              const Decision& decision, double rho,
              const fl::EpochOutcome& outcome);

  std::size_t epochs() const { return epochs_; }
  double online_objective() const { return online_obj_; }
  double offline_objective() const { return offline_obj_; }
  double regret() const { return online_obj_ - offline_obj_; }
  // ‖[Σ_t h_t]+‖ over the (M+1)-dimensional accumulated constraint vector.
  double fit() const;
  const std::vector<double>& fit_vector() const { return fit_acc_; }

  // Measured path lengths for Theorem 2's bound:
  // V({Φ*}) = Σ‖Φ*_t − Φ*_{t−1}‖ over the greedy per-epoch optima (13b),
  // V({h})  = Σ‖[h_t − h_{t−1}]+‖ evaluated at the realized decisions — an
  // observable surrogate of (13c)'s max over Φ (documented approximation).
  double v_phi() const { return v_phi_; }
  double v_h() const { return v_h_; }
  double v_h_step_max() const { return v_h_step_max_; }

 private:
  RegretConfig cfg_;
  std::size_t num_clients_;
  std::size_t epochs_ = 0;
  double online_obj_ = 0.0;
  double offline_obj_ = 0.0;
  std::vector<double> fit_acc_;  // Σ_t h_t(Φ_t), dims [h^0, h^1..h^M]
  double v_phi_ = 0.0;
  double v_h_ = 0.0;
  double v_h_step_max_ = 0.0;
  std::vector<double> prev_opt_;  // Φ*_{t−1} indicator (+ρ), dims M+1
  std::vector<double> prev_h_;    // h_{t−1} at the realized decision
  bool has_prev_ = false;
};

}  // namespace fedl::core
