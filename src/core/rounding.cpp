#include "core/rounding.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace fedl::core {
namespace {

constexpr double kIntegralTol = 1e-12;

bool is_fractional(double v) {
  return v > kIntegralTol && v < 1.0 - kIntegralTol;
}

}  // namespace

void rdcs_round_subset(std::vector<double>& x,
                       const std::vector<std::size_t>& indices, Rng& rng,
                       RdcsScratch& scratch) {
  for (std::size_t k : indices) {
    FEDL_CHECK_LT(k, x.size());
    FEDL_CHECK(x[k] >= -kIntegralTol && x[k] <= 1.0 + kIntegralTol)
        << "fraction out of [0,1]: " << x[k];
    x[k] = std::clamp(x[k], 0.0, 1.0);
  }

  // Active list of fractional coordinates.
  std::vector<std::size_t>& frac = scratch.frac;
  std::vector<std::size_t>& next = scratch.next;
  frac.clear();
  for (std::size_t k : indices)
    if (is_fractional(x[k])) frac.push_back(k);

  // Algorithm 2's pairing step, iterated until ≤ 1 fractional coordinate
  // remains. Each step makes at least one of the pair integral, so the loop
  // terminates in at most |frac| − 1 steps.
  while (frac.size() >= 2) {
    // Randomly choose two clients i and j (Alg. 2 line 1).
    const std::size_t pi = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(frac.size()) - 1));
    std::size_t pj = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(frac.size()) - 2));
    if (pj >= pi) ++pj;
    const std::size_t i = frac[pi];
    const std::size_t j = frac[pj];

    // ζ1 = min{1 − x̃_i, x̃_j}, ζ2 = min{x̃_i, 1 − x̃_j} (lines 3–4).
    const double zeta1 = std::min(1.0 - x[i], x[j]);
    const double zeta2 = std::min(x[i], 1.0 - x[j]);
    FEDL_CHECK_GT(zeta1 + zeta2, 0.0);

    // With prob ζ2/(ζ1+ζ2): x_i += ζ1, x_j −= ζ1; else x_i −= ζ2, x_j += ζ2
    // (lines 5–8). Mass moves between the pair; the sum is invariant.
    if (rng.uniform() < zeta2 / (zeta1 + zeta2)) {
      x[i] += zeta1;
      x[j] -= zeta1;
    } else {
      x[i] -= zeta2;
      x[j] += zeta2;
    }

    // Rebuild the active pair membership (at least one became integral).
    next.clear();
    for (std::size_t k : frac)
      if (is_fractional(x[k])) next.push_back(k);
    FEDL_CHECK_LT(next.size(), frac.size())
        << "RDCS pairing step failed to fix a coordinate";
    std::swap(frac, next);
  }

  // Residual coordinate (when Σ x̃ is non-integral): independent rounding of
  // the single leftover keeps E[x_k] = x̃_k.
  if (frac.size() == 1) {
    const std::size_t k = frac[0];
    x[k] = rng.uniform() < x[k] ? 1.0 : 0.0;
  }

  for (std::size_t k : indices) x[k] = x[k] > 0.5 ? 1.0 : 0.0;
}

void independent_round_subset(std::vector<double>& x,
                              const std::vector<std::size_t>& indices,
                              Rng& rng) {
  for (std::size_t k : indices) {
    FEDL_CHECK_LT(k, x.size());
    const double v = std::clamp(x[k], 0.0, 1.0);
    x[k] = rng.uniform() < v ? 1.0 : 0.0;
  }
}

std::vector<int> rdcs_round(const std::vector<double>& fractions, Rng& rng) {
  std::vector<double> x = fractions;
  std::vector<std::size_t> indices(x.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  RdcsScratch scratch;
  rdcs_round_subset(x, indices, rng, scratch);
  std::vector<int> out(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) out[k] = x[k] > 0.5 ? 1 : 0;
  return out;
}

std::vector<int> independent_round(const std::vector<double>& fractions,
                                   Rng& rng) {
  std::vector<double> x = fractions;
  std::vector<std::size_t> indices(x.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  independent_round_subset(x, indices, rng);
  std::vector<int> out(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) out[k] = x[k] > 0.5 ? 1 : 0;
  return out;
}

}  // namespace fedl::core
