#include "core/offline_oracle.h"

#include <limits>

#include "common/error.h"

namespace fedl::core {

ExactSelection exact_per_epoch_optimum(const sim::EpochContext& ctx,
                                       double cost_cap, std::size_t n_min) {
  const std::size_t k = ctx.available.size();
  ExactSelection best;
  if (k == 0) return best;
  FEDL_CHECK_LE(k, 20u) << "exact enumeration is 2^|E_t|; instance too large";

  const std::size_t need = std::min<std::size_t>(n_min, k);
  best.objective = std::numeric_limits<double>::infinity();

  for (std::uint32_t mask = 1; mask < (1u << k); ++mask) {
    const std::size_t count = static_cast<std::size_t>(__builtin_popcount(mask));
    if (count < need) continue;
    double cost = 0.0;
    double objective = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      if (!(mask & (1u << i))) continue;
      cost += ctx.available[i].cost;
      objective += ctx.available[i].tau_loc + ctx.available[i].tau_cm_est;
    }
    if (cost > cost_cap) continue;
    if (objective < best.objective) {
      best.objective = objective;
      best.cost = cost;
      best.feasible = true;
      best.ids.clear();
      for (std::size_t i = 0; i < k; ++i)
        if (mask & (1u << i)) best.ids.push_back(ctx.available[i].id);
    }
  }
  if (!best.feasible) {
    best.objective = 0.0;
    best.ids.clear();
  }
  return best;
}

}  // namespace fedl::core
