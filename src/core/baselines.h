// The paper's comparison schemes (§6.1) plus a 1-lookahead greedy oracle
// used by the regret analysis.
//
//  * FedAvg [19]: the server selects participants uniformly at random.
//  * FedCS [21]: resource-aware — selects as many clients as possible whose
//    round latency fits a fixed deadline.
//  * Pow-d [5]: power-of-choice — samples d candidates, keeps the n with the
//    largest (estimated) local loss.
//
// All baselines are budget-aware in the same way FedL is (they stop renting
// when the ledger runs dry) but none adapts the iteration count: they use a
// fixed l per epoch, as in their original papers.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "core/strategy.h"

namespace fedl::core {

struct BaselineConfig {
  std::size_t n_select = 5;      // participants per epoch
  std::size_t iterations = 3;    // fixed l_t
  double pacing = 1.5;           // per-epoch spend cap multiplier (c̄·n)
  std::uint64_t seed = 29;
};

// Shared budget pacing: largest affordable per-epoch spend for this scheme.
double per_epoch_cap(const sim::EpochContext& ctx, const BudgetLedger& budget,
                     std::size_t n, double pacing);

class FedAvgStrategy : public SelectionStrategy {
 public:
  explicit FedAvgStrategy(BaselineConfig cfg);
  Decision decide(const sim::EpochContext& ctx,
                  const BudgetLedger& budget) override;
  std::string name() const override { return "FedAvg"; }

 private:
  BaselineConfig cfg_;
  Rng rng_;
};

struct FedCsConfig {
  BaselineConfig base;
  // Per-epoch deadline (s). Clients are added fastest-first while the round
  // (l fixed iterations) still fits the deadline.
  double deadline_s = 50.0;
};

class FedCsStrategy : public SelectionStrategy {
 public:
  explicit FedCsStrategy(FedCsConfig cfg);
  Decision decide(const sim::EpochContext& ctx,
                  const BudgetLedger& budget) override;
  std::string name() const override { return "FedCS"; }

 private:
  FedCsConfig cfg_;
  Rng rng_;
};

struct PowDConfig {
  BaselineConfig base;
  std::size_t d = 20;  // candidate sample size (d ≥ n_select)
};

class PowDStrategy : public SelectionStrategy {
 public:
  PowDStrategy(std::size_t num_clients, PowDConfig cfg);
  Decision decide(const sim::EpochContext& ctx,
                  const BudgetLedger& budget) override;
  void observe(const sim::EpochContext& ctx, const Decision& decision,
               const fl::EpochOutcome& outcome) override;
  std::string name() const override { return "Pow-d"; }

 private:
  PowDConfig cfg_;
  Rng rng_;
  std::vector<double> loss_est_;  // last known local loss per client
};

// 1-lookahead greedy: picks the n fastest available clients this epoch at
// ρ = 1. Not a paper baseline — it approximates the per-epoch optimum Φ*_t
// for the regret benches (A2).
class GreedyOracleStrategy : public SelectionStrategy {
 public:
  explicit GreedyOracleStrategy(BaselineConfig cfg);
  Decision decide(const sim::EpochContext& ctx,
                  const BudgetLedger& budget) override;
  std::string name() const override { return "Oracle"; }

 private:
  BaselineConfig cfg_;
};

}  // namespace fedl::core
