// Pooled sparse per-client state for the selection layer.
//
// At the M = 10⁵–10⁶ roster scale of mobile FL deployments (FedCS's
// many-client setting), any per-epoch structure indexed densely by client id
// dominates both time and memory: only the availability set E_t (and the
// historically touched clients) ever carry information. The two containers
// here give the learner O(active) memory and O(1) expected access:
//
//  * IdSlotMap — open-addressed id→slot hash map (power-of-two capacity,
//    linear probing, SplitMix64 finalizer hash). `clear()` is O(1) via
//    generation stamps, so it doubles as a per-epoch scratch index.
//  * ClientStatePool — the learner's persistent per-client state arena.
//    Misses return a shared default slot (never-seen clients cost nothing);
//    `touch()` allocates a slot on first write.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.h"

namespace fedl::core {

// Open-addressed map from client id to a caller-defined slot index.
// Insertion order assigns slots 0,1,2,… (the caller typically keys a
// parallel arena by them). No erase; clear() bumps a generation stamp.
class IdSlotMap {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  IdSlotMap() { rehash(kInitialCapacity); }

  // Slot for `id`, or npos when absent (or stale after clear()).
  std::size_t find(std::size_t id) const {
    const std::size_t mask = table_.size() - 1;
    std::size_t i = hash(id) & mask;
    while (true) {
      const Entry& e = table_[i];
      if (e.gen != gen_ || e.id_plus1 == 0) return npos;
      if (e.id_plus1 == id + 1) return e.slot;
      i = (i + 1) & mask;
    }
  }

  // Slot for `id`, inserting the next sequential slot index when absent.
  // Returns the slot; sets `inserted` when the id was new this generation.
  std::size_t insert(std::size_t id, bool* inserted = nullptr) {
    if ((size_ + 1) * 10 >= table_.size() * 7) rehash(table_.size() * 2);
    const std::size_t mask = table_.size() - 1;
    std::size_t i = hash(id) & mask;
    while (true) {
      Entry& e = table_[i];
      if (e.gen != gen_ || e.id_plus1 == 0) {
        e.id_plus1 = id + 1;
        e.slot = size_;
        e.gen = gen_;
        ++size_;
        if (inserted != nullptr) *inserted = true;
        return e.slot;
      }
      if (e.id_plus1 == id + 1) {
        if (inserted != nullptr) *inserted = false;
        return e.slot;
      }
      i = (i + 1) & mask;
    }
  }

  // O(1): entries written under older generations read as empty.
  void clear() {
    ++gen_;
    size_ = 0;
  }

  std::size_t size() const { return size_; }

  std::size_t capacity_bytes() const {
    return table_.size() * sizeof(Entry);
  }

 private:
  struct Entry {
    std::size_t id_plus1 = 0;  // 0 = never written
    std::size_t slot = 0;
    std::uint32_t gen = 0;
  };

  static constexpr std::size_t kInitialCapacity = 64;

  static std::size_t hash(std::size_t id) {
    // SplitMix64 finalizer: full-avalanche, so sequential ids spread.
    std::uint64_t z = static_cast<std::uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Entry> old = std::move(table_);
    table_.assign(new_capacity, Entry{});
    const std::size_t mask = table_.size() - 1;
    for (const Entry& e : old) {
      if (e.gen != gen_ || e.id_plus1 == 0) continue;
      std::size_t i = hash(e.id_plus1 - 1) & mask;
      while (table_[i].id_plus1 != 0 && table_[i].gen == gen_)
        i = (i + 1) & mask;
      table_[i] = e;
    }
  }

  std::vector<Entry> table_;
  std::size_t size_ = 0;
  std::uint32_t gen_ = 0;
};

// One pooled slot of learner state per *touched* client (paper symbols:
// fractional memory x̃_k, local accuracy estimate η̂_k, per-iteration loss
// reduction Δ̂_k, dual μ^k of the local-convergence constraint h^k, and the
// observation count n_k feeding the width-pruning exploration bonus).
struct ClientLearnerState {
  double xfrac = 0.0;
  double eta = 0.0;
  double delta = 0.0;
  double mu = 0.0;
  // Epochs in which this client produced an η/Δ observation (selected and
  // completed ≥ 1 iteration). Stored as double so the pool stays a flat
  // arena of one type; only ever incremented by 1.
  double seen = 0.0;
};

// Arena of ClientLearnerState keyed by client id. Reads of never-touched
// clients return the configured defaults without allocating.
class ClientStatePool {
 public:
  explicit ClientStatePool(ClientLearnerState defaults)
      : defaults_(defaults) {}

  const ClientLearnerState& defaults() const { return defaults_; }

  // Read-only view: the client's slot, or the defaults when never touched.
  const ClientLearnerState& get(std::size_t id) const {
    const std::size_t slot = index_.find(id);
    return slot == IdSlotMap::npos ? defaults_ : slots_[slot];
  }

  bool contains(std::size_t id) const {
    return index_.find(id) != IdSlotMap::npos;
  }

  // Writable slot, allocated (default-initialized) on first touch.
  ClientLearnerState& touch(std::size_t id) {
    bool inserted = false;
    const std::size_t slot = index_.insert(id, &inserted);
    if (inserted) {
      FEDL_CHECK_EQ(slot, slots_.size());
      slots_.push_back(defaults_);
    }
    return slots_[slot];
  }

  // Number of clients that own a slot (the "active" roster).
  std::size_t active() const { return slots_.size(); }

  // Resident footprint of the pooled state (arena + index table).
  std::size_t resident_bytes() const {
    return slots_.capacity() * sizeof(ClientLearnerState) +
           index_.capacity_bytes();
  }

 private:
  ClientLearnerState defaults_;
  IdSlotMap index_;
  std::vector<ClientLearnerState> slots_;
};

}  // namespace fedl::core
