// Selection fairness — the extension the paper's conclusion names as future
// work ("we will consider selection fairness to further expand the CS
// capabilities"), in the spirit of Huang et al. [11]'s long-term fairness
// quota on client participation rates.
//
// ParticipationTracker maintains each client's long-term participation rate
// (selections / epochs available). FedLStrategy can enforce a minimum rate
// by boosting the fractional selection of under-served clients before
// rounding — the quota enters as a pre-rounding adjustment, so Theorem 3's
// marginal preservation still applies to the adjusted fractions.
// jains_index() is the standard fairness metric reported by the bench.
#pragma once

#include <cstddef>
#include <vector>

namespace fedl::core {

struct FairnessConfig {
  bool enabled = false;
  double min_rate = 0.15;  // target long-term participation rate per client
  double boost = 0.6;      // fraction boost per unit of quota shortfall
  // Rates are meaningless for the first few epochs; hold off until then.
  std::size_t warmup_epochs = 5;
};

class ParticipationTracker {
 public:
  explicit ParticipationTracker(std::size_t num_clients);

  // Record one epoch: who was available and who was selected.
  void record(const std::vector<std::size_t>& available,
              const std::vector<std::size_t>& selected);

  std::size_t epochs() const { return epochs_; }
  std::size_t selections(std::size_t client) const;
  std::size_t availabilities(std::size_t client) const;
  // Long-term participation rate: selections / availabilities (0 when the
  // client has never been available).
  double rate(std::size_t client) const;

  const std::vector<std::size_t>& selection_counts() const {
    return selected_;
  }

 private:
  std::size_t epochs_ = 0;
  std::vector<std::size_t> selected_;
  std::vector<std::size_t> available_;
};

// Jain's fairness index over per-client selection counts:
// (Σx)² / (n·Σx²) ∈ [1/n, 1]; 1 = perfectly even participation.
double jains_index(const std::vector<std::size_t>& counts);

}  // namespace fedl::core
