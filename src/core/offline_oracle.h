// Exact offline solver for the one-shot selection problem, by exhaustive
// enumeration — exponential in |E_t|, usable only for small instances.
//
// Purpose: validate the greedy per-epoch optimum (regret.h) that the regret
// analysis relies on, and provide the true offline reference for P_1 on toy
// scenarios. The greedy routine is provably optimal when the budget cap is
// slack (pick the n fastest); under a tight cap the problem becomes a
// knapsack variant and greedy is only a heuristic — the enumerator measures
// that gap (tests/oracle_test.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "sim/environment.h"

namespace fedl::core {

struct ExactSelection {
  std::vector<std::size_t> ids;  // chosen client ids (empty if infeasible)
  double objective = 0.0;        // Σ_{k∈S} (τ^loc + τ^cm) at ρ = 1
  double cost = 0.0;
  bool feasible = false;
};

// Enumerates every subset of ctx.available with |S| ≥ min(n_min, |E_t|) and
// cost ≤ cost_cap, returning the minimizer of f_t at ρ = 1.
// FEDL_CHECKs |E_t| ≤ 20 to bound the enumeration.
ExactSelection exact_per_epoch_optimum(const sim::EpochContext& ctx,
                                       double cost_cap, std::size_t n_min);

}  // namespace fedl::core
