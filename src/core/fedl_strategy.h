// FedL (Algorithm 1): the full framework — online learner for fractional
// decisions, RDCS (Algorithm 2) to round them, and feasibility repair so the
// committed integer selection always satisfies the per-epoch constraints the
// rounding could have perturbed.
#pragma once

#include <cstdint>
#include <memory>

#include "core/fairness.h"
#include "core/online_learner.h"
#include "core/rounding.h"
#include "core/strategy.h"

namespace fedl::core {

struct FedLConfig {
  LearnerConfig learner;
  std::size_t l_max = 8;  // cap on DANE iterations per epoch (= ⌈ρ_max⌉)
  // Use independent rounding instead of RDCS (A1 ablation only).
  bool independent_rounding = false;
  // Long-term selection fairness (the paper's future-work extension):
  // under-served clients get their fractions boosted before rounding.
  FairnessConfig fairness;
  // Fractional decisions retained for delayed feedback. Lockstep execution
  // observes epoch t's outcome before deciding t+1, so 1 (the default)
  // suffices; the event-driven harness resolves cohorts out of order while
  // newer decides overwrite last_fraction(), so it raises this to cover the
  // deepest straggler overlap. observe() matches the outcome to the
  // decision of the same epoch; with history 1 that lookup degenerates to
  // the previous behavior exactly.
  std::size_t fraction_history = 1;
  std::uint64_t seed = 23;
};

class FedLStrategy : public SelectionStrategy {
 public:
  FedLStrategy(std::size_t num_clients, FedLConfig cfg);

  Decision decide(const sim::EpochContext& ctx,
                  const BudgetLedger& budget) override;
  void observe(const sim::EpochContext& ctx, const Decision& decision,
               const fl::EpochOutcome& outcome) override;
  std::string name() const override {
    std::string n = "FedL";
    if (cfg_.independent_rounding) n += "-Ind";
    if (cfg_.fairness.enabled) n += "-Fair";
    return n;
  }

  const OnlineLearner& learner() const { return learner_; }
  // Fractional decision of the last decide() call (for regret analysis).
  const FractionalDecision& last_fraction() const { return last_frac_; }
  const ParticipationTracker& participation() const { return participation_; }

 private:
  // Remembers last_frac_ under this epoch so a delayed observe() can find
  // the decision its outcome belongs to.
  void record_fraction(std::size_t epoch);

  FedLConfig cfg_;
  OnlineLearner learner_;
  Rng rng_;
  FractionalDecision last_frac_;
  ParticipationTracker participation_;
  // Ring of (epoch, fractional decision) pairs, capacity fraction_history.
  std::vector<std::pair<std::size_t, FractionalDecision>> frac_history_;
  std::size_t frac_next_ = 0;

  // Grow-only per-epoch scratch. Rounding works on a copy of the fractions
  // (observe() consumes the fractional x̃) via the in-place subset API.
  std::vector<double> rounded_x_;          // 0/1 after rounding + repair
  std::vector<std::size_t> identity_idx_;  // 0..k-1 index list for rounding
  std::vector<std::size_t> order_;         // fraction-descending ranking
  std::vector<std::size_t> cost_order_;    // cost ranking for repair
  std::vector<unsigned char> target_;      // fallback selection flags
  RdcsScratch rdcs_scratch_;
};

}  // namespace fedl::core
