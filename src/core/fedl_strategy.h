// FedL (Algorithm 1): the full framework — online learner for fractional
// decisions, RDCS (Algorithm 2) to round them, and feasibility repair so the
// committed integer selection always satisfies the per-epoch constraints the
// rounding could have perturbed.
#pragma once

#include <cstdint>
#include <memory>

#include "core/fairness.h"
#include "core/online_learner.h"
#include "core/rounding.h"
#include "core/strategy.h"

namespace fedl::core {

struct FedLConfig {
  LearnerConfig learner;
  std::size_t l_max = 8;  // cap on DANE iterations per epoch (= ⌈ρ_max⌉)
  // Use independent rounding instead of RDCS (A1 ablation only).
  bool independent_rounding = false;
  // Long-term selection fairness (the paper's future-work extension):
  // under-served clients get their fractions boosted before rounding.
  FairnessConfig fairness;
  std::uint64_t seed = 23;
};

class FedLStrategy : public SelectionStrategy {
 public:
  FedLStrategy(std::size_t num_clients, FedLConfig cfg);

  Decision decide(const sim::EpochContext& ctx,
                  const BudgetLedger& budget) override;
  void observe(const sim::EpochContext& ctx, const Decision& decision,
               const fl::EpochOutcome& outcome) override;
  std::string name() const override {
    std::string n = "FedL";
    if (cfg_.independent_rounding) n += "-Ind";
    if (cfg_.fairness.enabled) n += "-Fair";
    return n;
  }

  const OnlineLearner& learner() const { return learner_; }
  // Fractional decision of the last decide() call (for regret analysis).
  const FractionalDecision& last_fraction() const { return last_frac_; }
  const ParticipationTracker& participation() const { return participation_; }

 private:
  FedLConfig cfg_;
  OnlineLearner learner_;
  Rng rng_;
  FractionalDecision last_frac_;
  ParticipationTracker participation_;

  // Grow-only per-epoch scratch. Rounding works on a copy of the fractions
  // (observe() consumes the fractional x̃) via the in-place subset API.
  std::vector<double> rounded_x_;          // 0/1 after rounding + repair
  std::vector<std::size_t> identity_idx_;  // 0..k-1 index list for rounding
  std::vector<std::size_t> order_;         // fraction-descending ranking
  std::vector<std::size_t> cost_order_;    // cost ranking for repair
  std::vector<unsigned char> target_;      // fallback selection flags
  RdcsScratch rdcs_scratch_;
};

}  // namespace fedl::core
