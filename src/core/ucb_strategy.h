// Multi-armed-bandit client selection (Xia et al. [30]) — an additional
// learned baseline beyond the paper's roster. Each client is an arm whose
// reward is its measured per-iteration loss reduction discounted by its
// latency; selection picks the n arms with the highest UCB index
//   r̄_k + α·sqrt(2 ln t / N_k),
// which explores rarely-tried clients and exploits the historically useful
// ones. Unlike FedL it neither adapts the iteration count nor reasons about
// the budget beyond the shared per-epoch cap.
#pragma once

#include <cstdint>
#include <vector>

#include "core/baselines.h"
#include "core/strategy.h"

namespace fedl::core {

struct UcbConfig {
  BaselineConfig base;
  double exploration = 1.0;     // α in the UCB index
  double latency_weight = 1.0;  // reward = Δloss − weight·latency (normalized)
};

class UcbStrategy : public SelectionStrategy {
 public:
  UcbStrategy(std::size_t num_clients, UcbConfig cfg);

  Decision decide(const sim::EpochContext& ctx,
                  const BudgetLedger& budget) override;
  void observe(const sim::EpochContext& ctx, const Decision& decision,
               const fl::EpochOutcome& outcome) override;
  std::string name() const override { return "UCB"; }

  double mean_reward(std::size_t client) const;
  std::size_t pulls(std::size_t client) const;

 private:
  UcbConfig cfg_;
  std::size_t epoch_ = 0;
  std::vector<double> reward_sum_;
  std::vector<std::size_t> pulls_;
};

}  // namespace fedl::core
