#include "core/regret.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/math_util.h"

namespace fedl::core {

double per_epoch_optimum(const sim::EpochContext& ctx, double cost_cap,
                         std::size_t n_min,
                         std::vector<std::size_t>* picked) {
  if (picked) picked->clear();
  const std::size_t k = ctx.available.size();
  if (k == 0) return 0.0;
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& oa = ctx.available[a];
    const auto& ob = ctx.available[b];
    return oa.tau_loc + oa.tau_cm_est < ob.tau_loc + ob.tau_cm_est;
  });
  const std::size_t n = std::min<std::size_t>(n_min, k);
  double value = 0.0;
  double cost = 0.0;
  std::size_t taken = 0;
  std::vector<bool> used(k, false);
  for (std::size_t i : order) {
    if (taken >= n) break;
    const auto& o = ctx.available[i];
    if (cost + o.cost > cost_cap && taken > 0) continue;
    value += o.tau_loc + o.tau_cm_est;  // ρ* = 1
    cost += o.cost;
    ++taken;
    used[i] = true;
    if (picked) picked->push_back(o.id);
  }
  // Fastest-first may run out of affordable clients before reaching n; fill
  // the quota cheapest-first so the minimum-participation constraint (3b)
  // is met whenever the cap permits it at all.
  if (taken < n) {
    std::vector<std::size_t> by_cost(k);
    std::iota(by_cost.begin(), by_cost.end(), 0);
    std::stable_sort(by_cost.begin(), by_cost.end(),
                     [&](std::size_t a, std::size_t b) {
                       return ctx.available[a].cost < ctx.available[b].cost;
                     });
    for (std::size_t i : by_cost) {
      if (taken >= n) break;
      if (used[i]) continue;
      const auto& o = ctx.available[i];
      if (cost + o.cost > cost_cap) continue;
      value += o.tau_loc + o.tau_cm_est;
      cost += o.cost;
      ++taken;
      used[i] = true;
      if (picked) picked->push_back(o.id);
    }
  }
  return value;
}

double lemma2_mu_bound(const TheoremConstants& c, double v_h_step_max) {
  if (v_h_step_max >= c.xi) return std::numeric_limits<double>::infinity();
  const double numerator = 2.0 * c.g_f * c.radius +
                           c.radius * c.radius / (2.0 * c.beta) +
                           c.delta * c.g_h * c.g_h / 2.0;
  return c.delta * c.g_h + numerator / (c.xi - v_h_step_max);
}

double theorem2_regret_bound(const TheoremConstants& c, double v_phi,
                             double v_h, double v_h_step_max, double t_c) {
  const double mu_hat = lemma2_mu_bound(c, v_h_step_max);
  return c.beta * c.g_f * c.g_f * t_c / 2.0 + mu_hat * v_h +
         c.delta * c.g_h * c.g_h * t_c / 2.0 +
         c.radius * v_phi / c.beta +
         c.radius * c.radius / (2.0 * c.beta);
}

double theorem2_fit_bound(const TheoremConstants& c, double v_h_step_max) {
  return lemma2_mu_bound(c, v_h_step_max) / c.delta;
}

RegretTracker::RegretTracker(std::size_t num_clients, RegretConfig cfg)
    : cfg_(cfg),
      num_clients_(num_clients),
      fit_acc_(num_clients + 1, 0.0) {}

void RegretTracker::record(const sim::EpochContext& ctx,
                           const BudgetLedger& budget,
                           const Decision& decision, double rho,
                           const fl::EpochOutcome& outcome) {
  ++epochs_;

  // Online objective: f_t(Φ_t) = Σ_{k∈S} ρ (τ^loc + τ^cm), with realized
  // per-client latencies when available.
  double f_online = 0.0;
  for (std::size_t i = 0; i < decision.selected.size(); ++i) {
    if (i < outcome.client_latency_s.size()) {
      f_online += outcome.client_latency_s[i];
    } else if (const auto* obs = ctx.find(decision.selected[i])) {
      f_online += static_cast<double>(decision.num_iterations) *
                  (obs->tau_loc + obs->tau_cm_est);
    }
  }
  online_obj_ += f_online;

  // Offline per-epoch optimum under the same cap.
  double mean_cost = 0.0;
  for (const auto& o : ctx.available) mean_cost += o.cost;
  if (!ctx.available.empty())
    mean_cost /= static_cast<double>(ctx.available.size());
  const double cap =
      std::min(budget.remaining() + outcome.cost,  // cap as seen pre-charge
               cfg_.pacing * static_cast<double>(cfg_.n_min) * mean_cost);
  std::vector<std::size_t> opt_ids;
  offline_obj_ +=
      per_epoch_optimum(ctx, std::max(cap, 0.0), cfg_.n_min, &opt_ids);

  // Per-epoch constraint vector h_t at the realized decision: h^0 observed,
  // h^k from realized η of participants.
  std::vector<double> h_now(num_clients_ + 1, 0.0);
  h_now[0] = outcome.train_loss_all - cfg_.theta;
  for (std::size_t i = 0; i < decision.selected.size(); ++i) {
    const std::size_t id = decision.selected[i];
    if (id >= num_clients_ || i >= outcome.client_eta.size()) continue;
    // h^k = η x ρ − ρ + 1 with x = 1 for participants.
    h_now[1 + id] = outcome.client_eta[i] * rho - rho + 1.0;
  }
  for (std::size_t d = 0; d < h_now.size(); ++d) fit_acc_[d] += h_now[d];

  // Path lengths for Theorem 2: Φ*_t as an indicator vector over clients
  // (+ ρ* = 1 in the last coordinate), h drift at the realized decisions.
  std::vector<double> opt_vec(num_clients_ + 1, 0.0);
  opt_vec[num_clients_] = 1.0;  // ρ* = 1
  for (std::size_t id : opt_ids)
    if (id < num_clients_) opt_vec[id] = 1.0;
  if (has_prev_) {
    double d_phi_sq = 0.0;
    for (std::size_t d = 0; d < opt_vec.size(); ++d) {
      const double diff = opt_vec[d] - prev_opt_[d];
      d_phi_sq += diff * diff;
    }
    v_phi_ += std::sqrt(d_phi_sq);

    std::vector<double> h_diff(h_now.size());
    for (std::size_t d = 0; d < h_now.size(); ++d)
      h_diff[d] = h_now[d] - prev_h_[d];
    const double step = positive_part_norm(h_diff);
    v_h_ += step;
    v_h_step_max_ = std::max(v_h_step_max_, step);
  }
  prev_opt_ = std::move(opt_vec);
  prev_h_ = std::move(h_now);
  has_prev_ = true;
}

double RegretTracker::fit() const { return positive_part_norm(fit_acc_); }

}  // namespace fedl::core
