#include "core/online_learner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/math_util.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/time_series.h"
#include "solver/prox_solver.h"

namespace fedl::core {
namespace {

// Learner telemetry: the dual/pacing state the paper's analysis tracks (μ^0,
// ρ_t) plus how often the budget made an epoch infeasible and how many
// available clients the top-k pruning cut before the prox solve. Gauges hold
// the latest value, so the snapshot shows the end-of-run state.
const obs::Gauge& mu0_gauge() {
  static const obs::Gauge g("learner.mu0");
  return g;
}
const obs::Gauge& rho_gauge() {
  static const obs::Gauge g("learner.rho");
  return g;
}
const obs::Counter& infeasible_epochs() {
  static const obs::Counter c("learner.infeasible_epochs");
  return c;
}
const obs::Counter& pruned_clients() {
  static const obs::Counter c("learner.pruned");
  return c;
}
// Trajectory versions of the same state (--series-out): the gauges keep the
// end-of-run value, the series keep the whole path.
const obs::Series& rho_series() {
  static const obs::Series s("learner.rho");
  return s;
}
const obs::Series& mu0_series() {
  static const obs::Series s("learner.mu0");
  return s;
}

}  // namespace

OnlineLearner::OnlineLearner(std::size_t num_clients, LearnerConfig cfg)
    : cfg_(cfg),
      num_clients_(num_clients),
      // Pool defaults are the priors dense vectors used to be filled with;
      // a client that was never observed reads exactly as before.
      pool_(ClientLearnerState{/*xfrac=*/0.5, /*eta=*/cfg.init_eta,
                               /*delta=*/cfg.init_delta_est, /*mu=*/0.0}),
      rho_(2.0),
      mu0_(0.0),  // μ_1 = 0 (Lemma 2's initialization)
      last_loss_(cfg.init_loss) {
  FEDL_CHECK_GT(num_clients, 0u);
  FEDL_CHECK_GT(cfg_.beta, 0.0);
  FEDL_CHECK_GT(cfg_.delta, 0.0);
  FEDL_CHECK_GE(cfg_.rho_max, 1.0);
  FEDL_CHECK_GT(cfg_.n_min, 0u);
  FEDL_CHECK(cfg_.selection_width == 0 ||
             cfg_.selection_width >= cfg_.n_min)
      << "selection_width must be 0 (no pruning) or >= n_min so the "
         "participation floor stays feasible";
}

double OnlineLearner::mu_k(std::size_t client) const {
  FEDL_CHECK_LT(client, num_clients_);
  return pool_.get(client).mu;
}

double OnlineLearner::x_fraction(std::size_t client) const {
  FEDL_CHECK_LT(client, num_clients_);
  return pool_.get(client).xfrac;
}

double OnlineLearner::eta_estimate(std::size_t client) const {
  FEDL_CHECK_LT(client, num_clients_);
  return pool_.get(client).eta;
}

double OnlineLearner::delta_estimate(std::size_t client) const {
  FEDL_CHECK_LT(client, num_clients_);
  return pool_.get(client).delta;
}

std::size_t OnlineLearner::resident_bytes() const {
  return pool_.resident_bytes() + sel_index_.capacity_bytes();
}

double OnlineLearner::select_candidates(const sim::EpochContext& ctx) {
  const std::size_t k = ctx.available.size();
  double cost_sum = 0.0;
  for (const auto& obs : ctx.available) cost_sum += obs.cost;
  const double mean_cost = cost_sum / static_cast<double>(k);

  const std::size_t width = cfg_.selection_width;
  cand_.clear();
  if (width == 0 || k <= width) {
    cand_.resize(k);
    std::iota(cand_.begin(), cand_.end(), std::size_t{0});
    return mean_cost;
  }

  // Bounded-heap top-k selection, O(|E_t| log width), no roster-sized state.
  // (1) Feasibility floor: the n_min cheapest clients must survive pruning
  // so Σx ≥ n_eff and the infeasible-epoch logic behave exactly as the
  // unpruned solve. Max-heap of (cost, index) keeps the smallest floor_n.
  in_cand_.assign(k, 0);
  const std::size_t floor_n = std::min<std::size_t>(cfg_.n_min, width);
  heap_.clear();
  for (std::size_t i = 0; i < k; ++i) {
    const std::pair<double, std::size_t> entry{ctx.available[i].cost, i};
    if (heap_.size() < floor_n) {
      heap_.push_back(entry);
      std::push_heap(heap_.begin(), heap_.end());
    } else if (entry < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = entry;
      std::push_heap(heap_.begin(), heap_.end());
    }
  }
  for (const auto& e : heap_) in_cand_[e.second] = 1;

  // (2) Utility slots: among the rest, the best (width − floor_n) by the
  // paced utility score Δ̂_k·ρ/c_k (expected loss reduction per unit rent at
  // the current pacing ρ). Min-heap keeps the largest scores; ties prefer
  // the lower client index for determinism.
  const std::size_t extra = width - floor_n;
  heap_.clear();
  auto worse = [](const std::pair<double, std::size_t>& a,
                  const std::pair<double, std::size_t>& b) {
    // "a is worse than b": lower score, or same score and higher index.
    return a.first != b.first ? a.first < b.first : a.second > b.second;
  };
  // Exploration bonus β_w·sqrt(log t / n_k): log t is shared across the
  // epoch; n_k is the client's observation count (never-observed clients
  // divide by 1, giving them the full bonus). Guarded so the default
  // β_w = 0 adds literally nothing — the exploit-only score stays
  // bit-identical.
  const double log_t =
      cfg_.width_explore > 0.0
          ? std::log(std::max(2.0, static_cast<double>(ctx.epoch)))
          : 0.0;
  for (std::size_t i = 0; i < k && extra > 0; ++i) {
    if (in_cand_[i]) continue;
    const auto& obs = ctx.available[i];
    const ClientLearnerState& st = pool_.get(obs.id);
    double score = st.delta * rho_ / std::max(obs.cost, 1e-12);
    if (cfg_.width_explore > 0.0)
      score += cfg_.width_explore *
               std::sqrt(log_t / std::max(1.0, st.seen));
    const std::pair<double, std::size_t> entry{score, i};
    if (heap_.size() < extra) {
      heap_.push_back(entry);
      std::push_heap(heap_.begin(), heap_.end(), worse);
    } else if (worse(heap_.front(), entry)) {
      std::pop_heap(heap_.begin(), heap_.end(), worse);
      heap_.back() = entry;
      std::push_heap(heap_.begin(), heap_.end(), worse);
    }
  }
  for (const auto& e : heap_) in_cand_[e.second] = 1;

  for (std::size_t i = 0; i < k; ++i)
    if (in_cand_[i]) cand_.push_back(i);
  pruned_clients().add(static_cast<std::uint64_t>(k - cand_.size()));
  return mean_cost;
}

FractionalDecision OnlineLearner::decide(const sim::EpochContext& ctx,
                                         const BudgetLedger& budget) {
  FEDL_PROFILE_SCOPE("learner.decide");
  FractionalDecision dec;
  const std::size_t k = ctx.available.size();
  dec.rho = rho_;
  if (k == 0) return dec;  // nothing available this epoch

  const double mean_cost = select_candidates(ctx);
  const std::size_t w = cand_.size();

  dec.ids.reserve(w);
  dec.cost.reserve(w);
  tau_.resize(w);    // τ^loc + τ^cm per candidate
  eta_.resize(w);    // η̂ per candidate
  delta_.resize(w);  // Δ̂ per candidate
  for (std::size_t i = 0; i < w; ++i) {
    const auto& obs = ctx.available[cand_[i]];
    dec.ids.push_back(obs.id);
    dec.cost.push_back(obs.cost);
    tau_[i] = obs.tau_loc + obs.tau_cm_est;
    const ClientLearnerState& st = pool_.get(obs.id);
    eta_[i] = st.eta;
    delta_[i] = st.delta;
  }

  // --- feasible set -------------------------------------------------------
  const double n_d = static_cast<double>(cfg_.n_min);

  // When the remaining budget cannot rent the n_min cheapest clients, the
  // constraints Σx ≥ n_eff and Σc·x ≤ cap would contradict each other (the
  // n_eff cheapest unit selections already overshoot the cap). Shrink the
  // participation floor to the largest affordable prefix of the cost-sorted
  // clients; when not even the single cheapest client is affordable, the
  // epoch is infeasible and the decision is empty (select nobody, spend
  // nothing) — the ledger must never overdraw. The pruning floor keeps the
  // n_min cheapest of E_t in the candidate set, so this prefix is the same
  // whether or not pruning ran.
  sorted_cost_ = dec.cost;
  std::sort(sorted_cost_.begin(), sorted_cost_.end());
  std::size_t n_eff = std::min<std::size_t>(cfg_.n_min, k);
  double cheapest_n = 0.0;
  {
    double prefix = 0.0;
    std::size_t affordable = 0;
    for (std::size_t i = 0; i < n_eff; ++i) {
      prefix += sorted_cost_[i];
      if (prefix > budget.remaining()) break;
      cheapest_n = prefix;
      ++affordable;
    }
    if (affordable == 0) {
      infeasible_epochs().add();
      dec.ids.clear();
      dec.cost.clear();
      return dec;
    }
    n_eff = affordable;
  }

  // Budget pacing: spend roughly pacing·n·c̄ per epoch so the horizon lands
  // inside the paper's T_C range, but never plan beyond what remains, and
  // always leave enough room for the n_eff cheapest clients (affordable by
  // construction above).
  double cap = cfg_.pacing * n_d * mean_cost;
  cap = std::max(cap, cheapest_n);
  cap = std::min(cap, budget.remaining());
  dec.cap = cap;
  dec.n_eff = n_eff;

  solver::FeasibleSet set;
  set.lo.assign(w + 1, 0.0);
  set.hi.assign(w + 1, 1.0);
  set.lo[w] = 1.0;
  set.hi[w] = cfg_.rho_max;
  {
    // Σ c_k x_k ≤ cap  (ρ coefficient 0).
    solver::Halfspace budget_hs;
    budget_hs.a = dec.cost;
    budget_hs.a.push_back(0.0);
    budget_hs.b = cap;
    set.halfspaces.push_back(std::move(budget_hs));
    // Σ x_k ≥ n_eff  ⇔  Σ (−1)·x_k ≤ −n_eff.
    solver::Halfspace part_hs;
    part_hs.a.assign(w + 1, -1.0);
    part_hs.a[w] = 0.0;
    part_hs.b = -static_cast<double>(n_eff);
    set.halfspaces.push_back(std::move(part_hs));
  }

  // --- descent step (8) -----------------------------------------------------
  anchor_.resize(w + 1);
  for (std::size_t i = 0; i < w; ++i)
    anchor_[i] = pool_.get(dec.ids[i]).xfrac;
  anchor_[w] = rho_;

  grad_f_.assign(w + 1, 0.0);
  double sum_xtau = 0.0;
  for (std::size_t i = 0; i < w; ++i) {
    grad_f_[i] = anchor_[w] * tau_[i];
    sum_xtau += anchor_[i] * tau_[i];
  }
  grad_f_[w] = sum_xtau;

  // Multipliers for the constraints present this epoch: μ^0 plus the μ^k of
  // the candidates.
  mu_local_.resize(w + 1);
  mu_local_[0] = mu0_;
  for (std::size_t i = 0; i < w; ++i)
    mu_local_[i + 1] = pool_.get(dec.ids[i]).mu;

  const double last_loss = last_loss_;
  const double theta = cfg_.theta;
  const std::vector<double>& eta = eta_;
  const std::vector<double>& delta = delta_;

  solver::LinearizedStep step;
  step.grad_f = grad_f_;
  step.anchor = anchor_;
  step.beta = cfg_.beta;
  step.mu = mu_local_;
  step.h = [w, &eta, &delta, last_loss, theta, n_d](
               const std::vector<double>& phi) {
    std::vector<double> h(w + 1);
    const double rho = phi[w];
    double gain = 0.0;
    for (std::size_t i = 0; i < w; ++i) gain += phi[i] * delta[i];
    h[0] = last_loss - (rho / n_d) * gain - theta;          // h^0
    for (std::size_t i = 0; i < w; ++i)
      h[i + 1] = eta[i] * phi[i] * rho - rho + 1.0;          // h^k
    return h;
  };
  step.h_grad_mu = [w, &eta, &delta, n_d](const std::vector<double>& phi,
                                          const std::vector<double>& mu) {
    std::vector<double> g(w + 1, 0.0);
    const double rho = phi[w];
    double gain = 0.0;
    for (std::size_t i = 0; i < w; ++i) {
      // ∂h^0/∂x_i and ∂h^{i}/∂x_i contributions.
      g[i] = -mu[0] * (rho / n_d) * delta[i] + mu[i + 1] * eta[i] * rho;
      gain += phi[i] * delta[i];
      // ∂h^{i}/∂ρ contribution.
      g[w] += mu[i + 1] * (eta[i] * phi[i] - 1.0);
    }
    g[w] += -mu[0] * gain / n_d;  // ∂h^0/∂ρ
    return g;
  };

  solver::ProxSolverOptions opts;
  opts.max_iterations = 120;
  const solver::ProxSolverResult res =
      solver::minimize_projected(set, anchor_, step.make_objective(), opts);

  // Commit the fractional solution into persistent memory (candidates only;
  // pruned clients keep their fractional memory for future epochs).
  dec.x.resize(w);
  for (std::size_t i = 0; i < w; ++i) {
    dec.x[i] = clamp(res.x[i], 0.0, 1.0);
    pool_.touch(dec.ids[i]).xfrac = dec.x[i];
  }
  rho_ = clamp(res.x[w], 1.0, cfg_.rho_max);
  dec.rho = rho_;
  rho_gauge().set(rho_);
  rho_series().sample(static_cast<std::uint64_t>(ctx.epoch), rho_);
  return dec;
}

void OnlineLearner::observe(const sim::EpochContext& ctx,
                            const FractionalDecision& frac,
                            const fl::EpochOutcome& outcome) {
  FEDL_PROFILE_SCOPE("learner.observe");
  // --- estimate updates -----------------------------------------------------
  last_loss_ = outcome.train_loss_all;
  // Per-client completed-iteration counts: a client that dropped before
  // finishing a single DANE iteration produced no η/Δ observation, so its
  // estimates must not be updated (EMAing η̂ toward the placeholder 0 would
  // make the learner treat flaky clients as fast convergers). Engines that
  // predate client_completed_iters report an empty vector: fall back to the
  // epoch-wide iteration count.
  auto completed = [&](std::size_t i) -> double {
    if (i < outcome.client_completed_iters.size())
      return static_cast<double>(outcome.client_completed_iters[i]);
    return static_cast<double>(outcome.num_iterations);
  };
  for (std::size_t i = 0; i < outcome.selected.size(); ++i) {
    const std::size_t id = outcome.selected[i];
    FEDL_CHECK_LT(id, num_clients_);
    const double iters = completed(i);
    if (iters <= 0.0) continue;  // dropped at iteration 0: nothing observed
    pool_.touch(id).seen += 1.0;  // n_k for the width-explore bonus
    if (i < outcome.client_eta.size()) {
      ClientLearnerState& st = pool_.touch(id);
      st.eta = (1.0 - cfg_.ema) * st.eta + cfg_.ema * outcome.client_eta[i];
    }
    if (i < outcome.client_loss_reduction.size()) {
      // The engine accumulates the reduction over the iterations the client
      // actually completed; dividing by that count gives the per-iteration
      // marginal Δ̂. Floor at zero so one noisy epoch can't turn a client's
      // estimate negative forever.
      const double per_iter =
          positive_part(outcome.client_loss_reduction[i]) / iters;
      ClientLearnerState& st = pool_.touch(id);
      st.delta = (1.0 - cfg_.ema) * st.delta + cfg_.ema * per_iter;
    }
  }

  // --- dual ascent (9): μ ← [μ + δ h_t(Φ̃_t)]+ -------------------------------
  // h^0 is observed directly; h^k uses the realized η of selected clients and
  // the current estimate for unselected ones. Only the decision's candidates
  // have h^k ≠ 0 this epoch, so only their μ^k move: every other client's
  // update would be the no-op [μ + δ·0]+ = μ, and is skipped outright —
  // unavailable clients' duals are bit-identical before and after.
  const double rho = frac.rho;
  const double h0 = outcome.train_loss_all - cfg_.theta;
  mu0_ = clamp(positive_part(mu0_ + cfg_.delta * h0), 0.0, cfg_.mu_max);

  // Selected-id → outcome-index scratch (grow-only, O(1) clear): selected[i]
  // inserts in order, so the assigned slot equals the outcome index i.
  sel_index_.clear();
  for (std::size_t i = 0; i < outcome.selected.size(); ++i)
    sel_index_.insert(outcome.selected[i]);

  for (std::size_t i = 0; i < frac.ids.size(); ++i) {
    const std::size_t id = frac.ids[i];
    const std::size_t sel = sel_index_.find(id);
    const bool has_obs = sel != IdSlotMap::npos &&
                         sel < outcome.client_eta.size() &&
                         completed(sel) > 0.0;
    const double eta = has_obs ? outcome.client_eta[sel] : pool_.get(id).eta;
    const double h = eta * frac.x[i] * rho - rho + 1.0;
    const double mu_next =
        clamp(positive_part(pool_.get(id).mu + cfg_.delta * h), 0.0,
              cfg_.mu_max);
    // Don't allocate a slot just to store the default: a candidate whose
    // dual stays at 0 leaves no footprint.
    if (mu_next != 0.0 || pool_.contains(id)) pool_.touch(id).mu = mu_next;
  }
  mu0_gauge().set(mu0_);
  mu0_series().sample(static_cast<std::uint64_t>(ctx.epoch), mu0_);
  FEDL_DEBUG << "learner: mu0=" << mu0_ << " rho=" << rho_
             << " L=" << last_loss_;
}

}  // namespace fedl::core
