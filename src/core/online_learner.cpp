#include "core/online_learner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/math_util.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "solver/prox_solver.h"

namespace fedl::core {
namespace {

// Learner telemetry: the dual/pacing state the paper's analysis tracks (μ^0,
// ρ_t) plus how often the budget made an epoch infeasible. Gauges hold the
// latest value, so the snapshot shows the end-of-run state.
const obs::Gauge& mu0_gauge() {
  static const obs::Gauge g("learner.mu0");
  return g;
}
const obs::Gauge& rho_gauge() {
  static const obs::Gauge g("learner.rho");
  return g;
}
const obs::Counter& infeasible_epochs() {
  static const obs::Counter c("learner.infeasible_epochs");
  return c;
}

}  // namespace

OnlineLearner::OnlineLearner(std::size_t num_clients, LearnerConfig cfg)
    : cfg_(cfg),
      num_clients_(num_clients),
      xfrac_(num_clients, 0.5),
      rho_(2.0),
      mu_(num_clients + 1, 0.0),  // μ_1 = 0 (Lemma 2's initialization)
      eta_est_(num_clients, cfg.init_eta),
      delta_est_(num_clients, cfg.init_delta_est),
      last_loss_(cfg.init_loss) {
  FEDL_CHECK_GT(num_clients, 0u);
  FEDL_CHECK_GT(cfg_.beta, 0.0);
  FEDL_CHECK_GT(cfg_.delta, 0.0);
  FEDL_CHECK_GE(cfg_.rho_max, 1.0);
  FEDL_CHECK_GT(cfg_.n_min, 0u);
}

double OnlineLearner::x_fraction(std::size_t client) const {
  FEDL_CHECK_LT(client, num_clients_);
  return xfrac_[client];
}

double OnlineLearner::eta_estimate(std::size_t client) const {
  FEDL_CHECK_LT(client, num_clients_);
  return eta_est_[client];
}

double OnlineLearner::delta_estimate(std::size_t client) const {
  FEDL_CHECK_LT(client, num_clients_);
  return delta_est_[client];
}

FractionalDecision OnlineLearner::decide(const sim::EpochContext& ctx,
                                         const BudgetLedger& budget) {
  FEDL_PROFILE_SCOPE("learner.decide");
  FractionalDecision dec;
  const std::size_t k = ctx.available.size();
  dec.rho = rho_;
  if (k == 0) return dec;  // nothing available this epoch

  dec.ids.reserve(k);
  std::vector<double> tau(k);    // τ^loc + τ^cm per available client
  std::vector<double> cost(k);
  std::vector<double> eta(k);    // η̂ per available client
  std::vector<double> delta(k);  // Δ̂ per available client
  for (std::size_t i = 0; i < k; ++i) {
    const auto& obs = ctx.available[i];
    dec.ids.push_back(obs.id);
    tau[i] = obs.tau_loc + obs.tau_cm_est;
    cost[i] = obs.cost;
    eta[i] = eta_est_[obs.id];
    delta[i] = delta_est_[obs.id];
  }

  // --- feasible set -------------------------------------------------------
  const double n_d = static_cast<double>(cfg_.n_min);

  // When the remaining budget cannot rent the n_min cheapest clients, the
  // constraints Σx ≥ n_eff and Σc·x ≤ cap would contradict each other (the
  // n_eff cheapest unit selections already overshoot the cap). Shrink the
  // participation floor to the largest affordable prefix of the cost-sorted
  // clients; when not even the single cheapest client is affordable, the
  // epoch is infeasible and the decision is empty (select nobody, spend
  // nothing) — the ledger must never overdraw.
  std::vector<double> sorted_cost = cost;
  std::sort(sorted_cost.begin(), sorted_cost.end());
  std::size_t n_eff = std::min<std::size_t>(cfg_.n_min, k);
  double cheapest_n = 0.0;
  {
    double prefix = 0.0;
    std::size_t affordable = 0;
    for (std::size_t i = 0; i < n_eff; ++i) {
      prefix += sorted_cost[i];
      if (prefix > budget.remaining()) break;
      cheapest_n = prefix;
      ++affordable;
    }
    if (affordable == 0) {
      infeasible_epochs().add();
      dec.ids.clear();
      return dec;
    }
    n_eff = affordable;
  }

  // Budget pacing: spend roughly pacing·n·c̄ per epoch so the horizon lands
  // inside the paper's T_C range, but never plan beyond what remains, and
  // always leave enough room for the n_eff cheapest clients (affordable by
  // construction above).
  const double mean_cost =
      std::accumulate(cost.begin(), cost.end(), 0.0) / static_cast<double>(k);
  double cap = cfg_.pacing * n_d * mean_cost;
  cap = std::max(cap, cheapest_n);
  cap = std::min(cap, budget.remaining());

  solver::FeasibleSet set;
  set.lo.assign(k + 1, 0.0);
  set.hi.assign(k + 1, 1.0);
  set.lo[k] = 1.0;
  set.hi[k] = cfg_.rho_max;
  {
    // Σ c_k x_k ≤ cap  (ρ coefficient 0).
    solver::Halfspace budget_hs;
    budget_hs.a = cost;
    budget_hs.a.push_back(0.0);
    budget_hs.b = cap;
    set.halfspaces.push_back(std::move(budget_hs));
    // Σ x_k ≥ n_eff  ⇔  Σ (−1)·x_k ≤ −n_eff.
    solver::Halfspace part_hs;
    part_hs.a.assign(k + 1, -1.0);
    part_hs.a[k] = 0.0;
    part_hs.b = -static_cast<double>(n_eff);
    set.halfspaces.push_back(std::move(part_hs));
  }

  // --- descent step (8) -----------------------------------------------------
  std::vector<double> anchor(k + 1);
  for (std::size_t i = 0; i < k; ++i) anchor[i] = xfrac_[dec.ids[i]];
  anchor[k] = rho_;

  std::vector<double> grad_f(k + 1, 0.0);
  double sum_xtau = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    grad_f[i] = anchor[k] * tau[i];
    sum_xtau += anchor[i] * tau[i];
  }
  grad_f[k] = sum_xtau;

  // Multipliers for the constraints present this epoch: μ^0 plus the μ^k of
  // the available clients.
  std::vector<double> mu_local(k + 1);
  mu_local[0] = mu_[0];
  for (std::size_t i = 0; i < k; ++i) mu_local[i + 1] = mu_[1 + dec.ids[i]];

  const double last_loss = last_loss_;
  const double theta = cfg_.theta;

  solver::LinearizedStep step;
  step.grad_f = std::move(grad_f);
  step.anchor = anchor;
  step.beta = cfg_.beta;
  step.mu = std::move(mu_local);
  step.h = [k, eta, delta, last_loss, theta, n_d](
               const std::vector<double>& phi) {
    std::vector<double> h(k + 1);
    const double rho = phi[k];
    double gain = 0.0;
    for (std::size_t i = 0; i < k; ++i) gain += phi[i] * delta[i];
    h[0] = last_loss - (rho / n_d) * gain - theta;          // h^0
    for (std::size_t i = 0; i < k; ++i)
      h[i + 1] = eta[i] * phi[i] * rho - rho + 1.0;          // h^k
    return h;
  };
  step.h_grad_mu = [k, eta, delta, n_d](const std::vector<double>& phi,
                                        const std::vector<double>& mu) {
    std::vector<double> g(k + 1, 0.0);
    const double rho = phi[k];
    double gain = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      // ∂h^0/∂x_i and ∂h^{i}/∂x_i contributions.
      g[i] = -mu[0] * (rho / n_d) * delta[i] + mu[i + 1] * eta[i] * rho;
      gain += phi[i] * delta[i];
      // ∂h^{i}/∂ρ contribution.
      g[k] += mu[i + 1] * (eta[i] * phi[i] - 1.0);
    }
    g[k] += -mu[0] * gain / n_d;  // ∂h^0/∂ρ
    return g;
  };

  solver::ProxSolverOptions opts;
  opts.max_iterations = 120;
  const solver::ProxSolverResult res =
      solver::minimize_projected(set, anchor, step.make_objective(), opts);

  // Commit the fractional solution into persistent memory.
  dec.x.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    dec.x[i] = clamp(res.x[i], 0.0, 1.0);
    xfrac_[dec.ids[i]] = dec.x[i];
  }
  rho_ = clamp(res.x[k], 1.0, cfg_.rho_max);
  dec.rho = rho_;
  rho_gauge().set(rho_);
  return dec;
}

void OnlineLearner::observe(const sim::EpochContext& ctx,
                            const FractionalDecision& frac,
                            const fl::EpochOutcome& outcome) {
  FEDL_PROFILE_SCOPE("learner.observe");
  // --- estimate updates -----------------------------------------------------
  last_loss_ = outcome.train_loss_all;
  // Per-client completed-iteration counts: a client that dropped before
  // finishing a single DANE iteration produced no η/Δ observation, so its
  // estimates must not be updated (EMAing η̂ toward the placeholder 0 would
  // make the learner treat flaky clients as fast convergers). Engines that
  // predate client_completed_iters report an empty vector: fall back to the
  // epoch-wide iteration count.
  auto completed = [&](std::size_t i) -> double {
    if (i < outcome.client_completed_iters.size())
      return static_cast<double>(outcome.client_completed_iters[i]);
    return static_cast<double>(outcome.num_iterations);
  };
  for (std::size_t i = 0; i < outcome.selected.size(); ++i) {
    const std::size_t id = outcome.selected[i];
    FEDL_CHECK_LT(id, num_clients_);
    const double iters = completed(i);
    if (iters <= 0.0) continue;  // dropped at iteration 0: nothing observed
    if (i < outcome.client_eta.size()) {
      eta_est_[id] = (1.0 - cfg_.ema) * eta_est_[id] +
                     cfg_.ema * outcome.client_eta[i];
    }
    if (i < outcome.client_loss_reduction.size()) {
      // The engine accumulates the reduction over the iterations the client
      // actually completed; dividing by that count gives the per-iteration
      // marginal Δ̂. Floor at zero so one noisy epoch can't turn a client's
      // estimate negative forever.
      const double per_iter =
          positive_part(outcome.client_loss_reduction[i]) / iters;
      delta_est_[id] =
          (1.0 - cfg_.ema) * delta_est_[id] + cfg_.ema * per_iter;
    }
  }

  // --- dual ascent (9): μ ← [μ + δ h_t(Φ̃_t)]+ -------------------------------
  // h^0 is observed directly; h^k uses the realized η of selected clients and
  // the current estimate for unselected ones.
  const double rho = frac.rho;
  std::vector<double> h(num_clients_ + 1, 0.0);
  h[0] = outcome.train_loss_all - cfg_.theta;

  std::vector<double> eta_obs(num_clients_, -1.0);
  for (std::size_t i = 0; i < outcome.selected.size(); ++i)
    if (i < outcome.client_eta.size() && completed(i) > 0.0)
      eta_obs[outcome.selected[i]] = outcome.client_eta[i];

  for (std::size_t i = 0; i < frac.ids.size(); ++i) {
    const std::size_t id = frac.ids[i];
    const double eta =
        eta_obs[id] >= 0.0 ? eta_obs[id] : eta_est_[id];
    h[1 + id] = eta * frac.x[i] * rho - rho + 1.0;
  }
  (void)ctx;

  mu_[0] = clamp(positive_part(mu_[0] + cfg_.delta * h[0]), 0.0, cfg_.mu_max);
  for (std::size_t id = 0; id < num_clients_; ++id) {
    mu_[1 + id] = clamp(positive_part(mu_[1 + id] + cfg_.delta * h[1 + id]),
                        0.0, cfg_.mu_max);
  }

  mu0_gauge().set(mu_[0]);
  FEDL_DEBUG << "learner: mu0=" << mu_[0] << " rho=" << rho_
             << " L=" << last_loss_;
}

}  // namespace fedl::core
