// The online learning algorithm of FedL (§4.3): fractional decisions by
// alternating a modified proximal descent step (8) on the primal Φ̃ and a
// dual ascent step (9) on the Lagrange multipliers μ.
//
// Decision variables per epoch: Φ̃ = [x̃_{k∈E_t}, ρ], ρ = 1/(1−η_t).
// The learner keeps persistent per-client state across epochs — fractional
// memory x̃_k, estimated local convergence accuracy η̂_k, and estimated
// per-iteration loss reduction Δ̂_k — which is exactly the "historic learning
// results" FedL learns from.
//
// Constraint encoding for the descent step:
//  * objective gradient ∇f_t: ∂/∂x̃_k = ρ·(τ^loc_k + τ^cm_k),
//    ∂/∂ρ = Σ_k x̃_k (τ^loc_k + τ^cm_k);
//  * h^0 (global convergence, (3d)) is linearized through the per-client
//    marginal loss-reduction estimates:
//      h^0(Φ) = L̂ − (ρ/n)·Σ_k x̃_k Δ̂_k − θ
//    where L̂ is the last observed global loss (the observable surrogate of
//    F_t(w^{l_t}) at decision time);
//  * h^k (local convergence, (3c)) uses the paper's bilinear form with the
//    learned per-client accuracy: h^k(Φ) = η̂_k·x̃_k·ρ − ρ + 1;
//  * feasible set: x̃ ∈ [0,1]^{E_t}, ρ ∈ [1, ρ_max], Σ c_k x̃_k ≤ cap_t
//    (budget pacing within (5a)), Σ x̃_k ≥ n (5b).
//
// Timing note: rent prices c_{t,k} and latency estimates are posted at the
// start of the epoch (they are part of the observation), while everything
// that depends on the training itself (w, d, η, losses) is revealed only
// after the decision — matching the paper's list of post-decision inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/budget.h"
#include "fl/engine.h"
#include "sim/environment.h"

namespace fedl::core {

struct LearnerConfig {
  // Step sizes; Corollary 1 prescribes β = δ = O(T_C^{-1/3}), which is ≈0.3
  // for the horizons induced by the evaluation budgets (T_C ≈ 20–60).
  double beta = 0.2;   // primal proximal step size β
  double delta = 0.5;  // dual ascent step size δ
  double theta = 0.5;    // desired upper bound θ of the global loss (3d)
  std::size_t n_min = 5;  // minimum participants per epoch (3b)
  double rho_max = 8.0;   // cap on ρ (bounds l_t; Assumption 1's radius R)
  double pacing = 1.5;    // per-epoch spend cap = pacing · n · mean cost
  double mu_max = 100.0;  // dual clip, numerical guard for ‖μ̂‖ of Lemma 2
  double ema = 0.3;       // smoothing for η̂ and Δ̂ estimates
  double init_eta = 0.5;  // prior local accuracy for unseen clients
  double init_delta_est = 0.1;  // optimistic prior per-iteration loss drop
  double init_loss = 2.303;     // ln(10): loss of a random 10-class model
};

// Fractional decision for one epoch, aligned with ctx.available.
struct FractionalDecision {
  std::vector<std::size_t> ids;  // available client ids
  std::vector<double> x;         // x̃_{t,k} ∈ [0,1]
  double rho = 1.0;              // ρ_t ≥ 1
};

class OnlineLearner {
 public:
  OnlineLearner(std::size_t num_clients, LearnerConfig cfg);

  // Primal descent (8): produce the fractional decision for this epoch from
  // the stored anchor Φ̃_t, the current duals μ, and the epoch observation.
  FractionalDecision decide(const sim::EpochContext& ctx,
                            const BudgetLedger& budget);

  // Dual ascent (9) plus estimate updates from the realized epoch.
  void observe(const sim::EpochContext& ctx, const FractionalDecision& frac,
               const fl::EpochOutcome& outcome);

  // Introspection for tests/benches.
  const std::vector<double>& mu() const { return mu_; }
  double rho() const { return rho_; }
  double x_fraction(std::size_t client) const;
  double eta_estimate(std::size_t client) const;
  double delta_estimate(std::size_t client) const;
  const LearnerConfig& config() const { return cfg_; }

 private:
  LearnerConfig cfg_;
  std::size_t num_clients_;
  std::vector<double> xfrac_;      // persistent fractional memory
  double rho_;
  std::vector<double> mu_;         // [μ^0, μ^1..μ^M]
  std::vector<double> eta_est_;    // η̂_k
  std::vector<double> delta_est_;  // Δ̂_k (per-iteration loss reduction)
  double last_loss_;               // L̂ = F_t(w^{l_t}) of the last epoch
};

}  // namespace fedl::core
