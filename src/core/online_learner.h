// The online learning algorithm of FedL (§4.3): fractional decisions by
// alternating a modified proximal descent step (8) on the primal Φ̃ and a
// dual ascent step (9) on the Lagrange multipliers μ.
//
// Decision variables per epoch: Φ̃ = [x̃_{k∈E_t}, ρ], ρ = 1/(1−η_t).
// The learner keeps persistent per-client state across epochs — fractional
// memory x̃_k, estimated local convergence accuracy η̂_k, and estimated
// per-iteration loss reduction Δ̂_k — which is exactly the "historic learning
// results" FedL learns from. That state lives in a pooled sparse store
// (sparse_state.h): never-seen clients read as the priors and cost nothing,
// so the learner's footprint is O(clients ever in E_t), not O(M).
//
// Constraint encoding for the descent step:
//  * objective gradient ∇f_t: ∂/∂x̃_k = ρ·(τ^loc_k + τ^cm_k),
//    ∂/∂ρ = Σ_k x̃_k (τ^loc_k + τ^cm_k);
//  * h^0 (global convergence, (3d)) is linearized through the per-client
//    marginal loss-reduction estimates:
//      h^0(Φ) = L̂ − (ρ/n)·Σ_k x̃_k Δ̂_k − θ
//    where L̂ is the last observed global loss (the observable surrogate of
//    F_t(w^{l_t}) at decision time);
//  * h^k (local convergence, (3c)) uses the paper's bilinear form with the
//    learned per-client accuracy: h^k(Φ) = η̂_k·x̃_k·ρ − ρ + 1;
//  * feasible set: x̃ ∈ [0,1]^{E_t}, ρ ∈ [1, ρ_max], Σ c_k x̃_k ≤ cap_t
//    (budget pacing within (5a)), Σ x̃_k ≥ n (5b).
//
// Candidate pruning (selection_width > 0): before the prox solve the
// availability set is cut to at most `selection_width` coordinates — the
// n_min cheapest clients (so the Σx ≥ n floor stays feasible and the
// infeasibility logic is unchanged) plus the best remaining clients by the
// paced utility score Δ̂_k·ρ/c_k, chosen with bounded heaps in
// O(|E_t| log width). Width 0 (default) disables pruning and reproduces the
// full-E_t solve bit-for-bit; a width ≥ |E_t| selects everyone and is
// likewise byte-identical.
//
// Timing note: rent prices c_{t,k} and latency estimates are posted at the
// start of the epoch (they are part of the observation), while everything
// that depends on the training itself (w, d, η, losses) is revealed only
// after the decision — matching the paper's list of post-decision inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/budget.h"
#include "core/sparse_state.h"
#include "fl/engine.h"
#include "sim/environment.h"

namespace fedl::core {

struct LearnerConfig {
  // Step sizes; Corollary 1 prescribes β = δ = O(T_C^{-1/3}), which is ≈0.3
  // for the horizons induced by the evaluation budgets (T_C ≈ 20–60).
  double beta = 0.2;   // primal proximal step size β
  double delta = 0.5;  // dual ascent step size δ
  double theta = 0.5;    // desired upper bound θ of the global loss (3d)
  std::size_t n_min = 5;  // minimum participants per epoch (3b)
  double rho_max = 8.0;   // cap on ρ (bounds l_t; Assumption 1's radius R)
  double pacing = 1.5;    // per-epoch spend cap = pacing · n · mean cost
  double mu_max = 100.0;  // dual clip, numerical guard for ‖μ̂‖ of Lemma 2
  double ema = 0.3;       // smoothing for η̂ and Δ̂ estimates
  double init_eta = 0.5;  // prior local accuracy for unseen clients
  double init_delta_est = 0.1;  // optimistic prior per-iteration loss drop
  double init_loss = 2.303;     // ln(10): loss of a random 10-class model
  // Max coordinates the prox solve sees per epoch (0 = all of E_t).
  std::size_t selection_width = 0;
  // UCB-style exploration bonus β_w for the width-pruning utility score:
  //   score_k = Δ̂_k·ρ/c_k + β_w·sqrt(log t / n_k)
  // where n_k counts the epochs client k actually produced an observation.
  // A client the pruning has starved keeps n_k frozen while log t grows, so
  // its bonus eventually beats any exploit score and it re-enters the
  // candidate set (ROADMAP item 1). 0 (default) disables the bonus and
  // reproduces the pure-exploit pruning bit-for-bit.
  double width_explore = 0.0;
};

// Fractional decision for one epoch over the candidate set (all of E_t
// without pruning; a subset of it with). Clients of E_t outside `ids`
// implicitly have x̃ = 0 this epoch.
struct FractionalDecision {
  std::vector<std::size_t> ids;  // candidate client ids
  std::vector<double> x;         // x̃_{t,k} ∈ [0,1], parallel to ids
  std::vector<double> cost;      // posted rent c_{t,k}, parallel to ids
  double rho = 1.0;              // ρ_t ≥ 1
  // Per-epoch spend cap the budget halfspace enforced on Σ c·x̃ — the
  // integral selection must be repaired back under it after rounding.
  double cap = 0.0;
  // Feasible participation floor (n_min shrunk to what the remaining
  // budget can rent); rounding repair must not drop below it.
  std::size_t n_eff = 0;
};

class OnlineLearner {
 public:
  OnlineLearner(std::size_t num_clients, LearnerConfig cfg);

  // Primal descent (8): produce the fractional decision for this epoch from
  // the stored anchor Φ̃_t, the current duals μ, and the epoch observation.
  FractionalDecision decide(const sim::EpochContext& ctx,
                            const BudgetLedger& budget);

  // Dual ascent (9) plus estimate updates from the realized epoch. Only
  // clients with a nonzero h^k this epoch (the decision's candidates) and
  // the selected clients' estimates are touched — unavailable clients'
  // state is bit-identical before and after.
  void observe(const sim::EpochContext& ctx, const FractionalDecision& frac,
               const fl::EpochOutcome& outcome);

  // Introspection for tests/benches.
  double mu0() const { return mu0_; }
  double mu_k(std::size_t client) const;  // dual μ^k of constraint h^k
  double rho() const { return rho_; }
  double x_fraction(std::size_t client) const;
  double eta_estimate(std::size_t client) const;
  double delta_estimate(std::size_t client) const;
  const LearnerConfig& config() const { return cfg_; }
  // Pooled-state footprint: clients holding a slot / bytes resident.
  std::size_t active_clients() const { return pool_.active(); }
  std::size_t resident_bytes() const;

 private:
  // Fills cand_ with the candidate indices into ctx.available (sorted
  // ascending) and returns the full-E_t mean posted cost.
  double select_candidates(const sim::EpochContext& ctx);

  LearnerConfig cfg_;
  std::size_t num_clients_;
  ClientStatePool pool_;  // x̃_k, η̂_k, Δ̂_k, μ^k per touched client
  double rho_;
  double mu0_;            // μ^0: dual of the global-loss constraint h^0
  double last_loss_;      // L̂ = F_t(w^{l_t}) of the last epoch

  // Grow-only per-epoch scratch (no steady-state allocation in decide()).
  std::vector<std::size_t> cand_;      // candidate indices into E_t
  std::vector<double> scratch_cost_;   // per-candidate posted cost
  std::vector<double> sorted_cost_;    // cost-sorted copy for the floor
  std::vector<double> tau_;            // τ^loc + τ^cm per candidate
  std::vector<double> eta_;            // η̂ per candidate
  std::vector<double> delta_;          // Δ̂ per candidate
  std::vector<double> anchor_;         // [x̃ anchor, ρ]
  std::vector<double> grad_f_;         // ∇f_t at the anchor
  std::vector<double> mu_local_;       // [μ^0, μ^k of candidates]
  std::vector<std::pair<double, std::size_t>> heap_;  // pruning heaps
  std::vector<unsigned char> in_cand_; // candidate membership by E_t index
  IdSlotMap sel_index_;                // selected id → outcome index scratch
};

}  // namespace fedl::core
