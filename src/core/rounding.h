// Randomized rounding of fractional selections (Algorithm 2, RDCS).
//
// Dependent rounding pairs two fractional coordinates and shifts probability
// mass between them so that (i) the sum Σ x̃ is preserved up to one residual
// fractional coordinate, (ii) every coordinate becomes integral, and
// (iii) E[x_k] = x̃_k exactly (Theorem 3). Independent rounding — each
// coordinate rounded on its own — is provided for the A1 ablation bench.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fedl::core {

// Dependent rounding (RDCS). Input fractions must lie in [0, 1]. The
// returned vector contains only 0s and 1s. The pairing loop runs until at
// most one coordinate remains fractional; the residual (if any) is rounded
// up with probability equal to its value, preserving marginals.
std::vector<int> rdcs_round(const std::vector<double>& fractions, Rng& rng);

// Independent per-coordinate rounding: 1 with probability x̃_k.
std::vector<int> independent_round(const std::vector<double>& fractions,
                                   Rng& rng);

}  // namespace fedl::core
