// Randomized rounding of fractional selections (Algorithm 2, RDCS).
//
// Dependent rounding pairs two fractional coordinates and shifts probability
// mass between them so that (i) the sum Σ x̃ is preserved up to one residual
// fractional coordinate, (ii) every coordinate becomes integral, and
// (iii) E[x_k] = x̃_k exactly (Theorem 3). Independent rounding — each
// coordinate rounded on its own — is provided for the A1 ablation bench.
//
// The in-place subset entry points round only the listed coordinates of a
// caller-owned vector using caller-owned scratch, so the hot path never
// materializes roster-sized temporaries; the allocating overloads are thin
// wrappers that draw the exact same RNG sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fedl::core {

// Reusable working set for rdcs_round_subset: the active fractional index
// lists of the pairing loop. Grow-only; safe to share across epochs.
struct RdcsScratch {
  std::vector<std::size_t> frac;
  std::vector<std::size_t> next;
};

// Dependent rounding (RDCS) over x[indices] in place. Listed entries must
// lie in [0, 1] (±1e-12) and become exactly 0.0 or 1.0; unlisted entries are
// untouched. The pairing loop runs until at most one listed coordinate
// remains fractional; the residual (if any) is rounded up with probability
// equal to its value, preserving marginals.
void rdcs_round_subset(std::vector<double>& x,
                       const std::vector<std::size_t>& indices, Rng& rng,
                       RdcsScratch& scratch);

// Independent rounding over x[indices] in place: x[k] ← 1 w.p. x̃_k.
// Draws one uniform per listed coordinate.
void independent_round_subset(std::vector<double>& x,
                              const std::vector<std::size_t>& indices,
                              Rng& rng);

// Allocating wrappers over the subset API (identity index list). Kept for
// tests and callers that want a fresh 0/1 vector; RNG-sequence-identical to
// the in-place forms.
std::vector<int> rdcs_round(const std::vector<double>& fractions, Rng& rng);
std::vector<int> independent_round(const std::vector<double>& fractions,
                                   Rng& rng);

}  // namespace fedl::core
