#include "core/fairness.h"

#include "common/error.h"

namespace fedl::core {

ParticipationTracker::ParticipationTracker(std::size_t num_clients)
    : selected_(num_clients, 0), available_(num_clients, 0) {
  FEDL_CHECK_GT(num_clients, 0u);
}

void ParticipationTracker::record(const std::vector<std::size_t>& available,
                                  const std::vector<std::size_t>& selected) {
  ++epochs_;
  for (std::size_t id : available) {
    FEDL_CHECK_LT(id, available_.size());
    ++available_[id];
  }
  for (std::size_t id : selected) {
    FEDL_CHECK_LT(id, selected_.size());
    ++selected_[id];
  }
}

std::size_t ParticipationTracker::selections(std::size_t client) const {
  FEDL_CHECK_LT(client, selected_.size());
  return selected_[client];
}

std::size_t ParticipationTracker::availabilities(std::size_t client) const {
  FEDL_CHECK_LT(client, available_.size());
  return available_[client];
}

double ParticipationTracker::rate(std::size_t client) const {
  FEDL_CHECK_LT(client, selected_.size());
  if (available_[client] == 0) return 0.0;
  return static_cast<double>(selected_[client]) /
         static_cast<double>(available_[client]);
}

double jains_index(const std::vector<std::size_t>& counts) {
  FEDL_CHECK(!counts.empty());
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t c : counts) {
    const double v = static_cast<double>(c);
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // nobody selected: trivially even
  return sum * sum / (static_cast<double>(counts.size()) * sum_sq);
}

}  // namespace fedl::core
