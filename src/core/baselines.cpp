#include "core/baselines.h"

#include <algorithm>
#include <numeric>

namespace fedl::core {
namespace {

// Drop selections (cheapest kept) until the total cost fits `cap`.
// `order_hint` lists candidate indices in drop-priority order (first dropped
// first); falls back to most-expensive-first when empty.
void enforce_cap(const sim::EpochContext& ctx, std::vector<std::size_t>& picks,
                 double cap) {
  auto cost_of = [&](std::size_t i) { return ctx.available[i].cost; };
  double total = 0.0;
  for (std::size_t i : picks) total += cost_of(i);
  if (total <= cap) return;
  // Drop the most expensive picks first.
  std::vector<std::size_t> order = picks;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return cost_of(a) > cost_of(b); });
  for (std::size_t victim : order) {
    if (total <= cap || picks.size() <= 1) break;
    auto it = std::find(picks.begin(), picks.end(), victim);
    if (it == picks.end()) continue;
    total -= cost_of(victim);
    picks.erase(it);
  }
  // If even one pick is unaffordable, keep only the cheapest affordable one.
  if (total > cap && picks.size() == 1) {
    std::size_t cheapest = picks[0];
    for (std::size_t i = 0; i < ctx.available.size(); ++i)
      if (cost_of(i) < cost_of(cheapest)) cheapest = i;
    picks.clear();
    if (cost_of(cheapest) <= cap) picks.push_back(cheapest);
  }
}

Decision to_decision(const sim::EpochContext& ctx,
                     const std::vector<std::size_t>& picks,
                     std::size_t iterations) {
  Decision d;
  for (std::size_t i : picks) d.selected.push_back(ctx.available[i].id);
  std::sort(d.selected.begin(), d.selected.end());
  d.num_iterations = iterations;
  return d;
}

}  // namespace

double per_epoch_cap(const sim::EpochContext& ctx, const BudgetLedger& budget,
                     std::size_t n, double pacing) {
  if (ctx.available.empty()) return 0.0;
  double mean_cost = 0.0;
  for (const auto& o : ctx.available) mean_cost += o.cost;
  mean_cost /= static_cast<double>(ctx.available.size());
  const double cap = pacing * static_cast<double>(n) * mean_cost;
  return std::min(cap, budget.remaining());
}

// --- FedAvg ------------------------------------------------------------------

FedAvgStrategy::FedAvgStrategy(BaselineConfig cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  FEDL_CHECK_GT(cfg.n_select, 0u);
  FEDL_CHECK_GT(cfg.iterations, 0u);
}

Decision FedAvgStrategy::decide(const sim::EpochContext& ctx,
                                const BudgetLedger& budget) {
  const std::size_t k = ctx.available.size();
  if (k == 0) return {};
  const std::size_t want = std::min<std::size_t>(cfg_.n_select, k);
  auto picks = rng_.sample_without_replacement(k, want);
  enforce_cap(ctx, picks, per_epoch_cap(ctx, budget, cfg_.n_select, cfg_.pacing));
  return to_decision(ctx, picks, cfg_.iterations);
}

// --- FedCS ---------------------------------------------------------------------

FedCsStrategy::FedCsStrategy(FedCsConfig cfg)
    : cfg_(cfg), rng_(cfg.base.seed) {
  FEDL_CHECK_GT(cfg.deadline_s, 0.0);
}

Decision FedCsStrategy::decide(const sim::EpochContext& ctx,
                               const BudgetLedger& budget) {
  const std::size_t k = ctx.available.size();
  if (k == 0) return {};
  // FedCS greedily admits clients fastest-first while the epoch (l fixed
  // iterations of the slowest admitted client) still meets the deadline —
  // "select as many clients as possible" under the round deadline.
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& oa = ctx.available[a];
    const auto& ob = ctx.available[b];
    return oa.tau_loc + oa.tau_cm_est < ob.tau_loc + ob.tau_cm_est;
  });

  const double cap =
      per_epoch_cap(ctx, budget, cfg_.base.n_select, cfg_.base.pacing);
  std::vector<std::size_t> picks;
  double cost = 0.0;
  for (std::size_t i : order) {
    const auto& o = ctx.available[i];
    const double round_latency = static_cast<double>(cfg_.base.iterations) *
                                 (o.tau_loc + o.tau_cm_est);
    if (round_latency > cfg_.deadline_s) break;  // sorted: all later are slower
    if (cost + o.cost > cap) continue;
    picks.push_back(i);
    cost += o.cost;
  }
  // FedCS still needs someone; admit the fastest affordable client if the
  // deadline excluded everyone.
  if (picks.empty()) {
    for (std::size_t i : order) {
      if (ctx.available[i].cost <= cap) {
        picks.push_back(i);
        break;
      }
    }
  }
  return to_decision(ctx, picks, cfg_.base.iterations);
}

// --- Pow-d -------------------------------------------------------------------

PowDStrategy::PowDStrategy(std::size_t num_clients, PowDConfig cfg)
    : cfg_(cfg), rng_(cfg.base.seed), loss_est_(num_clients, 2.303) {
  FEDL_CHECK_GE(cfg.d, cfg.base.n_select);
}

Decision PowDStrategy::decide(const sim::EpochContext& ctx,
                              const BudgetLedger& budget) {
  const std::size_t k = ctx.available.size();
  if (k == 0) return {};
  const std::size_t d = std::min<std::size_t>(cfg_.d, k);
  auto candidates = rng_.sample_without_replacement(k, d);
  // Keep the n with the largest estimated local loss.
  std::sort(candidates.begin(), candidates.end(),
            [&](std::size_t a, std::size_t b) {
              return loss_est_[ctx.available[a].id] >
                     loss_est_[ctx.available[b].id];
            });
  const std::size_t want = std::min<std::size_t>(cfg_.base.n_select, d);
  std::vector<std::size_t> picks(
      candidates.begin(),
      candidates.begin() + static_cast<std::ptrdiff_t>(want));
  enforce_cap(ctx, picks,
              per_epoch_cap(ctx, budget, cfg_.base.n_select, cfg_.base.pacing));
  return to_decision(ctx, picks, cfg_.base.iterations);
}

void PowDStrategy::observe(const sim::EpochContext& ctx,
                           const Decision& decision,
                           const fl::EpochOutcome& outcome) {
  (void)ctx;
  // The selected clients reveal their local loss: track the pre-update loss.
  for (std::size_t i = 0; i < decision.selected.size(); ++i) {
    const std::size_t id = decision.selected[i];
    if (id >= loss_est_.size()) continue;
    if (i < outcome.client_loss_reduction.size()) {
      // loss_after = loss_before − reduction ⇒ new estimate for next time.
      loss_est_[id] = std::max(
          0.0, outcome.train_loss_selected);
    }
  }
  // Everyone drifts toward the global loss (their data follows the global
  // distribution in expectation) so stale estimates decay.
  for (auto& l : loss_est_)
    l = 0.95 * l + 0.05 * outcome.train_loss_all;
}

// --- Greedy oracle -------------------------------------------------------------

GreedyOracleStrategy::GreedyOracleStrategy(BaselineConfig cfg) : cfg_(cfg) {}

Decision GreedyOracleStrategy::decide(const sim::EpochContext& ctx,
                                      const BudgetLedger& budget) {
  const std::size_t k = ctx.available.size();
  if (k == 0) return {};
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& oa = ctx.available[a];
    const auto& ob = ctx.available[b];
    return oa.tau_loc + oa.tau_cm_est < ob.tau_loc + ob.tau_cm_est;
  });
  const double cap =
      per_epoch_cap(ctx, budget, cfg_.n_select, cfg_.pacing);
  std::vector<std::size_t> picks;
  double cost = 0.0;
  for (std::size_t i : order) {
    if (picks.size() >= cfg_.n_select) break;
    if (cost + ctx.available[i].cost > cap) continue;
    picks.push_back(i);
    cost += ctx.available[i].cost;
  }
  return to_decision(ctx, picks, 1);  // ρ* = 1 minimizes f_t
}

}  // namespace fedl::core
