// Long-term budget accounting — constraint (3a) and the stopping-time range
//   C/(n·max c) ≤ T_C ≤ C/(n·min c)
// that the reformulation uses to bound the FL life cycle.
#pragma once

#include <cstddef>

namespace fedl::core {

struct HorizonBounds {
  double lower = 0.0;  // C / (n · max cost)
  double upper = 0.0;  // C / (n · min cost)
};

class BudgetLedger {
 public:
  explicit BudgetLedger(double total);

  double total() const { return total_; }
  double spent() const { return spent_; }
  double remaining() const { return total_ - spent_; }
  bool exhausted() const { return remaining() <= 0.0; }

  // Records an epoch's rent. Constraint (3a) is a *hard* budget: the
  // selection layer repairs every integral decision back under the
  // remaining budget before committing, so an overdraw here is a bug in the
  // caller — charge() FEDL_CHECKs (up to floating-point slack) that spent_
  // never exceeds total_ rather than silently spending past it.
  void charge(double amount);

  // Paper's T_C range for minimum participation n and the observed cost
  // bounds. Throws ConfigError on degenerate inputs.
  static HorizonBounds horizon_bounds(double budget, std::size_t n,
                                      double min_cost, double max_cost);

 private:
  double total_;
  double spent_ = 0.0;
};

}  // namespace fedl::core
