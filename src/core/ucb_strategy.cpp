#include "core/ucb_strategy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/math_util.h"

namespace fedl::core {

UcbStrategy::UcbStrategy(std::size_t num_clients, UcbConfig cfg)
    : cfg_(cfg), reward_sum_(num_clients, 0.0), pulls_(num_clients, 0) {
  FEDL_CHECK_GT(num_clients, 0u);
  FEDL_CHECK_GT(cfg.base.n_select, 0u);
}

double UcbStrategy::mean_reward(std::size_t client) const {
  FEDL_CHECK_LT(client, reward_sum_.size());
  return pulls_[client] == 0
             ? 0.0
             : reward_sum_[client] / static_cast<double>(pulls_[client]);
}

std::size_t UcbStrategy::pulls(std::size_t client) const {
  FEDL_CHECK_LT(client, pulls_.size());
  return pulls_[client];
}

Decision UcbStrategy::decide(const sim::EpochContext& ctx,
                             const BudgetLedger& budget) {
  const std::size_t k = ctx.available.size();
  if (k == 0) return {};
  ++epoch_;

  // UCB index per available client; unpulled arms get +inf (forced explore).
  std::vector<double> index(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t id = ctx.available[i].id;
    if (pulls_[id] == 0) {
      index[i] = std::numeric_limits<double>::infinity();
    } else {
      index[i] = mean_reward(id) +
                 cfg_.exploration *
                     std::sqrt(2.0 * std::log(static_cast<double>(epoch_)) /
                               static_cast<double>(pulls_[id]));
    }
  }
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return index[a] > index[b];
  });

  const double cap =
      per_epoch_cap(ctx, budget, cfg_.base.n_select, cfg_.base.pacing);
  Decision dec;
  dec.num_iterations = cfg_.base.iterations;
  double cost = 0.0;
  for (std::size_t i : order) {
    if (dec.selected.size() >= cfg_.base.n_select) break;
    if (cost + ctx.available[i].cost > cap) continue;
    dec.selected.push_back(ctx.available[i].id);
    cost += ctx.available[i].cost;
  }
  std::sort(dec.selected.begin(), dec.selected.end());
  return dec;
}

void UcbStrategy::observe(const sim::EpochContext& ctx,
                          const Decision& decision,
                          const fl::EpochOutcome& outcome) {
  (void)ctx;
  // Normalize latency to [0,1] within this epoch's participants so the
  // reward mixes loss progress and speed on comparable scales.
  double max_latency = 0.0;
  for (double l : outcome.client_latency_s)
    max_latency = std::max(max_latency, l);
  for (std::size_t i = 0; i < decision.selected.size(); ++i) {
    const std::size_t id = decision.selected[i];
    if (id >= reward_sum_.size()) continue;
    const double gain = i < outcome.client_loss_reduction.size()
                            ? positive_part(outcome.client_loss_reduction[i])
                            : 0.0;
    const double rel_latency =
        (max_latency > 0.0 && i < outcome.client_latency_s.size())
            ? outcome.client_latency_s[i] / max_latency
            : 0.0;
    reward_sum_[id] += gain - cfg_.latency_weight * rel_latency;
    pulls_[id] += 1;
  }
}

}  // namespace fedl::core
