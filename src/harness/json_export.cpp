#include "harness/json_export.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/error.h"

namespace fedl::harness {
namespace {

// JSON has no NaN/Inf; emit null for them.
void write_number(std::ostream& os, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  os << buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_trace_json(std::ostream& os, const fl::TrainTrace& trace) {
  os << "{\"algorithm\":\"" << json_escape(trace.algorithm)
     << "\",\"records\":[";
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    const auto& r = trace.records[i];
    if (i) os << ',';
    os << "{\"epoch\":" << r.epoch << ",\"round\":" << r.round
       << ",\"time_s\":";
    write_number(os, r.sim_time_s);
    os << ",\"cost\":";
    write_number(os, r.cost_spent);
    os << ",\"train_loss\":";
    write_number(os, r.train_loss);
    os << ",\"test_loss\":";
    write_number(os, r.test_loss);
    os << ",\"test_acc\":";
    write_number(os, r.test_accuracy);
    os << ",\"selected\":" << r.num_selected
       << ",\"iters\":" << r.num_iterations << ",\"eta\":";
    write_number(os, r.eta);
    os << '}';
  }
  os << "]}";
}

void write_traces_json(std::ostream& os,
                       const std::vector<fl::TrainTrace>& traces) {
  os << '[';
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i) os << ',';
    write_trace_json(os, traces[i]);
  }
  os << "]\n";
}

void write_traces_json_file(const std::string& path,
                            const std::vector<fl::TrainTrace>& traces) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw ConfigError("cannot write JSON: " + path);
  write_traces_json(out, traces);
  if (!out) throw ConfigError("short write on JSON: " + path);
}

void write_metrics_json_file(const std::string& path,
                             const obs::MetricsSnapshot& snapshot) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw ConfigError("cannot write JSON: " + path);
  snapshot.write_json(out);
  out << "\n";
  if (!out) throw ConfigError("short write on JSON: " + path);
}

void write_run_json(std::ostream& os,
                    const std::vector<fl::TrainTrace>& traces,
                    const obs::MetricsSnapshot& snapshot) {
  os << "{\"traces\":";
  // write_traces_json ends with '\n' for standalone files; inline here.
  os << '[';
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i) os << ',';
    write_trace_json(os, traces[i]);
  }
  os << "],\"metrics\":";
  snapshot.write_json(os);
  os << "}\n";
}

void write_run_json_file(const std::string& path,
                         const std::vector<fl::TrainTrace>& traces,
                         const obs::MetricsSnapshot& snapshot) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw ConfigError("cannot write JSON: " + path);
  write_run_json(out, traces, snapshot);
  if (!out) throw ConfigError("short write on JSON: " + path);
}

}  // namespace fedl::harness
