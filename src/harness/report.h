// Reporting helpers shared by the figure benches: CSV series blocks (one per
// algorithm) for replotting, plus the in-text comparison tables the paper
// quotes (accuracy after a fixed training time; completion time / rounds to
// a target accuracy).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "fl/trace.h"
#include "obs/metrics.h"

namespace fedl::harness {

// Print "== Series: <figure> / <label>" followed by a CSV block with columns
// epoch,round,time_s,cost,train_loss,test_loss,test_acc,selected,iters,eta.
void print_trace_series(std::ostream& os, const std::string& figure,
                        const std::string& label, const fl::TrainTrace& trace);

// "== Table: accuracy after <t>s" — one row per trace.
void print_accuracy_at_time_table(std::ostream& os, double time_s,
                                  const std::vector<fl::TrainTrace>& traces);

// "== Table: completion time to <acc>" — one row per trace, with the
// relative saving of the first trace (FedL) versus the best other.
void print_time_to_accuracy_table(std::ostream& os, double target_acc,
                                  const std::vector<fl::TrainTrace>& traces);

// "== Table: rounds to <acc>".
void print_rounds_to_accuracy_table(std::ostream& os, double target_acc,
                                    const std::vector<fl::TrainTrace>& traces);

// "== Metrics" — one row per counter/gauge/histogram in the snapshot
// (histograms show total / mean / the bucket layout compactly).
void print_metrics_summary(std::ostream& os,
                           const obs::MetricsSnapshot& snapshot);

}  // namespace fedl::harness
