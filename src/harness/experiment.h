// Experiment harness: builds a full scenario (dataset → partition → edge
// environment → engine) and runs one selection strategy through the FL
// procedure of Algorithm 1, recording the training trace and regret/fit.
//
// All strategies compared in one scenario see identical randomness: the
// environment, datasets and model initialization are rebuilt from the same
// seeds for every run, so differences in the traces come from the selection
// policy alone.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/baselines.h"
#include "core/fedl_strategy.h"
#include "core/regret.h"
#include "core/strategy.h"
#include "data/synthetic.h"
#include "fl/engine.h"
#include "fl/event_engine.h"
#include "fl/trace.h"
#include "obs/monitor.h"

namespace fedl::harness {

enum class Task { kFmnistLike, kCifarLike };

struct ScenarioConfig {
  Task task = Task::kFmnistLike;
  bool iid = true;
  std::size_t num_clients = 20;
  std::size_t n_min = 4;
  double budget = 600.0;
  std::size_t max_epochs = 200;  // safety cap on top of the budget stop
  std::size_t train_samples = 1500;
  std::size_t test_samples = 400;
  double width_scale = 0.25;   // model width (1.0 = exact paper CNN)
  double availability = 0.8;
  std::size_t batch_cap = 32;
  std::size_t eval_cap = 256;
  double theta = 0.5;          // θ: desired global-loss bound
  std::size_t fixed_iterations = 3;  // l for the non-adaptive baselines
  // FedL candidate-pruning width: max coordinates the prox solve sees per
  // epoch (0 = all of E_t, the exact paper algorithm).
  std::size_t selection_width = 0;
  // Terminate the run after this many consecutive epochs in which the
  // strategy selected nobody (e.g. every remaining epoch is budget-
  // infeasible) instead of spinning to max_epochs; 0 disables the guard.
  std::size_t empty_decision_streak = 8;
  std::uint64_t seed = 1;
  fl::DaneConfig dane;
  // FDMA split across the committed participants (bandwidth ablation).
  net::BandwidthPolicy bandwidth = net::BandwidthPolicy::kEqual;
  // Uplink update compression ("none" = the paper's constant payload).
  std::string compressor = "none";
  // Mid-epoch client failure model (0 = no failures, the paper's setting).
  fl::FaultSpec faults;
  // Server aggregation rule (paper formula vs selected-mean; DESIGN.md §4).
  fl::AggregationRule aggregation = fl::AggregationRule::kSelectedMean;
  // Event-driven (buffered-asynchronous) execution: async.enabled routes
  // run() through the virtual-clock EventEngine (DESIGN.md §12) — cohorts
  // overlap, aggregation happens on buffer flushes with staleness damping,
  // and the trace gains "event" records. Off (default) is the lockstep
  // path, byte-identical to before this mode existed.
  fl::AsyncConfig async;
  // UCB exploration bonus for the selection_width pruning score
  // (LearnerConfig::width_explore); 0 = pure exploit, bit-identical.
  double width_explore = 0.0;
  // Worker threads for per-client local training (FlEngine fan-out);
  // 1 = serial, 0 = draw the fan-out from the process-wide Scheduler's
  // remaining thread budget, K > 1 = request at most K-1 extra workers.
  // Results are bit-identical for every setting.
  std::size_t num_threads = 1;
  // When non-empty: load the global model from this checkpoint before the
  // run (if the file exists) and save it there after the run — long budget
  // sweeps survive interruption.
  std::string checkpoint_path;
  // When non-empty: append one JSONL decision event per epoch to this file
  // (availability set, selection, ρ_t, duals, budget ledger, per-client
  // observations and realized outcomes). Several runs may share the file;
  // split downstream by the "algorithm" field.
  std::string trace_out;
  // When true, run() does not touch trace_out itself: the run's JSONL
  // events are returned in RunResult::trace_jsonl instead, and the caller
  // commits them (fig_common flushes trial buffers in roster order after a
  // scheduler grid run, so the file is byte-identical at any --jobs).
  bool defer_trace = false;
  // Live health plane (obs/monitor.h): stream empirical dynamic regret
  // against the Theorem 2 envelope, budget-pacing deviation, estimator
  // drift, and dropout windows through the invariant monitor. Fired
  // anomalies land in the decision trace (type "anomaly"), in
  // RunResult::anomalies, and in the obs.anomaly.* counters. With
  // strict_monitor, any firing escalates to FEDL_CHECK *after* the trace
  // records are committed, so the artifact shows what tripped.
  bool monitor = false;
  bool strict_monitor = false;
  obs::MonitorConfig monitor_config;
  // Assumption-constant estimates feeding the regret envelope (the scale
  // bench/abl_regret_fit uses for this scenario family).
  core::TheoremConstants theorem_constants{/*g_f=*/10.0, /*g_h=*/5.0,
                                          /*radius=*/4.0, /*xi=*/20.0,
                                          /*beta=*/0.2, /*delta=*/0.5};
  // Determinism sentinel (obs/digest.h): chain an FNV-1a digest over each
  // epoch's trace record and the aggregated model parameters. Digests go to
  // RunResult::epoch_digests, to "digest" trace records (when tracing), and
  // the run's final digest folds into the process-wide manifest value.
  bool record_digests = false;
};

struct RunResult {
  fl::TrainTrace trace;
  core::RegretTracker regret;
  std::size_t epochs_run = 0;
  bool budget_exhausted = false;
  // The run's decision-trace events (newline-terminated JSONL) when
  // defer_trace was set; empty otherwise.
  std::string trace_jsonl;
  // Why the run stopped: "budget_exhausted" (ledger done or below the
  // cheapest rent), "infeasible_floor" (the n cheapest available clients
  // exceed the remainder), "empty_decisions" (empty_decision_streak hit),
  // or "max_epochs".
  std::string termination_reason;
  // Chained per-epoch determinism digests (record_digests); equal across
  // --jobs/--threads combinations on the same seed by the engine's
  // bit-identity guarantee.
  std::vector<std::uint64_t> epoch_digests;
  // Monitor firings in epoch order (cfg.monitor).
  std::vector<obs::AnomalyRecord> anomalies;
};

class Experiment {
 public:
  explicit Experiment(ScenarioConfig cfg);

  const ScenarioConfig& config() const { return cfg_; }
  const data::Dataset& train() const { return data_.train; }
  const data::Dataset& test() const { return data_.test; }

  // Runs the FL procedure with the given strategy until the budget is
  // exhausted or max_epochs is reached. Rebuilds environment/engine/model
  // from the scenario seeds so repeated runs are identical inputs.
  RunResult run(core::SelectionStrategy& strategy);

 private:
  sim::EnvironmentSpec environment_spec() const;
  nn::Model build_model() const;
  // The event-driven variant of run() (cfg.async.enabled): decisions at
  // flush boundaries, overlapping cohorts, epoch records emitted through a
  // reorder buffer so the trace schema stays monotone per epoch.
  RunResult run_async(core::SelectionStrategy& strategy);

  ScenarioConfig cfg_;
  data::TrainTest data_;
  data::Partition partition_;
};

// Strategy factory for the bench binaries. Names: "fedl", "fedavg",
// "fedcs", "powd", "oracle", "ucb" (bandit baseline), "fedl-ind"
// (independent-rounding ablation), "fedl-fair" (fairness extension).
std::unique_ptr<core::SelectionStrategy> make_strategy(
    const std::string& name, const ScenarioConfig& cfg);

// Display name (SelectionStrategy::name()) for a factory name, without
// constructing the strategy. Throws ConfigError for unknown names.
std::string strategy_display_name(const std::string& name);

// The roster the paper compares (Figs. 2–7).
std::vector<std::string> paper_roster();

}  // namespace fedl::harness
