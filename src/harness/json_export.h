// JSON export of training traces and run summaries, for external plotting
// (any notebook can read the per-epoch series without parsing bench stdout).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "fl/trace.h"
#include "obs/metrics.h"

namespace fedl::harness {

// Serializes one trace as {"algorithm": ..., "records": [{...}, ...]}.
void write_trace_json(std::ostream& os, const fl::TrainTrace& trace);

// Serializes several traces as a JSON array; `path` version writes a file
// (throws ConfigError on I/O failure).
void write_traces_json(std::ostream& os,
                       const std::vector<fl::TrainTrace>& traces);
void write_traces_json_file(const std::string& path,
                            const std::vector<fl::TrainTrace>& traces);

// Serializes a metrics snapshot (see obs/metrics.h for the JSON shape).
void write_metrics_json_file(const std::string& path,
                             const obs::MetricsSnapshot& snapshot);

// Bundles traces and the metrics snapshot of the run that produced them:
// {"traces": [...], "metrics": {...}}.
void write_run_json(std::ostream& os,
                    const std::vector<fl::TrainTrace>& traces,
                    const obs::MetricsSnapshot& snapshot);
void write_run_json_file(const std::string& path,
                         const std::vector<fl::TrainTrace>& traces,
                         const obs::MetricsSnapshot& snapshot);

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s);

}  // namespace fedl::harness
