#include "harness/experiment.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "common/error.h"
#include "common/logging.h"
#include "core/ucb_strategy.h"
#include "data/partition.h"
#include "nn/factory.h"
#include "nn/serialize.h"
#include "obs/digest.h"
#include "obs/event_trace.h"
#include "obs/manifest.h"
#include "obs/profile.h"
#include "obs/time_series.h"
#include "parallel/scheduler.h"

namespace fedl::harness {
namespace {

data::SyntheticSpec dataset_spec(const ScenarioConfig& cfg) {
  data::SyntheticSpec s =
      cfg.task == Task::kFmnistLike
          ? data::fmnist_like_spec(cfg.train_samples, cfg.seed)
          : data::cifar_like_spec(cfg.train_samples, cfg.seed);
  return s;
}

// FNV-1a over the scenario fields that shape the run, so the manifest can
// tell two configurations apart without embedding the whole config. Not a
// full serialization: flags that only steer artifact emission (trace paths,
// monitor toggles) are deliberately excluded — they don't change the
// decisions or the numerics.
std::uint64_t scenario_config_hash(const ScenarioConfig& cfg) {
  std::ostringstream os;
  os << static_cast<int>(cfg.task) << '|' << cfg.iid << '|'
     << cfg.num_clients << '|' << cfg.n_min << '|' << cfg.budget << '|'
     << cfg.max_epochs << '|' << cfg.train_samples << '|'
     << cfg.test_samples << '|' << cfg.width_scale << '|'
     << cfg.availability << '|' << cfg.batch_cap << '|' << cfg.eval_cap
     << '|' << cfg.theta << '|' << cfg.fixed_iterations << '|'
     << cfg.selection_width << '|' << cfg.empty_decision_streak << '|'
     << cfg.seed << '|' << static_cast<int>(cfg.bandwidth) << '|'
     << cfg.compressor << '|' << cfg.faults.dropout_prob << '|'
     << cfg.faults.timeout_multiplier << '|'
     << static_cast<int>(cfg.aggregation) << '|' << cfg.async.enabled << '|'
     << cfg.async.buffer_k << '|' << cfg.async.staleness_exponent << '|'
     << cfg.async.flush_timeout_s << '|' << cfg.width_explore;
  const std::string s = os.str();
  return obs::fnv1a(s.data(), s.size());
}

// Decision-time view of the FedL learner, captured BEFORE strategy.observe()
// mutates the duals and estimates — the trace must show the state the
// selection was actually made from. Empty vectors for non-FedL strategies.
struct LearnerSnapshot {
  bool present = false;
  double rho = 0.0;                // ρ_t committed by decide()
  double mu0 = 0.0;                // dual of the global-loss constraint h^0
  std::vector<double> x_frac;      // x̃_{t,k}, aligned with ctx.available
  std::vector<double> mu;          // μ^k per available client
  std::vector<double> eta_est;     // η̂_k used at decision time
  std::vector<double> delta_est;   // Δ̂_k used at decision time

  static LearnerSnapshot capture(const core::SelectionStrategy& strategy,
                                 const sim::EpochContext& ctx) {
    LearnerSnapshot snap;
    const auto* fedl = dynamic_cast<const core::FedLStrategy*>(&strategy);
    if (fedl == nullptr) return snap;
    snap.present = true;
    snap.rho = fedl->last_fraction().rho;
    const core::OnlineLearner& learner = fedl->learner();
    snap.mu0 = learner.mu0();
    snap.x_frac.reserve(ctx.available.size());
    snap.mu.reserve(ctx.available.size());
    snap.eta_est.reserve(ctx.available.size());
    snap.delta_est.reserve(ctx.available.size());
    for (const auto& o : ctx.available) {
      snap.x_frac.push_back(learner.x_fraction(o.id));
      snap.mu.push_back(learner.mu_k(o.id));
      snap.eta_est.push_back(learner.eta_estimate(o.id));
      snap.delta_est.push_back(learner.delta_estimate(o.id));
    }
    return snap;
  }
};

// One JSONL record per epoch: the decision context (who was available and at
// what posted cost/latency), the selection, the learner internals, the budget
// ledger, and the realized outcome. scripts/validate_trace.py checks this
// schema; DESIGN.md §Observability maps the fields to the paper's symbols.
// Events are serialized into `sink` (one line each); the run commits the
// whole buffer at the end — directly when it owns the file, or via
// RunResult::trace_jsonl when the caller sequences trials (defer_trace).
void write_epoch_event(std::string& sink,
                       const std::string& algorithm,
                       const sim::EpochContext& ctx,
                       const core::Decision& decision,
                       const LearnerSnapshot& snap,
                       const fl::EpochOutcome& out,
                       const core::BudgetLedger& ledger,
                       double budget_total) {
  std::ostringstream line;
  {
    obs::JsonWriter w(line);
    w.begin_object();
    w.key("type").value("epoch");
    w.key("algorithm").value(algorithm);
    w.key("epoch").value(static_cast<std::uint64_t>(ctx.epoch));
    w.key("num_available").value(
        static_cast<std::uint64_t>(ctx.available.size()));
    w.key("num_selected").value(
        static_cast<std::uint64_t>(decision.selected.size()));
    w.key("iterations").value(
        static_cast<std::uint64_t>(out.num_iterations));
    w.key("rho");
    if (snap.present) w.value(snap.rho); else w.null();
    w.key("mu0");
    if (snap.present) w.value(snap.mu0); else w.null();
    w.key("eta_max").value(out.eta_max);
    w.key("latency_s").value(out.latency_s);
    w.key("epoch_cost").value(out.cost);
    w.key("budget_total").value(budget_total);
    w.key("budget_spent").value(ledger.spent());
    w.key("budget_remaining").value(ledger.remaining());
    w.key("train_loss_selected").value(out.train_loss_selected);
    w.key("train_loss_all").value(out.train_loss_all);
    w.key("test_loss").value(out.test_loss);
    w.key("test_accuracy").value(out.test_accuracy);
    w.key("num_dropped").value(static_cast<std::uint64_t>(out.num_dropped));
    w.key("clients").begin_array();
    for (std::size_t i = 0; i < ctx.available.size(); ++i) {
      const auto& o = ctx.available[i];
      // Position of this client in the selected/outcome arrays, if any.
      std::size_t sel = decision.selected.size();
      for (std::size_t j = 0; j < decision.selected.size(); ++j)
        if (decision.selected[j] == o.id) { sel = j; break; }
      const bool selected = sel < decision.selected.size();
      w.begin_object();
      w.key("id").value(static_cast<std::uint64_t>(o.id));
      w.key("cost").value(o.cost);
      w.key("data_size").value(static_cast<std::uint64_t>(o.data_size));
      w.key("tau_loc").value(o.tau_loc);
      w.key("tau_cm_est").value(o.tau_cm_est);
      w.key("x_frac");
      if (snap.present) w.value(snap.x_frac[i]); else w.null();
      w.key("mu");
      if (snap.present) w.value(snap.mu[i]); else w.null();
      w.key("eta_est");
      if (snap.present) w.value(snap.eta_est[i]); else w.null();
      w.key("delta_est");
      if (snap.present) w.value(snap.delta_est[i]); else w.null();
      w.key("selected").value(selected);
      w.key("eta_hat");
      if (selected && sel < out.client_eta.size())
        w.value(out.client_eta[sel]);
      else
        w.null();
      w.key("delta_hat");
      if (selected && sel < out.client_loss_reduction.size())
        w.value(out.client_loss_reduction[sel]);
      else
        w.null();
      w.key("latency_s");
      if (selected && sel < out.client_latency_s.size())
        w.value(out.client_latency_s[sel]);
      else
        w.null();
      w.key("completed_iters");
      if (selected && sel < out.client_completed_iters.size())
        w.value(static_cast<std::uint64_t>(out.client_completed_iters[sel]));
      else
        w.null();
      w.key("dropped").value(
          selected && sel < out.client_completed_iters.size() &&
          out.client_completed_iters[sel] < out.num_iterations);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  sink += line.str();
  sink += '\n';
}

// Virtual-clock event record (event-driven mode): one line per
// dispatch/complete/drop/flush, streamed in virtual-time order between the
// (reorder-buffered) epoch records. Field nullability is per kind —
// staleness only exists once an update arrives (complete, and flush's batch
// max), buffer occupancy is meaningless before anything can be buffered
// (dispatch), aggregated counts exist only for flushes, and a flush has no
// single client. scripts/validate_trace.py enforces exactly these rules.
void write_event_record(std::string& sink, const std::string& algorithm,
                        const fl::AsyncEvent& e) {
  const char* kind = "dispatch";
  switch (e.kind) {
    case fl::AsyncEvent::Kind::kDispatch: kind = "dispatch"; break;
    case fl::AsyncEvent::Kind::kComplete: kind = "complete"; break;
    case fl::AsyncEvent::Kind::kDrop: kind = "drop"; break;
    case fl::AsyncEvent::Kind::kFlush: kind = "flush"; break;
  }
  const bool is_flush = e.kind == fl::AsyncEvent::Kind::kFlush;
  const bool is_complete = e.kind == fl::AsyncEvent::Kind::kComplete;
  std::ostringstream line;
  {
    obs::JsonWriter w(line);
    w.begin_object();
    w.key("type").value("event");
    w.key("algorithm").value(algorithm);
    w.key("kind").value(kind);
    w.key("vt").value(e.vt);
    w.key("epoch").value(static_cast<std::uint64_t>(e.epoch));
    w.key("client");
    if (is_flush) w.null();
    else w.value(static_cast<std::uint64_t>(e.client));
    w.key("version").value(static_cast<std::uint64_t>(e.version));
    w.key("staleness");
    if (is_complete || is_flush)
      w.value(static_cast<std::uint64_t>(e.staleness));
    else
      w.null();
    w.key("buffer");
    if (e.kind == fl::AsyncEvent::Kind::kDispatch) w.null();
    else w.value(static_cast<std::uint64_t>(e.buffer));
    w.key("aggregated");
    if (is_flush) w.value(static_cast<std::uint64_t>(e.aggregated));
    else w.null();
    w.end_object();
  }
  sink += line.str();
  sink += '\n';
}

// Determinism-sentinel record: the chain digest after folding in this
// epoch's trace record and the aggregated model parameters. `prev` lets
// scripts/validate_trace.py check chain continuity without recomputing.
void write_digest_event(std::string& sink, const std::string& algorithm,
                        std::size_t epoch, std::uint64_t prev,
                        std::uint64_t digest) {
  std::ostringstream line;
  {
    obs::JsonWriter w(line);
    w.begin_object();
    w.key("type").value("digest");
    w.key("algorithm").value(algorithm);
    w.key("epoch").value(static_cast<std::uint64_t>(epoch));
    w.key("hash").value("fnv1a64");
    w.key("prev").value(obs::digest_hex(prev));
    w.key("digest").value(obs::digest_hex(digest));
    w.end_object();
  }
  sink += line.str();
  sink += '\n';
}

// Structured anomaly record mirroring obs::AnomalyRecord.
void write_anomaly_event(std::string& sink, const std::string& algorithm,
                         const obs::AnomalyRecord& a) {
  std::ostringstream line;
  {
    obs::JsonWriter w(line);
    w.begin_object();
    w.key("type").value("anomaly");
    w.key("algorithm").value(algorithm);
    w.key("epoch").value(a.epoch);
    w.key("monitor").value(a.monitor);
    w.key("observed").value(a.observed);
    w.key("limit").value(a.limit);
    w.key("detail").value(a.detail);
    w.end_object();
  }
  sink += line.str();
  sink += '\n';
}

// Trajectory series owned by the harness loop: spend-vs-pace, scheduler
// occupancy, and decide() latency. Statics so registration happens once.
struct HarnessSeries {
  obs::Series budget_spent{"budget.spent"};
  obs::Series pacing_cap{"budget.pacing_cap"};
  obs::Series scheduler_inflight{"scheduler.inflight"};
  obs::Series decide_latency{"harness.decide_latency_s"};
};
const HarnessSeries& harness_series() {
  static const HarnessSeries s;
  return s;
}

}  // namespace

Experiment::Experiment(ScenarioConfig cfg) : cfg_(cfg) {
  FEDL_CHECK_GT(cfg_.num_clients, 0u);
  FEDL_CHECK_GE(cfg_.num_clients, cfg_.n_min);
  data_ = data::make_synthetic_train_test(dataset_spec(cfg_),
                                          cfg_.test_samples);
  Rng prng(cfg_.seed ^ 0x9e3779b9ULL);
  partition_ =
      cfg_.iid ? data::partition_iid(data_.train, cfg_.num_clients, prng)
               : data::partition_noniid_principal(data_.train,
                                                  cfg_.num_clients,
                                                  /*principal_classes=*/2,
                                                  /*principal_frac=*/0.8,
                                                  prng);
}

sim::EnvironmentSpec Experiment::environment_spec() const {
  sim::EnvironmentSpec env;
  env.num_clients = cfg_.num_clients;
  env.expected_participants = std::max<std::size_t>(1, cfg_.n_min);
  env.device.availability_prob = cfg_.availability;
  env.device.seed = cfg_.seed * 31 + 7;
  env.channel.seed = cfg_.seed * 37 + 11;
  env.online.seed = cfg_.seed * 41 + 13;
  const data::Dataset& tr = data_.train;
  env.device.bits_per_sample =
      static_cast<double>(tr.sample_numel()) * 32.0;
  env.bandwidth = cfg_.bandwidth;
  return env;
}

nn::Model Experiment::build_model() const {
  Rng mrng(cfg_.seed * 43 + 17);
  nn::ModelSpec ms;
  ms.width_scale = cfg_.width_scale;
  ms.l2_reg = cfg_.dane.gamma;
  if (cfg_.task == Task::kFmnistLike) {
    ms.image_h = ms.image_w = 28;
    ms.channels = 1;
    return nn::make_fmnist_cnn(ms, mrng);
  }
  ms.image_h = ms.image_w = 32;
  ms.channels = 3;
  return nn::make_cifar_cnn(ms, mrng);
}

RunResult Experiment::run(core::SelectionStrategy& strategy) {
  if (cfg_.async.enabled) return run_async(strategy);
  // Fresh, seed-identical world per run.
  sim::EdgeEnvironment env(environment_spec(), partition_);
  fl::EngineConfig ec;
  ec.dane = cfg_.dane;
  ec.aggregation = cfg_.aggregation;
  ec.compressor = cfg_.compressor;
  ec.faults = cfg_.faults;
  ec.batch_cap = cfg_.batch_cap;
  ec.eval_cap = cfg_.eval_cap;
  ec.num_threads = cfg_.num_threads;
  ec.seed = cfg_.seed * 47 + 19;
  fl::FlEngine engine(&data_.train, &data_.test, &env, build_model(), ec);

  if (!cfg_.checkpoint_path.empty()) {
    std::ifstream probe(cfg_.checkpoint_path);
    if (probe.good()) {
      engine.set_global_params(nn::load_params(cfg_.checkpoint_path));
      FEDL_INFO << "resumed global model from " << cfg_.checkpoint_path;
    }
  }

  core::BudgetLedger ledger(cfg_.budget);
  core::RegretConfig rc;
  rc.theta = cfg_.theta;
  rc.n_min = cfg_.n_min;
  RunResult result{fl::TrainTrace{strategy.name(), {}},
                   core::RegretTracker(cfg_.num_clients, rc),
                   0,
                   false,
                   {},
                   {},
                   {},
                   {}};

  // Manifest identity for this run (last-wins across a grid; per-run detail
  // lives in the trace).
  obs::set_manifest_field("seed", static_cast<std::uint64_t>(cfg_.seed));
  obs::set_manifest_field("algorithm", result.trace.algorithm);
  obs::set_manifest_field("config_hash",
                          obs::digest_hex(scenario_config_hash(cfg_)));

  // The FedL view of the strategy (learner internals, pacing cap) — null
  // for the baselines.
  auto* fedl_strategy = dynamic_cast<core::FedLStrategy*>(&strategy);

  std::optional<obs::InvariantMonitor> monitor;
  if (cfg_.monitor) monitor.emplace(cfg_.monitor_config);
  obs::DigestChain digest;

  // Structured decision telemetry, buffered per run so the whole trial
  // commits as one block (ObsSession truncated the shared file at startup;
  // concurrent grid trials never interleave lines).
  const bool tracing = !cfg_.trace_out.empty();
  std::string trace_buffer;

  std::size_t cumulative_rounds = 0;
  double cumulative_time = 0.0;
  // Once the remainder cannot rent even the cheapest possible client, the FL
  // procedure is over (Algorithm 1's `while C ≥ 0` with no affordable rent).
  const double min_rent = environment_spec().device.cost_lo;

  // Consecutive epochs in which the strategy selected nobody: when the
  // learner keeps declaring epochs infeasible (tight budget, expensive
  // availability draws) the run would otherwise spin to max_epochs paying
  // evaluation cost for empty rounds.
  std::size_t empty_streak = 0;

  for (std::size_t t = 0; t < cfg_.max_epochs; ++t) {
    if (ledger.exhausted() || ledger.remaining() < min_rent) {
      result.budget_exhausted = true;
      result.termination_reason = "budget_exhausted";
      break;
    }
    FEDL_PROFILE_SCOPE("harness.epoch");
    const sim::EpochContext& ctx = env.advance_epoch();

    // Constraint (3b) requires at least n participants per epoch; when the
    // remaining budget cannot rent even the n cheapest available clients,
    // the FL procedure is infeasible and terminates.
    if (!ctx.available.empty()) {
      std::vector<double> costs;
      costs.reserve(ctx.available.size());
      for (const auto& o : ctx.available) costs.push_back(o.cost);
      std::sort(costs.begin(), costs.end());
      const std::size_t need = std::min<std::size_t>(cfg_.n_min, costs.size());
      double cheapest_n = 0.0;
      for (std::size_t i = 0; i < need; ++i) cheapest_n += costs[i];
      if (cheapest_n > ledger.remaining()) {
        result.budget_exhausted = true;
        result.termination_reason = "infeasible_floor";
        break;
      }
    }

    core::Decision decision;
    double decide_latency_s = 0.0;
    {
      FEDL_PROFILE_SCOPE("strategy.decide");
      const auto decide_start = std::chrono::steady_clock::now();
      decision = strategy.decide(ctx, ledger);
      decide_latency_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - decide_start)
                             .count();
    }
    if (decision.selected.empty()) {
      ++empty_streak;
      if (cfg_.empty_decision_streak > 0 &&
          empty_streak >= cfg_.empty_decision_streak) {
        result.termination_reason = "empty_decisions";
        break;
      }
    } else {
      empty_streak = 0;
    }

    // Guard the strategy contract: selected clients must be available.
    for (std::size_t id : decision.selected)
      FEDL_CHECK(ctx.is_available(id))
          << strategy.name() << " selected unavailable client " << id;

    fl::EpochOutcome out =
        engine.run_epoch(decision.selected, decision.num_iterations);
    ledger.charge(out.cost);
    // Snapshot decision-time learner state before observe() advances it.
    // The epoch record is also the digest input, so it is built whenever
    // either consumer needs it.
    if (tracing || cfg_.record_digests) {
      std::string epoch_line;
      write_epoch_event(epoch_line, result.trace.algorithm, ctx, decision,
                        LearnerSnapshot::capture(strategy, ctx), out, ledger,
                        cfg_.budget);
      if (cfg_.record_digests) {
        const std::uint64_t prev = digest.value();
        digest.update(epoch_line.data(), epoch_line.size());
        const nn::ParamVec& w = engine.global_params();
        if (!w.empty()) digest.update(w.data(), w.size() * sizeof(w[0]));
        result.epoch_digests.push_back(digest.value());
        if (tracing)
          write_digest_event(epoch_line, result.trace.algorithm, ctx.epoch,
                             prev, digest.value());
      }
      if (tracing) trace_buffer += epoch_line;
    }
    strategy.observe(ctx, decision, out);

    double rho = static_cast<double>(std::max<std::size_t>(
        1, decision.num_iterations));
    if (fedl_strategy != nullptr) rho = fedl_strategy->last_fraction().rho;
    result.regret.record(ctx, ledger, decision, rho, out);

    {
      const HarnessSeries& series = harness_series();
      const auto epoch = static_cast<std::uint64_t>(ctx.epoch);
      series.budget_spent.sample(epoch, ledger.spent());
      if (fedl_strategy != nullptr)
        series.pacing_cap.sample(epoch, fedl_strategy->last_fraction().cap);
      series.decide_latency.sample(epoch, decide_latency_s);
      // stats() takes the scheduler mutex; only pay for it when recording.
      if (obs::TimeSeriesRecorder::global().enabled())
        series.scheduler_inflight.sample(
            epoch,
            static_cast<double>(Scheduler::instance().stats().inflight()));
    }

    if (monitor) {
      obs::EpochSample sample;
      sample.epoch = static_cast<std::uint64_t>(ctx.epoch);
      // Theorem 2 bounds FedL's regret only — the baselines make no such
      // promise, so their (larger) regret is not an anomaly.
      if (fedl_strategy != nullptr) {
        sample.regret = result.regret.regret();
        sample.regret_bound = core::theorem2_regret_bound(
            cfg_.theorem_constants, result.regret.v_phi(),
            result.regret.v_h(), result.regret.v_h_step_max(),
            static_cast<double>(result.regret.epochs()));
      }
      sample.epoch_cost = out.cost;
      if (fedl_strategy != nullptr && !decision.selected.empty())
        sample.pacing_cap = fedl_strategy->last_fraction().cap;
      sample.budget_spent = ledger.spent();
      sample.budget_total = cfg_.budget;
      // Empty epochs yield no η observation: eta_max would read as a bogus
      // 0.0 and fake an estimator collapse.
      if (!decision.selected.empty()) sample.eta_max = out.eta_max;
      sample.num_selected = static_cast<double>(decision.selected.size());
      sample.num_dropped = static_cast<double>(out.num_dropped);
      const auto fired = monitor->on_epoch(sample);
      for (const auto& a : fired) {
        FEDL_WARN << "monitor anomaly [" << a.monitor << "] epoch "
                  << a.epoch << ": " << a.detail;
        if (tracing)
          write_anomaly_event(trace_buffer, result.trace.algorithm, a);
        result.anomalies.push_back(a);
      }
      if (!fired.empty() && cfg_.strict_monitor) {
        // Commit what we have before dying so the trace shows what tripped
        // (the ObsSession crash hook flushes the artifacts it owns; the
        // buffered trace is ours to write).
        if (tracing && !cfg_.defer_trace) {
          obs::EventTraceWriter(cfg_.trace_out, true).write_raw(trace_buffer);
          trace_buffer.clear();
        }
        FEDL_CHECK(false) << "--strict-monitor: " << fired.front().monitor
                          << " anomaly at epoch " << fired.front().epoch
                          << " — " << fired.front().detail;
      }
    }

    cumulative_rounds += out.num_iterations;
    cumulative_time += out.latency_s;
    fl::TraceRecord rec;
    rec.epoch = ctx.epoch;
    rec.round = cumulative_rounds;
    rec.sim_time_s = cumulative_time;
    rec.cost_spent = ledger.spent();
    rec.train_loss = out.train_loss_all;
    rec.test_loss = out.test_loss;
    rec.test_accuracy = out.test_accuracy;
    rec.num_selected = decision.selected.size();
    rec.num_iterations = out.num_iterations;
    rec.eta = out.eta_max;
    result.trace.records.push_back(rec);
    ++result.epochs_run;
  }
  if (ledger.exhausted()) result.budget_exhausted = true;
  if (result.termination_reason.empty())
    result.termination_reason = "max_epochs";
  if (tracing) {
    if (cfg_.defer_trace)
      result.trace_jsonl = std::move(trace_buffer);
    else
      obs::EventTraceWriter(cfg_.trace_out, true).write_raw(trace_buffer);
  }
  // Fold this run's final chain value into the process-wide digest the
  // manifest reports (XOR-combined, so grid completion order is irrelevant).
  if (cfg_.record_digests) obs::note_run_digest(digest.value());
  if (!cfg_.checkpoint_path.empty())
    nn::save_params(engine.global_params(), cfg_.checkpoint_path);
  FEDL_INFO << strategy.name() << ": " << result.epochs_run << " epochs, "
            << "acc=" << result.trace.final_accuracy()
            << " time=" << result.trace.total_time() << "s"
            << " cost=" << result.trace.total_cost() << "/" << cfg_.budget;
  return result;
}

RunResult Experiment::run_async(core::SelectionStrategy& strategy) {
  // World construction mirrors run() exactly: same seeds, same engine
  // config, so lockstep and event mode race on identical physics and the
  // only difference is the execution discipline.
  sim::EdgeEnvironment env(environment_spec(), partition_);
  fl::EngineConfig ec;
  ec.dane = cfg_.dane;
  ec.aggregation = cfg_.aggregation;
  ec.compressor = cfg_.compressor;
  // The event engine draws mid-flight failures itself from this spec at
  // dispatch (an async dropout is a total loss, not a partial barrier
  // harvest); run_local_jobs never injects faults, so there is no double
  // application.
  ec.faults = cfg_.faults;
  ec.batch_cap = cfg_.batch_cap;
  ec.eval_cap = cfg_.eval_cap;
  ec.num_threads = cfg_.num_threads;
  ec.seed = cfg_.seed * 47 + 19;
  fl::FlEngine engine(&data_.train, &data_.test, &env, build_model(), ec);

  if (!cfg_.checkpoint_path.empty()) {
    std::ifstream probe(cfg_.checkpoint_path);
    if (probe.good()) {
      engine.set_global_params(nn::load_params(cfg_.checkpoint_path));
      FEDL_INFO << "resumed global model from " << cfg_.checkpoint_path;
    }
  }

  core::BudgetLedger ledger(cfg_.budget);
  core::RegretConfig rc;
  rc.theta = cfg_.theta;
  rc.n_min = cfg_.n_min;
  RunResult result{fl::TrainTrace{strategy.name(), {}},
                   core::RegretTracker(cfg_.num_clients, rc),
                   0,
                   false,
                   {},
                   {},
                   {},
                   {}};

  obs::set_manifest_field("seed", static_cast<std::uint64_t>(cfg_.seed));
  obs::set_manifest_field("algorithm", result.trace.algorithm);
  obs::set_manifest_field("config_hash",
                          obs::digest_hex(scenario_config_hash(cfg_)));

  auto* fedl_strategy = dynamic_cast<core::FedLStrategy*>(&strategy);
  std::optional<obs::InvariantMonitor> monitor;
  if (cfg_.monitor) monitor.emplace(cfg_.monitor_config);
  obs::DigestChain digest;
  const bool tracing = !cfg_.trace_out.empty();
  std::string trace_buffer;

  fl::EventEngine evt(&engine, &env, cfg_.async, cfg_.seed * 71 + 23);

  // Decision-time state an epoch needs when its cohort finally resolves:
  // outcomes arrive out of dispatch order (a big straggler cohort can outlive
  // several later ones), while observe()/regret/trace must consume the
  // context and learner snapshot of the *dispatching* epoch.
  struct PendingEpoch {
    sim::EpochContext ctx;  // in-flight members filtered out
    core::Decision decision;
    LearnerSnapshot snap;
    double decide_latency_s = 0.0;
    double rho = 0.0;
    double cap = 0.0;
  };
  std::map<std::size_t, PendingEpoch> pending;
  std::map<std::size_t, fl::CohortOutcome> resolved;  // by dispatch epoch
  std::size_t next_emit = 0;
  bool next_emit_set = false;

  std::size_t cumulative_rounds = 0;
  double sim_time = 0.0;  // running max of resolve virtual times
  const double min_rent = environment_spec().device.cost_lo;
  std::size_t empty_streak = 0;

  // Streams this turn's events into the trace and files resolved cohorts
  // into the reorder buffer.
  auto pump = [&]() {
    if (tracing) {
      for (const fl::AsyncEvent& e : evt.take_events())
        write_event_record(trace_buffer, result.trace.algorithm, e);
    } else {
      evt.take_events();
    }
    for (fl::CohortOutcome& co : evt.take_resolved()) {
      const std::size_t ep = co.outcome.epoch;
      resolved.emplace(ep, std::move(co));
    }
  };

  // Emits every epoch whose cohort has resolved, in contiguous epoch order,
  // with the exact record/observe/regret/monitor sequence of the lockstep
  // loop (strict-monitor anomalies FEDL_CHECK from inside, after the trace
  // commits, exactly as there).
  auto drain = [&]() {
    while (next_emit_set) {
      auto it = resolved.find(next_emit);
      if (it == resolved.end()) break;
      const fl::CohortOutcome& co = it->second;
      const fl::EpochOutcome& out = co.outcome;
      PendingEpoch& pe = pending.at(next_emit);

      if (tracing || cfg_.record_digests) {
        std::string epoch_line;
        write_epoch_event(epoch_line, result.trace.algorithm, pe.ctx,
                          pe.decision, pe.snap, out, ledger, cfg_.budget);
        if (cfg_.record_digests) {
          const std::uint64_t prev = digest.value();
          digest.update(epoch_line.data(), epoch_line.size());
          const nn::ParamVec& w = engine.global_params();
          if (!w.empty()) digest.update(w.data(), w.size() * sizeof(w[0]));
          result.epoch_digests.push_back(digest.value());
          if (tracing)
            write_digest_event(epoch_line, result.trace.algorithm,
                               pe.ctx.epoch, prev, digest.value());
        }
        if (tracing) trace_buffer += epoch_line;
      }
      strategy.observe(pe.ctx, pe.decision, out);
      result.regret.record(pe.ctx, ledger, pe.decision, pe.rho, out);

      {
        const HarnessSeries& series = harness_series();
        const auto epoch = static_cast<std::uint64_t>(pe.ctx.epoch);
        series.budget_spent.sample(epoch, ledger.spent());
        if (fedl_strategy != nullptr)
          series.pacing_cap.sample(epoch, pe.cap);
        series.decide_latency.sample(epoch, pe.decide_latency_s);
        if (obs::TimeSeriesRecorder::global().enabled())
          series.scheduler_inflight.sample(
              epoch,
              static_cast<double>(Scheduler::instance().stats().inflight()));
      }

      if (monitor) {
        obs::EpochSample sample;
        sample.epoch = static_cast<std::uint64_t>(pe.ctx.epoch);
        if (fedl_strategy != nullptr) {
          sample.regret = result.regret.regret();
          sample.regret_bound = core::theorem2_regret_bound(
              cfg_.theorem_constants, result.regret.v_phi(),
              result.regret.v_h(), result.regret.v_h_step_max(),
              static_cast<double>(result.regret.epochs()));
        }
        sample.epoch_cost = out.cost;
        if (fedl_strategy != nullptr && !pe.decision.selected.empty())
          sample.pacing_cap = pe.cap;
        sample.budget_spent = ledger.spent();
        sample.budget_total = cfg_.budget;
        if (!pe.decision.selected.empty()) sample.eta_max = out.eta_max;
        sample.num_selected =
            static_cast<double>(pe.decision.selected.size());
        sample.num_dropped = static_cast<double>(out.num_dropped);
        const auto fired = monitor->on_epoch(sample);
        for (const auto& a : fired) {
          FEDL_WARN << "monitor anomaly [" << a.monitor << "] epoch "
                    << a.epoch << ": " << a.detail;
          if (tracing)
            write_anomaly_event(trace_buffer, result.trace.algorithm, a);
          result.anomalies.push_back(a);
        }
        if (!fired.empty() && cfg_.strict_monitor) {
          if (tracing && !cfg_.defer_trace) {
            obs::EventTraceWriter(cfg_.trace_out, true)
                .write_raw(trace_buffer);
            trace_buffer.clear();
          }
          FEDL_CHECK(false) << "--strict-monitor: " << fired.front().monitor
                            << " anomaly at epoch " << fired.front().epoch
                            << " — " << fired.front().detail;
        }
      }

      cumulative_rounds += out.num_iterations;
      sim_time = std::max(sim_time, co.resolve_vt);
      fl::TraceRecord rec;
      rec.epoch = pe.ctx.epoch;
      rec.round = cumulative_rounds;
      rec.sim_time_s = sim_time;
      rec.cost_spent = ledger.spent();
      rec.train_loss = out.train_loss_all;
      rec.test_loss = out.test_loss;
      rec.test_accuracy = out.test_accuracy;
      rec.num_selected = pe.decision.selected.size();
      rec.num_iterations = out.num_iterations;
      rec.eta = out.eta_max;
      result.trace.records.push_back(rec);
      ++result.epochs_run;

      resolved.erase(it);
      pending.erase(next_emit);
      ++next_emit;
    }
  };

  for (std::size_t t = 0; t < cfg_.max_epochs; ++t) {
    if (ledger.exhausted() || ledger.remaining() < min_rent) {
      result.budget_exhausted = true;
      result.termination_reason = "budget_exhausted";
      break;
    }
    FEDL_PROFILE_SCOPE("harness.epoch");
    const sim::EpochContext& raw = env.advance_epoch();

    // A client still training its previous cohort cannot be re-rented: the
    // decision maker sees the availability set minus the in-flight members.
    sim::EpochContext ctx;
    ctx.epoch = raw.epoch;
    ctx.available.reserve(raw.available.size());
    for (const auto& o : raw.available)
      if (!evt.client_inflight(o.id)) ctx.available.push_back(o);

    if (!ctx.available.empty()) {
      std::vector<double> costs;
      costs.reserve(ctx.available.size());
      for (const auto& o : ctx.available) costs.push_back(o.cost);
      std::sort(costs.begin(), costs.end());
      const std::size_t need =
          std::min<std::size_t>(cfg_.n_min, costs.size());
      double cheapest_n = 0.0;
      for (std::size_t i = 0; i < need; ++i) cheapest_n += costs[i];
      if (cheapest_n > ledger.remaining()) {
        result.budget_exhausted = true;
        result.termination_reason = "infeasible_floor";
        break;
      }
    }

    core::Decision decision;
    double decide_latency_s = 0.0;
    {
      FEDL_PROFILE_SCOPE("strategy.decide");
      const auto decide_start = std::chrono::steady_clock::now();
      decision = strategy.decide(ctx, ledger);
      decide_latency_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - decide_start)
                             .count();
    }
    if (decision.selected.empty()) {
      ++empty_streak;
      if (cfg_.empty_decision_streak > 0 &&
          empty_streak >= cfg_.empty_decision_streak) {
        result.termination_reason = "empty_decisions";
        break;
      }
    } else {
      empty_streak = 0;
    }
    for (std::size_t id : decision.selected)
      FEDL_CHECK(ctx.is_available(id))
          << strategy.name() << " selected unavailable client " << id;

    PendingEpoch pe;
    pe.snap = LearnerSnapshot::capture(strategy, ctx);
    pe.decide_latency_s = decide_latency_s;
    pe.rho = static_cast<double>(
        std::max<std::size_t>(1, decision.num_iterations));
    if (fedl_strategy != nullptr) {
      pe.rho = fedl_strategy->last_fraction().rho;
      pe.cap = fedl_strategy->last_fraction().cap;
    }
    pe.ctx = std::move(ctx);
    pe.decision = decision;
    if (!next_emit_set) {
      next_emit = pe.ctx.epoch;
      next_emit_set = true;
    }
    const std::size_t this_epoch = pe.ctx.epoch;
    pending.emplace(this_epoch, std::move(pe));

    if (decision.selected.empty()) {
      // No cohort to dispatch; the epoch still evaluates the current model
      // (lockstep's empty run_epoch) and resolves immediately at vt now.
      fl::CohortOutcome co;
      co.outcome.epoch = this_epoch;
      co.outcome.num_iterations = decision.num_iterations;
      const fl::CohortEval ev = engine.evaluate_cohort({});
      co.outcome.train_loss_selected = ev.train_loss_selected;
      co.outcome.train_loss_all = ev.train_loss_all;
      co.outcome.test_loss = ev.test_loss;
      co.outcome.test_accuracy = ev.test_accuracy;
      co.dispatch_vt = evt.now();
      co.resolve_vt = evt.now();
      resolved.emplace(this_epoch, std::move(co));
    } else {
      // Spend commits when the rent is paid: the ledger is charged at
      // dispatch, so the budget can never be overdrawn by results that are
      // still in flight (decide() capped the cohort by remaining()).
      double cohort_cost = 0.0;
      const PendingEpoch& stored = pending.at(this_epoch);
      for (std::size_t id : decision.selected) {
        const sim::ClientObservation* obs = stored.ctx.find(id);
        FEDL_CHECK(obs != nullptr);
        cohort_cost += obs->cost;
      }
      ledger.charge(cohort_cost);
      evt.dispatch(this_epoch, decision.selected,
                   std::max<std::size_t>(1, decision.num_iterations),
                   cohort_cost);
    }

    // Advance the virtual clock to the next flush boundary (or synthetic
    // resolution): this is where aggregation happens and feedback becomes
    // available — the next decide() runs against the post-flush model.
    evt.run_until_flush();
    pump();
    drain();
  }

  // Termination: stragglers still in flight must land — their rent is spent
  // and the learner deserves the feedback. Each turn flushes at most once,
  // so iterate until the event engine is empty.
  while (!evt.drained()) {
    evt.run_until_flush();
    pump();
    drain();
  }
  pump();
  drain();
  FEDL_CHECK(pending.empty())
      << pending.size() << " dispatched epochs never resolved";

  if (ledger.exhausted()) result.budget_exhausted = true;
  if (result.termination_reason.empty())
    result.termination_reason = "max_epochs";
  if (tracing) {
    if (cfg_.defer_trace)
      result.trace_jsonl = std::move(trace_buffer);
    else
      obs::EventTraceWriter(cfg_.trace_out, true).write_raw(trace_buffer);
  }
  if (cfg_.record_digests) obs::note_run_digest(digest.value());
  if (!cfg_.checkpoint_path.empty())
    nn::save_params(engine.global_params(), cfg_.checkpoint_path);
  FEDL_INFO << strategy.name() << " [async]: " << result.epochs_run
            << " epochs, acc=" << result.trace.final_accuracy()
            << " vt=" << result.trace.total_time() << "s"
            << " cost=" << result.trace.total_cost() << "/" << cfg_.budget;
  return result;
}

std::unique_ptr<core::SelectionStrategy> make_strategy(
    const std::string& name, const ScenarioConfig& cfg) {
  core::BaselineConfig base;
  base.n_select = cfg.n_min;
  base.iterations = cfg.fixed_iterations;
  base.seed = cfg.seed * 53 + 29;

  if (name == "fedl" || name == "fedl-ind" || name == "fedl-fair") {
    core::FedLConfig fc;
    fc.learner.n_min = cfg.n_min;
    fc.learner.theta = cfg.theta;
    fc.learner.selection_width = cfg.selection_width;
    fc.learner.width_explore = cfg.width_explore;
    fc.l_max = std::max<std::size_t>(cfg.fixed_iterations * 2, 4);
    fc.learner.rho_max = static_cast<double>(fc.l_max);
    // Event-driven feedback arrives out of order, long after newer decides
    // overwrote last_fraction(): keep enough fractional history to match any
    // straggler's outcome to its own epoch's decision.
    if (cfg.async.enabled) fc.fraction_history = 64;
    fc.independent_rounding = (name == "fedl-ind");
    fc.fairness.enabled = (name == "fedl-fair");
    fc.seed = cfg.seed * 61 + 37;
    return std::make_unique<core::FedLStrategy>(cfg.num_clients, fc);
  }
  if (name == "ucb") {
    core::UcbConfig uc;
    uc.base = base;
    return std::make_unique<core::UcbStrategy>(cfg.num_clients, uc);
  }
  if (name == "fedavg")
    return std::make_unique<core::FedAvgStrategy>(base);
  if (name == "fedcs") {
    core::FedCsConfig fc;
    fc.base = base;
    // Generous deadline: FedCS admits "as many clients as possible".
    fc.deadline_s = 400.0;
    return std::make_unique<core::FedCsStrategy>(fc);
  }
  if (name == "powd") {
    core::PowDConfig pc;
    pc.base = base;
    pc.d = std::min<std::size_t>(cfg.num_clients,
                                 std::max<std::size_t>(2 * cfg.n_min, 8));
    return std::make_unique<core::PowDStrategy>(cfg.num_clients, pc);
  }
  if (name == "oracle")
    return std::make_unique<core::GreedyOracleStrategy>(base);
  throw ConfigError("unknown strategy: " + name);
}

std::string strategy_display_name(const std::string& name) {
  // Mirrors the name() overrides of the strategies make_strategy builds —
  // kept here so callers that only label output (figure CSV headers) don't
  // construct and discard a strategy to read its name.
  if (name == "fedl") return "FedL";
  if (name == "fedl-ind") return "FedL-Ind";
  if (name == "fedl-fair") return "FedL-Fair";
  if (name == "ucb") return "UCB";
  if (name == "fedavg") return "FedAvg";
  if (name == "fedcs") return "FedCS";
  if (name == "powd") return "Pow-d";
  if (name == "oracle") return "Oracle";
  throw ConfigError("unknown strategy: " + name);
}

std::vector<std::string> paper_roster() {
  return {"fedl", "fedcs", "fedavg", "powd"};
}

}  // namespace fedl::harness
