#include "harness/report.h"

#include <algorithm>
#include <cmath>

#include "common/csv.h"

namespace fedl::harness {

void print_trace_series(std::ostream& os, const std::string& figure,
                        const std::string& label,
                        const fl::TrainTrace& trace) {
  os << "== Series: " << figure << " / " << label << "\n";
  CsvTable t;
  t.add_column("epoch");
  t.add_column("round");
  t.add_column("time_s");
  t.add_column("cost");
  t.add_column("train_loss");
  t.add_column("test_loss");
  t.add_column("test_acc");
  t.add_column("selected");
  t.add_column("iters");
  t.add_column("eta");
  for (const auto& r : trace.records) {
    t.append_row({static_cast<double>(r.epoch), static_cast<double>(r.round),
                  r.sim_time_s, r.cost_spent, r.train_loss, r.test_loss,
                  r.test_accuracy, static_cast<double>(r.num_selected),
                  static_cast<double>(r.num_iterations), r.eta});
  }
  t.write(os);
  os << "\n";
}

void print_accuracy_at_time_table(std::ostream& os, double time_s,
                                  const std::vector<fl::TrainTrace>& traces) {
  os << "== Table: accuracy after " << format_num(time_s) << "s of training\n";
  TextTable t({"algorithm", "accuracy"});
  for (const auto& tr : traces)
    t.add_row({tr.algorithm, format_num(tr.accuracy_at_time(time_s))});
  t.write(os);
  os << "\n";
}

namespace {

std::string fmt_or_never(double v) {
  return std::isinf(v) ? "never" : format_num(v);
}

}  // namespace

void print_time_to_accuracy_table(std::ostream& os, double target_acc,
                                  const std::vector<fl::TrainTrace>& traces) {
  os << "== Table: completion time to accuracy " << format_num(target_acc)
     << "\n";
  TextTable t({"algorithm", "time_s"});
  for (const auto& tr : traces)
    t.add_row({tr.algorithm, fmt_or_never(tr.time_to_accuracy(target_acc))});
  t.write(os);

  // The paper's headline: FedL's saving versus the best alternative.
  if (traces.size() >= 2) {
    const double fedl = traces.front().time_to_accuracy(target_acc);
    double best_other = fl::TrainTrace::kNever;
    for (std::size_t i = 1; i < traces.size(); ++i)
      best_other =
          std::min(best_other, traces[i].time_to_accuracy(target_acc));
    if (!std::isinf(fedl) && !std::isinf(best_other) && best_other > 0.0) {
      const double saving = 100.0 * (best_other - fedl) / best_other;
      os << "-- " << traces.front().algorithm << " saving vs best baseline: "
         << format_num(saving) << "%\n";
    }
  }
  os << "\n";
}

void print_rounds_to_accuracy_table(std::ostream& os, double target_acc,
                                    const std::vector<fl::TrainTrace>& traces) {
  os << "== Table: federated rounds to accuracy " << format_num(target_acc)
     << "\n";
  TextTable t({"algorithm", "rounds"});
  for (const auto& tr : traces)
    t.add_row({tr.algorithm, fmt_or_never(tr.rounds_to_accuracy(target_acc))});
  t.write(os);
  os << "\n";
}

void print_metrics_summary(std::ostream& os,
                           const obs::MetricsSnapshot& snapshot) {
  os << "== Metrics\n";
  TextTable t({"metric", "kind", "value", "detail"});
  for (const auto& [name, v] : snapshot.counters)
    t.add_row({name, "counter", std::to_string(v), ""});
  for (const auto& [name, v] : snapshot.gauges)
    t.add_row({name, "gauge", format_num(v), ""});
  for (const auto& [name, h] : snapshot.histograms) {
    std::string detail = "mean=" + format_num(h.mean()) + " buckets[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) detail += ' ';
      detail += i < h.bounds.size()
                    ? "<=" + format_num(h.bounds[i])
                    : std::string(">") + format_num(h.bounds.back());
      detail += ':' + std::to_string(h.counts[i]);
    }
    detail += ']';
    t.add_row({name, "histogram", std::to_string(h.total), detail});
  }
  t.write(os);
  os << "\n";
}

}  // namespace fedl::harness
