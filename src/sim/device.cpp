#include "sim/device.h"

#include "common/error.h"

namespace fedl::sim {

DeviceFleet::DeviceFleet(std::size_t num_clients, const DeviceSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  FEDL_CHECK_GT(num_clients, 0u);
  FEDL_CHECK_LT(spec.cost_lo, spec.cost_hi);
  FEDL_CHECK_GT(spec.cost_lo, 0.0);
  FEDL_CHECK(spec.availability_prob > 0.0 && spec.availability_prob <= 1.0);
  devices_.reserve(num_clients);
  for (std::size_t k = 0; k < num_clients; ++k) {
    Device d;
    // Heterogeneous CPUs: between 20% and 100% of f^max.
    d.cpu_hz = rng_.uniform(0.2 * spec.cpu_hz_max, spec.cpu_hz_max);
    d.cycles_per_bit =
        rng_.uniform(spec.cycles_per_bit_lo, spec.cycles_per_bit_hi);
    devices_.push_back(d);
  }
  cost_.resize(num_clients, spec.cost_lo);
  available_.resize(num_clients, true);
  advance_epoch();
}

const Device& DeviceFleet::device(std::size_t k) const {
  FEDL_CHECK_LT(k, devices_.size());
  return devices_[k];
}

double DeviceFleet::compute_latency(std::size_t k,
                                    std::size_t num_samples) const {
  const Device& d = device(k);
  // τ^loc = e_k · |D_{t,k}| / π_k with |D| measured in bits.
  const double bits = spec_.bits_per_sample * static_cast<double>(num_samples);
  return d.cycles_per_bit * bits / d.cpu_hz;
}

void DeviceFleet::advance_epoch() {
  for (std::size_t k = 0; k < devices_.size(); ++k) {
    cost_[k] = rng_.uniform(spec_.cost_lo, spec_.cost_hi);
    available_[k] = rng_.bernoulli(spec_.availability_prob);
  }
}

double DeviceFleet::cost(std::size_t k) const {
  FEDL_CHECK_LT(k, cost_.size());
  return cost_[k];
}

bool DeviceFleet::available(std::size_t k) const {
  FEDL_CHECK_LT(k, available_.size());
  return available_[k];
}

std::vector<std::size_t> DeviceFleet::available_set() const {
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < available_.size(); ++k)
    if (available_[k]) out.push_back(k);
  return out;
}

}  // namespace fedl::sim
