// EdgeEnvironment — the complete simulated edge network of paper §3.1.
//
// Ties together the device fleet (S7), wireless channel (S6) and online data
// streams (S5) and exposes exactly what a 0-lookahead decision maker may
// observe at the *start* of epoch t: who is available, what they cost, how
// much data they currently hold, and latency estimates. Realized latencies
// (which depend on the selection itself through the FDMA share) are reported
// only after a selection is committed, matching the paper's online model.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "data/online.h"
#include "net/bandwidth.h"
#include "net/channel.h"
#include "sim/device.h"

namespace fedl::sim {

// What the server can observe about one available client at decision time.
struct ClientObservation {
  std::size_t id = 0;
  double cost = 0.0;          // c_{t,k}
  std::size_t data_size = 0;  // D_{t,k}
  double tau_loc = 0.0;       // per-iteration compute latency (s)
  double tau_cm_est = 0.0;    // uplink latency estimate at the fair share (s)
};

struct EpochContext {
  std::size_t epoch = 0;
  std::vector<ClientObservation> available;  // E_t, ordered by client id

  bool is_available(std::size_t client_id) const;
  const ClientObservation* find(std::size_t client_id) const;
};

struct EnvironmentSpec {
  std::size_t num_clients = 100;
  DeviceSpec device;
  net::ChannelSpec channel;
  data::OnlineDataSpec online;
  // Share count assumed when estimating τ^cm before the selection size is
  // known (the paper's n: minimum participants per epoch).
  std::size_t expected_participants = 10;
  // How the cell bandwidth is split across the committed participants.
  net::BandwidthPolicy bandwidth = net::BandwidthPolicy::kEqual;
  // Lazy roster mode for very large M (million-client rosters): no
  // per-client fleet/channel/stream state is materialized. advance_epoch()
  // enumerates E_t by geometric skip-sampling over the Bernoulli
  // availability in O(|E_t|) expected time and derives every per-client
  // draw on demand from counter-based streams keyed by (seed, epoch, id) —
  // client-static hardware draws are keyed by (seed, id) alone, so a client
  // looks the same whenever it reappears. A lazy environment has no data
  // partition, so the training engine cannot run against it; it serves the
  // selection layer and the scale benches.
  bool lazy_sampling = false;
  std::size_t lazy_data_lo = 32;   // per-client sample count range (lazy)
  std::size_t lazy_data_hi = 128;
};

class EdgeEnvironment {
 public:
  EdgeEnvironment(EnvironmentSpec spec, data::Partition partition);
  // Lazy-sampling environment (spec.lazy_sampling must be true): no
  // partition, no materialized per-client state.
  explicit EdgeEnvironment(EnvironmentSpec spec);

  std::size_t num_clients() const { return spec_.num_clients; }
  const EnvironmentSpec& spec() const { return spec_; }
  bool lazy() const { return spec_.lazy_sampling; }

  // Advance all time-varying state (availability, costs, fading, data) and
  // build the observation for the new epoch. O(M) in dense mode,
  // O(|E_t|) expected in lazy mode.
  const EpochContext& advance_epoch();
  const EpochContext& context() const { return context_; }
  std::size_t epoch() const { return context_.epoch; }

  // Sample indices client k holds in the current epoch (dense mode only).
  const std::vector<std::size_t>& client_data(std::size_t k) const;

  // Realized uplink latency once the FDMA share is fixed by the committed
  // selection of size `num_selected` (equal-share formula).
  double realized_tau_cm(std::size_t k, std::size_t num_selected) const;

  // Realized uplink latencies for the committed selection under the
  // configured bandwidth policy (parallel to `selected`).
  std::vector<double> realized_upload_times(
      const std::vector<std::size_t>& selected) const;

  // As above but with per-client payload sizes (update compression shrinks
  // the constant s of the latency model). The bandwidth split is computed
  // for the largest payload (conservative); each client's time then uses its
  // own payload on its allocated band.
  std::vector<double> realized_upload_times(
      const std::vector<std::size_t>& selected,
      const std::vector<double>& payload_bits) const;

  // Simulated end-to-end completion times d_k(t) = iterations·(τ^loc_k +
  // τ^cm_k) for a committed cohort (parallel to `selected`), under the
  // configured bandwidth policy at the paper's constant payload s. This is
  // the same latency model run_epoch charges synchronously; the event-driven
  // engine samples it once at dispatch to schedule completion events on the
  // virtual clock, so lockstep and event mode compare on identical d_k.
  // Clients must be available in the current epoch context.
  std::vector<double> realized_completion_times(
      const std::vector<std::size_t>& selected, std::size_t iterations) const;

  // Dense-mode accessors; FEDL_CHECK in lazy mode (no materialized state).
  const DeviceFleet& fleet() const;
  const net::ChannelModel& channel() const;

 private:
  void advance_epoch_lazy();

  EnvironmentSpec spec_;
  // Null in lazy mode: the roster never materializes per-client state.
  std::unique_ptr<DeviceFleet> fleet_;
  std::unique_ptr<net::ChannelModel> channel_;
  std::unique_ptr<data::OnlineDataStream> stream_;
  EpochContext context_;
};

}  // namespace fedl::sim
