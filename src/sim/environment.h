// EdgeEnvironment — the complete simulated edge network of paper §3.1.
//
// Ties together the device fleet (S7), wireless channel (S6) and online data
// streams (S5) and exposes exactly what a 0-lookahead decision maker may
// observe at the *start* of epoch t: who is available, what they cost, how
// much data they currently hold, and latency estimates. Realized latencies
// (which depend on the selection itself through the FDMA share) are reported
// only after a selection is committed, matching the paper's online model.
#pragma once

#include <cstddef>
#include <vector>

#include "data/online.h"
#include "net/bandwidth.h"
#include "net/channel.h"
#include "sim/device.h"

namespace fedl::sim {

// What the server can observe about one available client at decision time.
struct ClientObservation {
  std::size_t id = 0;
  double cost = 0.0;          // c_{t,k}
  std::size_t data_size = 0;  // D_{t,k}
  double tau_loc = 0.0;       // per-iteration compute latency (s)
  double tau_cm_est = 0.0;    // uplink latency estimate at the fair share (s)
};

struct EpochContext {
  std::size_t epoch = 0;
  std::vector<ClientObservation> available;  // E_t, ordered by client id

  bool is_available(std::size_t client_id) const;
  const ClientObservation* find(std::size_t client_id) const;
};

struct EnvironmentSpec {
  std::size_t num_clients = 100;
  DeviceSpec device;
  net::ChannelSpec channel;
  data::OnlineDataSpec online;
  // Share count assumed when estimating τ^cm before the selection size is
  // known (the paper's n: minimum participants per epoch).
  std::size_t expected_participants = 10;
  // How the cell bandwidth is split across the committed participants.
  net::BandwidthPolicy bandwidth = net::BandwidthPolicy::kEqual;
};

class EdgeEnvironment {
 public:
  EdgeEnvironment(EnvironmentSpec spec, data::Partition partition);

  std::size_t num_clients() const { return spec_.num_clients; }
  const EnvironmentSpec& spec() const { return spec_; }

  // Advance all time-varying state (availability, costs, fading, data) and
  // build the observation for the new epoch.
  const EpochContext& advance_epoch();
  const EpochContext& context() const { return context_; }
  std::size_t epoch() const { return context_.epoch; }

  // Sample indices client k holds in the current epoch.
  const std::vector<std::size_t>& client_data(std::size_t k) const {
    return stream_.epoch_indices(k);
  }

  // Realized uplink latency once the FDMA share is fixed by the committed
  // selection of size `num_selected` (equal-share formula).
  double realized_tau_cm(std::size_t k, std::size_t num_selected) const;

  // Realized uplink latencies for the committed selection under the
  // configured bandwidth policy (parallel to `selected`).
  std::vector<double> realized_upload_times(
      const std::vector<std::size_t>& selected) const;

  // As above but with per-client payload sizes (update compression shrinks
  // the constant s of the latency model). The bandwidth split is computed
  // for the largest payload (conservative); each client's time then uses its
  // own payload on its allocated band.
  std::vector<double> realized_upload_times(
      const std::vector<std::size_t>& selected,
      const std::vector<double>& payload_bits) const;

  const DeviceFleet& fleet() const { return fleet_; }
  const net::ChannelModel& channel() const { return channel_; }

 private:
  EnvironmentSpec spec_;
  DeviceFleet fleet_;
  net::ChannelModel channel_;
  data::OnlineDataStream stream_;
  EpochContext context_;
};

}  // namespace fedl::sim
