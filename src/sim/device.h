// Client device model: computation capability, rent cost, availability.
//
// Paper §3.2/§6.1 parameters: e_k ~ U[10, 30] cycles/bit, CPU up to 2 GHz,
// rent cost c_{t,k} ~ U[0.1, 12] (Amazon dynamic prices), availability is a
// Bernoulli draw per epoch.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fedl::sim {

struct DeviceSpec {
  double cpu_hz_max = 2e9;            // f^max
  double cycles_per_bit_lo = 10.0;    // e_k lower bound
  double cycles_per_bit_hi = 30.0;    // e_k upper bound
  double cost_lo = 0.1;               // c_{t,k} lower bound
  double cost_hi = 12.0;              // c_{t,k} upper bound
  double availability_prob = 0.8;     // Bernoulli availability per epoch
  double bits_per_sample = 28.0 * 28.0 * 32.0;  // payload of one sample
  double upload_bits = 1e7;           // s: model update size (bits), constant
  std::uint64_t seed = 13;
};

// Static per-client hardware draw.
struct Device {
  double cpu_hz;          // π_k (fixed per client; ≤ f^max)
  double cycles_per_bit;  // e_k
};

class DeviceFleet {
 public:
  DeviceFleet(std::size_t num_clients, const DeviceSpec& spec);

  std::size_t size() const { return devices_.size(); }
  const DeviceSpec& spec() const { return spec_; }
  const Device& device(std::size_t k) const;

  // τ^loc_{t,k}: seconds for ONE local update over `num_samples` samples.
  double compute_latency(std::size_t k, std::size_t num_samples) const;

  // Redraw epoch-varying state (costs, availability). Call once per epoch.
  void advance_epoch();

  double cost(std::size_t k) const;       // c_{t,k}
  bool available(std::size_t k) const;    // k ∈ E_t ?
  std::vector<std::size_t> available_set() const;

 private:
  DeviceSpec spec_;
  Rng rng_;
  std::vector<Device> devices_;
  std::vector<double> cost_;
  std::vector<bool> available_;
};

}  // namespace fedl::sim
