#include "sim/environment.h"

#include <algorithm>

#include "common/error.h"

namespace fedl::sim {

bool EpochContext::is_available(std::size_t client_id) const {
  return find(client_id) != nullptr;
}

const ClientObservation* EpochContext::find(std::size_t client_id) const {
  auto it = std::lower_bound(
      available.begin(), available.end(), client_id,
      [](const ClientObservation& o, std::size_t id) { return o.id < id; });
  if (it == available.end() || it->id != client_id) return nullptr;
  return &*it;
}

EdgeEnvironment::EdgeEnvironment(EnvironmentSpec spec,
                                 data::Partition partition)
    : spec_(spec),
      fleet_(spec.num_clients, spec.device),
      channel_(spec.num_clients, spec.channel),
      stream_(std::move(partition), spec.online) {
  FEDL_CHECK_EQ(stream_.num_clients(), spec_.num_clients)
      << "partition must have one entry per client";
  FEDL_CHECK_GT(spec_.expected_participants, 0u);
  context_.epoch = 0;
}

const EpochContext& EdgeEnvironment::advance_epoch() {
  fleet_.advance_epoch();
  channel_.advance_epoch();
  stream_.advance_epoch();

  context_.epoch += 1;
  context_.available.clear();
  for (std::size_t k = 0; k < spec_.num_clients; ++k) {
    if (!fleet_.available(k)) continue;
    const std::size_t d = stream_.epoch_size(k);
    if (d == 0) continue;  // no local data -> cannot train this epoch

    ClientObservation obs;
    obs.id = k;
    obs.cost = fleet_.cost(k);
    obs.data_size = d;
    obs.tau_loc = fleet_.compute_latency(k, d);
    const double rate =
        channel_.rate_equal_share(k, spec_.expected_participants);
    obs.tau_cm_est = fleet_.spec().upload_bits / rate;
    context_.available.push_back(obs);
  }
  return context_;
}

double EdgeEnvironment::realized_tau_cm(std::size_t k,
                                        std::size_t num_selected) const {
  FEDL_CHECK_GT(num_selected, 0u);
  const double rate = channel_.rate_equal_share(k, num_selected);
  return fleet_.spec().upload_bits / rate;
}

std::vector<double> EdgeEnvironment::realized_upload_times(
    const std::vector<std::size_t>& selected) const {
  FEDL_CHECK(!selected.empty());
  const net::Allocation alloc = net::allocate_bandwidth(
      channel_, selected, fleet_.spec().upload_bits, spec_.bandwidth);
  return alloc.upload_time_s;
}

std::vector<double> EdgeEnvironment::realized_upload_times(
    const std::vector<std::size_t>& selected,
    const std::vector<double>& payload_bits) const {
  FEDL_CHECK(!selected.empty());
  FEDL_CHECK_EQ(payload_bits.size(), selected.size());
  double max_bits = 0.0;
  for (double b : payload_bits) {
    FEDL_CHECK_GT(b, 0.0);
    max_bits = std::max(max_bits, b);
  }
  const net::Allocation alloc =
      net::allocate_bandwidth(channel_, selected, max_bits, spec_.bandwidth);
  std::vector<double> out(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const double rate = channel_.rate(selected[i], alloc.bandwidth_hz[i]);
    out[i] = payload_bits[i] / rate;
  }
  return out;
}

}  // namespace fedl::sim
