#include "sim/environment.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace fedl::sim {
namespace {

// SplitMix64 finalizer combine for counter-based lazy streams: each
// (seed, counter...) tuple keys an independent Rng, so per-client draws can
// be produced on demand in any order without a shared sequential stream.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 0x632be59bd9b4e019ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

bool EpochContext::is_available(std::size_t client_id) const {
  return find(client_id) != nullptr;
}

const ClientObservation* EpochContext::find(std::size_t client_id) const {
  auto it = std::lower_bound(
      available.begin(), available.end(), client_id,
      [](const ClientObservation& o, std::size_t id) { return o.id < id; });
  if (it == available.end() || it->id != client_id) return nullptr;
  return &*it;
}

EdgeEnvironment::EdgeEnvironment(EnvironmentSpec spec,
                                 data::Partition partition)
    : spec_(spec),
      fleet_(std::make_unique<DeviceFleet>(spec.num_clients, spec.device)),
      channel_(
          std::make_unique<net::ChannelModel>(spec.num_clients, spec.channel)),
      stream_(std::make_unique<data::OnlineDataStream>(std::move(partition),
                                                       spec.online)) {
  FEDL_CHECK(!spec_.lazy_sampling)
      << "lazy environments take no partition; use the spec-only ctor";
  FEDL_CHECK_EQ(stream_->num_clients(), spec_.num_clients)
      << "partition must have one entry per client";
  FEDL_CHECK_GT(spec_.expected_participants, 0u);
  context_.epoch = 0;
}

EdgeEnvironment::EdgeEnvironment(EnvironmentSpec spec) : spec_(spec) {
  FEDL_CHECK(spec_.lazy_sampling)
      << "spec-only ctor is for lazy_sampling environments";
  FEDL_CHECK_GT(spec_.num_clients, 0u);
  FEDL_CHECK_GT(spec_.expected_participants, 0u);
  FEDL_CHECK_LT(spec_.device.cost_lo, spec_.device.cost_hi);
  FEDL_CHECK_GT(spec_.device.cost_lo, 0.0);
  FEDL_CHECK(spec_.device.availability_prob > 0.0 &&
             spec_.device.availability_prob <= 1.0);
  FEDL_CHECK_GE(spec_.lazy_data_lo, 1u);
  FEDL_CHECK_GE(spec_.lazy_data_hi, spec_.lazy_data_lo);
  context_.epoch = 0;
}

const std::vector<std::size_t>& EdgeEnvironment::client_data(
    std::size_t k) const {
  FEDL_CHECK(stream_ != nullptr) << "lazy environment holds no data stream";
  return stream_->epoch_indices(k);
}

const DeviceFleet& EdgeEnvironment::fleet() const {
  FEDL_CHECK(fleet_ != nullptr) << "lazy environment holds no device fleet";
  return *fleet_;
}

const net::ChannelModel& EdgeEnvironment::channel() const {
  FEDL_CHECK(channel_ != nullptr) << "lazy environment holds no channel";
  return *channel_;
}

const EpochContext& EdgeEnvironment::advance_epoch() {
  if (spec_.lazy_sampling) {
    advance_epoch_lazy();
    return context_;
  }
  fleet_->advance_epoch();
  channel_->advance_epoch();
  stream_->advance_epoch();

  context_.epoch += 1;
  context_.available.clear();
  for (std::size_t k = 0; k < spec_.num_clients; ++k) {
    if (!fleet_->available(k)) continue;
    const std::size_t d = stream_->epoch_size(k);
    if (d == 0) continue;  // no local data -> cannot train this epoch

    ClientObservation obs;
    obs.id = k;
    obs.cost = fleet_->cost(k);
    obs.data_size = d;
    obs.tau_loc = fleet_->compute_latency(k, d);
    const double rate =
        channel_->rate_equal_share(k, spec_.expected_participants);
    obs.tau_cm_est = fleet_->spec().upload_bits / rate;
    context_.available.push_back(obs);
  }
  return context_;
}

void EdgeEnvironment::advance_epoch_lazy() {
  context_.epoch += 1;
  context_.available.clear();
  const DeviceSpec& dev = spec_.device;
  const net::ChannelSpec& ch = spec_.channel;
  const double p = dev.availability_prob;
  const std::size_t m = spec_.num_clients;
  const double tx_w = dbm_to_watts(ch.tx_power_dbm);
  const double n0_w = dbm_to_watts(ch.noise_dbm_per_hz);
  const double share_hz =
      ch.bandwidth_hz / static_cast<double>(spec_.expected_participants);
  const std::uint64_t epoch_key = mix(dev.seed, context_.epoch);

  // Walk E_t directly: the gap to the next available client under i.i.d.
  // Bernoulli(p) is Geometric(p), sampled by inversion. Expected work is
  // |E_t| draws, never M. Ids come out in increasing order, as the
  // EpochContext contract requires.
  Rng walk(mix(epoch_key, 0x57a1cULL));
  const double log_q = p < 1.0 ? std::log1p(-p) : 0.0;
  std::size_t k = 0;
  while (true) {
    if (p < 1.0) {
      const double u = walk.uniform();  // in [0, 1): log1p(-u) is finite
      k += static_cast<std::size_t>(std::log1p(-u) / log_q);
    }
    if (k >= m) break;

    ClientObservation obs;
    obs.id = k;
    // Client-static hardware: keyed by (seed, id) only, so client k has the
    // same CPU, energy profile and position every time it shows up.
    Rng hw(mix(mix(dev.seed, 0x4a3dULL), k));
    const double cpu_hz = hw.uniform(0.2 * dev.cpu_hz_max, dev.cpu_hz_max);
    const double cycles_per_bit =
        hw.uniform(dev.cycles_per_bit_lo, dev.cycles_per_bit_hi);
    const double distance_m =
        std::max(10.0, ch.cell_radius_m * std::sqrt(hw.uniform()));
    // Epoch-varying draws: keyed by (seed, epoch, id).
    Rng ep(mix(epoch_key, k));
    obs.cost = ep.uniform(dev.cost_lo, dev.cost_hi);
    obs.data_size = spec_.lazy_data_lo == spec_.lazy_data_hi
                        ? spec_.lazy_data_lo
                        : static_cast<std::size_t>(ep.uniform_int(
                              static_cast<std::int64_t>(spec_.lazy_data_lo),
                              static_cast<std::int64_t>(spec_.lazy_data_hi)));
    const double bits =
        dev.bits_per_sample * static_cast<double>(obs.data_size);
    obs.tau_loc = cycles_per_bit * bits / cpu_hz;
    const double shadow_db = ep.normal(0.0, ch.shadow_stddev_db);
    const double gain =
        db_to_linear(-(net::path_loss_db(distance_m) + shadow_db));
    const double rate = net::shannon_rate(share_hz, gain, tx_w, n0_w);
    obs.tau_cm_est = dev.upload_bits / rate;
    context_.available.push_back(obs);
    ++k;
  }
}

double EdgeEnvironment::realized_tau_cm(std::size_t k,
                                        std::size_t num_selected) const {
  FEDL_CHECK_GT(num_selected, 0u);
  const double rate = channel().rate_equal_share(k, num_selected);
  return fleet().spec().upload_bits / rate;
}

std::vector<double> EdgeEnvironment::realized_upload_times(
    const std::vector<std::size_t>& selected) const {
  FEDL_CHECK(!selected.empty());
  const net::Allocation alloc = net::allocate_bandwidth(
      channel(), selected, fleet().spec().upload_bits, spec_.bandwidth);
  return alloc.upload_time_s;
}

std::vector<double> EdgeEnvironment::realized_upload_times(
    const std::vector<std::size_t>& selected,
    const std::vector<double>& payload_bits) const {
  FEDL_CHECK(!selected.empty());
  FEDL_CHECK_EQ(payload_bits.size(), selected.size());
  double max_bits = 0.0;
  for (double b : payload_bits) {
    FEDL_CHECK_GT(b, 0.0);
    max_bits = std::max(max_bits, b);
  }
  const net::Allocation alloc =
      net::allocate_bandwidth(channel(), selected, max_bits, spec_.bandwidth);
  std::vector<double> out(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const double rate = channel().rate(selected[i], alloc.bandwidth_hz[i]);
    out[i] = payload_bits[i] / rate;
  }
  return out;
}

std::vector<double> EdgeEnvironment::realized_completion_times(
    const std::vector<std::size_t>& selected, std::size_t iterations) const {
  FEDL_CHECK(!selected.empty());
  FEDL_CHECK_GT(iterations, 0u);
  std::vector<double> out = realized_upload_times(selected);
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const ClientObservation* obs = context_.find(selected[i]);
    FEDL_CHECK(obs != nullptr)
        << "client " << selected[i] << " not available in epoch "
        << context_.epoch;
    out[i] = static_cast<double>(iterations) * (obs->tau_loc + out[i]);
  }
  return out;
}

}  // namespace fedl::sim
