#include "common/csv.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>

#include "common/error.h"

namespace fedl {

std::size_t CsvTable::add_column(std::string name) {
  columns_.push_back(CsvColumn{std::move(name), {}});
  return columns_.size() - 1;
}

void CsvTable::append(std::size_t column, double value) {
  FEDL_CHECK_LT(column, columns_.size());
  columns_[column].values.push_back(value);
}

void CsvTable::append_row(const std::vector<double>& row) {
  FEDL_CHECK_EQ(row.size(), columns_.size());
  for (std::size_t i = 0; i < row.size(); ++i)
    columns_[i].values.push_back(row[i]);
}

std::size_t CsvTable::num_rows() const {
  return columns_.empty() ? 0 : columns_.front().values.size();
}

const CsvColumn& CsvTable::column(std::size_t i) const {
  FEDL_CHECK_LT(i, columns_.size());
  return columns_[i];
}

void CsvTable::write(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << columns_[c].name;
    FEDL_CHECK_EQ(columns_[c].values.size(), num_rows())
        << "ragged column " << columns_[c].name;
  }
  os << '\n';
  for (std::size_t r = 0; r < num_rows(); ++r) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << ',';
      os << format_num(columns_[c].values[r]);
    }
    os << '\n';
  }
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FEDL_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  FEDL_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::write(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c]
         << std::string(widths[c] - cells[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << "|" << std::string(widths[c] + 2, '-');
  os << "|\n";
  for (const auto& row : rows_) emit(row);
}

std::string format_num(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

}  // namespace fedl
