// Small numeric helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

namespace fedl {

inline double clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

// [x]+ = max(x, 0), the positive-part operator used throughout the paper's
// fit definitions and the dual update (9).
inline double positive_part(double x) { return x > 0.0 ? x : 0.0; }

inline double sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

// Numerically stable log(sum(exp(v))).
inline double log_sum_exp(const std::vector<double>& v) {
  double m = v.front();
  for (double x : v) m = std::max(m, x);
  double s = 0.0;
  for (double x : v) s += std::exp(x - m);
  return m + std::log(s);
}

// Decibel <-> linear power conversions for the wireless model.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
inline double dbm_to_watts(double dbm) {
  return std::pow(10.0, (dbm - 30.0) / 10.0);
}

// Euclidean norm of a vector.
inline double l2_norm(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

// ||[v]+|| — the norm of the positive part, the paper's fit aggregation.
inline double positive_part_norm(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) {
    const double p = positive_part(x);
    s += p * p;
  }
  return std::sqrt(s);
}

inline double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

}  // namespace fedl
