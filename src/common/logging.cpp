#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <optional>

#include "common/error.h"

namespace fedl {
namespace {

std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

std::optional<LogLevel> try_parse_log_level(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return std::nullopt;
}

// Lazily initialized so binaries that never call set_log_level still honor
// the FEDL_LOG_LEVEL environment variable as their default threshold.
std::atomic<LogLevel>& level_store() {
  static std::atomic<LogLevel> level{log_level_from_env(LogLevel::kInfo)};
  return level;
}

}  // namespace

void set_log_level(LogLevel level) { level_store().store(level); }

LogLevel log_level() { return level_store().load(); }

LogLevel parse_log_level(const std::string& name) {
  if (auto level = try_parse_log_level(name)) return *level;
  throw ConfigError("unknown log level: " + name);
}

LogLevel log_level_from_env(LogLevel fallback) {
  const char* env = std::getenv("FEDL_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return fallback;
  if (auto level = try_parse_log_level(env)) return *level;
  // Invalid values must not crash static initialization; warn and fall back.
  std::fprintf(stderr, "[WARN ] ignoring invalid FEDL_LOG_LEVEL=%s\n", env);
  return fallback;
}

int log_thread_ordinal() {
  static std::atomic<int> next{0};
  thread_local const int ordinal = next.fetch_add(1);
  return ordinal;
}

namespace detail {

void emit_log(LogLevel level, const std::string& message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_buf{};
  localtime_r(&secs, &tm_buf);
  char stamp[16];
  std::strftime(stamp, sizeof stamp, "%H:%M:%S", &tm_buf);

  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s.%03d] [T%02d] [%s] %s\n", stamp, millis,
               log_thread_ordinal(), level_tag(level), message.c_str());
}

}  // namespace detail
}  // namespace fedl
