#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <mutex>

#include "common/error.h"

namespace fedl {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  throw ConfigError("unknown log level: " + name);
}

namespace detail {

void emit_log(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace detail
}  // namespace fedl
