#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace fedl {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the 256-bit state from SplitMix64 as recommended by the authors.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() {
  // Derive a child seed from the current stream; advancing the parent keeps
  // successive children decorrelated.
  const std::uint64_t child_seed = (*this)() ^ 0xa0761d6478bd642fULL;
  return Rng(child_seed);
}

double Rng::uniform() {
  // 53-bit mantissa trick: uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  FEDL_CHECK_LE(lo, hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FEDL_CHECK_LE(lo, hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire's nearly-divisionless bounded generation with rejection.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < range) {
    const std::uint64_t threshold = -range % range;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  FEDL_CHECK(p >= 0.0 && p <= 1.0) << "p=" << p;
  return uniform() < p;
}

std::int64_t Rng::poisson(double lambda) {
  FEDL_CHECK_GE(lambda, 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 64.0) {
    // Knuth's method.
    const double limit = std::exp(-lambda);
    double prod = uniform();
    std::int64_t n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction for large lambda.
  double draw = normal(lambda, std::sqrt(lambda));
  return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
}

double Rng::exponential(double lambda) {
  FEDL_CHECK_GT(lambda, 0.0);
  return -std::log(1.0 - uniform()) / lambda;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  FEDL_CHECK_LE(k, n);
  // Floyd's algorithm would avoid the O(n) init, but n here is the number of
  // clients/samples (small); a partial Fisher–Yates is simpler and exact.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  FEDL_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  FEDL_CHECK_GT(total, 0.0) << "all categorical weights are non-positive";
  double u = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (u < acc) return i;
  }
  return weights.size() - 1;  // numeric fallthrough
}

double Rng::gamma(double shape) {
  FEDL_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia–Tsang augmentation).
    double u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

std::vector<double> Rng::dirichlet(double alpha, std::size_t k) {
  FEDL_CHECK_GT(k, 0u);
  std::vector<double> draws(k);
  double total = 0.0;
  for (auto& d : draws) {
    d = gamma(alpha);
    total += d;
  }
  if (total <= 0.0) {
    // Degenerate draws (possible for tiny alpha): fall back to uniform.
    for (auto& d : draws) d = 1.0 / static_cast<double>(k);
    return draws;
  }
  for (auto& d : draws) d /= total;
  return draws;
}

}  // namespace fedl
