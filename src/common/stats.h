// Streaming statistics used by metric tracking (loss/accuracy/latency series,
// regret accumulation, fit norms).
#pragma once

#include <cstddef>
#include <vector>

namespace fedl {

// Welford-style running mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exponential moving average, used for smoothing noisy accuracy curves the
// same way the paper smooths its non-IID plots.
class Ema {
 public:
  explicit Ema(double alpha);
  double add(double x);
  double value() const { return value_; }
  bool initialized() const { return initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Percentile of a copy of the data (nearest-rank on the sorted values).
double percentile(std::vector<double> values, double pct);

// Least-squares slope of log(y) against log(x); used by the regret bench to
// check sub-linear growth (slope < 1 means sub-linear).
double loglog_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace fedl
