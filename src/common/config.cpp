#include "common/config.h"

#include <cstdlib>
#include <stdexcept>

#include "common/error.h"

namespace fedl {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw ConfigError("expected --flag, got: " + arg);
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value" unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::optional<std::string> Flags::raw(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  read_[key] = true;
  return it->second;
}

bool Flags::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::get_string(const std::string& key,
                              const std::string& fallback) const {
  auto v = raw(key);
  return v ? *v : fallback;
}

double Flags::get_double(const std::string& key, double fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    double parsed = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return parsed;
  } catch (const std::exception&) {
    throw ConfigError("flag --" + key + " expects a number, got: " + *v);
  }
}

std::int64_t Flags::get_int(const std::string& key,
                            std::int64_t fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    long long parsed = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return parsed;
  } catch (const std::exception&) {
    throw ConfigError("flag --" + key + " expects an integer, got: " + *v);
  }
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw ConfigError("flag --" + key + " expects a boolean, got: " + *v);
}

std::vector<double> Flags::get_double_list(
    const std::string& key, std::vector<double> fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= v->size()) {
    auto comma = v->find(',', start);
    std::string tok = v->substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!tok.empty()) {
      try {
        out.push_back(std::stod(tok));
      } catch (const std::exception&) {
        throw ConfigError("flag --" + key + " has a bad list element: " + tok);
      }
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty())
    throw ConfigError("flag --" + key + " expects a non-empty list");
  return out;
}

std::vector<std::string> Flags::unread_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : values_)
    if (!read_.count(k)) out.push_back(k);
  return out;
}

}  // namespace fedl
