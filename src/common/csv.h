// CSV series and aligned-table printing. Figure benches print one CSV block
// per series (replot-friendly); in-text table rows are printed as aligned
// text prefixed with "== Table:".
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace fedl {

// A named column of doubles; all columns in a table must share a length.
struct CsvColumn {
  std::string name;
  std::vector<double> values;
};

// Columnar series writer: header row then comma-separated data rows.
class CsvTable {
 public:
  // Creates the column and returns its index.
  std::size_t add_column(std::string name);
  void append(std::size_t column, double value);
  // Appends one value per column, in column order.
  void append_row(const std::vector<double>& row);

  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_rows() const;
  const CsvColumn& column(std::size_t i) const;

  void write(std::ostream& os) const;

 private:
  std::vector<CsvColumn> columns_;
};

// Pretty text table with left-aligned string cells, for in-text table rows.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void write(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Format a double compactly (up to 4 significant decimals, no trailing zeros).
std::string format_num(double v);

}  // namespace fedl
