// Deterministic pseudo-random generation for the whole framework.
//
// Every stochastic component (dataset synthesis, client availability, channel
// fading, SGD minibatching, dependent rounding) takes an explicit Rng so that
// experiments are reproducible from a single seed, and sub-streams can be
// forked without correlation (split() uses SplitMix64 on the state, the
// standard technique for xoshiro-family generators).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace fedl {

// xoshiro256** by Blackman & Vigna — fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xfed1fed1fed1fed1ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  // Fork an independent stream; the parent advances so successive splits
  // differ. Safe for handing one stream per client/thread.
  Rng split();

  // --- scalar distributions -------------------------------------------------
  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box–Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);
  // Bernoulli with success probability p.
  bool bernoulli(double p);
  // Poisson with rate lambda (Knuth for small lambda, normal approx above 64).
  std::int64_t poisson(double lambda);
  // Exponential with rate lambda.
  double exponential(double lambda);

  // --- sampling utilities ----------------------------------------------------
  // In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // Draw an index from a discrete distribution proportional to weights
  // (weights need not be normalized; negatives are clamped to zero).
  std::size_t categorical(const std::vector<double>& weights);

  // Dirichlet(alpha, ..., alpha) over k categories, via Gamma(alpha, 1)
  // draws (Marsaglia–Tsang).
  std::vector<double> dirichlet(double alpha, std::size_t k);

  // Gamma(shape, scale=1) draw.
  double gamma(double shape);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace fedl
