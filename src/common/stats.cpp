#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fedl {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Ema::Ema(double alpha) : alpha_(alpha) {
  FEDL_CHECK(alpha > 0.0 && alpha <= 1.0) << "alpha=" << alpha;
}

double Ema::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
  return value_;
}

double percentile(std::vector<double> values, double pct) {
  FEDL_CHECK(!values.empty());
  FEDL_CHECK(pct >= 0.0 && pct <= 100.0) << "pct=" << pct;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double loglog_slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  FEDL_CHECK_EQ(x.size(), y.size());
  FEDL_CHECK_GE(x.size(), 2u);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) continue;  // log undefined; skip
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  FEDL_CHECK_GE(n, 2u) << "not enough positive points for log-log fit";
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  FEDL_CHECK_GT(std::abs(denom), 0.0);
  return (dn * sxy - sx * sy) / denom;
}

}  // namespace fedl
