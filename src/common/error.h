// Error handling primitives shared by every fedl module.
//
// We use exceptions for unrecoverable precondition violations (they indicate
// programmer error or corrupted experiment configuration, never expected
// runtime states), and FEDL_CHECK is kept in release builds: the cost is
// negligible relative to training work and the diagnostics are invaluable
// when a 2-hour sweep dies.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fedl {

// Thrown on violated FEDL_CHECK conditions.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

// Thrown when a user-supplied configuration is inconsistent (e.g. budget < 0,
// n > M). Distinct from CheckError so callers can surface a friendly message.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

// Invoked (when set) just before a failed FEDL_CHECK throws, so long-lived
// artifacts (trace, metrics, manifest) can be flushed even if the exception
// is never caught — an uncaught throw terminates without unwinding, which
// used to lose everything a run had recorded. The hook must be noexcept-ish
// in spirit (it runs on the failure path); ObsSession registers one that
// flushes partial artifacts with a "clean": false manifest marker. Passing
// nullptr unregisters.
using CheckFailureHook = void (*)();
void set_check_failure_hook(CheckFailureHook hook);
CheckFailureHook check_failure_hook();

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "FEDL_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (CheckFailureHook hook = check_failure_hook()) hook();
  throw CheckError(os.str());
}

// Lightweight stream collector so FEDL_CHECK(x) << "context" works.
class CheckMessage {
 public:
  CheckMessage(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  [[noreturn]] ~CheckMessage() noexcept(false) {
    check_failed(expr_, file_, line_, stream_.str());
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace fedl

// Precondition check, active in all build types. Usage:
//   FEDL_CHECK(n > 0) << "need at least one client, got " << n;
#define FEDL_CHECK(cond)                                                  \
  if (cond) {                                                             \
  } else                                                                  \
    ::fedl::detail::CheckMessage(#cond, __FILE__, __LINE__)

// Convenience comparisons with both operands printed.
#define FEDL_CHECK_OP(a, op, b)                                           \
  FEDL_CHECK((a)op(b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define FEDL_CHECK_EQ(a, b) FEDL_CHECK_OP(a, ==, b)
#define FEDL_CHECK_NE(a, b) FEDL_CHECK_OP(a, !=, b)
#define FEDL_CHECK_LT(a, b) FEDL_CHECK_OP(a, <, b)
#define FEDL_CHECK_LE(a, b) FEDL_CHECK_OP(a, <=, b)
#define FEDL_CHECK_GT(a, b) FEDL_CHECK_OP(a, >, b)
#define FEDL_CHECK_GE(a, b) FEDL_CHECK_OP(a, >=, b)
