#include "common/error.h"

#include <atomic>

namespace fedl {
namespace {

std::atomic<CheckFailureHook> g_check_failure_hook{nullptr};

}  // namespace

void set_check_failure_hook(CheckFailureHook hook) {
  g_check_failure_hook.store(hook, std::memory_order_release);
}

CheckFailureHook check_failure_hook() {
  return g_check_failure_hook.load(std::memory_order_acquire);
}

}  // namespace fedl
