// Command-line flag parsing for benches and examples.
//
// Flags are "--key=value" or "--key value"; "--flag" alone sets a boolean.
// Unknown flags raise ConfigError so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fedl {

class Flags {
 public:
  // Parses argv; throws ConfigError on malformed input.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  // Comma-separated list of doubles, e.g. --budgets=100,200,400.
  std::vector<double> get_double_list(const std::string& key,
                                      std::vector<double> fallback) const;

  // Keys that were parsed but never read; callers can warn on leftovers.
  std::vector<std::string> unread_keys() const;

 private:
  std::optional<std::string> raw(const std::string& key) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace fedl
