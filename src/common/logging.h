// Minimal leveled logger. Benches and examples log progress at Info; the
// engine logs per-epoch detail at Debug. Output goes to stderr so CSV series
// printed on stdout by benches stay machine-parseable. Every line carries a
// wall-clock timestamp and a compact per-thread ordinal:
//   [12:03:44.125] [T01] [INFO ] message
#pragma once

#include <sstream>
#include <string>

namespace fedl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide log threshold; messages below it are discarded. The initial
// threshold comes from the FEDL_LOG_LEVEL environment variable when set (and
// valid), kInfo otherwise.
void set_log_level(LogLevel level);
LogLevel log_level();

// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

// Level named by the FEDL_LOG_LEVEL environment variable; `fallback` when
// the variable is unset or names no known level (never throws).
LogLevel log_level_from_env(LogLevel fallback);

// Small ordinal identifying the calling thread in log output (assigned in
// first-log order; the main thread is usually T00).
int log_thread_ordinal();

namespace detail {

void emit_log(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  ~LogMessage() { emit_log(level_, stream_.str()); }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogSink {
  // Swallows the stream when the level is filtered out.
  void operator&(const LogMessage&) {}
};

}  // namespace detail
}  // namespace fedl

#define FEDL_LOG(level)                                      \
  (::fedl::log_level() > ::fedl::LogLevel::level)            \
      ? (void)0                                              \
      : ::fedl::detail::LogSink{} &                          \
            ::fedl::detail::LogMessage(::fedl::LogLevel::level)

#define FEDL_DEBUG FEDL_LOG(kDebug)
#define FEDL_INFO FEDL_LOG(kInfo)
#define FEDL_WARN FEDL_LOG(kWarn)
#define FEDL_ERROR FEDL_LOG(kError)
