#include "net/channel.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace fedl::net {

double path_loss_db(double distance_m) {
  FEDL_CHECK_GT(distance_m, 0.0);
  const double d_km = distance_m / 1000.0;
  return 128.1 + 37.6 * std::log10(d_km);
}

double shannon_rate(double bandwidth_hz, double gain, double power_w,
                    double noise_w_per_hz) {
  FEDL_CHECK_GT(bandwidth_hz, 0.0);
  FEDL_CHECK_GT(noise_w_per_hz, 0.0);
  const double snr = gain * power_w / (noise_w_per_hz * bandwidth_hz);
  return bandwidth_hz * std::log2(1.0 + snr);
}

ChannelModel::ChannelModel(std::size_t num_clients, const ChannelSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  FEDL_CHECK_GT(num_clients, 0u);
  distance_m_.resize(num_clients);
  shadow_db_.resize(num_clients, 0.0);
  // Uniform placement over the disk: r = R * sqrt(u) gives uniform density.
  // Distances are floored at 10 m so the path-loss model stays in range.
  for (auto& d : distance_m_) {
    d = std::max(10.0, spec_.cell_radius_m * std::sqrt(rng_.uniform()));
  }
  advance_epoch();
}

void ChannelModel::advance_epoch() {
  for (auto& s : shadow_db_) s = rng_.normal(0.0, spec_.shadow_stddev_db);
}

double ChannelModel::gain(std::size_t k) const {
  FEDL_CHECK_LT(k, distance_m_.size());
  const double loss_db = path_loss_db(distance_m_[k]) + shadow_db_[k];
  return db_to_linear(-loss_db);
}

double ChannelModel::rate(std::size_t k, double bandwidth_hz) const {
  const double p_w = dbm_to_watts(spec_.tx_power_dbm);
  const double n0_w = dbm_to_watts(spec_.noise_dbm_per_hz);
  return shannon_rate(bandwidth_hz, gain(k), p_w, n0_w);
}

double ChannelModel::rate_equal_share(std::size_t k,
                                      std::size_t num_sharing) const {
  FEDL_CHECK_GT(num_sharing, 0u);
  return rate(k, spec_.bandwidth_hz / static_cast<double>(num_sharing));
}

}  // namespace fedl::net
