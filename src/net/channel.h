// Wireless uplink model from paper §3.2/§6.1.
//
//  * path loss: 128.1 + 37.6 log10(d) dB, d in km;
//  * log-normal shadow fading with 8 dB standard deviation, redrawn each
//    epoch (the time-varying communication status of challenge 1);
//  * achievable rate: r = b log2(1 + h p / (N0 b)) with N0 = −174 dBm/Hz;
//  * FDMA: participating clients share the cell bandwidth B = 20 MHz.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fedl::net {

struct ChannelSpec {
  double cell_radius_m = 500.0;
  double bandwidth_hz = 20e6;          // B
  double noise_dbm_per_hz = -174.0;    // N0
  double shadow_stddev_db = 8.0;
  double tx_power_dbm = 10.0;          // p_k (paper: 10 dB max transmit power)
  std::uint64_t seed = 11;
};

// Free function building blocks (unit-tested against hand computations).
double path_loss_db(double distance_m);
// Shannon rate in bit/s for bandwidth b (Hz), channel gain h (linear),
// transmit power p (W), noise density N0 (W/Hz).
double shannon_rate(double bandwidth_hz, double gain, double power_w,
                    double noise_w_per_hz);

// Per-client channel with epoch-varying shadow fading.
class ChannelModel {
 public:
  ChannelModel(std::size_t num_clients, const ChannelSpec& spec);

  std::size_t num_clients() const { return distance_m_.size(); }
  const ChannelSpec& spec() const { return spec_; }
  double distance_m(std::size_t k) const { return distance_m_[k]; }

  // Redraw shadow fading for all clients (call once per epoch).
  void advance_epoch();

  // Linear channel gain h_k for the current epoch.
  double gain(std::size_t k) const;

  // Uplink rate (bit/s) when client k is allocated `bandwidth_hz`.
  double rate(std::size_t k, double bandwidth_hz) const;

  // Uplink rate under an equal FDMA split of B across `num_sharing` clients.
  double rate_equal_share(std::size_t k, std::size_t num_sharing) const;

 private:
  ChannelSpec spec_;
  Rng rng_;
  std::vector<double> distance_m_;
  std::vector<double> shadow_db_;
};

}  // namespace fedl::net
