// FDMA bandwidth allocation across the participants of an epoch.
//
// The paper splits the cell bandwidth B across participating clients
// (Σ b_k = B) but does not fix the split; related work (Shi et al. [24],
// Tran et al. [25]) optimizes it jointly. Three policies:
//  * kEqual        — b_k = B/|S| (the baseline assumption);
//  * kInverseRate  — b_k ∝ 1/r̂_k at the equal share: weak-channel clients
//                    get proportionally more spectrum (cheap heuristic);
//  * kMinMaxLatency — the makespan-optimal split: choose {b_k} minimizing
//                    max_k s/r_k(b_k), computed by nested bisection (upload
//                    finishes simultaneously for every client at the
//                    optimum, since each r_k(b) is strictly increasing).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/channel.h"

namespace fedl::net {

enum class BandwidthPolicy { kEqual, kInverseRate, kMinMaxLatency };

BandwidthPolicy parse_bandwidth_policy(const std::string& name);
std::string bandwidth_policy_name(BandwidthPolicy policy);

struct Allocation {
  std::vector<double> bandwidth_hz;   // per client, Σ = B
  std::vector<double> upload_time_s;  // s / r_k(b_k)
  double makespan_s = 0.0;            // max upload time
};

// Allocates the channel's bandwidth across `clients` uploading `upload_bits`
// each. `clients` must be non-empty; gains are read from the channel's
// current epoch state.
Allocation allocate_bandwidth(const ChannelModel& channel,
                              const std::vector<std::size_t>& clients,
                              double upload_bits, BandwidthPolicy policy);

}  // namespace fedl::net
