#include "net/bandwidth.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace fedl::net {
namespace {

// Required bandwidth for client (gain) to finish `bits` within `time_s`:
// solves b·log2(1 + g·p/(N0·b)) = bits/time for b by bisection (the rate is
// strictly increasing and concave in b).
double bandwidth_for_deadline(double gain, double power_w,
                              double noise_w_per_hz, double bits,
                              double time_s, double b_max) {
  const double target_rate = bits / time_s;
  auto rate = [&](double b) {
    return shannon_rate(b, gain, power_w, noise_w_per_hz);
  };
  if (rate(b_max) < target_rate) return b_max;  // infeasible even with all of B
  double lo = 1e-6, hi = b_max;
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    (rate(mid) < target_rate ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

BandwidthPolicy parse_bandwidth_policy(const std::string& name) {
  if (name == "equal") return BandwidthPolicy::kEqual;
  if (name == "inverse-rate") return BandwidthPolicy::kInverseRate;
  if (name == "minmax") return BandwidthPolicy::kMinMaxLatency;
  throw ConfigError("unknown bandwidth policy: " + name);
}

std::string bandwidth_policy_name(BandwidthPolicy policy) {
  switch (policy) {
    case BandwidthPolicy::kEqual:
      return "equal";
    case BandwidthPolicy::kInverseRate:
      return "inverse-rate";
    case BandwidthPolicy::kMinMaxLatency:
      return "minmax";
  }
  return "?";
}

Allocation allocate_bandwidth(const ChannelModel& channel,
                              const std::vector<std::size_t>& clients,
                              double upload_bits, BandwidthPolicy policy) {
  FEDL_CHECK(!clients.empty());
  FEDL_CHECK_GT(upload_bits, 0.0);
  const double total = channel.spec().bandwidth_hz;
  const double p_w = dbm_to_watts(channel.spec().tx_power_dbm);
  const double n0_w = dbm_to_watts(channel.spec().noise_dbm_per_hz);
  const std::size_t n = clients.size();

  Allocation out;
  out.bandwidth_hz.assign(n, 0.0);

  switch (policy) {
    case BandwidthPolicy::kEqual: {
      for (auto& b : out.bandwidth_hz) b = total / static_cast<double>(n);
      break;
    }
    case BandwidthPolicy::kInverseRate: {
      // Weight ∝ 1/r̂_k at the equal share, normalized to Σ b = B.
      std::vector<double> weight(n);
      double wsum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double r = channel.rate_equal_share(clients[i], n);
        weight[i] = 1.0 / std::max(r, 1.0);
        wsum += weight[i];
      }
      for (std::size_t i = 0; i < n; ++i)
        out.bandwidth_hz[i] = total * weight[i] / wsum;
      break;
    }
    case BandwidthPolicy::kMinMaxLatency: {
      // Outer bisection on the common finish time T: the bandwidth each
      // client needs to meet T decreases in T, so Σ b_k(T) is decreasing.
      std::vector<double> gains(n);
      for (std::size_t i = 0; i < n; ++i) gains[i] = channel.gain(clients[i]);
      auto demand = [&](double t) {
        double sum = 0.0;
        for (double g : gains)
          sum += bandwidth_for_deadline(g, p_w, n0_w, upload_bits, t, total);
        return sum;
      };
      // Bracket: at the equal-share makespan the demand is ≤ B.
      double hi = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double r = channel.rate_equal_share(clients[i], n);
        hi = std::max(hi, upload_bits / r);
      }
      double lo = hi;
      for (int it = 0; it < 100 && demand(lo) <= total; ++it) lo *= 0.5;
      for (int it = 0; it < 80; ++it) {
        const double mid = 0.5 * (lo + hi);
        (demand(mid) > total ? lo : hi) = mid;
      }
      const double t_star = hi;
      double used = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        out.bandwidth_hz[i] = bandwidth_for_deadline(
            gains[i], p_w, n0_w, upload_bits, t_star, total);
        used += out.bandwidth_hz[i];
      }
      // Hand back any slack proportionally so Σ b = B exactly.
      if (used > 0.0) {
        const double scale = total / used;
        for (auto& b : out.bandwidth_hz) b *= scale;
      }
      break;
    }
  }

  out.upload_time_s.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double r = channel.rate(clients[i], out.bandwidth_hz[i]);
    out.upload_time_s[i] = upload_bits / r;
    out.makespan_s = std::max(out.makespan_s, out.upload_time_s[i]);
  }
  return out;
}

}  // namespace fedl::net
