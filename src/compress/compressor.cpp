#include "compress/compressor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fedl::compress {

CompressedUpdate NoneCompressor::apply(const ParamVec& d,
                                       std::size_t client) {
  (void)client;
  return {d, 32.0 * static_cast<double>(d.size())};
}

QuantizeCompressor::QuantizeCompressor(std::uint8_t bits,
                                       std::size_t num_clients,
                                       std::uint64_t seed)
    : bits_(bits) {
  FEDL_CHECK_GT(num_clients, 0u);
  Rng parent(seed);
  rngs_.reserve(num_clients);
  for (std::size_t i = 0; i < num_clients; ++i) rngs_.push_back(parent.split());
}

CompressedUpdate QuantizeCompressor::apply(const ParamVec& d,
                                           std::size_t client) {
  FEDL_CHECK_LT(client, rngs_.size());
  const QuantizedVec q = quantize(d, bits_, rngs_[client]);
  return {dequantize(q), q.payload_bits()};
}

std::string QuantizeCompressor::name() const {
  return "quant" + std::to_string(static_cast<int>(bits_));
}

TopKCompressor::TopKCompressor(double fraction, std::size_t num_clients)
    : fraction_(fraction), feedback_(num_clients) {
  FEDL_CHECK(fraction > 0.0 && fraction <= 1.0) << "fraction=" << fraction;
}

CompressedUpdate TopKCompressor::apply(const ParamVec& d,
                                       std::size_t client) {
  FEDL_CHECK_LT(client, feedback_.size());
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(fraction_ * static_cast<double>(d.size()))));
  const SparseVec s = feedback_[client].compress(d, k);
  return {densify(s), s.payload_bits()};
}

std::string TopKCompressor::name() const {
  return "topk" + std::to_string(static_cast<int>(fraction_ * 100.0));
}

CompressorPtr make_compressor(const std::string& name,
                              std::size_t num_clients, std::uint64_t seed) {
  if (name == "none") return std::make_unique<NoneCompressor>();
  if (name == "quant8")
    return std::make_unique<QuantizeCompressor>(8, num_clients, seed);
  if (name == "quant4")
    return std::make_unique<QuantizeCompressor>(4, num_clients, seed);
  if (name == "topk10")
    return std::make_unique<TopKCompressor>(0.10, num_clients);
  if (name == "topk1")
    return std::make_unique<TopKCompressor>(0.01, num_clients);
  throw ConfigError("unknown compressor: " + name);
}

}  // namespace fedl::compress
