#include "compress/quantize.h"

#include <cmath>

#include "common/error.h"

namespace fedl::compress {

QuantizedVec quantize(const ParamVec& x, std::uint8_t bits, Rng& rng) {
  FEDL_CHECK(bits >= 2 && bits <= 16) << "bits=" << static_cast<int>(bits);
  QuantizedVec q;
  q.bits = bits;
  q.levels.resize(x.size());

  float max_abs = 0.0f;
  for (float v : x) max_abs = std::max(max_abs, std::abs(v));
  q.scale = max_abs;
  if (max_abs == 0.0f) return q;  // all-zero vector: levels stay 0

  // Signed levels in [-L, L] with L = 2^(bits-1) − 1.
  const std::int32_t max_level = (1 << (bits - 1)) - 1;
  const double unit = static_cast<double>(max_abs) / max_level;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double exact = x[i] / unit;  // in [-L, L]
    const double floor_level = std::floor(exact);
    const double frac = exact - floor_level;
    // Stochastic rounding: round up with probability equal to the fraction,
    // making the quantizer unbiased.
    double level = floor_level + (rng.uniform() < frac ? 1.0 : 0.0);
    level = std::min<double>(std::max<double>(level, -max_level), max_level);
    q.levels[i] = static_cast<std::int32_t>(level);
  }
  return q;
}

ParamVec dequantize(const QuantizedVec& q) {
  ParamVec out(q.levels.size(), 0.0f);
  if (q.scale == 0.0f) return out;
  const std::int32_t max_level = (1 << (q.bits - 1)) - 1;
  const double unit = static_cast<double>(q.scale) / max_level;
  for (std::size_t i = 0; i < q.levels.size(); ++i)
    out[i] = static_cast<float>(q.levels[i] * unit);
  return out;
}

double quantization_mse(const ParamVec& x, const QuantizedVec& q) {
  FEDL_CHECK_EQ(x.size(), q.size());
  const ParamVec rec = dequantize(q);
  double mse = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = static_cast<double>(x[i]) - rec[i];
    mse += d * d;
  }
  return x.empty() ? 0.0 : mse / static_cast<double>(x.size());
}

}  // namespace fedl::compress
