// Stochastic uniform quantization of model updates (QSGD-style).
//
// The uplink payload s enters the paper's latency model as a constant;
// compressing d_{t,k} shrinks s (and hence τ^cm) at the cost of quantization
// noise in the aggregate. Stochastic rounding keeps the estimator unbiased:
// E[dequantize(quantize(x))] = x, so the FL convergence machinery still
// applies in expectation. Used by the A9 compression ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/ops.h"

namespace fedl::compress {

struct QuantizedVec {
  float scale = 0.0f;        // max |x| (dequantize multiplies by scale)
  std::uint8_t bits = 8;     // quantization width per element
  std::vector<std::int32_t> levels;  // signed level index per element

  std::size_t size() const { return levels.size(); }
  // Payload size on the wire: header + bits per element.
  double payload_bits() const {
    return 64.0 + static_cast<double>(levels.size()) * bits;
  }
};

// Quantizes x to `bits`-wide signed levels with stochastic rounding.
// bits must be in [2, 16].
QuantizedVec quantize(const ParamVec& x, std::uint8_t bits, Rng& rng);

// Reconstructs the (unbiased) estimate of the original vector.
ParamVec dequantize(const QuantizedVec& q);

// Mean squared reconstruction error (diagnostics / tests).
double quantization_mse(const ParamVec& x, const QuantizedVec& q);

}  // namespace fedl::compress
