#include "compress/topk.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace fedl::compress {

SparseVec top_k(const ParamVec& x, std::size_t k) {
  SparseVec out;
  out.dim = x.size();
  if (x.empty() || k == 0) return out;
  k = std::min(k, x.size());

  std::vector<std::uint32_t> order(x.size());
  std::iota(order.begin(), order.end(), 0u);
  std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return std::abs(x[a]) > std::abs(x[b]);
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());  // deterministic layout

  out.indices = std::move(order);
  out.values.reserve(k);
  for (std::uint32_t i : out.indices) out.values.push_back(x[i]);
  return out;
}

ParamVec densify(const SparseVec& s) {
  ParamVec out(s.dim, 0.0f);
  FEDL_CHECK_EQ(s.indices.size(), s.values.size());
  for (std::size_t i = 0; i < s.indices.size(); ++i) {
    FEDL_CHECK_LT(s.indices[i], s.dim);
    out[s.indices[i]] = s.values[i];
  }
  return out;
}

SparseVec ErrorFeedback::compress(const ParamVec& x, std::size_t k) {
  ParamVec carried = x;
  if (residual_.size() == carried.size()) {
    for (std::size_t i = 0; i < carried.size(); ++i)
      carried[i] += residual_[i];
  }
  SparseVec s = top_k(carried, k);
  // New residual = carried − densify(s).
  residual_ = std::move(carried);
  for (std::size_t i = 0; i < s.indices.size(); ++i)
    residual_[s.indices[i]] -= s.values[i];
  return s;
}

}  // namespace fedl::compress
