// Unified update-compression interface for the FL engine.
//
// A Compressor transforms a client's correction d_{t,k} into (a) the vector
// the server actually receives and (b) the uplink payload size in bits that
// replaces the constant s in the latency model. kNone reproduces the paper
// exactly; kQuantize/kTopK model the communication-efficiency extensions
// surveyed in related work (e.g. CMFL [28]).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "compress/quantize.h"
#include "compress/topk.h"

namespace fedl::compress {

struct CompressedUpdate {
  ParamVec restored;      // what the server aggregates
  double payload_bits = 0.0;  // what travels the uplink
};

class Compressor {
 public:
  virtual ~Compressor() = default;
  // `client` keys per-client state (e.g. error feedback, RNG stream).
  // Thread-safety contract: concurrent apply() calls are safe as long as
  // every in-flight call uses a distinct `client` — all mutable state is
  // partitioned per client, which is what lets the FL engine compress the
  // selected clients' updates in parallel.
  virtual CompressedUpdate apply(const ParamVec& d, std::size_t client) = 0;
  virtual std::string name() const = 0;
};

using CompressorPtr = std::unique_ptr<Compressor>;

// Pass-through: payload = 32 bits per parameter.
class NoneCompressor : public Compressor {
 public:
  CompressedUpdate apply(const ParamVec& d, std::size_t client) override;
  std::string name() const override { return "none"; }
};

// Stochastic quantization to `bits` per parameter. Each client draws its
// rounding randomness from its own forked RNG stream, so quantization is
// independent of the order (or concurrency) in which clients are processed.
class QuantizeCompressor : public Compressor {
 public:
  QuantizeCompressor(std::uint8_t bits, std::size_t num_clients,
                     std::uint64_t seed);
  CompressedUpdate apply(const ParamVec& d, std::size_t client) override;
  std::string name() const override;

 private:
  std::uint8_t bits_;
  std::vector<Rng> rngs_;  // one stream per client
};

// Top-k with per-client error feedback; `fraction` of coordinates kept.
class TopKCompressor : public Compressor {
 public:
  TopKCompressor(double fraction, std::size_t num_clients);
  CompressedUpdate apply(const ParamVec& d, std::size_t client) override;
  std::string name() const override;

 private:
  double fraction_;
  std::vector<ErrorFeedback> feedback_;
};

// Factory: "none", "quant8", "quant4", "topk10" (10% kept), "topk1".
CompressorPtr make_compressor(const std::string& name,
                              std::size_t num_clients, std::uint64_t seed);

}  // namespace fedl::compress
