// Top-k sparsification of model updates.
//
// Keeps the k largest-magnitude coordinates and drops the rest; the wire
// payload is k (index, value) pairs. Unlike stochastic quantization this is
// biased, so practical systems pair it with error feedback: the dropped
// residual is carried into the next round's update (Stich et al.'s
// error-compensated SGD), which we expose through ErrorFeedback.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/ops.h"

namespace fedl::compress {

struct SparseVec {
  std::size_t dim = 0;
  std::vector<std::uint32_t> indices;
  std::vector<float> values;

  std::size_t nnz() const { return indices.size(); }
  // Wire payload: 32-bit index + 32-bit value per kept coordinate.
  double payload_bits() const {
    return 64.0 + 64.0 * static_cast<double>(indices.size());
  }
};

// Keeps the k largest-|x| coordinates (all of them when k >= dim).
SparseVec top_k(const ParamVec& x, std::size_t k);

// Densifies a sparse vector back to `dim` floats.
ParamVec densify(const SparseVec& s);

// Per-client error feedback: accumulate what compression dropped and add it
// back before the next compression.
class ErrorFeedback {
 public:
  // Adds the carried residual to x, compresses, and stores the new residual.
  SparseVec compress(const ParamVec& x, std::size_t k);

  const ParamVec& residual() const { return residual_; }
  void reset() { residual_.clear(); }

 private:
  ParamVec residual_;
};

}  // namespace fedl::compress
