// Blocking data-parallel loops on top of ThreadPool — the OpenMP-style
// "parallel for" and "parallel reduce" idioms without the pragma dependency.
#pragma once

#include <cstddef>
#include <future>
#include <vector>

#include "common/error.h"
#include "parallel/thread_pool.h"

namespace fedl {

// Runs body(i) for i in [begin, end) across the pool, splitting the range
// into one contiguous chunk per worker. Blocks until every chunk finishes;
// the first task exception (if any) is rethrown on the caller.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const Body& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, pool.size());
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futs.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (auto& f : futs) f.get();
}

// Convenience overload on the shared pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body) {
  parallel_for(ThreadPool::shared(), begin, end, body);
}

// Caller-participating variant for scheduler-leased fan-outs: splits
// [begin, end) into `extra + 1` contiguous chunks, submits `extra` of them
// to the pool and runs the first chunk on the calling thread (the caller
// owns a budget slot too, so it must not idle while workers run). Blocks
// until every chunk finishes; the first task exception is rethrown. Chunk
// boundaries only affect which thread runs an index, never the values
// computed — bodies must only touch per-index state.
template <typename Body>
void parallel_for_shared(ThreadPool& pool, std::size_t extra,
                         std::size_t begin, std::size_t end,
                         const Body& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, extra + 1);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks - 1);
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futs.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (std::size_t i = begin; i < std::min(end, begin + per); ++i) body(i);
  for (auto& f : futs) f.get();
}

// Like parallel_for_shared, but the body also receives the chunk index
// (0 = the calling thread's chunk, 1..extra = pool chunks), so callers can
// hand each chunk a dedicated scratch slot (packed GEMM panels, model
// replicas) without any sharing between concurrently-running chunks. The
// chunk index never affects the values computed — only which scratch slot
// does the work.
template <typename Body>
void parallel_for_shared_indexed(ThreadPool& pool, std::size_t extra,
                                 std::size_t begin, std::size_t end,
                                 const Body& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, extra + 1);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(std::size_t{0}, i);
    return;
  }
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks - 1);
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futs.push_back(pool.submit([c, lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(c, i);
    }));
  }
  for (std::size_t i = begin; i < std::min(end, begin + per); ++i)
    body(std::size_t{0}, i);
  for (auto& f : futs) f.get();
}

// Parallel reduction: each chunk folds into a thread-local accumulator of
// type T (initialized with `identity`), then the partials are combined in
// deterministic chunk order with `combine` — reductions over doubles give
// the same result for a fixed pool size.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                  T identity, const MapFn& map_into, const CombineFn& combine) {
  if (begin >= end) return identity;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, pool.size());
  if (chunks <= 1) {
    T acc = identity;
    for (std::size_t i = begin; i < end; ++i) map_into(acc, i);
    return acc;
  }
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<T>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futs.push_back(pool.submit([lo, hi, identity, &map_into]() -> T {
      T acc = identity;
      for (std::size_t i = lo; i < hi; ++i) map_into(acc, i);
      return acc;
    }));
  }
  T total = identity;
  for (auto& f : futs) total = combine(std::move(total), f.get());
  return total;
}

template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, T identity,
                  const MapFn& map_into, const CombineFn& combine) {
  return parallel_reduce(ThreadPool::shared(), begin, end, identity, map_into,
                         combine);
}

}  // namespace fedl
