// Process-wide two-level scheduler: concurrent experiment trials on top,
// per-trial client fan-out below, both drawing from one hardware-thread
// budget (DESIGN.md "Two-level parallelism").
//
// Level 1 (trials): run_trials(n, fn) executes n independent trials —
// (algorithm, setting, seed, budget) cells of an experiment grid — with at
// most `jobs` running concurrently, each on a dedicated runner thread that
// occupies one budget slot while its trial runs.
//
// Level 2 (intra-trial fan-out): instead of constructing a private
// ThreadPool, FlEngine::run_clients asks the scheduler for extra worker
// slots (acquire_workers). Grants are try-acquire against the remaining
// budget, so `--jobs J --threads K` composes predictably: J runners plus
// Σ granted leases never exceed the budget. A trial whose nominal share is
// idle-capacity-bounded may *steal* unused slots (auto fan-out mode), so a
// lone straggler trial ramps up to the whole machine.
//
// Determinism: grants only change how a fan-out is chunked across worker
// threads, never the values computed — every per-client task touches only
// its own slot and all floating-point reductions happen in client order on
// the trial's thread (see engine.cpp), so per-trial results are
// bit-identical for any (jobs, threads, budget) combination.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace fedl {

struct SchedulerStats {
  std::size_t thread_budget = 0;  // total slots (trial runners + leases)
  std::size_t active_trials = 0;  // trials running right now
  std::size_t leased_slots = 0;   // worker slots currently handed out
  std::size_t peak_inflight = 0;  // max(active_trials + leased_slots) seen
  std::uint64_t trials_run = 0;   // trials completed since reset_stats()
  std::uint64_t steal_count = 0;  // leases that granted beyond the nominal
  std::uint64_t stolen_slots = 0; // slots granted beyond nominal, cumulative

  std::size_t inflight() const { return active_trials + leased_slots; }
};

class Scheduler {
 public:
  // The process-wide instance (never destroyed). Default configuration:
  // budget = hardware_concurrency, jobs = 1 — single-trial behavior with
  // whole-machine fan-out available to that trial.
  static Scheduler& instance();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Re-sizes the budget and top-level concurrency. budget 0 selects
  // hardware_concurrency (at least 1); jobs 0 selects the budget (one slot
  // per trial). Must only be called while the scheduler is idle (no trials
  // running, no leases outstanding) — checked.
  void configure(std::size_t budget, std::size_t jobs);

  std::size_t thread_budget() const;
  // Trials that may run concurrently: min(jobs, budget).
  std::size_t max_concurrent_trials() const;
  // A trial's nominal whole-thread share (its runner included) when the
  // fan-out is not pinned: max(1, budget / max_concurrent_trials()).
  std::size_t auto_share() const;

  // True on a thread currently executing a trial body for run_trials.
  static bool in_trial();

  // RAII grant of extra worker slots; slots return to the budget on
  // destruction. granted() may be 0 (run inline).
  class WorkerLease {
   public:
    WorkerLease() = default;
    WorkerLease(WorkerLease&& other) noexcept { swap(other); }
    WorkerLease& operator=(WorkerLease&& other) noexcept {
      swap(other);
      return *this;
    }
    WorkerLease(const WorkerLease&) = delete;
    WorkerLease& operator=(const WorkerLease&) = delete;
    ~WorkerLease();

    std::size_t granted() const { return granted_; }

   private:
    friend class Scheduler;
    WorkerLease(Scheduler* owner, std::size_t granted)
        : owner_(owner), granted_(granted) {}
    void swap(WorkerLease& other) {
      std::swap(owner_, other.owner_);
      std::swap(granted_, other.granted_);
    }

    Scheduler* owner_ = nullptr;
    std::size_t granted_ = 0;
  };

  // Try-acquire up to `max_useful` extra worker slots for the calling
  // thread's fan-out (the caller's own slot is accounted separately: every
  // live run_trials runner reserves one slot for its whole lifetime, a
  // non-trial caller is charged one slot implicitly). `nominal` is the fan-out's configured share of extra
  // workers; slots beyond it are only granted when `allow_steal` and idle
  // capacity exists, and are counted as stolen in the stats/gauges. Never
  // blocks; granted() == 0 means "run inline".
  WorkerLease acquire_workers(std::size_t nominal, std::size_t max_useful,
                              bool allow_steal);

  // Shared worker pool (budget - 1 workers) that executes leased fan-out
  // chunks. Only valid when thread_budget() > 1.
  ThreadPool& pool();

  // Runs fn(0), …, fn(n-1) — each exactly once — with at most
  // max_concurrent_trials() executing concurrently, on dedicated runner
  // threads (or inline when the effective width is 1). Blocks until every
  // trial finished. A throwing trial does not stop the others; afterwards
  // the lowest-index exception is rethrown. Trials must not call
  // run_trials recursively (checked).
  void run_trials(std::size_t n, const std::function<void(std::size_t)>& fn);

  SchedulerStats stats() const;
  // Zeroes peak/steal/trial counters (budget and live occupancy are kept).
  void reset_stats();

 private:
  Scheduler();

  void begin_trial();
  void end_trial();
  void release_workers(std::size_t granted);
  void update_gauges_locked();

  mutable std::mutex mutex_;
  std::size_t budget_ = 1;
  std::size_t jobs_ = 1;
  std::size_t runners_ = 0;  // live run_trials runner threads (slots reserved)
  std::size_t active_trials_ = 0;
  std::size_t leased_ = 0;
  std::size_t peak_inflight_ = 0;
  std::size_t stolen_now_ = 0;     // currently-leased slots beyond nominal
  std::uint64_t trials_run_ = 0;
  std::uint64_t steal_count_ = 0;
  std::uint64_t stolen_slots_ = 0;
  std::unique_ptr<ThreadPool> pool_;  // budget-1 workers; null when budget<=1
};

// Budget-respecting fan-out in one call: try-acquire up to end-begin-1
// extra workers from the scheduler (auto-share nominal, stealing enabled),
// run body(i) over [begin, end) caller-participating, release the lease.
// Runs inline when the range is trivial or the budget is saturated — so the
// compute layers (conv2d im2col/col2im/scatter loops, the GEMM macro loop)
// can fan out unconditionally and still compose with trial runners and
// per-client leases without ever oversubscribing. Values never depend on
// the grant (bodies touch disjoint per-index state by contract).
template <typename Body>
void leased_parallel_for(std::size_t begin, std::size_t end,
                         const Body& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  Scheduler& sched = Scheduler::instance();
  if (n > 1 && sched.thread_budget() > 1) {
    Scheduler::WorkerLease lease = sched.acquire_workers(
        sched.auto_share() - 1, n - 1, /*allow_steal=*/true);
    if (lease.granted() > 0) {
      parallel_for_shared(sched.pool(), lease.granted(), begin, end, body);
      return;
    }
  }
  for (std::size_t i = begin; i < end; ++i) body(i);
}

}  // namespace fedl
