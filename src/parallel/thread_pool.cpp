#include "parallel/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/profile.h"

namespace fedl {
namespace {

// Pool metrics: task throughput, queue pressure at submit time, and
// accumulated busy time per worker (utilization = pool.busy_us relative to
// workers x wall time; tasks here are whole client solves, so the two clock
// reads per task are noise).
const obs::Counter& tasks_submitted() {
  static const obs::Counter c("pool.tasks_submitted");
  return c;
}
const obs::Counter& tasks_executed() {
  static const obs::Counter c("pool.tasks_executed");
  return c;
}
const obs::Counter& busy_us_total() {
  static const obs::Counter c("pool.busy_us");
  return c;
}
const obs::Histogram& queue_depth_hist() {
  static const obs::Histogram h("pool.queue_depth",
                                {1, 2, 4, 8, 16, 32, 64, 128});
  return h;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  static const obs::Gauge workers_gauge("pool.workers");
  workers_gauge.set(static_cast<double>(threads));
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] {
      obs::Profiler::global().set_thread_name("pool-worker-" +
                                              std::to_string(i));
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::record_submit(std::size_t queue_depth) {
  tasks_submitted().add();
  queue_depth_hist().observe(static_cast<double>(queue_depth));
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto start = std::chrono::steady_clock::now();
    task();  // packaged_task captures exceptions into the future
    busy_us_total().add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    tasks_executed().add();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace fedl
