// Fixed-size work-queue thread pool.
//
// The FL engine trains the selected clients of an epoch concurrently — the
// natural parallel decomposition of federated learning, where every client's
// local solve is independent between aggregations. The pool is created once
// and reused across epochs so thread start-up cost is not paid per round.
//
// Design notes (following the C++ Core Guidelines concurrency rules):
//  * tasks are type-erased std::function<void()>; results flow through
//    std::future via submit();
//  * shutdown joins all workers in the destructor (RAII — CP.25);
//  * no detached threads, no shared mutable state without a lock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace fedl {

class ThreadPool {
 public:
  // threads == 0 selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a callable; the returned future reports the result (or rethrows
  // the task's exception at .get()).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_)
        throw std::runtime_error("ThreadPool::submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
      depth = queue_.size();
    }
    record_submit(depth);
    cv_.notify_one();
    return fut;
  }

  // Process-wide pool shared by the FL engine and benches. Lazily created.
  static ThreadPool& shared();

 private:
  void worker_loop();
  // Metrics hooks (non-template so the obs dependency stays in the .cpp):
  // queue depth observed after an enqueue, and per-task execution counters.
  static void record_submit(std::size_t queue_depth);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace fedl
