#include "parallel/scheduler.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace fedl {
namespace {

thread_local bool tl_in_trial = false;

// Scheduler gauges/counters (PR 3 registry): live occupancy of the thread
// budget plus the work-stealing traffic. Updated under the scheduler mutex,
// so gauge values are always a consistent snapshot of the accounting.
const obs::Gauge& budget_gauge() {
  static const obs::Gauge g("scheduler.thread_budget");
  return g;
}
const obs::Gauge& active_trials_gauge() {
  static const obs::Gauge g("scheduler.active_trials");
  return g;
}
const obs::Gauge& leased_gauge() {
  static const obs::Gauge g("scheduler.leased_slots");
  return g;
}
const obs::Gauge& borrowed_gauge() {
  static const obs::Gauge g("scheduler.borrowed_slots");
  return g;
}
const obs::Gauge& peak_gauge() {
  static const obs::Gauge g("scheduler.peak_inflight");
  return g;
}
const obs::Counter& trials_counter() {
  static const obs::Counter c("scheduler.trials");
  return c;
}
const obs::Counter& steals_counter() {
  static const obs::Counter c("scheduler.steals");
  return c;
}

std::size_t hardware_budget() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

Scheduler::Scheduler() : budget_(hardware_budget()), jobs_(1) {
  if (budget_ > 1) pool_ = std::make_unique<ThreadPool>(budget_ - 1);
  obs::set_manifest_field("thread_budget",
                          static_cast<std::uint64_t>(budget_));
  obs::set_manifest_field("jobs", static_cast<std::uint64_t>(jobs_));
  std::lock_guard<std::mutex> lock(mutex_);
  update_gauges_locked();
}

Scheduler& Scheduler::instance() {
  // Intentionally leaked so leases/trials racing static teardown stay safe
  // (same policy as MetricsRegistry::global).
  static Scheduler* s = new Scheduler();  // fedl-lint: allow(naked-new)
  return *s;
}

void Scheduler::configure(std::size_t budget, std::size_t jobs) {
  if (budget == 0) budget = hardware_budget();
  if (jobs == 0) jobs = budget;
  std::unique_ptr<ThreadPool> retired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FEDL_CHECK_EQ(active_trials_, 0u)
        << "Scheduler::configure while trials are running";
    FEDL_CHECK_EQ(leased_, 0u)
        << "Scheduler::configure while worker leases are outstanding";
    if (budget != budget_) {
      retired = std::move(pool_);
      budget_ = budget;
      if (budget_ > 1) pool_ = std::make_unique<ThreadPool>(budget_ - 1);
    }
    jobs_ = jobs;
    update_gauges_locked();
  }
  // Old pool (if any) joins its workers outside the lock.
  obs::set_manifest_field("thread_budget", static_cast<std::uint64_t>(budget));
  obs::set_manifest_field("jobs", static_cast<std::uint64_t>(jobs));
}

std::size_t Scheduler::thread_budget() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_;
}

std::size_t Scheduler::max_concurrent_trials() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::min(jobs_, budget_);
}

std::size_t Scheduler::auto_share() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t width = std::min(jobs_, budget_);
  return std::max<std::size_t>(1, budget_ / std::max<std::size_t>(1, width));
}

bool Scheduler::in_trial() { return tl_in_trial; }

Scheduler::WorkerLease::~WorkerLease() {
  if (owner_ != nullptr && granted_ > 0) owner_->release_workers(granted_);
}

Scheduler::WorkerLease Scheduler::acquire_workers(std::size_t nominal,
                                                  std::size_t max_useful,
                                                  bool allow_steal) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (budget_ <= 1 || max_useful == 0) return WorkerLease(this, 0);
  // Every live runner thread reserves its slot (runners_), whether or not
  // its current trial has begun — otherwise an early trial could steal
  // slots that sibling runners are about to occupy. A free-standing caller
  // (bench main thread, tests) is charged one slot for its own thread.
  const std::size_t occupied = runners_ + leased_ + (tl_in_trial ? 0 : 1);
  if (occupied >= budget_) return WorkerLease(this, 0);
  const std::size_t free = budget_ - occupied;
  const std::size_t want = allow_steal ? max_useful
                                       : std::min(nominal, max_useful);
  const std::size_t granted = std::min(want, free);
  if (granted == 0) return WorkerLease(this, 0);
  leased_ += granted;
  if (granted > nominal) {
    const std::size_t stolen = granted - nominal;
    stolen_now_ += stolen;
    stolen_slots_ += stolen;
    ++steal_count_;
    steals_counter().add();
  }
  peak_inflight_ = std::max(peak_inflight_, active_trials_ + leased_);
  update_gauges_locked();
  return WorkerLease(this, granted);
}

void Scheduler::release_workers(std::size_t granted) {
  std::lock_guard<std::mutex> lock(mutex_);
  FEDL_CHECK_GE(leased_, granted);
  leased_ -= granted;
  if (leased_ == 0) stolen_now_ = 0;
  update_gauges_locked();
}

ThreadPool& Scheduler::pool() {
  std::lock_guard<std::mutex> lock(mutex_);
  FEDL_CHECK(pool_ != nullptr) << "scheduler pool unavailable at budget 1";
  return *pool_;
}

void Scheduler::begin_trial() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++active_trials_;
  peak_inflight_ = std::max(peak_inflight_, active_trials_ + leased_);
  update_gauges_locked();
}

void Scheduler::end_trial() {
  std::lock_guard<std::mutex> lock(mutex_);
  FEDL_CHECK_GT(active_trials_, 0u);
  --active_trials_;
  ++trials_run_;
  trials_counter().add();
  update_gauges_locked();
}

void Scheduler::run_trials(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  FEDL_CHECK(!tl_in_trial) << "nested Scheduler::run_trials";
  const std::size_t width = std::min(max_concurrent_trials(), n);
  std::vector<std::exception_ptr> errors(n);

  // All runner slots are reserved up front (so leases can never crowd out
  // a runner that has not claimed its first trial yet) and returned as each
  // runner drains, letting straggler trials steal the freed capacity. Each
  // runner claims trial indices from a shared counter; a trial's body runs
  // with the in-trial flag set so its fan-out requests are accounted
  // against its own (already-held) slot.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    runners_ += width;
  }
  std::atomic<std::size_t> next{0};
  auto runner = [&] {
    tl_in_trial = true;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      begin_trial();
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      end_trial();
    }
    tl_in_trial = false;
    std::lock_guard<std::mutex> lock(mutex_);
    FEDL_CHECK_GT(runners_, 0u);
    --runners_;
  };

  if (width <= 1) {
    runner();  // inline on the caller: same accounting, no extra thread
  } else {
    std::vector<std::thread> threads;
    threads.reserve(width);
    for (std::size_t r = 0; r < width; ++r)
      threads.emplace_back([&runner, r] {
        obs::Profiler::global().set_thread_name("grid-runner-" +
                                                std::to_string(r));
        runner();
      });
    for (auto& t : threads) t.join();
  }
  for (std::size_t i = 0; i < n; ++i)
    if (errors[i]) std::rethrow_exception(errors[i]);
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SchedulerStats s;
  s.thread_budget = budget_;
  s.active_trials = active_trials_;
  s.leased_slots = leased_;
  s.peak_inflight = peak_inflight_;
  s.trials_run = trials_run_;
  s.steal_count = steal_count_;
  s.stolen_slots = stolen_slots_;
  return s;
}

void Scheduler::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  peak_inflight_ = active_trials_ + leased_;
  trials_run_ = 0;
  steal_count_ = 0;
  stolen_slots_ = 0;
  update_gauges_locked();
}

void Scheduler::update_gauges_locked() {
  budget_gauge().set(static_cast<double>(budget_));
  active_trials_gauge().set(static_cast<double>(active_trials_));
  leased_gauge().set(static_cast<double>(leased_));
  borrowed_gauge().set(static_cast<double>(stolen_now_));
  peak_gauge().set(static_cast<double>(peak_inflight_));
}

}  // namespace fedl
