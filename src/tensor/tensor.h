// Dense row-major float tensor, rank 1–4, NCHW convention for images.
//
// This is the numeric substrate for the NN library. It is deliberately a
// value type with owned contiguous storage (std::vector<float>): model
// parameters and activations are copied/moved explicitly, matching the FL
// setting where the global model is literally copied to each client every
// iteration.
//
// Borrowed views: a tensor can alias another tensor's storage read-only via
// borrow(). Shared-weight model replicas use this so concurrently-training
// clients read one copy of the global weights instead of each owning a
// clone. A borrowed tensor must not be written through (data()/operator[]
// hand out the base pointer; writers call detach_storage() first, which
// re-materializes private owned storage — copy-on-write). The previously
// owned buffer is kept as capacity across borrow/detach cycles so the
// per-iteration attach/detach pattern never reallocates.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/error.h"

namespace fedl {

class Rng;

// Shape of up to 4 dimensions; unused trailing dims are 1.
class Shape {
 public:
  Shape() : dims_{0, 1, 1, 1}, rank_(1) {}
  Shape(std::initializer_list<std::size_t> dims);

  std::size_t rank() const { return rank_; }
  std::size_t operator[](std::size_t i) const {
    FEDL_CHECK_LT(i, rank_);
    return dims_[i];
  }
  // Dim with rank check relaxed: dims beyond rank read as 1.
  std::size_t dim_or_1(std::size_t i) const { return i < rank_ ? dims_[i] : 1; }
  std::size_t numel() const;
  bool operator==(const Shape& other) const;
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string str() const;

 private:
  std::array<std::size_t, 4> dims_;
  std::size_t rank_;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);

  static Tensor zeros(Shape shape) { return Tensor(shape, 0.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(shape, v); }
  // He/Kaiming-style normal init with stddev sqrt(2/fan_in).
  static Tensor he_normal(Shape shape, std::size_t fan_in, Rng& rng);
  static Tensor uniform(Shape shape, float lo, float hi, Rng& rng);

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return view_ ? view_n_ : data_.size(); }
  bool empty() const { return numel() == 0; }

  // Alias `base`'s storage (shape included) without copying. The borrow is
  // read-only by contract; it stays valid while `base`'s storage does.
  // Owned storage is retained as capacity for a later detach_storage().
  void borrow(const Tensor& base);
  // True when this tensor aliases another tensor's storage.
  bool borrowed() const { return view_ != nullptr; }
  // Stop borrowing: re-materialize private owned storage holding a copy of
  // the viewed values (copy-on-write step). No-op on owned tensors.
  void detach_storage();
  // Bytes of owned backing storage (capacity — what this tensor actually
  // pins in memory; 0s out nothing for borrows, which pin only the base).
  std::size_t owned_bytes() const {
    return data_.capacity() * sizeof(float);
  }

  // Borrowed tensors hand out the base pointer: callers must treat it as
  // read-only (writers detach_storage() first).
  float* data() { return view_ ? const_cast<float*>(view_) : data_.data(); }
  const float* data() const { return view_ ? view_ : data_.data(); }
  std::span<float> span() { return {data(), numel()}; }
  std::span<const float> span() const { return {data(), numel()}; }

  float& operator[](std::size_t i) {
    FEDL_CHECK_LT(i, numel());
    return data()[i];
  }
  float operator[](std::size_t i) const {
    FEDL_CHECK_LT(i, numel());
    return data()[i];
  }

  // 2-D access (rank must be 2): row-major.
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;
  // 4-D NCHW access.
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  void fill(float v);
  // Reinterpret the buffer with a new shape of identical numel.
  void reshape(Shape new_shape);

  // Frobenius norm and squared norm.
  double norm() const;
  double squared_norm() const;

 private:
  Shape shape_;
  std::vector<float> data_;
  // Borrowed-view state: non-null means this tensor reads view_[0..view_n_)
  // instead of data_. Copying a borrowed tensor copies the borrow (both
  // alias the same base).
  const float* view_ = nullptr;
  std::size_t view_n_ = 0;
};

}  // namespace fedl
