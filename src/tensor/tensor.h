// Dense row-major float tensor, rank 1–4, NCHW convention for images.
//
// This is the numeric substrate for the NN library. It is deliberately a
// value type with owned contiguous storage (std::vector<float>): model
// parameters and activations are copied/moved explicitly, matching the FL
// setting where the global model is literally copied to each client every
// iteration.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/error.h"

namespace fedl {

class Rng;

// Shape of up to 4 dimensions; unused trailing dims are 1.
class Shape {
 public:
  Shape() : dims_{0, 1, 1, 1}, rank_(1) {}
  Shape(std::initializer_list<std::size_t> dims);

  std::size_t rank() const { return rank_; }
  std::size_t operator[](std::size_t i) const {
    FEDL_CHECK_LT(i, rank_);
    return dims_[i];
  }
  // Dim with rank check relaxed: dims beyond rank read as 1.
  std::size_t dim_or_1(std::size_t i) const { return i < rank_ ? dims_[i] : 1; }
  std::size_t numel() const;
  bool operator==(const Shape& other) const;
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string str() const;

 private:
  std::array<std::size_t, 4> dims_;
  std::size_t rank_;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);

  static Tensor zeros(Shape shape) { return Tensor(shape, 0.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(shape, v); }
  // He/Kaiming-style normal init with stddev sqrt(2/fan_in).
  static Tensor he_normal(Shape shape, std::size_t fan_in, Rng& rng);
  static Tensor uniform(Shape shape, float lo, float hi, Rng& rng);

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i) {
    FEDL_CHECK_LT(i, data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    FEDL_CHECK_LT(i, data_.size());
    return data_[i];
  }

  // 2-D access (rank must be 2): row-major.
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;
  // 4-D NCHW access.
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  void fill(float v);
  // Reinterpret the buffer with a new shape of identical numel.
  void reshape(Shape new_shape);

  // Frobenius norm and squared norm.
  double norm() const;
  double squared_norm() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace fedl
