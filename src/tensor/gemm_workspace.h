// Reusable float scratch buffers for the compute pipeline.
//
// The whole-batch convolution/dense pipeline needs several large scratch
// surfaces per layer invocation (batched im2col columns, channel-major GEMM
// outputs, per-block weight-gradient partials). Before PR 2 these lived in
// `thread_local std::vector`s, which pinned one high-water-mark allocation
// per pool thread for the life of the process and made ownership invisible.
// Instead, each layer owns its Workspace buffers: capacity is retained across
// iterations (the hot-loop case), sizes track the current batch, and clones
// start empty (Workspace intentionally does not copy its storage — a cloned
// layer re-grows its own scratch on first use).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace fedl {

class Workspace {
 public:
  Workspace() = default;

  // Copying a Workspace copies no storage: scratch contents are never part
  // of logical state, and model clones (one per concurrently-training FL
  // client) must not drag high-water-mark buffers along.
  Workspace(const Workspace&) {}
  Workspace& operator=(const Workspace&) { return *this; }
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  // Pointer to at least `n` floats. Grows (never shrinks) the backing
  // storage; newly grown memory is value-initialized to 0, previously used
  // memory keeps its old contents — callers must treat the buffer as
  // uninitialized scratch.
  float* ensure(std::size_t n) {
    if (buf_.size() < n) buf_.resize(n);
    return buf_.data();
  }

  // ensure() + explicit zero-fill of the first `n` floats, for buffers used
  // as accumulators.
  float* ensure_zeroed(std::size_t n) {
    float* p = ensure(n);
    std::fill(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(n),
              0.0f);
    return p;
  }

  float* data() { return buf_.data(); }
  const float* data() const { return buf_.data(); }
  std::size_t capacity() const { return buf_.size(); }

 private:
  std::vector<float> buf_;
};

}  // namespace fedl
