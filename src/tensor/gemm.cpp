#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "parallel/parallel_for.h"
#include "parallel/scheduler.h"
#include "tensor/simd_dispatch.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define FEDL_X86 1
#endif

namespace fedl {
namespace {

// Micro-tile shape: each micro-kernel call produces a MR x NR tile of C from
// packed A/B micro-panels. All kernels share MR = 6 (so pack_a is
// tier-independent) and differ in NR: 6x16 needs 12 accumulator registers
// + 2 B loads + 1 A broadcast = 15 of the 16 YMM registers on the AVX2
// path; 6x32 uses the same budget out of the 32 ZMM registers on AVX-512.
// The portable path uses the 6x16 shape so it shares packing, blocking
// schedule, and per-element accumulation order with AVX2 (only FMA rounding
// differs).
constexpr std::size_t kMr = 6;
constexpr std::size_t kNr = 16;
constexpr std::size_t kNrAvx512 = 32;
constexpr std::size_t kNrMax = 32;

// Cache blocks: the packed B panel (kBlockK x kBlockN = 256 KiB) targets L2,
// packed A micro-panels (kMr x kBlockK = 6 KiB each) stream through L1
// while one B panel stays resident. Multiples of kMr / kNrMax.
constexpr std::size_t kBlockN = 256;
constexpr std::size_t kBlockK = 256;

// Minimum problem size (2*m*n*k flops) before the macro loop asks the
// scheduler for extra workers: below this the lease + fan-out overhead
// (~µs) rivals the GEMM itself. 1e7 flops ≈ a 172³ product; the whole-batch
// conv/dense GEMMs of a large model clear it, per-sample small ones do not.
constexpr double kThreadMinFlops = 1e7;

// Packs op(A)'s [mb x kb] block into kMr-row micro-panels: panel ib holds
// kb steps of kMr consecutive rows, laid out p-major so the micro-kernel
// reads kMr unit-stride floats per k step. Rows past mb are zero-padded
// (they produce dead tile rows the write-back never reads).
void pack_a(bool trans_a, const float* a, std::size_t lda, std::size_t row0,
            std::size_t col0, std::size_t mb, std::size_t kb, float* out) {
  for (std::size_t ib = 0; ib < mb; ib += kMr) {
    const std::size_t rows = std::min(kMr, mb - ib);
    for (std::size_t p = 0; p < kb; ++p) {
      for (std::size_t r = 0; r < rows; ++r)
        out[p * kMr + r] = trans_a ? a[(col0 + p) * lda + (row0 + ib + r)]
                                   : a[(row0 + ib + r) * lda + (col0 + p)];
      for (std::size_t r = rows; r < kMr; ++r) out[p * kMr + r] = 0.0f;
    }
    out += kMr * kb;
  }
}

// Packs op(B)'s [kb x nb] block into nr-column micro-panels, p-major, with
// zero padding past nb. nr is the active kernel's register-tile width.
void pack_b(bool trans_b, const float* b, std::size_t ldb, std::size_t row0,
            std::size_t col0, std::size_t kb, std::size_t nb, std::size_t nr,
            float* out) {
  for (std::size_t jb = 0; jb < nb; jb += nr) {
    const std::size_t cols = std::min(nr, nb - jb);
    if (!trans_b && cols == nr) {
      // Fast path: contiguous nr-float rows of B.
      for (std::size_t p = 0; p < kb; ++p)
        std::memcpy(out + p * nr, b + (row0 + p) * ldb + (col0 + jb),
                    nr * sizeof(float));
    } else {
      for (std::size_t p = 0; p < kb; ++p) {
        for (std::size_t c = 0; c < cols; ++c)
          out[p * nr + c] = trans_b ? b[(col0 + jb + c) * ldb + (row0 + p)]
                                    : b[(row0 + p) * ldb + (col0 + jb + c)];
        for (std::size_t c = cols; c < nr; ++c) out[p * nr + c] = 0.0f;
      }
    }
    out += nr * kb;
  }
}

// Portable micro-kernel: tile[r][c] = sum_p apanel[p*6+r] * bpanel[p*16+c].
// Plain nested loops the compiler can unroll/vectorize at the baseline ISA;
// same p-ascending accumulation order as the AVX2 kernel.
// One tile row at a time: 16 accumulators fit the baseline SSE register
// file, so they stay register-resident across the whole k walk (a full
// 6×16 accumulator block spills and runs ~8x slower). The B panel is
// re-read once per row but is at most kBlockK*kNr floats = 16 KiB — L1.
void kernel_6x16_portable(std::size_t kb, const float* apanel,
                          const float* bpanel, float* tile) {
  for (std::size_t r = 0; r < kMr; ++r) {
    float acc[kNr] = {0.0f};
    for (std::size_t p = 0; p < kb; ++p) {
      const float av = apanel[p * kMr + r];
      const float* bp = bpanel + p * kNr;
      for (std::size_t c = 0; c < kNr; ++c) acc[c] += av * bp[c];
    }
    std::memcpy(tile + r * kNr, acc, sizeof(acc));
  }
}

#ifdef FEDL_X86
// AVX2+FMA micro-kernel. Compiled with a function-level target attribute so
// the rest of the TU (and the whole build) stays at the baseline ISA; the
// dispatcher guarantees it only runs on CPUs with AVX2 and FMA.
__attribute__((target("avx2,fma"))) void kernel_6x16_avx2(
    std::size_t kb, const float* apanel, const float* bpanel, float* tile) {
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
  for (std::size_t p = 0; p < kb; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bpanel + p * kNr);
    const __m256 b1 = _mm256_loadu_ps(bpanel + p * kNr + 8);
    const float* ap = apanel + p * kMr;
    __m256 a = _mm256_broadcast_ss(ap + 0);
    c00 = _mm256_fmadd_ps(a, b0, c00);
    c01 = _mm256_fmadd_ps(a, b1, c01);
    a = _mm256_broadcast_ss(ap + 1);
    c10 = _mm256_fmadd_ps(a, b0, c10);
    c11 = _mm256_fmadd_ps(a, b1, c11);
    a = _mm256_broadcast_ss(ap + 2);
    c20 = _mm256_fmadd_ps(a, b0, c20);
    c21 = _mm256_fmadd_ps(a, b1, c21);
    a = _mm256_broadcast_ss(ap + 3);
    c30 = _mm256_fmadd_ps(a, b0, c30);
    c31 = _mm256_fmadd_ps(a, b1, c31);
    a = _mm256_broadcast_ss(ap + 4);
    c40 = _mm256_fmadd_ps(a, b0, c40);
    c41 = _mm256_fmadd_ps(a, b1, c41);
    a = _mm256_broadcast_ss(ap + 5);
    c50 = _mm256_fmadd_ps(a, b0, c50);
    c51 = _mm256_fmadd_ps(a, b1, c51);
  }
  _mm256_storeu_ps(tile + 0 * kNr, c00);
  _mm256_storeu_ps(tile + 0 * kNr + 8, c01);
  _mm256_storeu_ps(tile + 1 * kNr, c10);
  _mm256_storeu_ps(tile + 1 * kNr + 8, c11);
  _mm256_storeu_ps(tile + 2 * kNr, c20);
  _mm256_storeu_ps(tile + 2 * kNr + 8, c21);
  _mm256_storeu_ps(tile + 3 * kNr, c30);
  _mm256_storeu_ps(tile + 3 * kNr + 8, c31);
  _mm256_storeu_ps(tile + 4 * kNr, c40);
  _mm256_storeu_ps(tile + 4 * kNr + 8, c41);
  _mm256_storeu_ps(tile + 5 * kNr, c50);
  _mm256_storeu_ps(tile + 5 * kNr + 8, c51);
}

// AVX-512F micro-kernel: 6x32 tile as 12 ZMM accumulators (2 per row) + 2 B
// loads + 1 broadcast, mirroring the AVX2 register discipline at twice the
// width. Same p-ascending accumulation order as the other kernels.
__attribute__((target("avx512f"))) void kernel_6x32_avx512(
    std::size_t kb, const float* apanel, const float* bpanel, float* tile) {
  __m512 c00 = _mm512_setzero_ps(), c01 = _mm512_setzero_ps();
  __m512 c10 = _mm512_setzero_ps(), c11 = _mm512_setzero_ps();
  __m512 c20 = _mm512_setzero_ps(), c21 = _mm512_setzero_ps();
  __m512 c30 = _mm512_setzero_ps(), c31 = _mm512_setzero_ps();
  __m512 c40 = _mm512_setzero_ps(), c41 = _mm512_setzero_ps();
  __m512 c50 = _mm512_setzero_ps(), c51 = _mm512_setzero_ps();
  for (std::size_t p = 0; p < kb; ++p) {
    const __m512 b0 = _mm512_loadu_ps(bpanel + p * kNrAvx512);
    const __m512 b1 = _mm512_loadu_ps(bpanel + p * kNrAvx512 + 16);
    const float* ap = apanel + p * kMr;
    __m512 a = _mm512_set1_ps(ap[0]);
    c00 = _mm512_fmadd_ps(a, b0, c00);
    c01 = _mm512_fmadd_ps(a, b1, c01);
    a = _mm512_set1_ps(ap[1]);
    c10 = _mm512_fmadd_ps(a, b0, c10);
    c11 = _mm512_fmadd_ps(a, b1, c11);
    a = _mm512_set1_ps(ap[2]);
    c20 = _mm512_fmadd_ps(a, b0, c20);
    c21 = _mm512_fmadd_ps(a, b1, c21);
    a = _mm512_set1_ps(ap[3]);
    c30 = _mm512_fmadd_ps(a, b0, c30);
    c31 = _mm512_fmadd_ps(a, b1, c31);
    a = _mm512_set1_ps(ap[4]);
    c40 = _mm512_fmadd_ps(a, b0, c40);
    c41 = _mm512_fmadd_ps(a, b1, c41);
    a = _mm512_set1_ps(ap[5]);
    c50 = _mm512_fmadd_ps(a, b0, c50);
    c51 = _mm512_fmadd_ps(a, b1, c51);
  }
  _mm512_storeu_ps(tile + 0 * kNrAvx512, c00);
  _mm512_storeu_ps(tile + 0 * kNrAvx512 + 16, c01);
  _mm512_storeu_ps(tile + 1 * kNrAvx512, c10);
  _mm512_storeu_ps(tile + 1 * kNrAvx512 + 16, c11);
  _mm512_storeu_ps(tile + 2 * kNrAvx512, c20);
  _mm512_storeu_ps(tile + 2 * kNrAvx512 + 16, c21);
  _mm512_storeu_ps(tile + 3 * kNrAvx512, c30);
  _mm512_storeu_ps(tile + 3 * kNrAvx512 + 16, c31);
  _mm512_storeu_ps(tile + 4 * kNrAvx512, c40);
  _mm512_storeu_ps(tile + 4 * kNrAvx512 + 16, c41);
  _mm512_storeu_ps(tile + 5 * kNrAvx512, c50);
  _mm512_storeu_ps(tile + 5 * kNrAvx512 + 16, c51);
}
#endif  // FEDL_X86

using MicroKernelFn = void (*)(std::size_t, const float*, const float*,
                               float*);

// A resolved kernel tier: the micro-kernel plus its register-tile width.
// Everything downstream (pack_b panel width, tile stride, write-back) is
// parameterized on nr so tiers can differ in width without duplicating the
// macro loop.
struct KernelDesc {
  MicroKernelFn fn;
  std::size_t nr;
};

KernelDesc select_micro_kernel() {
#ifdef FEDL_X86
  switch (active_gemm_kernel()) {
    case GemmKernel::kAvx512:
      return {kernel_6x32_avx512, kNrAvx512};
    case GemmKernel::kAvx2Fma:
      return {kernel_6x16_avx2, kNr};
    case GemmKernel::kPortable:
      break;
  }
#endif
  return {kernel_6x16_portable, kNr};
}

// Dispatch-layer telemetry: call volume and FLOP throughput, plus which
// micro-kernel tier the dispatcher resolved (0 = portable, 1 = AVX2+FMA,
// 2 = AVX-512) and how many extra workers the threaded macro loop ran with.
void note_gemm_call(std::size_t m, std::size_t n, std::size_t k) {
  static const obs::Counter calls("gemm.calls");
  static const obs::Counter flops("gemm.flops");
  static const obs::Gauge kernel_tier("gemm.kernel_tier");
  calls.add();
  flops.add(static_cast<std::uint64_t>(2) * m * n * k);
  kernel_tier.set(static_cast<double>(active_gemm_kernel()));
}

void note_gemm_threads(std::size_t extra) {
  static const obs::Counter threaded_calls("gemm.threaded_calls");
  static const obs::Counter threaded_workers("gemm.threaded_workers");
  threaded_calls.add();
  threaded_workers.add(extra);
}

// Merges one micro-tile into C: C = alpha*tile + beta_eff*C, plus the fused
// bias on the final k-panel. beta_eff == 0 must not read C (it may be
// uninitialized scratch). nr_stride is the tile's row stride (the kernel's
// register-tile width); nr <= nr_stride columns are live.
void write_back(const float* tile, std::size_t nr_stride, float* c,
                std::size_t ldc, std::size_t mr, std::size_t nr, float alpha,
                float beta_eff, BiasMode bias_mode, const float* bias,
                std::size_t row0, std::size_t col0) {
  for (std::size_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    const float* trow = tile + r * nr_stride;
    const float row_bias =
        bias_mode == BiasMode::kPerRow ? bias[row0 + r] : 0.0f;
    for (std::size_t cc = 0; cc < nr; ++cc) {
      float v = alpha * trow[cc];
      if (beta_eff != 0.0f) v += beta_eff * crow[cc];
      if (bias_mode == BiasMode::kPerRow) v += row_bias;
      if (bias_mode == BiasMode::kPerCol) v += bias[col0 + cc];
      crow[cc] = v;
    }
  }
}

}  // namespace

void gemm_naive(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                std::size_t k, float alpha, const float* a, const float* b,
                float beta, float* c) {
  const std::size_t lda = trans_a ? m : k;
  const std::size_t ldb = trans_b ? k : n;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c[i * n + j] =
          alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

void gemm_bias(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
               std::size_t k, float alpha, const float* a, std::size_t lda,
               const float* b, std::size_t ldb, float beta, float* c,
               std::size_t ldc, BiasMode bias_mode, const float* bias) {
  if (m == 0 || n == 0) return;
  FEDL_PROFILE_SCOPE("tensor.gemm");
  note_gemm_call(m, n, k);
  if (k == 0) {
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      const float row_bias =
          bias_mode == BiasMode::kPerRow ? bias[i] : 0.0f;
      for (std::size_t j = 0; j < n; ++j) {
        float v = beta == 0.0f ? 0.0f : beta * crow[j];
        if (bias_mode == BiasMode::kPerRow) v += row_bias;
        if (bias_mode == BiasMode::kPerCol) v += bias[j];
        crow[j] = v;
      }
    }
    return;
  }
  const KernelDesc kd = select_micro_kernel();
  const MicroKernelFn micro = kd.fn;
  const std::size_t nr_tile = kd.nr;

  // Threaded macro loop: split the m dimension into kMr-row strips and lease
  // extra workers from the shared scheduler budget for the strip loop. The
  // lease composes with enclosing fan-outs (engine per-client chunks are
  // charged against the same budget, so a saturated budget grants 0 and the
  // GEMM runs inline — no oversubscription, no deadlock: Σ granted leases
  // ≤ budget − runners − 1 ≤ pool size, so every submitted chunk gets a
  // worker). Determinism: the k loop (p0) stays on the calling thread and
  // each strip's k-accumulation order is fixed by the blocking schedule, so
  // C is bit-identical at any grant — workers only change which strip runs
  // where, and strips write disjoint C rows.
  const std::size_t n_strips = (m + kMr - 1) / kMr;
  Scheduler::WorkerLease lease;
  std::size_t extra = 0;
  if (n_strips > 1 && 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                              static_cast<double>(k) >=
                          kThreadMinFlops) {
    Scheduler& sched = Scheduler::instance();
    if (sched.thread_budget() > 1) {
      lease = sched.acquire_workers(sched.auto_share() - 1, n_strips - 1,
                                    /*allow_steal=*/true);
      extra = lease.granted();
      if (extra > 0) note_gemm_threads(extra);
    }
  }

  // Packing scratch: one shared B panel (packed by the calling thread before
  // each strip fan-out) plus a per-chunk A micro-panel and C tile so
  // concurrent strips never share mutable scratch.
  const std::size_t nb_cap =
      std::min(kBlockN, (n + nr_tile - 1) / nr_tile * nr_tile);
  const std::size_t kb_cap = std::min(kBlockK, k);
  std::vector<float> bpack(kb_cap * nb_cap);
  std::vector<float> apack((extra + 1) * kMr * kb_cap);
  std::vector<float> tiles((extra + 1) * kMr * kNrMax);

  for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
    const std::size_t nb = std::min(kBlockN, n - j0);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t kb = std::min(kBlockK, k - p0);
      // First k-panel applies the caller's beta, later panels accumulate;
      // the bias joins on the last panel so it is added exactly once.
      const float beta_eff = p0 == 0 ? beta : 1.0f;
      const BiasMode panel_bias =
          p0 + kb >= k ? bias_mode : BiasMode::kNone;
      pack_b(trans_b, b, ldb, p0, j0, kb, nb, nr_tile, bpack.data());
      const auto run_strip = [&](std::size_t chunk, std::size_t s) {
        const std::size_t i0 = s * kMr;
        const std::size_t mr = std::min(kMr, m - i0);
        float* apanel = apack.data() + chunk * kMr * kb_cap;
        float* tile = tiles.data() + chunk * kMr * kNrMax;
        pack_a(trans_a, a, lda, i0, p0, mr, kb, apanel);
        for (std::size_t jb = 0; jb < nb; jb += nr_tile) {
          const float* bpanel = bpack.data() + (jb / nr_tile) * nr_tile * kb;
          const std::size_t nc = std::min(nr_tile, nb - jb);
          micro(kb, apanel, bpanel, tile);
          write_back(tile, nr_tile, c + i0 * ldc + (j0 + jb), ldc, mr, nc,
                     alpha, beta_eff, panel_bias, bias, i0, j0 + jb);
        }
      };
      if (extra > 0) {
        parallel_for_shared_indexed(Scheduler::instance().pool(), extra, 0,
                                    n_strips, run_strip);
      } else {
        for (std::size_t s = 0; s < n_strips; ++s) run_strip(0, s);
      }
    }
  }
}

void gemm_bias(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
               std::size_t k, float alpha, const float* a, const float* b,
               float beta, float* c, BiasMode bias_mode, const float* bias) {
  gemm_bias(trans_a, trans_b, m, n, k, alpha, a, trans_a ? m : k, b,
            trans_b ? k : n, beta, c, n, bias_mode, bias);
}

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, const float* b,
          float beta, float* c) {
  gemm_bias(trans_a, trans_b, m, n, k, alpha, a, b, beta, c, BiasMode::kNone,
            nullptr);
}

void gemm(bool trans_a, bool trans_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor& c) {
  FEDL_CHECK_EQ(a.shape().rank(), 2u);
  FEDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = trans_a ? a.shape()[1] : a.shape()[0];
  const std::size_t ka = trans_a ? a.shape()[0] : a.shape()[1];
  const std::size_t kb = trans_b ? b.shape()[1] : b.shape()[0];
  const std::size_t n = trans_b ? b.shape()[0] : b.shape()[1];
  FEDL_CHECK_EQ(ka, kb) << "inner dims mismatch: " << a.shape().str() << " * "
                        << b.shape().str();
  if (c.shape() != Shape{m, n}) {
    FEDL_CHECK_EQ(beta, 0.0f) << "beta != 0 requires a correctly-shaped C";
    c = Tensor(Shape{m, n});
  }
  gemm(trans_a, trans_b, m, n, ka, alpha, a.data(), b.data(), beta, c.data());
}

}  // namespace fedl
