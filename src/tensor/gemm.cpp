#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace fedl {
namespace {

// Block sizes tuned for L1/L2 on a typical x86 core; exact values are not
// critical, the point is to keep the B panel resident while streaming A.
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockN = 256;
constexpr std::size_t kBlockK = 256;

// Packs op(A)'s [mb x kb] block into row-major contiguous storage so the
// micro-kernel always streams unit-stride regardless of transposition.
void pack_a(bool trans_a, const float* a, std::size_t lda, std::size_t row0,
            std::size_t col0, std::size_t mb, std::size_t kb, float* out) {
  for (std::size_t i = 0; i < mb; ++i)
    for (std::size_t p = 0; p < kb; ++p)
      out[i * kb + p] = trans_a ? a[(col0 + p) * lda + (row0 + i)]
                                : a[(row0 + i) * lda + (col0 + p)];
}

void pack_b(bool trans_b, const float* b, std::size_t ldb, std::size_t row0,
            std::size_t col0, std::size_t kb, std::size_t nb, float* out) {
  for (std::size_t p = 0; p < kb; ++p)
    for (std::size_t j = 0; j < nb; ++j)
      out[p * nb + j] = trans_b ? b[(col0 + j) * ldb + (row0 + p)]
                                : b[(row0 + p) * ldb + (col0 + j)];
}

}  // namespace

void gemm_naive(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                std::size_t k, float alpha, const float* a, const float* b,
                float beta, float* c) {
  const std::size_t lda = trans_a ? m : k;
  const std::size_t ldb = trans_b ? k : n;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] =
          alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, const float* b,
          float beta, float* c) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
    return;
  }
  const std::size_t lda = trans_a ? m : k;
  const std::size_t ldb = trans_b ? k : n;

  // Apply beta once up front; the blocked kernel then accumulates.
  if (beta == 0.0f) {
    std::memset(c, 0, m * n * sizeof(float));
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
  }

  std::vector<float> apack(kBlockM * kBlockK);
  std::vector<float> bpack(kBlockK * kBlockN);

  for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
    const std::size_t nb = std::min(kBlockN, n - j0);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t kb = std::min(kBlockK, k - p0);
      pack_b(trans_b, b, ldb, p0, j0, kb, nb, bpack.data());
      for (std::size_t i0 = 0; i0 < m; i0 += kBlockM) {
        const std::size_t mb = std::min(kBlockM, m - i0);
        pack_a(trans_a, a, lda, i0, p0, mb, kb, apack.data());
        // Micro-kernel: C[i, j] += alpha * sum_p Apack[i, p] * Bpack[p, j].
        for (std::size_t i = 0; i < mb; ++i) {
          float* crow = c + (i0 + i) * n + j0;
          const float* arow = apack.data() + i * kb;
          for (std::size_t p = 0; p < kb; ++p) {
            const float av = alpha * arow[p];
            const float* brow = bpack.data() + p * nb;
            for (std::size_t j = 0; j < nb; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

void gemm(bool trans_a, bool trans_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor& c) {
  FEDL_CHECK_EQ(a.shape().rank(), 2u);
  FEDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = trans_a ? a.shape()[1] : a.shape()[0];
  const std::size_t ka = trans_a ? a.shape()[0] : a.shape()[1];
  const std::size_t kb = trans_b ? b.shape()[1] : b.shape()[0];
  const std::size_t n = trans_b ? b.shape()[0] : b.shape()[1];
  FEDL_CHECK_EQ(ka, kb) << "inner dims mismatch: " << a.shape().str() << " * "
                        << b.shape().str();
  if (c.shape() != Shape{m, n}) {
    FEDL_CHECK_EQ(beta, 0.0f) << "beta != 0 requires a correctly-shaped C";
    c = Tensor(Shape{m, n});
  }
  gemm(trans_a, trans_b, m, n, ka, alpha, a.data(), b.data(), beta, c.data());
}

}  // namespace fedl
