// im2col / col2im lowering for convolution.
//
// Convolution over an NCHW image becomes a GEMM between the filter matrix
// [C_out, C_in*KH*KW] and the column matrix [C_in*KH*KW, OH*OW]; col2im is
// the adjoint used in the backward pass.
//
// Both routines take an optional leading dimension `ld` (distance in floats
// between consecutive column-matrix rows). With ld > col_cols() a sample's
// columns can be written directly into its slice of a whole-batch buffer of
// shape [col_rows, N*col_cols] — one im2col surface, one big GEMM per layer
// invocation instead of one tiny GEMM per sample (see nn/conv2d.cpp).
#pragma once

#include <cstddef>

#include "tensor/tensor.h"

namespace fedl {

struct Conv2dGeometry {
  std::size_t in_channels;
  std::size_t in_h;
  std::size_t in_w;
  std::size_t kernel_h;
  std::size_t kernel_w;
  std::size_t stride;
  std::size_t pad;

  std::size_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  std::size_t col_rows() const { return in_channels * kernel_h * kernel_w; }
  std::size_t col_cols() const { return out_h() * out_w(); }
};

// image: one sample, [C, H, W] contiguous; cols: [col_rows, col_cols] slab
// with row stride `ld` (0 means tightly packed, ld = col_cols()).
void im2col(const Conv2dGeometry& g, const float* image, float* cols,
            std::size_t ld = 0);

// Adjoint: accumulate columns (row stride `ld`, 0 = col_cols()) back into
// the (pre-zeroed) image gradient.
void col2im(const Conv2dGeometry& g, const float* cols, float* image,
            std::size_t ld = 0);

}  // namespace fedl
