#include "tensor/tensor.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "common/rng.h"

namespace fedl {

Shape::Shape(std::initializer_list<std::size_t> dims) : dims_{1, 1, 1, 1} {
  FEDL_CHECK(dims.size() >= 1 && dims.size() <= 4)
      << "rank must be 1..4, got " << dims.size();
  rank_ = dims.size();
  std::size_t i = 0;
  for (std::size_t d : dims) dims_[i++] = d;
}

std::size_t Shape::numel() const {
  std::size_t n = 1;
  for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
  return n;
}

bool Shape::operator==(const Shape& other) const {
  // Shapes compare by logical extent: trailing 1-dims don't matter.
  for (std::size_t i = 0; i < 4; ++i)
    if (dim_or_1(i) != other.dim_or_1(i)) return false;
  return true;
}

std::string Shape::str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i) os << 'x';
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(shape), data_(shape.numel(), fill) {}

Tensor Tensor::he_normal(Shape shape, std::size_t fan_in, Rng& rng) {
  FEDL_CHECK_GT(fan_in, 0u);
  Tensor t(shape);
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::uniform(Shape shape, float lo, float hi, Rng& rng) {
  Tensor t(shape);
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

void Tensor::borrow(const Tensor& base) {
  FEDL_CHECK(&base != this) << "cannot borrow from self";
  // Chases through a borrowed base: data() already resolves to the real
  // storage, so borrow chains never exceed depth 1.
  shape_ = base.shape_;
  view_ = base.data();
  view_n_ = base.numel();
  // A borrow is weightless: release any owned storage (this is what makes a
  // shared-weight replica O(activations + grads) instead of O(|w|)). A later
  // detach_storage() re-allocates; that one allocation per attach/detach
  // cycle is noise next to the forward/backward work that motivates it.
  std::vector<float>().swap(data_);
}

void Tensor::detach_storage() {
  if (view_ == nullptr) return;
  const float* src = view_;
  const std::size_t n = view_n_;
  data_.resize(n);
  std::memcpy(data_.data(), src, n * sizeof(float));
  view_ = nullptr;
  view_n_ = 0;
}

float& Tensor::at(std::size_t r, std::size_t c) {
  FEDL_CHECK_EQ(shape_.rank(), 2u);
  FEDL_CHECK_LT(r, shape_[0]);
  FEDL_CHECK_LT(c, shape_[1]);
  return data()[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

float& Tensor::at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  FEDL_CHECK_EQ(shape_.rank(), 4u);
  FEDL_CHECK_LT(n, shape_[0]);
  FEDL_CHECK_LT(c, shape_[1]);
  FEDL_CHECK_LT(h, shape_[2]);
  FEDL_CHECK_LT(w, shape_[3]);
  return data()[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                 std::size_t w) const {
  return const_cast<Tensor*>(this)->at(n, c, h, w);
}

void Tensor::fill(float v) {
  FEDL_CHECK(view_ == nullptr) << "cannot fill a borrowed tensor";
  for (auto& x : data_) x = v;
}

void Tensor::reshape(Shape new_shape) {
  FEDL_CHECK_EQ(new_shape.numel(), numel())
      << "reshape " << shape_.str() << " -> " << new_shape.str();
  shape_ = new_shape;
}

double Tensor::squared_norm() const {
  double s = 0.0;
  const float* p = data();
  const std::size_t n = numel();
  for (std::size_t i = 0; i < n; ++i)
    s += static_cast<double>(p[i]) * static_cast<double>(p[i]);
  return s;
}

double Tensor::norm() const { return std::sqrt(squared_norm()); }

}  // namespace fedl
