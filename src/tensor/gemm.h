// General matrix multiply, the workhorse behind dense layers and im2col
// convolution.
//
// gemm() is cache-blocked (packed A/B micro-panels) around a 6x16
// register-blocked micro-kernel with runtime CPU dispatch: an AVX2+FMA
// implementation on x86 CPUs that support it, a portable unrolled fallback
// elsewhere (see tensor/simd_dispatch.h for the selection/override policy).
// The epilogue can fuse a bias vector into the write-back so layers do not
// re-stream C. Correctness is verified against gemm_naive in tests with
// relative-error bounds (the micro-kernel changes accumulation order and
// uses FMA, so bit-identity with the naive double-accumulator reference is
// not the contract — see DESIGN.md §"Compute kernel layer").
#pragma once

#include <cstddef>

#include "tensor/tensor.h"

namespace fedl {

// Bias fused into the GEMM write-back: none, one value per output row
// (conv2d: per output channel), or one value per output column (dense:
// per output feature with C = X * W^T).
enum class BiasMode { kNone, kPerRow, kPerCol };

// C = alpha * op(A) * op(B) + beta * C  [+ bias]
//   A is [M, K] when !trans_a else [K, M]
//   B is [K, N] when !trans_b else [N, K]
//   C is [M, N]
// Raw-pointer form with explicit dimensions, row-major contiguous.
// `bias` must hold M floats for kPerRow, N floats for kPerCol; it is added
// once per output element regardless of the internal k-panel split.
void gemm_bias(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
               std::size_t k, float alpha, const float* a, const float* b,
               float beta, float* c, BiasMode bias_mode, const float* bias);

// Fully general form with explicit leading dimensions (row strides), for
// operating on sub-matrix views — e.g. one sample block of a whole-batch
// column buffer. lda/ldb/ldc are in floats and must be at least the stored
// row length of the respective operand.
void gemm_bias(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
               std::size_t k, float alpha, const float* a, std::size_t lda,
               const float* b, std::size_t ldb, float beta, float* c,
               std::size_t ldc, BiasMode bias_mode, const float* bias);

// Bias-free convenience form (the common case).
void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, const float* b,
          float beta, float* c);

// Tensor convenience wrapper; shapes are validated.
void gemm(bool trans_a, bool trans_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor& c);

// Reference implementation used by tests and as a fallback oracle.
void gemm_naive(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                std::size_t k, float alpha, const float* a, const float* b,
                float beta, float* c);

}  // namespace fedl
