// General matrix multiply, the workhorse behind dense layers and im2col
// convolution. Cache-blocked with an inner micro-kernel the compiler can
// vectorize; correctness is verified against a naive reference in tests.
#pragma once

#include <cstddef>

#include "tensor/tensor.h"

namespace fedl {

// C = alpha * op(A) * op(B) + beta * C
//   A is [M, K] when !trans_a else [K, M]
//   B is [K, N] when !trans_b else [N, K]
//   C is [M, N]
// Raw-pointer form with explicit dimensions, row-major contiguous.
void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, const float* b,
          float beta, float* c);

// Tensor convenience wrapper; shapes are validated.
void gemm(bool trans_a, bool trans_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor& c);

// Reference implementation used by tests and as a fallback oracle.
void gemm_naive(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                std::size_t k, float alpha, const float* a, const float* b,
                float beta, float* c);

}  // namespace fedl
