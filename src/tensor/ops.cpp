#include "tensor/ops.h"

#include <cmath>

namespace fedl {

void axpy(float alpha, const Tensor& x, Tensor& y) {
  FEDL_CHECK(x.shape() == y.shape())
      << x.shape().str() << " vs " << y.shape().str();
  axpy(alpha, x.span(), y.span());
}

void scale(float alpha, Tensor& y) { vscale(alpha, y.span()); }

Tensor add(const Tensor& a, const Tensor& b) {
  FEDL_CHECK(a.shape() == b.shape());
  Tensor out = a;
  axpy(1.0f, b, out);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  FEDL_CHECK(a.shape() == b.shape());
  Tensor out = a;
  axpy(-1.0f, b, out);
  return out;
}

double tdot(const Tensor& a, const Tensor& b) {
  FEDL_CHECK_EQ(a.numel(), b.numel());
  return vdot(a.span(), b.span());
}

void relu_inplace(Tensor& t) {
  float* p = t.data();
  const std::size_t n = t.numel();
  for (std::size_t i = 0; i < n; ++i)
    if (p[i] < 0.0f) p[i] = 0.0f;
}

void mul_inplace(Tensor& y, const Tensor& mask) {
  FEDL_CHECK_EQ(y.numel(), mask.numel());
  float* p = y.data();
  const float* m = mask.data();
  for (std::size_t i = 0; i < y.numel(); ++i) p[i] *= m[i];
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  FEDL_CHECK_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double vdot(std::span<const float> a, std::span<const float> b) {
  FEDL_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  return s;
}

double vnorm(std::span<const float> v) {
  double s = 0.0;
  for (float x : v) s += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(s);
}

ParamVec vadd(std::span<const float> a, std::span<const float> b) {
  FEDL_CHECK_EQ(a.size(), b.size());
  ParamVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

ParamVec vsub(std::span<const float> a, std::span<const float> b) {
  FEDL_CHECK_EQ(a.size(), b.size());
  ParamVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

void vscale(float alpha, std::span<float> v) {
  for (auto& x : v) x *= alpha;
}

void clip_norm(std::span<float> v, double max_norm) {
  FEDL_CHECK_GT(max_norm, 0.0);
  const double n = vnorm(v);
  if (n <= max_norm || n == 0.0) return;
  vscale(static_cast<float>(max_norm / n), v);
}

void softmax_rows(const Tensor& logits, Tensor& out) {
  FEDL_CHECK_EQ(logits.shape().rank(), 2u);
  if (out.shape() != logits.shape()) out = Tensor(logits.shape());
  const std::size_t rows = logits.shape()[0];
  const std::size_t cols = logits.shape()[1];
  const float* in = logits.data();
  float* o = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = in + r * cols;
    float* orow = o + r * cols;
    float m = row[0];
    for (std::size_t c = 1; c < cols; ++c) m = std::max(m, row[c]);
    float denom = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      orow[c] = std::exp(row[c] - m);
      denom += orow[c];
    }
    const float inv = 1.0f / denom;
    for (std::size_t c = 0; c < cols; ++c) orow[c] *= inv;
  }
}

std::vector<std::size_t> argmax_rows(const Tensor& m) {
  FEDL_CHECK_EQ(m.shape().rank(), 2u);
  const std::size_t rows = m.shape()[0];
  const std::size_t cols = m.shape()[1];
  FEDL_CHECK_GT(cols, 0u);
  std::vector<std::size_t> out(rows);
  const float* p = m.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = p + r * cols;
    std::size_t best = 0;
    for (std::size_t c = 1; c < cols; ++c)
      if (row[c] > row[best]) best = c;
    out[r] = best;
  }
  return out;
}

}  // namespace fedl
