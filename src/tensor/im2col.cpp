#include "tensor/im2col.h"

namespace fedl {

void im2col(const Conv2dGeometry& g, const float* image, float* cols,
            std::size_t ld) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  if (ld == 0) ld = oh * ow;
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out = cols + row * ld;
        for (std::size_t y = 0; y < oh; ++y) {
          // Input row for this output row; pad handled by bounds checks.
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            const bool inside = iy >= 0 &&
                                iy < static_cast<std::ptrdiff_t>(g.in_h) &&
                                ix >= 0 &&
                                ix < static_cast<std::ptrdiff_t>(g.in_w);
            out[y * ow + x] =
                inside ? image[(c * g.in_h + static_cast<std::size_t>(iy)) *
                                   g.in_w +
                               static_cast<std::size_t>(ix)]
                       : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const Conv2dGeometry& g, const float* cols, float* image,
            std::size_t ld) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  if (ld == 0) ld = oh * ow;
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* in = cols + row * ld;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            image[(c * g.in_h + static_cast<std::size_t>(iy)) * g.in_w +
                  static_cast<std::size_t>(ix)] += in[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace fedl
