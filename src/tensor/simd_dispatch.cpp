#include "tensor/simd_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/error.h"
#include "common/logging.h"
#include "obs/manifest.h"

namespace fedl {
namespace {

// -1 = not yet resolved; otherwise holds a GemmKernel value.
std::atomic<int> g_kernel{-1};

}  // namespace

bool cpu_supports_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

GemmKernel resolve_gemm_kernel(const char* env_value, bool avx512_supported,
                               bool avx2_supported) {
  // The degrade chain is a total order: a request for tier T resolves to the
  // widest supported tier ≤ T, so pinned env vars are portable across hosts.
  const GemmKernel best = avx512_supported ? GemmKernel::kAvx512
                          : avx2_supported ? GemmKernel::kAvx2Fma
                                           : GemmKernel::kPortable;
  if (env_value != nullptr) {
    if (std::strcmp(env_value, "portable") == 0) return GemmKernel::kPortable;
    if (std::strcmp(env_value, "avx2") == 0)
      return avx2_supported ? GemmKernel::kAvx2Fma : GemmKernel::kPortable;
    if (std::strcmp(env_value, "avx512") == 0) {
      if (avx512_supported) return GemmKernel::kAvx512;
      return avx2_supported ? GemmKernel::kAvx2Fma : GemmKernel::kPortable;
    }
    if (std::strcmp(env_value, "auto") != 0 && env_value[0] != '\0')
      FEDL_WARN << "unknown FEDL_GEMM_KERNEL value '" << env_value
                << "', using auto";
  }
  return best;
}

GemmKernel active_gemm_kernel() {
  int cur = g_kernel.load(std::memory_order_relaxed);
  if (cur < 0) {
    const GemmKernel resolved =
        resolve_gemm_kernel(std::getenv("FEDL_GEMM_KERNEL"),
                            cpu_supports_avx512(), cpu_supports_avx2_fma());
    // Several threads may race the first resolution; they all compute the
    // same value, so a plain store is fine.
    g_kernel.store(static_cast<int>(resolved), std::memory_order_relaxed);
    obs::set_manifest_field("gemm_kernel", gemm_kernel_name(resolved));
    FEDL_DEBUG << "gemm kernel: " << gemm_kernel_name(resolved);
    return resolved;
  }
  return static_cast<GemmKernel>(cur);
}

void force_gemm_kernel(GemmKernel kernel) {
  FEDL_CHECK(kernel != GemmKernel::kAvx2Fma || cpu_supports_avx2_fma())
      << "cannot force the AVX2+FMA kernel: CPU lacks avx2/fma";
  FEDL_CHECK(kernel != GemmKernel::kAvx512 || cpu_supports_avx512())
      << "cannot force the AVX-512 kernel: CPU lacks avx512f";
  g_kernel.store(static_cast<int>(kernel), std::memory_order_relaxed);
  obs::set_manifest_field("gemm_kernel", gemm_kernel_name(kernel));
}

const char* gemm_kernel_name(GemmKernel kernel) {
  switch (kernel) {
    case GemmKernel::kPortable:
      return "portable";
    case GemmKernel::kAvx2Fma:
      return "avx2";
    case GemmKernel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

}  // namespace fedl
