// Elementwise and BLAS-1 style operations on tensors / flat parameter
// vectors. These are the primitives the DANE local solver composes:
// w_k = w + d, d -= alpha * grad, norms for convergence-accuracy estimates.
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace fedl {

// y += alpha * x (shapes must match).
void axpy(float alpha, const Tensor& x, Tensor& y);
// y = alpha * y.
void scale(float alpha, Tensor& y);
// out = a + b.
Tensor add(const Tensor& a, const Tensor& b);
// out = a - b.
Tensor sub(const Tensor& a, const Tensor& b);
// Dot product of flattened tensors.
double tdot(const Tensor& a, const Tensor& b);
// ReLU forward in place.
void relu_inplace(Tensor& t);
// Elementwise multiply: y *= mask (used for ReLU backward).
void mul_inplace(Tensor& y, const Tensor& mask);

// --- flat parameter-vector views -------------------------------------------
// A model's parameters live in several tensors; DANE and the aggregation
// rules treat them as one flat vector. ParamVec provides that view as an
// owned std::vector<float> with helpers mirroring the BLAS-1 ops.
using ParamVec = std::vector<float>;

void axpy(float alpha, std::span<const float> x, std::span<float> y);
double vdot(std::span<const float> a, std::span<const float> b);
double vnorm(std::span<const float> v);
ParamVec vadd(std::span<const float> a, std::span<const float> b);
ParamVec vsub(std::span<const float> a, std::span<const float> b);
void vscale(float alpha, std::span<float> v);
// Clip v to max L2 norm `max_norm` (no-op when already within).
void clip_norm(std::span<float> v, double max_norm);

// Row-wise softmax of a [N, C] logits matrix, written into out ([N, C]).
void softmax_rows(const Tensor& logits, Tensor& out);
// Argmax per row of a [N, C] matrix.
std::vector<std::size_t> argmax_rows(const Tensor& m);

}  // namespace fedl
