// Runtime CPU dispatch for the GEMM micro-kernel.
//
// The kernel implementation is chosen once, at first use: the widest SIMD
// tier the CPU supports on x86 (AVX-512F, then AVX2+FMA), the portable
// unrolled path everywhere else. The choice can be overridden (for testing
// and for apples-to-apples benchmarking) with the environment variable
//
//   FEDL_GEMM_KERNEL = auto | avx512 | avx2 | portable
//
// Requesting a tier the CPU lacks silently degrades down the chain
// avx512 → avx2 → portable, so a pinned env var stays safe across machines.
// Tests can also force a kernel in-process via force_gemm_kernel().
//
// Determinism contract: for a fixed kernel choice, gemm() is bit-for-bit
// reproducible call to call at ANY thread count (the macro loop only splits
// the m dimension across workers; each 6-row strip's k-accumulation order is
// fixed by the blocking schedule, which depends only on the problem shape).
// Across kernel choices results differ in the last bits (FMA vs separate
// mul+add rounding); parity is therefore defined against gemm_naive with
// relative-error bounds, not bit-identity. See DESIGN.md §"Compute kernel
// layer".
#pragma once

namespace fedl {

enum class GemmKernel {
  kPortable,  // unrolled scalar micro-kernel, auto-vectorizable
  kAvx2Fma,   // 6x16 AVX2+FMA micro-kernel (x86 only)
  kAvx512,    // 6x32 AVX-512F micro-kernel (x86 only)
};

// True when the CPU can run the AVX2+FMA kernel.
bool cpu_supports_avx2_fma();

// True when the CPU can run the AVX-512 kernel (requires AVX-512F).
bool cpu_supports_avx512();

// Pure resolution policy: maps an env-var value (nullptr when unset) and CPU
// capabilities to a kernel. Split out so the policy is unit-testable without
// mutating the process environment. Unknown values resolve like "auto";
// unsupported requests degrade avx512 → avx2 → portable.
GemmKernel resolve_gemm_kernel(const char* env_value, bool avx512_supported,
                               bool avx2_supported);

// The kernel gemm() will use. Resolved once from FEDL_GEMM_KERNEL + CPUID on
// first call, then cached (unless overridden by force_gemm_kernel).
GemmKernel active_gemm_kernel();

// Testing hook: pin the kernel for subsequent gemm() calls. Forcing a SIMD
// tier the CPU lacks is a checked error.
void force_gemm_kernel(GemmKernel kernel);

// Human-readable kernel name ("avx512" / "avx2" / "portable") for logs and
// benches.
const char* gemm_kernel_name(GemmKernel kernel);

}  // namespace fedl
