// Layer interface for the sequential NN models.
//
// Layers own their parameters and gradient buffers; Model flattens them into
// the single ParamVec view that the FL machinery (DANE local solver, server
// aggregation) operates on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fedl::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  // Forward pass; `train` toggles caching of activations for backward.
  //
  // `input` is taken by value so implementations can consume it: in-place
  // layers (ReLU, Flatten) mutate-and-return the buffer, caching layers
  // (Dense) move it into their activation cache instead of deep-copying the
  // batch every iteration. Model::forward threads one tensor through the
  // stack with std::move; callers that pass an lvalue keep their copy.
  virtual Tensor forward(Tensor input, bool train) = 0;

  // Backward pass: grad w.r.t. this layer's output -> grad w.r.t. its input.
  // Accumulates parameter gradients into the layer's grad buffers (callers
  // zero them via zero_grad() before a fresh accumulation).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  // Parameter / gradient tensors, in a stable order. Empty for stateless
  // layers.
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }

  // Deep copy, including parameters. Forward/backward caches need not be
  // preserved; the clone must behave identically on the next forward pass.
  virtual std::unique_ptr<Layer> clone() const = 0;

  // Bytes of per-replica scratch this layer pins beyond its parameter and
  // gradient tensors: activation caches, im2col workspaces. Feeds
  // Model::owned_bytes() and the engine's fl.replica_bytes gauge.
  virtual std::size_t scratch_bytes() const { return 0; }

  virtual std::string name() const = 0;

  void zero_grad() {
    for (Tensor* g : grads()) g->fill(0.0f);
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace fedl::nn
