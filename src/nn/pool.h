// Max pooling over NCHW batches.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace fedl::nn {

class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::size_t window, std::size_t stride);

  Tensor forward(Tensor input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  LayerPtr clone() const override { return std::make_unique<MaxPool2d>(*this); }
  std::string name() const override { return "maxpool2d"; }
  std::size_t scratch_bytes() const override {
    return argmax_.capacity() * sizeof(std::size_t);
  }

 private:
  std::size_t window_;
  std::size_t stride_;
  Shape in_shape_;
  Shape out_shape_;
  // Flat input index of the argmax for every output element (train mode).
  std::vector<std::size_t> argmax_;
};

}  // namespace fedl::nn
