#include "nn/conv2d.h"

#include <vector>

#include "common/rng.h"
#include "parallel/parallel_for.h"
#include "tensor/gemm.h"

namespace fedl::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               std::size_t in_h, std::size_t in_w, Rng& rng)
    : geom_{in_channels, in_h, in_w, kernel, kernel, stride, pad},
      out_channels_(out_channels),
      weight_(Tensor::he_normal(Shape{out_channels, geom_.col_rows()},
                                geom_.col_rows(), rng)),
      bias_(Shape{out_channels}),
      grad_weight_(Shape{out_channels, geom_.col_rows()}),
      grad_bias_(Shape{out_channels}) {
  FEDL_CHECK_GT(geom_.out_h(), 0u);
  FEDL_CHECK_GT(geom_.out_w(), 0u);
}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  FEDL_CHECK_EQ(input.shape().rank(), 4u);
  FEDL_CHECK_EQ(input.shape()[1], geom_.in_channels);
  FEDL_CHECK_EQ(input.shape()[2], geom_.in_h);
  FEDL_CHECK_EQ(input.shape()[3], geom_.in_w);
  const std::size_t n = input.shape()[0];
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  Tensor out(Shape{n, out_channels_, oh, ow});

  const std::size_t image_elems = geom_.in_channels * geom_.in_h * geom_.in_w;
  const std::size_t out_elems = out_channels_ * oh * ow;

  // Samples are independent in forward: parallelize across the batch with a
  // per-iteration column buffer (thread_local avoids reallocation).
  parallel_for(0, n, [&](std::size_t s) {
    thread_local std::vector<float> cols;
    cols.resize(geom_.col_rows() * geom_.col_cols());
    im2col(geom_, input.data() + s * image_elems, cols.data());
    float* dst = out.data() + s * out_elems;
    // [C_out, colr] x [colr, colc] -> [C_out, oh*ow]
    gemm(false, false, out_channels_, geom_.col_cols(), geom_.col_rows(), 1.0f,
         weight_.data(), cols.data(), 0.0f, dst);
    for (std::size_t c = 0; c < out_channels_; ++c) {
      float* plane = dst + c * oh * ow;
      const float b = bias_[c];
      for (std::size_t i = 0; i < oh * ow; ++i) plane[i] += b;
    }
  });
  if (train) cached_input_ = input;
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  FEDL_CHECK(!cached_input_.empty()) << "backward before train-mode forward";
  const std::size_t n = cached_input_.shape()[0];
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  FEDL_CHECK((grad_output.shape() == Shape{n, out_channels_, oh, ow}));

  const std::size_t image_elems = geom_.in_channels * geom_.in_h * geom_.in_w;
  const std::size_t out_elems = out_channels_ * oh * ow;

  Tensor grad_input(cached_input_.shape());
  std::vector<float> cols(geom_.col_rows() * geom_.col_cols());
  std::vector<float> dcols(geom_.col_rows() * geom_.col_cols());

  // Weight-gradient accumulation is a reduction across samples; done
  // sequentially to keep the accumulation deterministic (batches are small
  // relative to the GEMM cost anyway).
  for (std::size_t s = 0; s < n; ++s) {
    const float* dout = grad_output.data() + s * out_elems;
    im2col(geom_, cached_input_.data() + s * image_elems, cols.data());
    // dW += dOut * cols^T  : [C_out, oh*ow] x [oh*ow, colr]
    gemm(false, true, out_channels_, geom_.col_rows(), geom_.col_cols(), 1.0f,
         dout, cols.data(), 1.0f, grad_weight_.data());
    for (std::size_t c = 0; c < out_channels_; ++c) {
      const float* plane = dout + c * oh * ow;
      double acc = 0.0;
      for (std::size_t i = 0; i < oh * ow; ++i) acc += plane[i];
      grad_bias_[c] += static_cast<float>(acc);
    }
    // dcols = W^T * dOut : [colr, C_out] x [C_out, oh*ow]
    gemm(true, false, geom_.col_rows(), geom_.col_cols(), out_channels_, 1.0f,
         weight_.data(), dout, 0.0f, dcols.data());
    col2im(geom_, dcols.data(), grad_input.data() + s * image_elems);
  }
  return grad_input;
}

}  // namespace fedl::nn
