#include "nn/conv2d.h"

#include <cstring>

#include "common/rng.h"
#include "parallel/scheduler.h"
#include "tensor/gemm.h"

namespace fedl::nn {
namespace {

// Sample-block width of the weight-gradient reduction. Each block of up to
// kDwBlockSamples samples produces one dW partial; partials are summed in
// block order. Block boundaries depend only on the batch size, never on the
// thread count, so the reduction is bit-identical at any parallelism.
constexpr std::size_t kDwBlockSamples = 8;

}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               std::size_t in_h, std::size_t in_w, Rng& rng)
    : geom_{in_channels, in_h, in_w, kernel, kernel, stride, pad},
      out_channels_(out_channels),
      weight_(Tensor::he_normal(Shape{out_channels, geom_.col_rows()},
                                geom_.col_rows(), rng)),
      bias_(Shape{out_channels}),
      grad_weight_(Shape{out_channels, geom_.col_rows()}),
      grad_bias_(Shape{out_channels}) {
  FEDL_CHECK_GT(geom_.out_h(), 0u);
  FEDL_CHECK_GT(geom_.out_w(), 0u);
}

Conv2d::Conv2d(const Conv2d& other)
    : geom_(other.geom_),
      out_channels_(other.out_channels_),
      weight_(other.weight_),
      bias_(other.bias_),
      grad_weight_(other.grad_weight_),
      grad_bias_(other.grad_bias_) {}

Tensor Conv2d::forward(Tensor input, bool train) {
  FEDL_CHECK_EQ(input.shape().rank(), 4u);
  FEDL_CHECK_EQ(input.shape()[1], geom_.in_channels);
  FEDL_CHECK_EQ(input.shape()[2], geom_.in_h);
  FEDL_CHECK_EQ(input.shape()[3], geom_.in_w);
  const std::size_t n = input.shape()[0];
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  const std::size_t colr = geom_.col_rows();
  const std::size_t colc = geom_.col_cols();
  const std::size_t ncols = n * colc;
  const std::size_t image_elems = geom_.in_channels * geom_.in_h * geom_.in_w;

  // Lower the whole batch into one [colr, n*colc] column buffer: sample s
  // owns the column slice [s*colc, (s+1)*colc). Train mode keeps this
  // buffer as the backward cache (the input itself is not retained). Eval
  // mode uses separate scratch so an eval forward between a train forward
  // and its backward cannot clobber the cache.
  Workspace& colws = train ? cols_ : scratch_cols_;
  float* cols = colws.ensure(colr * ncols);
  leased_parallel_for(0, n, [&](std::size_t s) {
    im2col(geom_, input.data() + s * image_elems, cols + s * colc, ncols);
  });

  // One GEMM for the whole batch, bias fused into the write-back:
  // [C_out, colr] x [colr, n*colc] -> [C_out, n*colc], channel-major.
  float* oc = out_cols_.ensure(out_channels_ * ncols);
  gemm_bias(false, false, out_channels_, ncols, colr, 1.0f, weight_.data(),
            cols, 0.0f, oc, BiasMode::kPerRow, bias_.data());

  // Scatter channel-major rows back to NCHW: out[s, c, :] = oc[c, s-slice].
  Tensor out(Shape{n, out_channels_, oh, ow});
  float* dst = out.data();
  leased_parallel_for(0, n, [&](std::size_t s) {
    for (std::size_t c = 0; c < out_channels_; ++c)
      std::memcpy(dst + (s * out_channels_ + c) * colc,
                  oc + c * ncols + s * colc, colc * sizeof(float));
  });
  if (train) cached_n_ = n;
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  FEDL_CHECK_GT(cached_n_, 0u) << "backward before train-mode forward";
  const std::size_t n = cached_n_;
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  FEDL_CHECK((grad_output.shape() == Shape{n, out_channels_, oh, ow}));

  const std::size_t colr = geom_.col_rows();
  const std::size_t colc = geom_.col_cols();
  const std::size_t ncols = n * colc;
  const std::size_t image_elems = geom_.in_channels * geom_.in_h * geom_.in_w;
  const float* cols = cols_.data();

  // Gather grad_output into the channel-major layout matching cols.
  float* dout = dout_.ensure(out_channels_ * ncols);
  const float* gsrc = grad_output.data();
  leased_parallel_for(0, n, [&](std::size_t s) {
    for (std::size_t c = 0; c < out_channels_; ++c)
      std::memcpy(dout + c * ncols + s * colc,
                  gsrc + (s * out_channels_ + c) * colc,
                  colc * sizeof(float));
  });

  // dW += dOut * cols^T, reduced over fixed-size sample blocks: each block
  // is one [C_out, blk*colc] x [blk*colc, colr] GEMM into its own partial,
  // partials are then summed in block order on the calling thread.
  const std::size_t num_blocks = (n + kDwBlockSamples - 1) / kDwBlockSamples;
  const std::size_t wsize = out_channels_ * colr;
  if (num_blocks == 1) {
    gemm(false, true, out_channels_, colr, ncols, 1.0f, dout, cols, 1.0f,
         grad_weight_.data());
  } else {
    float* partials = dw_partials_.ensure(num_blocks * wsize);
    leased_parallel_for(0, num_blocks, [&](std::size_t b) {
      const std::size_t s0 = b * kDwBlockSamples;
      const std::size_t s1 = std::min(n, s0 + kDwBlockSamples);
      const std::size_t kblk = (s1 - s0) * colc;
      gemm_bias(false, true, out_channels_, colr, kblk, 1.0f,
                dout + s0 * colc, ncols, cols + s0 * colc, ncols, 0.0f,
                partials + b * wsize, colr, BiasMode::kNone, nullptr);
    });
    float* gw = grad_weight_.data();
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const float* part = partials + b * wsize;
      for (std::size_t i = 0; i < wsize; ++i) gw[i] += part[i];
    }
  }

  // db: each channel's grad_output row is contiguous in dout.
  for (std::size_t c = 0; c < out_channels_; ++c) {
    const float* row = dout + c * ncols;
    double acc = 0.0;
    for (std::size_t i = 0; i < ncols; ++i) acc += row[i];
    grad_bias_[c] += static_cast<float>(acc);
  }

  // dcols = W^T * dOut in one GEMM, then per-sample col2im (samples write
  // disjoint grad_input slices, so the fan-out is deterministic).
  float* dcols = dcols_.ensure(colr * ncols);
  gemm(true, false, colr, ncols, out_channels_, 1.0f, weight_.data(), dout,
       0.0f, dcols);
  Tensor grad_input(Shape{n, geom_.in_channels, geom_.in_h, geom_.in_w});
  float* gi = grad_input.data();
  leased_parallel_for(0, n, [&](std::size_t s) {
    col2im(geom_, dcols + s * colc, gi + s * image_elems, ncols);
  });
  return grad_input;
}

}  // namespace fedl::nn
