// Model factories for the paper's two CNNs plus smaller reference models.
//
// Paper §6.1:
//  * FMNIST CNN: two 5x5 conv layers (32, 64 channels), 2x2 max pooling,
//    one FC layer (1024), softmax output (10).
//  * CIFAR-10 CNN: two 5x5 conv layers (64, 64 channels), 3x3 max pooling,
//    two FC layers (384, 192), softmax output (10).
//
// `width_scale` uniformly scales channel/unit counts so the full experiment
// sweeps finish on a laptop-class CPU (scale 1.0 is the exact paper model);
// DESIGN.md §5 documents this substitution.
#pragma once

#include <cstddef>
#include <memory>

#include "nn/model.h"

namespace fedl {
class Rng;
}

namespace fedl::nn {

struct ModelSpec {
  std::size_t image_h = 28;
  std::size_t image_w = 28;
  std::size_t channels = 1;
  std::size_t num_classes = 10;
  double width_scale = 1.0;
  double l2_reg = 1e-3;  // strong-convexity constant γ
};

// Paper's FMNIST CNN (28x28x1 input by default).
Model make_fmnist_cnn(const ModelSpec& spec, Rng& rng);

// Paper's CIFAR-10 CNN (32x32x3 input by default).
Model make_cifar_cnn(const ModelSpec& spec, Rng& rng);

// One-hidden-layer MLP; fast stand-in used by unit/integration tests.
Model make_mlp(std::size_t input_dim, std::size_t hidden, std::size_t classes,
               double l2_reg, Rng& rng);

// Multinomial logistic regression — convex, matching the paper's strong
// convexity assumption exactly; used by the convergence/regret analyses.
Model make_logistic(std::size_t input_dim, std::size_t classes, double l2_reg,
                    Rng& rng);

}  // namespace fedl::nn
