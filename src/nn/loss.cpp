#include "nn/loss.h"

#include <cmath>

#include "tensor/ops.h"

namespace fedl::nn {
namespace {

constexpr double kLogFloor = 1e-12;  // guards log(0) on saturated softmax

}  // namespace

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::uint8_t>& labels) {
  FEDL_CHECK_EQ(logits.shape().rank(), 2u);
  const std::size_t n = logits.shape()[0];
  const std::size_t c = logits.shape()[1];
  FEDL_CHECK_EQ(labels.size(), n);

  LossResult res;
  Tensor probs;
  softmax_rows(logits, probs);
  res.grad_logits = probs;  // dL/dlogits = (p - onehot)/N

  double total = 0.0;
  float* g = res.grad_logits.data();
  const float* p = probs.data();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t y = labels[r];
    FEDL_CHECK_LT(y, c);
    total -= std::log(std::max<double>(p[r * c + y], kLogFloor));
    g[r * c + y] -= 1.0f;
    // top-1 check
    std::size_t best = 0;
    for (std::size_t j = 1; j < c; ++j)
      if (p[r * c + j] > p[r * c + best]) best = j;
    if (best == y) ++res.correct;
  }
  for (std::size_t i = 0; i < res.grad_logits.numel(); ++i) g[i] *= inv_n;
  res.loss = total / static_cast<double>(n);
  return res;
}

double softmax_cross_entropy_value(const Tensor& logits,
                                   const std::vector<std::uint8_t>& labels,
                                   std::size_t* correct_out) {
  FEDL_CHECK_EQ(logits.shape().rank(), 2u);
  const std::size_t n = logits.shape()[0];
  const std::size_t c = logits.shape()[1];
  FEDL_CHECK_EQ(labels.size(), n);
  Tensor probs;
  softmax_rows(logits, probs);
  const float* p = probs.data();
  double total = 0.0;
  std::size_t correct = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t y = labels[r];
    FEDL_CHECK_LT(y, c);
    total -= std::log(std::max<double>(p[r * c + y], kLogFloor));
    std::size_t best = 0;
    for (std::size_t j = 1; j < c; ++j)
      if (p[r * c + j] > p[r * c + best]) best = j;
    if (best == y) ++correct;
  }
  if (correct_out) *correct_out = correct;
  return total / static_cast<double>(n);
}

}  // namespace fedl::nn
