// Sequential model with a flat-parameter-vector interface.
//
// The FL machinery treats model parameters as one vector w ∈ R^P:
//  * the server broadcasts w and aggregates client deltas d ∈ R^P,
//  * the DANE solver differentiates surrogates of F_k at shifted points,
// so Model exposes params_flat()/set_params_flat()/grads_flat() alongside
// the usual forward/backward.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layer.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace fedl::nn {

using fedl::ParamVec;  // flat parameter vectors are defined in tensor/ops.h

// A minibatch: inputs plus integer class labels.
struct Batch {
  Tensor x;                         // [N, ...]
  std::vector<std::uint8_t> y;      // N labels

  std::size_t size() const { return y.size(); }
};

struct EvalResult {
  double loss = 0.0;      // mean cross-entropy + L2 term
  double accuracy = 0.0;  // top-1
};

class Model {
 public:
  // l2_reg is the strong-convexity constant γ: loss += γ/2 ‖w‖².
  explicit Model(double l2_reg = 0.0) : l2_reg_(l2_reg) {}

  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  void add(LayerPtr layer);
  std::size_t num_layers() const { return layers_.size(); }

  // Deep copy: independent parameter/gradient buffers with identical values.
  Model clone() const;

  // Shared-weight replica: gradients and activation caches are private (as
  // in clone()), but every parameter tensor *borrows* this model's storage
  // instead of owning a copy — replica memory is O(|activations| + |grads|),
  // not O(|w|). The FL engine keeps one such replica per fan-out slot so
  // LocalOracle scratch state is never shared between threads while the
  // weights exist once. A replica that writes its parameters
  // (set_params_flat — the DANE shifted-point evaluations) detaches them
  // into private copy-on-write step buffers; attach_params() re-borrows.
  Model shared_replica() const;

  // Re-point every parameter tensor at `base`'s storage (O(num_layers), no
  // copies; any copy-on-write step buffers drop back to spare capacity).
  // `base` must have the identical architecture and must outlive the uses
  // of this model's parameters.
  void attach_params(const Model& base);

  // Bytes of backing storage this model pins itself: parameter/gradient
  // tensor capacity (borrowed params pin only their retained spare
  // capacity, not the base storage) plus per-layer scratch_bytes().
  std::size_t owned_bytes() const;

  // Forward pass to logits.
  Tensor forward(const Tensor& x, bool train);

  // Full training step bookkeeping: zeroes grads, runs forward + softmax-CE
  // + backward, leaves parameter gradients in the layers. Returns loss
  // (including the L2 term) and batch accuracy.
  EvalResult forward_backward(const Batch& batch);

  // Loss/accuracy without touching gradients.
  EvalResult evaluate(const Batch& batch);

  // --- flat parameter vector view ------------------------------------------
  std::size_t num_params() const;
  ParamVec params_flat() const;
  void set_params_flat(std::span<const float> flat);
  ParamVec grads_flat() const;
  // grads_flat() into a caller-owned vector, reusing its capacity — the
  // allocation-free variant for per-iteration hot paths (LocalOracle).
  void grads_flat_into(ParamVec& out) const;
  void zero_grad();

  double l2_reg() const { return l2_reg_; }

 private:
  std::vector<LayerPtr> layers_;
  double l2_reg_;
};

}  // namespace fedl::nn
