// 2-D convolution over NCHW batches via im2col + GEMM.
#pragma once

#include "nn/layer.h"
#include "tensor/im2col.h"

namespace fedl {
class Rng;
}

namespace fedl::nn {

class Conv2d : public Layer {
 public:
  // Square kernels; `pad` defaults to "same"-ish (kernel/2) when npos.
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t pad,
         std::size_t in_h, std::size_t in_w, Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }
  LayerPtr clone() const override { return std::make_unique<Conv2d>(*this); }
  std::string name() const override { return "conv2d"; }

  std::size_t out_channels() const { return out_channels_; }
  std::size_t out_h() const { return geom_.out_h(); }
  std::size_t out_w() const { return geom_.out_w(); }

 private:
  Conv2dGeometry geom_;
  std::size_t out_channels_;
  Tensor weight_;       // [C_out, C_in*KH*KW]
  Tensor bias_;         // [C_out]
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;  // [N, C, H, W]
};

}  // namespace fedl::nn
