// 2-D convolution over NCHW batches via whole-batch im2col + one GEMM.
#pragma once

#include "nn/layer.h"
#include "tensor/gemm_workspace.h"
#include "tensor/im2col.h"

namespace fedl {
class Rng;
}

namespace fedl::nn {

// Forward lowers the entire batch into one column buffer of shape
// [col_rows, N*col_cols] and runs a single GEMM per invocation (bias fused
// into the write-back), instead of one small GEMM per sample. Train mode
// keeps that column buffer as the backward cache — the input batch itself
// is never copied. Backward is three batched stages: a deterministic
// blocked weight-gradient reduction (fixed-size sample blocks reduced in
// block order, so results are identical at any thread count), one GEMM for
// the column gradients, and per-sample col2im. All scratch lives in
// layer-owned Workspaces that are reused across iterations and deliberately
// not propagated to clones.
class Conv2d : public Layer {
 public:
  // Square kernels; `pad` defaults to "same"-ish (kernel/2) when npos.
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t pad,
         std::size_t in_h, std::size_t in_w, Rng& rng);

  // Copies parameters/gradients only; backward caches and scratch start
  // empty in the copy (clone() contract: identical behavior from the next
  // forward pass on, no dragged-along high-water-mark buffers).
  Conv2d(const Conv2d& other);
  Conv2d& operator=(const Conv2d&) = delete;

  Tensor forward(Tensor input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }
  LayerPtr clone() const override { return std::make_unique<Conv2d>(*this); }
  std::string name() const override { return "conv2d"; }
  std::size_t scratch_bytes() const override {
    return (cols_.capacity() + scratch_cols_.capacity() + out_cols_.capacity() +
            dout_.capacity() + dcols_.capacity() + dw_partials_.capacity()) *
           sizeof(float);
  }

  std::size_t out_channels() const { return out_channels_; }
  std::size_t out_h() const { return geom_.out_h(); }
  std::size_t out_w() const { return geom_.out_w(); }

 private:
  Conv2dGeometry geom_;
  std::size_t out_channels_;
  Tensor weight_;       // [C_out, C_in*KH*KW]
  Tensor bias_;         // [C_out]
  Tensor grad_weight_;
  Tensor grad_bias_;

  // Batch size of the last train-mode forward; 0 until one happens. The
  // backward cache is cols_ (the im2col of that batch), not the input.
  std::size_t cached_n_ = 0;
  Workspace cols_;         // [col_rows, N*col_cols] train-mode column cache
  Workspace scratch_cols_;  // eval-mode columns (never aliases the cache)
  Workspace out_cols_;  // [C_out, N*col_cols] channel-major GEMM output
  Workspace dout_;      // [C_out, N*col_cols] channel-major grad_output
  Workspace dcols_;     // [col_rows, N*col_cols] column gradients
  Workspace dw_partials_;  // [num_blocks, C_out*col_rows] dW reduction
};

}  // namespace fedl::nn
