// Stateless structural layers: ReLU and Flatten.
#pragma once

#include "nn/layer.h"

namespace fedl::nn {

class Relu : public Layer {
 public:
  Tensor forward(Tensor input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  LayerPtr clone() const override { return std::make_unique<Relu>(*this); }
  std::string name() const override { return "relu"; }
  std::size_t scratch_bytes() const override { return mask_.owned_bytes(); }

 private:
  Tensor mask_;  // 1 where input > 0
};

// Collapses [N, C, H, W] (or any rank) into [N, rest].
class Flatten : public Layer {
 public:
  Tensor forward(Tensor input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  LayerPtr clone() const override { return std::make_unique<Flatten>(*this); }
  std::string name() const override { return "flatten"; }

 private:
  Shape in_shape_;
};

}  // namespace fedl::nn
