#include "nn/pool.h"

#include <limits>

namespace fedl::nn {

MaxPool2d::MaxPool2d(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride) {
  FEDL_CHECK_GT(window, 0u);
  FEDL_CHECK_GT(stride, 0u);
}

Tensor MaxPool2d::forward(Tensor input, bool train) {
  FEDL_CHECK_EQ(input.shape().rank(), 4u);
  const std::size_t n = input.shape()[0];
  const std::size_t c = input.shape()[1];
  const std::size_t h = input.shape()[2];
  const std::size_t w = input.shape()[3];
  FEDL_CHECK_GE(h, window_);
  FEDL_CHECK_GE(w, window_);
  const std::size_t oh = (h - window_) / stride_ + 1;
  const std::size_t ow = (w - window_) / stride_ + 1;

  Tensor out(Shape{n, c, oh, ow});
  if (train) argmax_.assign(out.numel(), 0);

  const float* in = input.data();
  float* o = out.data();
  std::size_t oi = 0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = in + (s * c + ch) * h * w;
      const std::size_t plane_base = (s * c + ch) * h * w;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              const std::size_t iy = y * stride_ + dy;
              const std::size_t ix = x * stride_ + dx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * w + ix;
              }
            }
          }
          o[oi] = best;
          if (train) argmax_[oi] = best_idx;
        }
      }
    }
  }
  in_shape_ = input.shape();
  out_shape_ = out.shape();
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  FEDL_CHECK(!argmax_.empty()) << "backward before train-mode forward";
  FEDL_CHECK(grad_output.shape() == out_shape_);
  Tensor grad_input(in_shape_);
  const float* g = grad_output.data();
  float* gi = grad_input.data();
  for (std::size_t i = 0; i < grad_output.numel(); ++i)
    gi[argmax_[i]] += g[i];
  return grad_input;
}

}  // namespace fedl::nn
