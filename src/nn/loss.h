// Softmax cross-entropy with optional L2 regularization.
//
// The paper assumes each client's loss F_{t,k} is L-Lipschitz-smooth and
// γ-strongly convex; the L2 term (γ/2)‖w‖² supplies the strong convexity for
// the convergence-accuracy estimates used by constraint (3c).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fedl::nn {

struct LossResult {
  double loss = 0.0;      // mean cross-entropy over the batch (+ L2 if added by Model)
  Tensor grad_logits;     // [N, C] gradient w.r.t. logits (already /N)
  std::size_t correct = 0;  // top-1 correct predictions
};

// logits: [N, C]; labels: N class ids in [0, C).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::uint8_t>& labels);

// Loss only (no gradient); used on evaluation paths.
double softmax_cross_entropy_value(const Tensor& logits,
                                   const std::vector<std::uint8_t>& labels,
                                   std::size_t* correct_out = nullptr);

}  // namespace fedl::nn
