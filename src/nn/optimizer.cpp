#include "nn/optimizer.h"

#include <cmath>

#include "common/error.h"

namespace fedl::nn {

Sgd::Sgd(double lr) : lr_(lr) { FEDL_CHECK_GT(lr, 0.0); }

void Sgd::step(std::span<float> params, std::span<const float> grad) {
  FEDL_CHECK_EQ(params.size(), grad.size());
  for (std::size_t i = 0; i < params.size(); ++i)
    params[i] -= static_cast<float>(lr_) * grad[i];
}

MomentumSgd::MomentumSgd(double lr, double momentum)
    : lr_(lr), momentum_(momentum) {
  FEDL_CHECK_GT(lr, 0.0);
  FEDL_CHECK(momentum >= 0.0 && momentum < 1.0) << "momentum=" << momentum;
}

void MomentumSgd::step(std::span<float> params, std::span<const float> grad) {
  FEDL_CHECK_EQ(params.size(), grad.size());
  if (velocity_.size() != params.size())
    velocity_.assign(params.size(), 0.0f);
  for (std::size_t i = 0; i < params.size(); ++i) {
    velocity_[i] =
        static_cast<float>(momentum_) * velocity_[i] + grad[i];
    params[i] -= static_cast<float>(lr_) * velocity_[i];
  }
}

void MomentumSgd::reset() { velocity_.clear(); }

Adam::Adam(double lr, double beta1, double beta2, double epsilon)
    : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  FEDL_CHECK_GT(lr, 0.0);
  FEDL_CHECK(beta1 >= 0.0 && beta1 < 1.0);
  FEDL_CHECK(beta2 >= 0.0 && beta2 < 1.0);
}

void Adam::step(std::span<float> params, std::span<const float> grad) {
  FEDL_CHECK_EQ(params.size(), grad.size());
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0f);
    v_.assign(params.size(), 0.0f);
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = static_cast<float>(beta1_ * m_[i] + (1.0 - beta1_) * grad[i]);
    v_[i] = static_cast<float>(beta2_ * v_[i] +
                               (1.0 - beta2_) * grad[i] * grad[i]);
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    params[i] -= static_cast<float>(lr_ * mhat /
                                    (std::sqrt(vhat) + epsilon_));
  }
}

void Adam::reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

OptimizerPtr make_optimizer(const std::string& name, double lr) {
  if (name == "sgd") return std::make_unique<Sgd>(lr);
  if (name == "momentum") return std::make_unique<MomentumSgd>(lr, 0.9);
  if (name == "adam") return std::make_unique<Adam>(lr);
  throw ConfigError("unknown optimizer: " + name);
}

}  // namespace fedl::nn
