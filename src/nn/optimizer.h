// First-order optimizers over flat parameter vectors.
//
// The DANE surrogate minimization uses plain SGD in the paper; the FL
// literature it builds on also evaluates Momentum (MFL, Liu et al. [17])
// and adaptive methods (Reddi et al. [22]). These optimizers plug into the
// local solvers via the Optimizer interface, enabling the local-solver
// ablation bench (bench/abl_local_solver).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "tensor/ops.h"

namespace fedl::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update step: params -= direction(grad). `params` and `grad`
  // must keep the same size across calls (state is per-coordinate).
  virtual void step(std::span<float> params, std::span<const float> grad) = 0;

  // Clears momentum/second-moment state (e.g. between FL iterations).
  virtual void reset() = 0;

  virtual std::string name() const = 0;
};

using OptimizerPtr = std::unique_ptr<Optimizer>;

// Plain SGD: w -= lr * g.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr);
  void step(std::span<float> params, std::span<const float> grad) override;
  void reset() override {}
  std::string name() const override { return "sgd"; }

 private:
  double lr_;
};

// Momentum SGD (MFL-style): v = β v + g; w -= lr v.
class MomentumSgd : public Optimizer {
 public:
  MomentumSgd(double lr, double momentum);
  void step(std::span<float> params, std::span<const float> grad) override;
  void reset() override;
  std::string name() const override { return "momentum"; }

 private:
  double lr_;
  double momentum_;
  std::vector<float> velocity_;
};

// Adam (Reddi et al.'s adaptive-federated-optimization building block).
class Adam : public Optimizer {
 public:
  Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
       double epsilon = 1e-8);
  void step(std::span<float> params, std::span<const float> grad) override;
  void reset() override;
  std::string name() const override { return "adam"; }

 private:
  double lr_, beta1_, beta2_, epsilon_;
  std::vector<float> m_, v_;
  std::size_t t_ = 0;
};

// Factory by name: "sgd", "momentum", "adam".
OptimizerPtr make_optimizer(const std::string& name, double lr);

}  // namespace fedl::nn
