#include "nn/dense.h"

#include "common/rng.h"
#include "tensor/gemm.h"

namespace fedl::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(Tensor::he_normal(Shape{out_features, in_features}, in_features,
                                rng)),
      bias_(Shape{out_features}),
      grad_weight_(Shape{out_features, in_features}),
      grad_bias_(Shape{out_features}) {}

Tensor Dense::forward(Tensor input, bool train) {
  FEDL_CHECK_EQ(input.shape().rank(), 2u);
  FEDL_CHECK_EQ(input.shape()[1], in_);
  const std::size_t n = input.shape()[0];
  Tensor out(Shape{n, out_});
  // out = input * W^T + b, bias fused into the GEMM write-back (one value
  // per output column).
  gemm_bias(false, true, n, out_, in_, 1.0f, input.data(), weight_.data(),
            0.0f, out.data(), BiasMode::kPerCol, bias_.data());
  // The activation cache takes ownership of the batch instead of copying it.
  if (train) cached_input_ = std::move(input);
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  FEDL_CHECK(!cached_input_.empty()) << "backward before train-mode forward";
  const std::size_t n = grad_output.shape()[0];
  FEDL_CHECK_EQ(grad_output.shape()[1], out_);
  // dW += dY^T * X ; db += column sums of dY ; dX = dY * W
  gemm(true, false, 1.0f, grad_output, cached_input_, 1.0f, grad_weight_);
  for (std::size_t r = 0; r < n; ++r) {
    const float* row = grad_output.data() + r * out_;
    for (std::size_t c = 0; c < out_; ++c) grad_bias_[c] += row[c];
  }
  Tensor grad_input(Shape{n, in_});
  gemm(false, false, 1.0f, grad_output, weight_, 0.0f, grad_input);
  return grad_input;
}

}  // namespace fedl::nn
