#include "nn/activations.h"

#include "tensor/ops.h"

namespace fedl::nn {

Tensor Relu::forward(Tensor input, bool train) {
  if (train) {
    mask_ = Tensor(input.shape());
    float* m = mask_.data();
    const float* in = input.data();
    for (std::size_t i = 0; i < input.numel(); ++i)
      m[i] = in[i] > 0.0f ? 1.0f : 0.0f;
  }
  // In-place on the consumed input buffer; no copy.
  relu_inplace(input);
  return input;
}

Tensor Relu::backward(const Tensor& grad_output) {
  FEDL_CHECK(!mask_.empty()) << "backward before train-mode forward";
  Tensor grad = grad_output;
  mul_inplace(grad, mask_);
  return grad;
}

Tensor Flatten::forward(Tensor input, bool train) {
  if (train) in_shape_ = input.shape();
  const std::size_t n = input.shape()[0];
  input.reshape(Shape{n, input.numel() / n});
  return input;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  grad.reshape(in_shape_);
  return grad;
}

}  // namespace fedl::nn
