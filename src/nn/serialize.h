// Binary checkpointing of flat parameter vectors.
//
// Long budget sweeps checkpoint the global model between epochs so a run
// can resume after interruption; the format is a small versioned header
// (magic, version, element count, FNV-1a content hash) followed by raw
// little-endian floats. Corruption is detected on load via the hash.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/ops.h"

namespace fedl::nn {

// Writes `params` to `path`; throws ConfigError on I/O failure.
void save_params(const ParamVec& params, const std::string& path);

// Reads a checkpoint; throws ConfigError on missing file, bad magic,
// version mismatch, truncation, or hash mismatch.
ParamVec load_params(const std::string& path);

// FNV-1a over the raw bytes (exposed for tests).
std::uint64_t params_hash(const ParamVec& params);

}  // namespace fedl::nn
