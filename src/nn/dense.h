// Fully connected layer: y = x W^T + b, x is [N, in], W is [out, in].
#pragma once

#include "nn/layer.h"

namespace fedl {
class Rng;
}

namespace fedl::nn {

class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(Tensor input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }
  LayerPtr clone() const override { return std::make_unique<Dense>(*this); }
  std::string name() const override { return "dense"; }
  std::size_t scratch_bytes() const override {
    return cached_input_.owned_bytes();
  }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor weight_;       // [out, in]
  Tensor bias_;         // [out]
  Tensor grad_weight_;  // [out, in]
  Tensor grad_bias_;    // [out]
  Tensor cached_input_;  // [N, in] (train mode; moved in, not copied)
};

}  // namespace fedl::nn
