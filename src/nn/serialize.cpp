#include "nn/serialize.h"

#include <cstring>
#include <fstream>

#include "common/error.h"

namespace fedl::nn {
namespace {

constexpr std::uint64_t kMagic = 0xfed1c0defed1c0deULL;
constexpr std::uint32_t kVersion = 1;

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint64_t read_u64(std::istream& in, const std::string& path) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw ConfigError("truncated checkpoint header: " + path);
  return v;
}

}  // namespace

std::uint64_t params_hash(const ParamVec& params) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* bytes = reinterpret_cast<const unsigned char*>(params.data());
  const std::size_t n = params.size() * sizeof(float);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void save_params(const ParamVec& params, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw ConfigError("cannot write checkpoint: " + path);
  write_u64(out, kMagic);
  write_u64(out, kVersion);
  write_u64(out, params.size());
  write_u64(out, params_hash(params));
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(params.size() * sizeof(float)));
  if (!out) throw ConfigError("short write on checkpoint: " + path);
}

ParamVec load_params(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot open checkpoint: " + path);
  if (read_u64(in, path) != kMagic)
    throw ConfigError("bad checkpoint magic: " + path);
  if (read_u64(in, path) != kVersion)
    throw ConfigError("unsupported checkpoint version: " + path);
  const std::uint64_t count = read_u64(in, path);
  const std::uint64_t expected_hash = read_u64(in, path);

  ParamVec params(count);
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) throw ConfigError("truncated checkpoint data: " + path);
  if (params_hash(params) != expected_hash)
    throw ConfigError("checkpoint hash mismatch (corrupted): " + path);
  return params;
}

}  // namespace fedl::nn
