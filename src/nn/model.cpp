#include "nn/model.h"

namespace fedl::nn {

void Model::add(LayerPtr layer) {
  FEDL_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
}

Model Model::clone() const {
  Model out(l2_reg_);
  out.layers_.reserve(layers_.size());
  for (const auto& layer : layers_) out.layers_.push_back(layer->clone());
  return out;
}

Model Model::shared_replica() const {
  Model out = clone();
  out.attach_params(*this);
  return out;
}

void Model::attach_params(const Model& base) {
  FEDL_CHECK_EQ(layers_.size(), base.layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    auto mine = layers_[i]->params();
    auto theirs = const_cast<Layer&>(*base.layers_[i]).params();
    FEDL_CHECK_EQ(mine.size(), theirs.size());
    for (std::size_t j = 0; j < mine.size(); ++j)
      mine[j]->borrow(*theirs[j]);
  }
}

std::size_t Model::owned_bytes() const {
  std::size_t bytes = 0;
  for (const auto& layer : layers_) {
    auto& l = const_cast<Layer&>(*layer);
    for (Tensor* p : l.params()) bytes += p->owned_bytes();
    for (Tensor* g : l.grads()) bytes += g->owned_bytes();
    bytes += layer->scratch_bytes();
  }
  return bytes;
}

Tensor Model::forward(const Tensor& x, bool train) {
  FEDL_CHECK(!layers_.empty());
  Tensor cur = x;
  for (auto& layer : layers_) cur = layer->forward(std::move(cur), train);
  return cur;
}

EvalResult Model::forward_backward(const Batch& batch) {
  FEDL_CHECK_GT(batch.size(), 0u);
  zero_grad();
  Tensor logits = forward(batch.x, /*train=*/true);
  LossResult lr = softmax_cross_entropy(logits, batch.y);

  Tensor grad = std::move(lr.grad_logits);
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    grad = (*it)->backward(grad);

  double loss = lr.loss;
  if (l2_reg_ > 0.0) {
    // loss += γ/2 ‖w‖², grad += γ w — applied directly in the layer buffers.
    double sq = 0.0;
    for (auto& layer : layers_) {
      auto ps = layer->params();
      auto gs = layer->grads();
      for (std::size_t i = 0; i < ps.size(); ++i) {
        sq += ps[i]->squared_norm();
        axpy(static_cast<float>(l2_reg_), *ps[i], *gs[i]);
      }
    }
    loss += 0.5 * l2_reg_ * sq;
  }
  return EvalResult{loss, static_cast<double>(lr.correct) /
                              static_cast<double>(batch.size())};
}

EvalResult Model::evaluate(const Batch& batch) {
  FEDL_CHECK_GT(batch.size(), 0u);
  Tensor logits = forward(batch.x, /*train=*/false);
  std::size_t correct = 0;
  double loss = softmax_cross_entropy_value(logits, batch.y, &correct);
  if (l2_reg_ > 0.0) {
    double sq = 0.0;
    for (auto& layer : layers_)
      for (Tensor* p : layer->params()) sq += p->squared_norm();
    loss += 0.5 * l2_reg_ * sq;
  }
  return EvalResult{loss, static_cast<double>(correct) /
                              static_cast<double>(batch.size())};
}

std::size_t Model::num_params() const {
  std::size_t n = 0;
  for (const auto& layer : layers_)
    for (Tensor* p : const_cast<Layer&>(*layer).params()) n += p->numel();
  return n;
}

ParamVec Model::params_flat() const {
  ParamVec out;
  out.reserve(num_params());
  for (const auto& layer : layers_)
    for (Tensor* p : const_cast<Layer&>(*layer).params())
      out.insert(out.end(), p->data(), p->data() + p->numel());
  return out;
}

void Model::set_params_flat(std::span<const float> flat) {
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->params()) {
      // Copy-on-write: a shared-weight replica that writes its parameters
      // first detaches them into private storage (the base stays untouched).
      if (p->borrowed()) p->detach_storage();
      FEDL_CHECK_LE(offset + p->numel(), flat.size());
      std::copy(flat.begin() + offset, flat.begin() + offset + p->numel(),
                p->data());
      offset += p->numel();
    }
  }
  FEDL_CHECK_EQ(offset, flat.size()) << "flat vector size mismatch";
}

ParamVec Model::grads_flat() const {
  ParamVec out;
  grads_flat_into(out);
  return out;
}

void Model::grads_flat_into(ParamVec& out) const {
  out.clear();
  out.reserve(num_params());
  for (const auto& layer : layers_)
    for (Tensor* g : const_cast<Layer&>(*layer).grads())
      out.insert(out.end(), g->data(), g->data() + g->numel());
}

void Model::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

}  // namespace fedl::nn
