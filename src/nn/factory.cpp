#include "nn/factory.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"

namespace fedl::nn {
namespace {

std::size_t scaled(std::size_t units, double scale) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(units * scale)));
}

}  // namespace

Model make_fmnist_cnn(const ModelSpec& spec, Rng& rng) {
  const std::size_t c1 = scaled(32, spec.width_scale);
  const std::size_t c2 = scaled(64, spec.width_scale);
  const std::size_t fc = scaled(1024, spec.width_scale);

  Model m(spec.l2_reg);
  // conv 5x5 (c1), same padding, then 2x2 pool
  m.add(std::make_unique<Conv2d>(spec.channels, c1, 5, 1, 2, spec.image_h,
                                 spec.image_w, rng));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<MaxPool2d>(2, 2));
  const std::size_t h1 = spec.image_h / 2;
  const std::size_t w1 = spec.image_w / 2;
  // conv 5x5 (c2), same padding, then 2x2 pool
  m.add(std::make_unique<Conv2d>(c1, c2, 5, 1, 2, h1, w1, rng));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<MaxPool2d>(2, 2));
  const std::size_t h2 = h1 / 2;
  const std::size_t w2 = w1 / 2;
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Dense>(c2 * h2 * w2, fc, rng));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<Dense>(fc, spec.num_classes, rng));
  return m;
}

Model make_cifar_cnn(const ModelSpec& spec, Rng& rng) {
  const std::size_t c1 = scaled(64, spec.width_scale);
  const std::size_t c2 = scaled(64, spec.width_scale);
  const std::size_t fc1 = scaled(384, spec.width_scale);
  const std::size_t fc2 = scaled(192, spec.width_scale);

  Model m(spec.l2_reg);
  // conv 5x5 (c1), same padding, then 3x3 pool stride 2
  m.add(std::make_unique<Conv2d>(spec.channels, c1, 5, 1, 2, spec.image_h,
                                 spec.image_w, rng));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<MaxPool2d>(3, 2));
  const std::size_t h1 = (spec.image_h - 3) / 2 + 1;
  const std::size_t w1 = (spec.image_w - 3) / 2 + 1;
  m.add(std::make_unique<Conv2d>(c1, c2, 5, 1, 2, h1, w1, rng));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<MaxPool2d>(3, 2));
  const std::size_t h2 = (h1 - 3) / 2 + 1;
  const std::size_t w2 = (w1 - 3) / 2 + 1;
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Dense>(c2 * h2 * w2, fc1, rng));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<Dense>(fc1, fc2, rng));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<Dense>(fc2, spec.num_classes, rng));
  return m;
}

Model make_mlp(std::size_t input_dim, std::size_t hidden, std::size_t classes,
               double l2_reg, Rng& rng) {
  Model m(l2_reg);
  m.add(std::make_unique<Dense>(input_dim, hidden, rng));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<Dense>(hidden, classes, rng));
  return m;
}

Model make_logistic(std::size_t input_dim, std::size_t classes, double l2_reg,
                    Rng& rng) {
  Model m(l2_reg);
  m.add(std::make_unique<Dense>(input_dim, classes, rng));
  return m;
}

}  // namespace fedl::nn
