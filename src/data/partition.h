// Partitioning the sample pool across clients.
//
// IID: random equal split. Non-IID: the paper's "principal dataset" scheme —
// each client draws most samples from a small set of principal classes and
// the rest uniformly — plus a Dirichlet partitioner (the standard non-IID
// benchmark in the FL literature) for sensitivity studies.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace fedl {
class Rng;
}

namespace fedl::data {

// Per-client index lists into the shared Dataset.
using Partition = std::vector<std::vector<std::size_t>>;

// Random equal split (±1 sample).
Partition partition_iid(const Dataset& ds, std::size_t num_clients, Rng& rng);

// Paper-style non-IID: a fraction `principal_frac` of each client's samples
// comes from `principal_classes` classes assigned round-robin; the remainder
// is drawn uniformly from all classes.
Partition partition_noniid_principal(const Dataset& ds,
                                     std::size_t num_clients,
                                     std::size_t principal_classes,
                                     double principal_frac, Rng& rng);

// Dirichlet(alpha) label-distribution split; alpha -> 0 is extreme non-IID,
// alpha -> inf approaches IID.
Partition partition_dirichlet(const Dataset& ds, std::size_t num_clients,
                              double alpha, Rng& rng);

// Sanity helpers used in tests and by the harness.
std::size_t partition_total(const Partition& p);
bool partition_disjoint(const Partition& p);

// Per-client label histogram, normalized to probabilities.
std::vector<std::vector<double>> label_distribution(const Dataset& ds,
                                                    const Partition& p);

}  // namespace fedl::data
