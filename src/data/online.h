// Time-varying client data: "all data are then transformed into online data
// followed by Poisson distribution" (paper §6.1).
//
// Each client owns a static partition of the pool; in epoch t it *holds*
// D_{t,k} ~ Poisson(mean rate) samples drawn as a sliding window over its
// partition. Window sliding models drifting user interests (the paper's news
// recommendation motivation): consecutive epochs see overlapping but shifting
// subsets.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/partition.h"

namespace fedl::data {

struct OnlineDataSpec {
  // Mean of the per-epoch Poisson sample count, as a fraction of the
  // client's partition size.
  double poisson_mean_frac = 0.5;
  // Minimum samples a client reports when available (a client with zero
  // local data cannot train).
  std::size_t min_samples = 4;
  // Fraction of the window that shifts every epoch.
  double drift_frac = 0.2;
  std::uint64_t seed = 7;
};

// Per-client online sample stream over a fixed partition.
class OnlineDataStream {
 public:
  OnlineDataStream(Partition partition, OnlineDataSpec spec);

  std::size_t num_clients() const { return partition_.size(); }

  // Advance to the next epoch: draws every client's D_{t,k} and window
  // offset. Must be called once per epoch before epoch_indices().
  void advance_epoch();

  // Indices (into the shared Dataset) the client holds in the current epoch.
  // Empty when the client's partition is empty.
  const std::vector<std::size_t>& epoch_indices(std::size_t client) const;

  // D_{t,k} for the current epoch.
  std::size_t epoch_size(std::size_t client) const;

 private:
  Partition partition_;
  OnlineDataSpec spec_;
  Rng rng_;
  std::vector<std::size_t> window_start_;
  std::vector<std::vector<std::size_t>> current_;
};

}  // namespace fedl::data
