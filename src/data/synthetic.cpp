#include "data/synthetic.h"

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace fedl::data {
namespace {

// Per-class prototype: sum of two sinusoidal gratings with class-dependent
// frequency/orientation plus a Gaussian blob at a class-dependent location.
// `overlap` pulls all class parameters toward a common mean, shrinking
// between-class distance.
class PrototypeBank {
 public:
  PrototypeBank(const SyntheticSpec& spec, Rng& rng) : spec_(spec) {
    protos_.reserve(spec.num_classes);
    for (std::size_t c = 0; c < spec.num_classes; ++c) {
      ClassParams p;
      const double base = static_cast<double>(c);
      p.fx = mix(0.5 + 0.45 * base, 2.5, rng);
      p.fy = mix(0.3 + 0.55 * base, 2.8, rng);
      p.phase = mix(base * 0.7, 1.5, rng);
      p.blob_x = mix(0.1 + 0.8 * (base / std::max<double>(1.0, spec.num_classes - 1)),
                     0.5, rng);
      p.blob_y = mix(0.9 - 0.8 * (base / std::max<double>(1.0, spec.num_classes - 1)),
                     0.5, rng);
      p.blob_amp = 1.2;
      protos_.push_back(render(p));
    }
  }

  const std::vector<float>& prototype(std::size_t cls) const {
    return protos_[cls];
  }

 private:
  struct ClassParams {
    double fx, fy, phase, blob_x, blob_y, blob_amp;
  };

  double mix(double class_value, double common_value, Rng& rng) const {
    const double o = spec_.prototype_overlap;
    // Tiny jitter keeps prototypes distinct even at full overlap.
    return (1.0 - o) * class_value + o * common_value +
           0.02 * rng.normal();
  }

  std::vector<float> render(const ClassParams& p) const {
    const std::size_t h = spec_.image_h;
    const std::size_t w = spec_.image_w;
    std::vector<float> img(spec_.channels * h * w);
    for (std::size_t ch = 0; ch < spec_.channels; ++ch) {
      // Channels get phase-shifted copies so color channels carry signal.
      const double chphase = p.phase + 0.9 * static_cast<double>(ch);
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          const double u = static_cast<double>(x) / static_cast<double>(w);
          const double v = static_cast<double>(y) / static_cast<double>(h);
          double val = 0.5 * std::sin(2.0 * M_PI * (p.fx * u + p.fy * v) +
                                      chphase) +
                       0.3 * std::cos(2.0 * M_PI * (p.fy * u - p.fx * v));
          const double dx = u - p.blob_x;
          const double dy = v - p.blob_y;
          val += p.blob_amp * std::exp(-(dx * dx + dy * dy) / 0.02);
          img[(ch * h + y) * w + x] = static_cast<float>(val);
        }
      }
    }
    return img;
  }

  SyntheticSpec spec_;
  std::vector<std::vector<float>> protos_;
};

Dataset generate(const SyntheticSpec& spec, const PrototypeBank& bank,
                 std::size_t count, Rng& rng) {
  const std::size_t elems = spec.channels * spec.image_h * spec.image_w;
  Tensor images(Shape{count, spec.channels, spec.image_h, spec.image_w});
  std::vector<std::uint8_t> labels(count);
  float* dst = images.data();
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t cls =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(spec.num_classes) - 1));
    const auto& proto = bank.prototype(cls);
    for (std::size_t e = 0; e < elems; ++e)
      dst[i * elems + e] =
          static_cast<float>(spec.signal_scale) * proto[e] +
          static_cast<float>(rng.normal(0.0, spec.noise_stddev));
    std::uint8_t y = static_cast<std::uint8_t>(cls);
    if (spec.label_noise > 0.0 && rng.bernoulli(spec.label_noise))
      y = static_cast<std::uint8_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(spec.num_classes) - 1));
    labels[i] = y;
  }
  return Dataset(std::move(images), std::move(labels), spec.num_classes);
}

}  // namespace

SyntheticSpec fmnist_like_spec(std::size_t num_samples, std::uint64_t seed) {
  SyntheticSpec s;
  s.num_samples = num_samples;
  s.image_h = 28;
  s.image_w = 28;
  s.channels = 1;
  s.noise_stddev = 1.6;
  s.signal_scale = 0.45;
  s.prototype_overlap = 0.45;
  s.seed = seed;
  return s;
}

SyntheticSpec cifar_like_spec(std::size_t num_samples, std::uint64_t seed) {
  SyntheticSpec s;
  s.num_samples = num_samples;
  s.image_h = 32;
  s.image_w = 32;
  s.channels = 3;
  s.noise_stddev = 1.6;
  s.signal_scale = 0.45;
  s.prototype_overlap = 0.55;    // heavier class overlap -> harder task
  s.seed = seed;
  return s;
}

Dataset make_synthetic(const SyntheticSpec& spec) {
  FEDL_CHECK_GT(spec.num_samples, 0u);
  FEDL_CHECK_GT(spec.num_classes, 0u);
  Rng rng(spec.seed);
  PrototypeBank bank(spec, rng);
  return generate(spec, bank, spec.num_samples, rng);
}

TrainTest make_synthetic_train_test(const SyntheticSpec& spec,
                                    std::size_t test_samples) {
  FEDL_CHECK_GT(test_samples, 0u);
  Rng rng(spec.seed);
  PrototypeBank bank(spec, rng);
  TrainTest tt;
  tt.train = generate(spec, bank, spec.num_samples, rng);
  // Test noise stream continues the same RNG: independent draws, same
  // prototypes; label noise is not applied to the test set.
  SyntheticSpec clean = spec;
  clean.label_noise = 0.0;
  tt.test = generate(clean, bank, test_samples, rng);
  return tt;
}

}  // namespace fedl::data
