#include "data/online.h"

#include <algorithm>

namespace fedl::data {

OnlineDataStream::OnlineDataStream(Partition partition, OnlineDataSpec spec)
    : partition_(std::move(partition)),
      spec_(spec),
      rng_(spec.seed),
      window_start_(partition_.size(), 0),
      current_(partition_.size()) {
  FEDL_CHECK_GT(spec_.poisson_mean_frac, 0.0);
  FEDL_CHECK(spec_.drift_frac >= 0.0 && spec_.drift_frac <= 1.0);
}

void OnlineDataStream::advance_epoch() {
  for (std::size_t k = 0; k < partition_.size(); ++k) {
    const auto& part = partition_[k];
    auto& cur = current_[k];
    cur.clear();
    if (part.empty()) continue;

    const double mean =
        spec_.poisson_mean_frac * static_cast<double>(part.size());
    std::size_t count = static_cast<std::size_t>(rng_.poisson(mean));
    count = std::clamp<std::size_t>(count, spec_.min_samples, part.size());

    // Slide the window start by a random fraction of its size.
    const std::size_t max_shift = std::max<std::size_t>(
        1, static_cast<std::size_t>(spec_.drift_frac * static_cast<double>(count)));
    window_start_[k] = (window_start_[k] +
                        static_cast<std::size_t>(rng_.uniform_int(
                            0, static_cast<std::int64_t>(max_shift)))) %
                       part.size();

    cur.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      cur.push_back(part[(window_start_[k] + i) % part.size()]);
  }
}

const std::vector<std::size_t>& OnlineDataStream::epoch_indices(
    std::size_t client) const {
  FEDL_CHECK_LT(client, current_.size());
  return current_[client];
}

std::size_t OnlineDataStream::epoch_size(std::size_t client) const {
  return epoch_indices(client).size();
}

}  // namespace fedl::data
