#include "data/partition.h"

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace fedl::data {

Partition partition_iid(const Dataset& ds, std::size_t num_clients, Rng& rng) {
  FEDL_CHECK_GT(num_clients, 0u);
  std::vector<std::size_t> idx(ds.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  Partition p(num_clients);
  for (std::size_t i = 0; i < idx.size(); ++i)
    p[i % num_clients].push_back(idx[i]);
  return p;
}

Partition partition_noniid_principal(const Dataset& ds,
                                     std::size_t num_clients,
                                     std::size_t principal_classes,
                                     double principal_frac, Rng& rng) {
  FEDL_CHECK_GT(num_clients, 0u);
  FEDL_CHECK_GT(principal_classes, 0u);
  FEDL_CHECK_LE(principal_classes, ds.num_classes());
  FEDL_CHECK(principal_frac >= 0.0 && principal_frac <= 1.0);

  // Pools of shuffled per-class indices we consume from the front.
  std::vector<std::vector<std::size_t>> by_class(ds.num_classes());
  for (std::size_t c = 0; c < ds.num_classes(); ++c) {
    by_class[c] = ds.indices_of_class(c);
    rng.shuffle(by_class[c]);
  }
  std::vector<std::size_t> cursor(ds.num_classes(), 0);

  const std::size_t per_client = ds.size() / num_clients;
  Partition p(num_clients);
  for (std::size_t k = 0; k < num_clients; ++k) {
    const std::size_t target_principal =
        static_cast<std::size_t>(principal_frac * static_cast<double>(per_client));
    // Principal classes assigned round-robin so every class is principal for
    // roughly the same number of clients.
    for (std::size_t s = 0; s < per_client; ++s) {
      std::size_t cls;
      if (s < target_principal) {
        cls = (k * principal_classes + s % principal_classes) %
              ds.num_classes();
      } else {
        cls = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ds.num_classes()) - 1));
      }
      // If the preferred class pool is drained, fall back to any class with
      // remaining samples.
      std::size_t tries = 0;
      while (cursor[cls] >= by_class[cls].size() &&
             tries < ds.num_classes()) {
        cls = (cls + 1) % ds.num_classes();
        ++tries;
      }
      if (cursor[cls] >= by_class[cls].size()) break;  // pool exhausted
      p[k].push_back(by_class[cls][cursor[cls]++]);
    }
  }
  return p;
}

Partition partition_dirichlet(const Dataset& ds, std::size_t num_clients,
                              double alpha, Rng& rng) {
  FEDL_CHECK_GT(num_clients, 0u);
  FEDL_CHECK_GT(alpha, 0.0);
  Partition p(num_clients);
  for (std::size_t c = 0; c < ds.num_classes(); ++c) {
    auto idx = ds.indices_of_class(c);
    rng.shuffle(idx);
    const auto share = rng.dirichlet(alpha, num_clients);
    // Convert shares to cut points over this class's samples.
    std::size_t start = 0;
    double acc = 0.0;
    for (std::size_t k = 0; k < num_clients; ++k) {
      acc += share[k];
      const std::size_t end =
          (k + 1 == num_clients)
              ? idx.size()
              : std::min(idx.size(),
                         static_cast<std::size_t>(acc * static_cast<double>(idx.size())));
      for (std::size_t i = start; i < end; ++i) p[k].push_back(idx[i]);
      start = end;
    }
  }
  return p;
}

std::size_t partition_total(const Partition& p) {
  std::size_t n = 0;
  for (const auto& c : p) n += c.size();
  return n;
}

bool partition_disjoint(const Partition& p) {
  std::set<std::size_t> seen;
  for (const auto& client : p)
    for (std::size_t i : client)
      if (!seen.insert(i).second) return false;
  return true;
}

std::vector<std::vector<double>> label_distribution(const Dataset& ds,
                                                    const Partition& p) {
  std::vector<std::vector<double>> out(p.size(),
                                       std::vector<double>(ds.num_classes(), 0.0));
  for (std::size_t k = 0; k < p.size(); ++k) {
    for (std::size_t i : p[k]) out[k][ds.labels()[i]] += 1.0;
    const double total = static_cast<double>(p[k].size());
    if (total > 0)
      for (auto& v : out[k]) v /= total;
  }
  return out;
}

}  // namespace fedl::data
