#include "data/dataset.h"

#include <algorithm>
#include <cstring>

namespace fedl::data {

Dataset::Dataset(Tensor images, std::vector<std::uint8_t> labels,
                 std::size_t num_classes)
    : images_(std::move(images)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  FEDL_CHECK_GT(num_classes_, 0u);
  FEDL_CHECK_EQ(images_.shape()[0], labels_.size());
  for (std::uint8_t y : labels_)
    FEDL_CHECK_LT(static_cast<std::size_t>(y), num_classes_);
}

Shape Dataset::sample_shape() const {
  const Shape& s = images_.shape();
  if (s.rank() == 2) return Shape{s[1]};
  if (s.rank() == 4) return Shape{s[1], s[2], s[3]};
  FEDL_CHECK(false) << "dataset images must be rank 2 or 4, got rank "
                    << s.rank();
  return {};
}

std::size_t Dataset::sample_numel() const {
  return size() == 0 ? 0 : images_.numel() / size();
}

nn::Batch Dataset::gather(const std::vector<std::size_t>& indices) const {
  nn::Batch batch;
  gather_into(indices, &batch);
  return batch;
}

void Dataset::gather_into(const std::vector<std::size_t>& indices,
                          nn::Batch* out) const {
  FEDL_CHECK(!indices.empty());
  FEDL_CHECK(out != nullptr);
  const std::size_t elems = sample_numel();
  const Shape& s = images_.shape();

  Shape batch_shape =
      s.rank() == 2 ? Shape{indices.size(), s[1]}
                    : Shape{indices.size(), s[1], s[2], s[3]};
  if (out->x.shape() != batch_shape) out->x = Tensor(batch_shape);
  out->y.resize(indices.size());
  float* dst = out->x.data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t idx = indices[i];
    FEDL_CHECK_LT(idx, size());
    std::memcpy(dst + i * elems, images_.data() + idx * elems,
                elems * sizeof(float));
    out->y[i] = labels_[idx];
  }
}

nn::Batch Dataset::head(std::size_t limit) const {
  const std::size_t n = (limit == 0) ? size() : std::min(limit, size());
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  return gather(idx);
}

std::vector<std::size_t> Dataset::indices_of_class(std::size_t cls) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels_.size(); ++i)
    if (labels_[i] == cls) out.push_back(i);
  return out;
}

}  // namespace fedl::data
