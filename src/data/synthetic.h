// Synthetic stand-ins for Fashion-MNIST and CIFAR-10.
//
// This environment has no dataset files or network access, so we generate
// 10-class image datasets with the same tensor shapes and a controllable
// difficulty (DESIGN.md §5, substitution 1). Each class has a structured
// prototype — a superposition of class-specific 2-D sinusoids plus a class
// blob — and samples are prototype + white noise + optional label noise.
// The "CIFAR-like" preset uses higher noise and more overlapping prototypes
// so it is the harder task, matching the relative difficulty in the paper.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace fedl {
class Rng;
}

namespace fedl::data {

struct SyntheticSpec {
  std::size_t num_samples = 2000;
  std::size_t image_h = 28;
  std::size_t image_w = 28;
  std::size_t channels = 1;
  std::size_t num_classes = 10;
  double noise_stddev = 0.35;       // per-pixel Gaussian noise
  double signal_scale = 1.0;        // multiplier on the class prototype
  double prototype_overlap = 0.0;   // 0 = well separated, 1 = heavy overlap
  double label_noise = 0.0;         // fraction of mislabeled samples
  std::uint64_t seed = 1;
};

// Presets matching the paper's two tasks.
SyntheticSpec fmnist_like_spec(std::size_t num_samples, std::uint64_t seed);
SyntheticSpec cifar_like_spec(std::size_t num_samples, std::uint64_t seed);

// Generate a dataset from the spec; deterministic in spec.seed.
Dataset make_synthetic(const SyntheticSpec& spec);

// Paired train/test split drawn from the same class prototypes (the test set
// uses an independent noise stream so accuracy measures generalization).
struct TrainTest {
  Dataset train;
  Dataset test;
};
TrainTest make_synthetic_train_test(const SyntheticSpec& spec,
                                    std::size_t test_samples);

}  // namespace fedl::data
