#include "data/idx_loader.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "common/error.h"
#include "common/math_util.h"

namespace fedl::data {
namespace {

constexpr std::uint32_t kLabelMagic = 0x00000801;
constexpr std::uint32_t kImageMagic = 0x00000803;

std::uint32_t read_be32(std::istream& in, const std::string& path) {
  unsigned char buf[4];
  in.read(reinterpret_cast<char*>(buf), 4);
  if (!in) throw ConfigError("truncated IDX header in " + path);
  return (static_cast<std::uint32_t>(buf[0]) << 24) |
         (static_cast<std::uint32_t>(buf[1]) << 16) |
         (static_cast<std::uint32_t>(buf[2]) << 8) |
         static_cast<std::uint32_t>(buf[3]);
}

void write_be32(std::ostream& out, std::uint32_t v) {
  const unsigned char buf[4] = {
      static_cast<unsigned char>(v >> 24), static_cast<unsigned char>(v >> 16),
      static_cast<unsigned char>(v >> 8), static_cast<unsigned char>(v)};
  out.write(reinterpret_cast<const char*>(buf), 4);
}

}  // namespace

Dataset load_idx(const std::string& images_path,
                 const std::string& labels_path, std::size_t num_classes,
                 std::size_t limit) {
  std::ifstream img(images_path, std::ios::binary);
  if (!img) throw ConfigError("cannot open IDX images: " + images_path);
  std::ifstream lab(labels_path, std::ios::binary);
  if (!lab) throw ConfigError("cannot open IDX labels: " + labels_path);

  if (read_be32(img, images_path) != kImageMagic)
    throw ConfigError("bad image magic in " + images_path);
  const std::size_t n_img = read_be32(img, images_path);
  const std::size_t rows = read_be32(img, images_path);
  const std::size_t cols = read_be32(img, images_path);

  if (read_be32(lab, labels_path) != kLabelMagic)
    throw ConfigError("bad label magic in " + labels_path);
  const std::size_t n_lab = read_be32(lab, labels_path);
  if (n_img != n_lab)
    throw ConfigError("IDX image/label count mismatch: " +
                      std::to_string(n_img) + " vs " + std::to_string(n_lab));
  if (n_img == 0 || rows == 0 || cols == 0)
    throw ConfigError("empty IDX dataset: " + images_path);

  const std::size_t n =
      (limit > 0) ? std::min<std::size_t>(limit, n_img) : n_img;

  Tensor images(Shape{n, 1, rows, cols});
  std::vector<unsigned char> row(rows * cols);
  for (std::size_t i = 0; i < n; ++i) {
    img.read(reinterpret_cast<char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
    if (!img) throw ConfigError("truncated IDX image data in " + images_path);
    float* dst = images.data() + i * rows * cols;
    for (std::size_t p = 0; p < row.size(); ++p)
      dst[p] = static_cast<float>(row[p]) / 255.0f;
  }

  std::vector<std::uint8_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    char y;
    lab.read(&y, 1);
    if (!lab) throw ConfigError("truncated IDX label data in " + labels_path);
    labels[i] = static_cast<std::uint8_t>(y);
    if (labels[i] >= num_classes)
      throw ConfigError("IDX label " + std::to_string(labels[i]) +
                        " out of range in " + labels_path);
  }
  return Dataset(std::move(images), std::move(labels), num_classes);
}

void save_idx(const Dataset& ds, const std::string& images_path,
              const std::string& labels_path) {
  const Shape shape = ds.sample_shape();
  FEDL_CHECK_EQ(shape.dim_or_1(0), 1u) << "IDX export supports 1 channel";
  const std::size_t rows = shape.dim_or_1(1);
  const std::size_t cols = shape.dim_or_1(2);

  std::ofstream img(images_path, std::ios::binary);
  if (!img) throw ConfigError("cannot write IDX images: " + images_path);
  write_be32(img, kImageMagic);
  write_be32(img, static_cast<std::uint32_t>(ds.size()));
  write_be32(img, static_cast<std::uint32_t>(rows));
  write_be32(img, static_cast<std::uint32_t>(cols));
  const std::size_t elems = rows * cols;
  std::vector<unsigned char> row(elems);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const float* src = ds.images().data() + i * elems;
    for (std::size_t p = 0; p < elems; ++p)
      row[p] = static_cast<unsigned char>(clamp(src[p], 0.0, 1.0) * 255.0 + 0.5);
    img.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }

  std::ofstream lab(labels_path, std::ios::binary);
  if (!lab) throw ConfigError("cannot write IDX labels: " + labels_path);
  write_be32(lab, kLabelMagic);
  write_be32(lab, static_cast<std::uint32_t>(ds.size()));
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const char y = static_cast<char>(ds.labels()[i]);
    lab.write(&y, 1);
  }
}

}  // namespace fedl::data
