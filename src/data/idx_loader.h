// Loader for the IDX file format used by MNIST / Fashion-MNIST
// (http://yann.lecun.com/exdb/mnist/). The evaluation ships with synthetic
// stand-ins (no dataset files in this environment — DESIGN.md §5), but a
// downstream user with the real `*-images-idx3-ubyte` / `*-labels-idx1-ubyte`
// files can load them here and run every experiment on the true data.
//
// Format: big-endian magic (0x00000801 for labels, 0x00000803 for images),
// then dimension sizes, then raw unsigned bytes. Pixels are normalized to
// [0, 1] and returned as an NCHW float dataset with one channel.
#pragma once

#include <string>

#include "data/dataset.h"

namespace fedl::data {

// Loads an images + labels IDX pair; throws ConfigError on malformed files
// or mismatched counts. `limit` > 0 truncates to the first `limit` samples.
Dataset load_idx(const std::string& images_path,
                 const std::string& labels_path, std::size_t num_classes = 10,
                 std::size_t limit = 0);

// Writes a dataset to an IDX pair (inverse of load_idx; used by tests and
// for exporting synthetic data to external tools). Pixels are clamped to
// [0, 1] and quantized to bytes.
void save_idx(const Dataset& ds, const std::string& images_path,
              const std::string& labels_path);

}  // namespace fedl::data
