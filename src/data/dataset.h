// In-memory labeled dataset with index-based views.
//
// Clients never copy the raw pool; they hold index lists into a shared
// Dataset (mirroring the FL premise that data stays on the device — here the
// "device" owns indices into the simulation's sample pool).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.h"
#include "tensor/tensor.h"

namespace fedl::data {

class Dataset {
 public:
  Dataset() = default;
  // images: [N, ...]; labels: N entries.
  Dataset(Tensor images, std::vector<std::uint8_t> labels,
          std::size_t num_classes);

  std::size_t size() const { return labels_.size(); }
  std::size_t num_classes() const { return num_classes_; }
  const Tensor& images() const { return images_; }
  const std::vector<std::uint8_t>& labels() const { return labels_; }

  // Shape of one sample (batch dim stripped).
  Shape sample_shape() const;
  std::size_t sample_numel() const;

  // Materialize a batch from sample indices (bounds-checked).
  nn::Batch gather(const std::vector<std::size_t>& indices) const;

  // gather() into a caller-owned batch, reusing its tensor storage when the
  // shape already matches — the grow-only buffer variant for hot-path
  // callers (FlEngine re-gathers client minibatches every epoch).
  void gather_into(const std::vector<std::size_t>& indices,
                   nn::Batch* out) const;

  // Batch over the first `limit` samples (the whole set when limit==0).
  nn::Batch head(std::size_t limit = 0) const;

  // Indices of every sample with the given label.
  std::vector<std::size_t> indices_of_class(std::size_t cls) const;

 private:
  Tensor images_;
  std::vector<std::uint8_t> labels_;
  std::size_t num_classes_ = 0;
};

}  // namespace fedl::data
