// The event-driven execution substrate: kills the epoch barrier.
//
// Lockstep run_epoch waits for the slowest selected client before
// aggregating, so one straggler's d_k(t) = l_t(τ^loc + τ^cm) sets the whole
// round's wall-clock — the cost/latency co-optimization failure mode of
// paper §3.2. EventEngine replaces the barrier with a discrete-event
// simulation on a deterministic *virtual* clock:
//
//  * dispatch: a committed cohort starts training immediately against the
//    current global model. A member's engagement of l iterations is executed
//    as a *chain* of unit steps — train one iteration, upload, continue from
//    whatever global model exists at that moment — exactly how an
//    asynchronous client would behave (and the async analog of lockstep's l
//    per-iteration aggregation rounds; a single monolithic l-step local walk
//    would drift toward the client optimum and pay the same rent for a far
//    weaker update). Each step's local work runs at its own event
//    (FlEngine::run_local_jobs — scheduler-leased fan-out, bit-identical at
//    any thread count) and completes one step latency later, where the step
//    latency is d_k/l from the same analytical d_k = l·(τ^loc + τ^cm)
//    run_epoch charges (the environment's realized_completion_times), so
//    lockstep and event mode race on identical physics.
//  * complete: the finished step's update enters the staleness-tagged
//    aggregation buffer (staleness = global model versions missed since the
//    step started); the member's next step, if any, then starts from the
//    current model — after any flush this arrival itself triggered.
//  * drop: a mid-flight failure resolves at vt + timeout·d_k with nothing to
//    aggregate — in asynchronous FL a dropout is a total loss (there is no
//    barrier at which partial iterations could be collected).
//  * flush (FedBuff-style): when K updates are buffered, a virtual-time
//    deadline expires, or the queue drains, the buffer folds into the
//    global model with 1/(1+staleness)^a damping (core/staleness.h) and the
//    model version advances. Selection decisions are made at flush
//    boundaries, not global barriers.
//
// Determinism contract: the event loop itself is strictly single-threaded
// per trial; the only concurrency is inside run_local_jobs, which is already
// bit-identical at any --jobs/--threads. The event queue breaks virtual-time
// ties on (client id, dispatch sequence), so traces are byte-identical
// across thread configurations.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "fl/engine.h"
#include "sim/environment.h"

namespace fedl::fl {

// Buffered-asynchronous execution config (--async and friends).
struct AsyncConfig {
  bool enabled = false;
  // Aggregate when this many updates are buffered (FedBuff's K).
  std::size_t buffer_k = 4;
  // a in the 1/(1+staleness)^a damping; 0 = undamped buffered mean.
  double staleness_exponent = 0.5;
  // Flush a non-empty buffer this much virtual time after its first entry
  // arrived even if K was not reached; 0 disables the deadline.
  double flush_timeout_s = 0.0;
};

// One trace-visible event on the virtual clock (the "event" JSONL records).
struct AsyncEvent {
  enum class Kind { kDispatch, kComplete, kDrop, kFlush };
  Kind kind = Kind::kDispatch;
  double vt = 0.0;             // virtual time of the event
  std::size_t epoch = 0;       // cohort epoch (flush: latest dispatch epoch)
  std::size_t client = 0;      // dispatch/complete/drop (unused for flush)
  std::size_t version = 0;     // model version after the event
  std::size_t staleness = 0;   // complete: missed versions; flush: batch max
  std::size_t buffer = 0;      // aggregation-buffer occupancy after the event
  std::size_t aggregated = 0;  // flush only: updates folded into the model
};

// A fully-resolved cohort: every member completed or dropped, and the
// outcome was evaluated at the global model current at resolution time.
// `outcome` has the exact shape the learner's observe() and the trace
// writer consume in lockstep mode (per-member η, loss reductions, completed
// iterations, realized latencies, losses/accuracy).
struct CohortOutcome {
  EpochOutcome outcome;
  double dispatch_vt = 0.0;
  double resolve_vt = 0.0;  // vt at which the outcome was evaluated
};

class EventEngine {
 public:
  // `engine` and `env` outlive this object; `seed` drives the dispatch-time
  // dropout draws (its own stream, so the engine's minibatch RNG is
  // untouched by fault injection).
  EventEngine(FlEngine* engine, sim::EdgeEnvironment* env, AsyncConfig cfg,
              std::uint64_t seed);

  double now() const { return vt_; }
  std::size_t version() const { return version_; }
  std::size_t inflight() const { return inflight_count_; }
  bool client_inflight(std::size_t id) const;
  // Nothing queued, buffered, or awaiting evaluation: every dispatched
  // cohort has been resolved and handed out (or is waiting in take_*).
  bool drained() const {
    return queue_.empty() && buffer_.empty() && pending_eval_.empty();
  }

  // Dispatches a cohort at the current virtual time: runs each member's
  // FIRST unit step against the current global model (dropped members train
  // nothing; later steps train at their own events), schedules the first
  // completion/drop events, and emits one dispatch event per member.
  // `cohort_cost` is carried through to the outcome (the caller charges its
  // ledger at dispatch — spend commits when the rent is paid, not when
  // results arrive).
  void dispatch(std::size_t epoch, const std::vector<std::size_t>& selected,
                std::size_t iterations, double cohort_cost);

  // Advances the virtual clock until the next buffer flush; a draining
  // queue with a non-empty buffer flushes the remainder. Returns false only
  // when there was nothing left to do (no events, empty buffer). Cohorts
  // whose last member resolved are evaluated immediately after the flush —
  // in dispatch-epoch order — at the just-aggregated model.
  bool run_until_flush();

  // Moves out the cohorts fully resolved since the last call (evaluation
  // order: dispatch epoch ascending within each flush).
  std::vector<CohortOutcome> take_resolved();

  // Moves out the events emitted since the last call (virtual-time order).
  std::vector<AsyncEvent> take_events();

 private:
  struct InFlight {
    std::size_t client = 0;
    std::size_t cohort = 0;        // index into cohorts_
    std::size_t member = 0;        // index into the cohort's selected list
    std::size_t dispatch_version = 0;  // version the CURRENT step trains on
    std::size_t steps_total = 0;   // the engagement's iteration count l
    std::size_t steps_done = 0;
    double step_latency = 0.0;     // d_k / l: one iteration's virtual time
    bool dropped = false;
    LocalTrainResult result;       // the current step's result; empty if
                                   // dropped
  };
  struct Cohort {
    double dispatch_vt = 0.0;
    std::size_t unresolved = 0;
    EpochOutcome out;
  };
  struct BufferedUpdate {
    nn::ParamVec update;
    std::size_t dispatch_version = 0;
    std::size_t cohort_size = 0;  // |S| of the dispatch, for normalization
  };
  struct QueuedEvent {
    double vt = 0.0;
    std::size_t client = 0;
    std::uint64_t seq = 0;   // dispatch order: fixed tie-break of last resort
    std::size_t entry = 0;   // index into inflight_
  };
  // Min-heap order on (vt, client, seq): ties in virtual time resolve by
  // client id so the trace is reproducible at any --jobs/--threads.
  struct LaterEvent {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      if (a.vt != b.vt) return a.vt > b.vt;
      if (a.client != b.client) return a.client > b.client;
      return a.seq > b.seq;
    }
  };

  void do_flush();
  void resolve_pending_evals();

  FlEngine* engine_;
  sim::EdgeEnvironment* env_;
  AsyncConfig cfg_;
  Rng rng_;  // dropout draws only

  double vt_ = 0.0;
  std::size_t version_ = 0;   // global model version (flush count)
  std::uint64_t seq_ = 0;
  std::size_t last_dispatch_epoch_ = 0;
  std::size_t completes_since_flush_ = 0;

  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, LaterEvent>
      queue_;
  std::vector<InFlight> inflight_;   // append-only; resolved entries stay
  std::vector<char> inflight_mask_;  // by client id
  std::size_t inflight_count_ = 0;
  std::vector<Cohort> cohorts_;      // append-only by dispatch order
  std::vector<BufferedUpdate> buffer_;
  bool deadline_armed_ = false;
  double deadline_ = 0.0;

  std::vector<std::size_t> pending_eval_;  // cohort indices awaiting eval
  std::vector<CohortOutcome> resolved_;
  std::vector<AsyncEvent> events_;

  // Per-dispatch scratch (grow-only).
  std::vector<LocalTrainJob> jobs_;
  std::vector<LocalTrainResult> job_results_;
  std::vector<std::size_t> job_member_;    // job index → cohort member index
  std::vector<std::size_t> stale_scratch_; // flush staleness batch
  std::vector<std::size_t> cohort_scratch_;  // flush cohort-size batch
};

}  // namespace fedl::fl
