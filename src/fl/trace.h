// Training traces: the per-epoch series every experiment records, and the
// derived quantities the paper reports (accuracy after a time budget,
// completion time / rounds to a target accuracy).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace fedl::fl {

struct TraceRecord {
  std::size_t epoch = 0;
  std::size_t round = 0;       // cumulative federated iterations
  double sim_time_s = 0.0;     // cumulative modeled latency Σ d(E_t)
  double cost_spent = 0.0;     // cumulative rent Σ c·x
  double train_loss = 0.0;     // F_t(w) over all available data
  double test_loss = 0.0;
  double test_accuracy = 0.0;  // in [0, 1]
  std::size_t num_selected = 0;
  std::size_t num_iterations = 0;
  double eta = 0.0;            // η_t
};

struct TrainTrace {
  std::string algorithm;
  std::vector<TraceRecord> records;

  static constexpr double kNever = std::numeric_limits<double>::infinity();

  // First simulated time at which test accuracy reaches `target` (paper's
  // "completion time"); kNever if the trace never reaches it.
  double time_to_accuracy(double target) const {
    for (const auto& r : records)
      if (r.test_accuracy >= target) return r.sim_time_s;
    return kNever;
  }

  // First federated round at which accuracy reaches target.
  double rounds_to_accuracy(double target) const {
    for (const auto& r : records)
      if (r.test_accuracy >= target) return static_cast<double>(r.round);
    return kNever;
  }

  // Accuracy of the last record at or before simulated time `t`.
  double accuracy_at_time(double t) const {
    double acc = 0.0;
    for (const auto& r : records) {
      if (r.sim_time_s > t) break;
      acc = r.test_accuracy;
    }
    return acc;
  }

  // Accuracy of the last record at or before federated round `round`.
  double accuracy_at_round(std::size_t round) const {
    double acc = 0.0;
    for (const auto& r : records) {
      if (r.round > round) break;
      acc = r.test_accuracy;
    }
    return acc;
  }

  double final_accuracy() const {
    return records.empty() ? 0.0 : records.back().test_accuracy;
  }
  double final_loss() const {
    return records.empty() ? 0.0 : records.back().train_loss;
  }
  double total_time() const {
    return records.empty() ? 0.0 : records.back().sim_time_s;
  }
  double total_cost() const {
    return records.empty() ? 0.0 : records.back().cost_spent;
  }
};

}  // namespace fedl::fl
