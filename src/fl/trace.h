// Training traces: the per-epoch series every experiment records, and the
// derived quantities the paper reports (accuracy after a time budget,
// completion time / rounds to a target accuracy).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace fedl::fl {

struct TraceRecord {
  std::size_t epoch = 0;
  std::size_t round = 0;       // cumulative federated iterations
  double sim_time_s = 0.0;     // cumulative modeled latency Σ d(E_t)
  double cost_spent = 0.0;     // cumulative rent Σ c·x
  double train_loss = 0.0;     // F_t(w) over all available data
  double test_loss = 0.0;
  double test_accuracy = 0.0;  // in [0, 1]
  std::size_t num_selected = 0;
  std::size_t num_iterations = 0;
  double eta = 0.0;            // η_t
};

struct TrainTrace {
  std::string algorithm;
  std::vector<TraceRecord> records;

  static constexpr double kNever = std::numeric_limits<double>::infinity();

  // First simulated time at which test accuracy reaches `target` (paper's
  // "completion time"); kNever if the trace never reaches it.
  double time_to_accuracy(double target) const {
    for (const auto& r : records)
      if (r.test_accuracy >= target) return r.sim_time_s;
    return kNever;
  }

  // First federated round at which accuracy reaches target.
  double rounds_to_accuracy(double target) const {
    for (const auto& r : records)
      if (r.test_accuracy >= target) return static_cast<double>(r.round);
    return kNever;
  }

  // Result of an accuracy-at-cutoff query. `num_records` counts the trace
  // records at or before the cutoff; 0 means no record qualified, so the
  // returned accuracy is a sentinel (no training happened by then), not a
  // measured value. The unchecked accessors below keep returning bare 0.0 in
  // that case, which is indistinguishable from a measured 0.0 accuracy —
  // callers that care must use the *_checked variants.
  struct AccuracyQuery {
    double accuracy = 0.0;
    std::size_t num_records = 0;
  };

  // Accuracy of the last record at or before simulated time `t`. Records with
  // sim_time_s exactly equal to `t` are included.
  AccuracyQuery accuracy_at_time_checked(double t) const {
    AccuracyQuery q;
    for (const auto& r : records) {
      if (r.sim_time_s > t) break;
      q.accuracy = r.test_accuracy;
      ++q.num_records;
    }
    return q;
  }

  // Accuracy of the last record at or before federated round `round`
  // (inclusive on equality).
  AccuracyQuery accuracy_at_round_checked(std::size_t round) const {
    AccuracyQuery q;
    for (const auto& r : records) {
      if (r.round > round) break;
      q.accuracy = r.test_accuracy;
      ++q.num_records;
    }
    return q;
  }

  // Accuracy of the last record at or before simulated time `t`.
  // Returns 0.0 both when no record qualifies and when the measured accuracy
  // is genuinely zero; use accuracy_at_time_checked to tell them apart.
  double accuracy_at_time(double t) const {
    return accuracy_at_time_checked(t).accuracy;
  }

  // Accuracy of the last record at or before federated round `round`.
  // Same 0.0-sentinel caveat as accuracy_at_time.
  double accuracy_at_round(std::size_t round) const {
    return accuracy_at_round_checked(round).accuracy;
  }

  double final_accuracy() const {
    return records.empty() ? 0.0 : records.back().test_accuracy;
  }
  double final_loss() const {
    return records.empty() ? 0.0 : records.back().train_loss;
  }
  double total_time() const {
    return records.empty() ? 0.0 : records.back().sim_time_s;
  }
  double total_cost() const {
    return records.empty() ? 0.0 : records.back().cost_spent;
  }
};

}  // namespace fedl::fl
