#include "fl/dane.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace fedl::fl {

LocalOracle::LocalOracle(nn::Model* scratch, const nn::Batch* batch)
    : scratch_(scratch), batch_(batch) {
  FEDL_CHECK(scratch != nullptr);
  FEDL_CHECK(batch != nullptr);
  FEDL_CHECK_GT(batch->size(), 0u);
}

std::size_t LocalOracle::dim() const { return scratch_->num_params(); }

double LocalOracle::loss_grad(const nn::ParamVec& w, nn::ParamVec* grad) const {
  FEDL_CHECK_EQ(w.size(), dim());
  scratch_->set_params_flat(w);
  return loss_grad_preloaded(grad);
}

double LocalOracle::loss_grad_preloaded(nn::ParamVec* grad) const {
  if (!grad) return scratch_->evaluate(*batch_).loss;
  const nn::EvalResult r = scratch_->forward_backward(*batch_);
  scratch_->grads_flat_into(*grad);
  return r.loss;
}

LocalUpdate dane_local_step(const LocalOracle& oracle, const nn::ParamVec& w,
                            const nn::ParamVec& global_grad,
                            const DaneConfig& cfg, bool scratch_at_w) {
  const std::size_t p = oracle.dim();
  FEDL_CHECK_EQ(w.size(), p);

  // Rule-dependent surrogate coefficients:
  //   kDane:    G(d) = F(w+d) + prox/2‖d‖² + linearᵀd, linear = σ2ḡ − ∇F(w)
  //   kFedProx: G(d) = F(w+d) + prox/2‖d‖²,            linear = 0
  //   kSgd:     G(d) = F(w+d),                          linear = 0, prox = 0
  const bool use_linear = cfg.rule == LocalUpdateRule::kDane;
  const double prox =
      cfg.rule == LocalUpdateRule::kSgd ? 0.0 : cfg.sigma1;

  LocalUpdate out;
  nn::ParamVec local_grad;
  out.loss_before = scratch_at_w ? oracle.loss_grad_preloaded(&local_grad)
                                 : oracle.loss_grad(w, &local_grad);
  nn::ParamVec linear(p, 0.0f);
  if (use_linear) {
    if (global_grad.empty()) {
      // Bootstrap: treat ḡ = ∇F_k(w), so linear = (σ2 − 1)·∇F_k(w).
      for (std::size_t i = 0; i < p; ++i)
        linear[i] = static_cast<float>((cfg.sigma2 - 1.0) *
                                       static_cast<double>(local_grad[i]));
    } else {
      FEDL_CHECK_EQ(global_grad.size(), p);
      for (std::size_t i = 0; i < p; ++i)
        linear[i] = static_cast<float>(
            cfg.sigma2 * static_cast<double>(global_grad[i]) -
            static_cast<double>(local_grad[i]));
    }
  }

  // G(0) = F_k(w) + 0 + 0 for every rule.
  out.surrogate_initial = out.loss_before;

  nn::OptimizerPtr opt = nn::make_optimizer(cfg.optimizer, cfg.sgd_step);
  nn::ParamVec d(p, 0.0f);
  nn::ParamVec shifted = w;
  nn::ParamVec grad_f(p);
  double f_at_d = out.loss_before;

  for (std::size_t step = 0; step < cfg.sgd_steps; ++step) {
    // ∇G(d) = ∇F_k(w + d) + prox·d + linear.
    nn::ParamVec g(p);
    if (step == 0) {
      grad_f = local_grad;  // already computed at w (= w + 0)
    } else {
      f_at_d = oracle.loss_grad(shifted, &grad_f);
    }
    for (std::size_t i = 0; i < p; ++i)
      g[i] = grad_f[i] + static_cast<float>(prox) * d[i] + linear[i];
    if (cfg.grad_clip > 0.0) clip_norm(g, cfg.grad_clip);
    // The optimizer owns the update direction; track the total correction d
    // and the shifted parameters together.
    nn::ParamVec before = d;
    opt->step(d, g);
    for (std::size_t i = 0; i < p; ++i) shifted[i] += d[i] - before[i];
  }

  // Final surrogate value and gradient for the η estimate.
  f_at_d = oracle.loss_grad(shifted, &grad_f);
  out.loss_after = f_at_d;
  double g_sq = 0.0;
  double lin_dot = 0.0;
  double d_sq = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    const double gi = static_cast<double>(grad_f[i]) +
                      prox * static_cast<double>(d[i]) +
                      static_cast<double>(linear[i]);
    g_sq += gi * gi;
    lin_dot += static_cast<double>(linear[i]) * static_cast<double>(d[i]);
    d_sq += static_cast<double>(d[i]) * static_cast<double>(d[i]);
  }
  out.grad_norm = std::sqrt(g_sq);
  out.surrogate_final = f_at_d + 0.5 * prox * d_sq + lin_dot;

  // Strong-convexity lower bound: G* ≥ G(d) − ‖∇G(d)‖² / (2(γ + prox)).
  const double curvature = cfg.gamma + prox;
  FEDL_CHECK_GT(curvature, 0.0)
      << "kSgd needs gamma > 0 (Model::l2_reg) for the eta estimate";
  const double gap_final = g_sq / (2.0 * curvature);
  const double gap_initial = std::max(
      out.surrogate_initial - (out.surrogate_final - gap_final), 1e-12);
  out.eta = clamp(gap_final / gap_initial, 0.0, 1.0 - 1e-6);

  out.d = std::move(d);
  return out;
}

}  // namespace fedl::fl
