#include "fl/engine.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "parallel/parallel_for.h"
#include "tensor/ops.h"

namespace fedl::fl {
namespace {

// Engine-level telemetry: epoch/client-task volume, fault events, and the
// realized fan-out shape. All counters, so the hot path stays a few relaxed
// atomic ops and results remain bit-identical at any thread count.
const obs::Counter& epochs_run_counter() {
  static const obs::Counter c("fl.epochs");
  return c;
}
const obs::Counter& client_iterations_counter() {
  static const obs::Counter c("fl.client_iterations");
  return c;
}
const obs::Counter& dropouts_counter() {
  static const obs::Counter c("fl.dropouts");
  return c;
}
const obs::Histogram& selected_hist() {
  static const obs::Histogram h("fl.epoch_selected", {1, 2, 4, 8, 16, 32, 64});
  return h;
}

}  // namespace

FlEngine::FlEngine(const data::Dataset* train, const data::Dataset* test,
                   sim::EdgeEnvironment* env, nn::Model model,
                   EngineConfig cfg)
    : train_(train),
      test_(test),
      env_(env),
      model_(std::move(model)),
      cfg_(cfg),
      rng_(cfg.seed) {
  FEDL_CHECK(train != nullptr);
  FEDL_CHECK(test != nullptr);
  FEDL_CHECK(env != nullptr);
  FEDL_CHECK_GT(cfg_.batch_cap, 0u);
  FEDL_CHECK_GT(cfg_.eval_cap, 0u);
  w_ = model_.params_flat();
  test_batch_ = test_->head(cfg_.eval_cap);
  compressor_ = compress::make_compressor(cfg_.compressor,
                                          env_->num_clients(), cfg_.seed ^ 0x5eedULL);
  const std::size_t threads =
      cfg_.num_threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : cfg_.num_threads;
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

void FlEngine::run_clients(const std::vector<std::size_t>& idx,
                           const std::function<void(std::size_t)>& body) {
  if (!pool_ || idx.size() <= 1) {
    for (std::size_t i : idx) body(i);
    return;
  }
  parallel_for(*pool_, 0, idx.size(),
               [&](std::size_t j) { body(idx[j]); });
}

nn::Model* FlEngine::client_scratch(std::size_t i) {
  // Replicas are grown on the main thread (run_epoch) before any fan-out, so
  // indexing here is safe from worker threads.
  if (!pool_) return &model_;
  FEDL_CHECK_LT(i, replicas_.size());
  return &replicas_[i];
}

void FlEngine::set_global_params(nn::ParamVec w) {
  FEDL_CHECK_EQ(w.size(), w_.size());
  w_ = std::move(w);
}

nn::Batch FlEngine::client_batch(std::size_t client) {
  const auto& indices = env_->client_data(client);
  FEDL_CHECK(!indices.empty()) << "client " << client << " has no epoch data";
  if (indices.size() <= cfg_.batch_cap) return train_->gather(indices);
  auto pick = rng_.sample_without_replacement(indices.size(), cfg_.batch_cap);
  std::vector<std::size_t> chosen(pick.size());
  for (std::size_t i = 0; i < pick.size(); ++i) chosen[i] = indices[pick[i]];
  return train_->gather(chosen);
}

double FlEngine::loss_on_indices(const std::vector<std::size_t>& indices) {
  if (indices.empty()) return 0.0;
  std::vector<std::size_t> capped = indices;
  if (capped.size() > cfg_.eval_cap) {
    auto pick = rng_.sample_without_replacement(capped.size(), cfg_.eval_cap);
    std::vector<std::size_t> chosen(pick.size());
    for (std::size_t i = 0; i < pick.size(); ++i) chosen[i] = capped[pick[i]];
    capped = std::move(chosen);
  }
  model_.set_params_flat(w_);
  return model_.evaluate(train_->gather(capped)).loss;
}

nn::EvalResult FlEngine::evaluate_test() {
  model_.set_params_flat(w_);
  return model_.evaluate(test_batch_);
}

EpochOutcome FlEngine::run_epoch(const std::vector<std::size_t>& selected,
                                 std::size_t iterations) {
  FEDL_PROFILE_SCOPE("fl.run_epoch");
  epochs_run_counter().add();
  selected_hist().observe(static_cast<double>(selected.size()));
  const sim::EpochContext& ctx = env_->context();
  EpochOutcome out;
  out.epoch = ctx.epoch;
  out.selected = selected;
  out.num_iterations = selected.empty() ? 0 : iterations;

  const std::size_t p = w_.size();
  const std::size_t s = selected.size();

  if (s > 0) {
    FEDL_CHECK_GT(iterations, 0u);
    // One minibatch per client per epoch; the data a client holds is fixed
    // within the epoch (paper: D_{t,k} is per-epoch).
    std::vector<nn::Batch> batches;
    batches.reserve(s);
    std::vector<double> weights(s);  // ϑ_k ∝ D_{t,k}
    double total_data = 0.0;
    for (std::size_t i = 0; i < s; ++i) {
      const std::size_t k = selected[i];
      const auto* obs = ctx.find(k);
      FEDL_CHECK(obs != nullptr) << "selected client " << k
                                 << " is not available in epoch " << ctx.epoch;
      batches.push_back(client_batch(k));
      weights[i] = static_cast<double>(obs->data_size);
      total_data += weights[i];
    }
    for (auto& wgt : weights) wgt /= total_data;

    out.client_eta.assign(s, 0.0);
    out.client_loss_reduction.assign(s, 0.0);
    out.client_completed_iters.assign(s, 0);

    // Grow the scratch-model pool before any fan-out so worker threads only
    // ever index it (one independent replica per selected client).
    if (pool_)
      while (replicas_.size() < s) replicas_.push_back(model_.clone());

    std::vector<double> payload_bits(s, 0.0);  // last iteration's uplink size

    // Fault injection: a failing client dies before completing iteration
    // drop_iter[i] (== iterations means it survives the epoch).
    std::vector<std::size_t> drop_iter(s, iterations);
    if (cfg_.faults.dropout_prob > 0.0) {
      for (std::size_t i = 0; i < s; ++i) {
        if (rng_.bernoulli(cfg_.faults.dropout_prob)) {
          drop_iter[i] = static_cast<std::size_t>(rng_.uniform_int(
              0, static_cast<std::int64_t>(iterations) - 1));
          ++out.num_dropped;
        }
      }
    }
    dropouts_counter().add(out.num_dropped);
    auto alive = [&](std::size_t i, std::size_t it) {
      return it < drop_iter[i];
    };

    // Per-client scratch buffers reused across iterations; slot i is only
    // ever touched by the task working on client i, so fan-outs are race
    // free and the ordered reductions below are deterministic at any thread
    // count (bit-identical to running the clients inline).
    std::vector<nn::ParamVec> grads(s);
    std::vector<LocalUpdate> updates(s);
    std::vector<compress::CompressedUpdate> compressed(s);

    nn::ParamVec global_grad;  // ḡ from the previous phase (empty: bootstrap)
    for (std::size_t it = 0; it < iterations; ++it) {
      // Clients still alive this iteration (weights renormalized).
      std::vector<std::size_t> alive_idx;
      alive_idx.reserve(s);
      double alive_weight = 0.0;
      for (std::size_t i = 0; i < s; ++i) {
        if (!alive(i, it)) continue;
        alive_idx.push_back(i);
        alive_weight += weights[i];
      }
      if (alive_idx.empty()) break;  // every participant failed: epoch ends
      for (std::size_t i : alive_idx) ++out.client_completed_iters[i];
      client_iterations_counter().add(alive_idx.size());

      // Phase 1 (clients, concurrent): local gradients ∇F_k(w); then the
      // server reduces ḡ = Σ ϑ_k ∇F_k(w) in client order.
      {
        FEDL_PROFILE_SCOPE("fl.grad_phase");
        run_clients(alive_idx, [&](std::size_t i) {
          FEDL_PROFILE_SCOPE("fl.client_grad");
          LocalOracle oracle(client_scratch(i), &batches[i]);
          oracle.loss_grad(w_, &grads[i]);
        });
      }
      nn::ParamVec gbar(p, 0.0f);
      for (std::size_t i : alive_idx)
        axpy(static_cast<float>(weights[i] / alive_weight), grads[i], gbar);
      global_grad = std::move(gbar);

      // Phase 2 (clients, concurrent): DANE corrections, compressed for the
      // uplink; per-client compressor state keeps concurrent calls safe.
      {
        FEDL_PROFILE_SCOPE("fl.dane_phase");
        run_clients(alive_idx, [&](std::size_t i) {
          FEDL_PROFILE_SCOPE("fl.client_dane");
          LocalOracle oracle(client_scratch(i), &batches[i]);
          updates[i] = dane_local_step(oracle, w_, global_grad, cfg_.dane);
          compressed[i] = compressor_->apply(updates[i].d, selected[i]);
        });
      }

      // Phase 3 (server): ordered reduction into the global model.
      FEDL_PROFILE_SCOPE("fl.aggregate");
      nn::ParamVec agg(p, 0.0f);
      for (std::size_t i : alive_idx) {
        out.client_eta[i] = std::max(out.client_eta[i], updates[i].eta);
        out.client_loss_reduction[i] +=
            updates[i].loss_before - updates[i].loss_after;
        payload_bits[i] = compressed[i].payload_bits;
        axpy(1.0f, compressed[i].restored, agg);
      }
      const double denom =
          cfg_.aggregation == AggregationRule::kPaperMean
              ? static_cast<double>(ctx.available.size())
              : static_cast<double>(alive_idx.size());
      axpy(static_cast<float>(1.0 / denom), agg, w_);
    }
    for (double e : out.client_eta) out.eta_max = std::max(out.eta_max, e);

    // Latency & cost from the analytical model; uplink times come from the
    // environment's configured FDMA bandwidth policy. Without compression
    // the paper's constant payload s applies; with compression each client
    // uploads its (smaller) compressed payload.
    out.client_latency_s.assign(s, 0.0);
    if (cfg_.compressor != "none") {
      // A client that died before ever uploading still sent a header.
      for (auto& b : payload_bits)
        if (b <= 0.0) b = 64.0;
    }
    const std::vector<double> upload =
        cfg_.compressor == "none"
            ? env_->realized_upload_times(selected)
            : env_->realized_upload_times(selected, payload_bits);
    double max_latency = 0.0;
    for (std::size_t i = 0; i < s; ++i) {
      const std::size_t k = selected[i];
      const auto* obs = ctx.find(k);
      const double per_iter = obs->tau_loc + upload[i];
      out.client_latency_s[i] = static_cast<double>(iterations) * per_iter;
      // A failed client costs a timeout: the server waited past its nominal
      // finish time before declaring it dead.
      if (drop_iter[i] < iterations)
        out.client_latency_s[i] *= cfg_.faults.timeout_multiplier;
      max_latency = std::max(max_latency, out.client_latency_s[i]);
      out.cost += obs->cost;
    }
    out.latency_s = max_latency;
  }

  // Evaluation at the end-of-epoch model.
  std::vector<std::size_t> selected_data;
  std::vector<std::size_t> all_data;
  for (const auto& obs : ctx.available) {
    const auto& idx = env_->client_data(obs.id);
    all_data.insert(all_data.end(), idx.begin(), idx.end());
    if (std::find(selected.begin(), selected.end(), obs.id) != selected.end())
      selected_data.insert(selected_data.end(), idx.begin(), idx.end());
  }
  out.train_loss_selected = loss_on_indices(selected_data);
  out.train_loss_all = loss_on_indices(all_data);
  const nn::EvalResult test = evaluate_test();
  out.test_loss = test.loss;
  out.test_accuracy = test.accuracy;

  FEDL_DEBUG << "epoch " << out.epoch << " |S|=" << s << " iters="
             << out.num_iterations << " latency=" << out.latency_s
             << "s cost=" << out.cost << " loss=" << out.train_loss_all
             << " acc=" << out.test_accuracy;
  return out;
}

}  // namespace fedl::fl
