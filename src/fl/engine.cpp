#include "fl/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/time_series.h"
#include "parallel/parallel_for.h"
#include "parallel/scheduler.h"
#include "tensor/ops.h"

namespace fedl::fl {
namespace {

// Engine-level telemetry: epoch/client-task volume, fault events, and the
// realized fan-out shape. All counters, so the hot path stays a few relaxed
// atomic ops and results remain bit-identical at any thread count.
const obs::Counter& epochs_run_counter() {
  static const obs::Counter c("fl.epochs");
  return c;
}
const obs::Counter& client_iterations_counter() {
  static const obs::Counter c("fl.client_iterations");
  return c;
}
const obs::Counter& dropouts_counter() {
  static const obs::Counter c("fl.dropouts");
  return c;
}
const obs::Histogram& selected_hist() {
  static const obs::Histogram h("fl.epoch_selected", {1, 2, 4, 8, 16, 32, 64});
  return h;
}
const obs::Gauge& replica_bytes_gauge() {
  static const obs::Gauge g("fl.replica_bytes");
  return g;
}
const obs::Gauge& replica_count_gauge() {
  static const obs::Gauge g("fl.replicas");
  return g;
}

// Per-epoch trajectory series (obs/time_series.h). Disabled recorders cost
// one relaxed load per sample, so run_epoch stays allocation-free and
// within noise when --series-out is off.
struct EpochSeries {
  obs::Series train_loss_all{"fl.train_loss_all"};
  obs::Series train_loss_selected{"fl.train_loss_selected"};
  obs::Series test_loss{"fl.test_loss"};
  obs::Series test_accuracy{"fl.test_accuracy"};
  obs::Series eta_max{"fl.eta_max"};
  obs::Series latency_s{"fl.latency_s"};
  obs::Series epoch_cost{"fl.epoch_cost"};
  obs::Series num_selected{"fl.num_selected"};
  obs::Series num_dropped{"fl.num_dropped"};
};
const EpochSeries& epoch_series() {
  static const EpochSeries s;
  return s;
}

}  // namespace

FlEngine::FlEngine(const data::Dataset* train, const data::Dataset* test,
                   sim::EdgeEnvironment* env, nn::Model model,
                   EngineConfig cfg)
    : train_(train),
      test_(test),
      env_(env),
      model_(std::move(model)),
      cfg_(cfg),
      rng_(cfg.seed) {
  FEDL_CHECK(train != nullptr);
  FEDL_CHECK(test != nullptr);
  FEDL_CHECK(env != nullptr);
  FEDL_CHECK_GT(cfg_.batch_cap, 0u);
  FEDL_CHECK_GT(cfg_.eval_cap, 0u);
  w_ = model_.params_flat();
  test_batch_ = test_->head(cfg_.eval_cap);
  compressor_ = compress::make_compressor(cfg_.compressor,
                                          env_->num_clients(), cfg_.seed ^ 0x5eedULL);
  selected_mask_.assign(env_->num_clients(), 0);
}

void FlEngine::run_clients(
    const std::vector<std::size_t>& idx,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (!can_parallel_ || idx.size() <= 1) {
    if (can_parallel_ && !idx.empty()) ensure_replicas(1);
    for (std::size_t i : idx) body(0, i);
    return;
  }
  // Lease extra worker slots from the process-wide budget for this phase.
  // `--threads K` pins the request at K-1 extra; `--threads 0` asks for the
  // trial's nominal share and steals whatever is idle beyond it. A zero
  // grant (budget contended) falls back to running the clients inline —
  // the trial's own slot always makes progress.
  Scheduler& sched = Scheduler::instance();
  const bool auto_fanout = cfg_.num_threads == 0;
  const std::size_t nominal =
      (auto_fanout ? sched.auto_share() : cfg_.num_threads) - 1;
  Scheduler::WorkerLease lease =
      sched.acquire_workers(nominal, idx.size() - 1, auto_fanout);
  // One replica per chunk, grown on the calling thread before any fan-out
  // so worker threads only ever index the pool.
  ensure_replicas(lease.granted() + 1);
  if (lease.granted() == 0) {
    for (std::size_t i : idx) body(0, i);
    return;
  }
  parallel_for_shared_indexed(
      sched.pool(), lease.granted(), 0, idx.size(),
      [&](std::size_t chunk, std::size_t j) { body(chunk, idx[j]); });
}

void FlEngine::ensure_replicas(std::size_t slots) {
  while (replicas_.size() < slots)
    replicas_.push_back(model_.shared_replica());
  epoch_max_slots_ = std::max(epoch_max_slots_, slots);
}

nn::Model* FlEngine::client_scratch(std::size_t slot) {
  if (!can_parallel_) return &model_;
  FEDL_CHECK_LT(slot, replicas_.size());
  return &replicas_[slot];
}

void FlEngine::set_global_params(nn::ParamVec w) {
  FEDL_CHECK_EQ(w.size(), w_.size());
  w_ = std::move(w);
}

void FlEngine::gather_client_batch(std::size_t client, nn::Batch* out) {
  const auto& indices = env_->client_data(client);
  FEDL_CHECK(!indices.empty()) << "client " << client << " has no epoch data";
  if (indices.size() <= cfg_.batch_cap) {
    train_->gather_into(indices, out);
    return;
  }
  auto pick = rng_.sample_without_replacement(indices.size(), cfg_.batch_cap);
  scratch_idx_.resize(pick.size());
  for (std::size_t i = 0; i < pick.size(); ++i)
    scratch_idx_[i] = indices[pick[i]];
  train_->gather_into(scratch_idx_, out);
}

double FlEngine::loss_on_indices(const std::vector<std::size_t>& indices) {
  if (indices.empty()) return 0.0;
  const std::vector<std::size_t>* use = &indices;
  if (indices.size() > cfg_.eval_cap) {
    auto pick = rng_.sample_without_replacement(indices.size(), cfg_.eval_cap);
    scratch_idx_.resize(pick.size());
    for (std::size_t i = 0; i < pick.size(); ++i)
      scratch_idx_[i] = indices[pick[i]];
    use = &scratch_idx_;
  }
  model_.set_params_flat(w_);
  train_->gather_into(*use, &eval_batch_);
  return model_.evaluate(eval_batch_).loss;
}

nn::EvalResult FlEngine::evaluate_test() {
  model_.set_params_flat(w_);
  return model_.evaluate(test_batch_);
}

void FlEngine::trim_replicas() {
  // Shrink the replica pool back to this epoch's realized fan-out width: a
  // wide epoch must not pin worst-case replica buffers forever. The gauges
  // report what the pool actually pins (params only when copy-on-write
  // detached them, plus gradients and activation caches).
  if (replicas_.size() > epoch_max_slots_) replicas_.resize(epoch_max_slots_);
  std::size_t replica_bytes = 0;
  for (const auto& r : replicas_) replica_bytes += r.owned_bytes();
  replica_bytes_gauge().set(static_cast<double>(replica_bytes));
  replica_count_gauge().set(static_cast<double>(replicas_.size()));
}

CohortEval FlEngine::evaluate_cohort(const std::vector<std::size_t>& selected) {
  // Selected-membership is answered by a per-client-id mask built once,
  // keeping this O(|available| + |selected|).
  CohortEval ev;
  const sim::EpochContext& ctx = env_->context();
  for (std::size_t k : selected) {
    FEDL_CHECK_LT(k, selected_mask_.size());
    selected_mask_[k] = 1;
  }
  selected_data_.clear();
  all_data_.clear();
  for (const auto& obs : ctx.available) {
    const auto& idx = env_->client_data(obs.id);
    all_data_.insert(all_data_.end(), idx.begin(), idx.end());
    if (obs.id < selected_mask_.size() && selected_mask_[obs.id])
      selected_data_.insert(selected_data_.end(), idx.begin(), idx.end());
  }
  for (std::size_t k : selected) selected_mask_[k] = 0;
  ev.train_loss_selected = loss_on_indices(selected_data_);
  ev.train_loss_all = loss_on_indices(all_data_);
  const nn::EvalResult test = evaluate_test();
  ev.test_loss = test.loss;
  ev.test_accuracy = test.accuracy;
  return ev;
}

void FlEngine::run_local_jobs(const std::vector<LocalTrainJob>& jobs,
                              std::vector<LocalTrainResult>* results) {
  FEDL_PROFILE_SCOPE("fl.local_jobs");
  FEDL_CHECK(results != nullptr);
  results->resize(jobs.size());
  if (jobs.empty()) return;
  const std::size_t s = jobs.size();
  can_parallel_ =
      cfg_.num_threads != 1 && Scheduler::instance().thread_budget() > 1;
  epoch_max_slots_ = 0;

  // Minibatches gathered serially in job order (fixed RNG consumption).
  if (batches_.size() < s) batches_.resize(s);
  for (std::size_t i = 0; i < s; ++i) {
    FEDL_CHECK_GT(jobs[i].iterations, 0u);
    gather_client_batch(jobs[i].client, &batches_[i]);
  }
  if (local_w_.size() < s) local_w_.resize(s);

  job_idx_.resize(s);
  for (std::size_t i = 0; i < s; ++i) job_idx_[i] = i;
  run_clients(job_idx_, [&](std::size_t slot, std::size_t i) {
    FEDL_PROFILE_SCOPE("fl.client_local_job");
    nn::Model* m = client_scratch(slot);
    LocalOracle oracle(m, &batches_[i]);
    LocalTrainResult& res = (*results)[i];
    res = LocalTrainResult{};
    // Local trajectory: w_local starts at the dispatch-time global model
    // and walks its own DANE steps with ḡ = ∇F_k(w_local) (empty
    // global_grad). Every evaluation sets the scratch params explicitly
    // (scratch_at_w = false), so serial runs can reuse model_ across jobs
    // and replicas copy-on-write detach safely — bit-identical either way.
    nn::ParamVec& w_local = local_w_[i];
    w_local = w_;
    const nn::ParamVec no_global_grad;
    for (std::size_t it = 0; it < jobs[i].iterations; ++it) {
      const LocalUpdate u =
          dane_local_step(oracle, w_local, no_global_grad, cfg_.dane,
                          /*scratch_at_w=*/false);
      axpy(1.0f, u.d, w_local);
      res.eta = std::max(res.eta, u.eta);
      res.loss_reduction += u.loss_before - u.loss_after;
      ++res.completed_iters;
    }
    client_iterations_counter().add(res.completed_iters);
    // The uplink carries d = w_local − w_base through the compressor
    // (per-client state, concurrent-safe).
    for (std::size_t p = 0; p < w_local.size(); ++p) w_local[p] -= w_[p];
    compress::CompressedUpdate cu =
        compressor_->apply(w_local, jobs[i].client);
    res.payload_bits = cu.payload_bits;
    res.update = std::move(cu.restored);
  });
  trim_replicas();
}

EpochOutcome FlEngine::run_epoch(const std::vector<std::size_t>& selected,
                                 std::size_t iterations) {
  FEDL_PROFILE_SCOPE("fl.run_epoch");
  epochs_run_counter().add();
  selected_hist().observe(static_cast<double>(selected.size()));
  const sim::EpochContext& ctx = env_->context();
  EpochOutcome out;
  out.epoch = ctx.epoch;
  out.selected = selected;
  out.num_iterations = selected.empty() ? 0 : iterations;

  const std::size_t p = w_.size();
  const std::size_t s = selected.size();

  // Fan-out availability is re-checked per epoch so a reconfigured
  // scheduler budget takes effect on the next epoch; num_threads == 1 opts
  // out entirely (pure serial path, no scheduler interaction).
  can_parallel_ =
      cfg_.num_threads != 1 && Scheduler::instance().thread_budget() > 1;
  epoch_max_slots_ = 0;  // replica-pool high-water mark for this epoch

  if (s > 0) {
    FEDL_CHECK_GT(iterations, 0u);
    // One minibatch per client per epoch; the data a client holds is fixed
    // within the epoch (paper: D_{t,k} is per-epoch). Batches are gathered
    // into grow-only per-slot buffers (no fresh nn::Batch copies).
    if (batches_.size() < s) batches_.resize(s);
    weights_.resize(s);  // ϑ_k ∝ D_{t,k}
    double total_data = 0.0;
    for (std::size_t i = 0; i < s; ++i) {
      const std::size_t k = selected[i];
      const auto* obs = ctx.find(k);
      FEDL_CHECK(obs != nullptr) << "selected client " << k
                                 << " is not available in epoch " << ctx.epoch;
      gather_client_batch(k, &batches_[i]);
      weights_[i] = static_cast<double>(obs->data_size);
      total_data += weights_[i];
    }
    for (auto& wgt : weights_) wgt /= total_data;

    out.client_eta.assign(s, 0.0);
    out.client_loss_reduction.assign(s, 0.0);
    out.client_completed_iters.assign(s, 0);

    payload_bits_.assign(s, 0.0);  // last iteration's uplink size

    // Fault injection: a failing client dies before completing iteration
    // drop_iter_[i] (== iterations means it survives the epoch).
    drop_iter_.assign(s, iterations);
    if (cfg_.faults.dropout_prob > 0.0) {
      for (std::size_t i = 0; i < s; ++i) {
        if (rng_.bernoulli(cfg_.faults.dropout_prob)) {
          drop_iter_[i] = static_cast<std::size_t>(rng_.uniform_int(
              0, static_cast<std::int64_t>(iterations) - 1));
          ++out.num_dropped;
        }
      }
    }
    dropouts_counter().add(out.num_dropped);
    auto alive = [&](std::size_t i, std::size_t it) {
      return it < drop_iter_[i];
    };

    // Per-client scratch buffers reused across iterations (and across
    // epochs — grow-only); slot i is only ever touched by the task working
    // on client i, so fan-outs are race free and the ordered reductions
    // below are deterministic at any thread count (bit-identical to running
    // the clients inline).
    if (grads_.size() < s) grads_.resize(s);
    if (updates_.size() < s) updates_.resize(s);
    if (compressed_.size() < s) compressed_.resize(s);
    gbar_.resize(p);
    agg_.resize(p);

    for (std::size_t it = 0; it < iterations; ++it) {
      // Load w into the engine's model once per iteration: shared-weight
      // replicas borrow this storage (so every client reads w without its
      // own copy), and the serial path's phase-1 evaluations run against it
      // directly. Nothing writes model_'s parameters until the next
      // iteration (replicas copy-on-write; serial phase 2 shifts them but
      // this reload restores w).
      model_.set_params_flat(w_);

      // Clients still alive this iteration (weights renormalized).
      alive_idx_.clear();
      double alive_weight = 0.0;
      for (std::size_t i = 0; i < s; ++i) {
        if (!alive(i, it)) continue;
        alive_idx_.push_back(i);
        alive_weight += weights_[i];
      }
      if (alive_idx_.empty()) break;  // every participant failed: epoch ends
      for (std::size_t i : alive_idx_) ++out.client_completed_iters[i];
      client_iterations_counter().add(alive_idx_.size());

      // Phase 1 (clients, concurrent): local gradients ∇F_k(w); then the
      // server reduces ḡ = Σ ϑ_k ∇F_k(w) in client order.
      {
        FEDL_PROFILE_SCOPE("fl.grad_phase");
        run_clients(alive_idx_, [&](std::size_t slot, std::size_t i) {
          FEDL_PROFILE_SCOPE("fl.client_grad");
          nn::Model* m = client_scratch(slot);
          // Replicas re-borrow the global weights (a previous client on
          // this slot may have detached them); params now hold w exactly,
          // so the evaluation skips the per-client O(|w|) copy.
          if (m != &model_) m->attach_params(model_);
          LocalOracle oracle(m, &batches_[i]);
          oracle.loss_grad_preloaded(&grads_[i]);
        });
      }
      std::fill(gbar_.begin(), gbar_.end(), 0.0f);
      for (std::size_t i : alive_idx_)
        axpy(static_cast<float>(weights_[i] / alive_weight), grads_[i], gbar_);

      // Phase 2 (clients, concurrent): DANE corrections against ḡ,
      // compressed for the uplink; per-client compressor state keeps
      // concurrent calls safe. gbar_ is read-only during the fan-out.
      {
        FEDL_PROFILE_SCOPE("fl.dane_phase");
        run_clients(alive_idx_, [&](std::size_t slot, std::size_t i) {
          FEDL_PROFILE_SCOPE("fl.client_dane");
          nn::Model* m = client_scratch(slot);
          const bool shared = m != &model_;
          if (shared) m->attach_params(model_);
          LocalOracle oracle(m, &batches_[i]);
          // Shared replicas start at w (borrowed), so the initial F_k(w)
          // evaluation is preloaded; the shifted-point evaluations inside
          // detach the replica's params into private step buffers
          // (copy-on-write) and never touch model_. The serial path keeps
          // the classic set-params-first behavior — bit-identical.
          updates_[i] =
              dane_local_step(oracle, w_, gbar_, cfg_.dane, shared);
          compressed_[i] = compressor_->apply(updates_[i].d, selected[i]);
        });
      }

      // Phase 3 (server): ordered reduction into the global model.
      FEDL_PROFILE_SCOPE("fl.aggregate");
      std::fill(agg_.begin(), agg_.end(), 0.0f);
      for (std::size_t i : alive_idx_) {
        out.client_eta[i] = std::max(out.client_eta[i], updates_[i].eta);
        out.client_loss_reduction[i] +=
            updates_[i].loss_before - updates_[i].loss_after;
        payload_bits_[i] = compressed_[i].payload_bits;
        axpy(1.0f, compressed_[i].restored, agg_);
      }
      const double denom =
          cfg_.aggregation == AggregationRule::kPaperMean
              ? static_cast<double>(ctx.available.size())
              : static_cast<double>(alive_idx_.size());
      axpy(static_cast<float>(1.0 / denom), agg_, w_);
    }
    for (double e : out.client_eta) out.eta_max = std::max(out.eta_max, e);

    // Latency & cost from the analytical model; uplink times come from the
    // environment's configured FDMA bandwidth policy. Without compression
    // the paper's constant payload s applies; with compression each client
    // uploads its (smaller) compressed payload.
    out.client_latency_s.assign(s, 0.0);
    if (cfg_.compressor != "none") {
      // A client that died before ever uploading still sent a header.
      for (auto& b : payload_bits_)
        if (b <= 0.0) b = 64.0;
    }
    const std::vector<double> upload =
        cfg_.compressor == "none"
            ? env_->realized_upload_times(selected)
            : env_->realized_upload_times(selected, payload_bits_);
    double max_latency = 0.0;
    for (std::size_t i = 0; i < s; ++i) {
      const std::size_t k = selected[i];
      const auto* obs = ctx.find(k);
      const double per_iter = obs->tau_loc + upload[i];
      out.client_latency_s[i] = static_cast<double>(iterations) * per_iter;
      // A failed client costs a timeout: the server waited past its nominal
      // finish time before declaring it dead.
      if (drop_iter_[i] < iterations)
        out.client_latency_s[i] *= cfg_.faults.timeout_multiplier;
      max_latency = std::max(max_latency, out.client_latency_s[i]);
      out.cost += obs->cost;
    }
    out.latency_s = max_latency;
  }

  trim_replicas();

  // Evaluation at the end-of-epoch model (extracted so the event-driven
  // path evaluates cohorts with the identical code and RNG order).
  const CohortEval ev = evaluate_cohort(selected);
  out.train_loss_selected = ev.train_loss_selected;
  out.train_loss_all = ev.train_loss_all;
  out.test_loss = ev.test_loss;
  out.test_accuracy = ev.test_accuracy;

  {
    const EpochSeries& series = epoch_series();
    const auto epoch = static_cast<std::uint64_t>(out.epoch);
    series.train_loss_all.sample(epoch, out.train_loss_all);
    series.train_loss_selected.sample(epoch, out.train_loss_selected);
    series.test_loss.sample(epoch, out.test_loss);
    series.test_accuracy.sample(epoch, out.test_accuracy);
    series.eta_max.sample(epoch, out.eta_max);
    series.latency_s.sample(epoch, out.latency_s);
    series.epoch_cost.sample(epoch, out.cost);
    series.num_selected.sample(epoch, static_cast<double>(selected.size()));
    series.num_dropped.sample(epoch, static_cast<double>(out.num_dropped));
  }

  FEDL_DEBUG << "epoch " << out.epoch << " |S|=" << s << " iters="
             << out.num_iterations << " latency=" << out.latency_s
             << "s cost=" << out.cost << " loss=" << out.train_loss_all
             << " acc=" << out.test_accuracy;
  return out;
}

}  // namespace fedl::fl
