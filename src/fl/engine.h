// The federated training engine — Algorithm 1's inner loop (lines 2–5).
//
// Given a committed selection and iteration count for the current epoch, the
// engine runs the DANE iterations, aggregates on the server, accounts the
// modeled latency (paper §3.2 — the simulated clock, see DESIGN.md
// substitution 4) and measures everything the online learner needs as
// feedback: realized η_{t,k}, per-client marginal loss reductions, global
// loss F_t(w^{l_t}), test accuracy.
#pragma once

#include <cstdint>
#include <vector>

#include <functional>
#include <memory>

#include "compress/compressor.h"
#include "data/dataset.h"
#include "fl/dane.h"
#include "nn/model.h"
#include "sim/environment.h"

namespace fedl::fl {

enum class AggregationRule {
  // w += (1/|E_t|) Σ_k x_k d_k — the paper's formula verbatim.
  kPaperMean,
  // w += (1/|S_t|) Σ_{k∈S} d_k — normalize by the number of participants;
  // the standard FedAvg-style mean (default; see DESIGN.md §4).
  kSelectedMean,
};

// Mid-epoch client failure model (challenge 1's availability uncertainty,
// extended into the epoch itself): a selected client may die before
// finishing its iterations. Its partial updates up to the failure iteration
// are aggregated; afterwards it contributes nothing, but the server still
// pays a timeout on the latency accounting (it waited before giving up).
struct FaultSpec {
  double dropout_prob = 0.0;       // per selected client per epoch
  double timeout_multiplier = 1.5;  // waiting cost relative to nominal latency
};

struct EngineConfig {
  DaneConfig dane;
  AggregationRule aggregation = AggregationRule::kSelectedMean;
  FaultSpec faults;
  std::size_t batch_cap = 64;   // max samples per client minibatch
  std::size_t eval_cap = 512;   // max samples for loss/accuracy evaluation
  // Uplink update compression ("none", "quant8", "quant4", "topk10",
  // "topk1"); "none" reproduces the paper's constant payload s.
  std::string compressor = "none";
  // Per-client fan-out policy (the paper's cost model d_k(t) =
  // l_t(τ^loc + τ^cm) assumes clients train concurrently). 1 runs the
  // clients inline on the caller with no scheduler interaction; 0 draws the
  // fan-out from the process-wide Scheduler's remaining thread budget each
  // phase (nominal share budget/jobs, stealing idle slots); K > 1 requests
  // at most K-1 extra workers per fan-out (still bounded by the budget).
  // Any value produces bit-identical EpochOutcomes: per-client work is
  // independent (per-slot shared-weight model replicas, per-client
  // compressor state) and the aggregation reduces in client order on the
  // calling thread.
  std::size_t num_threads = 1;
  std::uint64_t seed = 17;
};

// One unit of asynchronous local work: client `client` trains `iterations`
// DANE steps starting from the engine's current global model, with ḡ taken
// as its own local gradient (no cross-client gradient averaging — in the
// event-driven mode there is no global barrier at which ḡ could be formed).
struct LocalTrainJob {
  std::size_t client = 0;
  std::size_t iterations = 0;
};

// What one LocalTrainJob produced, measured against the dispatch-time model.
struct LocalTrainResult {
  nn::ParamVec update;          // compressed-restored d = w_local − w_base
  double eta = 0.0;             // max η over the iterations
  double loss_reduction = 0.0;  // Σ_i F_k(before) − F_k(after)
  double payload_bits = 0.0;    // uplink size of the final update
  std::size_t completed_iters = 0;
};

// End-of-cohort evaluation snapshot at the engine's current global model.
struct CohortEval {
  double train_loss_selected = 0.0;  // F̃ over the cohort's clients' data
  double train_loss_all = 0.0;       // F over all currently-available data
  double test_loss = 0.0;
  double test_accuracy = 0.0;
};

struct EpochOutcome {
  std::size_t epoch = 0;
  std::vector<std::size_t> selected;
  std::size_t num_iterations = 0;
  double latency_s = 0.0;  // l_t · max_{k∈S}(τ^loc + τ^cm)
  double cost = 0.0;       // Σ_{k∈S} c_{t,k}
  double eta_max = 0.0;    // η_t = max_{k,i} η^i_{t,k}
  // Parallel to `selected`:
  std::vector<double> client_eta;             // max over iterations per client
  std::vector<double> client_loss_reduction;  // Σ_i F_k(w)−F_k(w+d), all iters
  std::vector<double> client_latency_s;       // d_k(t) realized
  // DANE iterations each client actually completed before dropping (equals
  // num_iterations for clients that survived the epoch). A client with zero
  // completed iterations produced no η/Δ observation at all.
  std::vector<std::size_t> client_completed_iters;
  double train_loss_selected = 0.0;  // F̃_t(w^{l_t})
  double train_loss_all = 0.0;       // F_t(w^{l_t})
  double test_loss = 0.0;
  double test_accuracy = 0.0;
  std::size_t num_dropped = 0;  // selected clients that failed mid-epoch
};

class FlEngine {
 public:
  // `train`/`test` outlive the engine; `env` supplies epoch context and must
  // have been advanced for the epoch being run.
  FlEngine(const data::Dataset* train, const data::Dataset* test,
           sim::EdgeEnvironment* env, nn::Model model, EngineConfig cfg);

  // Runs `iterations` DANE rounds with `selected` (client ids, all available
  // in the current context). Empty selection is a no-op epoch that still
  // evaluates the model.
  EpochOutcome run_epoch(const std::vector<std::size_t>& selected,
                         std::size_t iterations);

  const nn::ParamVec& global_params() const { return w_; }
  void set_global_params(nn::ParamVec w);
  std::size_t num_params() const { return w_.size(); }
  const EngineConfig& config() const { return cfg_; }

  // F(w) over (a cap of) the given sample indices at the current w.
  double loss_on_indices(const std::vector<std::size_t>& indices);

  // Loss/accuracy on the test set (capped at eval_cap samples).
  nn::EvalResult evaluate_test();

  // Runs every job's local training independently from the current global
  // model (the event-driven path: updates are NOT applied to w — the caller
  // buffers them and aggregates on flush). Minibatches are gathered on the
  // calling thread in job order, so the engine RNG stream is consumed
  // deterministically; the training itself fans out across scheduler worker
  // leases exactly like run_epoch's phases and is bit-identical at any
  // thread count (per-job state only, results reduced nowhere).
  void run_local_jobs(const std::vector<LocalTrainJob>& jobs,
                      std::vector<LocalTrainResult>* results);

  // The end-of-epoch evaluation block of run_epoch, reusable at cohort
  // resolution in event mode: losses over the cohort's / all available
  // clients' data and the test metrics, all at the current global model and
  // the environment's *current* epoch context. Consumes engine RNG in the
  // exact order run_epoch's epilogue does.
  CohortEval evaluate_cohort(const std::vector<std::size_t>& selected);

 private:
  // Gathers client k's per-epoch minibatch into `out` (reused storage).
  void gather_client_batch(std::size_t client, nn::Batch* out);

  // Runs body(slot, i) for every index in `idx` — fanned out across worker
  // slots leased from the process-wide Scheduler when the config allows it,
  // inline otherwise. `slot` identifies the chunk (0 = calling thread) and
  // indexes the replica pool; at most one live body per slot at a time.
  // Bodies must only touch per-index and per-slot state; the call blocks
  // until every index is done.
  void run_clients(
      const std::vector<std::size_t>& idx,
      const std::function<void(std::size_t, std::size_t)>& body);

  // Grows the shared-weight replica pool to at least `slots` entries and
  // records the epoch's high-water mark (run_epoch trims back to it).
  void ensure_replicas(std::size_t slots);

  // Trims the replica pool back to the epoch's fan-out high-water mark and
  // refreshes the fl.replica_bytes / fl.replicas gauges.
  void trim_replicas();

  // Scratch model for fan-out slot `slot`: a shared-weight replica when
  // training in parallel, the engine's own model when serial. Replicas are
  // interchangeable across clients — every use re-attaches the global
  // weights and overwrites gradients/caches — so the pool is keyed by
  // fan-out slot (≤ thread budget), not by selected client.
  nn::Model* client_scratch(std::size_t slot);

  const data::Dataset* train_;
  const data::Dataset* test_;
  sim::EdgeEnvironment* env_;
  nn::Model model_;  // scratch model, parameters swapped per evaluation
  EngineConfig cfg_;
  nn::ParamVec w_;   // global model
  Rng rng_;
  nn::Batch test_batch_;  // cached eval subset
  compress::CompressorPtr compressor_;
  bool can_parallel_ = false;  // fan-out possible this epoch (set per epoch)
  // Per-slot scratch models (parallel mode): parameters borrow model_'s
  // storage (shared-weight, copy-on-write under DANE's shifted-point
  // evaluations), gradients/caches are private. Sized to the epoch's
  // realized fan-out width and trimmed back each epoch, so replica memory
  // is O(slots × (|activations| + |grads|)) + O(|w|), not O(selected × |w|).
  std::vector<nn::Model> replicas_;
  std::size_t epoch_max_slots_ = 0;  // fan-out high-water mark this epoch

  // Grow-only hot-path buffers, reused across epochs and iterations so the
  // steady-state inner loop performs no heap allocation (the per-epoch
  // EpochOutcome vectors are the only fresh storage — they are handed out).
  std::vector<nn::Batch> batches_;    // per-selected-client minibatches
  std::vector<nn::ParamVec> grads_;   // per-client ∇F_k(w)
  std::vector<LocalUpdate> updates_;  // per-client DANE corrections
  std::vector<compress::CompressedUpdate> compressed_;
  nn::ParamVec gbar_;                 // ḡ ordered-reduction buffer
  nn::ParamVec agg_;                  // aggregation ordered-reduction buffer
  std::vector<double> weights_;       // ϑ_k per selected client
  std::vector<double> payload_bits_;  // last uplink size per client
  std::vector<std::size_t> drop_iter_;   // fault-injection schedule
  std::vector<std::size_t> alive_idx_;   // per-iteration survivor set
  std::vector<std::size_t> job_idx_;     // run_local_jobs fan-out index list
  std::vector<nn::ParamVec> local_w_;    // per-job local model buffers
  std::vector<std::size_t> scratch_idx_; // capped-sampling index buffer
  std::vector<std::size_t> selected_data_;  // epilogue sample index unions
  std::vector<std::size_t> all_data_;
  std::vector<char> selected_mask_;   // by client id, cleared per epoch
  nn::Batch eval_batch_;              // loss_on_indices gather buffer
};

}  // namespace fedl::fl
