#include "fl/event_engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "core/staleness.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/time_series.h"
#include "tensor/ops.h"

namespace fedl::fl {
namespace {

// Event-plane telemetry. Counters for event volume, gauges for the live
// clock/version/occupancy, a histogram for the staleness distribution the
// damping exponent acts on. All updates happen on the (single-threaded)
// event loop, so values are deterministic per seed.
const obs::Counter& dispatches_counter() {
  static const obs::Counter c("fl.async.dispatches");
  return c;
}
const obs::Counter& completes_counter() {
  static const obs::Counter c("fl.async.completes");
  return c;
}
const obs::Counter& drops_counter() {
  static const obs::Counter c("fl.async.drops");
  return c;
}
const obs::Counter& flushes_counter() {
  static const obs::Counter c("fl.async.flushes");
  return c;
}
const obs::Counter& timeout_flushes_counter() {
  static const obs::Counter c("fl.async.timeout_flushes");
  return c;
}
const obs::Gauge& version_gauge() {
  static const obs::Gauge g("fl.async.version");
  return g;
}
const obs::Gauge& inflight_gauge() {
  static const obs::Gauge g("fl.async.inflight");
  return g;
}
const obs::Gauge& vt_gauge() {
  static const obs::Gauge g("fl.async.vt");
  return g;
}
const obs::Histogram& staleness_hist() {
  static const obs::Histogram h("fl.async.staleness", {0, 1, 2, 4, 8, 16});
  return h;
}
// Flush-trajectory series (--series-out), keyed by model version.
struct AsyncSeries {
  obs::Series vt{"fl.async.vt"};
  obs::Series buffer_filled{"fl.async.buffer_filled"};
  obs::Series staleness_max{"fl.async.staleness_max"};
};
const AsyncSeries& async_series() {
  static const AsyncSeries s;
  return s;
}

}  // namespace

EventEngine::EventEngine(FlEngine* engine, sim::EdgeEnvironment* env,
                         AsyncConfig cfg, std::uint64_t seed)
    : engine_(engine), env_(env), cfg_(cfg), rng_(seed) {
  FEDL_CHECK(engine != nullptr);
  FEDL_CHECK(env != nullptr);
  FEDL_CHECK_GT(cfg_.buffer_k, 0u);
  FEDL_CHECK_GE(cfg_.staleness_exponent, 0.0);
  FEDL_CHECK_GE(cfg_.flush_timeout_s, 0.0);
  inflight_mask_.assign(env_->num_clients(), 0);
}

bool EventEngine::client_inflight(std::size_t id) const {
  return id < inflight_mask_.size() && inflight_mask_[id] != 0;
}

void EventEngine::dispatch(std::size_t epoch,
                           const std::vector<std::size_t>& selected,
                           std::size_t iterations, double cohort_cost) {
  FEDL_PROFILE_SCOPE("fl.async.dispatch");
  FEDL_CHECK(!selected.empty());
  FEDL_CHECK_GT(iterations, 0u);
  const std::size_t s = selected.size();
  last_dispatch_epoch_ = epoch;
  dispatches_counter().add(static_cast<std::uint64_t>(s));

  // The same analytical d_k(t) = l·(τ^loc + τ^cm) the lockstep engine
  // charges, split into l unit steps — event mode's advantage must come
  // from overlap, not from a friendlier latency model.
  const std::vector<double> step_s =
      env_->realized_completion_times(selected, 1);
  const FaultSpec& faults = engine_->config().faults;

  const std::size_t cohort_idx = cohorts_.size();
  cohorts_.push_back(Cohort{});
  Cohort& c = cohorts_.back();
  c.dispatch_vt = vt_;
  c.unresolved = s;
  EpochOutcome& out = c.out;
  out.epoch = epoch;
  out.selected = selected;
  out.num_iterations = iterations;
  out.cost = cohort_cost;
  out.client_eta.assign(s, 0.0);
  out.client_loss_reduction.assign(s, 0.0);
  out.client_latency_s.assign(s, 0.0);
  out.client_completed_iters.assign(s, 0);

  jobs_.clear();
  job_member_.clear();
  for (std::size_t i = 0; i < s; ++i) {
    const std::size_t k = selected[i];
    FEDL_CHECK_LT(k, inflight_mask_.size());
    FEDL_CHECK(inflight_mask_[k] == 0)
        << "client " << k << " dispatched while already in flight";
    // Fault injection at dispatch: an asynchronous dropout is a total loss
    // (no barrier collects partial iterations), so a failing member trains
    // nothing and resolves at the timeout of its nominal finish time.
    const bool dropped = faults.dropout_prob > 0.0 &&
                         rng_.bernoulli(faults.dropout_prob);
    const double nominal = static_cast<double>(iterations) * step_s[i];
    const double latency =
        dropped ? nominal * faults.timeout_multiplier : nominal;
    out.client_latency_s[i] = latency;
    out.latency_s = std::max(out.latency_s, latency);
    if (dropped) ++out.num_dropped;

    InFlight f;
    f.client = k;
    f.cohort = cohort_idx;
    f.member = i;
    f.dispatch_version = version_;
    f.steps_total = iterations;
    f.step_latency = step_s[i];
    f.dropped = dropped;
    const std::size_t entry = inflight_.size();
    inflight_.push_back(std::move(f));
    inflight_mask_[k] = 1;
    ++inflight_count_;
    // A dropped member resolves in one event at its timeout; a live one
    // completes its first unit step one step latency from now.
    queue_.push(
        QueuedEvent{vt_ + (dropped ? latency : step_s[i]), k, seq_++, entry});
    if (!dropped) {
      jobs_.push_back(LocalTrainJob{k, 1});
      job_member_.push_back(entry);
    }

    AsyncEvent ev;
    ev.kind = AsyncEvent::Kind::kDispatch;
    ev.vt = vt_;
    ev.epoch = epoch;
    ev.client = k;
    ev.version = version_;
    events_.push_back(ev);
  }
  drops_counter().add(static_cast<std::uint64_t>(out.num_dropped));
  inflight_gauge().set(static_cast<double>(inflight_count_));

  // Train the surviving members' first steps now, against the dispatch-time
  // model (each step's update will be stale by however many flushes land
  // before it arrives; later steps train at their own completion events).
  engine_->run_local_jobs(jobs_, &job_results_);
  for (std::size_t j = 0; j < jobs_.size(); ++j)
    inflight_[job_member_[j]].result = std::move(job_results_[j]);
}

bool EventEngine::run_until_flush() {
  FEDL_PROFILE_SCOPE("fl.async.run");
  while (true) {
    const bool have_event = !queue_.empty();
    // Deadline flush: the buffer has waited flush_timeout_s of virtual time
    // without reaching K and nothing arrives before the deadline.
    if (deadline_armed_ && !buffer_.empty() &&
        (!have_event || deadline_ <= queue_.top().vt)) {
      vt_ = std::max(vt_, deadline_);
      timeout_flushes_counter().add();
      do_flush();
      resolve_pending_evals();
      return true;
    }
    if (!have_event) break;

    const QueuedEvent e = queue_.top();
    queue_.pop();
    vt_ = e.vt;  // queue times never precede the clock: vt is monotone
    InFlight& f = inflight_[e.entry];
    Cohort& c = cohorts_[f.cohort];
    bool filled = false;
    if (f.dropped) {
      AsyncEvent ev;
      ev.kind = AsyncEvent::Kind::kDrop;
      ev.vt = vt_;
      ev.epoch = c.out.epoch;
      ev.client = f.client;
      ev.version = version_;
      ev.buffer = buffer_.size();
      events_.push_back(ev);
    } else {
      const std::size_t stale = version_ - f.dispatch_version;
      staleness_hist().observe(static_cast<double>(stale));
      completes_counter().add();
      ++completes_since_flush_;
      ++f.steps_done;
      buffer_.push_back(BufferedUpdate{std::move(f.result.update),
                                       f.dispatch_version,
                                       c.out.selected.size()});
      if (buffer_.size() == 1 && cfg_.flush_timeout_s > 0.0) {
        deadline_ = vt_ + cfg_.flush_timeout_s;
        deadline_armed_ = true;
      }
      // Accumulate the step into the member's engagement totals.
      c.out.client_eta[f.member] =
          std::max(c.out.client_eta[f.member], f.result.eta);
      c.out.eta_max = std::max(c.out.eta_max, f.result.eta);
      c.out.client_loss_reduction[f.member] += f.result.loss_reduction;
      c.out.client_completed_iters[f.member] += f.result.completed_iters;
      filled = buffer_.size() >= cfg_.buffer_k;

      AsyncEvent ev;
      ev.kind = AsyncEvent::Kind::kComplete;
      ev.vt = vt_;
      ev.epoch = c.out.epoch;
      ev.client = f.client;
      ev.version = version_;
      ev.staleness = stale;
      ev.buffer = buffer_.size();
      events_.push_back(ev);
    }
    const bool engagement_over = f.dropped || f.steps_done >= f.steps_total;
    if (engagement_over) {
      inflight_mask_[f.client] = 0;
      --inflight_count_;
      inflight_gauge().set(static_cast<double>(inflight_count_));
      FEDL_CHECK_GT(c.unresolved, 0u);
      if (--c.unresolved == 0) pending_eval_.push_back(f.cohort);
    }
    // Flush BEFORE chaining the member's next step: an upload that fills
    // the buffer advances the model, and the client's next iteration pulls
    // the newest version — exactly what a live async worker would download.
    if (filled) {
      do_flush();
      resolve_pending_evals();
    }
    if (!engagement_over) {
      jobs_.clear();
      jobs_.push_back(LocalTrainJob{f.client, 1});
      engine_->run_local_jobs(jobs_, &job_results_);
      f.result = std::move(job_results_[0]);
      f.dispatch_version = version_;
      queue_.push(QueuedEvent{vt_ + f.step_latency, f.client, seq_++,
                              e.entry});
    }
    if (filled) return true;
  }
  // Queue drained: flush the remainder so no completed update is stranded.
  if (!buffer_.empty()) {
    do_flush();
    resolve_pending_evals();
    return true;
  }
  // All-dropped cohorts can resolve without any flush; evaluate them too.
  resolve_pending_evals();
  return false;
}

void EventEngine::do_flush() {
  FEDL_PROFILE_SCOPE("fl.async.flush");
  FEDL_CHECK(!buffer_.empty());
  stale_scratch_.clear();
  cohort_scratch_.clear();
  std::size_t max_stale = 0;
  for (const BufferedUpdate& b : buffer_) {
    const std::size_t stale = version_ - b.dispatch_version;
    stale_scratch_.push_back(stale);
    cohort_scratch_.push_back(b.cohort_size);
    max_stale = std::max(max_stale, stale);
  }
  const std::vector<double> weights = core::staleness_weights(
      stale_scratch_, cohort_scratch_, cfg_.staleness_exponent);
  // Damped cohort-normalized sum, reduced in arrival order on this thread —
  // the aggregation is deterministic by construction.
  nn::ParamVec w = engine_->global_params();
  for (std::size_t i = 0; i < buffer_.size(); ++i)
    axpy(static_cast<float>(weights[i]), buffer_[i].update, w);
  engine_->set_global_params(std::move(w));
  ++version_;
  flushes_counter().add();
  version_gauge().set(static_cast<double>(version_));
  vt_gauge().set(vt_);

  AsyncEvent ev;
  ev.kind = AsyncEvent::Kind::kFlush;
  ev.vt = vt_;
  ev.epoch = last_dispatch_epoch_;
  ev.version = version_;
  ev.staleness = max_stale;
  ev.buffer = 0;
  ev.aggregated = buffer_.size();
  events_.push_back(ev);

  const AsyncSeries& series = async_series();
  const auto v = static_cast<std::uint64_t>(version_);
  series.vt.sample(v, vt_);
  series.buffer_filled.sample(v, static_cast<double>(buffer_.size()));
  series.staleness_max.sample(v, static_cast<double>(max_stale));

  FEDL_DEBUG << "async flush v" << version_ << " vt=" << vt_ << " |B|="
             << buffer_.size() << " max_stale=" << max_stale;
  buffer_.clear();
  deadline_armed_ = false;
  completes_since_flush_ = 0;
}

void EventEngine::resolve_pending_evals() {
  if (pending_eval_.empty()) return;
  // Evaluate in dispatch-epoch order so the consumer's reorder buffer sees
  // a deterministic sequence even when several cohorts resolve in one step.
  std::sort(pending_eval_.begin(), pending_eval_.end());
  for (const std::size_t ci : pending_eval_) {
    Cohort& c = cohorts_[ci];
    const CohortEval ev = engine_->evaluate_cohort(c.out.selected);
    c.out.train_loss_selected = ev.train_loss_selected;
    c.out.train_loss_all = ev.train_loss_all;
    c.out.test_loss = ev.test_loss;
    c.out.test_accuracy = ev.test_accuracy;
    CohortOutcome res;
    res.outcome = std::move(c.out);
    res.dispatch_vt = c.dispatch_vt;
    res.resolve_vt = vt_;
    resolved_.push_back(std::move(res));
  }
  pending_eval_.clear();
}

std::vector<CohortOutcome> EventEngine::take_resolved() {
  std::vector<CohortOutcome> out = std::move(resolved_);
  resolved_.clear();
  return out;
}

std::vector<AsyncEvent> EventEngine::take_events() {
  std::vector<AsyncEvent> out = std::move(events_);
  events_.clear();
  return out;
}

}  // namespace fedl::fl
