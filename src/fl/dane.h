// Local solvers for the federated iteration (paper §3.1, Model Training).
//
// The paper trains with the DANE method following FEDL [7]: in iteration i
// of epoch t, client k receives the global model w and the aggregated
// gradient ḡ = J_t(w) and computes a correction d by minimizing
//
//   G_{t,k}(d) = F_k(w + d) + (σ1/2)‖d‖² + (σ2·ḡ − ∇F_k(w))ᵀ d
//
// whose gradient is ∇F_k(w + d) + σ1·d + σ2·ḡ − ∇F_k(w). At d = 0 the
// surrogate gradient equals σ2·ḡ — descent directions are anchored to the
// *global* gradient, which is what lets DANE converge under heterogeneous
// local data.
//
// Two related-work rules are provided for the local-solver ablation
// (bench/abl_local_solver):
//  * kFedProx (Li et al. [15]): G(d) = F_k(w+d) + (σ1/2)‖d‖² — the proximal
//    term without the gradient correction;
//  * kSgd (FedAvg [19]): G(d) = F_k(w+d) — plain local SGD.
// The inner minimization can use SGD, Momentum (MFL [17]) or Adam ([22]).
//
// Every rule also reports the local convergence accuracy η (constraint
// (3c)): with G being (γ + σ1)-strongly convex,
// G* ≥ G(d) − ‖∇G(d)‖²/(2(γ+σ1)), so η̂ = [G(d) − Ĝ*]/[G(0) − Ĝ*] is a
// computable estimate of the paper's η^i_{t,k}.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/model.h"

namespace fedl::fl {

enum class LocalUpdateRule {
  kDane,     // paper's rule (default)
  kFedProx,  // proximal term only
  kSgd,      // plain local descent
};

struct DaneConfig {
  LocalUpdateRule rule = LocalUpdateRule::kDane;
  double sigma1 = 0.5;      // proximal weight σ1 (FedProx's μ)
  double sigma2 = 1.0;      // global-gradient weight σ2 (DANE only)
  double sgd_step = 0.05;   // α
  std::size_t sgd_steps = 5;  // max gradient steps per iteration
  double grad_clip = 10.0;  // stabilizes early CNN training
  // Strong convexity constant γ of F_k; should match Model::l2_reg.
  double gamma = 1e-3;
  // Inner optimizer: "sgd", "momentum", or "adam".
  std::string optimizer = "sgd";
};

struct LocalUpdate {
  nn::ParamVec d;             // the model correction d_{t,k}
  double eta = 0.0;           // η̂: estimated local convergence accuracy, [0,1)
  double loss_before = 0.0;   // F_k(w)
  double loss_after = 0.0;    // F_k(w + d)
  double surrogate_initial = 0.0;  // G(0)
  double surrogate_final = 0.0;    // G(d)
  double grad_norm = 0.0;     // ‖∇G(d)‖ at the returned d
};

// Differentiable oracle for a client's local objective: evaluates loss and
// gradient of F_k at arbitrary parameters using a scratch model. The scratch
// model's architecture must match the parameter dimension.
class LocalOracle {
 public:
  LocalOracle(nn::Model* scratch, const nn::Batch* batch);

  std::size_t dim() const;
  // loss F_k(w); writes ∇F_k(w) into grad when non-null.
  double loss_grad(const nn::ParamVec& w, nn::ParamVec* grad) const;
  // Same, but evaluated at the scratch model's *current* parameters — no
  // O(|w|) set_params_flat copy. The caller guarantees the scratch params
  // already hold the point of interest (the engine's shared-weight replicas
  // borrow the global model's storage, which holds w for the whole
  // iteration); results are bit-identical to loss_grad(w, ·) then.
  double loss_grad_preloaded(nn::ParamVec* grad) const;

 private:
  nn::Model* scratch_;
  const nn::Batch* batch_;
};

// Runs the configured surrogate minimization. `global_grad` is ḡ (σ2 term);
// passing an empty vector treats ḡ = ∇F_k(w) (first iteration bootstrap,
// making the linear term vanish when σ2 = 1). Ignored by kFedProx/kSgd.
// `scratch_at_w`: the oracle's scratch model already holds w, so the
// initial F_k(w) evaluation skips its set_params_flat copy (shifted-point
// evaluations always set params — they trigger the replicas'
// copy-on-write). Bit-identical either way.
LocalUpdate dane_local_step(const LocalOracle& oracle, const nn::ParamVec& w,
                            const nn::ParamVec& global_grad,
                            const DaneConfig& cfg, bool scratch_at_w = false);

}  // namespace fedl::fl
