#include "solver/projection.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace fedl::solver {

bool FeasibleSet::contains(const std::vector<double>& x, double tol) const {
  FEDL_CHECK_EQ(x.size(), dim());
  for (std::size_t i = 0; i < x.size(); ++i)
    if (x[i] < lo[i] - tol || x[i] > hi[i] + tol) return false;
  for (const auto& h : halfspaces)
    if (dot(h.a, x) > h.b + tol) return false;
  return true;
}

void project_box(const std::vector<double>& lo, const std::vector<double>& hi,
                 std::vector<double>& x) {
  FEDL_CHECK_EQ(x.size(), lo.size());
  FEDL_CHECK_EQ(x.size(), hi.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = clamp(x[i], lo[i], hi[i]);
}

void project_halfspace(const Halfspace& h, std::vector<double>& x) {
  FEDL_CHECK_EQ(x.size(), h.a.size());
  const double viol = dot(h.a, x) - h.b;
  if (viol <= 0.0) return;
  double a_sq = 0.0;
  for (double ai : h.a) a_sq += ai * ai;
  if (a_sq == 0.0) return;  // degenerate constraint (0 <= b violated) — skip
  const double scale = viol / a_sq;
  for (std::size_t i = 0; i < x.size(); ++i) x[i] -= scale * h.a[i];
}

namespace {

// Solves λ ≥ 0 with a·clamp(base − λa, lo, hi) = b when the constraint is
// violated at λ = 0, by bracketing + bisection (g is non-increasing in λ).
double solve_multiplier(const std::vector<double>& lo,
                        const std::vector<double>& hi, const Halfspace& h,
                        const std::vector<double>& base) {
  auto g = [&](double lambda) {
    double v = 0.0;
    for (std::size_t i = 0; i < base.size(); ++i)
      v += h.a[i] * clamp(base[i] - lambda * h.a[i], lo[i], hi[i]);
    return v - h.b;
  };
  if (g(0.0) <= 0.0) return 0.0;
  double a_sq = 0.0;
  for (double ai : h.a) a_sq += ai * ai;
  if (a_sq == 0.0) return 0.0;  // degenerate: cannot fix by moving along a

  double lo_l = 0.0;
  double hi_l = 1.0 / a_sq;
  for (int it = 0; it < 200 && g(hi_l) > 0.0; ++it) {
    lo_l = hi_l;
    hi_l *= 2.0;
  }
  for (int it = 0; it < 100; ++it) {
    const double mid = 0.5 * (lo_l + hi_l);
    (g(mid) > 0.0 ? lo_l : hi_l) = mid;
  }
  return 0.5 * (lo_l + hi_l);
}

}  // namespace

void project_box_halfspace(const std::vector<double>& lo,
                           const std::vector<double>& hi, const Halfspace& h,
                           std::vector<double>& x) {
  FEDL_CHECK_EQ(x.size(), h.a.size());
  const double lambda = solve_multiplier(lo, hi, h, x);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = clamp(x[i] - lambda * h.a[i], lo[i], hi[i]);
}

std::vector<double> project_intersection(const FeasibleSet& set,
                                         std::vector<double> x,
                                         const ProjectionOptions& opts,
                                         bool* converged) {
  FEDL_CHECK_EQ(x.size(), set.dim());
  const std::size_t n = x.size();
  const std::size_t k = set.halfspaces.size();

  if (k == 0) {
    project_box(set.lo, set.hi, x);
    if (converged) *converged = true;
    return x;
  }
  if (k == 1) {
    project_box_halfspace(set.lo, set.hi, set.halfspaces[0], x);
    if (converged) *converged = true;
    return x;
  }

  // Dual coordinate ascent: x(λ) = clamp(y − Σ λ_s a_s); cyclically re-solve
  // each λ_s exactly given the others.
  const std::vector<double> y = x;
  std::vector<double> lambda(k, 0.0);
  std::vector<double> base(n);
  bool ok = false;

  bool stationary = false;
  for (std::size_t sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    double max_change = 0.0;
    for (std::size_t s = 0; s < k; ++s) {
      // base = y − Σ_{t≠s} λ_t a_t
      for (std::size_t i = 0; i < n; ++i) {
        double v = y[i];
        for (std::size_t t = 0; t < k; ++t)
          if (t != s) v -= lambda[t] * set.halfspaces[t].a[i];
        base[i] = v;
      }
      const double new_lambda =
          solve_multiplier(set.lo, set.hi, set.halfspaces[s], base);
      max_change = std::max(max_change, std::abs(new_lambda - lambda[s]));
      lambda[s] = new_lambda;
    }
    if (max_change < opts.tolerance) {
      stationary = true;
      break;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    double v = y[i];
    for (std::size_t t = 0; t < k; ++t) v -= lambda[t] * set.halfspaces[t].a[i];
    x[i] = clamp(v, set.lo[i], set.hi[i]);
  }
  // Dual coordinate ascent converges linearly but can be slow for nearly
  // parallel halfspaces; primal feasibility of the final iterate is the
  // practically meaningful convergence signal (dual stationarity only
  // sharpens the last few digits of the projection).
  ok = stationary || set.contains(x, 1e-7);
  if (converged) *converged = ok && set.contains(x, 1e-6);
  return x;
}

}  // namespace fedl::solver
