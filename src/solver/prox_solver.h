// Projected proximal-gradient solver for the modified descent step (8):
//
//   min_{Φ ∈ S}  ∇f_t(Φ_t)·(Φ − Φ_t) + μ^T h_t(Φ) + ‖Φ − Φ_t‖² / (2β)
//
// The paper solves this with the interior-point filter line-search method
// (IPOPT [26]); here we use projected gradient descent with Armijo
// backtracking (substitution 3 in DESIGN.md). The proximal term makes the
// objective 1/β-strongly convex, so PGD converges linearly to the unique
// minimizer; tests/solver_test.cpp verifies optimality against brute force.
#pragma once

#include <functional>
#include <vector>

#include "solver/projection.h"

namespace fedl::solver {

// Objective callback: returns the value at x and, when grad != nullptr,
// writes the gradient (same dimension as x).
using Objective =
    std::function<double(const std::vector<double>& x, std::vector<double>* grad)>;

struct ProxSolverOptions {
  std::size_t max_iterations = 200;
  double initial_step = 1.0;
  double backtrack_factor = 0.5;
  double armijo_c = 1e-4;
  std::size_t max_backtracks = 40;
  // Stop when ‖x_{k+1} − x_k‖² falls below this.
  double tolerance = 1e-12;
  ProjectionOptions projection;
};

struct ProxSolverResult {
  std::vector<double> x;
  double objective = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

// Minimizes `objective` over `set` starting from x0 (projected first if
// infeasible). The objective should already include the proximal term.
ProxSolverResult minimize_projected(const FeasibleSet& set,
                                    std::vector<double> x0,
                                    const Objective& objective,
                                    const ProxSolverOptions& opts = {});

// Convenience builder for step (8)'s objective:
//   value(Φ) = grad_f·(Φ − Φ_anchor) + μ·h(Φ) + ‖Φ − Φ_anchor‖²/(2β)
// where h is supplied as a callback returning the vector h(Φ) and its
// Jacobian-transpose product.
struct LinearizedStep {
  std::vector<double> grad_f;   // ∇f_t(Φ_t)
  std::vector<double> anchor;   // Φ_t
  double beta = 0.1;            // proximal step size β

  // h(Φ) and ∇(μ·h)(Φ): callers encode the constraint structure.
  std::function<std::vector<double>(const std::vector<double>&)> h;
  std::function<std::vector<double>(const std::vector<double>&,
                                    const std::vector<double>& mu)>
      h_grad_mu;
  std::vector<double> mu;       // Lagrange multipliers (size of h output)

  Objective make_objective() const;
};

}  // namespace fedl::solver
