#include "solver/prox_solver.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace fedl::solver {
namespace {

// Solver telemetry: call volume and total inner iterations; the per-call
// iteration count lands in a histogram so convergence behaviour is visible
// without logging every solve.
const obs::Counter& solver_calls() {
  static const obs::Counter c("solver.calls");
  return c;
}
const obs::Counter& solver_iterations() {
  static const obs::Counter c("solver.iterations");
  return c;
}
const obs::Histogram& solver_iters_hist() {
  static const obs::Histogram h("solver.iters_per_call",
                                {1, 2, 4, 8, 16, 32, 64, 128, 256});
  return h;
}

struct SolveRecord {
  const ProxSolverResult& res;
  explicit SolveRecord(const ProxSolverResult& r) : res(r) {}
  ~SolveRecord() {
    solver_iterations().add(res.iterations);
    solver_iters_hist().observe(static_cast<double>(res.iterations));
  }
};

}  // namespace

ProxSolverResult minimize_projected(const FeasibleSet& set,
                                    std::vector<double> x0,
                                    const Objective& objective,
                                    const ProxSolverOptions& opts) {
  FEDL_PROFILE_SCOPE("solver.minimize");
  solver_calls().add();
  FEDL_CHECK_EQ(x0.size(), set.dim());
  ProxSolverResult res;
  SolveRecord record(res);  // flushes iteration telemetry on every exit path
  res.x = project_intersection(set, std::move(x0), opts.projection);

  std::vector<double> grad(res.x.size());
  double value = objective(res.x, &grad);
  double step = opts.initial_step;

  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    res.iterations = iter + 1;

    // Backtracking projected-gradient step: candidate = P(x − step·∇),
    // accept when the Armijo condition holds along the *projected* direction.
    bool accepted = false;
    std::vector<double> candidate;
    double cand_value = 0.0;
    double local_step = step;
    for (std::size_t bt = 0; bt < opts.max_backtracks; ++bt) {
      candidate = res.x;
      for (std::size_t i = 0; i < candidate.size(); ++i)
        candidate[i] -= local_step * grad[i];
      candidate = project_intersection(set, std::move(candidate), opts.projection);

      // Projected direction d = candidate − x; Armijo on g(x)·d.
      double gd = 0.0;
      double d_sq = 0.0;
      for (std::size_t i = 0; i < candidate.size(); ++i) {
        const double d = candidate[i] - res.x[i];
        gd += grad[i] * d;
        d_sq += d * d;
      }
      if (d_sq < opts.tolerance) {
        // The projected gradient step no longer moves: stationary point.
        res.converged = true;
        res.objective = value;
        return res;
      }
      cand_value = objective(candidate, nullptr);
      if (cand_value <= value + opts.armijo_c * gd) {
        accepted = true;
        break;
      }
      local_step *= opts.backtrack_factor;
    }
    if (!accepted) {
      // Could not decrease even with a tiny step — treat current point as
      // the (numerical) minimizer.
      res.converged = true;
      res.objective = value;
      return res;
    }

    double move_sq = 0.0;
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      const double d = candidate[i] - res.x[i];
      move_sq += d * d;
    }
    res.x = std::move(candidate);
    value = objective(res.x, &grad);
    // Mild step recovery: successful steps let the step size grow back.
    step = std::min(opts.initial_step, local_step * 2.0);
    if (move_sq < opts.tolerance) {
      res.converged = true;
      break;
    }
  }
  res.objective = value;
  return res;
}

Objective LinearizedStep::make_objective() const {
  FEDL_CHECK_EQ(grad_f.size(), anchor.size());
  FEDL_CHECK_GT(beta, 0.0);
  FEDL_CHECK(h != nullptr);
  FEDL_CHECK(h_grad_mu != nullptr);
  // Copy members so the Objective outlives this builder.
  auto grad_f_c = grad_f;
  auto anchor_c = anchor;
  auto h_c = h;
  auto hg_c = h_grad_mu;
  auto mu_c = mu;
  const double beta_c = beta;

  return [grad_f_c, anchor_c, h_c, hg_c, mu_c, beta_c](
             const std::vector<double>& x, std::vector<double>* grad) {
    FEDL_CHECK_EQ(x.size(), anchor_c.size());
    double value = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double dx = x[i] - anchor_c[i];
      value += grad_f_c[i] * dx + dx * dx / (2.0 * beta_c);
    }
    const std::vector<double> hx = h_c(x);
    FEDL_CHECK_EQ(hx.size(), mu_c.size());
    value += dot(mu_c, hx);

    if (grad) {
      grad->assign(x.size(), 0.0);
      const std::vector<double> hg = hg_c(x, mu_c);
      FEDL_CHECK_EQ(hg.size(), x.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        (*grad)[i] = grad_f_c[i] + (x[i] - anchor_c[i]) / beta_c + hg[i];
      }
    }
    return value;
  };
}

}  // namespace fedl::solver
