// Euclidean projections onto the feasible region of the one-shot problem
// P_{3,t}: a box (relaxed selection fractions and ρ) intersected with the
// budget halfspace (5a) and the minimum-participation halfspace (5b).
//
// Single-set projections are closed-form. The intersection is handled by
// dual coordinate ascent on the projection QP's KKT system:
//   x(λ) = clamp(y − Σ_s λ_s a_s),  λ_s ≥ 0,  λ_s·(a_s·x − b_s) = 0,
// cyclically re-solving each λ_s by monotone bisection. The dual is concave
// and smooth, so cyclic ascent converges to the exact projection — unlike
// plain Dykstra over box/halfspace pairs, which stalls on polyhedral
// corners (observed experimentally; see tests/solver_test.cpp).
#pragma once

#include <cstddef>
#include <vector>

namespace fedl::solver {

// A halfspace {x : a·x <= b}. Encode a >= constraint by negating a and b.
struct Halfspace {
  std::vector<double> a;
  double b = 0.0;
};

// Box + halfspace intersection description.
struct FeasibleSet {
  std::vector<double> lo;
  std::vector<double> hi;
  std::vector<Halfspace> halfspaces;

  std::size_t dim() const { return lo.size(); }
  bool contains(const std::vector<double>& x, double tol = 1e-9) const;
};

// In-place projection onto the box.
void project_box(const std::vector<double>& lo, const std::vector<double>& hi,
                 std::vector<double>& x);

// In-place projection onto one halfspace (no-op when already inside).
void project_halfspace(const Halfspace& h, std::vector<double>& x);

// Exact Euclidean projection onto box ∩ {a·x <= b} via the KKT system:
// P(y) = clamp(y − λa) with λ ≥ 0 found by monotone bisection.
void project_box_halfspace(const std::vector<double>& lo,
                           const std::vector<double>& hi, const Halfspace& h,
                           std::vector<double>& x);

struct ProjectionOptions {
  std::size_t max_sweeps = 200;   // dual coordinate-ascent sweeps
  double tolerance = 1e-12;       // max |Δλ| per sweep to declare converged
};

// Euclidean projection of x onto the intersection. Returns the projected
// point; sets *converged (if non-null) to whether the sweep tolerance was
// met. An empty intersection shows up as non-convergence — callers must
// validate with FeasibleSet::contains.
std::vector<double> project_intersection(const FeasibleSet& set,
                                         std::vector<double> x,
                                         const ProjectionOptions& opts = {},
                                         bool* converged = nullptr);

}  // namespace fedl::solver
