// Prometheus text exposition (format 0.0.4) of the metrics registry, so a
// standard scraper (or `watch cat`) can tail a live run via --prom-out.
//
// Mapping: metric names are sanitized for Prometheus (dots become
// underscores) and prefixed `fedl_`; counters/gauges map 1:1; registry
// histograms become native Prometheus histograms with *cumulative* `le`
// buckets plus `_sum`/`_count`. The writer is stateless — ObsSession owns
// the periodic-flush thread and calls write_file(), which replaces the
// target atomically (write to <path>.tmp, then rename) so a scraper never
// reads a torn file.
#pragma once

#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace fedl::obs {

class PrometheusWriter {
 public:
  // `fedl_` + name with every '.' replaced by '_'.
  static std::string sanitize_name(const std::string& name);

  static void write(const MetricsSnapshot& snapshot, std::ostream& os);

  // Atomic replace of `path` with the exposition of `snapshot`.
  static void write_file(const MetricsSnapshot& snapshot,
                         const std::string& path);
};

}  // namespace fedl::obs
