// Fixed-capacity per-epoch time series: the trajectory view of the run.
//
// `MetricsRegistry` answers "what is the value now"; the recorder answers
// "how did it get there" — fl.* losses, learner.rho/mu, scheduler occupancy,
// budget spent-vs-paced, decide latency — each sampled once per epoch
// boundary into a preallocated ring buffer and exported as one compact JSON
// document via --series-out.
//
// Contract (mirrors the metrics layer):
//   - disabled recorders cost one relaxed atomic load per sample site, so
//     instrumentation compiled into run_epoch never perturbs the engine;
//   - enable(capacity) preallocates every ring, and registration while
//     enabled preallocates at registration time, so the steady-state sample
//     path performs no allocations (rings wrap, oldest samples are dropped
//     and counted);
//   - samples are (epoch, value) pairs, not wall-clock points: a grid run
//     interleaves trials into the shared rings, and the epoch tag is what
//     lets offline tooling separate or overlay them.
//
// Usage at a sample site (same shape as obs::Counter):
//
//   static const obs::Series test_loss("fl.test_loss");
//   test_loss.sample(epoch, value);
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace fedl::obs {

struct SeriesSnapshot {
  std::string name;
  std::vector<std::uint64_t> epochs;  // chronological sample order
  std::vector<double> values;         // parallel to epochs
  std::uint64_t dropped = 0;          // samples evicted by ring wrap
};

class TimeSeriesRecorder {
 public:
  // Never destroyed (like MetricsRegistry) so samples during teardown are
  // safe.
  static TimeSeriesRecorder& global();

  // Preallocates a `capacity`-slot ring for every registered series and
  // turns sampling on. Re-enabling with a different capacity resizes the
  // rings and clears existing samples.
  void enable(std::size_t capacity);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Idempotent by name, thread-safe; returns a stable id.
  std::size_t register_series(const std::string& name);

  void sample(std::size_t id, std::uint64_t epoch, double value);

  // Chronologically-ordered copy of every ring (series sorted by name).
  std::vector<SeriesSnapshot> snapshot() const;

  // {"capacity":N,"series":{name:{"epochs":[...],"values":[...],
  //  "dropped":D}}}  — NaN/Inf values serialize as null, matching the
  // metrics snapshot convention.
  void write_json(std::ostream& os) const;

  // Drops samples (registrations and capacity are kept). Test isolation.
  void clear();

 private:
  TimeSeriesRecorder() = default;

  struct Ring {
    std::string name;
    std::vector<std::uint64_t> epochs;  // capacity slots once enabled
    std::vector<double> values;
    std::size_t head = 0;      // next write slot
    std::size_t size = 0;      // valid slots
    std::uint64_t dropped = 0;
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;  // registration + rings; samples are per-epoch,
                              // so one lock is contention-free in practice
  std::size_t capacity_ = 0;
  std::vector<std::unique_ptr<Ring>> rings_;
};

class Series {
 public:
  explicit Series(const std::string& name)
      : id_(TimeSeriesRecorder::global().register_series(name)) {}

  void sample(std::uint64_t epoch, double value) const {
    auto& recorder = TimeSeriesRecorder::global();
    if (!recorder.enabled()) return;
    recorder.sample(id_, epoch, value);
  }

 private:
  std::size_t id_;
};

}  // namespace fedl::obs
