// JSONL event sink for structured telemetry: one JSON object per line,
// append-friendly so several runs (e.g. every strategy of a figure bench)
// can share one file and be split downstream by their "algorithm" field.
// The schema of each event is owned by the caller (the harness emits the
// per-epoch decision records, see harness/experiment.cpp); this class only
// guarantees whole-line atomicity under concurrent writers.
#pragma once

#include <fstream>
#include <functional>
#include <mutex>
#include <string>

#include "obs/json_writer.h"

namespace fedl::obs {

class EventTraceWriter {
 public:
  // Throws ConfigError when the file cannot be opened.
  explicit EventTraceWriter(const std::string& path, bool append = true);

  const std::string& path() const { return path_; }

  // Builds one event with the supplied callback (which must write exactly
  // one JSON value, normally an object) and commits it as a single line.
  void write_event(const std::function<void(JsonWriter&)>& build);

  // Commits a pre-serialized block of newline-terminated JSONL lines as one
  // write. Used by deferred-trace producers (the experiment-grid scheduler
  // buffers each trial's events and commits whole trials in deterministic
  // order, so concurrent trials never interleave lines).
  void write_raw(const std::string& lines);

 private:
  std::string path_;
  std::mutex mutex_;
  std::ofstream out_;
};

}  // namespace fedl::obs
