// Per-binary observability bootstrap shared by every bench and example.
//
//   int main(int argc, char** argv) {
//     Flags flags(argc, argv);
//     obs::ObsSession session(flags, "warn");
//     ...
//   }
//
// replaces the hand-rolled set_log_level(parse_log_level(...)) boilerplate
// and gives the binary the standard observability flags:
//
//   --log=<debug|info|warn|error|off>   explicit log level (highest priority;
//                                       else FEDL_LOG_LEVEL env var, else the
//                                       binary's default)
//   --metrics-out=<file>   write the metrics-registry snapshot (JSON) at exit
//   --profile-out=<file>   enable the scoped profiler and write a Chrome-
//                          trace JSON at exit
//   --trace-out=<file>     truncate <file> now; harness runs configured with
//                          trace_out() append per-epoch JSONL events to it
//   --series-out=<file>    enable the per-epoch TimeSeriesRecorder and write
//                          its rings (JSON) at exit
//   --series-capacity=<N>  ring capacity per series (default 4096)
//   --manifest-out=<file>  write the run manifest (JSON) at exit
//   --prom-out=<file>      periodically rewrite <file> with the Prometheus
//                          text exposition of the metrics registry (atomic
//                          replace), plus a final write at exit
//   --prom-interval=<sec>  flush period for --prom-out (default 5)
//
// Artifacts are flushed in the destructor, so the session must outlive the
// instrumented work (declare it first in main). The session also arms two
// crash guards — a check-failure hook (common/error.h) and an atexit
// handler — that flush whatever has been recorded *before* an uncaught
// FEDL_CHECK terminates the process, marking the manifest "clean": false.
// Once a crash-flush has happened the manifest stays dirty even if the
// exception is later caught and the session destructs normally.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "common/config.h"

namespace fedl::obs {

class ObsSession {
 public:
  ObsSession(const Flags& flags, const std::string& default_log_level);
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  const std::string& trace_out() const { return trace_out_; }
  const std::string& metrics_out() const { return metrics_out_; }
  const std::string& profile_out() const { return profile_out_; }
  const std::string& series_out() const { return series_out_; }
  const std::string& manifest_out() const { return manifest_out_; }
  const std::string& prom_out() const { return prom_out_; }

  // Writes every configured artifact. clean=false marks the manifest dirty
  // permanently (crash path); clean=true is the normal exit path. Safe to
  // call from any thread and more than once — later flushes overwrite with
  // fresher snapshots. Never throws (failures are logged).
  void flush(bool clean) noexcept;

 private:
  void start_prom_flusher();
  void stop_prom_flusher();

  std::string trace_out_;
  std::string metrics_out_;
  std::string profile_out_;
  std::string series_out_;
  std::string manifest_out_;
  std::string prom_out_;
  double prom_interval_s_ = 5.0;

  std::mutex flush_mutex_;
  bool dirty_ = false;  // latched by the first flush(false)

  std::thread prom_thread_;
  std::mutex prom_mutex_;
  std::condition_variable prom_cv_;
  bool prom_stop_ = false;
};

}  // namespace fedl::obs
