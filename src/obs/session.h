// Per-binary observability bootstrap shared by every bench and example.
//
//   int main(int argc, char** argv) {
//     Flags flags(argc, argv);
//     obs::ObsSession session(flags, "warn");
//     ...
//   }
//
// replaces the hand-rolled set_log_level(parse_log_level(...)) boilerplate
// and gives the binary three standard flags:
//
//   --log=<debug|info|warn|error|off>   explicit log level (highest priority;
//                                       else FEDL_LOG_LEVEL env var, else the
//                                       binary's default)
//   --metrics-out=<file>   write the metrics-registry snapshot (JSON) at exit
//   --profile-out=<file>   enable the scoped profiler and write a Chrome-
//                          trace JSON at exit
//   --trace-out=<file>     truncate <file> now; harness runs configured with
//                          trace_out() append per-epoch JSONL events to it
//
// Artifacts are flushed in the destructor, so the session must outlive the
// instrumented work (declare it first in main).
#pragma once

#include <string>

#include "common/config.h"

namespace fedl::obs {

class ObsSession {
 public:
  ObsSession(const Flags& flags, const std::string& default_log_level);
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  const std::string& trace_out() const { return trace_out_; }
  const std::string& metrics_out() const { return metrics_out_; }
  const std::string& profile_out() const { return profile_out_; }

 private:
  std::string trace_out_;
  std::string metrics_out_;
  std::string profile_out_;
};

}  // namespace fedl::obs
