// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms for instrumenting the training hot paths.
//
// Counters and histograms use per-thread sharded storage: each thread owns a
// shard of relaxed atomics that only it writes (single-writer, so an
// increment is a load+store pair, ~a few ns and contention-free), and
// snapshot() merges the shards. Integer counts merge exactly regardless of
// thread interleaving, and nothing on the metrics path feeds back into the
// training computation, so instrumentation never perturbs the engine's
// bit-identical-results guarantee. Shards are recycled through a free list
// when threads exit, so snapshots never lose counts and pools that come and
// go do not grow the registry without bound.
//
// Handles are registered by name (idempotent) and are cheap to copy; the
// intended usage at an instrumentation site is a function-local static:
//
//   static const obs::Counter calls("gemm.calls");
//   calls.add();
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace fedl::obs {

struct HistogramSnapshot {
  std::vector<double> bounds;          // upper bucket edges, ascending
  std::vector<std::uint64_t> counts;   // bounds.size() + 1 (last = overflow)
  std::uint64_t total = 0;             // Σ counts
  double sum = 0.0;                    // Σ observed values

  double mean() const { return total == 0 ? 0.0 : sum / static_cast<double>(total); }
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // {"counters":{...},"gauges":{...},"histograms":{name:{"bounds":[...],
  //  "counts":[...],"total":N,"sum":S}}}
  void write_json(std::ostream& os) const;
};

class MetricsRegistry {
 public:
  // The process-wide registry every handle binds to. Never destroyed
  // (intentionally leaked) so metric updates during thread/static teardown
  // stay safe.
  static MetricsRegistry& global();

  // Registration is idempotent by name and thread-safe; re-registering a
  // name with a different kind (or different histogram bucket count) is a
  // checked error. Histogram bounds must be non-empty and strictly
  // ascending.
  std::size_t register_counter(const std::string& name);
  std::size_t register_gauge(const std::string& name);
  std::size_t register_histogram(const std::string& name,
                                 std::vector<double> bounds);

  void counter_add(std::size_t id, std::uint64_t delta);
  void gauge_set(std::size_t id, double value);
  // Buckets have "≤ bound" semantics: the observation lands in the first
  // bucket whose bound is >= value; values above the last bound land in the
  // overflow slot.
  void histogram_observe(std::size_t id, double value);

  // Merges all shards. Safe to call concurrently with updates (relaxed
  // reads: the snapshot is a consistent-enough point-in-time view; counts
  // already published by finished work are always included).
  MetricsSnapshot snapshot() const;

  // Zeroes every value (registrations are kept). Only call when no other
  // thread is updating metrics (test setup / between runs).
  void reset();

 private:
  MetricsRegistry() = default;

  // Capacities are fixed so shards can hold plain atomic arrays (atomics are
  // not movable). Generous for this codebase; exceeding one is a checked
  // error at registration time.
  static constexpr std::size_t kMaxCounters = 256;
  static constexpr std::size_t kMaxGauges = 128;
  static constexpr std::size_t kMaxHistograms = 64;
  static constexpr std::size_t kHistArenaSlots = 2048;

  struct Shard;
  struct ShardLease;

  Shard* local_shard();
  Shard* acquire_shard();
  void release_shard(Shard* shard);

  struct CounterDef {
    std::string name;
  };
  struct GaugeDef {
    std::string name;
  };
  struct HistogramDef {
    std::string name;
    std::vector<double> bounds;
    std::size_t arena_offset = 0;  // bounds.size()+1 slots in the arena
  };

  mutable std::mutex mutex_;  // registration + shard list + free list
  std::vector<CounterDef> counters_;
  std::vector<GaugeDef> gauges_;
  std::vector<HistogramDef> histograms_;
  std::map<std::string, std::pair<char, std::size_t>> by_name_;  // kind, id
  std::size_t arena_used_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Shard*> free_shards_;
  std::unique_ptr<std::atomic<double>[]> gauge_values_ =
      std::make_unique<std::atomic<double>[]>(kMaxGauges);
};

class Counter {
 public:
  explicit Counter(const std::string& name)
      : id_(MetricsRegistry::global().register_counter(name)) {}
  void add(std::uint64_t delta = 1) const {
    MetricsRegistry::global().counter_add(id_, delta);
  }

 private:
  std::size_t id_;
};

class Gauge {
 public:
  explicit Gauge(const std::string& name)
      : id_(MetricsRegistry::global().register_gauge(name)) {}
  void set(double value) const {
    MetricsRegistry::global().gauge_set(id_, value);
  }

 private:
  std::size_t id_;
};

class Histogram {
 public:
  Histogram(const std::string& name, std::vector<double> bounds)
      : id_(MetricsRegistry::global().register_histogram(name,
                                                         std::move(bounds))) {}
  void observe(double value) const {
    MetricsRegistry::global().histogram_observe(id_, value);
  }

 private:
  std::size_t id_;
};

}  // namespace fedl::obs
