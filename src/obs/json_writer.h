// Minimal streaming JSON writer: comma placement handled by a nesting
// stack, NaN/Inf emitted as null (JSON has neither), strings escaped.
// Shared by the metrics snapshot, the Chrome-trace exporter, and the
// structured event trace so every artifact speaks the same dialect.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fedl::obs {

// Escapes quotes, backslashes and control characters for a JSON string body.
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Key inside an object; must be followed by exactly one value/container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);  // NaN/Inf -> null
  JsonWriter& value(bool v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& null();

 private:
  void separate();  // emits "," between siblings

  std::ostream& os_;
  // One flag per open container: true until the first element is written.
  std::vector<bool> first_{true};
};

}  // namespace fedl::obs
