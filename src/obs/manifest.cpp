#include "obs/manifest.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <variant>

#include "common/error.h"
#include "obs/digest.h"
#include "obs/json_writer.h"

namespace fedl::obs {
namespace {

using FieldValue = std::variant<std::string, std::uint64_t, double>;

std::mutex& fields_mutex() {
  static auto* m = new std::mutex();  // fedl-lint: allow(naked-new)
  return *m;
}

std::map<std::string, FieldValue>& fields() {
  static auto* f = new std::map<std::string, FieldValue>();  // fedl-lint: allow(naked-new)
  return *f;
}

void set_field(const std::string& key, FieldValue value) {
  FEDL_CHECK(!key.empty()) << "manifest field key must be non-empty";
  std::lock_guard<std::mutex> lock(fields_mutex());
  fields().insert_or_assign(key, std::move(value));
}

}  // namespace

void set_manifest_field(const std::string& key, const std::string& value) {
  set_field(key, FieldValue(value));
}
void set_manifest_field(const std::string& key, const char* value) {
  set_field(key, FieldValue(std::string(value)));
}
void set_manifest_field(const std::string& key, std::uint64_t value) {
  set_field(key, FieldValue(value));
}
void set_manifest_field(const std::string& key, double value) {
  set_field(key, FieldValue(value));
}

std::map<std::string, std::string> manifest_fields() {
  std::lock_guard<std::mutex> lock(fields_mutex());
  std::map<std::string, std::string> out;
  for (const auto& [key, value] : fields()) {
    if (const auto* s = std::get_if<std::string>(&value)) {
      out[key] = *s;
    } else if (const auto* u = std::get_if<std::uint64_t>(&value)) {
      out[key] = std::to_string(*u);
    } else {
      // Shortest round-trip form ("0.25", not to_string's "0.250000"),
      // matching what JsonWriter emits into the manifest itself.
      std::ostringstream os;
      os.precision(std::numeric_limits<double>::max_digits10);
      os << std::get<double>(value);
      out[key] = os.str();
    }
  }
  return out;
}

void clear_manifest_fields() {
  std::lock_guard<std::mutex> lock(fields_mutex());
  fields().clear();
}

void write_manifest(std::ostream& os, bool clean) {
  std::map<std::string, FieldValue> snapshot;
  {
    std::lock_guard<std::mutex> lock(fields_mutex());
    snapshot = fields();
  }
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("fedl-manifest-v1");
  w.key("clean").value(clean);
#if defined(FEDL_BUILD_TYPE)
  w.key("build_type").value(FEDL_BUILD_TYPE);
#else
  w.key("build_type").value("unknown");
#endif
#if defined(FEDL_PROFILING_ENABLED)
  w.key("profiling_compiled").value(true);
#else
  w.key("profiling_compiled").value(false);
#endif
  w.key("final_digest").value(digest_hex(combined_run_digest()));
  w.key("runs_digested").value(runs_digested());
  w.key("fields").begin_object();
  for (const auto& [key, value] : snapshot) {
    w.key(key);
    if (const auto* s = std::get_if<std::string>(&value))
      w.value(*s);
    else if (const auto* u = std::get_if<std::uint64_t>(&value))
      w.value(*u);
    else
      w.value(std::get<double>(value));
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

void write_manifest_file(const std::string& path, bool clean) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw ConfigError("cannot write manifest: " + path);
  write_manifest(out, clean);
}

}  // namespace fedl::obs
