#include "obs/time_series.h"

#include <algorithm>

#include "common/error.h"
#include "obs/json_writer.h"

namespace fedl::obs {

TimeSeriesRecorder& TimeSeriesRecorder::global() {
  static auto* recorder = new TimeSeriesRecorder();  // fedl-lint: allow(naked-new)
  return *recorder;
}

void TimeSeriesRecorder::enable(std::size_t capacity) {
  FEDL_CHECK(capacity > 0) << "time-series capacity must be positive";
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  for (auto& ring : rings_) {
    ring->epochs.assign(capacity_, 0);
    ring->values.assign(capacity_, 0.0);
    ring->head = 0;
    ring->size = 0;
    ring->dropped = 0;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TimeSeriesRecorder::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

std::size_t TimeSeriesRecorder::register_series(const std::string& name) {
  FEDL_CHECK(!name.empty()) << "series name must be non-empty";
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < rings_.size(); ++i)
    if (rings_[i]->name == name) return i;
  auto ring = std::make_unique<Ring>();
  ring->name = name;
  if (capacity_ > 0) {  // registration after enable(): warm up now
    ring->epochs.assign(capacity_, 0);
    ring->values.assign(capacity_, 0.0);
  }
  rings_.push_back(std::move(ring));
  return rings_.size() - 1;
}

void TimeSeriesRecorder::sample(std::size_t id, std::uint64_t epoch,
                                double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return;  // disabled before the caller's enabled() check
  FEDL_CHECK(id < rings_.size()) << "unknown series id " << id;
  Ring& ring = *rings_[id];
  ring.epochs[ring.head] = epoch;
  ring.values[ring.head] = value;
  ring.head = (ring.head + 1) % capacity_;
  if (ring.size == capacity_)
    ++ring.dropped;  // the slot we just overwrote held the oldest sample
  else
    ++ring.size;
}

std::vector<SeriesSnapshot> TimeSeriesRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SeriesSnapshot> out;
  out.reserve(rings_.size());
  for (const auto& ring : rings_) {
    SeriesSnapshot snap;
    snap.name = ring->name;
    snap.dropped = ring->dropped;
    snap.epochs.reserve(ring->size);
    snap.values.reserve(ring->size);
    // Oldest sample lives at head when the ring has wrapped, at 0 otherwise.
    const std::size_t start = ring->size == capacity_ ? ring->head : 0;
    for (std::size_t i = 0; i < ring->size; ++i) {
      const std::size_t slot = (start + i) % capacity_;
      snap.epochs.push_back(ring->epochs[slot]);
      snap.values.push_back(ring->values[slot]);
    }
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const SeriesSnapshot& a, const SeriesSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void TimeSeriesRecorder::write_json(std::ostream& os) const {
  std::size_t capacity;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity = capacity_;
  }
  const auto series = snapshot();
  JsonWriter w(os);
  w.begin_object();
  w.key("capacity").value(static_cast<std::uint64_t>(capacity));
  w.key("series").begin_object();
  for (const auto& snap : series) {
    w.key(snap.name).begin_object();
    w.key("epochs").begin_array();
    for (const auto epoch : snap.epochs) w.value(epoch);
    w.end_array();
    w.key("values").begin_array();
    for (const auto value : snap.values) w.value(value);
    w.end_array();
    w.key("dropped").value(snap.dropped);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

void TimeSeriesRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& ring : rings_) {
    ring->head = 0;
    ring->size = 0;
    ring->dropped = 0;
  }
}

}  // namespace fedl::obs
