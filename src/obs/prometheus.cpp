#include "obs/prometheus.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.h"

namespace fedl::obs {
namespace {

// Prometheus floats: full round-trip precision, +Inf/-Inf/NaN spelled the
// way the exposition format expects.
std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

}  // namespace

std::string PrometheusWriter::sanitize_name(const std::string& name) {
  std::string out = "fedl_" + name;
  for (auto& c : out)
    if (c == '.') c = '_';
  return out;
}

void PrometheusWriter::write(const MetricsSnapshot& snapshot,
                             std::ostream& os) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = sanitize_name(name);
    os << "# TYPE " << prom << " counter\n";
    os << prom << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = sanitize_name(name);
    os << "# TYPE " << prom << " gauge\n";
    os << prom << ' ' << format_value(value) << '\n';
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = sanitize_name(name);
    os << "# TYPE " << prom << " histogram\n";
    // Registry buckets are disjoint ("first bound >= value"); Prometheus
    // buckets are cumulative ("observations <= le").
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += hist.counts[i];
      os << prom << "_bucket{le=\"" << format_value(hist.bounds[i]) << "\"} "
         << cumulative << '\n';
    }
    os << prom << "_bucket{le=\"+Inf\"} " << hist.total << '\n';
    os << prom << "_sum " << format_value(hist.sum) << '\n';
    os << prom << "_count " << hist.total << '\n';
  }
}

void PrometheusWriter::write_file(const MetricsSnapshot& snapshot,
                                  const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw ConfigError("cannot write prometheus file: " + tmp);
    write(snapshot, out);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw ConfigError("cannot rename " + tmp + " to " + path);
}

}  // namespace fedl::obs
