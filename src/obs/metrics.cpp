#include "obs/metrics.h"

#include <algorithm>
#include <array>

#include "common/error.h"
#include "obs/json_writer.h"

namespace fedl::obs {

// One thread's private slice of every sharded metric. Only the owning thread
// writes (plain load+store on relaxed atomics — the single-writer pattern),
// snapshot() reads concurrently with relaxed loads. Values are cumulative
// and survive shard recycling: a shard returned to the free list keeps its
// counts and simply continues accumulating under its next owner (the
// release/acquire handoff goes through the registry mutex, so successive
// owners are synchronized).
struct MetricsRegistry::Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kHistArenaSlots> hist_counts{};
  std::array<std::atomic<double>, kMaxHistograms> hist_sums{};
};

struct MetricsRegistry::ShardLease {
  Shard* shard = nullptr;
  ~ShardLease() {
    if (shard) MetricsRegistry::global().release_shard(shard);
  }
};

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: handles and thread-exit lease destructors may run
  // during static teardown, after a function-local static would be gone.
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();  // fedl-lint: allow(naked-new)
    // Fixed capacity so registration never reallocates: definition vectors
    // are read without the mutex on the hot paths (ids are published to
    // other threads through synchronizing handle construction).
    r->counters_.reserve(kMaxCounters);
    r->gauges_.reserve(kMaxGauges);
    r->histograms_.reserve(kMaxHistograms);
    for (std::size_t i = 0; i < kMaxGauges; ++i)
      r->gauge_values_[i].store(0.0, std::memory_order_relaxed);
    return r;
  }();
  return *registry;
}

MetricsRegistry::Shard* MetricsRegistry::local_shard() {
  thread_local ShardLease lease;
  if (!lease.shard) lease.shard = acquire_shard();
  return lease.shard;
}

MetricsRegistry::Shard* MetricsRegistry::acquire_shard() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!free_shards_.empty()) {
    Shard* s = free_shards_.back();
    free_shards_.pop_back();
    return s;
  }
  shards_.push_back(std::make_unique<Shard>());
  return shards_.back().get();
}

void MetricsRegistry::release_shard(Shard* shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_shards_.push_back(shard);
}

std::size_t MetricsRegistry::register_counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    FEDL_CHECK_EQ(it->second.first, 'c') << "metric kind clash for " << name;
    return it->second.second;
  }
  FEDL_CHECK_LT(counters_.size(), kMaxCounters);
  counters_.push_back({name});
  const std::size_t id = counters_.size() - 1;
  by_name_[name] = {'c', id};
  return id;
}

std::size_t MetricsRegistry::register_gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    FEDL_CHECK_EQ(it->second.first, 'g') << "metric kind clash for " << name;
    return it->second.second;
  }
  FEDL_CHECK_LT(gauges_.size(), kMaxGauges);
  gauges_.push_back({name});
  const std::size_t id = gauges_.size() - 1;
  by_name_[name] = {'g', id};
  return id;
}

std::size_t MetricsRegistry::register_histogram(const std::string& name,
                                                std::vector<double> bounds) {
  FEDL_CHECK(!bounds.empty()) << "histogram " << name << " needs buckets";
  FEDL_CHECK(std::is_sorted(bounds.begin(), bounds.end()) &&
             std::adjacent_find(bounds.begin(), bounds.end()) == bounds.end())
      << "histogram " << name << " bounds must ascend strictly";
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    FEDL_CHECK_EQ(it->second.first, 'h') << "metric kind clash for " << name;
    const HistogramDef& def = histograms_[it->second.second];
    FEDL_CHECK(def.bounds == bounds)
        << "histogram " << name << " re-registered with different buckets";
    return it->second.second;
  }
  FEDL_CHECK_LT(histograms_.size(), kMaxHistograms);
  const std::size_t slots = bounds.size() + 1;
  FEDL_CHECK_LE(arena_used_ + slots, kHistArenaSlots);
  histograms_.push_back({name, std::move(bounds), arena_used_});
  arena_used_ += slots;
  const std::size_t id = histograms_.size() - 1;
  by_name_[histograms_.back().name] = {'h', id};
  return id;
}

void MetricsRegistry::counter_add(std::size_t id, std::uint64_t delta) {
  auto& slot = local_shard()->counters[id];
  slot.store(slot.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(std::size_t id, double value) {
  gauge_values_[id].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::histogram_observe(std::size_t id, double value) {
  const HistogramDef& def = histograms_[id];
  // "≤ bound" buckets: first bound >= value wins; past-the-end = overflow.
  const std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(def.bounds.begin(),
                                                def.bounds.end(), value) -
                               def.bounds.begin());
  Shard* s = local_shard();
  auto& slot = s->hist_counts[def.arena_offset + bucket];
  slot.store(slot.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  auto& sum = s->hist_sums[id];
  sum.store(sum.load(std::memory_order_relaxed) + value,
            std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    std::uint64_t total = 0;
    for (const auto& s : shards_)
      total += s->counters[i].load(std::memory_order_relaxed);
    snap.counters[counters_[i].name] = total;
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i)
    snap.gauges[gauges_[i].name] =
        gauge_values_[i].load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const HistogramDef& def = histograms_[i];
    HistogramSnapshot h;
    h.bounds = def.bounds;
    h.counts.assign(def.bounds.size() + 1, 0);
    for (const auto& s : shards_) {
      for (std::size_t b = 0; b < h.counts.size(); ++b)
        h.counts[b] +=
            s->hist_counts[def.arena_offset + b].load(std::memory_order_relaxed);
      h.sum += s->hist_sums[i].load(std::memory_order_relaxed);
    }
    for (std::uint64_t c : h.counts) h.total += c;
    snap.histograms[def.name] = std::move(h);
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& s : shards_) {
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    for (auto& c : s->hist_counts) c.store(0, std::memory_order_relaxed);
    for (auto& c : s->hist_sums) c.store(0.0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kMaxGauges; ++i)
    gauge_values_[i].store(0.0, std::memory_order_relaxed);
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (double b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (std::uint64_t c : h.counts) w.value(c);
    w.end_array();
    w.key("total").value(h.total);
    w.key("sum").value(h.sum);
    w.key("mean").value(h.mean());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

}  // namespace fedl::obs
