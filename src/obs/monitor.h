// Online invariant monitor: watches the paper's trajectory claims while the
// run is still going instead of discovering violations in offline scripts.
//
// Four monitors, one per claim:
//   regret_envelope  empirical dynamic regret R_T must stay inside the
//                    Theorem 2 envelope (times a configurable margin);
//                    skipped per-epoch when the bound is infinite (Lemma 2
//                    degenerate case) or the caller has no bound yet.
//   budget_pacing    the realized epoch spend must respect the ρ_t-implied
//                    pacing cap, and cumulative spend must never exceed the
//                    hard budget C (the paper's long-term constraint).
//   estimator_drift  η̂_t must stay finite and in range, and its
//                    epoch-to-epoch movement (EMA of |η̂_t − η̂_{t-1}|) must
//                    decay below a threshold once warm — divergence here
//                    means the UCB estimates never converge.
//   dropout_rate     the windowed mean dropout fraction must stay under a
//                    threshold; persistent mass dropout starves aggregation.
//
// Monitors are *edge-triggered*: an anomaly fires when a monitor crosses
// into violation and re-arms only after it recovers, so a persistently
// overdrawn trace yields exactly one record, not one per epoch. Every fire
// also bumps `obs.anomaly.<monitor>` and `obs.anomaly.total` counters; each
// evaluation bumps `obs.monitor.<monitor>_checks` so artifacts prove which
// monitors were actually armed.
//
// Layering: fedl_obs links only fedl_common, so this header speaks plain
// doubles — the harness computes `core::theorem2_regret_bound` and the
// pacing cap and feeds them in via EpochSample. Fields default to NaN
// ("not available"); a monitor whose inputs are absent skips that epoch.
// Enforcement policy also lives in the caller: the monitor reports, the
// harness decides whether --strict-monitor escalates to FEDL_CHECK.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fedl::obs {

struct MonitorConfig {
  // regret_envelope: fire when regret > regret_margin * bound.
  double regret_margin = 1.0;
  // budget_pacing: fire when epoch_cost > pacing_cap * (1 + pacing_tolerance)
  // or budget_spent > budget_total. The tolerance absorbs the documented
  // post-rounding overshoot of the fractional cap.
  double pacing_tolerance = 0.05;
  // estimator_drift: η̂ must be in [0, eta_limit]; the EMA (decay
  // drift_decay) of |Δη̂| must stay under drift_threshold once
  // drift_warmup_epochs have passed.
  double eta_limit = 1.0;
  double drift_threshold = 0.25;
  double drift_decay = 0.1;
  std::uint64_t drift_warmup_epochs = 8;
  // dropout_rate: windowed mean of dropped/selected over dropout_window
  // epochs must stay under dropout_threshold (window must fill first).
  std::size_t dropout_window = 8;
  double dropout_threshold = 0.5;
};

struct AnomalyRecord {
  std::string monitor;  // regret_envelope | budget_pacing | ...
  std::uint64_t epoch = 0;
  double observed = 0.0;  // the value that violated
  double limit = 0.0;     // the bound it violated
  std::string detail;     // human-readable one-liner
};

// One epoch's worth of monitor inputs. NaN means "not available this epoch";
// monitors missing an input skip silently (they stay armed, not violated).
struct EpochSample {
  static constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

  std::uint64_t epoch = 0;
  double regret = kNaN;        // empirical dynamic regret R_t
  double regret_bound = kNaN;  // theorem2_regret_bound at t (may be +inf)
  double epoch_cost = kNaN;    // realized spend this epoch
  double pacing_cap = kNaN;    // ρ_t-implied per-epoch cap
  double budget_spent = kNaN;  // cumulative spend through this epoch
  double budget_total = kNaN;  // hard budget C
  double eta_max = kNaN;       // η̂ fed to the decision
  double num_selected = kNaN;  // |A_t|
  double num_dropped = kNaN;   // dropouts among selected
};

class InvariantMonitor {
 public:
  explicit InvariantMonitor(MonitorConfig config = {});

  // Evaluates every armed monitor against the sample; returns the anomalies
  // that fired on *this* epoch (empty on a healthy or recovering epoch).
  std::vector<AnomalyRecord> on_epoch(const EpochSample& sample);

  std::uint64_t anomalies_fired() const { return fired_; }
  const MonitorConfig& config() const { return config_; }

 private:
  MonitorConfig config_;
  std::uint64_t fired_ = 0;

  // Edge-trigger state: true while the monitor is inside a violation.
  bool regret_violating_ = false;
  bool pacing_violating_ = false;
  bool drift_violating_ = false;
  bool dropout_violating_ = false;

  // estimator_drift state.
  double prev_eta_ = EpochSample::kNaN;
  double drift_ema_ = 0.0;
  std::uint64_t drift_epochs_ = 0;

  // dropout_rate sliding window (ring over config_.dropout_window).
  std::vector<double> dropout_rates_;
  std::size_t dropout_head_ = 0;
  std::size_t dropout_count_ = 0;
};

}  // namespace fedl::obs
