#include "obs/monitor.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"

namespace fedl::obs {
namespace {

bool available(double v) { return !std::isnan(v); }

// Function-local statics so counters register on first use, never at static
// init (the registry outlives everything; see metrics.h).
const Counter& anomaly_total_counter() {
  static const Counter counter("obs.anomaly.total");
  return counter;
}
const Counter& monitor_counter(const std::string& name) {
  static const Counter regret("obs.anomaly.regret_envelope");
  static const Counter pacing("obs.anomaly.budget_pacing");
  static const Counter drift("obs.anomaly.estimator_drift");
  static const Counter dropout("obs.anomaly.dropout_rate");
  if (name == "regret_envelope") return regret;
  if (name == "budget_pacing") return pacing;
  if (name == "estimator_drift") return drift;
  FEDL_CHECK(name == "dropout_rate") << "unknown monitor: " << name;
  return dropout;
}
const Counter& checks_counter(int which) {
  static const Counter regret("obs.monitor.regret_checks");
  static const Counter pacing("obs.monitor.pacing_checks");
  static const Counter drift("obs.monitor.drift_checks");
  static const Counter dropout("obs.monitor.dropout_checks");
  switch (which) {
    case 0: return regret;
    case 1: return pacing;
    case 2: return drift;
    default: return dropout;
  }
}

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

InvariantMonitor::InvariantMonitor(MonitorConfig config)
    : config_(config) {
  // Touch the anomaly counters so a healthy run exports them as explicit
  // zeros (a scraper must distinguish "armed and silent" from "absent").
  anomaly_total_counter();
  for (const char* name : {"regret_envelope", "budget_pacing",
                           "estimator_drift", "dropout_rate"})
    monitor_counter(name);
  FEDL_CHECK(config_.dropout_window > 0) << "dropout_window must be positive";
  FEDL_CHECK(config_.regret_margin > 0.0) << "regret_margin must be positive";
  FEDL_CHECK(config_.drift_decay > 0.0 && config_.drift_decay <= 1.0)
      << "drift_decay must be in (0, 1]";
  dropout_rates_.assign(config_.dropout_window, 0.0);
}

std::vector<AnomalyRecord> InvariantMonitor::on_epoch(
    const EpochSample& sample) {
  std::vector<AnomalyRecord> fired;
  const auto fire = [&](const std::string& monitor, double observed,
                        double limit, const std::string& detail) {
    AnomalyRecord record;
    record.monitor = monitor;
    record.epoch = sample.epoch;
    record.observed = observed;
    record.limit = limit;
    record.detail = detail;
    fired.push_back(std::move(record));
    monitor_counter(monitor).add();
    anomaly_total_counter().add();
    ++fired_;
  };

  // regret_envelope — skip when the bound is absent or infinite (Lemma 2
  // degenerate regime: the theorem promises nothing, so nothing to enforce;
  // the monitor stays armed for later epochs where the bound tightens).
  if (available(sample.regret) && available(sample.regret_bound) &&
      std::isfinite(sample.regret_bound)) {
    checks_counter(0).add();
    const double limit = config_.regret_margin * sample.regret_bound;
    const bool violating = sample.regret > limit;
    if (violating && !regret_violating_)
      fire("regret_envelope", sample.regret, limit,
           "dynamic regret " + format_double(sample.regret) +
               " exceeds Theorem 2 envelope " + format_double(limit));
    regret_violating_ = violating;
  }

  // budget_pacing — two sub-checks share one edge trigger: the per-epoch
  // pacing cap (soft, with rounding tolerance) and the hard budget C.
  if (available(sample.epoch_cost) || available(sample.budget_spent)) {
    checks_counter(1).add();
    bool violating = false;
    double observed = 0.0, limit = 0.0;
    std::string detail;
    if (available(sample.budget_spent) && available(sample.budget_total) &&
        sample.budget_spent > sample.budget_total) {
      violating = true;
      observed = sample.budget_spent;
      limit = sample.budget_total;
      detail = "cumulative spend " + format_double(observed) +
               " overdraws budget C=" + format_double(limit);
    } else if (available(sample.epoch_cost) && available(sample.pacing_cap)) {
      limit = sample.pacing_cap * (1.0 + config_.pacing_tolerance);
      if (sample.epoch_cost > limit) {
        violating = true;
        observed = sample.epoch_cost;
        detail = "epoch cost " + format_double(observed) +
                 " exceeds paced cap " + format_double(limit);
      }
    }
    if (violating && !pacing_violating_)
      fire("budget_pacing", observed, limit, detail);
    pacing_violating_ = violating;
  }

  // estimator_drift — range check always; EMA-of-step check once warm.
  if (available(sample.eta_max)) {
    checks_counter(2).add();
    bool violating = false;
    double observed = sample.eta_max, limit = config_.eta_limit;
    std::string detail;
    if (!std::isfinite(sample.eta_max) || sample.eta_max < 0.0 ||
        sample.eta_max > config_.eta_limit) {
      violating = true;
      detail = "eta estimate " + format_double(sample.eta_max) +
               " outside [0, " + format_double(config_.eta_limit) + "]";
    } else {
      if (available(prev_eta_)) {
        const double step = std::fabs(sample.eta_max - prev_eta_);
        drift_ema_ = config_.drift_decay * step +
                     (1.0 - config_.drift_decay) * drift_ema_;
        ++drift_epochs_;
      }
      prev_eta_ = sample.eta_max;
      if (drift_epochs_ >= config_.drift_warmup_epochs &&
          drift_ema_ > config_.drift_threshold) {
        violating = true;
        observed = drift_ema_;
        limit = config_.drift_threshold;
        detail = "eta estimate EMA drift " + format_double(drift_ema_) +
                 " not converging (threshold " +
                 format_double(config_.drift_threshold) + ")";
      }
    }
    if (violating && !drift_violating_)
      fire("estimator_drift", observed, limit, detail);
    drift_violating_ = violating;
  }

  // dropout_rate — windowed mean once the window has filled.
  if (available(sample.num_selected) && sample.num_selected > 0.0) {
    const double dropped = available(sample.num_dropped) ? sample.num_dropped : 0.0;
    dropout_rates_[dropout_head_] = dropped / sample.num_selected;
    dropout_head_ = (dropout_head_ + 1) % config_.dropout_window;
    if (dropout_count_ < config_.dropout_window) ++dropout_count_;
    if (dropout_count_ == config_.dropout_window) {
      checks_counter(3).add();
      double mean = 0.0;
      for (const double rate : dropout_rates_) mean += rate;
      mean /= static_cast<double>(config_.dropout_window);
      const bool violating = mean > config_.dropout_threshold;
      if (violating && !dropout_violating_)
        fire("dropout_rate", mean, config_.dropout_threshold,
             "windowed dropout rate " + format_double(mean) +
                 " over last " + std::to_string(config_.dropout_window) +
                 " epochs exceeds " +
                 format_double(config_.dropout_threshold));
      dropout_violating_ = violating;
    }
  }

  return fired;
}

}  // namespace fedl::obs
