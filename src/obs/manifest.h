// Run manifest: one small JSON document that makes every artifact
// self-describing — build type, gemm kernel tier, thread budget, seeds,
// config hash, final determinism digest, and whether the process exited
// cleanly. run_benches.sh embeds it into every BENCH_*.json so a number can
// always be traced back to the binary and configuration that produced it.
//
// Fields are a process-wide string/number registry with last-write-wins
// semantics: the scheduler registers thread_budget/jobs at configure time,
// simd_dispatch registers the resolved gemm kernel on first GEMM, the
// harness registers seed/config_hash/algorithm per run (a grid's manifest
// therefore reflects the *last* run to start — per-run detail lives in the
// trace; the manifest identifies the process). ObsSession writes the file
// at exit (clean=true) and from the crash-flush path (clean=false).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace fedl::obs {

// Last-write-wins, thread-safe. Numeric overloads keep JSON types honest.
void set_manifest_field(const std::string& key, const std::string& value);
void set_manifest_field(const std::string& key, const char* value);
void set_manifest_field(const std::string& key, std::uint64_t value);
void set_manifest_field(const std::string& key, double value);

// Snapshot of the registered fields, JSON-rendered values keyed by name
// (strings unescaped). Primarily for tests.
std::map<std::string, std::string> manifest_fields();

void clear_manifest_fields();  // test isolation

// {"schema":"fedl-manifest-v1","clean":...,"build_type":...,
//  "profiling_compiled":...,"final_digest":"<16-hex>","runs_digested":N,
//  "fields":{...}}  — final_digest is the XOR-combined per-run digest
// (obs/digest.h), "0000000000000000" when no run recorded one.
void write_manifest(std::ostream& os, bool clean);
void write_manifest_file(const std::string& path, bool clean);

}  // namespace fedl::obs
