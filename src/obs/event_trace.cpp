#include "obs/event_trace.h"

#include <sstream>

#include "common/error.h"

namespace fedl::obs {

EventTraceWriter::EventTraceWriter(const std::string& path, bool append)
    : path_(path),
      out_(path, append ? std::ios::app : std::ios::trunc) {
  if (!out_) throw ConfigError("cannot open event trace: " + path);
}

void EventTraceWriter::write_event(
    const std::function<void(JsonWriter&)>& build) {
  // Serialize into a buffer first so a line is written in one piece even
  // with concurrent writers, and a throwing builder leaves no partial line.
  std::ostringstream line;
  JsonWriter w(line);
  build(w);
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line.str() << '\n';
  out_.flush();
  if (!out_) throw ConfigError("short write on event trace: " + path_);
}

void EventTraceWriter::write_raw(const std::string& lines) {
  if (lines.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << lines;
  out_.flush();
  if (!out_) throw ConfigError("short write on event trace: " + path_);
}

}  // namespace fedl::obs
