// Determinism sentinel: per-epoch FNV-1a digests chained over the decision
// trace and the aggregated model parameters.
//
// The engine guarantees bit-identical EpochOutcomes and traces at any
// --jobs/--threads combination; a 64-bit chained digest makes that guarantee
// a first-class *observable* — two runs are byte-identical iff their digest
// chains match epoch by epoch, without storing (or diffing) full traces.
// The harness updates one DigestChain per run with (a) the serialized epoch
// trace record and (b) the raw bytes of the post-aggregation global model,
// so divergence in either the decision path or the numerics is caught at
// the first epoch where it appears.
//
// Digests are plain FNV-1a 64 (not cryptographic): the adversary here is an
// unintended nondeterminism bug, not a forger.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fedl::obs {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

// One FNV-1a round over `len` bytes starting from `h`.
std::uint64_t fnv1a(const void* data, std::size_t len,
                    std::uint64_t h = kFnvOffsetBasis);

// Fixed-width lower-case hex (16 chars, no 0x prefix) — the format the
// trace records, manifest, and validate_trace.py agree on.
std::string digest_hex(std::uint64_t digest);

// A chained digest: every update folds new bytes into the running value, so
// digest_t depends on every byte of epochs 0..t. Copyable value type.
class DigestChain {
 public:
  std::uint64_t value() const { return chain_; }

  std::uint64_t update(const void* data, std::size_t len) {
    chain_ = fnv1a(data, len, chain_);
    return chain_;
  }

 private:
  std::uint64_t chain_ = kFnvOffsetBasis;
};

// Process-wide combination of per-run final digests, read by the manifest.
// Runs may complete in any order under the grid scheduler, so the combine
// is XOR (order-independent): the combined value is deterministic for a
// deterministic set of runs regardless of --jobs.
void note_run_digest(std::uint64_t final_digest);
std::uint64_t combined_run_digest();  // 0 when no run recorded one yet
std::uint64_t runs_digested();
void reset_run_digests();  // test/bench isolation

}  // namespace fedl::obs
