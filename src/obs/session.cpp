#include "obs/session.h"

#include <fstream>

#include "common/error.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace fedl::obs {

ObsSession::ObsSession(const Flags& flags,
                       const std::string& default_log_level) {
  // Precedence: explicit --log > FEDL_LOG_LEVEL env var > binary default.
  if (flags.has("log"))
    set_log_level(parse_log_level(flags.get_string("log", default_log_level)));
  else
    set_log_level(log_level_from_env(parse_log_level(default_log_level)));

  trace_out_ = flags.get_string("trace-out", "");
  metrics_out_ = flags.get_string("metrics-out", "");
  profile_out_ = flags.get_string("profile-out", "");

  if (!trace_out_.empty()) {
    // Runs append per-epoch events; start every invocation from a clean
    // file so stale epochs from a previous process never mix in.
    std::ofstream truncate(trace_out_, std::ios::trunc);
    if (!truncate) throw ConfigError("cannot open trace file: " + trace_out_);
  }
  if (!profile_out_.empty()) {
    Profiler::global().clear();
    Profiler::global().set_enabled(true);
  }
}

ObsSession::~ObsSession() {
  try {
    if (!profile_out_.empty()) {
      Profiler::global().set_enabled(false);
      Profiler::global().write_chrome_trace_file(profile_out_);
      FEDL_INFO << "wrote " << Profiler::global().num_spans()
                << " profile spans to " << profile_out_;
    }
    if (!metrics_out_.empty()) {
      std::ofstream out(metrics_out_, std::ios::trunc);
      if (!out) throw ConfigError("cannot write metrics: " + metrics_out_);
      MetricsRegistry::global().snapshot().write_json(out);
      FEDL_INFO << "wrote metrics snapshot to " << metrics_out_;
    }
    if (!trace_out_.empty())
      FEDL_INFO << "decision trace at " << trace_out_;
  } catch (const std::exception& e) {
    FEDL_WARN << "failed to flush observability artifacts: " << e.what();
  }
}

}  // namespace fedl::obs
