#include "obs/session.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>

#include "common/error.h"
#include "common/logging.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/prometheus.h"
#include "obs/time_series.h"

namespace fedl::obs {
namespace {

// The session the crash guards flush. One live session per binary is the
// intended pattern (declared first in main); with nested sessions the most
// recent wins.
std::atomic<ObsSession*> g_active_session{nullptr};

void crash_flush() {
  if (ObsSession* session = g_active_session.load(std::memory_order_acquire))
    session->flush(/*clean=*/false);
}

void arm_atexit_guard() {
  // atexit stacks handlers; register ours once per process. On a normal
  // exit the destructor already cleared g_active_session, so this no-ops;
  // it fires for std::exit() mid-run and for uncaught exceptions routed
  // through the check-failure hook's terminate path.
  static const bool armed = [] {
    std::atexit(crash_flush);
    return true;
  }();
  (void)armed;
}

}  // namespace

ObsSession::ObsSession(const Flags& flags,
                       const std::string& default_log_level) {
  // Precedence: explicit --log > FEDL_LOG_LEVEL env var > binary default.
  if (flags.has("log"))
    set_log_level(parse_log_level(flags.get_string("log", default_log_level)));
  else
    set_log_level(log_level_from_env(parse_log_level(default_log_level)));

  trace_out_ = flags.get_string("trace-out", "");
  metrics_out_ = flags.get_string("metrics-out", "");
  profile_out_ = flags.get_string("profile-out", "");
  series_out_ = flags.get_string("series-out", "");
  manifest_out_ = flags.get_string("manifest-out", "");
  prom_out_ = flags.get_string("prom-out", "");
  prom_interval_s_ = flags.get_double("prom-interval", 5.0);

  if (!trace_out_.empty()) {
    // Runs append per-epoch events; start every invocation from a clean
    // file so stale epochs from a previous process never mix in.
    std::ofstream truncate(trace_out_, std::ios::trunc);
    if (!truncate) throw ConfigError("cannot open trace file: " + trace_out_);
  }
  if (!profile_out_.empty()) {
    Profiler::global().clear();
    Profiler::global().set_enabled(true);
  }
  if (!series_out_.empty()) {
    const int capacity = flags.get_int("series-capacity", 4096);
    if (capacity <= 0)
      throw ConfigError("--series-capacity must be positive");
    TimeSeriesRecorder::global().enable(static_cast<std::size_t>(capacity));
  }
  if (!prom_out_.empty() && prom_interval_s_ <= 0.0)
    throw ConfigError("--prom-interval must be positive");

  g_active_session.store(this, std::memory_order_release);
  set_check_failure_hook(&crash_flush);
  arm_atexit_guard();

  if (!prom_out_.empty()) start_prom_flusher();
}

ObsSession::~ObsSession() {
  // Disarm the crash guards first: once teardown begins, a hook firing on a
  // half-destroyed session would be worse than a lost flush.
  g_active_session.store(nullptr, std::memory_order_release);
  set_check_failure_hook(nullptr);
  stop_prom_flusher();
  if (!profile_out_.empty()) Profiler::global().set_enabled(false);
  flush(/*clean=*/true);
  if (!series_out_.empty()) TimeSeriesRecorder::global().disable();
}

void ObsSession::flush(bool clean) noexcept {
  std::lock_guard<std::mutex> lock(flush_mutex_);
  if (!clean) dirty_ = true;
  const bool clean_now = clean && !dirty_;
  try {
    if (!profile_out_.empty()) {
      Profiler::global().write_chrome_trace_file(profile_out_);
      FEDL_INFO << "wrote " << Profiler::global().num_spans()
                << " profile spans to " << profile_out_;
    }
    if (!metrics_out_.empty()) {
      std::ofstream out(metrics_out_, std::ios::trunc);
      if (!out) throw ConfigError("cannot write metrics: " + metrics_out_);
      MetricsRegistry::global().snapshot().write_json(out);
      FEDL_INFO << "wrote metrics snapshot to " << metrics_out_;
    }
    if (!series_out_.empty()) {
      std::ofstream out(series_out_, std::ios::trunc);
      if (!out) throw ConfigError("cannot write series: " + series_out_);
      TimeSeriesRecorder::global().write_json(out);
      FEDL_INFO << "wrote time series to " << series_out_;
    }
    if (!prom_out_.empty()) {
      PrometheusWriter::write_file(MetricsRegistry::global().snapshot(),
                                   prom_out_);
      FEDL_INFO << "wrote prometheus exposition to " << prom_out_;
    }
    if (!manifest_out_.empty()) {
      write_manifest_file(manifest_out_, clean_now);
      FEDL_INFO << "wrote run manifest to " << manifest_out_
                << (clean_now ? "" : " (clean: false)");
    }
    if (!trace_out_.empty())
      FEDL_INFO << "decision trace at " << trace_out_;
  } catch (const std::exception& e) {
    FEDL_WARN << "failed to flush observability artifacts: " << e.what();
  }
}

void ObsSession::start_prom_flusher() {
  prom_thread_ = std::thread([this] {
    const auto interval = std::chrono::duration<double>(prom_interval_s_);
    std::unique_lock<std::mutex> lock(prom_mutex_);
    while (!prom_stop_) {
      if (prom_cv_.wait_for(lock, interval, [this] { return prom_stop_; }))
        break;
      lock.unlock();
      try {
        PrometheusWriter::write_file(MetricsRegistry::global().snapshot(),
                                     prom_out_);
      } catch (const std::exception& e) {
        FEDL_WARN << "prometheus flush failed: " << e.what();
      }
      lock.lock();
    }
  });
}

void ObsSession::stop_prom_flusher() {
  if (!prom_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(prom_mutex_);
    prom_stop_ = true;
  }
  prom_cv_.notify_all();
  prom_thread_.join();
}

}  // namespace fedl::obs
