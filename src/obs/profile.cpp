#include "obs/profile.h"

#include <chrono>
#include <fstream>

#include "common/error.h"
#include "obs/json_writer.h"

namespace fedl::obs {
namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Profiler::Profiler() : epoch_ns_(steady_ns()) {}

Profiler& Profiler::global() {
  // leaked, see metrics.cpp
  // fedl-lint: allow(naked-new)
  static Profiler* profiler = new Profiler();
  return *profiler;
}

std::uint64_t Profiler::now_ns() const { return steady_ns() - epoch_ns_; }

Profiler::ThreadLog* Profiler::local_log() {
  thread_local ThreadLog* log = nullptr;
  if (!log) {
    std::lock_guard<std::mutex> lock(mutex_);
    logs_.push_back(std::make_unique<ThreadLog>());
    log = logs_.back().get();
    log->tid = static_cast<int>(logs_.size());
  }
  return log;
}

void Profiler::set_thread_name(const std::string& name) {
  ThreadLog* log = local_log();
  std::lock_guard<std::mutex> lock(log->mutex);
  log->name = name;
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    log->spans.clear();
  }
}

std::size_t Profiler::num_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    n += log->spans.size();
  }
  return n;
}

void Profiler::write_chrome_trace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  // thread_name metadata first so viewers label lanes before any span.
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    if (log->name.empty()) continue;
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(1);
    w.key("tid").value(log->tid);
    w.key("args").begin_object();
    w.key("name").value(log->name);
    w.end_object();
    w.end_object();
  }
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    for (const Span& s : log->spans) {
      w.begin_object();
      w.key("name").value(s.name);
      w.key("cat").value("fedl");
      w.key("ph").value("X");
      w.key("ts").value(static_cast<double>(s.start_ns) / 1000.0);
      w.key("dur").value(static_cast<double>(s.dur_ns) / 1000.0);
      w.key("pid").value(1);
      w.key("tid").value(log->tid);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void Profiler::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw ConfigError("cannot write trace: " + path);
  write_chrome_trace(out);
  if (!out) throw ConfigError("short write on trace: " + path);
}

}  // namespace fedl::obs
