#include "obs/digest.h"

#include <atomic>

namespace fedl::obs {
namespace {

std::atomic<std::uint64_t> g_combined{0};
std::atomic<std::uint64_t> g_runs{0};

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= kFnvPrime;
  }
  return h;
}

std::string digest_hex(std::uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

void note_run_digest(std::uint64_t final_digest) {
  g_combined.fetch_xor(final_digest, std::memory_order_relaxed);
  g_runs.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t combined_run_digest() {
  return g_combined.load(std::memory_order_relaxed);
}

std::uint64_t runs_digested() {
  return g_runs.load(std::memory_order_relaxed);
}

void reset_run_digests() {
  g_combined.store(0, std::memory_order_relaxed);
  g_runs.store(0, std::memory_order_relaxed);
}

}  // namespace fedl::obs
