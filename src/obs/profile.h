// Scoped-timer profiler with chrome://tracing / Perfetto JSON export.
//
//   void FlEngine::run_epoch(...) {
//     FEDL_PROFILE_SCOPE("fl.run_epoch");
//     ...
//   }
//
// Each thread records spans into its own log (one lock per span, only ever
// contended by a snapshot/export), so worker threads of the training pool
// show up as separate tracks in the trace viewer. Profiling is
//
//  * compiled out entirely when the CMake option FEDL_PROFILING is OFF
//    (FEDL_PROFILE_SCOPE expands to nothing), and
//  * disabled at runtime by default: an inactive scope is one relaxed
//    atomic load and a branch (~1 ns), so instrumented hot paths cost
//    nothing measurable until --profile-out switches recording on.
//
// Span names must be string literals (or otherwise outlive the profiler):
// only the pointer is stored.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace fedl::obs {

class Profiler {
 public:
  // Process-wide profiler; intentionally leaked like the metrics registry.
  static Profiler& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops all recorded spans (thread logs stay registered).
  void clear();

  std::size_t num_spans() const;

  // Chrome trace event format: {"traceEvents":[{"name","cat","ph":"X",
  // "ts","dur","pid","tid"},...]} with ts/dur in microseconds. Load the
  // file in https://ui.perfetto.dev or chrome://tracing.
  void write_chrome_trace(std::ostream& os) const;
  // Throws ConfigError on I/O failure.
  void write_chrome_trace_file(const std::string& path) const;

  // Internal: span sink for the owning thread (see FEDL_PROFILE_SCOPE).
  struct Span {
    const char* name;
    std::uint64_t start_ns;  // relative to the profiler epoch
    std::uint64_t dur_ns;
  };
  struct ThreadLog {
    std::mutex mutex;  // taken per span append and during export
    int tid = 0;
    std::string name;  // empty = unnamed; shown via thread_name metadata
    std::vector<Span> spans;
    void record(const char* name, std::uint64_t start_ns,
                std::uint64_t dur_ns) {
      std::lock_guard<std::mutex> lock(mutex);
      spans.push_back({name, start_ns, dur_ns});
    }
  };
  ThreadLog* local_log();
  std::uint64_t now_ns() const;

  // Names the calling thread's lane in the exported trace (Chrome-trace
  // "thread_name" metadata event, ph:"M"), so Perfetto shows
  // "pool-worker-3" instead of a bare tid. Cheap; safe to call whether or
  // not profiling is enabled or compiled in at the call site's level —
  // naming is registration, not recording.
  void set_thread_name(const std::string& name);

 private:
  Profiler();

  std::atomic<bool> enabled_{false};
  std::uint64_t epoch_ns_ = 0;  // steady_clock origin for span timestamps
  mutable std::mutex mutex_;    // thread-log list
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

#if defined(FEDL_PROFILING_ENABLED)

class ProfileScope {
 public:
  explicit ProfileScope(const char* name) {
    Profiler& p = Profiler::global();
    if (!p.enabled()) return;
    log_ = p.local_log();
    name_ = name;
    start_ns_ = p.now_ns();
  }
  ~ProfileScope() {
    if (log_)
      log_->record(name_, start_ns_, Profiler::global().now_ns() - start_ns_);
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler::ThreadLog* log_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

#define FEDL_PROFILE_CONCAT_INNER(a, b) a##b
#define FEDL_PROFILE_CONCAT(a, b) FEDL_PROFILE_CONCAT_INNER(a, b)
#define FEDL_PROFILE_SCOPE(name) \
  ::fedl::obs::ProfileScope FEDL_PROFILE_CONCAT(fedl_profile_scope_, \
                                                __LINE__)(name)

#else  // profiling compiled out

#define FEDL_PROFILE_SCOPE(name) ((void)0)

#endif  // FEDL_PROFILING_ENABLED

}  // namespace fedl::obs
