#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace fedl::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separate() {
  if (first_.back())
    first_.back() = false;
  else
    os_ << ',';
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  first_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  first_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  os_ << '"' << json_escape(k) << "\":";
  // The upcoming value is a continuation of this key, not a new sibling.
  first_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (std::isnan(v) || std::isinf(v)) return null();
  separate();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  os_ << "null";
  return *this;
}

}  // namespace fedl::obs
