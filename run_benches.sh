#!/bin/bash
# Runs every bench binary and collects output; used for bench_output.txt.
# Also emits BENCH_micro_kernels.json (google-benchmark JSON),
# BENCH_metrics.json (the abl_parallel run's metrics-registry snapshot:
# pool/gemm/solver/engine counters) and BENCH_grid.json (figure-grid wall
# clock, serial vs --jobs, see below) so the perf trajectory stays
# machine-readable across PRs.
cd "$(dirname "$0")"

# Figure-grid scheduler timing: the same Fig. 2 grid serial
# (--jobs 1 --threads 1) and parallel (--jobs 8, per-trial fan-out from the
# shared budget). Output is identical by construction (scheduler trials are
# bit-deterministic); only the wall clock differs. hardware_threads is
# recorded because the speedup is bounded by the machine the script ran on.
grid_bench() {
  local bin=build/bench/fig2_fmnist_acc_vs_time
  if [ ! -x "$bin" ]; then
    echo "grid bench skipped: $bin not built" >&2
    return
  fi
  local t0 t1 t2 serial_ns jobs_ns
  t0=$(date +%s%N)
  "$bin" --jobs=1 --threads=1 > /dev/null 2>&1
  t1=$(date +%s%N)
  "$bin" --jobs=8 > /dev/null 2>&1
  t2=$(date +%s%N)
  serial_ns=$((t1 - t0))
  jobs_ns=$((t2 - t1))
  awk -v s="$serial_ns" -v j="$jobs_ns" -v hw="$(nproc)" 'BEGIN {
    printf "{\n"
    printf "  \"figure\": \"fig2_fmnist_acc_vs_time\",\n"
    printf "  \"hardware_threads\": %d,\n", hw
    printf "  \"serial_s\": %.2f,\n", s / 1e9
    printf "  \"jobs8_s\": %.2f,\n", j / 1e9
    printf "  \"speedup\": %.2f\n", s / j
    printf "}\n"
  }' > BENCH_grid.json
}
grid_bench

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $(basename "$b") =====" >> bench_output.txt
    case "$(basename "$b")" in
      micro_kernels)
        "$b" --benchmark_out=BENCH_micro_kernels.json \
             --benchmark_out_format=json >> bench_output.txt 2>&1
        ;;
      abl_parallel)
        "$b" --metrics-out=BENCH_metrics.json >> bench_output.txt 2>&1
        ;;
      *)
        "$b" >> bench_output.txt 2>&1
        ;;
    esac
    echo "" >> bench_output.txt
  fi
done
echo "ALL_BENCHES_DONE" >> bench_output.txt
