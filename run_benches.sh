#!/bin/bash
# Runs every bench binary and collects output; used for bench_output.txt.
# Also emits BENCH_micro_kernels.json (google-benchmark JSON),
# BENCH_metrics.json (the abl_parallel run's metrics-registry snapshot:
# pool/gemm/solver/engine counters), BENCH_grid.json (figure-grid wall
# clock, serial vs --jobs, see below), BENCH_scale.json (fig8 selection-
# layer scale sweep) and BENCH_async.json (abl_async event-driven vs
# lockstep speedup grid) so the perf trajectory stays machine-readable
# across PRs.
#
# Committed BENCH_*.json files are only comparable when built the same way:
# non-Release builds run the benches for smoke value but are REFUSED as JSON
# emitters. Every emitted JSON is stamped with hardware_threads and the
# build type so numbers are never compared across machines blindly.
cd "$(dirname "$0")"

BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' build/CMakeCache.txt 2>/dev/null)
EMIT_JSON=0
if [ "$BUILD_TYPE" = "Release" ]; then
  EMIT_JSON=1
else
  echo "non-Release build (CMAKE_BUILD_TYPE='${BUILD_TYPE:-unknown}'):" \
       "refusing to emit BENCH_*.json" >&2
fi

# The GEMM kernel tier runtime dispatch resolved on this machine — recorded
# in every emitted JSON so committed numbers say which kernel produced them.
GEMM_KERNEL=unknown
if [ -x build/bench/gemm_kernel_probe ]; then
  GEMM_KERNEL=$(build/bench/gemm_kernel_probe 2>/dev/null || echo unknown)
fi

# Run manifest (obs/manifest.h): one tiny seeded quickstart run emits
# manifest.json — build type, resolved GEMM kernel tier, thread budget,
# seed, config hash and the run's final determinism digest. stamp_json
# embeds it into every emitted BENCH_*.json so committed numbers carry
# their full provenance, not just the three scalar stamps.
MANIFEST_FILE=""
if [ "$EMIT_JSON" = "1" ] && [ -x build/examples/quickstart ]; then
  MANIFEST_FILE=$(mktemp)
  if ! build/examples/quickstart --clients 6 --epochs 3 --samples 200 \
       --seed 1 --digest --manifest-out="$MANIFEST_FILE" > /dev/null 2>&1; then
    rm -f "$MANIFEST_FILE"
    MANIFEST_FILE=""
    echo "manifest embedding skipped: quickstart manifest run failed" >&2
  fi
fi

# Adds {"hardware_threads": N, "build_type": "...", "gemm_kernel": "..."}
# plus the run manifest (when available) to an emitted JSON file (object or
# google-benchmark report alike) in place.
stamp_json() {
  local f="$1"
  [ -f "$f" ] || return
  python3 - "$f" "$(nproc)" "$BUILD_TYPE" "$GEMM_KERNEL" "$MANIFEST_FILE" <<'PY'
import json, sys
path, hw, bt, gk, mf = (sys.argv[1], int(sys.argv[2]), sys.argv[3],
                        sys.argv[4], sys.argv[5])
with open(path) as fh:
    doc = json.load(fh)
if isinstance(doc, dict):
    doc["hardware_threads"] = hw
    doc["build_type"] = bt
    doc["gemm_kernel"] = gk
    if mf:
        try:
            with open(mf) as mh:
                doc["manifest"] = json.load(mh)
        except (OSError, ValueError) as e:
            print(f"manifest embedding skipped for {path}: {e}",
                  file=sys.stderr)
with open(path, "w") as fh:
    json.dump(doc, fh, indent=1)
    fh.write("\n")
PY
}

# Figure-grid scheduler timing: the same Fig. 2 grid serial
# (--jobs 1 --threads 1) and parallel (--jobs 8, per-trial fan-out from the
# shared budget). Output is identical by construction (scheduler trials are
# bit-deterministic); only the wall clock differs. hardware_threads is
# recorded because the speedup is bounded by the machine the script ran on.
grid_bench() {
  local bin=build/bench/fig2_fmnist_acc_vs_time
  if [ ! -x "$bin" ]; then
    echo "grid bench skipped: $bin not built" >&2
    return
  fi
  if [ "$EMIT_JSON" != "1" ]; then
    echo "grid bench JSON skipped: non-Release build" >&2
    return
  fi
  local t0 t1 t2 serial_ns jobs_ns
  t0=$(date +%s%N)
  "$bin" --jobs=1 --threads=1 > /dev/null 2>&1
  t1=$(date +%s%N)
  "$bin" --jobs=8 > /dev/null 2>&1
  t2=$(date +%s%N)
  serial_ns=$((t1 - t0))
  jobs_ns=$((t2 - t1))
  awk -v s="$serial_ns" -v j="$jobs_ns" 'BEGIN {
    printf "{\n"
    printf "  \"figure\": \"fig2_fmnist_acc_vs_time\",\n"
    printf "  \"serial_s\": %.2f,\n", s / 1e9
    printf "  \"jobs8_s\": %.2f,\n", j / 1e9
    printf "  \"speedup\": %.2f\n", s / j
    printf "}\n"
  }' > BENCH_grid.json
  stamp_json BENCH_grid.json
}
grid_bench

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $(basename "$b") =====" >> bench_output.txt
    case "$(basename "$b")" in
      micro_kernels)
        if [ "$EMIT_JSON" = "1" ]; then
          "$b" --benchmark_out=BENCH_micro_kernels.json \
               --benchmark_out_format=json >> bench_output.txt 2>&1
          stamp_json BENCH_micro_kernels.json
        else
          "$b" >> bench_output.txt 2>&1
        fi
        ;;
      abl_parallel)
        if [ "$EMIT_JSON" = "1" ]; then
          "$b" --metrics-out=BENCH_metrics.json >> bench_output.txt 2>&1
          stamp_json BENCH_metrics.json
        else
          "$b" >> bench_output.txt 2>&1
        fi
        ;;
      fig8_scale_sweep)
        if [ "$EMIT_JSON" = "1" ]; then
          "$b" --json-out=BENCH_scale.json >> bench_output.txt 2>&1
          stamp_json BENCH_scale.json
        else
          "$b" >> bench_output.txt 2>&1
        fi
        ;;
      abl_async)
        # Event-driven vs lockstep at equal budget (DESIGN.md §12); the
        # speedup cells are the PR's headline number, so keep them stamped.
        if [ "$EMIT_JSON" = "1" ]; then
          "$b" --json-out=BENCH_async.json >> bench_output.txt 2>&1
          stamp_json BENCH_async.json
        else
          "$b" >> bench_output.txt 2>&1
        fi
        ;;
      *)
        "$b" >> bench_output.txt 2>&1
        ;;
    esac
    echo "" >> bench_output.txt
  fi
done
echo "ALL_BENCHES_DONE" >> bench_output.txt
[ -n "$MANIFEST_FILE" ] && rm -f "$MANIFEST_FILE"
