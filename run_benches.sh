#!/bin/bash
# Runs every bench binary and collects output; used for bench_output.txt.
# Also emits BENCH_micro_kernels.json (google-benchmark JSON) and
# BENCH_metrics.json (the abl_parallel run's metrics-registry snapshot:
# pool/gemm/solver/engine counters) so the perf trajectory stays
# machine-readable across PRs.
cd "$(dirname "$0")"
: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $(basename "$b") =====" >> bench_output.txt
    case "$(basename "$b")" in
      micro_kernels)
        "$b" --benchmark_out=BENCH_micro_kernels.json \
             --benchmark_out_format=json >> bench_output.txt 2>&1
        ;;
      abl_parallel)
        "$b" --metrics-out=BENCH_metrics.json >> bench_output.txt 2>&1
        ;;
      *)
        "$b" >> bench_output.txt 2>&1
        ;;
    esac
    echo "" >> bench_output.txt
  fi
done
echo "ALL_BENCHES_DONE" >> bench_output.txt
