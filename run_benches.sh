#!/bin/bash
# Runs every bench binary and collects output; used for bench_output.txt.
cd /root/repo
: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $(basename "$b") =====" >> bench_output.txt
    "$b" >> bench_output.txt 2>&1
    echo "" >> bench_output.txt
  fi
done
echo "ALL_BENCHES_DONE" >> bench_output.txt
