#!/bin/bash
# Runs every bench binary and collects output; used for bench_output.txt.
# Also emits BENCH_micro_kernels.json (google-benchmark JSON) so the kernel
# perf trajectory stays machine-readable across PRs.
cd "$(dirname "$0")"
: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $(basename "$b") =====" >> bench_output.txt
    if [ "$(basename "$b")" = "micro_kernels" ]; then
      "$b" --benchmark_out=BENCH_micro_kernels.json \
           --benchmark_out_format=json >> bench_output.txt 2>&1
    else
      "$b" >> bench_output.txt 2>&1
    fi
    echo "" >> bench_output.txt
  fi
done
echo "ALL_BENCHES_DONE" >> bench_output.txt
