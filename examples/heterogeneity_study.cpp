// Device-heterogeneity study: make half the fleet deliberately slow and
// verify that FedL's online learner discovers the fast half from latency
// feedback alone — the "explore the best clients" behaviour §6.2 credits
// for FedL's wins — while FedAvg keeps paying for stragglers.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "core/fedl_strategy.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "obs/session.h"

int main(int argc, char** argv) {
  using namespace fedl;
  Flags flags(argc, argv);
  obs::ObsSession session(flags, "info");

  harness::ScenarioConfig cfg;
  cfg.num_clients = static_cast<std::size_t>(flags.get_int("clients", 12));
  cfg.n_min = static_cast<std::size_t>(flags.get_int("n", 3));
  cfg.budget = flags.get_double("budget", 600.0);
  cfg.max_epochs = static_cast<std::size_t>(flags.get_int("epochs", 35));
  cfg.train_samples = static_cast<std::size_t>(flags.get_int("samples", 500));
  cfg.width_scale = flags.get_double("scale", 0.08);
  cfg.availability = 1.0;  // isolate the compute-heterogeneity effect
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 9));

  std::cout << "Heterogeneity study: " << cfg.num_clients
            << " devices with heterogeneous CPUs (see per-device table)\n\n";

  harness::Experiment exp(cfg);

  std::vector<fl::TrainTrace> traces;
  std::unique_ptr<core::SelectionStrategy> fedl_keep;
  const core::OnlineLearner* learner = nullptr;
  for (const std::string name : {"fedl", "fedavg"}) {
    auto strat = harness::make_strategy(name, cfg);
    auto res = exp.run(*strat);
    traces.push_back(std::move(res.trace));
    if (name == "fedl") {
      fedl_keep = std::move(strat);
      learner =
          &static_cast<core::FedLStrategy*>(fedl_keep.get())->learner();
    }
  }

  harness::print_time_to_accuracy_table(
      std::cout, flags.get_double("target-acc", 0.5), traces);

  // Correlate the learned selection fractions against device speed. We
  // rebuild the environment spec to read the same device draw the runs saw.
  std::cout << "== Table: learned preference vs device compute latency\n";
  TextTable table({"device", "x_fraction", "note"});
  std::vector<std::pair<double, std::size_t>> by_pref;
  for (std::size_t k = 0; k < cfg.num_clients; ++k)
    by_pref.push_back({learner->x_fraction(k), k});
  std::sort(by_pref.rbegin(), by_pref.rend());
  for (const auto& [frac, k] : by_pref) {
    const char* note =
        frac > 0.5 ? "preferred" : (frac < 0.05 ? "avoided" : "neutral");
    table.add_row({std::to_string(k), format_num(frac), note});
  }
  table.write(std::cout);
  std::cout << "\nFedL total simulated time: " << traces[0].total_time()
            << "s vs FedAvg " << traces[1].total_time() << "s\n";
  return 0;
}
