// Data/exchange workflow example: export the synthetic dataset to the
// standard IDX (MNIST) format, reload it, and run a budgeted FL session in
// two halves with a model checkpoint in between — the resume workflow for
// long budget sweeps. Users with the real Fashion-MNIST files can point
// data::load_idx at them and run every experiment on true data.
#include <cstdio>
#include <iostream>

#include "common/config.h"
#include "common/logging.h"
#include "data/idx_loader.h"
#include "data/synthetic.h"
#include "harness/experiment.h"
#include "harness/json_export.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/session.h"

int main(int argc, char** argv) {
  using namespace fedl;
  Flags flags(argc, argv);
  obs::ObsSession session(flags, "info");

  const std::string dir = flags.get_string("dir", "/tmp");
  const std::string img = dir + "/fedl_demo-images-idx3-ubyte";
  const std::string lab = dir + "/fedl_demo-labels-idx1-ubyte";
  const std::string ckpt = dir + "/fedl_demo_model.bin";
  std::remove(ckpt.c_str());

  // 1) Export a synthetic dataset in IDX format and read it back.
  data::SyntheticSpec spec = data::fmnist_like_spec(
      static_cast<std::size_t>(flags.get_int("samples", 400)),
      static_cast<std::uint64_t>(flags.get_int("seed", 4)));
  spec.noise_stddev = 0.25;  // keep pixels mostly in [0,1] for 8-bit export
  spec.signal_scale = 0.3;
  data::Dataset original = data::make_synthetic(spec);
  data::save_idx(original, img, lab);
  data::Dataset reloaded = data::load_idx(img, lab);
  std::cout << "exported+reloaded " << reloaded.size()
            << " samples via IDX (" << img << ")\n";

  // 2) Run a budgeted FL session in two halves, checkpointing the global
  //    model between them.
  harness::ScenarioConfig cfg;
  cfg.num_clients = static_cast<std::size_t>(flags.get_int("clients", 10));
  cfg.n_min = 3;
  cfg.budget = flags.get_double("budget", 150.0);
  cfg.max_epochs = static_cast<std::size_t>(flags.get_int("epochs", 6));
  cfg.train_samples = reloaded.size();
  cfg.width_scale = flags.get_double("scale", 0.06);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 4));
  cfg.checkpoint_path = ckpt;

  harness::Experiment exp(cfg);
  auto strat1 = harness::make_strategy("fedl", cfg);
  const auto first = exp.run(*strat1);
  std::cout << "first half:  " << first.epochs_run << " epochs, accuracy "
            << first.trace.final_accuracy() << ", model checkpointed to "
            << ckpt << "\n";

  auto strat2 = harness::make_strategy("fedl", cfg);
  const auto second = exp.run(*strat2);  // resumes from the checkpoint
  std::cout << "second half: " << second.epochs_run
            << " epochs (resumed), accuracy "
            << second.trace.final_accuracy() << "\n";

  if (!second.trace.records.empty() &&
      second.trace.records.front().test_accuracy + 0.05 >=
          first.trace.final_accuracy()) {
    std::cout << "resume confirmed: second session started from the first "
                 "session's model, not from scratch.\n";
  }

  // 3) Export both halves plus the run's metrics snapshot as one JSON bundle
  //    — the {"traces": ..., "metrics": ...} shape notebooks can ingest whole.
  const std::string bundle = dir + "/fedl_demo_run.json";
  harness::write_run_json_file(bundle, {first.trace, second.trace},
                               obs::MetricsRegistry::global().snapshot());
  std::cout << "run bundle (traces + metrics) written to " << bundle << "\n";

  std::remove(img.c_str());
  std::remove(lab.c_str());
  std::remove(ckpt.c_str());
  std::remove(bundle.c_str());
  return 0;
}
