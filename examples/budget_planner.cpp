// Capacity planning with the FedL public API: given a target accuracy,
// sweep candidate budgets, report the horizon bounds T_C from the paper's
// formula, and find the smallest budget that reaches the target.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "core/budget.h"
#include "harness/experiment.h"
#include "obs/session.h"

int main(int argc, char** argv) {
  using namespace fedl;
  Flags flags(argc, argv);
  obs::ObsSession session(flags, "warn");

  const double target = flags.get_double("target-acc", 0.5);
  const auto budgets = flags.get_double_list("budgets", {150, 300, 600, 1200});

  harness::ScenarioConfig cfg;
  cfg.num_clients = static_cast<std::size_t>(flags.get_int("clients", 12));
  cfg.n_min = static_cast<std::size_t>(flags.get_int("n", 4));
  cfg.max_epochs = static_cast<std::size_t>(flags.get_int("epochs", 60));
  cfg.train_samples = static_cast<std::size_t>(flags.get_int("samples", 500));
  cfg.width_scale = flags.get_double("scale", 0.08);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));

  std::cout << "Budget planning for target accuracy " << target << "\n\n";

  // The paper's stopping-time range for each candidate budget, using the
  // cost distribution bounds from the device model (U[0.1, 12]).
  std::cout << "== Table: horizon bounds T_C = C/(n*cost)\n";
  TextTable horizon({"budget", "T_C_min", "T_C_max"});
  for (double c : budgets) {
    const auto hb = core::BudgetLedger::horizon_bounds(c, cfg.n_min, 0.1, 12.0);
    horizon.add_row({format_num(c), format_num(hb.lower),
                     format_num(hb.upper)});
  }
  horizon.write(std::cout);
  std::cout << "\n";

  std::cout << "== Table: budget sweep with FedL\n";
  TextTable sweep({"budget", "epochs", "final_acc", "time_to_target_s",
                   "cost_spent"});
  double best_budget = -1.0;
  for (double c : budgets) {
    harness::ScenarioConfig run_cfg = cfg;
    run_cfg.budget = c;
    harness::Experiment exp(run_cfg);
    auto strat = harness::make_strategy("fedl", run_cfg);
    const auto res = exp.run(*strat);
    const double t = res.trace.time_to_accuracy(target);
    sweep.add_row({format_num(c), std::to_string(res.epochs_run),
                   format_num(res.trace.final_accuracy()),
                   std::isinf(t) ? "never" : format_num(t),
                   format_num(res.trace.total_cost())});
    if (best_budget < 0 && !std::isinf(t)) best_budget = c;
  }
  sweep.write(std::cout);
  std::cout << "\n";
  if (best_budget > 0)
    std::cout << "Smallest evaluated budget reaching the target: "
              << best_budget << "\n";
  else
    std::cout << "No evaluated budget reaches the target; raise the budget "
                 "range or lower the target.\n";
  return 0;
}
