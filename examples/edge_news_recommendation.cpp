// The paper's motivating scenario (§1): federated training of a news
// recommendation model where user interests drift over time. Client data is
// non-IID (each user reads a couple of principal topics), arrives online as
// a Poisson stream, and the drifting window models changing interests.
//
// The example runs FedL against the paper roster on this scenario and shows
// how FedL's learned per-client preferences track the drift.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "core/fedl_strategy.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "obs/session.h"

int main(int argc, char** argv) {
  using namespace fedl;
  Flags flags(argc, argv);
  obs::ObsSession session(flags, "info");

  harness::ScenarioConfig cfg;
  cfg.task = harness::Task::kFmnistLike;  // 10 "topics" instead of 10 classes
  cfg.iid = false;                        // users read a few principal topics
  cfg.num_clients = static_cast<std::size_t>(flags.get_int("clients", 14));
  cfg.n_min = static_cast<std::size_t>(flags.get_int("n", 4));
  cfg.budget = flags.get_double("budget", 700.0);
  cfg.max_epochs = static_cast<std::size_t>(flags.get_int("epochs", 40));
  cfg.train_samples = static_cast<std::size_t>(flags.get_int("samples", 700));
  cfg.width_scale = flags.get_double("scale", 0.08);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  std::cout << "Edge news recommendation: " << cfg.num_clients
            << " users with drifting, non-IID reading histories; budget "
            << cfg.budget << "\n\n";

  harness::Experiment exp(cfg);
  std::vector<fl::TrainTrace> traces;
  const core::OnlineLearner* learner = nullptr;
  std::unique_ptr<core::SelectionStrategy> fedl_strat;
  for (const auto& name : harness::paper_roster()) {
    auto strat = harness::make_strategy(name, cfg);
    auto res = exp.run(*strat);
    traces.push_back(std::move(res.trace));
    if (name == "fedl") {
      fedl_strat = std::move(strat);  // keep alive for introspection
      learner = &static_cast<core::FedLStrategy*>(fedl_strat.get())->learner();
    }
  }

  for (const auto& t : traces)
    harness::print_trace_series(std::cout, "news-recsys", t.algorithm, t);
  harness::print_time_to_accuracy_table(
      std::cout, flags.get_double("target-acc", 0.4), traces);

  // Show what FedL learned about each user: its selection fraction memory
  // and the per-client convergence/utility estimates.
  std::cout << "== Table: FedL's learned per-user state\n";
  TextTable table({"user", "x_fraction", "eta_estimate", "delta_estimate"});
  for (std::size_t k = 0; k < cfg.num_clients; ++k) {
    table.add_row({std::to_string(k), format_num(learner->x_fraction(k)),
                   format_num(learner->eta_estimate(k)),
                   format_num(learner->delta_estimate(k))});
  }
  table.write(std::cout);
  return 0;
}
