// Quickstart: run FedL against FedAvg on a small FMNIST-like scenario and
// print the training traces plus the completion-time comparison.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--clients 20] [--budget 400] [--seed 1]
//
// Observability (see README "Observability" for the Perfetto walkthrough):
//   --trace-out=trace.jsonl     per-epoch decision telemetry (JSONL)
//   --metrics-out=metrics.json  counters/gauges/histograms snapshot at exit
//   --profile-out=profile.json  Chrome-trace timeline (chrome://tracing)
//   --series-out=series.json    per-epoch time-series ring buffers
//   --manifest-out=manifest.json run manifest (build, kernel, seeds, digest)
//   --prom-out=metrics.prom     live Prometheus exposition (periodic flush)
//   --monitor / --strict-monitor online invariant monitor (anomaly records)
//   --digest                     per-epoch determinism digest chain
#include <iostream>

#include "common/config.h"
#include "common/logging.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "obs/metrics.h"
#include "obs/session.h"

int main(int argc, char** argv) {
  using namespace fedl;
  Flags flags(argc, argv);
  obs::ObsSession session(flags, "info");

  harness::ScenarioConfig cfg;
  cfg.task = harness::Task::kFmnistLike;
  cfg.iid = flags.get_bool("iid", true);
  cfg.num_clients = static_cast<std::size_t>(flags.get_int("clients", 20));
  cfg.n_min = static_cast<std::size_t>(flags.get_int("n", 4));
  cfg.budget = flags.get_double("budget", 400.0);
  cfg.max_epochs = static_cast<std::size_t>(flags.get_int("epochs", 30));
  cfg.train_samples = static_cast<std::size_t>(flags.get_int("samples", 1200));
  cfg.width_scale = flags.get_double("scale", 0.15);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.trace_out = session.trace_out();
  cfg.monitor = flags.get_bool("monitor", false);
  cfg.strict_monitor = flags.get_bool("strict-monitor", false);
  if (cfg.strict_monitor) cfg.monitor = true;
  cfg.record_digests = flags.get_bool("digest", false);

  std::cout << "FedL quickstart: " << cfg.num_clients << " clients, budget "
            << cfg.budget << ", " << (cfg.iid ? "IID" : "non-IID")
            << " data\n\n";

  harness::Experiment exp(cfg);
  std::vector<fl::TrainTrace> traces;
  for (const std::string& name : {"fedl", "fedavg"}) {
    auto strat = harness::make_strategy(name, cfg);
    harness::RunResult res = exp.run(*strat);
    traces.push_back(std::move(res.trace));
  }

  for (const auto& t : traces)
    harness::print_trace_series(std::cout, "quickstart", t.algorithm, t);
  harness::print_accuracy_at_time_table(std::cout, traces[0].total_time(),
                                        traces);
  harness::print_time_to_accuracy_table(std::cout, 0.6, traces);
  harness::print_metrics_summary(std::cout,
                                 obs::MetricsRegistry::global().snapshot());
  return 0;
}
