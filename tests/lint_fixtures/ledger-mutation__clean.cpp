// Conforming: the real class shape — charge() is the only mutator, every
// other member is const or static. The rule must stay quiet.
#include <cstddef>

struct HorizonBounds {
  double lower = 0.0;
  double upper = 0.0;
};

class BudgetLedger {
 public:
  explicit BudgetLedger(double total) : total_(total) {}
  double total() const { return total_; }
  double spent() const { return spent_; }
  double remaining() const { return total_ - spent_; }
  bool exhausted() const { return remaining() <= 0.0; }
  void charge(double amount);
  static HorizonBounds horizon_bounds(double budget, std::size_t n,
                                      double min_cost, double max_cost);

 private:
  double total_;
  double spent_ = 0.0;
};
