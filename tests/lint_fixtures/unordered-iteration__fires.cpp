// Known-bad: hash-order iteration feeding a float accumulation and a trace
// write. Both loops must be reported by rule `unordered-iteration`.
#include <ostream>
#include <unordered_map>
#include <unordered_set>

double sum_losses(const std::unordered_map<int, double>& loss_by_client) {
  double total = 0.0;
  for (const auto& [id, loss] : loss_by_client) {
    total += loss;  // float addition is not associative: order leaks in
  }
  return total;
}

void emit_ids(const std::unordered_set<int>& selected, std::ostream& os) {
  for (int id : selected) {
    os << id << '\n';  // trace bytes now depend on hash seed
  }
}
