// Conforming: order-insensitive use (collect keys, sort, then reduce in
// deterministic order). The collection loop has no accumulation/emission
// sink, so the rule must stay quiet.
#include <algorithm>
#include <unordered_map>
#include <vector>

double sum_losses(const std::unordered_map<int, double>& loss_by_client) {
  std::vector<int> ids;
  ids.reserve(loss_by_client.size());
  for (const auto& [id, loss] : loss_by_client) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  double total = 0.0;
  for (int id : ids) total += loss_by_client.at(id);
  return total;
}
