// Same bad code as ambient-rng__fires.cpp, every site suppressed with the
// escape hatch. fedl-lint must report nothing.
#include <cstdlib>
#include <ctime>
#include <random>

int bad_seed() {
  // fedl-lint: allow(ambient-rng)
  std::srand(static_cast<unsigned>(time(nullptr)));
  std::random_device rd;  // fedl-lint: allow(ambient-rng)
  return std::rand() + static_cast<int>(rd());  // fedl-lint: allow(ambient-rng)
}
