// Known-bad: metric names off the `subsystem.metric_name` convention.
// Every registration below must be reported by rule `metric-name`.
#include <string>

struct Counter {
  explicit Counter(const std::string& name);
};
struct Gauge {
  explicit Gauge(const std::string& name);
};

void register_bad_metrics() {
  static const Counter a("EpochCount");        // no dot, CamelCase
  static const Counter b("fl.EpochCount");     // CamelCase segment
  static const Gauge c("fl.replica bytes");    // whitespace
  static const Gauge d("fl.");                 // empty segment
}
