// Known-bad header: uses std::vector and std::size_t without including
// anything, so it only compiles after an includer happens to pull in
// <vector>. The generated-TU compile check must report it.
#pragma once

inline std::size_t head(const std::vector<int>& v) {
  return v.empty() ? 0 : static_cast<std::size_t>(v.front());
}
