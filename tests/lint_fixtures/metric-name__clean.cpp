// Conforming dotted snake.case names. The rule must stay quiet.
#include <string>
#include <vector>

struct Counter {
  explicit Counter(const std::string& name);
};
struct Histogram {
  Histogram(const std::string& name, std::vector<double> bounds);
};

void register_good_metrics() {
  static const Counter a("fl.epochs");
  static const Counter b("scheduler.peak_inflight");
  static const Histogram h("solver.iters_per_call", {1.0, 2.0, 4.0});
}
