// Known-bad: raw allocations. Every line below must be reported by rule
// `naked-new`.
#include <cstdlib>

struct Buffer {
  float* data;
};

Buffer make_buffer(int n) {
  Buffer b;
  b.data = static_cast<float*>(malloc(sizeof(float) * n));
  free(b.data);
  b.data = new float[16];
  return b;
}
