// Conforming: includes what it uses, compiles as the first include of a TU.
#pragma once

#include <cstddef>
#include <vector>

inline std::size_t head(const std::vector<int>& v) {
  return v.empty() ? 0 : static_cast<std::size_t>(v.front());
}
