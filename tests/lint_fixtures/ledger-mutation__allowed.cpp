// Same violations, each suppressed with the escape hatch (a test double
// might legitimately need a refund path). fedl-lint must report nothing.
class BudgetLedger {
 public:
  explicit BudgetLedger(double total) : total_(total) {}
  double spent() const { return spent_; }
  void charge(double amount);
  void refund(double amount);  // fedl-lint: allow(ledger-mutation)
  // fedl-lint: allow(ledger-mutation)
  friend class LedgerPoker;

 private:
  double total_;
  double spent_ = 0.0;
};

void sneak(const BudgetLedger& ledger) {
  // fedl-lint: allow(ledger-mutation)
  const_cast<BudgetLedger&>(ledger).charge(-1.0);
}
