// The one sanctioned shape: an intentionally leaked singleton that must
// survive static teardown, justified inline. fedl-lint must report nothing.
class Registry {
 public:
  static Registry& global() {
    // Leaked on purpose: handles may fire during static teardown.
    // fedl-lint: allow(naked-new)
    static Registry* r = new Registry();
    return *r;
  }
};
