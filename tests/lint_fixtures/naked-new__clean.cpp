// Conforming ownership, plus identifiers that must NOT trip the word
// boundary (new_capacity, renew, placement-new-free code).
#include <memory>
#include <vector>

std::vector<float> renew(std::size_t new_capacity) {
  std::vector<float> v;
  v.reserve(new_capacity);
  auto owned = std::make_unique<float[]>(new_capacity);
  (void)owned;
  return v;
}
