// Known-bad: ambient RNG / wall-clock seeding. Each line below must be
// reported by fedl-lint rule `ambient-rng`.
#include <cstdlib>
#include <ctime>
#include <random>

int bad_seed() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  std::random_device rd;
  return std::rand() + static_cast<int>(rd());
}
