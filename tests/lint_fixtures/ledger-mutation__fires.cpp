// Known-bad: three distinct ways to grow a second mutation path around
// BudgetLedger::charge(). All must be reported by rule `ledger-mutation`.
class BudgetLedger {
 public:
  explicit BudgetLedger(double total) : total_(total) {}
  double spent() const { return spent_; }
  void charge(double amount);
  void refund(double amount);  // second mutating entry point: flagged
  friend class LedgerPoker;    // friend could write spent_: flagged

 private:
  double total_;
  double spent_ = 0.0;
};

void sneak(const BudgetLedger& ledger) {
  const_cast<BudgetLedger&>(ledger).charge(-1.0);  // flagged
}
