// Same call, suppressed (e.g. a one-off diagnostic harness that owns the
// whole process). fedl-lint must report nothing.
namespace fedl::parallel {
class ThreadPool {
 public:
  static ThreadPool& shared();
};
}  // namespace fedl::parallel

void conv_batch_loop() {
  auto& pool = fedl::parallel::ThreadPool::shared();  // fedl-lint: allow(shared-pool)
  (void)pool;
}
