// Same hash-order loops, suppressed: e.g. a debug-only dump where byte
// order genuinely does not matter. fedl-lint must report nothing.
#include <ostream>
#include <unordered_map>

double sum_losses(const std::unordered_map<int, double>& loss_by_client,
                  std::ostream& os) {
  double total = 0.0;
  // fedl-lint: allow(unordered-iteration)
  for (const auto& [id, loss] : loss_by_client) {
    total += loss;
    os << id;
  }
  return total;
}
