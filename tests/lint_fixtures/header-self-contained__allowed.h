// Same broken header with the escape hatch (e.g. a platform-conditional
// header that deliberately requires a prelude). Must be suppressed.
// fedl-lint: allow(header-self-contained)
#pragma once

inline std::size_t head(const std::vector<int>& v) {
  return v.empty() ? 0 : static_cast<std::size_t>(v.front());
}
