// Off-convention name suppressed (e.g. mirroring an external dashboard's
// legacy key during a migration). fedl-lint must report nothing.
#include <string>

struct Counter {
  explicit Counter(const std::string& name);
};

void register_legacy_metric() {
  // fedl-lint: allow(metric-name)
  static const Counter legacy("LegacyEpochCount");
}
