// Known-bad: direct use of the process-wide pool outside src/parallel
// (exactly the violation PR 6 found in Conv2d). Must be reported by rule
// `shared-pool`.
namespace fedl::parallel {
class ThreadPool {
 public:
  static ThreadPool& shared();
};
}  // namespace fedl::parallel

void conv_batch_loop() {
  auto& pool = fedl::parallel::ThreadPool::shared();
  (void)pool;
}
