// Conforming code: counter-based streams, time-like identifiers that must
// NOT trip the rule (time_t, to_time_t, runtime(), localtime-free).
#include <chrono>
#include <cstdint>

std::uint64_t counter_stream(std::uint64_t seed, std::uint64_t client,
                             std::uint64_t epoch) {
  std::uint64_t z = seed ^ (client << 32) ^ epoch;  // keyed, reproducible
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return z ^ (z >> 27);
}

double runtime(double downtime) { return downtime; }  // not `time(`

std::time_t stamp() {  // clocks for log prefixes are fine; seeding is not
  const auto now = std::chrono::system_clock::now();
  return std::chrono::system_clock::to_time_t(now);
}
