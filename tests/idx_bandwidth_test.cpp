// Tests for the IDX dataset loader/writer and the FDMA bandwidth
// allocation policies.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>

#include "common/error.h"
#include "data/idx_loader.h"
#include "data/synthetic.h"
#include "net/bandwidth.h"

namespace fedl {
namespace {

std::string tmp(const char* tag) {
  return std::string(::testing::TempDir()) + "/fedl_idx_" + tag;
}

// --- IDX ----------------------------------------------------------------------

TEST(IdxLoader, RoundTripsSyntheticDataset) {
  // Build a 1-channel dataset with pixels in [0,1] so quantization is tame.
  data::SyntheticSpec spec = data::fmnist_like_spec(30, 5);
  spec.noise_stddev = 0.05;
  spec.signal_scale = 0.2;
  data::Dataset ds = data::make_synthetic(spec);

  const std::string img = tmp("rt-img"), lab = tmp("rt-lab");
  data::save_idx(ds, img, lab);
  const data::Dataset loaded = data::load_idx(img, lab);

  ASSERT_EQ(loaded.size(), ds.size());
  EXPECT_TRUE((loaded.sample_shape() == Shape{1, 28, 28}));
  EXPECT_EQ(loaded.labels(), ds.labels());
  // Pixels survive up to clamping + 8-bit quantization.
  for (std::size_t i = 0; i < 200; ++i) {
    const float orig =
        std::clamp(ds.images()[i], 0.0f, 1.0f);
    EXPECT_NEAR(loaded.images()[i], orig, 1.0f / 255.0f + 1e-6f);
  }
  std::remove(img.c_str());
  std::remove(lab.c_str());
}

TEST(IdxLoader, LimitTruncates) {
  data::Dataset ds = data::make_synthetic(data::fmnist_like_spec(20, 7));
  const std::string img = tmp("lim-img"), lab = tmp("lim-lab");
  data::save_idx(ds, img, lab);
  const data::Dataset loaded = data::load_idx(img, lab, 10, 5);
  EXPECT_EQ(loaded.size(), 5u);
  std::remove(img.c_str());
  std::remove(lab.c_str());
}

TEST(IdxLoader, MissingFilesThrow) {
  EXPECT_THROW(data::load_idx("/no/such/images", "/no/such/labels"),
               ConfigError);
}

TEST(IdxLoader, BadMagicThrows) {
  const std::string img = tmp("bad-img"), lab = tmp("bad-lab");
  {
    std::ofstream f(img, std::ios::binary);
    const char junk[16] = {0};
    f.write(junk, sizeof junk);
    std::ofstream g(lab, std::ios::binary);
    g.write(junk, sizeof junk);
  }
  EXPECT_THROW(data::load_idx(img, lab), ConfigError);
  std::remove(img.c_str());
  std::remove(lab.c_str());
}

TEST(IdxLoader, CountMismatchThrows) {
  data::Dataset a = data::make_synthetic(data::fmnist_like_spec(10, 9));
  data::Dataset b = data::make_synthetic(data::fmnist_like_spec(12, 9));
  const std::string img_a = tmp("mm-img-a"), lab_a = tmp("mm-lab-a");
  const std::string img_b = tmp("mm-img-b"), lab_b = tmp("mm-lab-b");
  data::save_idx(a, img_a, lab_a);
  data::save_idx(b, img_b, lab_b);
  EXPECT_THROW(data::load_idx(img_a, lab_b), ConfigError);
  for (const auto& p : {img_a, lab_a, img_b, lab_b}) std::remove(p.c_str());
}

// --- bandwidth allocation ---------------------------------------------------------

net::ChannelModel make_channel(std::size_t n, std::uint64_t seed) {
  net::ChannelSpec spec;
  spec.seed = seed;
  return net::ChannelModel(n, spec);
}

TEST(Bandwidth, PolicyNamesRoundTrip) {
  for (auto p : {net::BandwidthPolicy::kEqual, net::BandwidthPolicy::kInverseRate,
                 net::BandwidthPolicy::kMinMaxLatency}) {
    EXPECT_EQ(net::parse_bandwidth_policy(net::bandwidth_policy_name(p)), p);
  }
  EXPECT_THROW(net::parse_bandwidth_policy("tdma"), ConfigError);
}

class BandwidthPolicies
    : public ::testing::TestWithParam<net::BandwidthPolicy> {};

TEST_P(BandwidthPolicies, ConservesTotalBandwidth) {
  auto ch = make_channel(8, 3);
  const std::vector<std::size_t> clients = {0, 2, 4, 6};
  const auto alloc =
      net::allocate_bandwidth(ch, clients, 1e6, GetParam());
  ASSERT_EQ(alloc.bandwidth_hz.size(), clients.size());
  const double total = std::accumulate(alloc.bandwidth_hz.begin(),
                                       alloc.bandwidth_hz.end(), 0.0);
  EXPECT_NEAR(total, ch.spec().bandwidth_hz,
              1e-6 * ch.spec().bandwidth_hz);
  for (double b : alloc.bandwidth_hz) EXPECT_GT(b, 0.0);
  for (double t : alloc.upload_time_s) EXPECT_GT(t, 0.0);
  EXPECT_GT(alloc.makespan_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, BandwidthPolicies,
    ::testing::Values(net::BandwidthPolicy::kEqual,
                      net::BandwidthPolicy::kInverseRate,
                      net::BandwidthPolicy::kMinMaxLatency));

TEST(Bandwidth, EqualPolicySplitsEvenly) {
  auto ch = make_channel(5, 5);
  const auto alloc = net::allocate_bandwidth(
      ch, {0, 1, 2, 3}, 1e6, net::BandwidthPolicy::kEqual);
  for (double b : alloc.bandwidth_hz)
    EXPECT_NEAR(b, ch.spec().bandwidth_hz / 4.0, 1e-6);
}

TEST(Bandwidth, MinMaxBeatsEqualOnMakespan) {
  // With heterogeneous channel gains, the makespan-optimal split must never
  // be worse than the equal split.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto ch = make_channel(10, seed);
    const std::vector<std::size_t> clients = {0, 1, 2, 3, 4, 5};
    const auto equal = net::allocate_bandwidth(
        ch, clients, 1e7, net::BandwidthPolicy::kEqual);
    const auto minmax = net::allocate_bandwidth(
        ch, clients, 1e7, net::BandwidthPolicy::kMinMaxLatency);
    EXPECT_LE(minmax.makespan_s, equal.makespan_s * 1.001) << "seed " << seed;
  }
}

TEST(Bandwidth, MinMaxEqualizesUploadTimes) {
  auto ch = make_channel(6, 11);
  const std::vector<std::size_t> clients = {0, 1, 2, 3};
  const auto alloc = net::allocate_bandwidth(
      ch, clients, 1e7, net::BandwidthPolicy::kMinMaxLatency);
  // At the optimum every client finishes (nearly) simultaneously.
  double lo = alloc.upload_time_s[0], hi = alloc.upload_time_s[0];
  for (double t : alloc.upload_time_s) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_LT((hi - lo) / hi, 0.05);
}

TEST(Bandwidth, SingleClientGetsEverything) {
  auto ch = make_channel(3, 13);
  for (auto policy : {net::BandwidthPolicy::kEqual,
                      net::BandwidthPolicy::kInverseRate,
                      net::BandwidthPolicy::kMinMaxLatency}) {
    const auto alloc = net::allocate_bandwidth(ch, {1}, 1e6, policy);
    EXPECT_NEAR(alloc.bandwidth_hz[0], ch.spec().bandwidth_hz, 1.0);
  }
}

TEST(Bandwidth, EmptySelectionThrows) {
  auto ch = make_channel(3, 17);
  EXPECT_THROW(
      net::allocate_bandwidth(ch, {}, 1e6, net::BandwidthPolicy::kEqual),
      CheckError);
}

}  // namespace
}  // namespace fedl
