// Cross-module property tests: seed-parameterized sweeps over the whole
// pipeline checking the invariants that must hold for ANY seed — budget
// safety, decision feasibility, trace monotonicity, rounding marginals under
// repair, and GEMM fuzzing.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "core/fedl_strategy.h"
#include "harness/experiment.h"
#include "tensor/gemm.h"

namespace fedl {
namespace {

class QuietLogs2 : public ::testing::Environment {
 public:
  void SetUp() override { set_log_level(LogLevel::kWarn); }
};
const auto* const kQuiet2 =
    ::testing::AddGlobalTestEnvironment(new QuietLogs2);

harness::ScenarioConfig seeded_scenario(std::uint64_t seed) {
  harness::ScenarioConfig cfg;
  cfg.num_clients = 8;
  cfg.n_min = 3;
  cfg.budget = 150.0;
  cfg.max_epochs = 6;
  cfg.train_samples = 200;
  cfg.test_samples = 60;
  cfg.width_scale = 0.05;
  cfg.batch_cap = 10;
  cfg.eval_cap = 48;
  cfg.dane.sgd_steps = 2;
  cfg.seed = seed;
  return cfg;
}

class PipelineInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineInvariants, HoldForFedLAcrossSeeds) {
  const harness::ScenarioConfig cfg = seeded_scenario(GetParam());
  harness::Experiment exp(cfg);
  auto strat = harness::make_strategy("fedl", cfg);
  const auto res = exp.run(*strat);
  ASSERT_GT(res.epochs_run, 0u);

  double prev_time = -1.0, prev_cost = -1.0;
  for (const auto& r : res.trace.records) {
    EXPECT_GE(r.sim_time_s, prev_time);
    EXPECT_GE(r.cost_spent, prev_cost);
    prev_time = r.sim_time_s;
    prev_cost = r.cost_spent;
    EXPECT_LE(r.num_selected, cfg.num_clients);
    EXPECT_GE(r.test_accuracy, 0.0);
    EXPECT_LE(r.test_accuracy, 1.0);
  }
  // Constraint (3a) is hard: every epoch's committed selection is repaired
  // back under the remainder, so total spend never exceeds the budget.
  EXPECT_LE(res.trace.total_cost(), cfg.budget + 1e-6);
  // Regret vs the 1-lookahead greedy is non-negative for a 0-lookahead
  // policy.
  EXPECT_GE(res.regret.regret(), -1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineInvariants,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

class RepairInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RepairInvariants, FedLDecisionsAlwaysFeasible) {
  Rng rng(GetParam());
  core::FedLConfig fc;
  fc.learner.n_min = 3;
  fc.seed = GetParam();
  core::FedLStrategy strat(10, fc);
  core::BudgetLedger budget(rng.uniform(5.0, 200.0));

  for (int epoch = 0; epoch < 15; ++epoch) {
    sim::EpochContext ctx;
    ctx.epoch = static_cast<std::size_t>(epoch + 1);
    const std::size_t avail = 3 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    std::vector<std::size_t> ids(10);
    for (std::size_t i = 0; i < 10; ++i) ids[i] = i;
    rng.shuffle(ids);
    ids.resize(avail);
    std::sort(ids.begin(), ids.end());
    for (std::size_t id : ids) {
      sim::ClientObservation o;
      o.id = id;
      o.cost = rng.uniform(0.1, 12.0);
      o.data_size = 5 + static_cast<std::size_t>(rng.uniform_int(0, 30));
      o.tau_loc = rng.uniform(0.05, 3.0);
      o.tau_cm_est = rng.uniform(0.01, 1.0);
      ctx.available.push_back(o);
    }

    const auto dec = strat.decide(ctx, budget);
    // All selected must be available and unique.
    std::set<std::size_t> uniq;
    double cost = 0.0;
    for (std::size_t id : dec.selected) {
      ASSERT_TRUE(ctx.is_available(id));
      EXPECT_TRUE(uniq.insert(id).second);
      cost += ctx.find(id)->cost;
    }
    EXPECT_LE(cost, budget.remaining() + 1e-9);
    EXPECT_GE(dec.num_iterations, 1u);

    fl::EpochOutcome out;
    out.selected = dec.selected;
    out.num_iterations = dec.num_iterations;
    out.client_eta.assign(dec.selected.size(), rng.uniform(0.1, 0.95));
    out.client_loss_reduction.assign(dec.selected.size(), rng.uniform(0.0, 0.3));
    out.train_loss_all = rng.uniform(0.2, 2.5);
    out.cost = cost;
    strat.observe(ctx, dec, out);
    budget.charge(cost);
    if (budget.exhausted()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairInvariants,
                         ::testing::Range<std::uint64_t>(100, 112));

class GemmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GemmFuzz, RandomShapesMatchNaive) {
  Rng rng(GetParam());
  const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 90));
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 90));
  const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 90));
  const bool ta = rng.bernoulli(0.5);
  const bool tb = rng.bernoulli(0.5);
  const float alpha = static_cast<float>(rng.uniform(-2.0, 2.0));
  const float beta = static_cast<float>(rng.uniform(-1.0, 1.0));

  std::vector<float> a(m * k), b(k * n), c1(m * n), c2(m * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < c1.size(); ++i)
    c1[i] = c2[i] = static_cast<float>(rng.normal());

  gemm(ta, tb, m, n, k, alpha, a.data(), b.data(), beta, c1.data());
  gemm_naive(ta, tb, m, n, k, alpha, a.data(), b.data(), beta, c2.data());
  for (std::size_t i = 0; i < c1.size(); ++i)
    ASSERT_NEAR(c1[i], c2[i], 1e-3f * (std::abs(c2[i]) + 1.0f))
        << "m=" << m << " n=" << n << " k=" << k << " i=" << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemmFuzz,
                         ::testing::Range<std::uint64_t>(500, 512));

class DeterminismSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismSweep, EveryStrategyIsSeedDeterministic) {
  const harness::ScenarioConfig cfg = seeded_scenario(99);
  harness::Experiment exp(cfg);
  auto run_final = [&] {
    auto strat = harness::make_strategy(GetParam(), cfg);
    const auto res = exp.run(*strat);
    return std::make_pair(res.trace.final_accuracy(),
                          res.trace.total_cost());
  };
  EXPECT_EQ(run_final(), run_final());
}

INSTANTIATE_TEST_SUITE_P(Roster, DeterminismSweep,
                         ::testing::Values("fedl", "fedavg", "fedcs", "powd",
                                           "ucb", "fedl-fair"));

}  // namespace
}  // namespace fedl
