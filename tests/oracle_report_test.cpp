// Tests for the exact offline oracle (validating the greedy per-epoch
// optimum) and the harness report printers.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/rng.h"
#include "core/offline_oracle.h"
#include "core/regret.h"
#include "harness/report.h"

namespace fedl {
namespace {

sim::EpochContext random_ctx(std::size_t k, Rng& rng) {
  sim::EpochContext ctx;
  ctx.epoch = 1;
  for (std::size_t i = 0; i < k; ++i) {
    sim::ClientObservation o;
    o.id = i;
    o.cost = rng.uniform(0.1, 12.0);
    o.data_size = 10;
    o.tau_loc = rng.uniform(0.1, 3.0);
    o.tau_cm_est = rng.uniform(0.05, 1.0);
    ctx.available.push_back(o);
  }
  return ctx;
}

TEST(ExactOracle, EmptyContext) {
  sim::EpochContext ctx;
  const auto sel = core::exact_per_epoch_optimum(ctx, 10.0, 2);
  EXPECT_FALSE(sel.feasible);
  EXPECT_TRUE(sel.ids.empty());
}

TEST(ExactOracle, PicksNFastestWhenBudgetSlack) {
  Rng rng(1);
  const auto ctx = random_ctx(8, rng);
  const auto sel = core::exact_per_epoch_optimum(ctx, 1e9, 3);
  ASSERT_TRUE(sel.feasible);
  EXPECT_EQ(sel.ids.size(), 3u);
  // Must match the greedy optimum when the budget never binds.
  const double greedy = core::per_epoch_optimum(ctx, 1e9, 3);
  EXPECT_NEAR(sel.objective, greedy, 1e-9);
}

TEST(ExactOracle, InfeasibleBudget) {
  Rng rng(2);
  const auto ctx = random_ctx(5, rng);
  const auto sel = core::exact_per_epoch_optimum(ctx, 1e-6, 2);
  EXPECT_FALSE(sel.feasible);
}

TEST(ExactOracle, RespectsBudgetCap) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto ctx = random_ctx(7, rng);
    const double cap = rng.uniform(5.0, 30.0);
    const auto sel = core::exact_per_epoch_optimum(ctx, cap, 3);
    if (sel.feasible) {
      EXPECT_LE(sel.cost, cap + 1e-9);
      EXPECT_GE(sel.ids.size(), 3u);
    }
  }
}

class GreedyVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyVsExact, GreedyNeverBeatsExactAndIsCloseUnderSlackCaps) {
  Rng rng(GetParam());
  const auto ctx = random_ctx(9, rng);
  // Cap generous enough that the 3 cheapest always fit (greedy feasibility).
  const double cap = 40.0;
  const auto exact = core::exact_per_epoch_optimum(ctx, cap, 3);
  const double greedy = core::per_epoch_optimum(ctx, cap, 3);
  ASSERT_TRUE(exact.feasible);
  // Exact is a lower bound on any feasible selection's objective.
  EXPECT_GE(greedy, exact.objective - 1e-9);
  // With a slack cap, greedy (n fastest) is optimal.
  EXPECT_NEAR(greedy, exact.objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsExact,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(GreedyVsExactTight, GapIsBounded) {
  // Under tight caps greedy may be suboptimal but must stay feasible-ish and
  // within a small factor on random instances.
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const auto ctx = random_ctx(8, rng);
    // Tight-ish cap: roughly the cost of 3 average clients.
    const double cap = 3.0 * 6.0;
    const auto exact = core::exact_per_epoch_optimum(ctx, cap, 3);
    if (!exact.feasible) continue;
    std::vector<std::size_t> picked;
    const double greedy = core::per_epoch_optimum(ctx, cap, 3, &picked);
    if (picked.size() < 3) continue;  // greedy couldn't meet the quota
    EXPECT_GE(greedy, exact.objective - 1e-9);
    EXPECT_LE(greedy, 3.0 * exact.objective + 1e-9);
  }
}

// --- report printers ---------------------------------------------------------------

fl::TrainTrace trace_with(std::string name,
                          std::vector<std::pair<double, double>> time_acc) {
  fl::TrainTrace t;
  t.algorithm = std::move(name);
  std::size_t round = 0;
  for (auto [time, acc] : time_acc) {
    fl::TraceRecord r;
    r.epoch = ++round;
    r.round = round;
    r.sim_time_s = time;
    r.test_accuracy = acc;
    t.records.push_back(r);
  }
  return t;
}

TEST(Report, TraceSeriesHeaderAndRows) {
  std::ostringstream os;
  harness::print_trace_series(os, "FigX", "FedL",
                              trace_with("FedL", {{1.0, 0.2}, {2.0, 0.4}}));
  const std::string s = os.str();
  EXPECT_NE(s.find("== Series: FigX / FedL"), std::string::npos);
  EXPECT_NE(s.find("epoch,round,time_s"), std::string::npos);
  // Two data rows.
  EXPECT_NE(s.find("\n1,1,1,"), std::string::npos);
  EXPECT_NE(s.find("\n2,2,2,"), std::string::npos);
}

TEST(Report, AccuracyAtTimeTable) {
  std::ostringstream os;
  harness::print_accuracy_at_time_table(
      os, 1.5,
      {trace_with("A", {{1.0, 0.3}, {2.0, 0.6}}),
       trace_with("B", {{1.0, 0.5}})});
  const std::string s = os.str();
  EXPECT_NE(s.find("accuracy after 1.5s"), std::string::npos);
  EXPECT_NE(s.find("0.3"), std::string::npos);  // A at t=1.5 -> 0.3
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

TEST(Report, TimeToAccuracyReportsSaving) {
  std::ostringstream os;
  harness::print_time_to_accuracy_table(
      os, 0.5,
      {trace_with("FedL", {{10.0, 0.6}}),
       trace_with("Base", {{40.0, 0.6}})});
  const std::string s = os.str();
  EXPECT_NE(s.find("saving vs best baseline: 75%"), std::string::npos);
}

TEST(Report, TimeToAccuracyNeverCase) {
  std::ostringstream os;
  harness::print_time_to_accuracy_table(
      os, 0.9, {trace_with("A", {{1.0, 0.3}})});
  EXPECT_NE(os.str().find("never"), std::string::npos);
}

TEST(Report, RoundsToAccuracyTable) {
  std::ostringstream os;
  harness::print_rounds_to_accuracy_table(
      os, 0.35, {trace_with("A", {{1.0, 0.3}, {2.0, 0.4}})});
  const std::string s = os.str();
  EXPECT_NE(s.find("federated rounds to accuracy"), std::string::npos);
  EXPECT_NE(s.find("| 2"), std::string::npos);
}

}  // namespace
}  // namespace fedl
