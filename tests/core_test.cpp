// Tests for the FedL core: budget ledger & horizon bounds, ρ↔l conversion,
// the online learner's descent/ascent steps, and the regret tracker.
#include <gtest/gtest.h>

#include <cmath>

#include "core/budget.h"
#include "core/online_learner.h"
#include "core/regret.h"
#include "core/types.h"

namespace fedl::core {
namespace {

// --- budget ----------------------------------------------------------------

TEST(BudgetLedger, ChargesAccumulate) {
  BudgetLedger b(100.0);
  EXPECT_DOUBLE_EQ(b.remaining(), 100.0);
  b.charge(30.0);
  b.charge(20.0);
  EXPECT_DOUBLE_EQ(b.spent(), 50.0);
  EXPECT_DOUBLE_EQ(b.remaining(), 50.0);
  EXPECT_FALSE(b.exhausted());
  b.charge(50.0);  // spending to exactly the total is fine
  EXPECT_TRUE(b.exhausted());
  EXPECT_DOUBLE_EQ(b.remaining(), 0.0);
}

TEST(BudgetLedger, RejectsNonPositiveBudgetAndNegativeCharge) {
  EXPECT_THROW(BudgetLedger(0.0), CheckError);
  BudgetLedger b(10.0);
  EXPECT_THROW(b.charge(-1.0), CheckError);
}

TEST(BudgetLedger, OverdrawFailsLoudly) {
  // Constraint (3a) is hard: the selection layer must repair decisions back
  // under the remainder, so a charge past total_ is a caller bug.
  BudgetLedger b(100.0);
  b.charge(90.0);
  EXPECT_THROW(b.charge(20.0), CheckError);
  EXPECT_DOUBLE_EQ(b.spent(), 90.0);  // failed charge did not post
  b.charge(10.0);                     // exact fill still allowed
  EXPECT_TRUE(b.exhausted());
}

TEST(HorizonBounds, PaperFormula) {
  // T_C in [C/(n·max c), C/(n·min c)].
  const auto hb = BudgetLedger::horizon_bounds(600.0, 5, 0.1, 12.0);
  EXPECT_NEAR(hb.lower, 600.0 / (5 * 12.0), 1e-12);
  EXPECT_NEAR(hb.upper, 600.0 / (5 * 0.1), 1e-12);
  EXPECT_LE(hb.lower, hb.upper);
}

TEST(HorizonBounds, DegenerateInputsThrow) {
  EXPECT_THROW(BudgetLedger::horizon_bounds(-1.0, 5, 0.1, 12.0), ConfigError);
  EXPECT_THROW(BudgetLedger::horizon_bounds(10.0, 0, 0.1, 12.0), ConfigError);
  EXPECT_THROW(BudgetLedger::horizon_bounds(10.0, 5, 0.0, 12.0), ConfigError);
  EXPECT_THROW(BudgetLedger::horizon_bounds(10.0, 5, 2.0, 1.0), ConfigError);
}

// --- ρ / η / l conversions -------------------------------------------------------

TEST(Types, RhoToItersCeil) {
  EXPECT_EQ(rho_to_iters(1.0, 10), 1u);
  EXPECT_EQ(rho_to_iters(1.2, 10), 2u);
  EXPECT_EQ(rho_to_iters(3.0, 10), 3u);
  EXPECT_EQ(rho_to_iters(50.0, 10), 10u);  // capped
  EXPECT_EQ(rho_to_iters(0.2, 10), 1u);    // floor at 1
  EXPECT_EQ(rho_to_iters(std::nan(""), 10), 1u);
}

TEST(Types, EtaRhoRoundTrip) {
  for (double eta : {0.0, 0.3, 0.9}) {
    EXPECT_NEAR(rho_to_eta(eta_to_rho(eta)), eta, 1e-9);
  }
  EXPECT_GE(eta_to_rho(0.999999999999), 1.0);
  EXPECT_EQ(eta_to_rho(0.0), 1.0);
}

// --- online learner -----------------------------------------------------------------

sim::EpochContext make_ctx(std::size_t k, std::size_t epoch = 1) {
  sim::EpochContext ctx;
  ctx.epoch = epoch;
  for (std::size_t i = 0; i < k; ++i) {
    sim::ClientObservation o;
    o.id = i;
    o.cost = 1.0 + static_cast<double>(i);
    o.data_size = 20;
    o.tau_loc = 0.5 + 0.3 * static_cast<double>(i);
    o.tau_cm_est = 0.2;
    ctx.available.push_back(o);
  }
  return ctx;
}

LearnerConfig small_cfg() {
  LearnerConfig cfg;
  cfg.n_min = 2;
  cfg.theta = 0.5;
  return cfg;
}

TEST(OnlineLearner, DecideProducesFeasibleFractions) {
  OnlineLearner learner(6, small_cfg());
  BudgetLedger budget(100.0);
  const auto ctx = make_ctx(6);
  const auto dec = learner.decide(ctx, budget);
  ASSERT_EQ(dec.ids.size(), 6u);
  double sum = 0.0;
  for (double x : dec.x) {
    EXPECT_GE(x, -1e-9);
    EXPECT_LE(x, 1.0 + 1e-9);
    sum += x;
  }
  EXPECT_GE(sum, 2.0 - 1e-6);  // Σx ≥ n_min
  EXPECT_GE(dec.rho, 1.0);
  EXPECT_LE(dec.rho, learner.config().rho_max + 1e-9);
}

TEST(OnlineLearner, BudgetCapLimitsFractionalSpend) {
  LearnerConfig cfg = small_cfg();
  cfg.pacing = 1.0;
  OnlineLearner learner(6, cfg);
  BudgetLedger tight(3.0);  // costs are 1..6 -> cap is tiny
  const auto ctx = make_ctx(6);
  const auto dec = learner.decide(ctx, tight);
  double spend = 0.0;
  for (std::size_t i = 0; i < dec.x.size(); ++i)
    spend += dec.x[i] * ctx.available[i].cost;
  // Fractional decisions are allowed tiny numerical slack; the hard budget
  // guarantee is enforced at the integer level by FedLStrategy's repair.
  EXPECT_LE(spend, 3.0 + 1e-3);
}

TEST(OnlineLearner, EmptyContextReturnsEmptyDecision) {
  OnlineLearner learner(4, small_cfg());
  BudgetLedger budget(10.0);
  sim::EpochContext ctx;
  const auto dec = learner.decide(ctx, budget);
  EXPECT_TRUE(dec.ids.empty());
}

TEST(OnlineLearner, DualAscentFollowsUpdateRule) {
  // One observe() step with hand-computable h: μ' = [μ + δ h]+ with μ = 0.
  LearnerConfig cfg = small_cfg();
  cfg.delta = 0.5;
  OnlineLearner learner(3, cfg);
  const auto ctx = make_ctx(3);
  BudgetLedger budget(50.0);
  const auto frac = learner.decide(ctx, budget);

  fl::EpochOutcome out;
  out.epoch = 1;
  out.selected = {0};
  out.num_iterations = 2;
  out.client_eta = {0.9};
  out.client_loss_reduction = {0.2};
  out.train_loss_all = 1.5;  // h^0 = 1.5 − 0.5 = 1.0
  learner.observe(ctx, frac, out);

  EXPECT_NEAR(learner.mu0(), 0.5 * 1.0, 1e-9);  // δ·h0 from μ=0
  // h^1 = η x̃_0 ρ − ρ + 1 with observed η = 0.9.
  const double h1 = 0.9 * frac.x[0] * frac.rho - frac.rho + 1.0;
  EXPECT_NEAR(learner.mu_k(0), std::max(0.0, 0.5 * h1), 1e-9);
}

TEST(OnlineLearner, EstimatesTrackObservations) {
  LearnerConfig cfg = small_cfg();
  cfg.ema = 1.0;  // estimate = last observation
  OnlineLearner learner(3, cfg);
  const auto ctx = make_ctx(3);
  BudgetLedger budget(50.0);
  const auto frac = learner.decide(ctx, budget);

  fl::EpochOutcome out;
  out.selected = {1};
  out.num_iterations = 4;
  out.client_eta = {0.7};
  out.client_loss_reduction = {0.8};  // per-iter = 0.2
  out.train_loss_all = 1.2;
  learner.observe(ctx, frac, out);

  EXPECT_NEAR(learner.eta_estimate(1), 0.7, 1e-12);
  EXPECT_NEAR(learner.delta_estimate(1), 0.2, 1e-12);
  // Unselected clients keep their priors.
  EXPECT_NEAR(learner.eta_estimate(0), cfg.init_eta, 1e-12);
}

TEST(OnlineLearner, NegativeLossReductionFlooredAtZero) {
  LearnerConfig cfg = small_cfg();
  cfg.ema = 1.0;
  OnlineLearner learner(2, cfg);
  const auto ctx = make_ctx(2);
  BudgetLedger budget(50.0);
  const auto frac = learner.decide(ctx, budget);
  fl::EpochOutcome out;
  out.selected = {0};
  out.num_iterations = 1;
  out.client_eta = {0.5};
  out.client_loss_reduction = {-0.4};
  out.train_loss_all = 1.0;
  learner.observe(ctx, frac, out);
  EXPECT_DOUBLE_EQ(learner.delta_estimate(0), 0.0);
}

TEST(OnlineLearner, MuIsClipped) {
  LearnerConfig cfg = small_cfg();
  cfg.delta = 100.0;
  cfg.mu_max = 5.0;
  OnlineLearner learner(2, cfg);
  const auto ctx = make_ctx(2);
  BudgetLedger budget(50.0);
  const auto frac = learner.decide(ctx, budget);
  fl::EpochOutcome out;
  out.train_loss_all = 100.0;  // huge violation
  learner.observe(ctx, frac, out);
  EXPECT_LE(learner.mu0(), 5.0);
}

TEST(OnlineLearner, LatencyPressurePushesTowardFastClients) {
  // After many epochs where nothing else differs, the slow client's fraction
  // must not exceed the fast client's.
  LearnerConfig cfg = small_cfg();
  cfg.n_min = 1;
  OnlineLearner learner(2, cfg);
  BudgetLedger budget(1000.0);
  sim::EpochContext ctx;
  ctx.epoch = 1;
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ClientObservation o;
    o.id = i;
    o.cost = 1.0;
    o.data_size = 20;
    o.tau_loc = (i == 0) ? 0.1 : 5.0;  // client 1 is 50x slower
    o.tau_cm_est = 0.1;
    ctx.available.push_back(o);
  }
  for (int epoch = 0; epoch < 10; ++epoch) {
    const auto frac = learner.decide(ctx, budget);
    fl::EpochOutcome out;
    out.train_loss_all = 0.4;  // below θ: no convergence pressure
    learner.observe(ctx, frac, out);
  }
  EXPECT_GT(learner.x_fraction(0), learner.x_fraction(1));
}

// --- regret tracker ------------------------------------------------------------------

TEST(PerEpochOptimum, PicksFastestClients) {
  const auto ctx = make_ctx(4);  // taus: 0.7, 1.0, 1.3, 1.6
  const double opt = per_epoch_optimum(ctx, 100.0, 2);
  EXPECT_NEAR(opt, 0.7 + 1.0, 1e-9);
}

TEST(PerEpochOptimum, EmptyContextIsZero) {
  sim::EpochContext ctx;
  EXPECT_EQ(per_epoch_optimum(ctx, 10.0, 3), 0.0);
}

TEST(RegretTracker, AccumulatesOnlineMinusOffline) {
  RegretConfig rc;
  rc.theta = 0.5;
  rc.n_min = 2;
  RegretTracker tracker(4, rc);
  BudgetLedger budget(1000.0);
  const auto ctx = make_ctx(4);

  Decision dec;
  dec.selected = {2, 3};  // slow pair
  dec.num_iterations = 2;
  fl::EpochOutcome out;
  out.selected = dec.selected;
  out.num_iterations = 2;
  out.cost = 7.0;
  out.client_latency_s = {2 * 1.3, 2 * 1.6};
  out.client_eta = {0.5, 0.5};
  out.train_loss_all = 1.5;
  tracker.record(ctx, budget, dec, 2.0, out);

  EXPECT_EQ(tracker.epochs(), 1u);
  EXPECT_NEAR(tracker.online_objective(), 2 * 1.3 + 2 * 1.6, 1e-9);
  EXPECT_GT(tracker.regret(), 0.0);  // online chose slow clients
  // Fit: h^0 = 1.5 − 0.5 = 1 accumulated.
  EXPECT_GE(tracker.fit(), 1.0);
}

TEST(RegretTracker, FitIgnoresSatisfiedConstraints) {
  RegretConfig rc;
  rc.theta = 2.0;  // loss below θ -> no violation
  rc.n_min = 1;
  RegretTracker tracker(2, rc);
  BudgetLedger budget(100.0);
  const auto ctx = make_ctx(2);
  Decision dec;
  dec.selected = {0};
  dec.num_iterations = 1;
  fl::EpochOutcome out;
  out.selected = {0};
  out.num_iterations = 1;
  out.client_latency_s = {0.7};
  out.client_eta = {0.0};  // perfectly solved local problem
  out.train_loss_all = 1.0;
  tracker.record(ctx, budget, dec, 1.0, out);
  EXPECT_NEAR(tracker.fit(), 0.0, 1e-9);
}

}  // namespace
}  // namespace fedl::core
