// Tests for the wireless channel model (S6) and the device/environment
// simulation (S7), including hand-computed reference values for the paper's
// formulas.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/math_util.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "net/channel.h"
#include "sim/device.h"
#include "sim/environment.h"

namespace fedl {
namespace {

// --- channel ----------------------------------------------------------------

TEST(Channel, PathLossHandComputed) {
  // 128.1 + 37.6 log10(d_km): at 1 km the log term vanishes.
  EXPECT_NEAR(net::path_loss_db(1000.0), 128.1, 1e-9);
  // At 100 m: 128.1 + 37.6*(-1) = 90.5.
  EXPECT_NEAR(net::path_loss_db(100.0), 90.5, 1e-9);
  EXPECT_THROW(net::path_loss_db(0.0), CheckError);
}

TEST(Channel, ShannonRateHandComputed) {
  // b=1 Hz, SNR = 1 -> rate = log2(2) = 1 bit/s.
  EXPECT_NEAR(net::shannon_rate(1.0, 1.0, 1.0, 1.0), 1.0, 1e-12);
  // SNR = 3 -> 2 bits/s.
  EXPECT_NEAR(net::shannon_rate(1.0, 3.0, 1.0, 1.0), 2.0, 1e-12);
}

TEST(Channel, RateIncreasesWithBandwidthAndGain) {
  net::ChannelSpec spec;
  net::ChannelModel ch(4, spec);
  const double r1 = ch.rate(0, 1e6);
  const double r2 = ch.rate(0, 2e6);
  EXPECT_GT(r2, r1);  // more bandwidth, more rate
  EXPECT_LT(r2, 2 * r1 + 1.0);  // but sub-linear (noise grows with b)
}

TEST(Channel, EqualShareDecreasesWithSharers) {
  net::ChannelSpec spec;
  net::ChannelModel ch(4, spec);
  EXPECT_GT(ch.rate_equal_share(1, 2), ch.rate_equal_share(1, 10));
}

TEST(Channel, FadingChangesPerEpochGainStableWithin) {
  net::ChannelSpec spec;
  spec.seed = 5;
  net::ChannelModel ch(3, spec);
  const double g1 = ch.gain(0);
  EXPECT_EQ(ch.gain(0), g1);  // stable within the epoch
  ch.advance_epoch();
  EXPECT_NE(ch.gain(0), g1);  // redrawn shadow fading
}

TEST(Channel, DistancesWithinCell) {
  net::ChannelSpec spec;
  spec.cell_radius_m = 500.0;
  net::ChannelModel ch(200, spec);
  for (std::size_t k = 0; k < 200; ++k) {
    EXPECT_GE(ch.distance_m(k), 10.0);
    EXPECT_LE(ch.distance_m(k), 500.0);
  }
}

TEST(Channel, GainIsPositiveAndSmall) {
  net::ChannelModel ch(10, {});
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_GT(ch.gain(k), 0.0);
    EXPECT_LT(ch.gain(k), 1.0);  // path loss always attenuates
  }
}

// --- device fleet ---------------------------------------------------------------

TEST(DeviceFleet, ParameterRangesMatchSpec) {
  sim::DeviceSpec spec;
  sim::DeviceFleet fleet(100, spec);
  for (std::size_t k = 0; k < 100; ++k) {
    const auto& d = fleet.device(k);
    EXPECT_GT(d.cpu_hz, 0.0);
    EXPECT_LE(d.cpu_hz, spec.cpu_hz_max);
    EXPECT_GE(d.cycles_per_bit, spec.cycles_per_bit_lo);
    EXPECT_LE(d.cycles_per_bit, spec.cycles_per_bit_hi);
    EXPECT_GE(fleet.cost(k), spec.cost_lo);
    EXPECT_LE(fleet.cost(k), spec.cost_hi);
  }
}

TEST(DeviceFleet, ComputeLatencyFormula) {
  sim::DeviceSpec spec;
  spec.bits_per_sample = 1000.0;
  sim::DeviceFleet fleet(1, spec);
  const auto& d = fleet.device(0);
  const double expected = d.cycles_per_bit * 1000.0 * 50.0 / d.cpu_hz;
  EXPECT_NEAR(fleet.compute_latency(0, 50), expected, 1e-12);
}

TEST(DeviceFleet, AvailabilityFrequencyMatchesBernoulli) {
  sim::DeviceSpec spec;
  spec.availability_prob = 0.6;
  spec.seed = 77;
  sim::DeviceFleet fleet(50, spec);
  std::size_t available = 0, total = 0;
  for (int epoch = 0; epoch < 200; ++epoch) {
    fleet.advance_epoch();
    available += fleet.available_set().size();
    total += 50;
  }
  EXPECT_NEAR(static_cast<double>(available) / total, 0.6, 0.03);
}

TEST(DeviceFleet, CostsVaryAcrossEpochs) {
  sim::DeviceFleet fleet(5, {});
  const double c0 = fleet.cost(0);
  fleet.advance_epoch();
  EXPECT_NE(fleet.cost(0), c0);
}

// --- environment ----------------------------------------------------------------

sim::EdgeEnvironment make_env(std::size_t clients, std::uint64_t seed,
                              const data::Dataset& ds) {
  Rng rng(seed);
  data::Partition p = data::partition_iid(ds, clients, rng);
  sim::EnvironmentSpec spec;
  spec.num_clients = clients;
  spec.device.seed = seed;
  spec.channel.seed = seed + 1;
  spec.online.seed = seed + 2;
  return sim::EdgeEnvironment(spec, p);
}

TEST(Environment, ContextListsOnlyAvailableClientsWithData) {
  data::Dataset ds = data::make_synthetic(data::fmnist_like_spec(300, 43));
  auto env = make_env(10, 43, ds);
  const auto& ctx = env.advance_epoch();
  EXPECT_EQ(ctx.epoch, 1u);
  for (const auto& obs : ctx.available) {
    EXPECT_LT(obs.id, 10u);
    EXPECT_GT(obs.data_size, 0u);
    EXPECT_GT(obs.tau_loc, 0.0);
    EXPECT_GT(obs.tau_cm_est, 0.0);
    EXPECT_GT(obs.cost, 0.0);
    EXPECT_EQ(obs.data_size, env.client_data(obs.id).size());
  }
}

TEST(Environment, ContextFindWorks) {
  data::Dataset ds = data::make_synthetic(data::fmnist_like_spec(300, 47));
  auto env = make_env(8, 47, ds);
  const auto& ctx = env.advance_epoch();
  ASSERT_FALSE(ctx.available.empty());
  const auto& first = ctx.available.front();
  EXPECT_TRUE(ctx.is_available(first.id));
  EXPECT_EQ(ctx.find(first.id)->id, first.id);
  // An id beyond the fleet is never available.
  EXPECT_FALSE(ctx.is_available(999));
}

TEST(Environment, EpochCounterAdvances) {
  data::Dataset ds = data::make_synthetic(data::fmnist_like_spec(200, 53));
  auto env = make_env(5, 53, ds);
  env.advance_epoch();
  env.advance_epoch();
  EXPECT_EQ(env.epoch(), 2u);
}

TEST(Environment, RealizedTauCmGrowsWithSharers) {
  data::Dataset ds = data::make_synthetic(data::fmnist_like_spec(200, 59));
  auto env = make_env(5, 59, ds);
  env.advance_epoch();
  EXPECT_GT(env.realized_tau_cm(0, 5), env.realized_tau_cm(0, 1));
}

TEST(Environment, AvailabilityVariesOverTime) {
  data::Dataset ds = data::make_synthetic(data::fmnist_like_spec(400, 61));
  auto env = make_env(20, 61, ds);
  std::set<std::size_t> sizes;
  for (int e = 0; e < 15; ++e) {
    sizes.insert(env.advance_epoch().available.size());
  }
  EXPECT_GT(sizes.size(), 1u);
}

TEST(Environment, DeterministicForSameSeeds) {
  data::Dataset ds = data::make_synthetic(data::fmnist_like_spec(300, 67));
  auto env1 = make_env(10, 67, ds);
  auto env2 = make_env(10, 67, ds);
  for (int e = 0; e < 5; ++e) {
    const auto& c1 = env1.advance_epoch();
    const auto& c2 = env2.advance_epoch();
    ASSERT_EQ(c1.available.size(), c2.available.size());
    for (std::size_t i = 0; i < c1.available.size(); ++i) {
      EXPECT_EQ(c1.available[i].id, c2.available[i].id);
      EXPECT_EQ(c1.available[i].cost, c2.available[i].cost);
      EXPECT_EQ(c1.available[i].tau_loc, c2.available[i].tau_loc);
    }
  }
}

TEST(Environment, PartitionSizeMismatchThrows) {
  data::Dataset ds = data::make_synthetic(data::fmnist_like_spec(100, 71));
  Rng rng(71);
  data::Partition p = data::partition_iid(ds, 4, rng);
  sim::EnvironmentSpec spec;
  spec.num_clients = 5;  // != 4 partitions
  EXPECT_THROW(sim::EdgeEnvironment(spec, p), CheckError);
}

}  // namespace
}  // namespace fedl
