// Tests for the observability layer: metrics registry (sharded counters,
// gauges, histogram bucket edges, concurrent merges), the scoped profiler's
// Chrome-trace export, the JSONL decision-trace schema of one seeded epoch,
// and the harness-side metrics reporting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/json_export.h"
#include "harness/report.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "parallel/thread_pool.h"

namespace fedl {
namespace {

using obs::MetricsRegistry;

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

// Counters are per-thread sharded with relaxed atomics; a fan-out of
// increments from pool workers must still merge to the exact total.
TEST(Metrics, ConcurrentIncrementsMergeExactly) {
  static const obs::Counter counter("test.concurrent_adds");
  const std::uint64_t before =
      counter_value(MetricsRegistry::global().snapshot(),
                    "test.concurrent_adds");

  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kAddsPerTask = 1000;
  ThreadPool pool(8);
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (std::size_t t = 0; t < kTasks; ++t) {
    futures.push_back(pool.submit([] {
      for (std::size_t i = 0; i < kAddsPerTask; ++i) counter.add();
    }));
  }
  for (auto& f : futures) f.get();

  const std::uint64_t after =
      counter_value(MetricsRegistry::global().snapshot(),
                    "test.concurrent_adds");
  EXPECT_EQ(after - before, kTasks * kAddsPerTask);
}

// Shards are returned to a free list when their thread exits; counts
// accumulated by dead threads must survive into later snapshots.
TEST(Metrics, CountsSurviveThreadExit) {
  static const obs::Counter counter("test.thread_exit_adds");
  const std::uint64_t before = counter_value(
      MetricsRegistry::global().snapshot(), "test.thread_exit_adds");
  for (int round = 0; round < 3; ++round) {
    ThreadPool pool(2);
    pool.submit([] { counter.add(10); }).get();
  }  // pools (and their shard-owning workers) destroyed here
  const std::uint64_t after = counter_value(
      MetricsRegistry::global().snapshot(), "test.thread_exit_adds");
  EXPECT_EQ(after - before, 30u);
}

TEST(Metrics, GaugeKeepsLatestValue) {
  static const obs::Gauge gauge("test.gauge");
  gauge.set(1.5);
  gauge.set(-2.25);
  const auto snap = MetricsRegistry::global().snapshot();
  ASSERT_EQ(snap.gauges.count("test.gauge"), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.gauge"), -2.25);
}

// Buckets have "≤ bound" semantics: a value exactly on a bound lands in that
// bucket, values above the last bound land in the overflow slot.
TEST(Metrics, HistogramBucketEdges) {
  static const obs::Histogram hist("test.hist_edges", {1.0, 2.0, 4.0});
  auto find = [] {
    return MetricsRegistry::global().snapshot().histograms.at(
        "test.hist_edges");
  };
  const auto before = find();

  hist.observe(0.5);   // <= 1
  hist.observe(1.0);   // exactly on the first bound -> first bucket
  hist.observe(1.01);  // <= 2
  hist.observe(2.0);   // exactly on the second bound -> second bucket
  hist.observe(4.0);   // exactly on the last bound -> last finite bucket
  hist.observe(4.01);  // overflow
  hist.observe(100.0); // overflow

  const auto after = find();
  ASSERT_EQ(after.bounds, (std::vector<double>{1.0, 2.0, 4.0}));
  ASSERT_EQ(after.counts.size(), 4u);
  EXPECT_EQ(after.counts[0] - before.counts[0], 2u);
  EXPECT_EQ(after.counts[1] - before.counts[1], 2u);
  EXPECT_EQ(after.counts[2] - before.counts[2], 1u);
  EXPECT_EQ(after.counts[3] - before.counts[3], 2u);
  EXPECT_EQ(after.total - before.total, 7u);
  EXPECT_DOUBLE_EQ(after.sum - before.sum, 112.52);
}

TEST(Metrics, RegistrationIsIdempotentAndHandlesAreCheap) {
  const obs::Counter a("test.same_name");
  const obs::Counter b("test.same_name");  // same id, no duplicate metric
  a.add(2);
  b.add(3);
  EXPECT_EQ(counter_value(MetricsRegistry::global().snapshot(),
                          "test.same_name"),
            5u);
}

TEST(JsonWriter, NestedContainersAndEscaping) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array();
  w.value(2.5);
  w.value("x\"y");
  w.null();
  w.end_array();
  w.key("c").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"a":1,"b":[2.5,"x\"y",null],"c":{}})");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

#if defined(FEDL_PROFILING_ENABLED)
// Chrome-trace export: record spans on several threads, parse the essential
// structure back out of the JSON.
TEST(Profile, ChromeTraceRoundTrip) {
  obs::Profiler& prof = obs::Profiler::global();
  prof.clear();
  prof.set_enabled(true);
  {
    FEDL_PROFILE_SCOPE("test.outer");
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 8; ++i)
      futures.push_back(pool.submit([] { FEDL_PROFILE_SCOPE("test.task"); }));
    for (auto& f : futures) f.get();
  }
  prof.set_enabled(false);
  EXPECT_GE(prof.num_spans(), 9u);

  std::ostringstream os;
  prof.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.task\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // Structural sanity: balanced braces/brackets outside strings.
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  prof.clear();
}

// Runtime-disabled profiling must record nothing.
TEST(Profile, DisabledRecordsNoSpans) {
  obs::Profiler& prof = obs::Profiler::global();
  prof.clear();
  prof.set_enabled(false);
  { FEDL_PROFILE_SCOPE("test.ignored"); }
  EXPECT_EQ(prof.num_spans(), 0u);
}
#endif  // FEDL_PROFILING_ENABLED

// Golden-schema check for the per-epoch JSONL decision trace: run one tiny
// seeded scenario and assert every event line carries the documented keys
// (scripts/validate_trace.py enforces the same schema from Python).
TEST(EventTrace, SeededEpochEventCarriesSchema) {
  const std::string path =
      std::string(::testing::TempDir()) + "/obs_trace_test.jsonl";
  std::remove(path.c_str());

  harness::ScenarioConfig cfg;
  cfg.num_clients = 6;
  cfg.n_min = 2;
  cfg.budget = 200.0;
  cfg.max_epochs = 2;
  cfg.train_samples = 120;
  cfg.test_samples = 40;
  cfg.width_scale = 0.05;
  cfg.eval_cap = 32;
  cfg.seed = 7;
  cfg.trace_out = path;
  harness::Experiment exp(cfg);
  auto strat = harness::make_strategy("fedl", cfg);
  const auto res = exp.run(*strat);
  ASSERT_GT(res.epochs_run, 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t events = 0;
  const std::vector<std::string> top_keys = {
      "\"type\":\"epoch\"",   "\"algorithm\":",      "\"epoch\":",
      "\"num_available\":",   "\"num_selected\":",   "\"iterations\":",
      "\"rho\":",             "\"mu0\":",            "\"eta_max\":",
      "\"latency_s\":",       "\"epoch_cost\":",     "\"budget_total\":",
      "\"budget_spent\":",    "\"budget_remaining\":",
      "\"train_loss_selected\":", "\"train_loss_all\":", "\"test_loss\":",
      "\"test_accuracy\":",   "\"num_dropped\":",    "\"clients\":["};
  const std::vector<std::string> client_keys = {
      "\"id\":",        "\"cost\":",      "\"data_size\":",
      "\"tau_loc\":",   "\"tau_cm_est\":", "\"x_frac\":",
      "\"mu\":",        "\"eta_est\":",   "\"delta_est\":",
      "\"selected\":",  "\"eta_hat\":",   "\"delta_hat\":",
      "\"completed_iters\":", "\"dropped\":"};
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++events;
    for (const auto& key : top_keys)
      EXPECT_NE(line.find(key), std::string::npos)
          << "event missing " << key << ": " << line.substr(0, 200);
    for (const auto& key : client_keys)
      EXPECT_NE(line.find(key), std::string::npos)
          << "client record missing " << key;
    // FedL runs must report the learner state, not nulls.
    EXPECT_EQ(line.find("\"rho\":null"), std::string::npos);
    EXPECT_EQ(line.find("\"mu0\":null"), std::string::npos);
  }
  EXPECT_EQ(events, res.epochs_run);

  // A non-FedL strategy appends to the same file with null learner fields.
  auto baseline = harness::make_strategy("fedavg", cfg);
  const auto res2 = exp.run(*baseline);
  ASSERT_GT(res2.epochs_run, 0u);
  std::ifstream again(path);
  std::size_t total = 0;
  bool saw_null_rho = false;
  while (std::getline(again, line)) {
    if (line.empty()) continue;
    ++total;
    if (line.find("\"rho\":null") != std::string::npos) saw_null_rho = true;
  }
  EXPECT_EQ(total, res.epochs_run + res2.epochs_run);
  EXPECT_TRUE(saw_null_rho);
  std::remove(path.c_str());
}

TEST(Report, MetricsSummaryListsEveryKind) {
  obs::MetricsSnapshot snap;
  snap.counters["c.one"] = 42;
  snap.gauges["g.one"] = 2.5;
  obs::HistogramSnapshot h;
  h.bounds = {1.0, 2.0};
  h.counts = {3, 0, 1};
  h.total = 4;
  h.sum = 6.0;
  snap.histograms["h.one"] = h;

  std::ostringstream os;
  harness::print_metrics_summary(os, snap);
  const std::string text = os.str();
  EXPECT_NE(text.find("== Metrics"), std::string::npos);
  EXPECT_NE(text.find("c.one"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("g.one"), std::string::npos);
  EXPECT_NE(text.find("h.one"), std::string::npos);
  EXPECT_NE(text.find("mean=1.5"), std::string::npos);
}

TEST(JsonExport, RunBundleContainsTracesAndMetrics) {
  fl::TrainTrace trace;
  trace.algorithm = "FedL";
  fl::TraceRecord r;
  r.epoch = 1;
  r.test_accuracy = 0.5;
  trace.records.push_back(r);

  obs::MetricsSnapshot snap;
  snap.counters["c"] = 1;

  std::ostringstream os;
  harness::write_run_json(os, {trace}, snap);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traces\":[{\"algorithm\":\"FedL\"", 0), 0u);
  EXPECT_NE(json.find("\"metrics\":{\"counters\":{\"c\":1}"),
            std::string::npos);
}

}  // namespace
}  // namespace fedl
