// GEMM parity property tests: the dispatched blocked/SIMD gemm() must match
// the gemm_naive reference for every kernel the host can run, across all
// four transpose combinations, the full alpha/beta grid, block-edge sizes,
// and the fused-bias epilogue.
//
// Tolerance contract (see DESIGN.md §"Compute kernel layer"): gemm_naive
// accumulates each output element in double and the micro-kernels accumulate
// in float (the AVX2 path with FMA), so parity is relative-error bounded,
// not bit-identical. The bound scales with k (the length of the reduced
// dimension) and the magnitudes involved.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "parallel/scheduler.h"
#include "tensor/gemm.h"
#include "tensor/simd_dispatch.h"

namespace fedl {
namespace {

// Kernels runnable on this host: the portable path always, the SIMD tiers
// when the CPU has them. Exercising kPortable on a SIMD machine also pins
// exactly the code path the env override FEDL_GEMM_KERNEL=portable selects
// (resolve_gemm_kernel maps the env var to these same enum values; the
// mapping itself is tested below).
std::vector<GemmKernel> runnable_kernels() {
  std::vector<GemmKernel> ks = {GemmKernel::kPortable};
  if (cpu_supports_avx2_fma()) ks.push_back(GemmKernel::kAvx2Fma);
  if (cpu_supports_avx512()) ks.push_back(GemmKernel::kAvx512);
  return ks;
}

// Restores automatic dispatch after each test so ordering cannot leak a
// forced kernel into other suites.
class GemmParity : public ::testing::Test {
 protected:
  ~GemmParity() override {
    force_gemm_kernel(resolve_gemm_kernel(nullptr, cpu_supports_avx512(),
                                          cpu_supports_avx2_fma()));
  }
};

void expect_parity(GemmKernel kernel, bool ta, bool tb, std::size_t m,
                   std::size_t n, std::size_t k, float alpha, float beta) {
  force_gemm_kernel(kernel);
  Rng rng(m * 1009 + n * 131 + k * 17 + (ta ? 1 : 0) + (tb ? 2 : 0) +
          static_cast<std::uint64_t>(kernel) * 7);
  std::vector<float> a(m * k), b(k * n), c_fast(m * n), c_ref(m * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < c_fast.size(); ++i)
    c_fast[i] = c_ref[i] = static_cast<float>(rng.normal());

  gemm(ta, tb, m, n, k, alpha, a.data(), b.data(), beta, c_fast.data());
  gemm_naive(ta, tb, m, n, k, alpha, a.data(), b.data(), beta, c_ref.data());

  // Float accumulation error grows ~sqrt(k) for random-sign data; use a
  // k-scaled relative bound with a floor for near-cancellation.
  const float tol =
      1e-6f * std::sqrt(static_cast<float>(k) + 1.0f) * 8.0f;
  for (std::size_t i = 0; i < c_fast.size(); ++i) {
    ASSERT_NEAR(c_fast[i], c_ref[i],
                tol * (std::abs(c_ref[i]) + std::sqrt(
                           static_cast<float>(k) + 1.0f)))
        << gemm_kernel_name(kernel) << " ta=" << ta << " tb=" << tb
        << " m=" << m << " n=" << n << " k=" << k << " alpha=" << alpha
        << " beta=" << beta << " i=" << i;
  }
}

TEST_F(GemmParity, AllTransposesAlphaBetaGridBlockEdges) {
  // Sizes straddle the micro-tile (6x16) and cache-block (96/256/256)
  // boundaries: 1 and 3 exercise fully-degenerate tiles, 63/65 straddle
  // kBlockM, 257 straddles kBlockN/kBlockK.
  const std::size_t sizes[] = {1, 3, 63, 65, 257};
  const float coeffs[] = {0.0f, 1.0f, 0.5f, -1.0f};
  for (GemmKernel kernel : runnable_kernels()) {
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        // Rotate (m, n, k) through the size list so every size lands on
        // every dimension without the full 5^3 cross product.
        for (std::size_t i = 0; i < 5; ++i) {
          const std::size_t m = sizes[i];
          const std::size_t n = sizes[(i + 1) % 5];
          const std::size_t k = sizes[(i + 2) % 5];
          expect_parity(kernel, ta, tb, m, n, k, 1.0f, 0.0f);
        }
        for (float alpha : coeffs)
          for (float beta : coeffs)
            expect_parity(kernel, ta, tb, 65, 63, 257, alpha, beta);
      }
    }
  }
}

TEST_F(GemmParity, KernelsAgreeWithinTolerance) {
  // The SIMD and portable kernels share packing and accumulation order but
  // differ in FMA rounding (and tile width on AVX-512); their outputs must
  // agree to float accumulation error even though they need not be
  // bit-identical.
  if (runnable_kernels().size() < 2)
    GTEST_SKIP() << "no SIMD kernel on this host";
  const std::size_t m = 65, n = 130, k = 257;
  Rng rng(42);
  std::vector<float> a(m * k), b(k * n), c_simd(m * n), c_port(m * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());

  force_gemm_kernel(GemmKernel::kPortable);
  gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c_port.data());
  for (GemmKernel kernel : runnable_kernels()) {
    if (kernel == GemmKernel::kPortable) continue;
    force_gemm_kernel(kernel);
    gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
         c_simd.data());
    for (std::size_t i = 0; i < c_simd.size(); ++i)
      ASSERT_NEAR(c_simd[i], c_port[i], 1e-4f * (std::abs(c_port[i]) + 1.0f))
          << gemm_kernel_name(kernel);
  }
}

TEST_F(GemmParity, ThreadCountAxisBitIdenticalPerKernel) {
  // The threaded macro loop must be bit-identical at any thread count: a
  // grant only changes which worker runs a 6-row strip, never the strip's
  // fixed k-accumulation order. Checked per kernel tier at scheduler
  // budgets 1 / 2 / 4+hardware — memcmp equality, not tolerance. The size
  // clears the internal flop threshold so budgets > 1 genuinely fan out.
  const std::size_t m = 256, n = 192, k = 160;
  Rng rng(1234);
  std::vector<float> a(m * k), b(k * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());

  std::vector<std::size_t> budgets = {1, 2, 4};
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw > 4) budgets.push_back(hw);
  for (GemmKernel kernel : runnable_kernels()) {
    force_gemm_kernel(kernel);
    std::vector<float> c_serial(m * n), c_budget(m * n);
    Scheduler::instance().configure(1, 1);
    gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
         c_serial.data());
    for (std::size_t budget : budgets) {
      Scheduler::instance().configure(budget, 1);
      std::fill(c_budget.begin(), c_budget.end(), -1.0f);
      gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
           c_budget.data());
      ASSERT_EQ(std::memcmp(c_serial.data(), c_budget.data(),
                            c_serial.size() * sizeof(float)),
                0)
          << gemm_kernel_name(kernel) << " budget=" << budget;
    }
  }
  Scheduler::instance().configure(0, 1);
}

TEST_F(GemmParity, FusedBiasMatchesUnfusedReference) {
  const std::size_t m = 37, n = 101, k = 129;
  Rng rng(7);
  std::vector<float> a(m * k), b(k * n), bias_r(m), bias_c(n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto& v : bias_r) v = static_cast<float>(rng.normal());
  for (auto& v : bias_c) v = static_cast<float>(rng.normal());

  for (GemmKernel kernel : runnable_kernels()) {
    force_gemm_kernel(kernel);
    std::vector<float> fused(m * n), ref(m * n);

    // Per-row bias (conv epilogue).
    gemm_bias(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
              fused.data(), BiasMode::kPerRow, bias_r.data());
    gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, ref.data());
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_FLOAT_EQ(fused[i * n + j], ref[i * n + j] + bias_r[i])
            << gemm_kernel_name(kernel);

    // Per-column bias (dense epilogue), accumulating over beta = 1.
    std::vector<float> c0(m * n, 0.25f);
    fused = c0;
    ref = c0;
    gemm_bias(false, false, m, n, k, 1.0f, a.data(), b.data(), 1.0f,
              fused.data(), BiasMode::kPerCol, bias_c.data());
    gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 1.0f, ref.data());
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_FLOAT_EQ(fused[i * n + j], ref[i * n + j] + bias_c[j])
            << gemm_kernel_name(kernel);
  }
}

TEST_F(GemmParity, StridedViewsMatchPackedOperands) {
  // The leading-dimension form on sub-matrix views must equal a packed-copy
  // gemm — this is what the conv weight-gradient block reduction relies on.
  const std::size_t m = 9, n = 20, k = 33;
  const std::size_t lda = k + 5, ldb = n + 3, ldc = n + 7;
  Rng rng(11);
  std::vector<float> a(m * lda), b(k * ldb), c(m * ldc, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());

  std::vector<float> ap(m * k), bp(k * n), cref(m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t p = 0; p < k; ++p) ap[i * k + p] = a[i * lda + p];
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t j = 0; j < n; ++j) bp[p * n + j] = b[p * ldb + j];

  for (GemmKernel kernel : runnable_kernels()) {
    force_gemm_kernel(kernel);
    std::fill(c.begin(), c.end(), 0.0f);
    gemm_bias(false, false, m, n, k, 1.0f, a.data(), lda, b.data(), ldb, 0.0f,
              c.data(), ldc, BiasMode::kNone, nullptr);
    gemm(false, false, m, n, k, 1.0f, ap.data(), bp.data(), 0.0f,
         cref.data());
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_EQ(c[i * ldc + j], cref[i * n + j])
            << gemm_kernel_name(kernel) << " i=" << i << " j=" << j;
  }
}

TEST(GemmDispatch, EnvOverrideResolution) {
  // The pure policy behind FEDL_GEMM_KERNEL: portable always honored, SIMD
  // tiers honored only when the CPU can run them, auto/unset/unknown pick
  // the best available. Arguments are (env, avx512_supported,
  // avx2_supported). This pins the fallback path for machines without the
  // requested tier.
  EXPECT_EQ(resolve_gemm_kernel("portable", true, true),
            GemmKernel::kPortable);
  EXPECT_EQ(resolve_gemm_kernel("portable", false, false),
            GemmKernel::kPortable);
  EXPECT_EQ(resolve_gemm_kernel("avx2", false, true), GemmKernel::kAvx2Fma);
  EXPECT_EQ(resolve_gemm_kernel("avx2", false, false), GemmKernel::kPortable);
  // avx2 never upgrades to avx512 even when the CPU could run it: a pinned
  // env var means "benchmark exactly this tier".
  EXPECT_EQ(resolve_gemm_kernel("avx2", true, true), GemmKernel::kAvx2Fma);
  EXPECT_EQ(resolve_gemm_kernel("avx512", true, true), GemmKernel::kAvx512);
  for (const char* env : {"auto", "bogus", static_cast<const char*>(nullptr)}) {
    EXPECT_EQ(resolve_gemm_kernel(env, true, true), GemmKernel::kAvx512);
    EXPECT_EQ(resolve_gemm_kernel(env, false, true), GemmKernel::kAvx2Fma);
    EXPECT_EQ(resolve_gemm_kernel(env, false, false), GemmKernel::kPortable);
  }
}

TEST(GemmDispatch, Avx512DegradeChain) {
  // Requesting avx512 on hosts that lack it walks down the chain
  // avx512 → avx2 → portable, so one pinned env var is safe fleet-wide.
  EXPECT_EQ(resolve_gemm_kernel("avx512", false, true), GemmKernel::kAvx2Fma);
  EXPECT_EQ(resolve_gemm_kernel("avx512", false, false),
            GemmKernel::kPortable);
  // auto on an avx512-less host likewise degrades one tier at a time.
  EXPECT_EQ(resolve_gemm_kernel(nullptr, false, true), GemmKernel::kAvx2Fma);
  EXPECT_EQ(resolve_gemm_kernel(nullptr, false, false),
            GemmKernel::kPortable);
  // The hypothetical avx512-without-avx2 CPU still gets the requested tier.
  EXPECT_EQ(resolve_gemm_kernel("avx512", true, false), GemmKernel::kAvx512);
}

TEST(GemmDispatch, ForcingUnsupportedKernelThrows) {
  bool exercised = false;
  if (!cpu_supports_avx2_fma()) {
    EXPECT_THROW(force_gemm_kernel(GemmKernel::kAvx2Fma), CheckError);
    exercised = true;
  }
  if (!cpu_supports_avx512()) {
    EXPECT_THROW(force_gemm_kernel(GemmKernel::kAvx512), CheckError);
    exercised = true;
  }
  if (!exercised)
    GTEST_SKIP() << "host supports every SIMD tier; cannot exercise the guard";
}

}  // namespace
}  // namespace fedl
