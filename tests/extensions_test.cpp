// Tests for the extension modules: the UCB bandit baseline, the fairness
// tracker + FedL fairness mode, and the FedProx/SGD local-solver variants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/fairness.h"
#include "core/fedl_strategy.h"
#include "core/ucb_strategy.h"
#include "fl/dane.h"
#include "harness/experiment.h"
#include "nn/factory.h"

namespace fedl {
namespace {

sim::EpochContext make_ctx(std::size_t k) {
  sim::EpochContext ctx;
  ctx.epoch = 1;
  for (std::size_t i = 0; i < k; ++i) {
    sim::ClientObservation o;
    o.id = i;
    o.cost = 1.0;
    o.data_size = 10;
    o.tau_loc = 0.2;
    o.tau_cm_est = 0.1;
    ctx.available.push_back(o);
  }
  return ctx;
}

// --- UCB ------------------------------------------------------------------------

TEST(Ucb, ExploresEveryArmFirst) {
  core::UcbConfig cfg;
  cfg.base.n_select = 2;
  core::UcbStrategy s(6, cfg);
  core::BudgetLedger budget(1000.0);
  const auto ctx = make_ctx(6);
  std::set<std::size_t> tried;
  for (int t = 0; t < 3; ++t) {
    const auto d = s.decide(ctx, budget);
    for (std::size_t id : d.selected) tried.insert(id);
    fl::EpochOutcome out;
    out.selected = d.selected;
    out.client_loss_reduction.assign(d.selected.size(), 0.1);
    out.client_latency_s.assign(d.selected.size(), 1.0);
    s.observe(ctx, d, out);
  }
  EXPECT_EQ(tried.size(), 6u);  // every unpulled arm has infinite index
}

TEST(Ucb, ExploitsHighRewardArms) {
  core::UcbConfig cfg;
  cfg.base.n_select = 1;
  cfg.exploration = 0.05;  // near-greedy so the reward signal dominates
  core::UcbStrategy s(3, cfg);
  core::BudgetLedger budget(1000.0);
  const auto ctx = make_ctx(3);
  // Feed rewards: client 1 reduces loss a lot, others not at all.
  int picked_1 = 0;
  for (int t = 0; t < 40; ++t) {
    const auto d = s.decide(ctx, budget);
    ASSERT_EQ(d.selected.size(), 1u);
    const std::size_t id = d.selected[0];
    if (t >= 10) picked_1 += (id == 1);
    fl::EpochOutcome out;
    out.selected = d.selected;
    out.client_loss_reduction = {id == 1 ? 1.0 : 0.0};
    out.client_latency_s = {1.0};
    s.observe(ctx, d, out);
  }
  EXPECT_GT(picked_1, 20);  // mostly exploits the good arm
  EXPECT_GT(s.mean_reward(1), s.mean_reward(0));
}

TEST(Ucb, TracksPullCounts) {
  core::UcbConfig cfg;
  cfg.base.n_select = 2;
  core::UcbStrategy s(4, cfg);
  core::BudgetLedger budget(100.0);
  const auto ctx = make_ctx(4);
  const auto d = s.decide(ctx, budget);
  fl::EpochOutcome out;
  out.selected = d.selected;
  out.client_loss_reduction.assign(2, 0.1);
  out.client_latency_s.assign(2, 1.0);
  s.observe(ctx, d, out);
  std::size_t total_pulls = 0;
  for (std::size_t k = 0; k < 4; ++k) total_pulls += s.pulls(k);
  EXPECT_EQ(total_pulls, 2u);
}

TEST(Ucb, RunsEndToEnd) {
  harness::ScenarioConfig cfg;
  cfg.num_clients = 8;
  cfg.n_min = 3;
  cfg.budget = 120.0;
  cfg.max_epochs = 5;
  cfg.train_samples = 200;
  cfg.test_samples = 60;
  cfg.width_scale = 0.05;
  cfg.batch_cap = 12;
  cfg.eval_cap = 48;
  cfg.dane.sgd_steps = 2;
  harness::Experiment exp(cfg);
  auto strat = harness::make_strategy("ucb", cfg);
  const auto res = exp.run(*strat);
  EXPECT_GT(res.epochs_run, 0u);
}

// --- fairness ----------------------------------------------------------------------

TEST(ParticipationTracker, RatesAreSelectionsOverAvailabilities) {
  core::ParticipationTracker tr(3);
  tr.record({0, 1, 2}, {0});
  tr.record({0, 1}, {0, 1});
  EXPECT_EQ(tr.epochs(), 2u);
  EXPECT_DOUBLE_EQ(tr.rate(0), 1.0);
  EXPECT_DOUBLE_EQ(tr.rate(1), 0.5);
  EXPECT_DOUBLE_EQ(tr.rate(2), 0.0);
  EXPECT_EQ(tr.selections(0), 2u);
  EXPECT_EQ(tr.availabilities(2), 1u);
}

TEST(JainsIndex, KnownValues) {
  EXPECT_DOUBLE_EQ(core::jains_index({5, 5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(core::jains_index({4, 0, 0, 0}), 0.25);
  EXPECT_DOUBLE_EQ(core::jains_index({0, 0}), 1.0);
}

TEST(Fairness, BoostRaisesJainsIndex) {
  // Make half the fleet slow so vanilla FedL concentrates on the fast half;
  // the fairness quota must spread selections measurably wider.
  auto run = [](bool fair) {
    core::FedLConfig fc;
    fc.learner.n_min = 2;
    fc.learner.theta = 0.5;
    fc.fairness.enabled = fair;
    fc.fairness.min_rate = 0.3;
    fc.fairness.warmup_epochs = 3;
    core::FedLStrategy s(8, fc);
    core::BudgetLedger budget(100000.0);
    sim::EpochContext ctx;
    ctx.epoch = 1;
    for (std::size_t i = 0; i < 8; ++i) {
      sim::ClientObservation o;
      o.id = i;
      o.cost = 1.0;
      o.data_size = 10;
      o.tau_loc = (i < 4) ? 0.1 : 4.0;
      o.tau_cm_est = 0.05;
      ctx.available.push_back(o);
    }
    for (int t = 0; t < 40; ++t) {
      const auto d = s.decide(ctx, budget);
      fl::EpochOutcome out;
      out.selected = d.selected;
      out.num_iterations = d.num_iterations;
      out.client_eta.assign(d.selected.size(), 0.5);
      out.client_loss_reduction.assign(d.selected.size(), 0.05);
      out.train_loss_all = 0.4;
      s.observe(ctx, d, out);
    }
    return core::jains_index(s.participation().selection_counts());
  };
  const double fair_index = run(true);
  const double plain_index = run(false);
  EXPECT_GT(fair_index, plain_index);
  EXPECT_GT(fair_index, 0.7);
}

TEST(Fairness, FedlFairStrategyRunsEndToEnd) {
  harness::ScenarioConfig cfg;
  cfg.num_clients = 8;
  cfg.n_min = 3;
  cfg.budget = 120.0;
  cfg.max_epochs = 5;
  cfg.train_samples = 200;
  cfg.test_samples = 60;
  cfg.width_scale = 0.05;
  cfg.batch_cap = 12;
  cfg.eval_cap = 48;
  cfg.dane.sgd_steps = 2;
  harness::Experiment exp(cfg);
  auto strat = harness::make_strategy("fedl-fair", cfg);
  const auto res = exp.run(*strat);
  EXPECT_GT(res.epochs_run, 0u);
}

// --- local solver variants ------------------------------------------------------------

struct SolverCase {
  fl::LocalUpdateRule rule;
  const char* optimizer;
};

class LocalSolverVariants : public ::testing::TestWithParam<SolverCase> {};

TEST_P(LocalSolverVariants, DecreasesLocalLoss) {
  Rng rng(21);
  nn::Model model = nn::make_logistic(4, 2, 1e-2, rng);
  nn::Batch batch;
  batch.x = Tensor(Shape{30, 4});
  batch.y.resize(30);
  for (std::size_t i = 0; i < 30; ++i) {
    const int cls = i % 2;
    batch.y[i] = static_cast<std::uint8_t>(cls);
    for (std::size_t d = 0; d < 4; ++d)
      batch.x.at(i, d) = static_cast<float>(rng.normal(cls ? 1.5 : -1.5, 0.6));
  }
  fl::LocalOracle oracle(&model, &batch);
  const nn::ParamVec w = model.params_flat();

  fl::DaneConfig cfg;
  cfg.rule = GetParam().rule;
  cfg.optimizer = GetParam().optimizer;
  cfg.sgd_steps = 15;
  cfg.sgd_step = 0.1;
  const fl::LocalUpdate upd = fl::dane_local_step(oracle, w, {}, cfg);
  EXPECT_LT(upd.loss_after, upd.loss_before);
  EXPECT_GE(upd.eta, 0.0);
  EXPECT_LT(upd.eta, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Rules, LocalSolverVariants,
    ::testing::Values(SolverCase{fl::LocalUpdateRule::kDane, "sgd"},
                      SolverCase{fl::LocalUpdateRule::kFedProx, "sgd"},
                      SolverCase{fl::LocalUpdateRule::kSgd, "sgd"},
                      SolverCase{fl::LocalUpdateRule::kDane, "momentum"},
                      SolverCase{fl::LocalUpdateRule::kDane, "adam"},
                      SolverCase{fl::LocalUpdateRule::kFedProx, "momentum"}));

TEST(LocalSolver, FedProxKeepsUpdateSmallerThanSgd) {
  // The proximal term shrinks ‖d‖ relative to unregularized local descent.
  Rng rng(23);
  nn::Model model = nn::make_logistic(4, 2, 1e-3, rng);
  nn::Batch batch;
  batch.x = Tensor::uniform(Shape{20, 4}, -1.0f, 1.0f, rng);
  batch.y.resize(20);
  for (auto& y : batch.y)
    y = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  fl::LocalOracle oracle(&model, &batch);
  const nn::ParamVec w = model.params_flat();

  fl::DaneConfig prox;
  prox.rule = fl::LocalUpdateRule::kFedProx;
  prox.sigma1 = 5.0;
  prox.sgd_steps = 20;
  prox.sgd_step = 0.1;
  fl::DaneConfig sgd = prox;
  sgd.rule = fl::LocalUpdateRule::kSgd;

  const double d_prox = vnorm(fl::dane_local_step(oracle, w, {}, prox).d);
  const double d_sgd = vnorm(fl::dane_local_step(oracle, w, {}, sgd).d);
  EXPECT_LT(d_prox, d_sgd);
}

TEST(LocalSolver, EngineRunsWithEveryRule) {
  for (auto rule : {fl::LocalUpdateRule::kDane, fl::LocalUpdateRule::kFedProx,
                    fl::LocalUpdateRule::kSgd}) {
    harness::ScenarioConfig cfg;
    cfg.num_clients = 6;
    cfg.n_min = 2;
    cfg.budget = 80.0;
    cfg.max_epochs = 3;
    cfg.train_samples = 150;
    cfg.test_samples = 50;
    cfg.width_scale = 0.05;
    cfg.batch_cap = 10;
    cfg.eval_cap = 40;
    cfg.dane.rule = rule;
    cfg.dane.sgd_steps = 2;
    harness::Experiment exp(cfg);
    auto strat = harness::make_strategy("fedavg", cfg);
    const auto res = exp.run(*strat);
    EXPECT_GT(res.epochs_run, 0u);
  }
}

}  // namespace
}  // namespace fedl
