// Configuration-matrix tests for the FL engine: every combination of
// {local update rule} × {compressor} × {bandwidth policy} must run one
// epoch with all bookkeeping invariants intact (TEST_P sweep), plus
// targeted interplay cases (compression × faults, aggregation × rule).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/engine.h"
#include "nn/factory.h"

namespace fedl::fl {
namespace {

struct World {
  World(EngineConfig ec, net::BandwidthPolicy bw, std::uint64_t seed) {
    data = std::make_unique<data::TrainTest>(data::make_synthetic_train_test(
        data::fmnist_like_spec(240, seed), 60));
    Rng prng(seed);
    auto part = data::partition_iid(data->train, 5, prng);
    sim::EnvironmentSpec es;
    es.num_clients = 5;
    es.device.seed = seed + 1;
    es.device.availability_prob = 1.0;
    es.channel.seed = seed + 2;
    es.online.seed = seed + 3;
    es.bandwidth = bw;
    env = std::make_unique<sim::EdgeEnvironment>(es, part);

    Rng mrng(seed + 4);
    nn::ModelSpec ms;
    ms.width_scale = 0.04;
    ec.batch_cap = 10;
    ec.eval_cap = 40;
    ec.seed = seed + 5;
    engine = std::make_unique<FlEngine>(&data->train, &data->test, env.get(),
                                        nn::make_fmnist_cnn(ms, mrng), ec);
  }

  std::vector<std::size_t> everyone() {
    std::vector<std::size_t> out;
    for (const auto& o : env->context().available) out.push_back(o.id);
    return out;
  }

  std::unique_ptr<data::TrainTest> data;
  std::unique_ptr<sim::EdgeEnvironment> env;
  std::unique_ptr<FlEngine> engine;
};

using MatrixParam =
    std::tuple<LocalUpdateRule, const char* /*compressor*/,
               net::BandwidthPolicy>;

class EngineMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(EngineMatrix, OneEpochInvariants) {
  const auto [rule, compressor, bw] = GetParam();
  EngineConfig ec;
  ec.dane.rule = rule;
  ec.dane.sgd_steps = 2;
  ec.compressor = compressor;
  World w(ec, bw, 97);
  w.env->advance_epoch();
  const auto sel = w.everyone();
  ASSERT_GE(sel.size(), 2u);

  const EpochOutcome out = w.engine->run_epoch(sel, 2);
  EXPECT_EQ(out.selected, sel);
  EXPECT_EQ(out.num_iterations, 2u);
  EXPECT_GT(out.latency_s, 0.0);
  EXPECT_GT(out.cost, 0.0);
  ASSERT_EQ(out.client_eta.size(), sel.size());
  ASSERT_EQ(out.client_latency_s.size(), sel.size());
  for (std::size_t i = 0; i < sel.size(); ++i) {
    EXPECT_GE(out.client_eta[i], 0.0);
    EXPECT_LT(out.client_eta[i], 1.0);
    EXPECT_GT(out.client_latency_s[i], 0.0);
    EXPECT_LE(out.client_latency_s[i], out.latency_s + 1e-12);
  }
  EXPECT_GT(out.train_loss_all, 0.0);
  EXPECT_GE(out.test_accuracy, 0.0);
  EXPECT_LE(out.test_accuracy, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineMatrix,
    ::testing::Combine(
        ::testing::Values(LocalUpdateRule::kDane, LocalUpdateRule::kFedProx,
                          LocalUpdateRule::kSgd),
        ::testing::Values("none", "quant8", "topk10"),
        ::testing::Values(net::BandwidthPolicy::kEqual,
                          net::BandwidthPolicy::kMinMaxLatency)));

TEST(EngineInterplay, CompressionShrinksUploadLatency) {
  EngineConfig plain;
  plain.dane.sgd_steps = 2;
  EngineConfig compressed = plain;
  compressed.compressor = "topk1";
  World a(plain, net::BandwidthPolicy::kEqual, 101);
  World b(compressed, net::BandwidthPolicy::kEqual, 101);
  a.env->advance_epoch();
  b.env->advance_epoch();
  const auto out_a = a.engine->run_epoch(a.everyone(), 1);
  const auto out_b = b.engine->run_epoch(b.everyone(), 1);
  // Same devices/channels (same seeds): the compressed run's epoch latency
  // must be strictly smaller because the upload term shrinks by ~100x.
  EXPECT_LT(out_b.latency_s, out_a.latency_s);
}

TEST(EngineInterplay, CompressionPlusFaultsRuns) {
  EngineConfig ec;
  ec.dane.sgd_steps = 2;
  ec.compressor = "quant8";
  ec.faults.dropout_prob = 0.5;
  World w(ec, net::BandwidthPolicy::kMinMaxLatency, 103);
  w.env->advance_epoch();
  const auto out = w.engine->run_epoch(w.everyone(), 3);
  EXPECT_GT(out.latency_s, 0.0);
  for (double eta : out.client_eta) EXPECT_LT(eta, 1.0);
}

TEST(EngineInterplay, MinMaxBandwidthReducesEpochLatency) {
  EngineConfig ec;
  ec.dane.sgd_steps = 2;
  World equal(ec, net::BandwidthPolicy::kEqual, 107);
  World minmax(ec, net::BandwidthPolicy::kMinMaxLatency, 107);
  equal.env->advance_epoch();
  minmax.env->advance_epoch();
  const auto out_eq = equal.engine->run_epoch(equal.everyone(), 1);
  const auto out_mm = minmax.engine->run_epoch(minmax.everyone(), 1);
  // Makespan-optimal FDMA can only help the slowest uploader; compute time
  // is identical, so epoch latency must not increase.
  EXPECT_LE(out_mm.latency_s, out_eq.latency_s + 1e-9);
}

TEST(EngineInterplay, LocalSgdStillDrivesLossDown) {
  EngineConfig ec;
  ec.dane.rule = LocalUpdateRule::kSgd;
  ec.dane.sgd_steps = 3;
  World w(ec, net::BandwidthPolicy::kEqual, 109);
  double first = 0.0, last = 0.0;
  for (int t = 0; t < 5; ++t) {
    w.env->advance_epoch();
    const auto out = w.engine->run_epoch(w.everyone(), 2);
    if (t == 0) first = out.train_loss_all;
    last = out.train_loss_all;
  }
  EXPECT_LT(last, first);
}

TEST(EngineInterplay, OptimizerVariantsProduceDifferentTrajectories) {
  auto loss_after = [](const char* opt) {
    EngineConfig ec;
    ec.dane.sgd_steps = 3;
    ec.dane.optimizer = opt;
    World w(ec, net::BandwidthPolicy::kEqual, 113);
    w.env->advance_epoch();
    return w.engine->run_epoch(w.everyone(), 2).train_loss_all;
  };
  const double sgd = loss_after("sgd");
  const double adam = loss_after("adam");
  EXPECT_NE(sgd, adam);  // different inner optimizers, different updates
}

}  // namespace
}  // namespace fedl::fl
