// Tests for the data substrate: synthetic generators, partitioners, and the
// Poisson online streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "data/online.h"
#include "data/partition.h"
#include "data/synthetic.h"

namespace fedl::data {
namespace {

TEST(Synthetic, ShapesMatchPresets) {
  Dataset fm = make_synthetic(fmnist_like_spec(50, 1));
  EXPECT_EQ(fm.size(), 50u);
  EXPECT_TRUE((fm.sample_shape() == Shape{1, 28, 28}));
  EXPECT_EQ(fm.num_classes(), 10u);

  Dataset cf = make_synthetic(cifar_like_spec(30, 1));
  EXPECT_TRUE((cf.sample_shape() == Shape{3, 32, 32}));
}

TEST(Synthetic, DeterministicInSeed) {
  Dataset a = make_synthetic(fmnist_like_spec(40, 7));
  Dataset b = make_synthetic(fmnist_like_spec(40, 7));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.labels(), b.labels());
  for (std::size_t i = 0; i < a.images().numel(); ++i)
    EXPECT_EQ(a.images()[i], b.images()[i]);
  Dataset c = make_synthetic(fmnist_like_spec(40, 8));
  EXPECT_NE(a.images()[0], c.images()[0]);
}

TEST(Synthetic, LabelsInRange) {
  Dataset d = make_synthetic(fmnist_like_spec(200, 3));
  for (auto y : d.labels()) EXPECT_LT(y, 10);
}

TEST(Synthetic, AllClassesRepresented) {
  Dataset d = make_synthetic(fmnist_like_spec(500, 5));
  std::set<int> seen;
  for (auto y : d.labels()) seen.insert(y);
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Synthetic, LabelNoiseApplied) {
  SyntheticSpec clean = fmnist_like_spec(400, 9);
  SyntheticSpec noisy = clean;
  noisy.label_noise = 1.0;  // every label resampled uniformly
  Dataset a = make_synthetic(clean);
  Dataset b = make_synthetic(noisy);
  std::size_t differ = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    differ += (a.labels()[i] != b.labels()[i]);
  // Resampled uniformly over 10 classes: ~90% differ.
  EXPECT_GT(differ, a.size() / 2);
}

TEST(Synthetic, TrainTestSharePrototypesButNotNoise) {
  TrainTest tt = make_synthetic_train_test(fmnist_like_spec(100, 11), 60);
  EXPECT_EQ(tt.train.size(), 100u);
  EXPECT_EQ(tt.test.size(), 60u);
  // Independent draws: first images must differ.
  EXPECT_NE(tt.train.images()[0], tt.test.images()[0]);
}

TEST(Synthetic, ClassSignalExists) {
  // Mean image of one class must differ from another's beyond noise level:
  // the generator carries class signal.
  Dataset d = make_synthetic(fmnist_like_spec(600, 13));
  const std::size_t elems = d.sample_numel();
  std::vector<double> mean0(elems, 0.0), mean1(elems, 0.0);
  std::size_t n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const float* img = d.images().data() + i * elems;
    if (d.labels()[i] == 0) {
      for (std::size_t e = 0; e < elems; ++e) mean0[e] += img[e];
      ++n0;
    } else if (d.labels()[i] == 1) {
      for (std::size_t e = 0; e < elems; ++e) mean1[e] += img[e];
      ++n1;
    }
  }
  ASSERT_GT(n0, 10u);
  ASSERT_GT(n1, 10u);
  double dist = 0.0;
  for (std::size_t e = 0; e < elems; ++e) {
    const double diff = mean0[e] / n0 - mean1[e] / n1;
    dist += diff * diff;
  }
  EXPECT_GT(std::sqrt(dist), 1.0);
}

// --- dataset views -----------------------------------------------------------

TEST(Dataset, GatherCopiesRequestedSamples) {
  Dataset d = make_synthetic(fmnist_like_spec(20, 15));
  auto batch = d.gather({3, 7, 11});
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.y[1], d.labels()[7]);
  const std::size_t elems = d.sample_numel();
  for (std::size_t e = 0; e < elems; ++e)
    EXPECT_EQ(batch.x[1 * elems + e], d.images()[7 * elems + e]);
}

TEST(Dataset, GatherOutOfRangeThrows) {
  Dataset d = make_synthetic(fmnist_like_spec(5, 15));
  EXPECT_THROW(d.gather({5}), CheckError);
}

TEST(Dataset, HeadLimits) {
  Dataset d = make_synthetic(fmnist_like_spec(10, 15));
  EXPECT_EQ(d.head(4).size(), 4u);
  EXPECT_EQ(d.head(0).size(), 10u);
  EXPECT_EQ(d.head(99).size(), 10u);
}

TEST(Dataset, IndicesOfClassConsistent) {
  Dataset d = make_synthetic(fmnist_like_spec(100, 15));
  std::size_t total = 0;
  for (std::size_t c = 0; c < d.num_classes(); ++c) {
    for (std::size_t i : d.indices_of_class(c))
      EXPECT_EQ(d.labels()[i], c);
    total += d.indices_of_class(c).size();
  }
  EXPECT_EQ(total, d.size());
}

// --- partitioners ----------------------------------------------------------------

class PartitionProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionProperties, IidConservesAndIsDisjoint) {
  Dataset d = make_synthetic(fmnist_like_spec(200, GetParam()));
  Rng rng(GetParam());
  Partition p = partition_iid(d, 8, rng);
  EXPECT_EQ(p.size(), 8u);
  EXPECT_EQ(partition_total(p), d.size());
  EXPECT_TRUE(partition_disjoint(p));
  for (const auto& client : p)
    EXPECT_NEAR(static_cast<double>(client.size()), 25.0, 1.0);
}

TEST_P(PartitionProperties, NonIidPrincipalConcentratesLabels) {
  Dataset d = make_synthetic(fmnist_like_spec(600, GetParam()));
  Rng rng(GetParam() + 1);
  Partition p = partition_noniid_principal(d, 10, 2, 0.8, rng);
  EXPECT_TRUE(partition_disjoint(p));
  const auto dist = label_distribution(d, p);
  // Each client's two largest label shares should carry most of the mass
  // (0.8 principal fraction; pool drain can dilute individual clients, so
  // check a per-client floor plus a strong average).
  double avg_top2 = 0.0;
  for (const auto& probs : dist) {
    std::vector<double> sorted = probs;
    std::sort(sorted.rbegin(), sorted.rend());
    EXPECT_GT(sorted[0] + sorted[1], 0.4);
    avg_top2 += sorted[0] + sorted[1];
  }
  EXPECT_GT(avg_top2 / static_cast<double>(dist.size()), 0.6);
}

TEST_P(PartitionProperties, DirichletConservesAndSkews) {
  Dataset d = make_synthetic(fmnist_like_spec(400, GetParam()));
  Rng rng(GetParam() + 2);
  Partition skewed = partition_dirichlet(d, 6, 0.1, rng);
  EXPECT_EQ(partition_total(skewed), d.size());
  EXPECT_TRUE(partition_disjoint(skewed));

  Rng rng2(GetParam() + 3);
  Partition balanced = partition_dirichlet(d, 6, 100.0, rng2);
  // Low alpha should produce higher max-label concentration than high alpha.
  auto max_concentration = [&](const Partition& p) {
    double worst = 0.0;
    for (const auto& probs : label_distribution(d, p))
      for (double v : probs) worst = std::max(worst, v);
    return worst;
  };
  EXPECT_GT(max_concentration(skewed), max_concentration(balanced));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperties,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Partition, IidHandlesMoreClientsThanSamples) {
  Dataset d = make_synthetic(fmnist_like_spec(3, 21));
  Rng rng(21);
  Partition p = partition_iid(d, 10, rng);
  EXPECT_EQ(partition_total(p), 3u);
}

// --- online stream -----------------------------------------------------------------

TEST(OnlineStream, SizesRespectBounds) {
  Dataset d = make_synthetic(fmnist_like_spec(400, 23));
  Rng rng(23);
  Partition p = partition_iid(d, 4, rng);
  OnlineDataSpec spec;
  spec.poisson_mean_frac = 0.5;
  spec.min_samples = 3;
  OnlineDataStream stream(p, spec);
  for (int epoch = 0; epoch < 20; ++epoch) {
    stream.advance_epoch();
    for (std::size_t k = 0; k < 4; ++k) {
      const std::size_t n = stream.epoch_size(k);
      EXPECT_GE(n, spec.min_samples);
      EXPECT_LE(n, p[k].size());
    }
  }
}

TEST(OnlineStream, IndicesComeFromOwnPartition) {
  Dataset d = make_synthetic(fmnist_like_spec(300, 29));
  Rng rng(29);
  Partition p = partition_iid(d, 3, rng);
  std::vector<std::set<std::size_t>> owned(3);
  for (std::size_t k = 0; k < 3; ++k)
    owned[k] = {p[k].begin(), p[k].end()};
  OnlineDataStream stream(p, {});
  for (int epoch = 0; epoch < 5; ++epoch) {
    stream.advance_epoch();
    for (std::size_t k = 0; k < 3; ++k)
      for (std::size_t idx : stream.epoch_indices(k))
        EXPECT_TRUE(owned[k].count(idx)) << "client " << k << " idx " << idx;
  }
}

TEST(OnlineStream, SizesVaryAcrossEpochs) {
  Dataset d = make_synthetic(fmnist_like_spec(800, 31));
  Rng rng(31);
  Partition p = partition_iid(d, 2, rng);
  OnlineDataStream stream(p, {});
  std::set<std::size_t> sizes;
  for (int epoch = 0; epoch < 30; ++epoch) {
    stream.advance_epoch();
    sizes.insert(stream.epoch_size(0));
  }
  EXPECT_GT(sizes.size(), 3u);  // Poisson: not constant
}

TEST(OnlineStream, WindowDrifts) {
  Dataset d = make_synthetic(fmnist_like_spec(600, 37));
  Rng rng(37);
  Partition p = partition_iid(d, 1, rng);
  OnlineDataSpec spec;
  spec.drift_frac = 0.5;
  OnlineDataStream stream(p, spec);
  stream.advance_epoch();
  const auto first = stream.epoch_indices(0);
  bool changed = false;
  for (int epoch = 0; epoch < 10 && !changed; ++epoch) {
    stream.advance_epoch();
    changed = (stream.epoch_indices(0) != first);
  }
  EXPECT_TRUE(changed);
}

TEST(OnlineStream, EmptyPartitionYieldsNoData) {
  Dataset d = make_synthetic(fmnist_like_spec(50, 41));
  Partition p(2);
  Rng rng(41);
  p[0].assign({0, 1, 2, 3, 4, 5, 6, 7});
  // p[1] stays empty.
  OnlineDataStream stream(p, {});
  stream.advance_epoch();
  EXPECT_GT(stream.epoch_size(0), 0u);
  EXPECT_EQ(stream.epoch_size(1), 0u);
}

}  // namespace
}  // namespace fedl::data
