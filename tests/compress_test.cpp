// Tests for the update-compression substrate: stochastic quantization
// (unbiasedness, payload accounting), top-k sparsification + error feedback,
// the Compressor interface, and engine integration.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "compress/compressor.h"
#include "harness/experiment.h"

namespace fedl::compress {
namespace {

ParamVec random_vec(std::size_t n, Rng& rng, float scale = 1.0f) {
  ParamVec v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal()) * scale;
  return v;
}

// --- quantization ------------------------------------------------------------

TEST(Quantize, RoundTripWithinOneLevel) {
  Rng rng(1);
  const ParamVec x = random_vec(500, rng);
  const QuantizedVec q = quantize(x, 8, rng);
  const ParamVec rec = dequantize(q);
  float max_abs = 0.0f;
  for (float v : x) max_abs = std::max(max_abs, std::abs(v));
  const double unit = max_abs / 127.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(rec[i], x[i], unit + 1e-6);
}

TEST(Quantize, StochasticRoundingIsUnbiased) {
  // Repeated quantization of the same value must average back to it.
  Rng rng(2);
  const ParamVec x = {0.337f, -0.731f, 0.05f, 0.9f};
  ParamVec mean(x.size(), 0.0f);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const ParamVec rec = dequantize(quantize(x, 4, rng));
    for (std::size_t i = 0; i < x.size(); ++i) mean[i] += rec[i];
  }
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(mean[i] / trials, x[i], 0.01);
}

TEST(Quantize, FewerBitsMoreError) {
  Rng rng(3);
  const ParamVec x = random_vec(2000, rng);
  const double mse8 = quantization_mse(x, quantize(x, 8, rng));
  const double mse3 = quantization_mse(x, quantize(x, 3, rng));
  EXPECT_LT(mse8, mse3);
}

TEST(Quantize, PayloadShrinksWithBits) {
  Rng rng(4);
  const ParamVec x = random_vec(1000, rng);
  const auto q8 = quantize(x, 8, rng);
  const auto q4 = quantize(x, 4, rng);
  EXPECT_LT(q4.payload_bits(), q8.payload_bits());
  EXPECT_LT(q8.payload_bits(), 32.0 * 1000 + 64.0);
}

TEST(Quantize, ZeroVectorStaysZero) {
  Rng rng(5);
  const ParamVec x(10, 0.0f);
  const ParamVec rec = dequantize(quantize(x, 8, rng));
  for (float v : rec) EXPECT_EQ(v, 0.0f);
}

TEST(Quantize, BadBitsRejected) {
  Rng rng(6);
  EXPECT_THROW(quantize({1.0f}, 1, rng), CheckError);
  EXPECT_THROW(quantize({1.0f}, 17, rng), CheckError);
}

// --- top-k --------------------------------------------------------------------

TEST(TopK, KeepsLargestMagnitudes) {
  const ParamVec x = {0.1f, -5.0f, 0.2f, 3.0f, -0.05f};
  const SparseVec s = top_k(x, 2);
  ASSERT_EQ(s.nnz(), 2u);
  EXPECT_EQ(s.indices[0], 1u);
  EXPECT_EQ(s.indices[1], 3u);
  EXPECT_EQ(s.values[0], -5.0f);
  EXPECT_EQ(s.values[1], 3.0f);
}

TEST(TopK, KLargerThanDimKeepsAll) {
  const ParamVec x = {1.0f, 2.0f};
  const SparseVec s = top_k(x, 10);
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_EQ(densify(s), x);
}

TEST(TopK, DensifyRoundTripsKeptCoordinates) {
  Rng rng(7);
  const ParamVec x = random_vec(300, rng);
  const SparseVec s = top_k(x, 30);
  const ParamVec d = densify(s);
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d[i] != 0.0f) {
      EXPECT_EQ(d[i], x[i]);
      ++nonzero;
    }
  }
  EXPECT_EQ(nonzero, 30u);
}

TEST(TopK, PayloadProportionalToK) {
  const ParamVec x(1000, 1.0f);
  EXPECT_LT(top_k(x, 10).payload_bits(), top_k(x, 100).payload_bits());
}

TEST(ErrorFeedback, ResidualCarriesDroppedMass) {
  ErrorFeedback ef;
  const ParamVec x = {1.0f, 0.5f, 0.25f};
  const SparseVec s = ef.compress(x, 1);
  ASSERT_EQ(s.nnz(), 1u);
  EXPECT_EQ(s.indices[0], 0u);
  // Residual holds what was dropped.
  EXPECT_EQ(ef.residual()[0], 0.0f);
  EXPECT_EQ(ef.residual()[1], 0.5f);
  EXPECT_EQ(ef.residual()[2], 0.25f);
  // Next round: residual is added before compressing, so the repeatedly
  // dropped coordinate eventually surfaces.
  const SparseVec s2 = ef.compress({0.0f, 0.5f, 0.0f}, 1);
  EXPECT_EQ(s2.indices[0], 1u);
  EXPECT_EQ(s2.values[0], 1.0f);  // 0.5 carried + 0.5 new
}

TEST(ErrorFeedback, NoLossOverTimeOnConstantSignal) {
  // Σ transmitted -> Σ input as rounds accumulate (error feedback property).
  ErrorFeedback ef;
  const ParamVec x = {0.3f, 0.2f, 0.1f, 0.05f};
  ParamVec transmitted(x.size(), 0.0f);
  const int rounds = 50;
  for (int r = 0; r < rounds; ++r) {
    const SparseVec s = ef.compress(x, 1);
    const ParamVec d = densify(s);
    for (std::size_t i = 0; i < x.size(); ++i) transmitted[i] += d[i];
  }
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(transmitted[i], x[i] * rounds, std::abs(x[i]) * 3 + 0.5);
}

// --- compressor interface ---------------------------------------------------------

TEST(Compressor, FactoryNamesAndErrors) {
  EXPECT_EQ(make_compressor("none", 4, 1)->name(), "none");
  EXPECT_EQ(make_compressor("quant8", 4, 1)->name(), "quant8");
  EXPECT_EQ(make_compressor("quant4", 4, 1)->name(), "quant4");
  EXPECT_EQ(make_compressor("topk10", 4, 1)->name(), "topk10");
  EXPECT_THROW(make_compressor("zstd", 4, 1), ConfigError);
}

TEST(Compressor, NonePassesThrough) {
  NoneCompressor c;
  const ParamVec d = {1.0f, -2.0f};
  const auto cu = c.apply(d, 0);
  EXPECT_EQ(cu.restored, d);
  EXPECT_EQ(cu.payload_bits, 64.0);
}

TEST(Compressor, QuantizeShrinksPayload) {
  Rng rng(8);
  const ParamVec d = random_vec(1000, rng);
  auto c = make_compressor("quant8", 1, 9);
  const auto cu = c->apply(d, 0);
  EXPECT_LT(cu.payload_bits, 32.0 * 1000);
  EXPECT_EQ(cu.restored.size(), d.size());
}

TEST(Compressor, TopKKeepsPerClientState) {
  auto c = make_compressor("topk10", 2, 10);
  const ParamVec d(100, 0.01f);
  const auto a0 = c->apply(d, 0);
  const auto b0 = c->apply(d, 1);
  // Client 0's second call sees client 0's residual, not client 1's.
  const auto a1 = c->apply(d, 0);
  EXPECT_EQ(a0.restored.size(), 100u);
  EXPECT_EQ(b0.restored.size(), 100u);
  EXPECT_EQ(a1.restored.size(), 100u);
}

// --- engine integration --------------------------------------------------------------

TEST(Compressor, EngineRunsWithEveryCompressor) {
  for (const std::string comp : {"none", "quant8", "topk10"}) {
    harness::ScenarioConfig cfg;
    cfg.num_clients = 6;
    cfg.n_min = 2;
    cfg.budget = 80.0;
    cfg.max_epochs = 3;
    cfg.train_samples = 150;
    cfg.test_samples = 50;
    cfg.width_scale = 0.05;
    cfg.batch_cap = 10;
    cfg.eval_cap = 40;
    cfg.dane.sgd_steps = 2;
    cfg.compressor = comp;
    harness::Experiment exp(cfg);
    auto strat = harness::make_strategy("fedavg", cfg);
    const auto res = exp.run(*strat);
    EXPECT_GT(res.epochs_run, 0u) << comp;
  }
}

TEST(Compressor, CompressionReducesSimulatedLatency) {
  auto run_time = [](const std::string& comp) {
    harness::ScenarioConfig cfg;
    cfg.num_clients = 6;
    cfg.n_min = 2;
    cfg.budget = 100.0;
    cfg.max_epochs = 4;
    cfg.train_samples = 150;
    cfg.test_samples = 50;
    cfg.width_scale = 0.05;
    cfg.batch_cap = 10;
    cfg.eval_cap = 40;
    cfg.dane.sgd_steps = 2;
    cfg.compressor = comp;
    harness::Experiment exp(cfg);
    auto strat = harness::make_strategy("fedavg", cfg);
    return exp.run(*strat).trace.total_time();
  };
  // topk1 uploads ~1% of coordinates: far below the constant s payload.
  EXPECT_LT(run_time("topk1"), run_time("none"));
}

}  // namespace
}  // namespace fedl::compress
