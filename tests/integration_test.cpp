// Integration tests across the whole stack: Experiment + every strategy,
// budget/feasibility invariants, determinism, and failure injection
// (low availability, tiny budgets, n_min larger than availability).
#include <gtest/gtest.h>

#include <cstdio>

#include "common/logging.h"
#include "harness/experiment.h"

namespace fedl::harness {
namespace {

class QuietLogs : public ::testing::Environment {
 public:
  void SetUp() override { set_log_level(LogLevel::kWarn); }
};
const auto* const kQuiet =
    ::testing::AddGlobalTestEnvironment(new QuietLogs);

ScenarioConfig tiny_scenario(std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.num_clients = 8;
  cfg.n_min = 3;
  cfg.budget = 120.0;
  cfg.max_epochs = 6;
  cfg.train_samples = 240;
  cfg.test_samples = 80;
  cfg.width_scale = 0.05;
  cfg.batch_cap = 12;
  cfg.eval_cap = 64;
  cfg.dane.sgd_steps = 2;
  cfg.seed = seed;
  return cfg;
}

class AllStrategies : public ::testing::TestWithParam<std::string> {};

TEST_P(AllStrategies, RunsAndRespectsInvariants) {
  const ScenarioConfig cfg = tiny_scenario();
  Experiment exp(cfg);
  auto strat = make_strategy(GetParam(), cfg);
  const RunResult res = exp.run(*strat);

  EXPECT_GT(res.epochs_run, 0u);
  ASSERT_FALSE(res.trace.records.empty());

  double prev_time = 0.0, prev_cost = 0.0;
  std::size_t prev_round = 0;
  for (const auto& r : res.trace.records) {
    // Series are cumulative and monotone.
    EXPECT_GE(r.sim_time_s, prev_time);
    EXPECT_GE(r.cost_spent, prev_cost);
    EXPECT_GE(r.round, prev_round);
    prev_time = r.sim_time_s;
    prev_cost = r.cost_spent;
    prev_round = r.round;
    EXPECT_GE(r.test_accuracy, 0.0);
    EXPECT_LE(r.test_accuracy, 1.0);
    EXPECT_GE(r.eta, 0.0);
    EXPECT_LT(r.eta, 1.0);
  }
  // The budget is never pre-charged past remaining: each epoch's spend was
  // affordable when committed, so cost can exceed C only by the last epoch.
  EXPECT_LE(res.trace.total_cost(), cfg.budget + 12.0 * cfg.num_clients);
}

INSTANTIATE_TEST_SUITE_P(Roster, AllStrategies,
                         ::testing::Values("fedl", "fedavg", "fedcs", "powd",
                                           "oracle", "fedl-ind"));

TEST(Integration, DeterministicTraces) {
  const ScenarioConfig cfg = tiny_scenario(7);
  Experiment exp(cfg);
  auto s1 = make_strategy("fedl", cfg);
  auto s2 = make_strategy("fedl", cfg);
  const auto r1 = exp.run(*s1);
  const auto r2 = exp.run(*s2);
  ASSERT_EQ(r1.trace.records.size(), r2.trace.records.size());
  for (std::size_t i = 0; i < r1.trace.records.size(); ++i) {
    EXPECT_EQ(r1.trace.records[i].test_accuracy,
              r2.trace.records[i].test_accuracy);
    EXPECT_EQ(r1.trace.records[i].cost_spent, r2.trace.records[i].cost_spent);
    EXPECT_EQ(r1.trace.records[i].num_selected,
              r2.trace.records[i].num_selected);
  }
}

TEST(Integration, TrainingImprovesAccuracyOverInitial) {
  ScenarioConfig cfg = tiny_scenario(3);
  cfg.max_epochs = 10;
  cfg.budget = 400.0;
  Experiment exp(cfg);
  auto strat = make_strategy("fedavg", cfg);
  const auto res = exp.run(*strat);
  // 10-class task starts near 0.1; a few epochs of the tiny test model must
  // beat chance clearly.
  EXPECT_GT(res.trace.final_accuracy(), 0.14);
}

TEST(Integration, BudgetExhaustionStopsTheRun) {
  ScenarioConfig cfg = tiny_scenario(5);
  cfg.budget = 25.0;  // a couple of epochs at most
  cfg.max_epochs = 50;
  Experiment exp(cfg);
  auto strat = make_strategy("fedavg", cfg);
  const auto res = exp.run(*strat);
  EXPECT_TRUE(res.budget_exhausted);
  EXPECT_LT(res.epochs_run, 50u);
}

TEST(Integration, LowAvailabilityStillRuns) {
  ScenarioConfig cfg = tiny_scenario(9);
  cfg.availability = 0.25;
  cfg.n_min = 2;
  Experiment exp(cfg);
  for (const std::string name : {"fedl", "fedavg"}) {
    auto strat = make_strategy(name, cfg);
    const auto res = exp.run(*strat);
    EXPECT_GT(res.epochs_run, 0u) << name;
  }
}

TEST(Integration, NMinAboveAvailabilityDegradesGracefully) {
  ScenarioConfig cfg = tiny_scenario(11);
  cfg.num_clients = 6;
  cfg.n_min = 6;           // equals fleet size
  cfg.availability = 0.5;  // usually fewer than 6 available
  Experiment exp(cfg);
  auto strat = make_strategy("fedl", cfg);
  const auto res = exp.run(*strat);
  EXPECT_GT(res.epochs_run, 0u);
  for (const auto& r : res.trace.records)
    EXPECT_LE(r.num_selected, 6u);
}

TEST(Integration, CifarTaskBuildsAndRuns) {
  ScenarioConfig cfg = tiny_scenario(13);
  cfg.task = Task::kCifarLike;
  cfg.max_epochs = 3;
  Experiment exp(cfg);
  EXPECT_TRUE((exp.train().sample_shape() == Shape{3, 32, 32}));
  auto strat = make_strategy("fedl", cfg);
  const auto res = exp.run(*strat);
  EXPECT_GT(res.epochs_run, 0u);
}

TEST(Integration, NonIidPartitionRuns) {
  ScenarioConfig cfg = tiny_scenario(15);
  cfg.iid = false;
  Experiment exp(cfg);
  auto strat = make_strategy("fedl", cfg);
  const auto res = exp.run(*strat);
  EXPECT_GT(res.epochs_run, 0u);
}

TEST(Integration, RegretAndFitAreFinite) {
  const ScenarioConfig cfg = tiny_scenario(17);
  Experiment exp(cfg);
  auto strat = make_strategy("fedl", cfg);
  const auto res = exp.run(*strat);
  EXPECT_TRUE(std::isfinite(res.regret.regret()));
  EXPECT_TRUE(std::isfinite(res.regret.fit()));
  EXPECT_GE(res.regret.online_objective(), 0.0);
  EXPECT_GE(res.regret.offline_objective(), 0.0);
  // Online cannot beat the 1-lookahead per-epoch optimum by construction.
  EXPECT_GE(res.regret.regret(), -1e-6);
}

TEST(Integration, UnknownStrategyThrows) {
  const ScenarioConfig cfg = tiny_scenario();
  EXPECT_THROW(make_strategy("nope", cfg), ConfigError);
}

TEST(Integration, NMinLargerThanFleetRejected) {
  ScenarioConfig cfg = tiny_scenario();
  cfg.num_clients = 3;
  cfg.n_min = 5;
  EXPECT_THROW(Experiment{cfg}, CheckError);
}

TEST(Trace, DerivedMetricsBehave) {
  fl::TrainTrace t;
  t.algorithm = "x";
  for (std::size_t i = 1; i <= 5; ++i) {
    fl::TraceRecord r;
    r.epoch = i;
    r.round = 2 * i;
    r.sim_time_s = 10.0 * static_cast<double>(i);
    r.test_accuracy = 0.1 * static_cast<double>(i);
    t.records.push_back(r);
  }
  EXPECT_DOUBLE_EQ(t.time_to_accuracy(0.3), 30.0);
  EXPECT_TRUE(std::isinf(t.time_to_accuracy(0.9)));
  EXPECT_DOUBLE_EQ(t.rounds_to_accuracy(0.2), 4.0);
  EXPECT_DOUBLE_EQ(t.accuracy_at_time(35.0), 0.3);
  EXPECT_DOUBLE_EQ(t.accuracy_at_time(5.0), 0.0);
  EXPECT_DOUBLE_EQ(t.accuracy_at_round(6), 0.3);
  EXPECT_DOUBLE_EQ(t.final_accuracy(), 0.5);
}

TEST(Trace, CheckedQueriesDistinguishEmptyFromZeroAccuracy) {
  fl::TrainTrace t;
  t.algorithm = "x";
  fl::TraceRecord r;
  r.round = 4;
  r.sim_time_s = 10.0;
  r.test_accuracy = 0.0;  // a measured zero, not a sentinel
  t.records.push_back(r);

  // Probe before the first record: the bare accessor returns 0.0 either way,
  // the checked one exposes that nothing qualified.
  const auto before = t.accuracy_at_time_checked(5.0);
  EXPECT_EQ(before.num_records, 0u);
  EXPECT_DOUBLE_EQ(before.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(t.accuracy_at_time(5.0), before.accuracy);

  // Probe exactly at the first record's time: inclusive boundary.
  const auto at = t.accuracy_at_time_checked(10.0);
  EXPECT_EQ(at.num_records, 1u);
  EXPECT_DOUBLE_EQ(at.accuracy, 0.0);

  const auto round_before = t.accuracy_at_round_checked(3);
  EXPECT_EQ(round_before.num_records, 0u);
  const auto round_at = t.accuracy_at_round_checked(4);  // inclusive boundary
  EXPECT_EQ(round_at.num_records, 1u);
}

TEST(Trace, CheckedQueryAtExactRecordedAccuracyBoundary) {
  fl::TrainTrace t;
  for (std::size_t i = 1; i <= 3; ++i) {
    fl::TraceRecord r;
    r.round = i;
    r.sim_time_s = static_cast<double>(i);
    r.test_accuracy = 0.1 * static_cast<double>(i);
    t.records.push_back(r);
  }
  // time_to_accuracy with a target exactly equal to a recorded accuracy must
  // stop at that record (>= comparison), matching the checked count.
  EXPECT_DOUBLE_EQ(t.time_to_accuracy(0.2), 2.0);
  const auto q = t.accuracy_at_time_checked(2.0);
  EXPECT_EQ(q.num_records, 2u);
  EXPECT_DOUBLE_EQ(q.accuracy, 0.2);
}

TEST(Integration, CheckpointResumeContinuesFromSavedModel) {
  ScenarioConfig cfg = tiny_scenario(21);
  cfg.checkpoint_path =
      std::string(::testing::TempDir()) + "/fedl_run_ckpt.bin";
  std::remove(cfg.checkpoint_path.c_str());

  Experiment exp(cfg);
  auto s1 = make_strategy("fedavg", cfg);
  const auto first = exp.run(*s1);

  // Second run resumes from the checkpoint: its starting accuracy should be
  // at least in the neighbourhood of the first run's final accuracy rather
  // than chance level.
  auto s2 = make_strategy("fedavg", cfg);
  const auto second = exp.run(*s2);
  ASSERT_FALSE(second.trace.records.empty());
  EXPECT_GE(second.trace.records.front().test_accuracy,
            first.trace.final_accuracy() - 0.1);
  std::remove(cfg.checkpoint_path.c_str());
}

}  // namespace
}  // namespace fedl::harness
