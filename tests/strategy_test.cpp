// Tests for the selection strategies: the paper's baselines (FedAvg, FedCS,
// Pow-d), the greedy oracle, and FedL's rounding + feasibility repair.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/baselines.h"
#include "core/fedl_strategy.h"

namespace fedl::core {
namespace {

sim::EpochContext make_ctx(std::size_t k, double cost_step = 1.0) {
  sim::EpochContext ctx;
  ctx.epoch = 1;
  for (std::size_t i = 0; i < k; ++i) {
    sim::ClientObservation o;
    o.id = i;
    o.cost = 0.5 + cost_step * static_cast<double>(i);
    o.data_size = 10 + i;
    o.tau_loc = 0.2 + 0.1 * static_cast<double>(i);
    o.tau_cm_est = 0.1;
    ctx.available.push_back(o);
  }
  return ctx;
}

bool all_available(const Decision& d, const sim::EpochContext& ctx) {
  return std::all_of(d.selected.begin(), d.selected.end(),
                     [&](std::size_t id) { return ctx.is_available(id); });
}

double decision_cost(const Decision& d, const sim::EpochContext& ctx) {
  double c = 0.0;
  for (std::size_t id : d.selected) c += ctx.find(id)->cost;
  return c;
}

BaselineConfig base_cfg() {
  BaselineConfig cfg;
  cfg.n_select = 3;
  cfg.iterations = 2;
  return cfg;
}

// --- FedAvg ------------------------------------------------------------------

TEST(FedAvg, SelectsRequestedCountWhenAffordable) {
  FedAvgStrategy s(base_cfg());
  BudgetLedger budget(1000.0);
  const auto ctx = make_ctx(10);
  const auto d = s.decide(ctx, budget);
  EXPECT_EQ(d.selected.size(), 3u);
  EXPECT_EQ(d.num_iterations, 2u);
  EXPECT_TRUE(all_available(d, ctx));
  // No duplicates.
  std::set<std::size_t> uniq(d.selected.begin(), d.selected.end());
  EXPECT_EQ(uniq.size(), d.selected.size());
}

TEST(FedAvg, SelectionIsRandomAcrossEpochs) {
  FedAvgStrategy s(base_cfg());
  BudgetLedger budget(1000.0);
  const auto ctx = make_ctx(12);
  std::set<std::vector<std::size_t>> seen;
  for (int t = 0; t < 20; ++t) seen.insert(s.decide(ctx, budget).selected);
  EXPECT_GT(seen.size(), 3u);
}

TEST(FedAvg, RespectsBudget) {
  FedAvgStrategy s(base_cfg());
  BudgetLedger tiny(1.2);
  const auto ctx = make_ctx(10);
  for (int t = 0; t < 20; ++t) {
    const auto d = s.decide(ctx, tiny);
    EXPECT_LE(decision_cost(d, ctx), tiny.remaining() + 1e-9);
  }
}

TEST(FedAvg, FewerAvailableThanRequested) {
  FedAvgStrategy s(base_cfg());
  BudgetLedger budget(100.0);
  const auto ctx = make_ctx(2);
  const auto d = s.decide(ctx, budget);
  EXPECT_EQ(d.selected.size(), 2u);
}

TEST(FedAvg, EmptyContext) {
  FedAvgStrategy s(base_cfg());
  BudgetLedger budget(100.0);
  sim::EpochContext ctx;
  EXPECT_TRUE(s.decide(ctx, budget).selected.empty());
}

// --- FedCS -------------------------------------------------------------------

TEST(FedCs, AdmitsOnlyClientsWithinDeadline) {
  FedCsConfig cfg;
  cfg.base = base_cfg();
  cfg.deadline_s = 2 * 0.45;  // admits taus <= 0.45: clients 0 and 1
  FedCsStrategy s(cfg);
  BudgetLedger budget(1000.0);
  const auto ctx = make_ctx(10);
  const auto d = s.decide(ctx, budget);
  for (std::size_t id : d.selected) {
    const auto* obs = ctx.find(id);
    EXPECT_LE(cfg.base.iterations * (obs->tau_loc + obs->tau_cm_est),
              cfg.deadline_s + 1e-9);
  }
  EXPECT_FALSE(d.selected.empty());
}

TEST(FedCs, GenerousDeadlineAdmitsManyUnderCap) {
  FedCsConfig cfg;
  cfg.base = base_cfg();
  cfg.base.pacing = 100.0;  // effectively uncapped
  cfg.deadline_s = 1e6;
  FedCsStrategy s(cfg);
  BudgetLedger budget(1e6);
  const auto ctx = make_ctx(8);
  const auto d = s.decide(ctx, budget);
  EXPECT_EQ(d.selected.size(), 8u);  // "as many clients as possible"
}

TEST(FedCs, TightDeadlineStillPicksFastestAffordable) {
  FedCsConfig cfg;
  cfg.base = base_cfg();
  cfg.deadline_s = 1e-6;  // nobody fits
  FedCsStrategy s(cfg);
  BudgetLedger budget(1000.0);
  const auto ctx = make_ctx(5);
  const auto d = s.decide(ctx, budget);
  ASSERT_EQ(d.selected.size(), 1u);
  EXPECT_EQ(d.selected[0], 0u);  // the fastest
}

// --- Pow-d -------------------------------------------------------------------

TEST(PowD, PrefersHighLossClients) {
  PowDConfig cfg;
  cfg.base = base_cfg();
  cfg.base.n_select = 2;
  cfg.d = 8;
  PowDStrategy s(8, cfg);
  BudgetLedger budget(1000.0);
  const auto ctx = make_ctx(8);

  // Teach the strategy that clients 6 and 7 have low loss.
  Decision dec;
  dec.selected = {6, 7};
  fl::EpochOutcome out;
  out.selected = {6, 7};
  out.client_loss_reduction = {0.1, 0.1};
  out.train_loss_selected = 0.01;
  out.train_loss_all = 2.0;
  s.observe(ctx, dec, out);

  // With d = all clients, the low-loss pair must not be chosen.
  const auto d = s.decide(ctx, budget);
  for (std::size_t id : d.selected) {
    EXPECT_NE(id, 6u);
    EXPECT_NE(id, 7u);
  }
}

TEST(PowD, SelectsAtMostN) {
  PowDConfig cfg;
  cfg.base = base_cfg();
  cfg.d = 5;
  PowDStrategy s(10, cfg);
  BudgetLedger budget(1000.0);
  const auto d = s.decide(make_ctx(10), budget);
  EXPECT_LE(d.selected.size(), cfg.base.n_select);
  EXPECT_GE(d.selected.size(), 1u);
}

TEST(PowD, RequiresDGreaterEqualN) {
  PowDConfig cfg;
  cfg.base = base_cfg();
  cfg.base.n_select = 5;
  cfg.d = 3;
  EXPECT_THROW(PowDStrategy(10, cfg), CheckError);
}

// --- oracle ------------------------------------------------------------------

TEST(Oracle, PicksFastestAtRhoOne) {
  GreedyOracleStrategy s(base_cfg());
  BudgetLedger budget(1000.0);
  const auto d = s.decide(make_ctx(10), budget);
  EXPECT_EQ(d.num_iterations, 1u);
  ASSERT_EQ(d.selected.size(), 3u);
  EXPECT_EQ(d.selected, (std::vector<std::size_t>{0, 1, 2}));
}

// --- FedL strategy ------------------------------------------------------------------

FedLConfig fedl_cfg() {
  FedLConfig cfg;
  cfg.learner.n_min = 3;
  cfg.learner.theta = 0.5;
  cfg.l_max = 6;
  return cfg;
}

TEST(FedL, DecisionIsFeasible) {
  FedLStrategy s(10, fedl_cfg());
  BudgetLedger budget(500.0);
  const auto ctx = make_ctx(10);
  for (int t = 0; t < 10; ++t) {
    const auto d = s.decide(ctx, budget);
    EXPECT_TRUE(all_available(d, ctx));
    EXPECT_GE(d.selected.size(), 3u);  // n_min repair
    EXPECT_LE(decision_cost(d, ctx), budget.remaining() + 1e-9);
    EXPECT_GE(d.num_iterations, 1u);
    EXPECT_LE(d.num_iterations, 6u);
    std::set<std::size_t> uniq(d.selected.begin(), d.selected.end());
    EXPECT_EQ(uniq.size(), d.selected.size());
  }
}

TEST(FedL, TinyBudgetNeverOverspends) {
  FedLStrategy s(10, fedl_cfg());
  BudgetLedger tiny(1.0);  // cheapest client costs 0.5
  const auto ctx = make_ctx(10);
  for (int t = 0; t < 10; ++t) {
    const auto d = s.decide(ctx, tiny);
    EXPECT_LE(decision_cost(d, ctx), tiny.remaining() + 1e-9);
  }
}

TEST(FedL, ObserveBeforeDecideIsSafe) {
  FedLStrategy s(5, fedl_cfg());
  sim::EpochContext ctx = make_ctx(5);
  fl::EpochOutcome out;
  EXPECT_NO_THROW(s.observe(ctx, Decision{}, out));  // no fraction yet
}

TEST(FedL, LearnsToAvoidSlowClients) {
  // Feed epochs where client latency differences dominate; FedL should end
  // up preferring the fast half.
  FedLConfig cfg = fedl_cfg();
  cfg.learner.n_min = 2;
  FedLStrategy s(6, cfg);
  BudgetLedger budget(10000.0);
  sim::EpochContext ctx;
  ctx.epoch = 1;
  for (std::size_t i = 0; i < 6; ++i) {
    sim::ClientObservation o;
    o.id = i;
    o.cost = 1.0;
    o.data_size = 20;
    o.tau_loc = (i < 3) ? 0.1 : 3.0;  // clients 0–2 fast, 3–5 slow
    o.tau_cm_est = 0.05;
    ctx.available.push_back(o);
  }
  for (int t = 0; t < 25; ++t) {
    const auto d = s.decide(ctx, budget);
    fl::EpochOutcome out;
    out.selected = d.selected;
    out.num_iterations = d.num_iterations;
    out.client_eta.assign(d.selected.size(), 0.5);
    out.client_loss_reduction.assign(d.selected.size(), 0.05);
    out.train_loss_all = 0.4;  // satisfied: latency pressure dominates
    s.observe(ctx, d, out);
  }
  const auto& learner = s.learner();
  const double fast_mass = learner.x_fraction(0) + learner.x_fraction(1) +
                           learner.x_fraction(2);
  const double slow_mass = learner.x_fraction(3) + learner.x_fraction(4) +
                           learner.x_fraction(5);
  EXPECT_GT(fast_mass, slow_mass);
}

TEST(FedL, IndependentRoundingVariantRuns) {
  FedLConfig cfg = fedl_cfg();
  cfg.independent_rounding = true;
  FedLStrategy s(8, cfg);
  BudgetLedger budget(500.0);
  const auto d = s.decide(make_ctx(8), budget);
  EXPECT_GE(d.selected.size(), 3u);
}

TEST(PerEpochCap, ScalesWithMeanCostAndBudget) {
  const auto ctx = make_ctx(4);  // costs 0.5, 1.5, 2.5, 3.5; mean 2
  BudgetLedger big(1000.0);
  EXPECT_NEAR(per_epoch_cap(ctx, big, 3, 1.5), 1.5 * 3 * 2.0, 1e-9);
  BudgetLedger small(4.0);
  EXPECT_NEAR(per_epoch_cap(ctx, small, 3, 1.5), 4.0, 1e-9);
}

}  // namespace
}  // namespace fedl::core
