// Tests for the FL engine: the DANE local solver's descent and η estimate,
// aggregation rules, latency/cost accounting, and the epoch loop.
#include <gtest/gtest.h>

#include <cmath>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/dane.h"
#include "fl/engine.h"
#include "nn/factory.h"

namespace fedl::fl {
namespace {

nn::Batch two_blob_batch(std::size_t n, std::size_t dim, Rng& rng) {
  nn::Batch b;
  b.x = Tensor(Shape{n, dim});
  b.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = i % 2;
    b.y[i] = static_cast<std::uint8_t>(cls);
    for (std::size_t d = 0; d < dim; ++d)
      b.x.at(i, d) = static_cast<float>(rng.normal(cls ? 1.5 : -1.5, 0.7));
  }
  return b;
}

// --- DANE local solver ----------------------------------------------------------

TEST(Dane, SurrogateDecreasesAndEtaInRange) {
  Rng rng(1);
  nn::Model model = nn::make_logistic(4, 2, 1e-3, rng);
  nn::Batch batch = two_blob_batch(40, 4, rng);
  LocalOracle oracle(&model, &batch);
  const nn::ParamVec w = model.params_flat();

  DaneConfig cfg;
  cfg.sgd_steps = 20;
  cfg.sgd_step = 0.2;
  const LocalUpdate upd = dane_local_step(oracle, w, {}, cfg);
  EXPECT_LT(upd.surrogate_final, upd.surrogate_initial);
  EXPECT_GE(upd.eta, 0.0);
  EXPECT_LT(upd.eta, 1.0);
  EXPECT_EQ(upd.d.size(), w.size());
  EXPECT_LT(upd.loss_after, upd.loss_before);
}

TEST(Dane, MoreStepsGiveSmallerEta) {
  // η estimates the *remaining* suboptimality fraction: more SGD steps must
  // not increase it (on a convex problem).
  Rng rng(2);
  nn::Model model = nn::make_logistic(4, 2, 1e-2, rng);
  nn::Batch batch = two_blob_batch(40, 4, rng);
  LocalOracle oracle(&model, &batch);
  const nn::ParamVec w = model.params_flat();

  DaneConfig few;
  few.sgd_steps = 2;
  few.sgd_step = 0.1;
  DaneConfig many = few;
  many.sgd_steps = 40;
  const double eta_few = dane_local_step(oracle, w, {}, few).eta;
  const double eta_many = dane_local_step(oracle, w, {}, many).eta;
  EXPECT_LT(eta_many, eta_few + 0.05);
}

TEST(Dane, GlobalGradientAnchorsDirection) {
  // With σ1 large and ḡ pointing somewhere specific, d should correlate with
  // −ḡ (the surrogate's gradient at d=0 is σ2·ḡ).
  Rng rng(3);
  nn::Model model = nn::make_logistic(3, 2, 0.0, rng);
  nn::Batch batch = two_blob_batch(20, 3, rng);
  LocalOracle oracle(&model, &batch);
  const nn::ParamVec w = model.params_flat();

  nn::ParamVec gbar(w.size());
  for (std::size_t i = 0; i < gbar.size(); ++i)
    gbar[i] = (i % 2 == 0) ? 1.0f : -1.0f;

  DaneConfig cfg;
  cfg.sigma1 = 10.0;  // keep d small so the local term doesn't dominate
  cfg.sigma2 = 1.0;
  cfg.sgd_steps = 10;
  cfg.sgd_step = 0.02;
  const LocalUpdate upd = dane_local_step(oracle, w, gbar, cfg);
  double dot_val = 0.0;
  for (std::size_t i = 0; i < upd.d.size(); ++i)
    dot_val += static_cast<double>(upd.d[i]) * gbar[i];
  EXPECT_LT(dot_val, 0.0);  // moved against the broadcast gradient
}

TEST(Dane, OracleValidatesDimensions) {
  Rng rng(4);
  nn::Model model = nn::make_logistic(3, 2, 0.0, rng);
  nn::Batch batch = two_blob_batch(10, 3, rng);
  LocalOracle oracle(&model, &batch);
  nn::ParamVec bad(model.num_params() + 1);
  EXPECT_THROW(oracle.loss_grad(bad, nullptr), CheckError);
}

// --- engine ----------------------------------------------------------------------

struct EngineFixture {
  EngineFixture(std::size_t clients, std::uint64_t seed,
                AggregationRule rule = AggregationRule::kSelectedMean) {
    data = std::make_unique<data::TrainTest>(data::make_synthetic_train_test(
        data::fmnist_like_spec(400, seed), 120));
    Rng prng(seed);
    auto part = data::partition_iid(data->train, clients, prng);
    sim::EnvironmentSpec es;
    es.num_clients = clients;
    es.device.seed = seed + 1;
    es.device.availability_prob = 1.0;  // deterministic availability
    es.channel.seed = seed + 2;
    es.online.seed = seed + 3;
    env = std::make_unique<sim::EdgeEnvironment>(es, part);

    Rng mrng(seed + 4);
    nn::ModelSpec ms;
    ms.width_scale = 0.05;
    nn::Model model = nn::make_fmnist_cnn(ms, mrng);
    EngineConfig ec;
    ec.aggregation = rule;
    ec.batch_cap = 16;
    ec.eval_cap = 80;
    ec.dane.sgd_steps = 3;
    ec.seed = seed + 5;
    engine = std::make_unique<FlEngine>(&data->train, &data->test, env.get(),
                                        std::move(model), ec);
  }

  std::unique_ptr<data::TrainTest> data;
  std::unique_ptr<sim::EdgeEnvironment> env;
  std::unique_ptr<FlEngine> engine;
};

TEST(Engine, EpochOutcomeBookkeeping) {
  EngineFixture f(6, 11);
  const auto& ctx = f.env->advance_epoch();
  ASSERT_GE(ctx.available.size(), 3u);
  std::vector<std::size_t> sel = {ctx.available[0].id, ctx.available[1].id,
                                  ctx.available[2].id};
  const EpochOutcome out = f.engine->run_epoch(sel, 2);

  EXPECT_EQ(out.selected, sel);
  EXPECT_EQ(out.num_iterations, 2u);
  EXPECT_EQ(out.client_eta.size(), 3u);
  EXPECT_EQ(out.client_latency_s.size(), 3u);

  // Cost = sum of the selected clients' posted costs.
  double cost = 0.0;
  for (std::size_t id : sel) cost += ctx.find(id)->cost;
  EXPECT_NEAR(out.cost, cost, 1e-9);

  // Epoch latency = max over clients; each = l·(τ^loc + τ^cm realized).
  double max_lat = 0.0;
  for (std::size_t i = 0; i < sel.size(); ++i) {
    const double expect = 2.0 * (ctx.find(sel[i])->tau_loc +
                                 f.env->realized_tau_cm(sel[i], 3));
    EXPECT_NEAR(out.client_latency_s[i], expect, 1e-9);
    max_lat = std::max(max_lat, expect);
  }
  EXPECT_NEAR(out.latency_s, max_lat, 1e-9);

  for (double eta : out.client_eta) {
    EXPECT_GE(eta, 0.0);
    EXPECT_LT(eta, 1.0);
  }
  EXPECT_GT(out.test_accuracy, 0.0);
}

TEST(Engine, EmptySelectionIsEvaluatedNoop) {
  EngineFixture f(4, 13);
  f.env->advance_epoch();
  const nn::ParamVec before = f.engine->global_params();
  const EpochOutcome out = f.engine->run_epoch({}, 5);
  EXPECT_EQ(out.num_iterations, 0u);
  EXPECT_EQ(out.latency_s, 0.0);
  EXPECT_EQ(out.cost, 0.0);
  EXPECT_EQ(f.engine->global_params(), before);
  EXPECT_GT(out.test_loss, 0.0);  // evaluation still happened
}

TEST(Engine, SelectingUnavailableClientThrows) {
  EngineFixture f(4, 17);
  f.env->advance_epoch();
  EXPECT_THROW(f.engine->run_epoch({99}, 1), CheckError);
}

TEST(Engine, TrainingReducesGlobalLoss) {
  EngineFixture f(5, 19);
  double first_loss = 0.0, last_loss = 0.0;
  for (int t = 0; t < 6; ++t) {
    const auto& ctx = f.env->advance_epoch();
    std::vector<std::size_t> sel;
    for (const auto& o : ctx.available) sel.push_back(o.id);
    const auto out = f.engine->run_epoch(sel, 2);
    if (t == 0) first_loss = out.train_loss_all;
    last_loss = out.train_loss_all;
  }
  EXPECT_LT(last_loss, first_loss);
}

TEST(Engine, PaperAggregationShrinksUpdateVsSelectedMean) {
  // With 2 of 6 clients selected, the paper rule divides by |E_t| = 6 while
  // selected-mean divides by 2: the paper-rule step must be smaller.
  EngineFixture paper(6, 23, AggregationRule::kPaperMean);
  EngineFixture mean(6, 23, AggregationRule::kSelectedMean);

  const auto& ctx_p = paper.env->advance_epoch();
  const auto& ctx_m = mean.env->advance_epoch();
  ASSERT_GE(ctx_p.available.size(), 2u);
  std::vector<std::size_t> sel = {ctx_p.available[0].id,
                                  ctx_p.available[1].id};
  ASSERT_TRUE(ctx_m.is_available(sel[0]) && ctx_m.is_available(sel[1]));

  const nn::ParamVec w0 = paper.engine->global_params();
  paper.engine->run_epoch(sel, 1);
  mean.engine->run_epoch(sel, 1);

  const double move_paper =
      vnorm(vsub(paper.engine->global_params(), w0));
  const double move_mean = vnorm(vsub(mean.engine->global_params(), w0));
  EXPECT_LT(move_paper, move_mean);
  EXPECT_GT(move_paper, 0.0);
}

TEST(Engine, SetGlobalParamsRoundTrip) {
  EngineFixture f(3, 29);
  nn::ParamVec w = f.engine->global_params();
  for (auto& v : w) v += 0.5f;
  f.engine->set_global_params(w);
  EXPECT_EQ(f.engine->global_params(), w);
  EXPECT_THROW(f.engine->set_global_params(nn::ParamVec(w.size() - 1)),
               CheckError);
}

TEST(Engine, DeterministicGivenSeeds) {
  auto run = [] {
    EngineFixture f(4, 31);
    const auto& ctx = f.env->advance_epoch();
    std::vector<std::size_t> sel;
    for (const auto& o : ctx.available) sel.push_back(o.id);
    return f.engine->run_epoch(sel, 2).train_loss_all;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace fedl::fl
