// Determinism tests for the parallel FL engine: run_epoch with any
// num_threads must produce bit-identical EpochOutcomes and global parameters
// to the serial path (the per-client fan-out only changes wall-clock, never
// numbers), including under mid-epoch faults and update compression.
//
// Tolerance rationale: these comparisons are exact (==, not near) on
// purpose, and stay valid across the SIMD GEMM kernels. Bit-identity holds
// because every float-ordering decision is independent of the thread count:
// the GEMM kernel is selected once per process (so serial and parallel runs
// use the same code path), its packing/k-walk order is fixed per shape, the
// conv dW reduction splits the batch into fixed-size blocks summed in block
// order on one thread, and the engine folds per-client results serially in
// client order. What is NOT bit-stable is cross-kernel agreement
// (avx2 vs portable vs gemm_naive differ by FMA/association rounding) —
// that contract is relative-error bounded and lives in gemm_parity_test.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/engine.h"
#include "nn/factory.h"
#include "obs/metrics.h"
#include "parallel/scheduler.h"

namespace fedl::fl {
namespace {

struct World {
  World(std::size_t clients, std::uint64_t seed, EngineConfig ec) {
    // The engine draws its fan-out workers from the process-wide Scheduler.
    // Pin the budget to the largest thread count these tests request so the
    // parallel paths run (and TSan sees them) even on a single-core box.
    Scheduler::instance().configure(8, 1);
    data = std::make_unique<data::TrainTest>(data::make_synthetic_train_test(
        data::fmnist_like_spec(400, seed), 100));
    Rng prng(seed);
    auto part = data::partition_iid(data->train, clients, prng);
    sim::EnvironmentSpec es;
    es.num_clients = clients;
    es.device.seed = seed + 1;
    es.device.availability_prob = 1.0;
    es.channel.seed = seed + 2;
    es.online.seed = seed + 3;
    env = std::make_unique<sim::EdgeEnvironment>(es, part);

    Rng mrng(seed + 4);
    nn::ModelSpec ms;
    ms.width_scale = 0.05;
    ec.batch_cap = 16;
    ec.eval_cap = 64;
    ec.seed = seed + 5;
    engine = std::make_unique<FlEngine>(&data->train, &data->test, env.get(),
                                        nn::make_fmnist_cnn(ms, mrng), ec);
  }

  std::unique_ptr<data::TrainTest> data;
  std::unique_ptr<sim::EdgeEnvironment> env;
  std::unique_ptr<FlEngine> engine;
};

struct Trajectory {
  std::vector<EpochOutcome> outcomes;
  nn::ParamVec final_params;
};

// Runs `epochs` full-participation epochs of `iters` DANE iterations.
Trajectory run_trajectory(std::size_t clients, std::uint64_t seed,
                          EngineConfig ec, std::size_t epochs,
                          std::size_t iters) {
  World w(clients, seed, ec);
  Trajectory t;
  for (std::size_t e = 0; e < epochs; ++e) {
    const auto& ctx = w.env->advance_epoch();
    std::vector<std::size_t> sel;
    for (const auto& o : ctx.available) sel.push_back(o.id);
    t.outcomes.push_back(w.engine->run_epoch(sel, iters));
  }
  t.final_params = w.engine->global_params();
  return t;
}

void expect_identical(const Trajectory& a, const Trajectory& b,
                      std::size_t threads) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t e = 0; e < a.outcomes.size(); ++e) {
    const EpochOutcome& x = a.outcomes[e];
    const EpochOutcome& y = b.outcomes[e];
    SCOPED_TRACE("threads=" + std::to_string(threads) + " epoch=" +
                 std::to_string(e));
    EXPECT_EQ(x.selected, y.selected);
    EXPECT_EQ(x.num_iterations, y.num_iterations);
    EXPECT_EQ(x.latency_s, y.latency_s);
    EXPECT_EQ(x.cost, y.cost);
    EXPECT_EQ(x.eta_max, y.eta_max);
    EXPECT_EQ(x.client_eta, y.client_eta);
    EXPECT_EQ(x.client_loss_reduction, y.client_loss_reduction);
    EXPECT_EQ(x.client_latency_s, y.client_latency_s);
    EXPECT_EQ(x.client_completed_iters, y.client_completed_iters);
    EXPECT_EQ(x.train_loss_selected, y.train_loss_selected);
    EXPECT_EQ(x.train_loss_all, y.train_loss_all);
    EXPECT_EQ(x.test_loss, y.test_loss);
    EXPECT_EQ(x.test_accuracy, y.test_accuracy);
    EXPECT_EQ(x.num_dropped, y.num_dropped);
  }
  EXPECT_EQ(a.final_params, b.final_params);  // bit-identical weights
}

TEST(EngineParallel, GoldenTrajectoryMatchesSerialAtAnyThreadCount) {
  EngineConfig ec;
  ec.dane.sgd_steps = 2;
  ec.num_threads = 1;
  const Trajectory serial = run_trajectory(8, 211, ec, 3, 2);
  for (std::size_t threads : {2u, 4u, 8u}) {
    EngineConfig pc = ec;
    pc.num_threads = threads;
    expect_identical(serial, run_trajectory(8, 211, pc, 3, 2), threads);
  }
}

TEST(EngineParallel, FaultsInteractDeterministicallyWithParallelism) {
  // Fault draws happen on the calling thread before the fan-out, so dropouts
  // (and the partial aggregation they induce) are identical at any thread
  // count.
  EngineConfig ec;
  ec.dane.sgd_steps = 2;
  ec.faults.dropout_prob = 0.4;
  ec.num_threads = 1;
  const Trajectory serial = run_trajectory(6, 223, ec, 3, 4);
  std::size_t dropped = 0;
  for (const auto& out : serial.outcomes) dropped += out.num_dropped;
  ASSERT_GT(dropped, 0u) << "fixture must actually exercise dropouts";
  for (std::size_t threads : {2u, 4u, 8u}) {
    EngineConfig pc = ec;
    pc.num_threads = threads;
    expect_identical(serial, run_trajectory(6, 223, pc, 3, 4), threads);
  }
}

TEST(EngineParallel, CompressedUplinksStayDeterministic) {
  // Stochastic quantization draws from per-client RNG streams, so compressed
  // payloads are independent of processing order and concurrency.
  EngineConfig ec;
  ec.dane.sgd_steps = 2;
  ec.compressor = "quant8";
  ec.num_threads = 1;
  const Trajectory serial = run_trajectory(6, 227, ec, 2, 2);
  for (std::size_t threads : {2u, 8u}) {
    EngineConfig pc = ec;
    pc.num_threads = threads;
    expect_identical(serial, run_trajectory(6, 227, pc, 2, 2), threads);
  }
}

TEST(EngineParallel, CompletedIterationBookkeeping) {
  EngineConfig ec;
  ec.dane.sgd_steps = 2;
  ec.faults.dropout_prob = 0.5;
  ec.num_threads = 4;
  World w(6, 229, ec);
  const auto& ctx = w.env->advance_epoch();
  std::vector<std::size_t> sel;
  for (const auto& o : ctx.available) sel.push_back(o.id);
  const std::size_t iters = 4;
  const EpochOutcome out = w.engine->run_epoch(sel, iters);

  ASSERT_EQ(out.client_completed_iters.size(), sel.size());
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < sel.size(); ++i) {
    EXPECT_LE(out.client_completed_iters[i], iters);
    if (out.client_completed_iters[i] < iters) ++dropped;
    // Zero completed iterations means no η observation was ever recorded.
    if (out.client_completed_iters[i] == 0) {
      EXPECT_EQ(out.client_eta[i], 0.0);
    }
  }
  EXPECT_EQ(dropped, out.num_dropped);
}

TEST(EngineParallel, SharedWeightReplicasCutMemoryAtScale) {
  // The replica pool is keyed by fan-out slot (<= thread budget), and
  // replicas borrow the global model's parameter storage, so peak replica
  // memory at 256 selected clients must be far below what the old design
  // held: one full model clone per selected client. The fl.replica_bytes
  // gauge (set from Model::owned_bytes over the trimmed pool) must come in
  // at least 5x under that baseline.
  EngineConfig ec;
  ec.dane.sgd_steps = 1;
  ec.num_threads = 0;  // draw the fan-out from the scheduler budget (8)
  const std::size_t clients = 256;
  const std::uint64_t seed = 241;
  World w(clients, seed, ec);
  const auto& ctx = w.env->advance_epoch();
  std::vector<std::size_t> sel;
  for (const auto& o : ctx.available) sel.push_back(o.id);
  ASSERT_EQ(sel.size(), clients);
  w.engine->run_epoch(sel, 1);

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  const double replica_bytes = snap.gauges.at("fl.replica_bytes");
  const double replica_count = snap.gauges.at("fl.replicas");
  ASSERT_GT(replica_bytes, 0.0) << "parallel epoch must have used replicas";
  EXPECT_GE(replica_count, 1.0);
  EXPECT_LE(replica_count, 8.0) << "pool must be slot-keyed, not per client";

  // Baseline: the model the engine trains (same spec/seed as World), with
  // caches populated by one batch_cap-sized forward/backward — what each of
  // the 256 per-client clones held at peak before weight sharing.
  Rng mrng(seed + 4);
  nn::ModelSpec ms;
  ms.width_scale = 0.05;
  nn::Model proto = nn::make_fmnist_cnn(ms, mrng);
  Rng brng(7);
  nn::Batch batch;
  batch.x = Tensor::uniform(Shape{16, 1, 28, 28}, -1.0f, 1.0f, brng);
  batch.y.resize(16);
  for (auto& y : batch.y)
    y = static_cast<std::uint8_t>(brng.uniform_int(0, 9));
  proto.forward_backward(batch);
  const double old_peak = static_cast<double>(proto.owned_bytes()) *
                          static_cast<double>(clients);
  EXPECT_LE(replica_bytes * 5.0, old_peak)
      << "replica pool holds " << replica_bytes << " bytes vs "
      << old_peak << " for per-client clones";
}

TEST(EngineParallel, AccumulatedLossReductionGrowsWithIterations) {
  // The per-client reduction is accumulated across the epoch's DANE
  // iterations (not overwritten with the last iteration's marginal), so a
  // 3-iteration epoch must report at least the single-iteration reduction
  // for every client — both start from the same initial model.
  EngineConfig ec;
  ec.dane.sgd_steps = 2;
  const Trajectory one = run_trajectory(5, 233, ec, 1, 1);
  const Trajectory three = run_trajectory(5, 233, ec, 1, 3);
  const auto& r1 = one.outcomes[0].client_loss_reduction;
  const auto& r3 = three.outcomes[0].client_loss_reduction;
  ASSERT_EQ(r1.size(), r3.size());
  for (std::size_t i = 0; i < r1.size(); ++i)
    EXPECT_GE(r3[i], r1[i] - 1e-9) << "client " << i;
}

}  // namespace
}  // namespace fedl::fl
