#!/usr/bin/env python3
"""Negative tests for scripts/validate_trace.py (ctest label: lint).

The validator is the last line of defense for the decision-trace schema: the
plotting and regret-analysis toolchain trusts whatever it accepts. This test
builds a minimal *valid* JSONL trace (and asserts the validator accepts it,
so a drifting schema cannot silently vacuous-pass the corruption cases),
then corrupts it one way at a time and asserts the validator exits nonzero
naming the violation:

  * a missing budget-ledger field (budget_spent dropped)
  * a non-monotonic epoch sequence (3, 1 after epochs must advance)
  * an unbalanced ledger (spent + remaining != total)
  * a broken determinism-digest chain (prev != previous digest)
  * an anomaly record naming an unknown monitor
  * a manifest with a wrong schema tag / an unexplained final digest
  * a virtual-clock event stream (--async runs) that runs backwards,
    mis-counts a flush, or leaks a field that must be null for its kind
"""

import argparse
import copy
import json
import subprocess
import sys
import tempfile


def epoch_event(epoch, spent):
    client = {
        "id": 0, "cost": 2.0, "data_size": 64, "tau_loc": 0.1,
        "tau_cm_est": 0.2, "x_frac": 1.0, "mu": 0.0, "eta_est": 0.5,
        "delta_est": 0.1, "selected": True, "eta_hat": 0.5,
        "delta_hat": 0.1, "latency_s": 0.3, "completed_iters": 3,
        "dropped": False,
    }
    return {
        "type": "epoch", "algorithm": "fedl", "epoch": epoch,
        "num_available": 1, "num_selected": 1, "iterations": 3,
        "rho": 0.5, "mu0": 0.1, "eta_max": 0.9, "latency_s": 0.3,
        "epoch_cost": 2.0, "budget_total": 100.0, "budget_spent": spent,
        "budget_remaining": 100.0 - spent, "train_loss_selected": 1.0,
        "train_loss_all": 1.1, "test_loss": 1.2, "test_accuracy": 0.5,
        "num_dropped": 0, "clients": [client],
    }


# digest_hex(kFnvOffsetBasis): what the first digest record's prev must be.
FNV_OFFSET_HEX = "cbf29ce484222325"


def digest_event(epoch, prev, digest):
    return {"type": "digest", "algorithm": "fedl", "epoch": epoch,
            "hash": "fnv1a64", "prev": prev, "digest": digest}


def anomaly_event(monitor):
    return {"type": "anomaly", "algorithm": "fedl", "epoch": 2,
            "monitor": monitor, "observed": 12.0, "limit": 10.0,
            "detail": "epoch cost 12 exceeds paced cap 10"}


def async_event(kind, vt, epoch, client=None, version=0, staleness=None,
                buffer=None, aggregated=None):
    return {"type": "event", "algorithm": "fedl", "kind": kind, "vt": vt,
            "epoch": epoch, "client": client, "version": version,
            "staleness": staleness, "buffer": buffer,
            "aggregated": aggregated}


def manifest_doc():
    return {"schema": "fedl-manifest-v1", "clean": True,
            "build_type": "Release", "profiling_compiled": True,
            "final_digest": "a" * 16, "runs_digested": 2,
            "fields": {"seed": "1", "gemm_kernel": "avx2"}}


def run_validator(python, validator, events, flag="--trace"):
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".jsonl", delete=False) as f:
        if flag == "--trace":
            for event in events:
                f.write(json.dumps(event) + "\n")
        else:
            json.dump(events, f)
        path = f.name
    proc = subprocess.run([python, validator, flag, path],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--validator", required=True,
                        help="path to scripts/validate_trace.py")
    parser.add_argument("--python", default=sys.executable)
    args = parser.parse_args()

    valid = [epoch_event(1, 2.0), epoch_event(2, 4.0), epoch_event(3, 6.0)]
    failures = []

    def expect(name, events, want_rc, want_substr, flag="--trace"):
        before = len(failures)
        rc, out = run_validator(args.python, args.validator, events, flag)
        if want_rc == 0:
            if rc != 0:
                failures.append(f"{name}: expected acceptance, got rc={rc}: "
                                f"{out.strip()}")
        else:
            if rc == 0:
                failures.append(f"{name}: validator accepted corrupted trace")
            elif want_substr not in out:
                failures.append(f"{name}: exit was nonzero but the named "
                                f"violation {want_substr!r} is missing from: "
                                f"{out.strip()}")
        print(f"{'ok' if len(failures) == before else 'FAIL'} {name}: rc={rc}")

    # Baseline must pass, otherwise every corruption case is vacuous.
    expect("valid_trace_accepted", valid, 0, "")

    missing_ledger = copy.deepcopy(valid)
    del missing_ledger[1]["budget_spent"]
    expect("missing_ledger_field_rejected", missing_ledger, 1, "budget_spent")

    non_monotonic = [epoch_event(1, 2.0), epoch_event(3, 4.0),
                     epoch_event(2, 6.0)]
    expect("non_monotonic_epoch_rejected", non_monotonic, 1,
           "non-monotonic epoch")

    unbalanced = copy.deepcopy(valid)
    unbalanced[2]["budget_remaining"] = 90.0
    expect("unbalanced_ledger_rejected", unbalanced, 1, "does not balance")

    # Trial-boundary reset (grid traces concatenate runs): must stay legal.
    two_trials = [epoch_event(1, 2.0), epoch_event(2, 4.0),
                  epoch_event(1, 6.0), epoch_event(2, 8.0)]
    expect("trial_boundary_reset_accepted", two_trials, 0, "")

    # Determinism-sentinel records: a continuous chain passes, a record
    # whose prev does not match the previous digest is corruption.
    chained = [epoch_event(1, 2.0),
               digest_event(1, FNV_OFFSET_HEX, "1" * 16),
               epoch_event(2, 4.0),
               digest_event(2, "1" * 16, "2" * 16)]
    expect("digest_chain_accepted", chained, 0, "")

    broken = copy.deepcopy(chained)
    broken[3]["prev"] = "f" * 16
    expect("digest_chain_break_rejected", broken, 1, "digest chain broken")

    stuck = copy.deepcopy(chained)
    stuck[3]["digest"] = stuck[3]["prev"]
    expect("digest_chain_stall_rejected", stuck, 1, "did not advance")

    # Anomaly records: a well-formed one passes, an unknown monitor is
    # corruption (the monitor set is the validator's schema contract).
    with_anomaly = valid[:2] + [anomaly_event("budget_pacing")] + valid[2:]
    expect("anomaly_record_accepted", with_anomaly, 0, "")
    bad_monitor = valid[:2] + [anomaly_event("vibes")] + valid[2:]
    expect("unknown_monitor_rejected", bad_monitor, 1, "unknown monitor")

    # Run manifest: valid doc passes; wrong schema tag and an unexplained
    # nonzero final digest (no run recorded one) are rejected.
    expect("manifest_accepted", manifest_doc(), 0, "", flag="--manifest")
    bad_schema = manifest_doc()
    bad_schema["schema"] = "fedl-manifest-v0"
    expect("manifest_bad_schema_rejected", bad_schema, 1, "manifest schema",
           flag="--manifest")
    phantom_digest = manifest_doc()
    phantom_digest["runs_digested"] = 0
    expect("manifest_phantom_digest_rejected", phantom_digest, 1,
           "no run digested", flag="--manifest")

    # Virtual-clock event records (--async runs): a well-formed
    # dispatch/complete/flush stream interleaved with epoch events passes.
    async_ok = [
        epoch_event(1, 2.0),
        async_event("dispatch", 0.0, 2, client=0),
        async_event("dispatch", 0.0, 2, client=1),
        async_event("complete", 0.5, 2, client=0, version=0, staleness=0,
                    buffer=1),
        async_event("complete", 0.7, 2, client=1, version=0, staleness=0,
                    buffer=2),
        async_event("flush", 0.7, 2, version=1, staleness=0, buffer=0,
                    aggregated=2),
        epoch_event(2, 4.0),
    ]
    expect("async_events_accepted", async_ok, 0, "")

    # The virtual clock is monotone within a trial; only a dispatch at
    # vt == 0.0 (a new trial in a grid trace) may reset it.
    backwards = copy.deepcopy(async_ok)
    backwards[4]["vt"] = 0.3
    expect("async_vt_backwards_rejected", backwards, 1,
           "virtual clock ran backwards")

    # FedBuff flush accounting: aggregated must equal the completes that
    # arrived since the previous flush.
    shortflush = copy.deepcopy(async_ok)
    shortflush[5]["aggregated"] = 1
    expect("async_flush_miscount_rejected", shortflush, 1,
           "updates completed since the last flush")

    # Per-kind null contract: a dispatch has no staleness yet.
    leaky = copy.deepcopy(async_ok)
    leaky[1]["staleness"] = 0
    expect("async_dispatch_nonnull_rejected", leaky, 1, "has non-null")

    # Series export: parallel-array length mismatch is corruption.
    series_doc = {"capacity": 8, "series": {
        "fl.test_loss": {"epochs": [1, 2], "values": [0.5, 0.4],
                         "dropped": 0}}}
    expect("series_accepted", series_doc, 0, "", flag="--series")
    ragged = copy.deepcopy(series_doc)
    ragged["series"]["fl.test_loss"]["values"] = [0.5]
    expect("series_ragged_rejected", ragged, 1, "epochs vs",
           flag="--series")

    total = 19
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    print(f"{total - len(failures)}/{total} corruption cases behaved",
          file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
