// Event-driven engine (DESIGN.md §12): virtual-clock semantics, FedBuff
// buffer accounting, dropout-as-total-loss, staleness damping, and the
// harness-level determinism contract (same-seed byte identity, equal digest
// chains across --jobs/--threads, budget never overdrawn, clean monitored
// runs fire nothing).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/staleness.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/event_engine.h"
#include "harness/experiment.h"
#include "nn/factory.h"
#include "parallel/scheduler.h"

namespace fedl::fl {
namespace {

// --- staleness damping -----------------------------------------------------------

TEST(Staleness, ExponentZeroIsUndampedCohortMean) {
  // All fresh, all from one cohort of 3: exactly the lockstep selected-mean
  // weights, regardless of how many of them share this flush.
  const std::vector<std::size_t> s = {0, 0, 0};
  const std::vector<std::size_t> cohorts = {3, 3, 3};
  const auto w = core::staleness_weights(s, cohorts, 0.0);
  ASSERT_EQ(w.size(), 3u);
  for (double wi : w) EXPECT_DOUBLE_EQ(wi, 1.0 / 3.0);
}

TEST(Staleness, CohortNormalizationTelescopesToLockstepMean) {
  // A cohort of 4 sliced into two K=2 flushes must apply, in total, the
  // same 1/4 weight per update the barrier version would — buffer-size
  // normalization would double it.
  const std::vector<std::size_t> s = {0, 0};
  const std::vector<std::size_t> cohorts = {4, 4};
  const auto w = core::staleness_weights(s, cohorts, 0.0);
  EXPECT_DOUBLE_EQ(w[0], 0.25);
  EXPECT_DOUBLE_EQ(w[1], 0.25);
}

TEST(Staleness, DampingDecaysPolynomially) {
  EXPECT_DOUBLE_EQ(core::staleness_damping(0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(core::staleness_damping(3, 1.0), 0.25);
  EXPECT_NEAR(core::staleness_damping(3, 0.5), 0.5, 1e-12);
  // Monotone in staleness for a > 0.
  EXPECT_LT(core::staleness_damping(5, 0.5), core::staleness_damping(1, 0.5));
  const std::vector<std::size_t> s = {0, 1};
  const std::vector<std::size_t> cohorts = {2, 2};
  const auto w = core::staleness_weights(s, cohorts, 1.0);
  EXPECT_DOUBLE_EQ(w[0], 0.5);    // fresh: 1/|S|
  EXPECT_DOUBLE_EQ(w[1], 0.25);   // one version behind: damped by 1/2
}

// --- EventEngine unit semantics --------------------------------------------------

struct EventFixture {
  explicit EventFixture(std::uint64_t seed, double dropout_prob = 0.0) {
    data = std::make_unique<data::TrainTest>(data::make_synthetic_train_test(
        data::fmnist_like_spec(300, seed), 90));
    Rng prng(seed);
    auto part = data::partition_iid(data->train, kClients, prng);
    sim::EnvironmentSpec es;
    es.num_clients = kClients;
    es.device.seed = seed + 1;
    es.device.availability_prob = 1.0;  // everyone shows up every epoch
    es.channel.seed = seed + 2;
    es.online.seed = seed + 3;
    env = std::make_unique<sim::EdgeEnvironment>(es, part);

    Rng mrng(seed + 4);
    nn::ModelSpec ms;
    ms.width_scale = 0.05;
    nn::Model model = nn::make_fmnist_cnn(ms, mrng);
    EngineConfig ec;
    ec.batch_cap = 12;
    ec.eval_cap = 48;
    ec.dane.sgd_steps = 2;
    ec.seed = seed + 5;
    ec.faults.dropout_prob = dropout_prob;
    engine = std::make_unique<FlEngine>(&data->train, &data->test, env.get(),
                                        std::move(model), ec);
  }

  std::vector<std::size_t> first_available(std::size_t n) const {
    const auto& ctx = env->context();
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < n && i < ctx.available.size(); ++i)
      out.push_back(ctx.available[i].id);
    return out;
  }

  static constexpr std::size_t kClients = 8;
  std::unique_ptr<data::TrainTest> data;
  std::unique_ptr<sim::EdgeEnvironment> env;
  std::unique_ptr<FlEngine> engine;
};

TEST(EventEngine, FlushAtKAndVersionAdvance) {
  EventFixture f(11);
  f.env->advance_epoch();
  AsyncConfig ac;
  ac.enabled = true;
  ac.buffer_k = 2;
  EventEngine evt(f.engine.get(), f.env.get(), ac, 99);

  const auto sel = f.first_available(4);
  ASSERT_EQ(sel.size(), 4u);
  evt.dispatch(1, sel, /*iterations=*/2, /*cohort_cost=*/1.0);
  EXPECT_EQ(evt.inflight(), 4u);
  for (std::size_t id : sel) EXPECT_TRUE(evt.client_inflight(id));

  // First flush: exactly K=2 updates folded, model version 0 → 1.
  ASSERT_TRUE(evt.run_until_flush());
  EXPECT_EQ(evt.version(), 1u);
  auto events = evt.take_events();
  std::size_t flushes = 0, completes = 0;
  double last_vt = -1.0;
  for (const AsyncEvent& e : events) {
    EXPECT_GE(e.vt, last_vt);  // virtual time never runs backwards
    last_vt = e.vt;
    if (e.kind == AsyncEvent::Kind::kComplete) {
      ++completes;
      EXPECT_EQ(e.staleness, 0u);  // no flush happened before these arrived
    }
    if (e.kind == AsyncEvent::Kind::kFlush) {
      ++flushes;
      EXPECT_EQ(e.aggregated, 2u);
      EXPECT_EQ(e.buffer, 0u);
      EXPECT_EQ(e.aggregated, completes);  // flush folds what completed
    }
  }
  EXPECT_EQ(flushes, 1u);
  EXPECT_EQ(completes, 2u);

  // Each member's engagement is a chain of unit steps: 4 members × 2
  // iterations = 8 unit uploads total, so K=2 slices the run into exactly
  // 4 flushes and the model version ends at 4. Later steps trained against
  // flushed models, so at least one of them arrives stale.
  std::size_t more_completes = 0, stale_completes = 0;
  while (evt.run_until_flush()) {
    for (const AsyncEvent& e : evt.take_events())
      if (e.kind == AsyncEvent::Kind::kComplete) {
        ++more_completes;
        if (e.staleness > 0) ++stale_completes;
      }
  }
  EXPECT_EQ(more_completes, 6u);
  EXPECT_GT(stale_completes, 0u);
  EXPECT_EQ(evt.version(), 4u);
  EXPECT_TRUE(evt.drained());
  EXPECT_EQ(evt.inflight(), 0u);

  // The cohort resolves once, fully populated.
  const auto resolved = evt.take_resolved();
  ASSERT_EQ(resolved.size(), 1u);
  const EpochOutcome& out = resolved.front().outcome;
  EXPECT_EQ(out.selected, sel);
  EXPECT_EQ(out.num_dropped, 0u);
  for (std::size_t it : out.client_completed_iters) EXPECT_EQ(it, 2u);
  EXPECT_GT(out.eta_max, 0.0);
  EXPECT_GE(resolved.front().resolve_vt, resolved.front().dispatch_vt);
}

TEST(EventEngine, ShortBufferDrainFlushesRemainder) {
  EventFixture f(12);
  f.env->advance_epoch();
  AsyncConfig ac;
  ac.enabled = true;
  ac.buffer_k = 8;  // larger than the cohort: only the drain flush fires
  EventEngine evt(f.engine.get(), f.env.get(), ac, 99);
  const auto sel = f.first_available(3);
  ASSERT_EQ(sel.size(), 3u);
  evt.dispatch(1, sel, 1, 1.0);
  ASSERT_TRUE(evt.run_until_flush());
  std::size_t flushes = 0;
  for (const AsyncEvent& e : evt.take_events())
    if (e.kind == AsyncEvent::Kind::kFlush) {
      ++flushes;
      EXPECT_EQ(e.aggregated, 3u);  // nothing stranded in the buffer
    }
  EXPECT_EQ(flushes, 1u);
  EXPECT_TRUE(evt.drained());
  EXPECT_FALSE(evt.run_until_flush());  // nothing left to do
}

TEST(EventEngine, DropoutIsATotalLoss) {
  // dropout_prob = 1: every member dies mid-flight. No update is buffered,
  // no flush happens, the model version stays 0, and the cohort still
  // resolves (with everything dropped) so the learner gets its feedback.
  EventFixture f(13, /*dropout_prob=*/1.0);
  f.env->advance_epoch();
  AsyncConfig ac;
  ac.enabled = true;
  ac.buffer_k = 2;
  EventEngine evt(f.engine.get(), f.env.get(), ac, 99);
  const auto sel = f.first_available(3);
  ASSERT_EQ(sel.size(), 3u);
  const nn::ParamVec w_before = f.engine->global_params();
  evt.dispatch(1, sel, 2, 1.0);
  EXPECT_FALSE(evt.run_until_flush());  // nothing ever reaches the buffer
  EXPECT_EQ(evt.version(), 0u);
  EXPECT_EQ(f.engine->global_params(), w_before);  // model untouched

  std::size_t drops = 0;
  for (const AsyncEvent& e : evt.take_events()) {
    EXPECT_NE(e.kind, AsyncEvent::Kind::kFlush);
    EXPECT_NE(e.kind, AsyncEvent::Kind::kComplete);
    if (e.kind == AsyncEvent::Kind::kDrop) ++drops;
  }
  EXPECT_EQ(drops, 3u);

  const auto resolved = evt.take_resolved();
  ASSERT_EQ(resolved.size(), 1u);
  const EpochOutcome& out = resolved.front().outcome;
  EXPECT_EQ(out.num_dropped, 3u);
  for (std::size_t it : out.client_completed_iters) EXPECT_EQ(it, 0u);
  // A straggling failure resolves at the timeout of its nominal finish.
  for (std::size_t i = 0; i < out.client_latency_s.size(); ++i)
    EXPECT_GT(out.client_latency_s[i], 0.0);
  EXPECT_TRUE(evt.drained());
}

TEST(EventEngine, DoubleDispatchOfInflightClientIsAContractViolation) {
  EventFixture f(14);
  f.env->advance_epoch();
  AsyncConfig ac;
  ac.enabled = true;
  ac.buffer_k = 4;
  EventEngine evt(f.engine.get(), f.env.get(), ac, 99);
  const auto sel = f.first_available(2);
  ASSERT_EQ(sel.size(), 2u);
  evt.dispatch(1, sel, 1, 1.0);
  EXPECT_THROW(evt.dispatch(2, {sel[0]}, 1, 1.0), CheckError);
}

// --- harness-level contract ------------------------------------------------------

harness::ScenarioConfig small_async_scenario(std::uint64_t seed) {
  harness::ScenarioConfig cfg;
  cfg.num_clients = 6;
  cfg.n_min = 2;
  cfg.budget = 90.0;
  cfg.max_epochs = 8;
  cfg.train_samples = 150;
  cfg.test_samples = 60;
  cfg.width_scale = 0.05;
  cfg.batch_cap = 8;
  cfg.eval_cap = 48;
  cfg.dane.sgd_steps = 2;
  cfg.seed = seed;
  cfg.async.enabled = true;
  cfg.async.buffer_k = 2;
  cfg.async.staleness_exponent = 0.5;
  return cfg;
}

TEST(AsyncHarness, RunCompletesAndNeverOverdrawsTheBudget) {
  harness::ScenarioConfig cfg = small_async_scenario(21);
  harness::Experiment exp(cfg);
  auto strat = harness::make_strategy("fedl", cfg);
  const auto res = exp.run(*strat);
  EXPECT_GT(res.epochs_run, 0u);
  // Spend is charged at dispatch and decide() caps by remaining(): the
  // ledger can never go negative no matter how cohorts overlap.
  EXPECT_LE(res.trace.total_cost(), cfg.budget + 1e-9);
  EXPECT_FALSE(res.termination_reason.empty());
  for (const auto& r : res.trace.records) {
    EXPECT_TRUE(std::isfinite(r.test_accuracy));
    EXPECT_LE(r.cost_spent, cfg.budget + 1e-9);
  }
  // Virtual wall-clock is monotone across the (reorder-buffered) records.
  for (std::size_t i = 1; i < res.trace.records.size(); ++i)
    EXPECT_GE(res.trace.records[i].sim_time_s,
              res.trace.records[i - 1].sim_time_s);
}

TEST(AsyncHarness, SameSeedIsByteIdentical) {
  harness::ScenarioConfig cfg = small_async_scenario(22);
  cfg.record_digests = true;
  cfg.trace_out = "unused.jsonl";  // tracing on, buffer returned to us
  cfg.defer_trace = true;
  harness::Experiment exp(cfg);
  auto s1 = harness::make_strategy("fedl", cfg);
  auto s2 = harness::make_strategy("fedl", cfg);
  const auto a = exp.run(*s1);
  const auto b = exp.run(*s2);
  ASSERT_FALSE(a.epoch_digests.empty());
  EXPECT_EQ(a.epoch_digests, b.epoch_digests);
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
}

TEST(AsyncHarness, DigestsEqualAcrossJobsAndThreads) {
  // The determinism headline: the event path must produce identical traces
  // and digest chains whether local training fans out or runs serial.
  harness::ScenarioConfig cfg = small_async_scenario(23);
  cfg.record_digests = true;
  cfg.trace_out = "unused.jsonl";
  cfg.defer_trace = true;
  cfg.num_threads = 0;  // draw fan-out from the scheduler's budget
  harness::Experiment exp(cfg);

  Scheduler::instance().configure(/*budget=*/4, /*jobs=*/4);
  auto s1 = harness::make_strategy("fedl", cfg);
  const auto wide = exp.run(*s1);
  Scheduler::instance().configure(/*budget=*/1, /*jobs=*/1);
  auto s2 = harness::make_strategy("fedl", cfg);
  const auto serial = exp.run(*s2);
  Scheduler::instance().configure(0, 1);  // restore defaults

  ASSERT_FALSE(wide.epoch_digests.empty());
  EXPECT_EQ(wide.epoch_digests, serial.epoch_digests);
  EXPECT_EQ(wide.trace_jsonl, serial.trace_jsonl);
}

TEST(AsyncHarness, CleanSeededRunFiresNoAnomalies) {
  harness::ScenarioConfig cfg = small_async_scenario(24);
  cfg.monitor = true;
  harness::Experiment exp(cfg);
  auto strat = harness::make_strategy("fedl", cfg);
  const auto res = exp.run(*strat);
  EXPECT_GT(res.epochs_run, 0u);
  EXPECT_TRUE(res.anomalies.empty())
      << res.anomalies.size() << " anomalies; first: "
      << res.anomalies.front().monitor << " — "
      << res.anomalies.front().detail;
}

TEST(AsyncHarness, SurvivesMidFlightDropouts) {
  harness::ScenarioConfig cfg = small_async_scenario(25);
  cfg.faults.dropout_prob = 0.3;
  harness::Experiment exp(cfg);
  auto strat = harness::make_strategy("fedl", cfg);
  const auto res = exp.run(*strat);
  EXPECT_GT(res.epochs_run, 0u);
  EXPECT_LE(res.trace.total_cost(), cfg.budget + 1e-9);
}

}  // namespace
}  // namespace fedl::fl
