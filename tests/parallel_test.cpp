// Unit tests for the thread pool and data-parallel loop helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace fedl {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i)
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      (void)pool.submit([&done] { done.fetch_add(1); });
  }  // destructor joins; queued tasks may or may not all run before stop
  // At minimum the pool must not crash; tasks submitted before shutdown run.
  EXPECT_GE(done.load(), 0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, NonZeroBegin) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(20);
  parallel_for(pool, 5, 15, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 15) ? 1 : 0);
}

TEST(ParallelFor, ExceptionInBodyRethrows) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [&](std::size_t i) {
                              if (i == 37) throw std::runtime_error("bad");
                            }),
               std::runtime_error);
}

TEST(ParallelReduce, SumsCorrectly) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  const double sum = parallel_reduce<double>(
      pool, 0, n, 0.0,
      [](double& acc, std::size_t i) { acc += static_cast<double>(i); },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ParallelReduce, DeterministicAcrossRuns) {
  ThreadPool pool(4);
  auto run = [&] {
    return parallel_reduce<double>(
        pool, 0, 5000, 0.0,
        [](double& acc, std::size_t i) { acc += 1.0 / (1.0 + static_cast<double>(i)); },
        [](double a, double b) { return a + b; });
  };
  EXPECT_EQ(run(), run());  // chunk order is fixed -> bitwise identical
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  ThreadPool pool(2);
  const int v = parallel_reduce<int>(
      pool, 3, 3, -7, [](int&, std::size_t) {},
      [](int a, int b) { return a + b; });
  EXPECT_EQ(v, -7);
}

TEST(ParallelReduce, NonCommutativeCombineRespectsChunkOrder) {
  ThreadPool pool(4);
  // Concatenate chunk-local index lists; must come out in ascending order.
  using Vec = std::vector<std::size_t>;
  const Vec v = parallel_reduce<Vec>(
      pool, 0, 64, Vec{},
      [](Vec& acc, std::size_t i) { acc.push_back(i); },
      [](Vec a, Vec b) {
        a.insert(a.end(), b.begin(), b.end());
        return a;
      });
  ASSERT_EQ(v.size(), 64u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], i);
}

}  // namespace
}  // namespace fedl
