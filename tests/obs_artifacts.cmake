# ctest driver for the `obs_artifacts` check (registered in
# tests/CMakeLists.txt): run a small seeded quickstart with every
# observability flag — trace, metrics, profile, time series, Prometheus
# exposition, run manifest, invariant monitor, determinism digests — then
# validate all artifacts with scripts/validate_trace.py. Fails on any
# non-zero exit.
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(
  COMMAND ${QUICKSTART}
    --epochs 3 --clients 8 --samples 300 --scale 0.06 --seed 3 --log warn
    --trace-out=${WORKDIR}/trace.jsonl
    --metrics-out=${WORKDIR}/metrics.json
    --profile-out=${WORKDIR}/profile.json
    --series-out=${WORKDIR}/series.json
    --manifest-out=${WORKDIR}/manifest.json
    --prom-out=${WORKDIR}/metrics.prom
    --monitor --digest
  RESULT_VARIABLE run_result
  OUTPUT_VARIABLE run_output
  ERROR_VARIABLE run_output)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "quickstart failed (${run_result}):\n${run_output}")
endif()

execute_process(
  COMMAND ${PYTHON} ${VALIDATOR}
    --trace ${WORKDIR}/trace.jsonl
    --metrics ${WORKDIR}/metrics.json
    --profile ${WORKDIR}/profile.json
    --series ${WORKDIR}/series.json
    --manifest ${WORKDIR}/manifest.json
    --prom ${WORKDIR}/metrics.prom
  RESULT_VARIABLE validate_result
  OUTPUT_VARIABLE validate_output
  ERROR_VARIABLE validate_output)
if(NOT validate_result EQUAL 0)
  message(FATAL_ERROR
          "validate_trace.py failed (${validate_result}):\n${validate_output}")
endif()

# The monitor must stay silent on a healthy seeded run, and a clean exit
# must write a clean manifest.
file(READ ${WORKDIR}/manifest.json manifest_content)
if(NOT manifest_content MATCHES "\"clean\":true")
  message(FATAL_ERROR "manifest not marked clean:\n${manifest_content}")
endif()
file(READ ${WORKDIR}/trace.jsonl trace_content)
if(trace_content MATCHES "\"type\":\"anomaly\"")
  message(FATAL_ERROR
          "monitor fired on a healthy seeded run:\n${trace_content}")
endif()
message(STATUS "${validate_output}")
