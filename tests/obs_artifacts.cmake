# ctest driver for the `obs_artifacts` check (registered in
# tests/CMakeLists.txt): run a small seeded quickstart with every
# observability flag, then validate all three artifacts with
# scripts/validate_trace.py. Fails on any non-zero exit.
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(
  COMMAND ${QUICKSTART}
    --epochs 3 --clients 8 --samples 300 --scale 0.06 --seed 3 --log warn
    --trace-out=${WORKDIR}/trace.jsonl
    --metrics-out=${WORKDIR}/metrics.json
    --profile-out=${WORKDIR}/profile.json
  RESULT_VARIABLE run_result
  OUTPUT_VARIABLE run_output
  ERROR_VARIABLE run_output)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "quickstart failed (${run_result}):\n${run_output}")
endif()

execute_process(
  COMMAND ${PYTHON} ${VALIDATOR}
    --trace ${WORKDIR}/trace.jsonl
    --metrics ${WORKDIR}/metrics.json
    --profile ${WORKDIR}/profile.json
  RESULT_VARIABLE validate_result
  OUTPUT_VARIABLE validate_output
  ERROR_VARIABLE validate_output)
if(NOT validate_result EQUAL 0)
  message(FATAL_ERROR
          "validate_trace.py failed (${validate_result}):\n${validate_output}")
endif()
message(STATUS "${validate_output}")
