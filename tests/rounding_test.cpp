// Tests for RDCS (Algorithm 2) and independent rounding, including the
// statistical verification of Theorem 3 (E[x_k] = x̃_k) and the
// sum-preservation property that motivates dependent rounding.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "core/rounding.h"

namespace fedl::core {
namespace {

double frac_sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

int int_sum(const std::vector<int>& v) {
  return std::accumulate(v.begin(), v.end(), 0);
}

TEST(Rdcs, OutputIsBinary) {
  Rng rng(1);
  const std::vector<double> x = {0.3, 0.7, 0.5, 0.1, 0.9};
  for (int trial = 0; trial < 100; ++trial) {
    const auto r = rdcs_round(x, rng);
    ASSERT_EQ(r.size(), x.size());
    for (int v : r) EXPECT_TRUE(v == 0 || v == 1);
  }
}

TEST(Rdcs, IntegralInputsUntouched) {
  Rng rng(2);
  const std::vector<double> x = {0.0, 1.0, 1.0, 0.0};
  for (int trial = 0; trial < 20; ++trial) {
    const auto r = rdcs_round(x, rng);
    EXPECT_EQ(r, (std::vector<int>{0, 1, 1, 0}));
  }
}

TEST(Rdcs, SumPreservedWithinOne) {
  // Dependent rounding keeps the realized sum within {⌊Σx̃⌋, ⌈Σx̃⌉} — the key
  // advantage over independent rounding, which can swing by O(√K).
  Rng rng(3);
  const std::vector<double> x = {0.2, 0.8, 0.5, 0.5, 0.3, 0.7, 0.4, 0.6};
  const double target = frac_sum(x);  // 4.0 exactly
  for (int trial = 0; trial < 200; ++trial) {
    const auto r = rdcs_round(x, rng);
    EXPECT_EQ(int_sum(r), static_cast<int>(target));
  }
}

TEST(Rdcs, NonIntegralSumRoundsToFloorOrCeil) {
  Rng rng(4);
  const std::vector<double> x = {0.3, 0.4, 0.6};  // sum 1.3
  bool saw_floor = false, saw_ceil = false;
  for (int trial = 0; trial < 300; ++trial) {
    const int s = int_sum(rdcs_round(x, rng));
    EXPECT_TRUE(s == 1 || s == 2) << s;
    saw_floor |= (s == 1);
    saw_ceil |= (s == 2);
  }
  EXPECT_TRUE(saw_floor);
  EXPECT_TRUE(saw_ceil);
}

TEST(Rdcs, SingleFractionMarginal) {
  Rng rng(5);
  const std::vector<double> x = {0.25};
  int ones = 0;
  const int n = 40000;
  for (int trial = 0; trial < n; ++trial) ones += rdcs_round(x, rng)[0];
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.25, 0.01);
}

TEST(Rdcs, OutOfRangeThrows) {
  Rng rng(6);
  EXPECT_THROW(rdcs_round({1.5}, rng), CheckError);
  EXPECT_THROW(rdcs_round({-0.2}, rng), CheckError);
}

TEST(Rdcs, EmptyInput) {
  Rng rng(7);
  EXPECT_TRUE(rdcs_round({}, rng).empty());
}

// Theorem 3: E[x_k] = x̃_k. Verified statistically over many trials for a
// family of fraction vectors (parameterized property test).
class RdcsMarginals
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(RdcsMarginals, ExpectationMatchesFraction) {
  const std::vector<double> x = GetParam();
  Rng rng(1234);
  const int trials = 30000;
  std::vector<double> mean(x.size(), 0.0);
  for (int t = 0; t < trials; ++t) {
    const auto r = rdcs_round(x, rng);
    for (std::size_t k = 0; k < x.size(); ++k) mean[k] += r[k];
  }
  for (std::size_t k = 0; k < x.size(); ++k) {
    mean[k] /= trials;
    // 4-sigma band for a Bernoulli mean estimate.
    const double sigma = std::sqrt(x[k] * (1 - x[k]) / trials) + 1e-9;
    EXPECT_NEAR(mean[k], x[k], 4 * sigma + 0.004) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fractions, RdcsMarginals,
    ::testing::Values(std::vector<double>{0.5, 0.5},
                      std::vector<double>{0.1, 0.9},
                      std::vector<double>{0.3, 0.3, 0.4},
                      std::vector<double>{0.25, 0.5, 0.75},
                      std::vector<double>{0.05, 0.95, 0.5, 0.5, 0.2, 0.8},
                      std::vector<double>{0.7, 0.0, 1.0, 0.3},
                      std::vector<double>{0.15, 0.35, 0.55, 0.75, 0.95}));

TEST(IndependentRound, MarginalsMatch) {
  Rng rng(8);
  const std::vector<double> x = {0.2, 0.6};
  const int trials = 30000;
  std::vector<double> mean(x.size(), 0.0);
  for (int t = 0; t < trials; ++t) {
    const auto r = independent_round(x, rng);
    for (std::size_t k = 0; k < x.size(); ++k) mean[k] += r[k];
  }
  EXPECT_NEAR(mean[0] / trials, 0.2, 0.01);
  EXPECT_NEAR(mean[1] / trials, 0.6, 0.01);
}

TEST(IndependentRound, SumVarianceExceedsRdcs) {
  // The motivating comparison: RDCS's realized sum is (near) constant while
  // independent rounding's sum has Bernoulli variance.
  Rng rng(9);
  const std::vector<double> x(10, 0.5);  // sum = 5
  double var_ind = 0.0, var_rdcs = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const double si = int_sum(independent_round(x, rng)) - 5.0;
    const double sr = int_sum(rdcs_round(x, rng)) - 5.0;
    var_ind += si * si;
    var_rdcs += sr * sr;
  }
  var_ind /= trials;
  var_rdcs /= trials;
  EXPECT_NEAR(var_rdcs, 0.0, 1e-9);
  EXPECT_GT(var_ind, 1.0);  // theoretical 2.5
}

TEST(Rdcs, ClampsTinyNumericalViolations) {
  Rng rng(10);
  // Values within the documented tolerance just outside [0,1].
  const std::vector<double> x = {-1e-13, 1.0 + 1e-13, 0.5, 0.5};
  const auto r = rdcs_round(x, rng);
  EXPECT_EQ(r[0], 0);
  EXPECT_EQ(r[1], 1);
}

}  // namespace
}  // namespace fedl::core
