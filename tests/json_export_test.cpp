// Tests for the JSON trace exporter.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "harness/json_export.h"

namespace fedl::harness {
namespace {

fl::TrainTrace sample_trace() {
  fl::TrainTrace t;
  t.algorithm = "FedL";
  fl::TraceRecord r;
  r.epoch = 1;
  r.round = 2;
  r.sim_time_s = 3.5;
  r.cost_spent = 10.25;
  r.train_loss = 1.5;
  r.test_loss = 1.75;
  r.test_accuracy = 0.5;
  r.num_selected = 4;
  r.num_iterations = 2;
  r.eta = 0.9;
  t.records.push_back(r);
  return t;
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(JsonExport, TraceStructure) {
  std::ostringstream os;
  write_trace_json(os, sample_trace());
  const std::string j = os.str();
  EXPECT_NE(j.find("\"algorithm\":\"FedL\""), std::string::npos);
  EXPECT_NE(j.find("\"epoch\":1"), std::string::npos);
  EXPECT_NE(j.find("\"time_s\":3.5"), std::string::npos);
  EXPECT_NE(j.find("\"test_acc\":0.5"), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST(JsonExport, ArrayOfTraces) {
  std::ostringstream os;
  write_traces_json(os, {sample_trace(), sample_trace()});
  const std::string j = os.str();
  EXPECT_EQ(j.front(), '[');
  // Two objects separated by a comma.
  EXPECT_NE(j.find("},{"), std::string::npos);
}

TEST(JsonExport, NanBecomesNull) {
  fl::TrainTrace t = sample_trace();
  t.records[0].train_loss = std::nan("");
  std::ostringstream os;
  write_trace_json(os, t);
  EXPECT_NE(os.str().find("\"train_loss\":null"), std::string::npos);
}

TEST(JsonExport, FileRoundTrip) {
  const std::string path =
      std::string(::testing::TempDir()) + "/fedl_traces.json";
  write_traces_json_file(path, {sample_trace()});
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("FedL"), std::string::npos);
  EXPECT_EQ(contents.back(), '\n');
  std::remove(path.c_str());
}

TEST(JsonExport, BadPathThrows) {
  EXPECT_THROW(write_traces_json_file("/no/such/dir/t.json", {}),
               ConfigError);
}

TEST(JsonExport, EmptyTraceList) {
  std::ostringstream os;
  write_traces_json(os, {});
  EXPECT_EQ(os.str(), "[]\n");
}

}  // namespace
}  // namespace fedl::harness
