// Unit tests for the tensor substrate: Shape/Tensor semantics, BLAS-1 ops,
// blocked GEMM vs. the naive reference, and the im2col/col2im adjoint pair.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/error.h"
#include "common/rng.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace fedl {
namespace {

TEST(Shape, RankAndNumel) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24u);
  EXPECT_EQ(s[0], 2u);
  EXPECT_EQ(s.dim_or_1(3), 1u);
}

TEST(Shape, EqualityIgnoresTrailingOnes) {
  EXPECT_TRUE((Shape{4, 5} == Shape{4, 5, 1, 1}));
  EXPECT_TRUE((Shape{4} != Shape{4, 2}));
}

TEST(Shape, StrFormat) {
  EXPECT_EQ((Shape{2, 3}).str(), "[2x3]");
}

TEST(Tensor, ConstructFillZeroed) {
  Tensor t(Shape{3, 3});
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
  t.fill(2.5f);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, TwoDAccessorRowMajor) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[1 * 3 + 2], 7.0f);
  EXPECT_THROW(t.at(2, 0), CheckError);
}

TEST(Tensor, FourDAccessorNchw) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, ReshapePreservesDataRejectsBadNumel) {
  Tensor t(Shape{2, 6});
  t.at(0, 3) = 5.0f;
  t.reshape(Shape{3, 4});
  EXPECT_EQ(t.at(0, 3), 5.0f);
  EXPECT_THROW(t.reshape(Shape{5, 5}), CheckError);
}

TEST(Tensor, HeNormalStddev) {
  Rng rng(1);
  Tensor t = Tensor::he_normal(Shape{200, 200}, 200, rng);
  double sq = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i)
    sq += static_cast<double>(t[i]) * t[i];
  const double stddev = std::sqrt(sq / t.numel());
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 200.0), 0.005);
}

TEST(Tensor, Norms) {
  Tensor t(Shape{2});
  t[0] = 3.0f;
  t[1] = 4.0f;
  EXPECT_NEAR(t.norm(), 5.0, 1e-12);
  EXPECT_NEAR(t.squared_norm(), 25.0, 1e-12);
}

// --- ops ---------------------------------------------------------------------

TEST(Tensor, BorrowAliasesBaseStorage) {
  Tensor base(Shape{2, 3});
  for (std::size_t i = 0; i < base.numel(); ++i)
    base[i] = static_cast<float>(i);

  Tensor view;
  view.borrow(base);
  EXPECT_TRUE(view.borrowed());
  EXPECT_FALSE(base.borrowed());
  EXPECT_EQ(view.shape(), base.shape());
  EXPECT_EQ(view.numel(), base.numel());
  EXPECT_EQ(view.data(), base.data()) << "a borrow is an alias, not a copy";

  // Writes to the base are visible through the view (same bytes).
  base[4] = 41.0f;
  EXPECT_EQ(view[4], 41.0f);
}

TEST(Tensor, DetachStorageCopiesOnWrite) {
  Tensor base(Shape{4});
  for (std::size_t i = 0; i < 4; ++i) base[i] = static_cast<float>(i + 1);
  Tensor view;
  view.borrow(base);

  view.detach_storage();
  EXPECT_FALSE(view.borrowed());
  EXPECT_NE(view.data(), base.data());
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(view[i], base[i]) << "detach must preserve values";

  // Post-detach writes stay private.
  view[0] = -9.0f;
  EXPECT_EQ(base[0], 1.0f);

  // Re-borrowing after a detach reuses the owned buffer as capacity (no
  // loss of the alias semantics).
  view.borrow(base);
  EXPECT_EQ(view.data(), base.data());
  EXPECT_EQ(view[0], 1.0f);
}

TEST(Tensor, BorrowedFillIsChecked) {
  Tensor base(Shape{2});
  Tensor view;
  view.borrow(base);
  EXPECT_THROW(view.fill(1.0f), CheckError);
}

TEST(Ops, AxpyTensor) {
  Tensor x = Tensor::full(Shape{4}, 2.0f);
  Tensor y = Tensor::full(Shape{4}, 1.0f);
  axpy(3.0f, x, y);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(y[i], 7.0f);
}

TEST(Ops, AddSubDot) {
  Tensor a = Tensor::full(Shape{3}, 2.0f);
  Tensor b = Tensor::full(Shape{3}, 5.0f);
  EXPECT_EQ(add(a, b)[0], 7.0f);
  EXPECT_EQ(sub(b, a)[2], 3.0f);
  EXPECT_NEAR(tdot(a, b), 30.0, 1e-12);
}

TEST(Ops, ReluInplace) {
  Tensor t(Shape{4});
  t[0] = -1.0f;
  t[1] = 2.0f;
  t[2] = 0.0f;
  t[3] = -0.5f;
  relu_inplace(t);
  EXPECT_EQ(t[0], 0.0f);
  EXPECT_EQ(t[1], 2.0f);
  EXPECT_EQ(t[3], 0.0f);
}

TEST(Ops, ClipNorm) {
  ParamVec v = {3.0f, 4.0f};
  clip_norm(v, 10.0);  // within: unchanged
  EXPECT_EQ(v[0], 3.0f);
  clip_norm(v, 2.5);
  EXPECT_NEAR(vnorm(v), 2.5, 1e-6);
  EXPECT_NEAR(v[0] / v[1], 0.75, 1e-6);  // direction preserved
}

TEST(Ops, SoftmaxRowsSumToOneAndOrderPreserved) {
  Tensor logits(Shape{2, 3});
  logits.at(0, 0) = 1.0f;
  logits.at(0, 1) = 2.0f;
  logits.at(0, 2) = 3.0f;
  logits.at(1, 0) = 1000.0f;  // stability check
  logits.at(1, 1) = 1000.0f;
  logits.at(1, 2) = 999.0f;
  Tensor probs;
  softmax_rows(logits, probs);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) sum += probs.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(probs.at(0, 2), probs.at(0, 1));
  EXPECT_GT(probs.at(0, 1), probs.at(0, 0));
  EXPECT_NEAR(probs.at(1, 0), probs.at(1, 1), 1e-6f);
}

TEST(Ops, ArgmaxRows) {
  Tensor m(Shape{2, 4});
  m.at(0, 2) = 5.0f;
  m.at(1, 0) = 1.0f;
  const auto idx = argmax_rows(m);
  EXPECT_EQ(idx[0], 2u);
  EXPECT_EQ(idx[1], 0u);
}

TEST(Ops, VecHelpers) {
  ParamVec a = {1.0f, 2.0f};
  ParamVec b = {3.0f, 5.0f};
  EXPECT_NEAR(vdot(a, b), 13.0, 1e-12);
  EXPECT_EQ(vadd(a, b)[1], 7.0f);
  EXPECT_EQ(vsub(b, a)[0], 2.0f);
  vscale(2.0f, a);
  EXPECT_EQ(a[1], 4.0f);
}

// --- gemm ---------------------------------------------------------------------

struct GemmCase {
  std::size_t m, n, k;
  bool ta, tb;
  float alpha, beta;
};

class GemmVsNaive : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmVsNaive, MatchesReference) {
  const GemmCase c = GetParam();
  Rng rng(c.m * 131 + c.n * 17 + c.k + (c.ta ? 1000 : 0) + (c.tb ? 2000 : 0));
  std::vector<float> a(c.m * c.k), b(c.k * c.n), c_blocked(c.m * c.n),
      c_naive(c.m * c.n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < c_blocked.size(); ++i)
    c_blocked[i] = c_naive[i] = static_cast<float>(rng.normal());

  gemm(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), b.data(), c.beta,
       c_blocked.data());
  gemm_naive(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), b.data(), c.beta,
             c_naive.data());
  for (std::size_t i = 0; i < c_blocked.size(); ++i)
    EXPECT_NEAR(c_blocked[i], c_naive[i],
                1e-3f * (std::abs(c_naive[i]) + 1.0f))
        << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmVsNaive,
    ::testing::Values(
        GemmCase{1, 1, 1, false, false, 1.0f, 0.0f},
        GemmCase{4, 5, 6, false, false, 1.0f, 0.0f},
        GemmCase{4, 5, 6, true, false, 1.0f, 0.0f},
        GemmCase{4, 5, 6, false, true, 1.0f, 0.0f},
        GemmCase{4, 5, 6, true, true, 1.0f, 0.0f},
        GemmCase{7, 3, 9, false, false, 2.0f, 0.5f},
        GemmCase{70, 90, 80, false, false, 1.0f, 0.0f},
        GemmCase{65, 300, 257, false, true, 1.0f, 1.0f},
        GemmCase{128, 64, 300, true, false, -1.5f, 0.25f},
        GemmCase{1, 512, 300, false, false, 1.0f, 0.0f},
        GemmCase{300, 1, 70, false, false, 1.0f, 0.0f}));

TEST(Gemm, ZeroKScalesC) {
  std::vector<float> c = {2.0f, 4.0f};
  gemm(false, false, 1, 2, 0, 1.0f, nullptr, nullptr, 0.5f, c.data());
  EXPECT_EQ(c[0], 1.0f);
  EXPECT_EQ(c[1], 2.0f);
}

TEST(Gemm, TensorWrapperShapeChecks) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{4, 5});  // inner mismatch
  Tensor c;
  EXPECT_THROW(gemm(false, false, 1.0f, a, b, 0.0f, c), CheckError);
}

TEST(Gemm, TensorWrapperComputes) {
  Tensor a = Tensor::full(Shape{2, 3}, 1.0f);
  Tensor b = Tensor::full(Shape{3, 4}, 2.0f);
  Tensor c;
  gemm(false, false, 1.0f, a, b, 0.0f, c);
  ASSERT_TRUE((c.shape() == Shape{2, 4}));
  for (std::size_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c[i], 6.0f);
}

// --- im2col ---------------------------------------------------------------------

TEST(Im2col, IdentityKernelNoPad) {
  // 1x1 kernel, stride 1: cols equal the image.
  Conv2dGeometry g{2, 3, 4, 1, 1, 1, 0};
  std::vector<float> img(2 * 3 * 4);
  for (std::size_t i = 0; i < img.size(); ++i)
    img[i] = static_cast<float>(i);
  std::vector<float> cols(g.col_rows() * g.col_cols());
  im2col(g, img.data(), cols.data());
  for (std::size_t i = 0; i < img.size(); ++i) EXPECT_EQ(cols[i], img[i]);
}

TEST(Im2col, PaddingProducesZeros) {
  Conv2dGeometry g{1, 2, 2, 3, 3, 1, 1};
  std::vector<float> img = {1, 2, 3, 4};
  std::vector<float> cols(g.col_rows() * g.col_cols());
  im2col(g, img.data(), cols.data());
  // First column row (kh=0,kw=0) at output (0,0) reads input (-1,-1) = 0.
  EXPECT_EQ(cols[0], 0.0f);
  // Center kernel tap (kh=1,kw=1) at output (0,0) reads input (0,0) = 1.
  const std::size_t center_row = 1 * 3 + 1;
  EXPECT_EQ(cols[center_row * g.col_cols() + 0], 1.0f);
}

// <im2col(x), y> == <x, col2im(y)> for random x, y — the defining adjoint
// property the conv backward pass relies on. Parametrized over geometries
// that exercise stride > 1, pad > 0, non-square images, and asymmetric
// kernels (the default conv shapes only cover stride 1 / "same" padding).
class Im2colAdjoint : public ::testing::TestWithParam<Conv2dGeometry> {};

TEST_P(Im2colAdjoint, HoldsForGeometry) {
  const Conv2dGeometry g = GetParam();
  ASSERT_GT(g.out_h(), 0u);
  ASSERT_GT(g.out_w(), 0u);
  Rng rng(9 + g.stride * 31 + g.pad * 7 + g.kernel_h);
  std::vector<float> x(g.in_channels * g.in_h * g.in_w),
      y(g.col_rows() * g.col_cols());
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());

  std::vector<float> cols(y.size());
  im2col(g, x.data(), cols.data());
  double lhs = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i)
    lhs += static_cast<double>(cols[i]) * y[i];

  std::vector<float> back(x.size(), 0.0f);
  col2im(g, y.data(), back.data());
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    rhs += static_cast<double>(x[i]) * back[i];

  EXPECT_NEAR(lhs, rhs, 1e-3 * (std::abs(lhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colAdjoint,
    ::testing::Values(
        Conv2dGeometry{3, 7, 6, 3, 3, 2, 1},   // stride 2, pad 1
        Conv2dGeometry{1, 9, 9, 3, 3, 3, 0},   // stride 3, no pad
        Conv2dGeometry{2, 8, 5, 3, 3, 2, 2},   // pad 2, non-square image
        Conv2dGeometry{4, 6, 6, 5, 5, 1, 2},   // big kernel, "same"-ish
        Conv2dGeometry{2, 10, 7, 1, 1, 2, 0},  // 1x1 kernel, stride 2
        Conv2dGeometry{1, 5, 5, 5, 5, 1, 0},   // kernel == image
        Conv2dGeometry{2, 7, 7, 3, 1, 2, 1},   // asymmetric 3x1 kernel
        Conv2dGeometry{3, 4, 4, 2, 2, 2, 1})); // even kernel, stride 2, pad

TEST(Im2col, StridedLdMatchesPackedAndStaysAdjoint) {
  // The whole-batch conv pipeline writes each sample's columns into a slice
  // of a wide [col_rows, N*col_cols] buffer via the `ld` parameter. The
  // strided write must produce exactly the packed columns, and the strided
  // col2im must remain its adjoint.
  Rng rng(21);
  Conv2dGeometry g{2, 6, 5, 3, 3, 2, 1};
  const std::size_t colr = g.col_rows();
  const std::size_t colc = g.col_cols();
  const std::size_t ld = 3 * colc + 4;  // wide buffer, misaligned slice
  const std::size_t offset = colc + 2;

  std::vector<float> x(2 * 6 * 5);
  for (auto& v : x) v = static_cast<float>(rng.normal());

  std::vector<float> packed(colr * colc);
  im2col(g, x.data(), packed.data());
  std::vector<float> wide(colr * ld, -7.0f);
  im2col(g, x.data(), wide.data() + offset, ld);
  for (std::size_t r = 0; r < colr; ++r)
    for (std::size_t c = 0; c < colc; ++c)
      ASSERT_EQ(wide[r * ld + offset + c], packed[r * colc + c])
          << "r=" << r << " c=" << c;
  // Slots outside the written slice are untouched.
  ASSERT_EQ(wide[0], -7.0f);
  ASSERT_EQ(wide[offset + colc], -7.0f);

  // Adjoint through the strided view: seed the wide buffer with zeros
  // outside the slice so col2im(strided) == col2im(packed slice).
  std::vector<float> y(colr * colc);
  for (auto& v : y) v = static_cast<float>(rng.normal());
  std::vector<float> ywide(colr * ld, 0.0f);
  for (std::size_t r = 0; r < colr; ++r)
    for (std::size_t c = 0; c < colc; ++c)
      ywide[r * ld + offset + c] = y[r * colc + c];

  std::vector<float> back_packed(x.size(), 0.0f), back_strided(x.size(), 0.0f);
  col2im(g, y.data(), back_packed.data());
  col2im(g, ywide.data() + offset, back_strided.data(), ld);
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_EQ(back_strided[i], back_packed[i]) << "i=" << i;
}

TEST(Im2col, OutputGeometry) {
  Conv2dGeometry g{1, 28, 28, 5, 5, 1, 2};
  EXPECT_EQ(g.out_h(), 28u);
  EXPECT_EQ(g.out_w(), 28u);
  Conv2dGeometry g2{1, 28, 28, 2, 2, 2, 0};
  EXPECT_EQ(g2.out_h(), 14u);
}

}  // namespace
}  // namespace fedl
