// Tests for the health plane added on top of the metrics registry: the
// per-epoch time-series recorder (including concurrent sampling, which the
// -L sanitize TSan run sweeps), the FNV-1a determinism digests and their
// cross-thread-count equality on a real seeded run, the online invariant
// monitor's edge-triggered firing, the Prometheus exposition golden, the
// run manifest registry, and the check-failure flush hook.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "harness/experiment.h"
#include "obs/digest.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/prometheus.h"
#include "obs/time_series.h"
#include "parallel/scheduler.h"

namespace fedl {
namespace {

// ---------------------------------------------------------------------------
// Digest primitives

TEST(Digest, Fnv1aMatchesReferenceVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(obs::fnv1a("", 0), obs::kFnvOffsetBasis);
  EXPECT_EQ(obs::fnv1a("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(obs::fnv1a("foobar", 6), 0x85944171f73967e8ULL);
}

TEST(Digest, HexIsFixedWidthLowercase) {
  EXPECT_EQ(obs::digest_hex(0), "0000000000000000");
  EXPECT_EQ(obs::digest_hex(0xaf63dc4c8601ec8cULL), "af63dc4c8601ec8c");
  EXPECT_EQ(obs::digest_hex(obs::kFnvOffsetBasis), "cbf29ce484222325");
}

// Chaining two updates must equal one pass over the concatenation — that is
// what makes digest_t depend on every byte of epochs 0..t.
TEST(Digest, ChainEqualsConcatenation) {
  obs::DigestChain chained;
  chained.update("foo", 3);
  chained.update("bar", 3);
  obs::DigestChain whole;
  whole.update("foobar", 6);
  EXPECT_EQ(chained.value(), whole.value());
  EXPECT_EQ(chained.value(), 0x85944171f73967e8ULL);
}

TEST(Digest, RunCombineIsXorAndOrderIndependent) {
  obs::reset_run_digests();
  EXPECT_EQ(obs::combined_run_digest(), 0u);
  EXPECT_EQ(obs::runs_digested(), 0u);
  obs::note_run_digest(0x1111u);
  obs::note_run_digest(0x0101u);
  EXPECT_EQ(obs::combined_run_digest(), 0x1111u ^ 0x0101u);
  EXPECT_EQ(obs::runs_digested(), 2u);
  obs::reset_run_digests();
  obs::note_run_digest(0x0101u);
  obs::note_run_digest(0x1111u);
  EXPECT_EQ(obs::combined_run_digest(), 0x1111u ^ 0x0101u);
  obs::reset_run_digests();
}

// ---------------------------------------------------------------------------
// Time-series recorder

obs::SeriesSnapshot find_series(const std::vector<obs::SeriesSnapshot>& all,
                                const std::string& name) {
  for (const auto& s : all)
    if (s.name == name) return s;
  ADD_FAILURE() << "series not in snapshot: " << name;
  return {};
}

TEST(TimeSeries, DisabledSamplingIsANoOp) {
  auto& rec = obs::TimeSeriesRecorder::global();
  rec.disable();
  const obs::Series series("test.ts_disabled");
  series.sample(1, 42.0);
  rec.enable(16);
  EXPECT_TRUE(find_series(rec.snapshot(), "test.ts_disabled").epochs.empty());
  rec.disable();
}

TEST(TimeSeries, RingWrapsDroppingOldestAndCounting) {
  auto& rec = obs::TimeSeriesRecorder::global();
  rec.enable(4);
  const obs::Series series("test.ts_wrap");
  for (std::uint64_t e = 1; e <= 6; ++e)
    series.sample(e, static_cast<double>(e) * 10.0);
  const auto snap = find_series(rec.snapshot(), "test.ts_wrap");
  EXPECT_EQ(snap.epochs, (std::vector<std::uint64_t>{3, 4, 5, 6}));
  EXPECT_EQ(snap.values, (std::vector<double>{30.0, 40.0, 50.0, 60.0}));
  EXPECT_EQ(snap.dropped, 2u);
  rec.disable();
}

TEST(TimeSeries, WriteJsonCarriesSchema) {
  auto& rec = obs::TimeSeriesRecorder::global();
  rec.enable(8);
  const obs::Series series("test.ts_json");
  series.sample(2, 1.5);
  std::ostringstream os;
  rec.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"capacity\":8"), std::string::npos);
  EXPECT_NE(json.find("\"test.ts_json\":{"), std::string::npos);
  EXPECT_NE(json.find("\"epochs\":[2]"), std::string::npos);
  EXPECT_NE(json.find("\"values\":[1.5]"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  rec.disable();
}

// The TSan sweep (-L sanitize) proves the sample path race-free: many
// threads hammering a few shared rings must account for every sample as
// either stored or dropped, with consistent parallel arrays.
TEST(TimeSeries, ConcurrentSamplingAccountsForEverySample) {
  auto& rec = obs::TimeSeriesRecorder::global();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 500;
  constexpr std::size_t kCapacity = 1024;
  rec.enable(kCapacity);
  const obs::Series a("test.ts_conc_a");
  const obs::Series b("test.ts_conc_b");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&a, &b, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        a.sample(t * kPerThread + i, static_cast<double>(i));
        b.sample(t * kPerThread + i, static_cast<double>(i) * 0.5);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const char* name : {"test.ts_conc_a", "test.ts_conc_b"}) {
    const auto snap = find_series(rec.snapshot(), name);
    EXPECT_EQ(snap.epochs.size(), snap.values.size()) << name;
    EXPECT_EQ(snap.epochs.size() + snap.dropped, kThreads * kPerThread)
        << name;
    EXPECT_EQ(snap.epochs.size(), kCapacity) << name;
  }
  rec.disable();
}

// ---------------------------------------------------------------------------
// Invariant monitor

obs::EpochSample pacing_sample(std::uint64_t epoch, double cost, double cap) {
  obs::EpochSample s;
  s.epoch = epoch;
  s.epoch_cost = cost;
  s.pacing_cap = cap;
  s.budget_spent = 10.0;
  s.budget_total = 1000.0;
  return s;
}

// The ISSUE's canonical case: a deliberately overdrawn pacing trace must
// yield exactly one anomaly, not one per epoch — the monitor is
// edge-triggered and re-arms only after recovery.
TEST(Monitor, OverdrawnPacingFiresExactlyOnce) {
  obs::InvariantMonitor monitor;
  std::size_t fired = 0;
  for (std::uint64_t e = 1; e <= 10; ++e) {
    const auto anomalies = monitor.on_epoch(pacing_sample(e, 20.0, 10.0));
    fired += anomalies.size();
    for (const auto& a : anomalies) {
      EXPECT_EQ(a.monitor, "budget_pacing");
      EXPECT_EQ(a.epoch, 1u);
      EXPECT_DOUBLE_EQ(a.observed, 20.0);
    }
  }
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(monitor.anomalies_fired(), 1u);

  // Recovery re-arms: a healthy epoch, then a new violation fires again.
  EXPECT_TRUE(monitor.on_epoch(pacing_sample(11, 5.0, 10.0)).empty());
  const auto again = monitor.on_epoch(pacing_sample(12, 30.0, 10.0));
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].epoch, 12u);
}

TEST(Monitor, PacingToleranceAbsorbsRoundingOvershoot) {
  obs::InvariantMonitor monitor;  // default tolerance 5%
  EXPECT_TRUE(monitor.on_epoch(pacing_sample(1, 10.4, 10.0)).empty());
  EXPECT_EQ(monitor.on_epoch(pacing_sample(2, 10.6, 10.0)).size(), 1u);
}

TEST(Monitor, HardBudgetOverdrawFires) {
  obs::InvariantMonitor monitor;
  obs::EpochSample s;
  s.epoch = 3;
  s.epoch_cost = 1.0;
  s.budget_spent = 101.0;
  s.budget_total = 100.0;
  const auto fired = monitor.on_epoch(s);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].monitor, "budget_pacing");
  EXPECT_DOUBLE_EQ(fired[0].observed, 101.0);
  EXPECT_DOUBLE_EQ(fired[0].limit, 100.0);
}

TEST(Monitor, RegretEnvelopeFiresAndSkipsInfiniteBound) {
  obs::InvariantMonitor monitor;
  obs::EpochSample inf_bound;
  inf_bound.epoch = 1;
  inf_bound.regret = 1e9;
  inf_bound.regret_bound = std::numeric_limits<double>::infinity();
  // Lemma 2 degenerate regime: the theorem promises nothing, no anomaly.
  EXPECT_TRUE(monitor.on_epoch(inf_bound).empty());

  obs::EpochSample bad;
  bad.epoch = 2;
  bad.regret = 50.0;
  bad.regret_bound = 40.0;
  const auto fired = monitor.on_epoch(bad);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].monitor, "regret_envelope");
  EXPECT_DOUBLE_EQ(fired[0].limit, 40.0);
}

TEST(Monitor, EstimatorRangeAndDriftFire) {
  obs::InvariantMonitor range_monitor;
  obs::EpochSample out_of_range;
  out_of_range.epoch = 1;
  out_of_range.eta_max = 1.5;  // realized η̂ is clamped below 1 by DANE
  const auto range_fired = range_monitor.on_epoch(out_of_range);
  ASSERT_EQ(range_fired.size(), 1u);
  EXPECT_EQ(range_fired[0].monitor, "estimator_drift");

  // A non-converging estimate: η̂ oscillating 0↔1 keeps the |Δη̂| EMA at 1,
  // far over the default 0.25 threshold once the warmup passes.
  obs::InvariantMonitor drift_monitor;
  std::size_t fired = 0;
  for (std::uint64_t e = 1; e <= 20; ++e) {
    obs::EpochSample s;
    s.epoch = e;
    s.eta_max = (e % 2 == 0) ? 1.0 : 0.0;
    fired += drift_monitor.on_epoch(s).size();
  }
  EXPECT_EQ(fired, 1u);  // edge-triggered: persistent drift is one anomaly
}

TEST(Monitor, DropoutWindowMustFillBeforeFiring) {
  obs::MonitorConfig cfg;
  cfg.dropout_window = 4;
  cfg.dropout_threshold = 0.5;
  obs::InvariantMonitor monitor(cfg);
  std::size_t fired = 0;
  for (std::uint64_t e = 1; e <= 4; ++e) {
    obs::EpochSample s;
    s.epoch = e;
    s.num_selected = 4.0;
    s.num_dropped = 4.0;  // 100% dropout every epoch
    const auto anomalies = monitor.on_epoch(s);
    fired += anomalies.size();
    if (e < 4) EXPECT_TRUE(anomalies.empty()) << "fired before window filled";
  }
  EXPECT_EQ(fired, 1u);
}

TEST(Monitor, AllAbsentInputsFireNothing) {
  obs::InvariantMonitor monitor;
  for (std::uint64_t e = 1; e <= 5; ++e) {
    obs::EpochSample s;
    s.epoch = e;
    EXPECT_TRUE(monitor.on_epoch(s).empty());
  }
  EXPECT_EQ(monitor.anomalies_fired(), 0u);
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(Prometheus, SanitizeNamePrefixesAndReplacesDots) {
  EXPECT_EQ(obs::PrometheusWriter::sanitize_name("fl.test_loss"),
            "fedl_fl_test_loss");
  EXPECT_EQ(obs::PrometheusWriter::sanitize_name("obs.anomaly.total"),
            "fedl_obs_anomaly_total");
}

// Golden exposition for one hand-built snapshot: counters and gauges map
// 1:1, registry histograms (disjoint buckets) become cumulative `le`
// buckets plus _sum/_count.
TEST(Prometheus, GoldenExposition) {
  obs::MetricsSnapshot snap;
  snap.counters["gemm.calls"] = 7;
  snap.gauges["learner.rho"] = 2.5;
  obs::HistogramSnapshot h;
  h.bounds = {1.0, 2.0};
  h.counts = {3, 0, 1};  // disjoint; overflow bucket holds 1
  h.total = 4;
  h.sum = 6.0;
  snap.histograms["fl.latency"] = h;

  std::ostringstream os;
  obs::PrometheusWriter::write(snap, os);
  EXPECT_EQ(os.str(),
            "# TYPE fedl_gemm_calls counter\n"
            "fedl_gemm_calls 7\n"
            "# TYPE fedl_learner_rho gauge\n"
            "fedl_learner_rho 2.5\n"
            "# TYPE fedl_fl_latency histogram\n"
            "fedl_fl_latency_bucket{le=\"1\"} 3\n"
            "fedl_fl_latency_bucket{le=\"2\"} 3\n"
            "fedl_fl_latency_bucket{le=\"+Inf\"} 4\n"
            "fedl_fl_latency_sum 6\n"
            "fedl_fl_latency_count 4\n");
}

TEST(Prometheus, WriteFileReplacesAtomically) {
  const std::string path =
      std::string(::testing::TempDir()) + "/obs_health_prom_test.prom";
  obs::MetricsSnapshot snap;
  snap.counters["a.b"] = 1;
  obs::PrometheusWriter::write_file(snap, path);
  // Overwrite (the periodic-flush path) — must replace, not append.
  snap.counters["a.b"] = 2;
  obs::PrometheusWriter::write_file(snap, path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "# TYPE fedl_a_b counter\nfedl_a_b 2\n");
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temp file left behind after rename";
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Run manifest

TEST(Manifest, FieldsAreLastWriteWinsAndTyped) {
  obs::clear_manifest_fields();
  obs::set_manifest_field("gemm_kernel", "avx2");
  obs::set_manifest_field("gemm_kernel", "avx512");
  obs::set_manifest_field("seed", std::uint64_t{7});
  obs::set_manifest_field("scale", 0.25);
  const auto fields = obs::manifest_fields();
  EXPECT_EQ(fields.at("gemm_kernel"), "avx512");
  EXPECT_EQ(fields.at("seed"), "7");
  EXPECT_EQ(fields.at("scale"), "0.25");
  obs::clear_manifest_fields();
}

TEST(Manifest, WriteCarriesSchemaCleanFlagAndDigest) {
  obs::clear_manifest_fields();
  obs::reset_run_digests();
  obs::note_run_digest(0xaf63dc4c8601ec8cULL);
  obs::set_manifest_field("algorithm", "fedl");

  std::ostringstream clean_os;
  obs::write_manifest(clean_os, /*clean=*/true);
  const std::string clean = clean_os.str();
  EXPECT_NE(clean.find("\"schema\":\"fedl-manifest-v1\""), std::string::npos);
  EXPECT_NE(clean.find("\"clean\":true"), std::string::npos);
  EXPECT_NE(clean.find("\"build_type\":"), std::string::npos);
  EXPECT_NE(clean.find("\"final_digest\":\"af63dc4c8601ec8c\""),
            std::string::npos);
  EXPECT_NE(clean.find("\"runs_digested\":1"), std::string::npos);
  EXPECT_NE(clean.find("\"algorithm\":\"fedl\""), std::string::npos);

  // The crash-flush path writes the same document flagged dirty.
  std::ostringstream dirty_os;
  obs::write_manifest(dirty_os, /*clean=*/false);
  EXPECT_NE(dirty_os.str().find("\"clean\":false"), std::string::npos);
  obs::clear_manifest_fields();
  obs::reset_run_digests();
}

// ---------------------------------------------------------------------------
// Check-failure hook (the crash-flush entry point)

std::atomic<int>& hook_calls() {
  static std::atomic<int> calls{0};
  return calls;
}
void counting_hook() { hook_calls().fetch_add(1); }

TEST(CheckFailureHook, RunsBeforeCheckErrorPropagates) {
  set_check_failure_hook(&counting_hook);
  hook_calls().store(0);
  bool threw = false;
  try {
    FEDL_CHECK(1 + 1 == 3) << "deliberate failure";
  } catch (const CheckError& e) {
    threw = true;
    // The hook fired before the throw, so a crash-flush would have seen
    // the artifacts before termination.
    EXPECT_EQ(hook_calls().load(), 1);
    EXPECT_NE(std::string(e.what()).find("deliberate failure"),
              std::string::npos);
  }
  EXPECT_TRUE(threw);
  set_check_failure_hook(nullptr);
  hook_calls().store(0);
  try {
    FEDL_CHECK(false) << "hook unregistered";
  } catch (const CheckError&) {
  }
  EXPECT_EQ(hook_calls().load(), 0);
}

// ---------------------------------------------------------------------------
// Determinism digests on a real run

harness::ScenarioConfig tiny_digest_config() {
  harness::ScenarioConfig cfg;
  cfg.num_clients = 6;
  cfg.n_min = 2;
  cfg.budget = 150.0;
  cfg.max_epochs = 3;
  cfg.train_samples = 120;
  cfg.test_samples = 40;
  cfg.width_scale = 0.05;
  cfg.eval_cap = 32;
  cfg.seed = 11;
  cfg.record_digests = true;
  return cfg;
}

std::vector<std::uint64_t> run_digests(harness::ScenarioConfig cfg) {
  harness::Experiment exp(cfg);
  auto strat = harness::make_strategy("fedl", cfg);
  return exp.run(*strat).epoch_digests;
}

// The acceptance pin: per-epoch digest chains must be identical for any
// --jobs/--threads combination. Serial run vs a 4-wide engine fan-out vs a
// scheduler grid running four replicas concurrently (auto fan-out) must all
// produce the same chain.
TEST(Digest, EqualAcrossThreadAndJobCombinations) {
  harness::ScenarioConfig serial_cfg = tiny_digest_config();
  serial_cfg.num_threads = 1;
  const std::vector<std::uint64_t> serial = run_digests(serial_cfg);
  ASSERT_FALSE(serial.empty());
  for (std::size_t i = 1; i < serial.size(); ++i)
    EXPECT_NE(serial[i], serial[i - 1]) << "chain must advance every epoch";

  harness::ScenarioConfig threaded_cfg = tiny_digest_config();
  threaded_cfg.num_threads = 4;
  EXPECT_EQ(run_digests(threaded_cfg), serial);

  // Four concurrent scheduler trials (--jobs 4 --threads 0 in the benches).
  Scheduler::instance().configure(/*budget=*/4, /*jobs=*/4);
  std::vector<std::vector<std::uint64_t>> grid(4);
  Scheduler::instance().run_trials(4, [&](std::size_t i) {
    harness::ScenarioConfig cfg = tiny_digest_config();
    cfg.num_threads = 0;  // draw fan-out from the scheduler budget
    grid[i] = run_digests(cfg);
  });
  Scheduler::instance().configure(0, 1);
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_EQ(grid[i], serial) << "trial " << i << " diverged";
}

// Digest trace records must round-trip through the JSONL trace with chain
// continuity (prev_t == digest_{t-1}), which scripts/validate_trace.py
// checks offline.
TEST(Digest, TraceRecordsChainContinuously) {
  const std::string path =
      std::string(::testing::TempDir()) + "/obs_health_digest_trace.jsonl";
  std::remove(path.c_str());
  harness::ScenarioConfig cfg = tiny_digest_config();
  cfg.trace_out = path;
  harness::Experiment exp(cfg);
  auto strat = harness::make_strategy("fedl", cfg);
  const auto res = exp.run(*strat);
  ASSERT_FALSE(res.epoch_digests.empty());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> prevs;
  std::vector<std::string> digests;
  auto field = [](const std::string& l, const std::string& key) {
    const auto pos = l.find("\"" + key + "\":\"");
    if (pos == std::string::npos) return std::string();
    const auto start = pos + key.size() + 4;
    return l.substr(start, l.find('"', start) - start);
  };
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"digest\"") == std::string::npos) continue;
    EXPECT_NE(line.find("\"hash\":\"fnv1a64\""), std::string::npos);
    prevs.push_back(field(line, "prev"));
    digests.push_back(field(line, "digest"));
  }
  ASSERT_EQ(digests.size(), res.epoch_digests.size());
  EXPECT_EQ(prevs.front(), obs::digest_hex(obs::kFnvOffsetBasis));
  for (std::size_t i = 0; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], obs::digest_hex(res.epoch_digests[i]));
    if (i > 0) EXPECT_EQ(prevs[i], digests[i - 1]) << "chain broken at " << i;
  }
  std::remove(path.c_str());
}

// A healthy seeded run with the monitor armed must stay anomaly-free — the
// acceptance criterion's zero-anomalies pin, in miniature.
TEST(Monitor, HealthySeededRunFiresNothing) {
  harness::ScenarioConfig cfg = tiny_digest_config();
  cfg.record_digests = false;
  cfg.monitor = true;
  harness::Experiment exp(cfg);
  auto strat = harness::make_strategy("fedl", cfg);
  const auto res = exp.run(*strat);
  ASSERT_GT(res.epochs_run, 0u);
  EXPECT_TRUE(res.anomalies.empty());
}

}  // namespace
}  // namespace fedl
