// Edge-case tests for the online learner and FedL strategy: degenerate
// availability, extreme duals, fraction stability, fairness warm-up, and
// the ρ/η conversions at their boundaries.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fedl_strategy.h"
#include "core/online_learner.h"

namespace fedl::core {
namespace {

sim::EpochContext ctx_with(std::vector<sim::ClientObservation> obs) {
  sim::EpochContext ctx;
  ctx.epoch = 1;
  ctx.available = std::move(obs);
  return ctx;
}

sim::ClientObservation client(std::size_t id, double cost, double tau) {
  sim::ClientObservation o;
  o.id = id;
  o.cost = cost;
  o.data_size = 10;
  o.tau_loc = tau;
  o.tau_cm_est = 0.1;
  return o;
}

LearnerConfig cfg_n(std::size_t n) {
  LearnerConfig cfg;
  cfg.n_min = n;
  return cfg;
}

TEST(LearnerEdge, SingleAvailableClient) {
  OnlineLearner learner(5, cfg_n(3));
  BudgetLedger budget(100.0);
  const auto dec = learner.decide(ctx_with({client(2, 1.0, 0.5)}), budget);
  ASSERT_EQ(dec.ids.size(), 1u);
  // Σx ≥ min(n, |E|) = 1 forces full selection of the only client.
  EXPECT_NEAR(dec.x[0], 1.0, 1e-6);
}

TEST(LearnerEdge, NMinEqualsAvailableForcesEveryone) {
  OnlineLearner learner(4, cfg_n(4));
  BudgetLedger budget(1000.0);
  const auto dec = learner.decide(
      ctx_with({client(0, 1, 0.2), client(1, 1, 0.4), client(2, 1, 0.6),
                client(3, 1, 0.8)}),
      budget);
  double sum = 0.0;
  for (double x : dec.x) sum += x;
  EXPECT_GE(sum, 4.0 - 1e-4);
}

TEST(LearnerEdge, FractionsStayInBoxOverManyEpochs) {
  OnlineLearner learner(6, cfg_n(2));
  BudgetLedger budget(1e6);
  const auto ctx = ctx_with({client(0, 1, 0.1), client(1, 2, 0.2),
                             client(2, 3, 0.3), client(3, 4, 0.4),
                             client(4, 5, 0.5), client(5, 6, 0.6)});
  for (int t = 0; t < 30; ++t) {
    const auto dec = learner.decide(ctx, budget);
    for (double x : dec.x) {
      EXPECT_GE(x, -1e-9);
      EXPECT_LE(x, 1.0 + 1e-9);
    }
    EXPECT_GE(dec.rho, 1.0);
    fl::EpochOutcome out;
    out.selected = {0};
    out.num_iterations = 1;
    out.client_eta = {0.5};
    out.client_loss_reduction = {0.1};
    out.train_loss_all = 2.0;  // persistent violation: duals keep growing
    learner.observe(ctx, dec, out);
  }
  // Duals grew for 30 epochs of violation; ρ must be pushed up but stay
  // within its cap.
  EXPECT_LE(learner.rho(), learner.config().rho_max + 1e-9);
  EXPECT_GT(learner.mu()[0], 1.0);
}

TEST(LearnerEdge, SatisfiedConstraintDrivesMuToZero) {
  LearnerConfig cfg = cfg_n(1);
  cfg.delta = 0.5;
  OnlineLearner learner(2, cfg);
  BudgetLedger budget(100.0);
  const auto ctx = ctx_with({client(0, 1, 0.1), client(1, 1, 0.2)});

  // First: violate to build up μ0.
  auto frac = learner.decide(ctx, budget);
  fl::EpochOutcome bad;
  bad.train_loss_all = 3.0;
  learner.observe(ctx, frac, bad);
  const double mu_high = learner.mu()[0];
  EXPECT_GT(mu_high, 0.0);

  // Then: persistently satisfied -> the positive-part update bleeds μ0 off.
  fl::EpochOutcome good;
  good.train_loss_all = 0.0;  // h0 = −θ < 0
  for (int t = 0; t < 30; ++t) {
    frac = learner.decide(ctx, budget);
    learner.observe(ctx, frac, good);
  }
  EXPECT_EQ(learner.mu()[0], 0.0);
}

TEST(LearnerEdge, HigherDeltaEstimateRaisesSelectionPressure) {
  // Two identical clients except the learned Δ̂; with an active convergence
  // constraint the high-Δ̂ client must end with at least the fraction of the
  // low-Δ̂ one.
  LearnerConfig cfg = cfg_n(1);
  cfg.ema = 1.0;
  OnlineLearner learner(2, cfg);
  BudgetLedger budget(1000.0);
  const auto ctx = ctx_with({client(0, 1, 0.5), client(1, 1, 0.5)});
  for (int t = 0; t < 12; ++t) {
    const auto frac = learner.decide(ctx, budget);
    fl::EpochOutcome out;
    out.selected = {0, 1};
    out.num_iterations = 1;
    out.client_eta = {0.5, 0.5};
    out.client_loss_reduction = {0.5, 0.01};  // client 0 is far more useful
    out.train_loss_all = 2.0;                 // θ violated -> μ0 active
    learner.observe(ctx, frac, out);
  }
  EXPECT_GE(learner.x_fraction(0), learner.x_fraction(1) - 1e-6);
  EXPECT_GT(learner.delta_estimate(0), learner.delta_estimate(1));
}

TEST(LearnerEdge, ZeroBudgetRemainingStillWellDefined) {
  OnlineLearner learner(3, cfg_n(2));
  BudgetLedger budget(10.0);
  budget.charge(10.0);  // remaining == 0
  const auto dec = learner.decide(
      ctx_with({client(0, 1, 0.1), client(1, 1, 0.2), client(2, 1, 0.3)}),
      budget);
  // Fractions exist (the cap floors at the cheapest-n heuristic); the
  // integer-level repair in FedLStrategy is what enforces the hard budget.
  ASSERT_EQ(dec.x.size(), 3u);
  for (double x : dec.x) EXPECT_TRUE(std::isfinite(x));
}

// --- FedL strategy edges -------------------------------------------------------

TEST(FedLEdge, EmptyEpochYieldsEmptyDecision) {
  FedLConfig fc;
  fc.learner.n_min = 2;
  FedLStrategy s(4, fc);
  BudgetLedger budget(100.0);
  sim::EpochContext ctx;
  const auto dec = s.decide(ctx, budget);
  EXPECT_TRUE(dec.selected.empty());
}

TEST(FedLEdge, FairnessInactiveDuringWarmup) {
  FedLConfig fc;
  fc.learner.n_min = 1;
  fc.fairness.enabled = true;
  fc.fairness.min_rate = 0.9;  // aggressive quota
  fc.fairness.warmup_epochs = 1000;  // never leaves warm-up
  FedLStrategy with_warmup(4, fc);
  fc.fairness.enabled = false;
  FedLStrategy without(4, fc);

  BudgetLedger b1(1e6), b2(1e6);
  const auto ctx = ctx_with({client(0, 1, 0.1), client(1, 1, 2.0),
                             client(2, 1, 2.0), client(3, 1, 2.0)});
  for (int t = 0; t < 8; ++t) {
    const auto d1 = with_warmup.decide(ctx, b1);
    const auto d2 = without.decide(ctx, b2);
    EXPECT_EQ(d1.selected, d2.selected) << "epoch " << t;
    fl::EpochOutcome out;
    out.selected = d1.selected;
    out.num_iterations = d1.num_iterations;
    out.client_eta.assign(d1.selected.size(), 0.5);
    out.client_loss_reduction.assign(d1.selected.size(), 0.1);
    out.train_loss_all = 0.3;
    with_warmup.observe(ctx, d1, out);
    without.observe(ctx, d2, out);
  }
}

TEST(FedLEdge, ParticipationTrackerCountsEveryEpoch) {
  FedLConfig fc;
  fc.learner.n_min = 1;
  FedLStrategy s(3, fc);
  BudgetLedger budget(1e6);
  const auto ctx =
      ctx_with({client(0, 1, 0.1), client(1, 1, 0.2), client(2, 1, 0.3)});
  for (int t = 0; t < 5; ++t) {
    const auto d = s.decide(ctx, budget);
    fl::EpochOutcome out;
    out.selected = d.selected;
    out.train_loss_all = 0.5;
    s.observe(ctx, d, out);
  }
  EXPECT_EQ(s.participation().epochs(), 5u);
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_EQ(s.participation().availabilities(k), 5u);
}

TEST(FedLEdge, IterationCountRespectsLMax) {
  FedLConfig fc;
  fc.learner.n_min = 1;
  fc.l_max = 3;
  fc.learner.rho_max = 50.0;  // learner may push ρ beyond l_max
  FedLStrategy s(2, fc);
  BudgetLedger budget(1e6);
  const auto ctx = ctx_with({client(0, 1, 0.1), client(1, 1, 0.2)});
  for (int t = 0; t < 20; ++t) {
    const auto d = s.decide(ctx, budget);
    EXPECT_LE(d.num_iterations, 3u);
    fl::EpochOutcome out;
    out.selected = d.selected;
    out.num_iterations = d.num_iterations;
    out.client_eta.assign(d.selected.size(), 0.99);  // demands huge ρ
    out.client_loss_reduction.assign(d.selected.size(), 0.01);
    out.train_loss_all = 3.0;
    s.observe(ctx, d, out);
  }
}

}  // namespace
}  // namespace fedl::core
