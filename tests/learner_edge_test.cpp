// Edge-case tests for the online learner and FedL strategy: degenerate
// availability, extreme duals, fraction stability, fairness warm-up, and
// the ρ/η conversions at their boundaries.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fedl_strategy.h"
#include "core/online_learner.h"

namespace fedl::core {
namespace {

sim::EpochContext ctx_with(std::vector<sim::ClientObservation> obs) {
  sim::EpochContext ctx;
  ctx.epoch = 1;
  ctx.available = std::move(obs);
  return ctx;
}

sim::ClientObservation client(std::size_t id, double cost, double tau) {
  sim::ClientObservation o;
  o.id = id;
  o.cost = cost;
  o.data_size = 10;
  o.tau_loc = tau;
  o.tau_cm_est = 0.1;
  return o;
}

LearnerConfig cfg_n(std::size_t n) {
  LearnerConfig cfg;
  cfg.n_min = n;
  return cfg;
}

TEST(LearnerEdge, SingleAvailableClient) {
  OnlineLearner learner(5, cfg_n(3));
  BudgetLedger budget(100.0);
  const auto dec = learner.decide(ctx_with({client(2, 1.0, 0.5)}), budget);
  ASSERT_EQ(dec.ids.size(), 1u);
  // Σx ≥ min(n, |E|) = 1 forces full selection of the only client.
  EXPECT_NEAR(dec.x[0], 1.0, 1e-6);
}

TEST(LearnerEdge, NMinEqualsAvailableForcesEveryone) {
  OnlineLearner learner(4, cfg_n(4));
  BudgetLedger budget(1000.0);
  const auto dec = learner.decide(
      ctx_with({client(0, 1, 0.2), client(1, 1, 0.4), client(2, 1, 0.6),
                client(3, 1, 0.8)}),
      budget);
  double sum = 0.0;
  for (double x : dec.x) sum += x;
  EXPECT_GE(sum, 4.0 - 1e-4);
}

TEST(LearnerEdge, FractionsStayInBoxOverManyEpochs) {
  OnlineLearner learner(6, cfg_n(2));
  BudgetLedger budget(1e6);
  const auto ctx = ctx_with({client(0, 1, 0.1), client(1, 2, 0.2),
                             client(2, 3, 0.3), client(3, 4, 0.4),
                             client(4, 5, 0.5), client(5, 6, 0.6)});
  for (int t = 0; t < 30; ++t) {
    const auto dec = learner.decide(ctx, budget);
    for (double x : dec.x) {
      EXPECT_GE(x, -1e-9);
      EXPECT_LE(x, 1.0 + 1e-9);
    }
    EXPECT_GE(dec.rho, 1.0);
    fl::EpochOutcome out;
    out.selected = {0};
    out.num_iterations = 1;
    out.client_eta = {0.5};
    out.client_loss_reduction = {0.1};
    out.train_loss_all = 2.0;  // persistent violation: duals keep growing
    learner.observe(ctx, dec, out);
  }
  // Duals grew for 30 epochs of violation; ρ must be pushed up but stay
  // within its cap.
  EXPECT_LE(learner.rho(), learner.config().rho_max + 1e-9);
  EXPECT_GT(learner.mu0(), 1.0);
}

TEST(LearnerEdge, SatisfiedConstraintDrivesMuToZero) {
  LearnerConfig cfg = cfg_n(1);
  cfg.delta = 0.5;
  OnlineLearner learner(2, cfg);
  BudgetLedger budget(100.0);
  const auto ctx = ctx_with({client(0, 1, 0.1), client(1, 1, 0.2)});

  // First: violate to build up μ0.
  auto frac = learner.decide(ctx, budget);
  fl::EpochOutcome bad;
  bad.train_loss_all = 3.0;
  learner.observe(ctx, frac, bad);
  const double mu_high = learner.mu0();
  EXPECT_GT(mu_high, 0.0);

  // Then: persistently satisfied -> the positive-part update bleeds μ0 off.
  fl::EpochOutcome good;
  good.train_loss_all = 0.0;  // h0 = −θ < 0
  for (int t = 0; t < 30; ++t) {
    frac = learner.decide(ctx, budget);
    learner.observe(ctx, frac, good);
  }
  EXPECT_EQ(learner.mu0(), 0.0);
}

TEST(LearnerEdge, HigherDeltaEstimateRaisesSelectionPressure) {
  // Two identical clients except the learned Δ̂; with an active convergence
  // constraint the high-Δ̂ client must end with at least the fraction of the
  // low-Δ̂ one.
  LearnerConfig cfg = cfg_n(1);
  cfg.ema = 1.0;
  OnlineLearner learner(2, cfg);
  BudgetLedger budget(1000.0);
  const auto ctx = ctx_with({client(0, 1, 0.5), client(1, 1, 0.5)});
  for (int t = 0; t < 12; ++t) {
    const auto frac = learner.decide(ctx, budget);
    fl::EpochOutcome out;
    out.selected = {0, 1};
    out.num_iterations = 1;
    out.client_eta = {0.5, 0.5};
    out.client_loss_reduction = {0.5, 0.01};  // client 0 is far more useful
    out.train_loss_all = 2.0;                 // θ violated -> μ0 active
    learner.observe(ctx, frac, out);
  }
  EXPECT_GE(learner.x_fraction(0), learner.x_fraction(1) - 1e-6);
  EXPECT_GT(learner.delta_estimate(0), learner.delta_estimate(1));
}

TEST(LearnerEdge, ZeroBudgetRemainingYieldsEmptyDecision) {
  OnlineLearner learner(3, cfg_n(2));
  BudgetLedger budget(10.0);
  budget.charge(10.0);  // remaining == 0: not even one client is affordable
  const auto dec = learner.decide(
      ctx_with({client(0, 1, 0.1), client(1, 1, 0.2), client(2, 1, 0.3)}),
      budget);
  // Handing the prox solver Σx ≥ n alongside Σc·x ≤ 0 would be contradictory;
  // the learner must instead declare the epoch infeasible.
  EXPECT_TRUE(dec.ids.empty());
  EXPECT_TRUE(dec.x.empty());
}

TEST(LearnerEdge, ExhaustedBudgetShrinksParticipationFloor) {
  // remaining = 2.5 affords only the cheapest client (1.0; adding the next
  // at 2.0 overshoots). The learner must shrink n_eff to that affordable
  // prefix instead of building an infeasible set, and the resulting plan
  // must itself respect the remaining budget.
  OnlineLearner learner(3, cfg_n(3));
  BudgetLedger budget(100.0);
  budget.charge(97.5);
  const auto dec = learner.decide(
      ctx_with({client(0, 1.0, 0.1), client(1, 2.0, 0.2),
                client(2, 5.0, 0.3)}),
      budget);
  ASSERT_EQ(dec.x.size(), 3u);
  double planned = 0.0;
  const double costs[] = {1.0, 2.0, 5.0};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(dec.x[i]));
    planned += dec.x[i] * costs[i];
  }
  EXPECT_LE(planned, budget.remaining() + 1e-6);
}

TEST(LearnerEdge, LedgerNeverOverdrawsUnderFedL) {
  // Regression for the budget-exhaustion infeasibility: drive FedL until its
  // decisions go empty and verify the ledger never spends past the total.
  FedLConfig fc;
  fc.learner.n_min = 2;
  FedLStrategy s(4, fc);
  BudgetLedger budget(10.0);
  const auto ctx = ctx_with({client(0, 1.5, 0.1), client(1, 2.0, 0.2),
                             client(2, 2.5, 0.3), client(3, 3.0, 0.4)});
  for (int t = 0; t < 50; ++t) {
    const auto d = s.decide(ctx, budget);
    double epoch_cost = 0.0;
    for (std::size_t id : d.selected) epoch_cost += ctx.find(id)->cost;
    ASSERT_LE(epoch_cost, budget.remaining() + 1e-9) << "epoch " << t;
    budget.charge(epoch_cost);
    fl::EpochOutcome out;
    out.selected = d.selected;
    out.num_iterations = d.selected.empty() ? 0 : 1;
    out.client_eta.assign(d.selected.size(), 0.5);
    out.client_loss_reduction.assign(d.selected.size(), 0.1);
    out.client_completed_iters.assign(d.selected.size(), 1);
    out.train_loss_all = 1.0;
    s.observe(ctx, d, out);
    if (d.selected.empty()) break;
  }
  EXPECT_LE(budget.spent(), budget.total() + 1e-9);
}

TEST(LearnerEdge, ZeroCompletedIterationsLeaveEstimatesUntouched) {
  // A client that died before finishing one DANE iteration reports η = 0 as
  // a placeholder; EMAing that in would make flaky clients look like fast
  // convergers (η̂ → 0). The learner must skip the update entirely.
  LearnerConfig cfg = cfg_n(1);
  cfg.ema = 1.0;  // any accepted observation fully overwrites the estimate
  OnlineLearner learner(2, cfg);
  BudgetLedger budget(100.0);
  const auto ctx = ctx_with({client(0, 1, 0.1), client(1, 1, 0.2)});
  const double eta0 = learner.eta_estimate(0);
  const double delta0 = learner.delta_estimate(0);

  const auto frac = learner.decide(ctx, budget);
  fl::EpochOutcome out;
  out.selected = {0, 1};
  out.num_iterations = 3;
  out.client_eta = {0.0, 0.7};             // client 0 dropped at iteration 0
  out.client_loss_reduction = {0.0, 0.6};
  out.client_completed_iters = {0, 3};
  out.train_loss_all = 1.0;
  learner.observe(ctx, frac, out);

  EXPECT_EQ(learner.eta_estimate(0), eta0);
  EXPECT_EQ(learner.delta_estimate(0), delta0);
  EXPECT_NEAR(learner.eta_estimate(1), 0.7, 1e-12);
  EXPECT_NEAR(learner.delta_estimate(1), 0.2, 1e-12);  // 0.6 over 3 iters
}

TEST(LearnerEdge, DeltaEstimateDividesByClientCompletedIters) {
  // A client that completed 2 of the epoch's 4 iterations accumulated its
  // reduction over exactly those 2 — dividing by the epoch-wide count would
  // bias Δ̂ low by 2x.
  LearnerConfig cfg = cfg_n(1);
  cfg.ema = 1.0;
  OnlineLearner learner(1, cfg);
  BudgetLedger budget(100.0);
  const auto ctx = ctx_with({client(0, 1, 0.1)});
  const auto frac = learner.decide(ctx, budget);
  fl::EpochOutcome out;
  out.selected = {0};
  out.num_iterations = 4;
  out.client_eta = {0.5};
  out.client_loss_reduction = {0.8};  // accumulated over 2 completed iters
  out.client_completed_iters = {2};
  out.train_loss_all = 1.0;
  learner.observe(ctx, frac, out);
  EXPECT_NEAR(learner.delta_estimate(0), 0.4, 1e-12);
}

// --- FedL strategy edges -------------------------------------------------------

TEST(FedLEdge, EmptyEpochYieldsEmptyDecision) {
  FedLConfig fc;
  fc.learner.n_min = 2;
  FedLStrategy s(4, fc);
  BudgetLedger budget(100.0);
  sim::EpochContext ctx;
  const auto dec = s.decide(ctx, budget);
  EXPECT_TRUE(dec.selected.empty());
}

TEST(FedLEdge, FairnessInactiveDuringWarmup) {
  FedLConfig fc;
  fc.learner.n_min = 1;
  fc.fairness.enabled = true;
  fc.fairness.min_rate = 0.9;  // aggressive quota
  fc.fairness.warmup_epochs = 1000;  // never leaves warm-up
  FedLStrategy with_warmup(4, fc);
  fc.fairness.enabled = false;
  FedLStrategy without(4, fc);

  BudgetLedger b1(1e6), b2(1e6);
  const auto ctx = ctx_with({client(0, 1, 0.1), client(1, 1, 2.0),
                             client(2, 1, 2.0), client(3, 1, 2.0)});
  for (int t = 0; t < 8; ++t) {
    const auto d1 = with_warmup.decide(ctx, b1);
    const auto d2 = without.decide(ctx, b2);
    EXPECT_EQ(d1.selected, d2.selected) << "epoch " << t;
    fl::EpochOutcome out;
    out.selected = d1.selected;
    out.num_iterations = d1.num_iterations;
    out.client_eta.assign(d1.selected.size(), 0.5);
    out.client_loss_reduction.assign(d1.selected.size(), 0.1);
    out.train_loss_all = 0.3;
    with_warmup.observe(ctx, d1, out);
    without.observe(ctx, d2, out);
  }
}

TEST(FedLEdge, ParticipationTrackerCountsEveryEpoch) {
  FedLConfig fc;
  fc.learner.n_min = 1;
  FedLStrategy s(3, fc);
  BudgetLedger budget(1e6);
  const auto ctx =
      ctx_with({client(0, 1, 0.1), client(1, 1, 0.2), client(2, 1, 0.3)});
  for (int t = 0; t < 5; ++t) {
    const auto d = s.decide(ctx, budget);
    fl::EpochOutcome out;
    out.selected = d.selected;
    out.train_loss_all = 0.5;
    s.observe(ctx, d, out);
  }
  EXPECT_EQ(s.participation().epochs(), 5u);
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_EQ(s.participation().availabilities(k), 5u);
}

TEST(FedLEdge, IterationCountRespectsLMax) {
  FedLConfig fc;
  fc.learner.n_min = 1;
  fc.l_max = 3;
  fc.learner.rho_max = 50.0;  // learner may push ρ beyond l_max
  FedLStrategy s(2, fc);
  BudgetLedger budget(1e6);
  const auto ctx = ctx_with({client(0, 1, 0.1), client(1, 1, 0.2)});
  for (int t = 0; t < 20; ++t) {
    const auto d = s.decide(ctx, budget);
    EXPECT_LE(d.num_iterations, 3u);
    fl::EpochOutcome out;
    out.selected = d.selected;
    out.num_iterations = d.num_iterations;
    out.client_eta.assign(d.selected.size(), 0.99);  // demands huge ρ
    out.client_loss_reduction.assign(d.selected.size(), 0.01);
    out.train_loss_all = 3.0;
    s.observe(ctx, d, out);
  }
}

// Runs `epochs` decide/observe cycles against a 6-client roster with a
// width-2 pruned solve (client 0 is the cheapest, so it owns the floor
// slot; one utility slot remains) and returns the set of client ids that
// ever made it into the candidate list. Client 1's feedback carries a much
// larger loss reduction than everyone else's, so the pure-exploit score
// locks the utility slot onto it after the first observation.
std::vector<bool> candidate_coverage(double width_explore,
                                     std::size_t epochs) {
  LearnerConfig cfg;
  cfg.n_min = 1;
  cfg.selection_width = 2;
  cfg.width_explore = width_explore;
  OnlineLearner learner(6, cfg);
  BudgetLedger budget(1e6);
  std::vector<bool> seen(6, false);
  for (std::size_t t = 1; t <= epochs; ++t) {
    sim::EpochContext ctx = ctx_with(
        {client(0, 0.4, 0.1), client(1, 1.0, 0.1), client(2, 1.0, 0.1),
         client(3, 1.0, 0.1), client(4, 1.0, 0.1), client(5, 1.0, 0.1)});
    ctx.epoch = t;
    const auto dec = learner.decide(ctx, budget);
    fl::EpochOutcome out;
    out.selected = dec.ids;
    out.num_iterations = 1;
    for (std::size_t id : dec.ids) {
      seen[id] = true;
      out.client_eta.push_back(0.3);
      out.client_loss_reduction.push_back(id == 1 ? 0.5 : 0.05);
      out.client_completed_iters.push_back(1);
    }
    out.train_loss_all = 1.0;
    learner.observe(ctx, dec, out);
  }
  return seen;
}

TEST(LearnerEdge, ExploitOnlyPruningStarvesUnobservedClients) {
  // β_w = 0 (the default): once client 1 posts its big Δ̂, the single
  // utility slot never leaves it — clients 2–5 are starved for good. This
  // is the failure mode the UCB bonus exists to fix.
  const auto seen = candidate_coverage(0.0, 30);
  EXPECT_TRUE(seen[0]);  // floor slot (cheapest)
  EXPECT_TRUE(seen[1]);  // exploit winner
  EXPECT_FALSE(seen[2]);
  EXPECT_FALSE(seen[5]);
}

TEST(LearnerEdge, WidthExploreBonusRevisitsStarvedClients) {
  // With β_w > 0 the sqrt(log t / n_k) term grows for never-observed
  // clients relative to the repeatedly-seen exploit winner, so every client
  // re-enters the candidate set within a modest horizon.
  const auto seen = candidate_coverage(5.0, 30);
  for (std::size_t id = 0; id < 6; ++id)
    EXPECT_TRUE(seen[id]) << "client " << id
                          << " never entered the candidate set";
}

}  // namespace
}  // namespace fedl::core
