// Additional coverage for the tensor/nn/data layers: initializer bounds,
// convolution geometry corner cases, loss edge cases, Dirichlet extremes,
// online-stream floors, and synthetic-preset difficulty ordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "common/rng.h"
#include "data/online.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/factory.h"
#include "nn/pool.h"

namespace fedl {
namespace {

TEST(TensorInit, UniformRespectsBounds) {
  Rng rng(1);
  Tensor t = Tensor::uniform(Shape{50, 50}, -0.25f, 0.75f, rng);
  float lo = t[0], hi = t[0];
  for (std::size_t i = 0; i < t.numel(); ++i) {
    lo = std::min(lo, t[i]);
    hi = std::max(hi, t[i]);
  }
  EXPECT_GE(lo, -0.25f);
  EXPECT_LT(hi, 0.75f);
  EXPECT_LT(lo, 0.0f);  // actually spans the range
  EXPECT_GT(hi, 0.5f);
}

TEST(ConvGeometry, StrideTwoNoPad) {
  Rng rng(2);
  nn::Conv2d c(1, 2, 3, 2, 0, 9, 9, rng);
  EXPECT_EQ(c.out_h(), 4u);
  EXPECT_EQ(c.out_w(), 4u);
  Tensor x(Shape{1, 1, 9, 9});
  Tensor y = c.forward(x, false);
  EXPECT_TRUE((y.shape() == Shape{1, 2, 4, 4}));
}

TEST(ConvGeometry, KernelEqualsImage) {
  Rng rng(3);
  nn::Conv2d c(2, 3, 4, 1, 0, 4, 4, rng);
  EXPECT_EQ(c.out_h(), 1u);
  Tensor x(Shape{2, 2, 4, 4});
  Tensor y = c.forward(x, false);
  EXPECT_TRUE((y.shape() == Shape{2, 3, 1, 1}));
}

TEST(ConvGeometry, BatchIndependence) {
  // Processing a two-sample batch must equal processing each sample alone.
  Rng rng(4);
  nn::Conv2d c(1, 2, 3, 1, 1, 5, 5, rng);
  Tensor both = Tensor::uniform(Shape{2, 1, 5, 5}, -1.0f, 1.0f, rng);
  Tensor one(Shape{1, 1, 5, 5});
  for (std::size_t i = 0; i < 25; ++i) one[i] = both[i];

  Tensor y_both = c.forward(both, false);
  Tensor y_one = c.forward(one, false);
  for (std::size_t i = 0; i < y_one.numel(); ++i)
    EXPECT_FLOAT_EQ(y_both[i], y_one[i]);
}

TEST(MaxPool, NonSquareStrideWindowCombos) {
  nn::MaxPool2d p(3, 2);  // the CIFAR CNN's pool
  Tensor x(Shape{1, 1, 7, 7});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  Tensor y = p.forward(x, false);
  EXPECT_TRUE((y.shape() == Shape{1, 1, 3, 3}));
  // Max of the last 3x3 window is the bottom-right corner value 48.
  EXPECT_EQ(y[y.numel() - 1], 48.0f);
}

TEST(Relu, TrainVsEvalForwardIdentical) {
  Rng rng(5);
  nn::Relu r;
  Tensor x = Tensor::uniform(Shape{3, 4}, -1.0f, 1.0f, rng);
  Tensor a = r.forward(x, true);
  Tensor b = r.forward(x, false);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Dense, GradAccumulatesAcrossBackwardCalls) {
  Rng rng(6);
  nn::Dense d(2, 2, rng);
  Tensor x = Tensor::full(Shape{1, 2}, 1.0f);
  Tensor g = Tensor::full(Shape{1, 2}, 1.0f);
  d.forward(x, true);
  d.backward(g);
  const float once = (*d.grads()[0])[0];
  d.forward(x, true);
  d.backward(g);
  EXPECT_FLOAT_EQ((*d.grads()[0])[0], 2.0f * once);  // += semantics
  d.zero_grad();
  EXPECT_EQ((*d.grads()[0])[0], 0.0f);
}

TEST(Factory, WidthScaleNeverProducesZeroUnits) {
  Rng rng(7);
  nn::ModelSpec spec;
  spec.width_scale = 0.001;  // scaled(32, 0.001) would floor to 0
  nn::Model m = nn::make_fmnist_cnn(spec, rng);
  Tensor x(Shape{1, 1, 28, 28});
  Tensor y = m.forward(x, false);
  EXPECT_TRUE((y.shape() == Shape{1, 10}));
}

// --- data extras ------------------------------------------------------------------

TEST(SyntheticPresets, CifarIsHarderThanFmnist) {
  // Difficulty proxy: between-class prototype distance over noise level.
  auto snr = [](const data::SyntheticSpec& spec) {
    data::Dataset ds = data::make_synthetic(spec);
    const std::size_t elems = ds.sample_numel();
    std::vector<double> m0(elems, 0.0), m1(elems, 0.0);
    std::size_t n0 = 0, n1 = 0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      const float* img = ds.images().data() + i * elems;
      if (ds.labels()[i] == 0) {
        for (std::size_t e = 0; e < elems; ++e) m0[e] += img[e];
        ++n0;
      } else if (ds.labels()[i] == 1) {
        for (std::size_t e = 0; e < elems; ++e) m1[e] += img[e];
        ++n1;
      }
    }
    double dist = 0.0;
    for (std::size_t e = 0; e < elems; ++e) {
      const double d = m0[e] / n0 - m1[e] / n1;
      dist += d * d;
    }
    // Normalize by dimension and noise.
    return std::sqrt(dist / elems) / spec.noise_stddev;
  };
  EXPECT_GT(snr(data::fmnist_like_spec(600, 3)),
            snr(data::cifar_like_spec(600, 3)));
}

TEST(Dirichlet, HugeAlphaApproachesUniformSplit) {
  data::Dataset ds = data::make_synthetic(data::fmnist_like_spec(500, 9));
  Rng rng(9);
  const auto p = data::partition_dirichlet(ds, 5, 1000.0, rng);
  for (const auto& client : p) {
    EXPECT_GT(client.size(), 60u);
    EXPECT_LT(client.size(), 140u);
  }
}

TEST(Dirichlet, TinyAlphaConcentrates) {
  data::Dataset ds = data::make_synthetic(data::fmnist_like_spec(500, 11));
  Rng rng(11);
  const auto p = data::partition_dirichlet(ds, 5, 0.05, rng);
  const auto dist = data::label_distribution(ds, p);
  // At least one client should be dominated by a single class.
  double best = 0.0;
  for (const auto& probs : dist)
    for (double v : probs) best = std::max(best, v);
  EXPECT_GT(best, 0.5);
}

TEST(OnlineStream, MinSamplesFloorBindsOnTinyPartitions) {
  data::Dataset ds = data::make_synthetic(data::fmnist_like_spec(40, 13));
  data::Partition p(1);
  for (std::size_t i = 0; i < 6; ++i) p[0].push_back(i);
  data::OnlineDataSpec spec;
  spec.poisson_mean_frac = 0.01;  // Poisson draws ~0
  spec.min_samples = 4;
  data::OnlineDataStream stream(p, spec);
  for (int t = 0; t < 10; ++t) {
    stream.advance_epoch();
    EXPECT_GE(stream.epoch_size(0), 4u);
    EXPECT_LE(stream.epoch_size(0), 6u);
  }
}

TEST(OnlineStream, DeterministicForSeed) {
  data::Dataset ds = data::make_synthetic(data::fmnist_like_spec(200, 15));
  Rng r1(15), r2(15);
  auto p1 = data::partition_iid(ds, 3, r1);
  auto p2 = data::partition_iid(ds, 3, r2);
  data::OnlineDataSpec spec;
  spec.seed = 77;
  data::OnlineDataStream s1(p1, spec), s2(p2, spec);
  for (int t = 0; t < 5; ++t) {
    s1.advance_epoch();
    s2.advance_epoch();
    for (std::size_t k = 0; k < 3; ++k)
      EXPECT_EQ(s1.epoch_indices(k), s2.epoch_indices(k));
  }
}

TEST(Partition, LabelDistributionRowsSumToOne) {
  data::Dataset ds = data::make_synthetic(data::fmnist_like_spec(300, 17));
  Rng rng(17);
  const auto p = data::partition_iid(ds, 4, rng);
  for (const auto& probs : data::label_distribution(ds, p)) {
    double sum = 0.0;
    for (double v : probs) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace fedl
