// Tests for the flat-vector optimizers (SGD / Momentum / Adam) and the
// checkpoint serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace fedl::nn {
namespace {

// Quadratic bowl f(w) = 0.5‖w − target‖²; gradient = w − target.
struct Bowl {
  ParamVec target;
  ParamVec grad(const ParamVec& w) const {
    ParamVec g(w.size());
    for (std::size_t i = 0; i < w.size(); ++i) g[i] = w[i] - target[i];
    return g;
  }
  double value(const ParamVec& w) const {
    double v = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i)
      v += 0.5 * (w[i] - target[i]) * (w[i] - target[i]);
    return v;
  }
};

ParamVec run_optimizer(Optimizer& opt, int steps) {
  Bowl bowl{{1.0f, -2.0f, 3.0f}};
  ParamVec w = {0.0f, 0.0f, 0.0f};
  for (int s = 0; s < steps; ++s) {
    const ParamVec g = bowl.grad(w);
    opt.step(w, g);
  }
  return w;
}

TEST(Sgd, ConvergesOnQuadratic) {
  Sgd opt(0.2);
  const ParamVec w = run_optimizer(opt, 100);
  EXPECT_NEAR(w[0], 1.0, 1e-4);
  EXPECT_NEAR(w[1], -2.0, 1e-4);
  EXPECT_NEAR(w[2], 3.0, 1e-4);
}

TEST(Sgd, SingleStepIsExactFormula) {
  Sgd opt(0.1);
  ParamVec w = {1.0f};
  ParamVec g = {4.0f};
  opt.step(w, g);
  EXPECT_NEAR(w[0], 1.0 - 0.1 * 4.0, 1e-7);
}

TEST(MomentumSgd, ConvergesOnQuadratic) {
  MomentumSgd opt(0.05, 0.9);
  const ParamVec w = run_optimizer(opt, 300);
  EXPECT_NEAR(w[0], 1.0, 1e-3);
  EXPECT_NEAR(w[2], 3.0, 1e-3);
}

TEST(MomentumSgd, AcceleratesVsPlainSgdEarly) {
  // With the same lr, momentum covers more distance in the first steps.
  Bowl bowl{{10.0f}};
  ParamVec w_sgd = {0.0f}, w_mom = {0.0f};
  Sgd sgd(0.01);
  MomentumSgd mom(0.01, 0.9);
  for (int s = 0; s < 30; ++s) {
    sgd.step(w_sgd, bowl.grad(w_sgd));
    mom.step(w_mom, bowl.grad(w_mom));
  }
  EXPECT_GT(w_mom[0], w_sgd[0]);
}

TEST(MomentumSgd, ResetClearsVelocity) {
  MomentumSgd opt(0.1, 0.9);
  ParamVec w = {0.0f};
  ParamVec g = {1.0f};
  opt.step(w, g);
  opt.reset();
  ParamVec w2 = {0.0f};
  opt.step(w2, g);
  // After reset, the first step must equal a fresh optimizer's first step.
  EXPECT_EQ(w2[0], -0.1f);
}

TEST(Adam, ConvergesOnQuadratic) {
  Adam opt(0.3);
  const ParamVec w = run_optimizer(opt, 400);
  EXPECT_NEAR(w[0], 1.0, 2e-2);
  EXPECT_NEAR(w[1], -2.0, 2e-2);
}

TEST(Adam, FirstStepMagnitudeIsLr) {
  // Bias correction makes the first Adam step ≈ lr * sign(g).
  Adam opt(0.25);
  ParamVec w = {0.0f};
  ParamVec g = {7.0f};
  opt.step(w, g);
  EXPECT_NEAR(w[0], -0.25, 1e-3);
}

TEST(OptimizerFactory, KnownNamesAndErrors) {
  EXPECT_EQ(make_optimizer("sgd", 0.1)->name(), "sgd");
  EXPECT_EQ(make_optimizer("momentum", 0.1)->name(), "momentum");
  EXPECT_EQ(make_optimizer("adam", 0.1)->name(), "adam");
  EXPECT_THROW(make_optimizer("rmsprop", 0.1), ConfigError);
}

TEST(OptimizerParams, RejectBadHyperparameters) {
  EXPECT_THROW(Sgd(0.0), CheckError);
  EXPECT_THROW(MomentumSgd(0.1, 1.0), CheckError);
  EXPECT_THROW(Adam(0.1, 1.5), CheckError);
}

// --- serialization -----------------------------------------------------------

std::string temp_path(const char* tag) {
  return std::string(::testing::TempDir()) + "/fedl_ckpt_" + tag + ".bin";
}

TEST(Serialize, RoundTripsExactly) {
  Rng rng(1);
  ParamVec params(257);
  for (auto& p : params) p = static_cast<float>(rng.normal());
  const std::string path = temp_path("roundtrip");
  save_params(params, path);
  const ParamVec loaded = load_params(path);
  EXPECT_EQ(loaded, params);
  std::remove(path.c_str());
}

TEST(Serialize, EmptyVector) {
  const std::string path = temp_path("empty");
  save_params({}, path);
  EXPECT_TRUE(load_params(path).empty());
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_params("/nonexistent/fedl.bin"), ConfigError);
}

TEST(Serialize, CorruptionDetectedByHash) {
  Rng rng(2);
  ParamVec params(64);
  for (auto& p : params) p = static_cast<float>(rng.normal());
  const std::string path = temp_path("corrupt");
  save_params(params, path);
  {
    // Flip one payload byte past the 32-byte header.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char b;
    f.seekg(40);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0xff);
    f.seekp(40);
    f.write(&b, 1);
  }
  EXPECT_THROW(load_params(path), ConfigError);
  std::remove(path.c_str());
}

TEST(Serialize, TruncationDetected) {
  ParamVec params(16, 1.0f);
  const std::string path = temp_path("trunc");
  save_params(params, path);
  {
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() - 8));
  }
  EXPECT_THROW(load_params(path), ConfigError);
  std::remove(path.c_str());
}

TEST(Serialize, HashIsContentSensitive) {
  ParamVec a = {1.0f, 2.0f};
  ParamVec b = {1.0f, 2.00001f};
  EXPECT_NE(params_hash(a), params_hash(b));
  EXPECT_EQ(params_hash(a), params_hash(ParamVec{1.0f, 2.0f}));
}

}  // namespace
}  // namespace fedl::nn
