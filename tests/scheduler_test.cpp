// Scheduler tests: the two-level experiment-grid scheduler must (a) never
// let trial runners plus worker leases exceed the thread budget, (b) keep
// every per-trial result and decision trace bit-identical between a serial
// run (--jobs 1 --threads 1) and any (jobs, threads) combination, and
// (c) stay deadlock-free when trials outnumber slots. The suite runs under
// TSan via `ctest -L sanitize` and doubles as the grid smoke for
// `ctest -L perf` (a mini 2-setting × 2-algorithm grid must complete).
//
// The budget here is configured explicitly (4 or 8) instead of from
// hardware_concurrency so the concurrent paths are exercised — and TSan
// sees real cross-thread traffic — even on a single-core CI box.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.h"
#include "harness/experiment.h"
#include "parallel/scheduler.h"
#include "tensor/gemm.h"

namespace fedl {
namespace {

TEST(Scheduler, ConfigureDefaultsAndShares) {
  Scheduler& s = Scheduler::instance();
  s.configure(8, 2);
  EXPECT_EQ(s.thread_budget(), 8u);
  EXPECT_EQ(s.max_concurrent_trials(), 2u);
  EXPECT_EQ(s.auto_share(), 4u);  // 8 slots / 2 trials

  s.configure(3, 16);  // jobs clamp to the budget
  EXPECT_EQ(s.max_concurrent_trials(), 3u);
  EXPECT_EQ(s.auto_share(), 1u);

  s.configure(0, 1);  // 0 = hardware concurrency, at least one slot
  EXPECT_GE(s.thread_budget(), 1u);
}

TEST(Scheduler, LeaseAccountingAndStealing) {
  Scheduler& s = Scheduler::instance();
  s.configure(8, 2);
  s.reset_stats();

  {
    // Pinned fan-out (allow_steal = false): grant caps at the nominal
    // share. The non-trial caller is charged 1 slot, so 7 remain.
    auto pinned = s.acquire_workers(2, 7, false);
    EXPECT_EQ(pinned.granted(), 2u);
    EXPECT_EQ(s.stats().leased_slots, 2u);

    // Auto fan-out: may steal the idle remainder beyond its nominal share.
    auto greedy = s.acquire_workers(2, 7, true);
    EXPECT_EQ(greedy.granted(), 5u);  // 8 - 1 (caller) - 2 (pinned)
    EXPECT_EQ(s.stats().leased_slots, 7u);
    EXPECT_EQ(s.stats().steal_count, 1u);
    EXPECT_EQ(s.stats().stolen_slots, 3u);  // 5 granted - 2 nominal

    // Budget exhausted: further requests run inline.
    auto empty = s.acquire_workers(4, 4, true);
    EXPECT_EQ(empty.granted(), 0u);
  }
  // Leases are RAII: everything returned.
  EXPECT_EQ(s.stats().leased_slots, 0u);
  EXPECT_LE(s.stats().peak_inflight, s.thread_budget());
}

TEST(Scheduler, NestedLeasesComposeWithThreadedGemm) {
  // Three nesting levels drawing from one budget: J trial runners, a
  // per-trial client fan-out lease, and — inside each fan-out body — a
  // threshold-crossing gemm whose macro loop takes its own lease. The sum
  // of runners and leases must never exceed the budget (the gemm simply
  // runs serial when the budget is saturated), and every lease must be
  // returned afterwards.
  Scheduler& s = Scheduler::instance();
  s.configure(8, 2);
  s.reset_stats();
  // 2·m·n·k ≈ 15.7 MFLOP clears the gemm-internal threading threshold.
  const std::size_t m = 256, n = 192, k = 160;
  std::vector<float> a(m * k, 0.5f), b(k * n, 0.25f);

  s.run_trials(4, [&](std::size_t) {
    auto lease = s.acquire_workers(s.auto_share() - 1, 3, true);
    const std::size_t width = lease.granted() + 1;
    std::vector<std::vector<float>> cs(width, std::vector<float>(m * n));
    const auto body = [&](std::size_t chunk, std::size_t) {
      gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
           cs[chunk].data());
      const SchedulerStats st = s.stats();
      EXPECT_LE(st.inflight(), st.thread_budget);
    };
    if (lease.granted() > 0)
      parallel_for_shared_indexed(s.pool(), lease.granted(), 0, 2 * width,
                                  body);
    else
      for (std::size_t i = 0; i < 2; ++i) body(0, i);
  });

  const SchedulerStats st = s.stats();
  EXPECT_EQ(st.trials_run, 4u);
  EXPECT_EQ(st.active_trials, 0u);
  EXPECT_EQ(st.leased_slots, 0u);
  EXPECT_LE(st.peak_inflight, st.thread_budget);
  s.configure(0, 1);
}

TEST(Scheduler, BudgetNeverExceededWhenTrialsOutnumberSlots) {
  Scheduler& s = Scheduler::instance();
  s.configure(4, 4);
  s.reset_stats();

  const std::size_t trials = 12;
  std::atomic<std::size_t> peak_seen{0};
  std::vector<std::size_t> runs(trials, 0);
  s.run_trials(trials, [&](std::size_t i) {
    auto lease = s.acquire_workers(0, 8, true);
    const SchedulerStats st = s.stats();
    EXPECT_LE(st.inflight(), st.thread_budget);
    std::size_t prev = peak_seen.load();
    while (prev < st.inflight() &&
           !peak_seen.compare_exchange_weak(prev, st.inflight())) {
    }
    ++runs[i];
  });

  for (std::size_t i = 0; i < trials; ++i)
    EXPECT_EQ(runs[i], 1u) << "trial " << i << " must run exactly once";
  const SchedulerStats st = s.stats();
  EXPECT_EQ(st.trials_run, trials);
  EXPECT_EQ(st.active_trials, 0u);
  EXPECT_EQ(st.leased_slots, 0u);
  EXPECT_LE(st.peak_inflight, st.thread_budget);
  EXPECT_LE(peak_seen.load(), st.thread_budget);
}

TEST(Scheduler, RethrowsLowestIndexTrialError) {
  Scheduler& s = Scheduler::instance();
  s.configure(4, 4);
  std::atomic<std::size_t> completed{0};
  try {
    s.run_trials(8, [&](std::size_t i) {
      if (i == 2 || i == 5)
        throw std::runtime_error("trial " + std::to_string(i));
      ++completed;
    });
    FAIL() << "expected the trial error to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "trial 2");
  }
  // A throwing trial must not stop the rest of the grid.
  EXPECT_EQ(completed.load(), 6u);
  EXPECT_EQ(s.stats().active_trials, 0u);
}

TEST(Scheduler, DisplayNamesCoverTheFactory) {
  harness::ScenarioConfig cfg;
  for (const char* name :
       {"fedl", "fedl-ind", "fedl-fair", "ucb", "fedavg", "fedcs", "powd",
        "oracle"}) {
    EXPECT_EQ(harness::strategy_display_name(name),
              harness::make_strategy(name, cfg)->name())
        << name;
  }
  EXPECT_THROW(harness::strategy_display_name("nope"), ConfigError);
}

// -- Experiment-grid determinism ---------------------------------------

harness::ScenarioConfig tiny_scenario(std::size_t threads) {
  harness::ScenarioConfig cfg;
  cfg.task = harness::Task::kFmnistLike;
  cfg.num_clients = 6;
  cfg.n_min = 2;
  cfg.budget = 80.0;
  cfg.max_epochs = 4;
  cfg.train_samples = 120;
  cfg.test_samples = 60;
  cfg.width_scale = 0.05;
  cfg.batch_cap = 8;
  cfg.eval_cap = 32;
  cfg.dane.sgd_steps = 1;
  cfg.seed = 5;
  cfg.num_threads = threads;
  // Non-empty so decision events are recorded; defer_trace keeps them in
  // RunResult::trace_jsonl and never touches the file.
  cfg.trace_out = "scheduler_test_deferred.jsonl";
  cfg.defer_trace = true;
  return cfg;
}

struct GridOut {
  std::vector<std::string> jsonl;
  std::vector<double> final_loss;
  std::vector<std::size_t> epochs;
};

// The mini grid from fig_common::run_roster: 2 settings x 2 algorithms,
// Experiments shared per setting, one scheduler trial per cell.
GridOut run_mini_grid(std::size_t budget, std::size_t jobs,
                      std::size_t threads) {
  Scheduler::instance().configure(budget, jobs);
  const std::vector<std::string> roster = {"fedl", "fedavg"};
  const bool iids[2] = {true, false};

  std::vector<std::unique_ptr<harness::Experiment>> exps;
  struct Spec {
    std::size_t setting;
    std::size_t alg;
  };
  std::vector<Spec> trials;
  for (std::size_t si = 0; si < 2; ++si) {
    harness::ScenarioConfig cfg = tiny_scenario(threads);
    cfg.iid = iids[si];
    exps.push_back(std::make_unique<harness::Experiment>(cfg));
    for (std::size_t ai = 0; ai < roster.size(); ++ai)
      trials.push_back({si, ai});
  }

  std::vector<std::unique_ptr<harness::RunResult>> res(trials.size());
  Scheduler::instance().run_trials(trials.size(), [&](std::size_t i) {
    harness::Experiment& exp = *exps[trials[i].setting];
    auto strat = harness::make_strategy(roster[trials[i].alg], exp.config());
    res[i] = std::make_unique<harness::RunResult>(exp.run(*strat));
  });

  GridOut out;
  for (const auto& r : res) {
    out.jsonl.push_back(r->trace_jsonl);
    out.final_loss.push_back(r->trace.final_loss());
    out.epochs.push_back(r->epochs_run);
  }
  return out;
}

TEST(SchedulerGrid, TraceBitIdenticalSerialVsJobs4) {
  const GridOut serial = run_mini_grid(4, 1, 1);
  // jobs 4, threads 0: four concurrent trials, each drawing leftover slots
  // from the shared budget (work stealing on).
  const GridOut par = run_mini_grid(4, 4, 0);

  ASSERT_EQ(serial.jsonl.size(), par.jsonl.size());
  for (std::size_t i = 0; i < serial.jsonl.size(); ++i) {
    EXPECT_FALSE(serial.jsonl[i].empty()) << "trial " << i;
    EXPECT_EQ(serial.jsonl[i], par.jsonl[i]) << "trial " << i;
    EXPECT_EQ(serial.final_loss[i], par.final_loss[i]) << "trial " << i;
    EXPECT_EQ(serial.epochs[i], par.epochs[i]) << "trial " << i;
  }
}

TEST(SchedulerGrid, MoreTrialsThanSlotsStillDeterministic) {
  // Width (min(jobs, budget) = 2) below the 4-cell grid: runners claim
  // trials from the shared counter, results must still be byte-identical.
  const GridOut serial = run_mini_grid(4, 1, 1);
  const GridOut narrow = run_mini_grid(2, 2, 0);
  ASSERT_EQ(serial.jsonl.size(), narrow.jsonl.size());
  for (std::size_t i = 0; i < serial.jsonl.size(); ++i)
    EXPECT_EQ(serial.jsonl[i], narrow.jsonl[i]) << "trial " << i;
}

TEST(SchedulerGrid, MiniGridCompletesWithoutDeadlock) {
  // `ctest -L perf` smoke: a concurrent 2x2 grid with stealing enabled
  // finishes and reports sane scheduler accounting.
  Scheduler::instance().reset_stats();
  const GridOut par = run_mini_grid(4, 4, 0);
  EXPECT_EQ(par.jsonl.size(), 4u);
  const SchedulerStats st = Scheduler::instance().stats();
  EXPECT_EQ(st.trials_run, 4u);
  EXPECT_EQ(st.active_trials, 0u);
  EXPECT_EQ(st.leased_slots, 0u);
  EXPECT_LE(st.peak_inflight, st.thread_budget);
}

}  // namespace
}  // namespace fedl
