// Tests for the convex solver substrate: closed-form projections, Dykstra's
// algorithm against brute-force projection, and the projected proximal
// solver against exhaustive grid search — validating the IPOPT substitution
// (DESIGN.md §5.3).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "solver/projection.h"
#include "solver/prox_solver.h"

namespace fedl::solver {
namespace {

TEST(ProjectBox, ClampsCoordinates) {
  std::vector<double> x = {-1.0, 0.5, 3.0};
  project_box({0, 0, 0}, {1, 1, 1}, x);
  EXPECT_EQ(x, (std::vector<double>{0.0, 0.5, 1.0}));
}

TEST(ProjectHalfspace, NoopInside) {
  Halfspace h{{1.0, 1.0}, 5.0};
  std::vector<double> x = {1.0, 2.0};
  project_halfspace(h, x);
  EXPECT_EQ(x, (std::vector<double>{1.0, 2.0}));
}

TEST(ProjectHalfspace, OrthogonalProjectionOutside) {
  // {x + y <= 0}; projecting (1,1) gives (0,0).
  Halfspace h{{1.0, 1.0}, 0.0};
  std::vector<double> x = {1.0, 1.0};
  project_halfspace(h, x);
  EXPECT_NEAR(x[0], 0.0, 1e-12);
  EXPECT_NEAR(x[1], 0.0, 1e-12);
}

bool l2_norm_zero(const Halfspace& h) {
  double s = 0;
  for (double a : h.a) s += a * a;
  return s < 1e-12;
}

TEST(ProjectHalfspace, ResultSatisfiesConstraintAndIsClosest) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Halfspace h{{rng.normal(), rng.normal(), rng.normal()}, rng.normal()};
    if (l2_norm_zero(h)) continue;
    std::vector<double> x = {rng.normal() * 3, rng.normal() * 3,
                             rng.normal() * 3};
    std::vector<double> p = x;
    project_halfspace(h, p);
    double ax = 0, ap = 0;
    for (int i = 0; i < 3; ++i) {
      ax += h.a[i] * x[i];
      ap += h.a[i] * p[i];
    }
    EXPECT_LE(ap, h.b + 1e-9);
    if (ax <= h.b) {
      EXPECT_EQ(p, x);  // inside: untouched
    }
  }
}

// Brute-force projection onto the feasible set by dense sampling + local
// refinement (2-D only; used as oracle).
std::vector<double> brute_force_project(const FeasibleSet& set,
                                        const std::vector<double>& x) {
  double best_d = 1e100;
  std::vector<double> best = {0, 0};
  const int grid = 400;
  for (int i = 0; i <= grid; ++i) {
    for (int j = 0; j <= grid; ++j) {
      std::vector<double> cand = {
          set.lo[0] + (set.hi[0] - set.lo[0]) * i / grid,
          set.lo[1] + (set.hi[1] - set.lo[1]) * j / grid};
      if (!set.contains(cand, 1e-9)) continue;
      const double d = (cand[0] - x[0]) * (cand[0] - x[0]) +
                       (cand[1] - x[1]) * (cand[1] - x[1]);
      if (d < best_d) {
        best_d = d;
        best = cand;
      }
    }
  }
  return best;
}

class IntersectionVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntersectionVsBruteForce, MatchesOracleIn2D) {
  Rng rng(GetParam());
  FeasibleSet set;
  set.lo = {0.0, 0.0};
  set.hi = {1.0, 1.0};
  // Random budget-like halfspace a·x <= b through the box.
  Halfspace h1{{rng.uniform(0.5, 2.0), rng.uniform(0.5, 2.0)},
               rng.uniform(0.5, 2.0)};
  // Random minimum-sum halfspace: x0 + x1 >= m  (encoded negated).
  const double m = rng.uniform(0.1, 0.8);
  Halfspace h2{{-1.0, -1.0}, -m};
  set.halfspaces = {h1, h2};

  std::vector<double> x = {rng.uniform(-0.5, 1.5), rng.uniform(-0.5, 1.5)};
  const auto oracle = brute_force_project(set, x);
  if (!set.contains(oracle, 1e-6)) return;  // empty-ish intersection: skip

  bool converged = false;
  const auto proj = project_intersection(set, x, {}, &converged);
  EXPECT_TRUE(converged);
  EXPECT_TRUE(set.contains(proj, 1e-5));
  // The projection must be at least as close to x as the best grid point
  // (grid resolution bounds how much closer the oracle can be).
  auto dist = [&](const std::vector<double>& p) {
    return std::hypot(p[0] - x[0], p[1] - x[1]);
  };
  EXPECT_LE(dist(proj), dist(oracle) + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectionVsBruteForce,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(ProjectIntersection, AlreadyFeasibleIsFixedPoint) {
  FeasibleSet set;
  set.lo = {0, 0, 0};
  set.hi = {1, 1, 1};
  set.halfspaces = {Halfspace{{1, 1, 1}, 2.5}};
  std::vector<double> x = {0.2, 0.3, 0.4};
  const auto p = project_intersection(set, x);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(p[i], x[i], 1e-9);
}

TEST(ProjectIntersection, HighDimensionalFeasibility) {
  Rng rng(99);
  const std::size_t n = 40;
  FeasibleSet set;
  set.lo.assign(n, 0.0);
  set.hi.assign(n, 1.0);
  Halfspace budget;
  budget.a.resize(n);
  for (auto& a : budget.a) a = rng.uniform(0.1, 12.0);
  budget.b = 30.0;
  Halfspace minsum;
  minsum.a.assign(n, -1.0);
  minsum.b = -5.0;
  set.halfspaces = {budget, minsum};

  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 2.0);
  bool converged = false;
  const auto p = project_intersection(set, x, {}, &converged);
  EXPECT_TRUE(converged);
  EXPECT_TRUE(set.contains(p, 1e-6));
}

// --- prox solver ------------------------------------------------------------------

TEST(ProxSolver, QuadraticOverBoxHasClosedForm) {
  // min (x-2)^2 + (y+1)^2 over [0,1]^2 -> (1, 0).
  FeasibleSet set;
  set.lo = {0, 0};
  set.hi = {1, 1};
  auto obj = [](const std::vector<double>& x, std::vector<double>* g) {
    if (g) {
      (*g) = {2 * (x[0] - 2), 2 * (x[1] + 1)};
    }
    return (x[0] - 2) * (x[0] - 2) + (x[1] + 1) * (x[1] + 1);
  };
  const auto res = minimize_projected(set, {0.5, 0.5}, obj);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 1.0, 1e-5);
  EXPECT_NEAR(res.x[1], 0.0, 1e-5);
}

TEST(ProxSolver, LinearObjectiveHitsVertexUnderBudget) {
  // min -3x - y  s.t. x,y in [0,1], 2x + y <= 2  -> x=1, y=0... check:
  // at x=1: y <= 0 -> (1, 0) value -3; at (0.5,1): -2.5. So (1,0).
  FeasibleSet set;
  set.lo = {0, 0};
  set.hi = {1, 1};
  set.halfspaces = {Halfspace{{2, 1}, 2.0}};
  auto obj = [](const std::vector<double>& x, std::vector<double>* g) {
    if (g) (*g) = {-3.0, -1.0};
    return -3 * x[0] - x[1];
  };
  const auto res = minimize_projected(set, {0.0, 0.0}, obj);
  EXPECT_NEAR(res.x[0], 1.0, 1e-4);
  EXPECT_NEAR(res.x[1], 0.0, 1e-4);
}

TEST(ProxSolver, ResultBeatsRandomFeasiblePoints) {
  // Strongly convex objective with bilinear term (the structure of step (8)).
  Rng rng(7);
  const std::size_t n = 6;
  FeasibleSet set;
  set.lo.assign(n, 0.0);
  set.hi.assign(n, 1.0);
  set.lo[n - 1] = 1.0;
  set.hi[n - 1] = 5.0;
  Halfspace minsum;
  minsum.a.assign(n, -1.0);
  minsum.a[n - 1] = 0.0;
  minsum.b = -2.0;
  set.halfspaces = {minsum};

  std::vector<double> c(n);
  for (auto& v : c) v = rng.uniform(-1.0, 1.0);
  std::vector<double> anchor(n, 0.5);
  anchor[n - 1] = 2.0;
  auto obj = [&](const std::vector<double>& x, std::vector<double>* g) {
    double val = 0.0;
    // c·x + x_0*x_last (bilinear) + ||x-anchor||^2
    val += x[0] * x[n - 1];
    for (std::size_t i = 0; i < n; ++i) {
      val += c[i] * x[i] + (x[i] - anchor[i]) * (x[i] - anchor[i]);
    }
    if (g) {
      g->assign(n, 0.0);
      for (std::size_t i = 0; i < n; ++i)
        (*g)[i] = c[i] + 2 * (x[i] - anchor[i]);
      (*g)[0] += x[n - 1];
      (*g)[n - 1] += x[0];
    }
    return val;
  };
  const auto res = minimize_projected(set, anchor, obj);
  ASSERT_TRUE(set.contains(res.x, 1e-6));

  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> cand(n);
    for (std::size_t i = 0; i < n; ++i)
      cand[i] = rng.uniform(set.lo[i], set.hi[i]);
    cand = project_intersection(set, cand);
    if (!set.contains(cand, 1e-6)) continue;
    EXPECT_GE(obj(cand, nullptr), res.objective - 1e-6);
  }
}

TEST(LinearizedStepBuilder, GradientMatchesFiniteDifference) {
  const std::size_t k = 3;
  LinearizedStep step;
  step.grad_f = {0.5, -0.2, 0.7, 0.3};
  step.anchor = {0.4, 0.6, 0.1, 2.0};
  step.beta = 0.25;
  step.mu = {1.5, 0.7, 0.0, 0.2};
  // h with bilinear structure mimicking h^0/h^k.
  step.h = [k](const std::vector<double>& x) {
    std::vector<double> h(k + 1);
    const double rho = x[k];
    h[0] = 1.0 - 0.3 * (x[0] + x[1] + x[2]) * rho;
    for (std::size_t i = 0; i < k; ++i)
      h[i + 1] = 0.5 * x[i] * rho - rho + 1.0;
    return h;
  };
  step.h_grad_mu = [k](const std::vector<double>& x,
                       const std::vector<double>& mu) {
    std::vector<double> g(k + 1, 0.0);
    const double rho = x[k];
    for (std::size_t i = 0; i < k; ++i) {
      g[i] = -mu[0] * 0.3 * rho + mu[i + 1] * 0.5 * rho;
      g[k] += mu[i + 1] * (0.5 * x[i] - 1.0);
    }
    g[k] += -mu[0] * 0.3 * (x[0] + x[1] + x[2]);
    return g;
  };

  const auto obj = step.make_objective();
  std::vector<double> x = {0.3, 0.8, 0.2, 1.7};
  std::vector<double> grad;
  obj(x, &grad);
  const double eps = 1e-6;
  for (std::size_t i = 0; i <= k; ++i) {
    auto xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (obj(xp, nullptr) - obj(xm, nullptr)) / (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 1e-5) << "dim " << i;
  }
}

TEST(ProxSolver, InfeasibleStartIsProjectedFirst) {
  FeasibleSet set;
  set.lo = {0, 0};
  set.hi = {1, 1};
  auto obj = [](const std::vector<double>& x, std::vector<double>* g) {
    if (g) (*g) = {0.0, 0.0};
    return 0.0;
  };
  const auto res = minimize_projected(set, {5.0, -3.0}, obj);
  EXPECT_TRUE(set.contains(res.x, 1e-9));
}

}  // namespace
}  // namespace fedl::solver
