// Unit tests for the NN library. The load-bearing tests are the
// finite-difference gradient checks: every layer's backward pass (and the
// whole model's flat gradient) is verified against numerical derivatives.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/factory.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/pool.h"

namespace fedl::nn {
namespace {

// Central-difference gradient of `model` loss w.r.t. its flat parameters,
// compared against grads_flat() from backprop.
void check_model_gradient(Model& model, const Batch& batch,
                          double rel_tol = 2e-2, double abs_tol = 2e-3,
                          std::size_t probes = 24) {
  model.forward_backward(batch);
  const ParamVec analytic = model.grads_flat();
  ParamVec w = model.params_flat();
  Rng rng(12345);

  const float eps = 5e-3f;
  for (std::size_t probe = 0; probe < probes; ++probe) {
    const std::size_t i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(w.size()) - 1));
    ParamVec wp = w, wm = w;
    wp[i] += eps;
    wm[i] -= eps;
    model.set_params_flat(wp);
    const double lp = model.evaluate(batch).loss;
    model.set_params_flat(wm);
    const double lm = model.evaluate(batch).loss;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                abs_tol + rel_tol * std::abs(numeric))
        << "param index " << i;
  }
  model.set_params_flat(w);
}

Batch make_random_batch(Shape x_shape, std::size_t classes, Rng& rng) {
  Batch b;
  b.x = Tensor::uniform(x_shape, -1.0f, 1.0f, rng);
  b.y.resize(x_shape[0]);
  for (auto& y : b.y)
    y = static_cast<std::uint8_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1));
  return b;
}

// --- loss ---------------------------------------------------------------------

TEST(Loss, UniformLogitsGiveLogC) {
  Tensor logits(Shape{4, 10});  // all zeros -> uniform softmax
  std::vector<std::uint8_t> y = {0, 3, 7, 9};
  const auto r = softmax_cross_entropy(logits, y);
  EXPECT_NEAR(r.loss, std::log(10.0), 1e-5);
}

TEST(Loss, PerfectPredictionLowLoss) {
  Tensor logits(Shape{2, 3});
  logits.at(0, 1) = 50.0f;
  logits.at(1, 2) = 50.0f;
  std::vector<std::uint8_t> y = {1, 2};
  const auto r = softmax_cross_entropy(logits, y);
  EXPECT_LT(r.loss, 1e-6);
  EXPECT_EQ(r.correct, 2u);
}

TEST(Loss, GradientRowsSumToZero) {
  Rng rng(2);
  Tensor logits = Tensor::uniform(Shape{3, 5}, -2.0f, 2.0f, rng);
  std::vector<std::uint8_t> y = {0, 2, 4};
  const auto r = softmax_cross_entropy(logits, y);
  for (std::size_t row = 0; row < 3; ++row) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 5; ++c) sum += r.grad_logits.at(row, c);
    EXPECT_NEAR(sum, 0.0f, 1e-5f);  // softmax-CE gradient rows sum to 0
  }
}

TEST(Loss, ValueOnlyMatchesFullVersion) {
  Rng rng(3);
  Tensor logits = Tensor::uniform(Shape{6, 4}, -3.0f, 3.0f, rng);
  std::vector<std::uint8_t> y = {0, 1, 2, 3, 1, 2};
  const auto full = softmax_cross_entropy(logits, y);
  std::size_t correct = 0;
  const double v = softmax_cross_entropy_value(logits, y, &correct);
  EXPECT_NEAR(v, full.loss, 1e-9);
  EXPECT_EQ(correct, full.correct);
}

TEST(Loss, BadLabelThrows) {
  Tensor logits(Shape{1, 3});
  std::vector<std::uint8_t> y = {3};
  EXPECT_THROW(softmax_cross_entropy(logits, y), CheckError);
}

// --- layer gradient checks --------------------------------------------------------

TEST(GradCheck, DenseOnly) {
  Rng rng(4);
  Model m(0.0);
  m.add(std::make_unique<Dense>(6, 4, rng));
  Batch b = make_random_batch(Shape{5, 6}, 4, rng);
  check_model_gradient(m, b);
}

TEST(GradCheck, DenseWithL2Reg) {
  Rng rng(5);
  Model m(0.05);
  m.add(std::make_unique<Dense>(4, 3, rng));
  Batch b = make_random_batch(Shape{3, 4}, 3, rng);
  check_model_gradient(m, b);
}

TEST(GradCheck, MlpWithRelu) {
  Rng rng(6);
  Model m(0.0);
  m.add(std::make_unique<Dense>(5, 8, rng));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<Dense>(8, 3, rng));
  Batch b = make_random_batch(Shape{4, 5}, 3, rng);
  check_model_gradient(m, b);
}

TEST(GradCheck, ConvReluPoolDense) {
  Rng rng(7);
  Model m(0.0);
  m.add(std::make_unique<Conv2d>(2, 3, 3, 1, 1, 6, 6, rng));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<MaxPool2d>(2, 2));
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Dense>(3 * 3 * 3, 4, rng));
  Batch b = make_random_batch(Shape{2, 2, 6, 6}, 4, rng);
  check_model_gradient(m, b);
}

TEST(GradCheck, PaperFmnistCnnTinyWidth) {
  Rng rng(8);
  ModelSpec spec;
  spec.image_h = spec.image_w = 8;  // small spatial dims for speed
  spec.channels = 1;
  spec.width_scale = 0.05;
  spec.l2_reg = 0.0;
  Model m = make_fmnist_cnn(spec, rng);
  Batch b = make_random_batch(Shape{2, 1, 8, 8}, 10, rng);
  check_model_gradient(m, b, 3e-2, 3e-3, 16);
}

// --- layer shape behaviour ---------------------------------------------------------

TEST(Dense, ForwardShapeAndBias) {
  Rng rng(9);
  Dense d(3, 2, rng);
  Tensor x = Tensor::zeros(Shape{4, 3});
  Tensor out = d.forward(x, false);
  EXPECT_TRUE((out.shape() == Shape{4, 2}));
  // Zero input -> output equals bias (zero-initialized).
  for (std::size_t i = 0; i < out.numel(); ++i) EXPECT_EQ(out[i], 0.0f);
}

TEST(Dense, BackwardBeforeForwardThrows) {
  Rng rng(10);
  Dense d(3, 2, rng);
  Tensor g(Shape{1, 2});
  EXPECT_THROW(d.backward(g), CheckError);
}

TEST(Conv2d, OutputShapeSamePadding) {
  Rng rng(11);
  Conv2d c(1, 4, 5, 1, 2, 28, 28, rng);
  Tensor x(Shape{2, 1, 28, 28});
  Tensor out = c.forward(x, false);
  EXPECT_TRUE((out.shape() == Shape{2, 4, 28, 28}));
}

TEST(Conv2d, KnownValueIdentityKernel) {
  Rng rng(12);
  Conv2d c(1, 1, 1, 1, 0, 2, 2, rng);
  // Force weight = 2, bias = 1.
  auto params = c.params();
  params[0]->fill(2.0f);
  params[1]->fill(1.0f);
  Tensor x(Shape{1, 1, 2, 2});
  x.at(0, 0, 0, 1) = 3.0f;
  Tensor out = c.forward(x, false);
  EXPECT_EQ(out.at(0, 0, 0, 1), 7.0f);  // 2*3 + 1
  EXPECT_EQ(out.at(0, 0, 0, 0), 1.0f);  // 2*0 + 1
}

TEST(MaxPool2d, SelectsMaximaAndRoutesGradient) {
  MaxPool2d p(2, 2);
  Tensor x(Shape{1, 1, 2, 2});
  x.at(0, 0, 0, 0) = 1.0f;
  x.at(0, 0, 0, 1) = 5.0f;
  x.at(0, 0, 1, 0) = 2.0f;
  x.at(0, 0, 1, 1) = 3.0f;
  Tensor out = p.forward(x, true);
  ASSERT_EQ(out.numel(), 1u);
  EXPECT_EQ(out[0], 5.0f);
  Tensor g(Shape{1, 1, 1, 1});
  g[0] = 10.0f;
  Tensor gx = p.backward(g);
  EXPECT_EQ(gx.at(0, 0, 0, 1), 10.0f);
  EXPECT_EQ(gx.at(0, 0, 0, 0), 0.0f);
}

TEST(Flatten, RoundTripsShape) {
  Flatten f;
  Tensor x(Shape{2, 3, 4, 5});
  Tensor out = f.forward(x, true);
  EXPECT_TRUE((out.shape() == Shape{2, 60}));
  Tensor g(Shape{2, 60});
  Tensor gx = f.backward(g);
  EXPECT_TRUE((gx.shape() == Shape{2, 3, 4, 5}));
}

// --- model flat-vector interface -----------------------------------------------------

TEST(Model, FlatParamRoundTrip) {
  Rng rng(13);
  Model m = make_mlp(6, 10, 4, 0.0, rng);
  ParamVec w = m.params_flat();
  EXPECT_EQ(w.size(), m.num_params());
  ParamVec w2 = w;
  for (auto& v : w2) v += 1.0f;
  m.set_params_flat(w2);
  EXPECT_EQ(m.params_flat(), w2);
  EXPECT_THROW(m.set_params_flat(ParamVec(w.size() + 1)), CheckError);
}

TEST(Model, NumParamsMatchesArchitecture) {
  Rng rng(14);
  Model m = make_logistic(10, 3, 0.0, rng);
  EXPECT_EQ(m.num_params(), 10u * 3u + 3u);
}

TEST(Model, FactoryPaperCnnShapes) {
  Rng rng(15);
  ModelSpec fm;  // defaults: 28x28x1
  fm.width_scale = 1.0;
  Model fmnist = make_fmnist_cnn(fm, rng);
  // conv1: 32*(1*5*5)+32, conv2: 64*(32*5*5)+64, fc: 1024*(64*7*7)+1024,
  // out: 10*1024+10.
  const std::size_t expect = 32 * 25 + 32 + 64 * 32 * 25 + 64 +
                             1024 * 64 * 7 * 7 + 1024 + 10 * 1024 + 10;
  EXPECT_EQ(fmnist.num_params(), expect);

  ModelSpec cf;
  cf.image_h = cf.image_w = 32;
  cf.channels = 3;
  cf.width_scale = 1.0;
  Model cifar = make_cifar_cnn(cf, rng);
  Rng brng(16);
  Batch b;
  b.x = Tensor::uniform(Shape{1, 3, 32, 32}, -1.0f, 1.0f, brng);
  b.y = {0};
  // Forward must produce 10 logits without shape errors.
  Tensor logits = cifar.forward(b.x, false);
  EXPECT_TRUE((logits.shape() == Shape{1, 10}));
}

TEST(Model, TrainingReducesLossOnSeparableData) {
  // Two well-separated Gaussian blobs; logistic regression + plain gradient
  // steps must fit them.
  Rng rng(17);
  const std::size_t n = 60, dim = 4;
  Batch b;
  b.x = Tensor(Shape{n, dim});
  b.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = i % 2;
    b.y[i] = static_cast<std::uint8_t>(cls);
    for (std::size_t d = 0; d < dim; ++d)
      b.x.at(i, d) = static_cast<float>(rng.normal(cls ? 2.0 : -2.0, 0.5));
  }
  Model m = make_logistic(dim, 2, 0.0, rng);
  const double loss0 = m.evaluate(b).loss;
  for (int step = 0; step < 60; ++step) {
    m.forward_backward(b);
    ParamVec w = m.params_flat();
    ParamVec g = m.grads_flat();
    axpy(-0.5f, std::span<const float>(g), std::span<float>(w));
    m.set_params_flat(w);
  }
  const auto final = m.evaluate(b);
  EXPECT_LT(final.loss, 0.3 * loss0);
  EXPECT_GT(final.accuracy, 0.95);
}

TEST(Model, ZeroGradClearsBuffers) {
  Rng rng(18);
  Model m = make_mlp(3, 4, 2, 0.0, rng);
  Batch b = make_random_batch(Shape{2, 3}, 2, rng);
  m.forward_backward(b);
  ParamVec g = m.grads_flat();
  bool any_nonzero = false;
  for (float v : g) any_nonzero |= (v != 0.0f);
  EXPECT_TRUE(any_nonzero);
  m.zero_grad();
  for (float v : m.grads_flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Model, EvaluateMatchesForwardBackwardLoss) {
  Rng rng(19);
  Model m = make_mlp(5, 6, 3, 0.01, rng);
  Batch b = make_random_batch(Shape{4, 5}, 3, rng);
  const double l1 = m.forward_backward(b).loss;
  const double l2 = m.evaluate(b).loss;
  EXPECT_NEAR(l1, l2, 1e-9);
}

TEST(Model, CloneIsDeepAndBehaviorallyIdentical) {
  // clone() backs the FL engine's per-thread scratch replicas: it must copy
  // parameters exactly and share no buffers with the original.
  Rng rng(20);
  ModelSpec ms;
  ms.width_scale = 0.05;
  Model m = make_fmnist_cnn(ms, rng);
  Batch b = make_random_batch(Shape{2, 1, 28, 28}, 10, rng);

  Model c = m.clone();
  EXPECT_EQ(c.num_layers(), m.num_layers());
  EXPECT_EQ(c.num_params(), m.num_params());
  EXPECT_EQ(c.params_flat(), m.params_flat());
  EXPECT_EQ(c.l2_reg(), m.l2_reg());

  // Same forward/backward numbers, bit for bit.
  const EvalResult rm = m.forward_backward(b);
  const EvalResult rc = c.forward_backward(b);
  EXPECT_EQ(rm.loss, rc.loss);
  EXPECT_EQ(rm.accuracy, rc.accuracy);
  EXPECT_EQ(m.grads_flat(), c.grads_flat());

  // Mutating the clone leaves the original untouched (deep copy).
  ParamVec w = c.params_flat();
  for (auto& v : w) v += 1.0f;
  c.set_params_flat(w);
  EXPECT_NE(c.params_flat(), m.params_flat());
}

TEST(Model, SharedReplicaBorrowsParamsAndComputesIdentically) {
  // shared_replica() backs the FL engine's slot-keyed scratch pool: the
  // replica reads the base model's parameter bytes (no copy) but owns its
  // gradients and caches, so concurrent forward/backward on replicas of one
  // base is safe and bit-identical to running the base itself.
  Rng rng(21);
  ModelSpec ms;
  ms.width_scale = 0.05;
  Model m = make_fmnist_cnn(ms, rng);
  Batch b = make_random_batch(Shape{2, 1, 28, 28}, 10, rng);

  Model r = m.shared_replica();
  EXPECT_EQ(r.params_flat(), m.params_flat());
  // A replica is dramatically lighter than a clone: parameters are
  // borrowed, only grads/caches are owned.
  EXPECT_LT(r.owned_bytes(), m.clone().owned_bytes());

  const EvalResult rm = m.forward_backward(b);
  const EvalResult rr = r.forward_backward(b);
  EXPECT_EQ(rm.loss, rr.loss);
  EXPECT_EQ(rm.accuracy, rr.accuracy);
  EXPECT_EQ(m.grads_flat(), r.grads_flat());

  // The replica tracks base parameter updates without re-attaching (it
  // aliases the same storage).
  ParamVec w = m.params_flat();
  for (auto& v : w) v += 0.25f;
  m.set_params_flat(w);
  EXPECT_EQ(r.params_flat(), m.params_flat());
}

TEST(Model, SharedReplicaCopyOnWriteDetachesFromBase) {
  // set_params_flat on a replica must not write through to the base: the
  // borrowed tensors detach (copy-on-write) first. This is what lets DANE's
  // shifted-point evaluations run on replicas while the global model keeps
  // holding w.
  Rng rng(22);
  ModelSpec ms;
  ms.width_scale = 0.05;
  Model m = make_fmnist_cnn(ms, rng);
  const ParamVec base_w = m.params_flat();

  Model r = m.shared_replica();
  ParamVec shifted = base_w;
  for (auto& v : shifted) v += 1.0f;
  r.set_params_flat(shifted);
  EXPECT_EQ(r.params_flat(), shifted);
  EXPECT_EQ(m.params_flat(), base_w) << "COW must not leak into the base";

  // attach_params re-establishes sharing after a detach.
  r.attach_params(m);
  EXPECT_EQ(r.params_flat(), base_w);
}

}  // namespace
}  // namespace fedl::nn
