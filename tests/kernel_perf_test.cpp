// Performance smoke test (ctest label: perf): the blocked/SIMD gemm must
// decisively beat the naive triple loop at n=256. This is a smoke floor, not
// a benchmark — the real numbers live in bench/micro_kernels (see
// BENCH_micro_kernels.json). The 2x floor is far below the observed gap
// (>10x on the AVX2 path, >4x portable) so the test stays robust on noisy
// shared machines and debug-ish build types, while still catching a
// regression that silently falls back to scalar code.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "parallel/scheduler.h"
#include "tensor/gemm.h"
#include "tensor/simd_dispatch.h"

namespace fedl {
namespace {

using Clock = std::chrono::steady_clock;

template <typename Fn>
double best_seconds_of(int reps, const Fn& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

TEST(KernelPerf, BlockedGemmBeatsNaiveAt256) {
  const std::size_t n = 256;
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());

  // Warm up once each (page faults, frequency ramp, dispatch resolution).
  gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
  gemm_naive(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());

  const double fast = best_seconds_of(5, [&] {
    gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
  });
  const double naive = best_seconds_of(3, [&] {
    gemm_naive(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
               c.data());
  });

  RecordProperty("gemm_kernel", gemm_kernel_name(active_gemm_kernel()));
  RecordProperty("gemm_seconds", std::to_string(fast));
  RecordProperty("naive_seconds", std::to_string(naive));
  EXPECT_LT(fast * 2.0, naive)
      << "blocked gemm (" << gemm_kernel_name(active_gemm_kernel())
      << " kernel, " << fast << "s) is not at least 2x faster than "
      << "gemm_naive (" << naive << "s) at n=" << n;
}

TEST(KernelPerf, ThreadedGemmSpeedupAt512) {
  // The macro-loop threading must actually pay: on a machine with >= 4
  // hardware threads, the 512x512 gemm with the whole budget must beat the
  // single-slot run by at least 1.5x wall clock. The floor is far below the
  // expected near-linear strip-loop scaling so the smoke stays robust on
  // noisy shared machines; bench/micro_kernels carries the real numbers.
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw < 4)
    GTEST_SKIP() << "only " << hw
                 << " hardware threads; threaded speedup not measurable";

  const std::size_t n = 512;
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());

  Scheduler& sched = Scheduler::instance();
  sched.configure(1, 1);
  gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
  const double serial = best_seconds_of(3, [&] {
    gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
  });

  sched.configure(hw, 1);
  gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
  const double threaded = best_seconds_of(5, [&] {
    gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
  });
  sched.configure(0, 1);

  RecordProperty("serial_seconds", std::to_string(serial));
  RecordProperty("threaded_seconds", std::to_string(threaded));
  RecordProperty("hardware_threads", std::to_string(hw));
  EXPECT_LT(threaded * 1.5, serial)
      << "threaded gemm (" << threaded << "s at budget " << hw
      << ") is not at least 1.5x faster than the single-slot run (" << serial
      << "s) at n=" << n;
}

}  // namespace
}  // namespace fedl
