// Tests for the mid-epoch fault model and the Theorem 2 bound calculator.
#include <gtest/gtest.h>

#include <cmath>

#include "core/regret.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/engine.h"
#include "harness/experiment.h"
#include "nn/factory.h"

namespace fedl {
namespace {

// --- theorem 2 bound ---------------------------------------------------------------

core::TheoremConstants consts() {
  core::TheoremConstants c;
  c.g_f = 2.0;
  c.g_h = 1.5;
  c.radius = 3.0;
  c.xi = 5.0;
  c.beta = 0.2;
  c.delta = 0.5;
  return c;
}

TEST(Theorem2, MuBoundMatchesLemma2Formula) {
  const auto c = consts();
  const double vmax = 1.0;
  const double expected =
      c.delta * c.g_h + (2 * c.g_f * c.radius +
                         c.radius * c.radius / (2 * c.beta) +
                         c.delta * c.g_h * c.g_h / 2) /
                            (c.xi - vmax);
  EXPECT_NEAR(core::lemma2_mu_bound(c, vmax), expected, 1e-12);
}

TEST(Theorem2, MuBoundVacuousWhenDriftExceedsSlater) {
  EXPECT_TRUE(std::isinf(core::lemma2_mu_bound(consts(), 5.0)));
  EXPECT_TRUE(std::isinf(core::lemma2_mu_bound(consts(), 7.0)));
}

TEST(Theorem2, RegretBoundGrowsWithHorizonAndPaths) {
  const auto c = consts();
  const double b1 = core::theorem2_regret_bound(c, 1.0, 1.0, 0.5, 10.0);
  const double b2 = core::theorem2_regret_bound(c, 1.0, 1.0, 0.5, 20.0);
  const double b3 = core::theorem2_regret_bound(c, 5.0, 1.0, 0.5, 10.0);
  const double b4 = core::theorem2_regret_bound(c, 1.0, 5.0, 0.5, 10.0);
  EXPECT_GT(b2, b1);  // linear-in-T terms
  EXPECT_GT(b3, b1);  // V(Φ*) term
  EXPECT_GT(b4, b1);  // ‖μ̂‖·V(h) term
}

TEST(Theorem2, FitBoundIsMuOverDelta) {
  const auto c = consts();
  EXPECT_NEAR(core::theorem2_fit_bound(c, 0.5),
              core::lemma2_mu_bound(c, 0.5) / c.delta, 1e-12);
}

TEST(Theorem2, TrackerAccumulatesPathLengths) {
  core::RegretConfig rc;
  rc.theta = 0.5;
  rc.n_min = 1;
  core::RegretTracker tracker(3, rc);
  core::BudgetLedger budget(100.0);

  auto make_ctx = [](double tau0) {
    sim::EpochContext ctx;
    ctx.epoch = 1;
    for (std::size_t i = 0; i < 3; ++i) {
      sim::ClientObservation o;
      o.id = i;
      o.cost = 1.0;
      o.data_size = 10;
      o.tau_loc = (i == 0) ? tau0 : 1.0;
      o.tau_cm_est = 0.1;
      ctx.available.push_back(o);
    }
    return ctx;
  };
  core::Decision dec;
  dec.selected = {1};
  dec.num_iterations = 1;
  fl::EpochOutcome out;
  out.selected = {1};
  out.num_iterations = 1;
  out.client_latency_s = {1.1};
  out.client_eta = {0.5};
  out.train_loss_all = 1.0;

  // Epoch 1: client 0 fastest -> Φ* = {0}. Epoch 2: client 0 slowed down ->
  // Φ* = {1 or 2}; the optimum moved, so V_phi grows by √2 (one coordinate
  // off, one on).
  tracker.record(make_ctx(0.1), budget, dec, 1.0, out);
  EXPECT_EQ(tracker.v_phi(), 0.0);  // first epoch: no predecessor
  tracker.record(make_ctx(10.0), budget, dec, 1.0, out);
  EXPECT_NEAR(tracker.v_phi(), std::sqrt(2.0), 1e-9);
  // h identical across both epochs -> no drift.
  EXPECT_NEAR(tracker.v_h(), 0.0, 1e-12);

  // Epoch 3 with a different loss: h^0 rose by 0.5.
  out.train_loss_all = 1.5;
  tracker.record(make_ctx(10.0), budget, dec, 1.0, out);
  EXPECT_NEAR(tracker.v_h(), 0.5, 1e-9);
  EXPECT_NEAR(tracker.v_h_step_max(), 0.5, 1e-9);
}

// --- fault injection ------------------------------------------------------------------

struct FaultFixture {
  FaultFixture(double dropout, std::uint64_t seed) {
    data = std::make_unique<data::TrainTest>(data::make_synthetic_train_test(
        data::fmnist_like_spec(300, seed), 80));
    Rng prng(seed);
    auto part = data::partition_iid(data->train, 6, prng);
    sim::EnvironmentSpec es;
    es.num_clients = 6;
    es.device.seed = seed + 1;
    es.device.availability_prob = 1.0;
    es.channel.seed = seed + 2;
    es.online.seed = seed + 3;
    env = std::make_unique<sim::EdgeEnvironment>(es, part);

    Rng mrng(seed + 4);
    nn::ModelSpec ms;
    ms.width_scale = 0.05;
    fl::EngineConfig ec;
    ec.batch_cap = 12;
    ec.eval_cap = 60;
    ec.dane.sgd_steps = 2;
    ec.faults.dropout_prob = dropout;
    ec.faults.timeout_multiplier = 2.0;
    ec.seed = seed + 5;
    engine = std::make_unique<fl::FlEngine>(
        &data->train, &data->test, env.get(),
        nn::make_fmnist_cnn(ms, mrng), ec);
  }

  std::unique_ptr<data::TrainTest> data;
  std::unique_ptr<sim::EdgeEnvironment> env;
  std::unique_ptr<fl::FlEngine> engine;
};

std::vector<std::size_t> all_available(const sim::EpochContext& ctx) {
  std::vector<std::size_t> out;
  for (const auto& o : ctx.available) out.push_back(o.id);
  return out;
}

TEST(Faults, ZeroDropoutReportsNoDrops) {
  FaultFixture f(0.0, 41);
  const auto& ctx = f.env->advance_epoch();
  const auto out = f.engine->run_epoch(all_available(ctx), 2);
  EXPECT_EQ(out.num_dropped, 0u);
}

TEST(Faults, FullDropoutFreezesModelButChargesTimeout) {
  FaultFixture f(1.0, 43);
  const auto& ctx = f.env->advance_epoch();
  const nn::ParamVec before = f.engine->global_params();
  const auto sel = all_available(ctx);
  const auto out = f.engine->run_epoch(sel, 2);
  EXPECT_EQ(out.num_dropped, sel.size());
  // Clients that die before iteration 0 contribute nothing.
  bool moved = false;
  const nn::ParamVec after = f.engine->global_params();
  for (std::size_t i = 0; i < before.size(); ++i)
    moved |= (before[i] != after[i]);
  // Some may die at iteration 1 (after contributing once)... with drop
  // iteration drawn in [0, l), dying at 0 means no contribution. Either way
  // the timeout multiplier must show up in the latency.
  (void)moved;
  for (double l : out.client_latency_s) EXPECT_GT(l, 0.0);
  EXPECT_GT(out.latency_s, 0.0);
  // Cost is still paid for everyone (they were rented).
  double cost = 0.0;
  for (std::size_t id : sel) cost += ctx.find(id)->cost;
  EXPECT_NEAR(out.cost, cost, 1e-9);
}

TEST(Faults, TimeoutInflatesDroppedClientLatency) {
  // Same seeds with and without faults: dropped clients' latency must be
  // exactly timeout_multiplier × nominal.
  FaultFixture clean(0.0, 47);
  FaultFixture faulty(1.0, 47);  // every client drops
  const auto& ctx_c = clean.env->advance_epoch();
  const auto& ctx_f = faulty.env->advance_epoch();
  const auto sel_c = all_available(ctx_c);
  const auto sel_f = all_available(ctx_f);
  ASSERT_EQ(sel_c, sel_f);
  const auto out_c = clean.engine->run_epoch(sel_c, 2);
  const auto out_f = faulty.engine->run_epoch(sel_f, 2);
  ASSERT_EQ(out_c.client_latency_s.size(), out_f.client_latency_s.size());
  for (std::size_t i = 0; i < out_c.client_latency_s.size(); ++i)
    EXPECT_NEAR(out_f.client_latency_s[i],
                2.0 * out_c.client_latency_s[i], 1e-9);
}

TEST(Faults, PartialDropoutStillTrains) {
  FaultFixture f(0.3, 53);
  double first = 0.0, last = 0.0;
  for (int t = 0; t < 5; ++t) {
    const auto& ctx = f.env->advance_epoch();
    const auto out = f.engine->run_epoch(all_available(ctx), 2);
    if (t == 0) first = out.train_loss_all;
    last = out.train_loss_all;
  }
  EXPECT_LT(last, first);  // surviving clients keep making progress
}

TEST(Faults, ExperimentRunsWithDropout) {
  harness::ScenarioConfig cfg;
  cfg.num_clients = 6;
  cfg.n_min = 2;
  cfg.budget = 80.0;
  cfg.max_epochs = 4;
  cfg.train_samples = 150;
  cfg.test_samples = 50;
  cfg.width_scale = 0.05;
  cfg.batch_cap = 10;
  cfg.eval_cap = 40;
  cfg.dane.sgd_steps = 2;
  cfg.faults.dropout_prob = 0.25;
  harness::Experiment exp(cfg);
  for (const std::string name : {"fedl", "fedavg"}) {
    auto strat = harness::make_strategy(name, cfg);
    const auto res = exp.run(*strat);
    EXPECT_GT(res.epochs_run, 0u) << name;
  }
}

}  // namespace
}  // namespace fedl
