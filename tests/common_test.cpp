// Unit tests for the common substrate: RNG, stats, CSV, flags, math utils,
// error checking.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/config.h"
#include "common/csv.h"
#include "common/error.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/stats.h"

namespace fedl {
namespace {

// --- error ------------------------------------------------------------------

TEST(Error, CheckPassesOnTrue) {
  EXPECT_NO_THROW(FEDL_CHECK(1 + 1 == 2) << "unused");
}

TEST(Error, CheckThrowsWithMessage) {
  try {
    FEDL_CHECK(false) << "ctx " << 42;
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

TEST(Error, ComparisonMacrosIncludeOperands) {
  try {
    FEDL_CHECK_EQ(3, 4) << "mismatch";
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("lhs=3"), std::string::npos);
    EXPECT_NE(msg.find("rhs=4"), std::string::npos);
  }
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(7);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  EXPECT_NE(c1(), c2());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversBoundsInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStat s;
  for (int i = 0; i < 40000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(29);
  RunningStat s;
  for (int i = 0; i < 20000; ++i)
    s.add(static_cast<double>(rng.poisson(3.5)));
  EXPECT_NEAR(s.mean(), 3.5, 0.1);
  EXPECT_NEAR(s.variance(), 3.5, 0.3);
}

TEST(Rng, PoissonMeanLargeLambdaUsesNormalApprox) {
  Rng rng(31);
  RunningStat s;
  for (int i = 0; i < 20000; ++i)
    s.add(static_cast<double>(rng.poisson(200.0)));
  EXPECT_NEAR(s.mean(), 200.0, 1.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(37);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(41);
  RunningStat s;
  for (int i = 0; i < 40000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  auto s = rng.sample_without_replacement(20, 10);
  ASSERT_EQ(s.size(), 10u);
  std::sort(s.begin(), s.end());
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_NE(s[i - 1], s[i]);
  for (std::size_t v : s) EXPECT_LT(v, 20u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(47);
  auto s = rng.sample_without_replacement(5, 5);
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(53);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalAllNonPositiveThrows) {
  Rng rng(59);
  std::vector<double> w = {0.0, -1.0};
  EXPECT_THROW(rng.categorical(w), CheckError);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(61);
  for (double alpha : {0.1, 1.0, 10.0}) {
    auto d = rng.dirichlet(alpha, 7);
    double sum = 0.0;
    for (double v : d) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Rng, GammaMeanEqualsShape) {
  Rng rng(67);
  for (double shape : {0.5, 2.0, 9.0}) {
    RunningStat s;
    for (int i = 0; i < 20000; ++i) s.add(rng.gamma(shape));
    EXPECT_NEAR(s.mean(), shape, 0.08 * shape + 0.03);
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(71);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

// --- stats ---------------------------------------------------------------------

TEST(RunningStat, MatchesNaiveComputation) {
  const std::vector<double> xs = {1.0, 2.0, -3.0, 4.5, 0.25};
  RunningStat s;
  for (double x : xs) s.add(x);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 4.5);
  EXPECT_EQ(s.count(), xs.size());
}

TEST(RunningStat, MergeEqualsCombinedStream) {
  Rng rng(73);
  RunningStat a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Ema, ConvergesToConstantInput) {
  Ema e(0.5);
  for (int i = 0; i < 40; ++i) e.add(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-6);
}

TEST(Ema, FirstValueInitializes) {
  Ema e(0.1);
  EXPECT_FALSE(e.initialized());
  e.add(7.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

TEST(Ema, RejectsBadAlpha) {
  EXPECT_THROW(Ema(0.0), CheckError);
  EXPECT_THROW(Ema(1.5), CheckError);
}

TEST(Percentile, KnownValues) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 73.0), 42.0);
}

TEST(LogLogSlope, RecoversPowerLaw) {
  std::vector<double> x, y;
  for (double t = 1; t <= 64; t *= 2) {
    x.push_back(t);
    y.push_back(3.0 * std::pow(t, 0.66));
  }
  EXPECT_NEAR(loglog_slope(x, y), 0.66, 1e-9);
}

TEST(LogLogSlope, SkipsNonPositivePoints) {
  std::vector<double> x = {0.0, 1, 2, 4};
  std::vector<double> y = {5.0, 1, 2, 4};
  EXPECT_NEAR(loglog_slope(x, y), 1.0, 1e-9);
}

// --- csv ---------------------------------------------------------------------

TEST(CsvTable, WritesHeaderAndRows) {
  CsvTable t;
  t.add_column("a");
  t.add_column("b");
  t.append_row({1.0, 2.5});
  t.append_row({3.0, 4.0});
  std::ostringstream os;
  t.write(os);
  EXPECT_EQ(os.str(), "a,b\n1,2.5\n3,4\n");
}

TEST(CsvTable, RaggedColumnsThrowOnWrite) {
  CsvTable t;
  const auto a = t.add_column("a");
  t.add_column("b");
  t.append(a, 1.0);
  std::ostringstream os;
  EXPECT_THROW(t.write(os), CheckError);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"alg", "val"});
  t.add_row({"FedL", "1"});
  t.add_row({"FedAvg", "22"});
  std::ostringstream os;
  t.write(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| FedL   "), std::string::npos);
  EXPECT_NE(s.find("| FedAvg "), std::string::npos);
}

TEST(FormatNum, CompactOutput) {
  EXPECT_EQ(format_num(3.0), "3");
  EXPECT_EQ(format_num(3.14159), "3.142");
  EXPECT_EQ(format_num(-2.0), "-2");
  EXPECT_EQ(format_num(std::nan("")), "nan");
}

// --- flags -------------------------------------------------------------------

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=2.5", "--name", "hello", "--flag"};
  Flags f(5, argv);
  EXPECT_DOUBLE_EQ(f.get_double("alpha", 0.0), 2.5);
  EXPECT_EQ(f.get_string("name", ""), "hello");
  EXPECT_TRUE(f.get_bool("flag", false));
  EXPECT_EQ(f.get_int("missing", 7), 7);
}

TEST(Flags, ListParsing) {
  const char* argv[] = {"prog", "--budgets=100,200,400"};
  Flags f(2, argv);
  const auto v = f.get_double_list("budgets", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 100);
  EXPECT_DOUBLE_EQ(v[2], 400);
}

TEST(Flags, BadNumberThrows) {
  const char* argv[] = {"prog", "--alpha=abc"};
  Flags f(2, argv);
  EXPECT_THROW(f.get_double("alpha", 0.0), ConfigError);
}

TEST(Flags, NonFlagArgThrows) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Flags(2, argv), ConfigError);
}

TEST(Flags, UnreadKeysReported) {
  const char* argv[] = {"prog", "--used=1", "--unused=2"};
  Flags f(3, argv);
  (void)f.get_int("used", 0);
  const auto leftover = f.unread_keys();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "unused");
}

// --- math_util ------------------------------------------------------------------

TEST(MathUtil, PositivePart) {
  EXPECT_EQ(positive_part(3.0), 3.0);
  EXPECT_EQ(positive_part(-3.0), 0.0);
  EXPECT_EQ(positive_part(0.0), 0.0);
}

TEST(MathUtil, PositivePartNorm) {
  EXPECT_NEAR(positive_part_norm({3.0, -4.0, 4.0}), 5.0, 1e-12);
  EXPECT_EQ(positive_part_norm({-1.0, -2.0}), 0.0);
}

TEST(MathUtil, SigmoidSymmetry) {
  EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(sigmoid(3.0) + sigmoid(-3.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(100.0), 1.0, 1e-9);   // no overflow
  EXPECT_NEAR(sigmoid(-100.0), 0.0, 1e-9);
}

TEST(MathUtil, LogSumExpStable) {
  EXPECT_NEAR(log_sum_exp({0.0, 0.0}), std::log(2.0), 1e-12);
  // Large values must not overflow.
  EXPECT_NEAR(log_sum_exp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathUtil, DecibelConversions) {
  EXPECT_NEAR(db_to_linear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(dbm_to_watts(30.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-15);
}

TEST(MathUtil, DotAndNorm) {
  EXPECT_NEAR(dot({1, 2, 3}, {4, 5, 6}), 32.0, 1e-12);
  EXPECT_NEAR(l2_norm({3.0, 4.0}), 5.0, 1e-12);
}

}  // namespace
}  // namespace fedl
