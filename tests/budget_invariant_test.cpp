// Budget-safety property tests (constraint (3a) is HARD):
//  * every strategy × 20 seeds × tight budgets: the committed selection is
//    affordable at every epoch and the ledger never overdraws;
//  * RDCS repair keeps E[x_k] ≈ x̃_k within a CI when the cap is slack;
//  * the subset rounding API is RNG-sequence-identical to the legacy API;
//  * candidate pruning with width ≥ |E_t| reproduces the unpruned run
//    byte-for-byte (golden-trace gate for the sparse selection path);
//  * unavailable clients' duals are bit-identical across observe();
//  * runs stop after a configurable streak of empty decisions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/fedl_strategy.h"
#include "core/rounding.h"
#include "harness/experiment.h"

namespace fedl {
namespace {

class QuietLogs3 : public ::testing::Environment {
 public:
  void SetUp() override { set_log_level(LogLevel::kWarn); }
};
const auto* const kQuiet3 =
    ::testing::AddGlobalTestEnvironment(new QuietLogs3);

// Synthetic epoch context over `num_clients` clients: a random subset is
// available at Amazon-range posted costs. Mirrors what EdgeEnvironment
// produces without paying for datasets or training.
sim::EpochContext synth_ctx(std::size_t epoch, std::size_t num_clients,
                            Rng& rng) {
  sim::EpochContext ctx;
  ctx.epoch = epoch;
  const std::size_t avail =
      3 + static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(num_clients) - 3));
  std::vector<std::size_t> ids(num_clients);
  for (std::size_t i = 0; i < num_clients; ++i) ids[i] = i;
  rng.shuffle(ids);
  ids.resize(avail);
  std::sort(ids.begin(), ids.end());
  for (std::size_t id : ids) {
    sim::ClientObservation o;
    o.id = id;
    o.cost = rng.uniform(0.1, 12.0);
    o.data_size = 5 + static_cast<std::size_t>(rng.uniform_int(0, 30));
    o.tau_loc = rng.uniform(0.05, 3.0);
    o.tau_cm_est = rng.uniform(0.01, 1.0);
    ctx.available.push_back(o);
  }
  return ctx;
}

fl::EpochOutcome synth_outcome(const core::Decision& dec,
                               const sim::EpochContext& ctx, Rng& rng) {
  fl::EpochOutcome out;
  out.epoch = ctx.epoch;
  out.selected = dec.selected;
  out.num_iterations = std::max<std::size_t>(1, dec.num_iterations);
  double cost = 0.0;
  for (std::size_t id : dec.selected) {
    const auto* obs = ctx.find(id);
    cost += obs != nullptr ? obs->cost : 0.0;
    out.client_eta.push_back(rng.uniform(0.1, 0.95));
    out.client_loss_reduction.push_back(rng.uniform(0.0, 0.3));
    out.client_completed_iters.push_back(out.num_iterations);
  }
  out.cost = cost;
  out.train_loss_all = rng.uniform(0.2, 2.5);
  return out;
}

// --- every strategy never overdraws under tight budgets ---------------------

class BudgetInvariant
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(BudgetInvariant, SpentNeverExceedsBudget) {
  const std::string name = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  Rng rng(seed * 1013904223ULL + 12345ULL);

  harness::ScenarioConfig cfg;
  cfg.num_clients = 12;
  cfg.n_min = 3;
  // Tight: a handful of mid-range rents exhausts it, so the repair path and
  // the shrunken participation floor are exercised on nearly every epoch.
  cfg.budget = rng.uniform(5.0, 60.0);
  cfg.seed = seed;
  // Exercise the pruned prox solve for half of the FedL draws.
  cfg.selection_width = seed % 2 == 0 ? 5 : 0;
  auto strategy = harness::make_strategy(name, cfg);
  core::BudgetLedger ledger(cfg.budget);

  for (std::size_t epoch = 1; epoch <= 30; ++epoch) {
    const sim::EpochContext ctx = synth_ctx(epoch, cfg.num_clients, rng);
    const core::Decision dec = strategy->decide(ctx, ledger);

    std::set<std::size_t> uniq;
    double cost = 0.0;
    for (std::size_t id : dec.selected) {
      ASSERT_TRUE(ctx.is_available(id))
          << name << " selected unavailable client " << id;
      EXPECT_TRUE(uniq.insert(id).second);
      cost += ctx.find(id)->cost;
    }
    // The committed selection must be affordable NOW — not merely on
    // average (the post-rounding overdraw bug let Σc drift past the cap).
    ASSERT_LE(cost, ledger.remaining() + 1e-9)
        << name << " committed an unaffordable selection at epoch " << epoch;

    const fl::EpochOutcome out = synth_outcome(dec, ctx, rng);
    ledger.charge(cost);  // FEDL_CHECKs spent_ ≤ total_ internally
    ASSERT_LE(ledger.spent(), ledger.total() + 1e-9);
    strategy->observe(ctx, dec, out);
    if (ledger.exhausted()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesTimesSeeds, BudgetInvariant,
    ::testing::Combine(::testing::Values("fedl", "fedl-ind", "fedl-fair",
                                         "ucb", "fedavg", "fedcs", "powd",
                                         "oracle"),
                       ::testing::Range<std::uint64_t>(1, 21)));

// --- RDCS marginal preservation under repair --------------------------------

TEST(RdcsRepair, MarginalsSurviveWhenCapIsSlack) {
  // Identical unit costs with a slack cap: the repair never has to flip a
  // coordinate, so FedL's end-to-end selection frequency must match the
  // (deterministic) fractional decision within a CI. The fractional x̃ only
  // depends on ctx/budget/config, while the rounding draw depends on the
  // strategy seed — so re-creating the strategy per trial resamples the
  // rounding alone.
  sim::EpochContext ctx;
  ctx.epoch = 1;
  const std::size_t k = 8;
  for (std::size_t i = 0; i < k; ++i) {
    sim::ClientObservation o;
    o.id = i;
    o.cost = 1.0;
    o.data_size = 20;
    o.tau_loc = 0.2 + 0.15 * static_cast<double>(i);
    o.tau_cm_est = 0.1;
    ctx.available.push_back(o);
  }
  core::BudgetLedger budget(1000.0);

  const int trials = 600;
  std::vector<double> hits(k, 0.0);
  std::vector<double> xfrac;
  for (int t = 0; t < trials; ++t) {
    core::FedLConfig fc;
    fc.learner.n_min = 3;
    fc.seed = static_cast<std::uint64_t>(t) * 2654435761ULL + 17ULL;
    core::FedLStrategy strat(k, fc);
    const core::Decision dec = strat.decide(ctx, budget);
    if (t == 0) xfrac = strat.last_fraction().x;
    for (std::size_t id : dec.selected) hits[id] += 1.0;
  }
  ASSERT_EQ(xfrac.size(), k);
  for (std::size_t i = 0; i < k; ++i) {
    const double p = xfrac[i];
    const double phat = hits[i] / trials;
    // ~4σ binomial CI around the fractional marginal.
    const double ci =
        4.0 * std::sqrt(std::max(p * (1.0 - p), 1e-4) / trials);
    EXPECT_NEAR(phat, p, ci + 1e-9) << "client " << i;
  }
}

TEST(RdcsSubset, MatchesLegacyRngSequence) {
  Rng rng_a(42), rng_b(42);
  const std::vector<double> x = {0.3, 1.0, 0.45, 0.0, 0.8, 0.62, 0.5, 0.17};
  const std::vector<int> legacy = core::rdcs_round(x, rng_a);

  std::vector<double> inplace = x;
  std::vector<std::size_t> idx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) idx[i] = i;
  core::RdcsScratch scratch;
  core::rdcs_round_subset(inplace, idx, rng_b, scratch);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(legacy[i], inplace[i] > 0.5 ? 1 : 0) << "coordinate " << i;
    EXPECT_TRUE(inplace[i] == 0.0 || inplace[i] == 1.0);
  }
  // Both consumed the same number of draws: next uniforms agree.
  EXPECT_EQ(rng_a(), rng_b());
}

TEST(RdcsSubset, OnlyListedCoordinatesChange) {
  Rng rng(7);
  std::vector<double> x = {0.5, 0.25, 0.75, 0.4};
  const std::vector<std::size_t> idx = {1, 3};
  core::RdcsScratch scratch;
  core::rdcs_round_subset(x, idx, rng, scratch);
  EXPECT_DOUBLE_EQ(x[0], 0.5);
  EXPECT_DOUBLE_EQ(x[2], 0.75);
  EXPECT_TRUE(x[1] == 0.0 || x[1] == 1.0);
  EXPECT_TRUE(x[3] == 0.0 || x[3] == 1.0);
}

// --- pruning golden gate: width ≥ |E_t| is byte-identical -------------------

TEST(PruningGolden, WideWidthReproducesDenseTraceByteForByte) {
  harness::ScenarioConfig cfg;
  cfg.num_clients = 8;
  cfg.n_min = 3;
  cfg.budget = 150.0;
  cfg.max_epochs = 5;
  cfg.train_samples = 200;
  cfg.test_samples = 60;
  cfg.width_scale = 0.05;
  cfg.batch_cap = 10;
  cfg.eval_cap = 48;
  cfg.dane.sgd_steps = 2;
  cfg.seed = 77;
  cfg.trace_out = "unused-deferred.jsonl";  // buffered, never written
  cfg.defer_trace = true;

  auto run_with_width = [&](std::size_t width) {
    harness::ScenarioConfig c = cfg;
    c.selection_width = width;
    harness::Experiment exp(c);
    auto strat = harness::make_strategy("fedl", c);
    return exp.run(*strat);
  };

  const harness::RunResult dense = run_with_width(0);
  // Width ≥ any possible |E_t| (≤ num_clients): pruning selects everyone.
  const harness::RunResult wide = run_with_width(cfg.num_clients);
  ASSERT_GT(dense.epochs_run, 0u);
  EXPECT_EQ(dense.epochs_run, wide.epochs_run);
  EXPECT_EQ(dense.trace_jsonl, wide.trace_jsonl);
  EXPECT_EQ(dense.trace.final_accuracy(), wide.trace.final_accuracy());
  EXPECT_EQ(dense.trace.total_cost(), wide.trace.total_cost());
}

TEST(Pruning, NarrowWidthBoundsCandidatesAndStaysFeasible) {
  Rng rng(321);
  core::FedLConfig fc;
  fc.learner.n_min = 3;
  fc.learner.selection_width = 5;
  fc.seed = 9;
  core::FedLStrategy strat(16, fc);
  core::BudgetLedger ledger(80.0);
  for (std::size_t epoch = 1; epoch <= 12; ++epoch) {
    const sim::EpochContext ctx = synth_ctx(epoch, 16, rng);
    const core::Decision dec = strat.decide(ctx, ledger);
    EXPECT_LE(strat.last_fraction().ids.size(), 5u);
    double cost = 0.0;
    for (std::size_t id : dec.selected) {
      ASSERT_TRUE(ctx.is_available(id));
      cost += ctx.find(id)->cost;
    }
    ASSERT_LE(cost, ledger.remaining() + 1e-9);
    const fl::EpochOutcome out = synth_outcome(dec, ctx, rng);
    ledger.charge(cost);
    strat.observe(ctx, dec, out);
    if (ledger.exhausted()) break;
  }
}

// --- sparse dual ascent: untouched clients are bit-identical ----------------

TEST(SparseDuals, UnavailableClientsKeepBitIdenticalState) {
  core::LearnerConfig cfg;
  cfg.n_min = 2;
  core::OnlineLearner learner(6, cfg);
  core::BudgetLedger budget(500.0);

  auto ctx_for = [](std::vector<std::size_t> ids) {
    sim::EpochContext ctx;
    ctx.epoch = 1;
    for (std::size_t id : ids) {
      sim::ClientObservation o;
      o.id = id;
      o.cost = 1.0 + static_cast<double>(id);
      o.data_size = 20;
      o.tau_loc = 0.3;
      o.tau_cm_est = 0.1;
      ctx.available.push_back(o);
    }
    return ctx;
  };

  // Epoch 1: client 5 is available and the constraint is violated, so its
  // dual becomes nonzero.
  {
    const auto ctx = ctx_for({0, 1, 5});
    const auto frac = learner.decide(ctx, budget);
    fl::EpochOutcome out;
    out.selected = frac.ids;
    out.num_iterations = 2;
    out.client_eta.assign(frac.ids.size(), 0.95);
    out.client_loss_reduction.assign(frac.ids.size(), 0.05);
    out.client_completed_iters.assign(frac.ids.size(), 2);
    out.train_loss_all = 2.0;
    learner.observe(ctx, frac, out);
  }
  const double mu5 = learner.mu_k(5);
  const double eta5 = learner.eta_estimate(5);
  const double delta5 = learner.delta_estimate(5);
  const double x5 = learner.x_fraction(5);

  // Epochs 2..6: client 5 never appears; every bit of its state must
  // survive untouched (the dense implementation used to clamp all M duals).
  for (int t = 0; t < 5; ++t) {
    const auto ctx = ctx_for({0, 1, 2, 3});
    const auto frac = learner.decide(ctx, budget);
    fl::EpochOutcome out;
    out.selected = frac.ids;
    out.num_iterations = 2;
    out.client_eta.assign(frac.ids.size(), 0.4);
    out.client_loss_reduction.assign(frac.ids.size(), 0.1);
    out.client_completed_iters.assign(frac.ids.size(), 2);
    out.train_loss_all = 1.0;
    learner.observe(ctx, frac, out);
  }
  EXPECT_EQ(learner.mu_k(5), mu5);
  EXPECT_EQ(learner.eta_estimate(5), eta5);
  EXPECT_EQ(learner.delta_estimate(5), delta5);
  EXPECT_EQ(learner.x_fraction(5), x5);
  // Never-seen clients read as the priors without allocating a slot.
  EXPECT_EQ(learner.mu_k(4), 0.0);
  EXPECT_LE(learner.active_clients(), 6u);
}

// --- empty-decision streak termination --------------------------------------

TEST(Termination, EmptyDecisionStreakStopsTheRun) {
  harness::ScenarioConfig cfg;
  cfg.num_clients = 6;
  cfg.n_min = 2;
  cfg.budget = 200.0;
  cfg.max_epochs = 60;
  cfg.train_samples = 120;
  cfg.test_samples = 40;
  cfg.width_scale = 0.05;
  cfg.batch_cap = 8;
  cfg.eval_cap = 32;
  cfg.dane.sgd_steps = 1;
  cfg.seed = 5;
  cfg.availability = 1e-9;  // nobody ever shows up -> empty decisions
  cfg.empty_decision_streak = 4;
  harness::Experiment exp(cfg);
  auto strat = harness::make_strategy("fedl", cfg);
  const auto res = exp.run(*strat);
  EXPECT_EQ(res.termination_reason, "empty_decisions");
  EXPECT_LT(res.epochs_run, cfg.max_epochs);
  EXPECT_LE(res.epochs_run, 4u);
}

TEST(Termination, ReasonIsAlwaysRecorded) {
  harness::ScenarioConfig cfg;
  cfg.num_clients = 6;
  cfg.n_min = 2;
  cfg.budget = 5000.0;  // generous: max_epochs is the binding stop
  cfg.max_epochs = 3;
  cfg.train_samples = 120;
  cfg.test_samples = 40;
  cfg.width_scale = 0.05;
  cfg.batch_cap = 8;
  cfg.eval_cap = 32;
  cfg.dane.sgd_steps = 1;
  cfg.seed = 6;
  harness::Experiment exp(cfg);
  auto strat = harness::make_strategy("fedavg", cfg);
  const auto res = exp.run(*strat);
  EXPECT_EQ(res.termination_reason, "max_epochs");
  EXPECT_EQ(res.epochs_run, 3u);
}

}  // namespace
}  // namespace fedl
