// Ablation A9: uplink update compression. With the paper's constant payload
// s the uplink dominates slow clients' latency; stochastic quantization and
// top-k sparsification shrink τ^cm at the cost of noisier aggregates. The
// bench reports accuracy/time/total-latency per compressor so the
// communication/accuracy trade-off is visible.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "harness/experiment.h"
#include "obs/session.h"

int main(int argc, char** argv) {
  using namespace fedl;
  try {
    Flags flags(argc, argv);
    obs::ObsSession session(flags, "warn");

    harness::ScenarioConfig base;
    base.num_clients = static_cast<std::size_t>(flags.get_int("clients", 12));
    base.n_min = 4;
    base.budget = flags.get_double("budget", 500.0);
    base.max_epochs = static_cast<std::size_t>(flags.get_int("epochs", 25));
    base.train_samples =
        static_cast<std::size_t>(flags.get_int("samples", 500));
    base.test_samples = 150;
    base.width_scale = flags.get_double("scale", 0.08);
    base.batch_cap = 16;
    base.eval_cap = 96;
    base.dane.sgd_steps = 2;
    base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

    std::cout << "== Table: uplink compression trade-off (FedL)\n";
    TextTable table({"compressor", "total_time_s", "final_acc",
                     "final_loss", "epochs"});
    for (const std::string comp :
         {"none", "quant8", "quant4", "topk10", "topk1"}) {
      harness::ScenarioConfig cfg = base;
      cfg.compressor = comp;
      harness::Experiment exp(cfg);
      auto strat = harness::make_strategy("fedl", cfg);
      const auto res = exp.run(*strat);
      table.add_row({comp, format_num(res.trace.total_time()),
                     format_num(res.trace.final_accuracy()),
                     format_num(res.trace.final_loss()),
                     std::to_string(res.epochs_run)});
    }
    table.write(std::cout);
    std::cout << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << "\n";
    return 1;
  }
}
