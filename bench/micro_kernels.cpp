// A4: google-benchmark microbenchmarks for the hot kernels — GEMM, im2col
// convolution, the DANE local step, the intersection projection, and RDCS.
#include <benchmark/benchmark.h>

#include <thread>

#include "common/rng.h"
#include "parallel/scheduler.h"
#include "core/fedl_strategy.h"
#include "core/rounding.h"
#include "data/synthetic.h"
#include "fl/dane.h"
#include "nn/factory.h"
#include "solver/projection.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/simd_dispatch.h"

namespace {

using namespace fedl;

// Args: {n, threads}. threads == 1 pins the serial macro loop; larger
// values configure the Scheduler budget so the strip loop leases workers
// (still bit-identical output — see DESIGN.md §4). threads == 0 uses every
// hardware thread. Real time is the honest metric for the threaded rows.
void BM_GemmSquare(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::size_t threads = static_cast<std::size_t>(state.range(1));
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  Scheduler::instance().configure(threads, 1);
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n * 2);
  state.SetLabel(std::string(gemm_kernel_name(active_gemm_kernel())) +
                 "/threads:" + std::to_string(threads));
  Scheduler::instance().configure(0, 1);
}
BENCHMARK(BM_GemmSquare)
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({512, 1})
    ->Args({256, 8})
    ->Args({512, 8})
    ->Args({512, 0})
    ->UseRealTime();

// Same shape, each micro-kernel pinned explicitly: the deltas between
// /avx512, /avx2 and /portable are the SIMD dispatch wins in isolation.
bool kernel_runnable(GemmKernel kernel) {
  switch (kernel) {
    case GemmKernel::kAvx512: return cpu_supports_avx512();
    case GemmKernel::kAvx2Fma: return cpu_supports_avx2_fma();
    case GemmKernel::kPortable: return true;
  }
  return false;
}

void BM_GemmKernel(benchmark::State& state, GemmKernel kernel) {
  if (!kernel_runnable(kernel)) {
    state.SkipWithError("CPU lacks the requested SIMD tier");
    return;
  }
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  force_gemm_kernel(kernel);
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  force_gemm_kernel(resolve_gemm_kernel(nullptr, cpu_supports_avx512(),
                                        cpu_supports_avx2_fma()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n * 2);
}
BENCHMARK_CAPTURE(BM_GemmKernel, avx512, GemmKernel::kAvx512)->Arg(256);
BENCHMARK_CAPTURE(BM_GemmKernel, avx2, GemmKernel::kAvx2Fma)->Arg(256);
BENCHMARK_CAPTURE(BM_GemmKernel, portable, GemmKernel::kPortable)->Arg(256);

void BM_GemmNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    gemm_naive(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
               c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n * 2);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128);

void BM_Im2col(benchmark::State& state) {
  Conv2dGeometry g{32, 28, 28, 5, 5, 1, 2};
  std::vector<float> img(32 * 28 * 28, 1.0f);
  std::vector<float> cols(g.col_rows() * g.col_cols());
  for (auto _ : state) {
    im2col(g, img.data(), cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col);

void BM_CnnForward(benchmark::State& state) {
  Rng rng(2);
  nn::ModelSpec spec;
  spec.width_scale = 0.25;
  nn::Model model = nn::make_fmnist_cnn(spec, rng);
  Tensor x = Tensor::uniform(Shape{8, 1, 28, 28}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    Tensor out = model.forward(x, false);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CnnForward);

// Full training step (forward + backward) over a batch — exercises the
// whole-batch conv pipeline: batched im2col, one GEMM per layer direction,
// and the blocked deterministic weight-gradient reduction.
void BM_CnnTrainStep(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  nn::ModelSpec spec;
  spec.width_scale = 0.25;
  nn::Model model = nn::make_fmnist_cnn(spec, rng);
  nn::Batch b;
  b.x = Tensor::uniform(Shape{batch, 1, 28, 28}, -1.0f, 1.0f, rng);
  b.y.resize(batch);
  for (auto& y : b.y) y = static_cast<std::uint8_t>(rng.uniform_int(0, 9));
  for (auto _ : state) {
    auto r = model.forward_backward(b);
    benchmark::DoNotOptimize(r.loss);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_CnnTrainStep)->Arg(8)->Arg(32);

void BM_DaneLocalStep(benchmark::State& state) {
  Rng rng(3);
  nn::Model model = nn::make_mlp(64, 32, 10, 1e-3, rng);
  nn::Batch batch;
  batch.x = Tensor::uniform(Shape{16, 64}, -1.0f, 1.0f, rng);
  batch.y.resize(16);
  for (auto& y : batch.y)
    y = static_cast<std::uint8_t>(rng.uniform_int(0, 9));
  fl::LocalOracle oracle(&model, &batch);
  const nn::ParamVec w = model.params_flat();
  fl::DaneConfig cfg;
  cfg.sgd_steps = 5;
  for (auto _ : state) {
    auto upd = fl::dane_local_step(oracle, w, {}, cfg);
    benchmark::DoNotOptimize(upd.d.data());
  }
}
BENCHMARK(BM_DaneLocalStep);

void BM_ProjectIntersection(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  solver::FeasibleSet set;
  set.lo.assign(n, 0.0);
  set.hi.assign(n, 1.0);
  solver::Halfspace budget;
  budget.a.resize(n);
  for (auto& a : budget.a) a = rng.uniform(0.1, 12.0);
  budget.b = static_cast<double>(n);
  solver::Halfspace minsum;
  minsum.a.assign(n, -1.0);
  minsum.b = -4.0;
  set.halfspaces = {budget, minsum};
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-0.5, 1.5);
  for (auto _ : state) {
    auto p = solver::project_intersection(set, x);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_ProjectIntersection)->Arg(20)->Arg(100);

void BM_RdcsRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng gen(5);
  std::vector<double> fractions(n);
  for (auto& f : fractions) f = gen.uniform(0.05, 0.95);
  Rng rng(6);
  for (auto _ : state) {
    auto r = core::rdcs_round(fractions, rng);
    benchmark::DoNotOptimize(r.data());
  }
}
BENCHMARK(BM_RdcsRound)->Arg(20)->Arg(100);

// Theorem 4: FedL's per-epoch decision is polynomial, O(T_C K²). One
// decide()+observe() cycle as a function of the available-client count K.
void BM_FedLDecide(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  core::FedLConfig fc;
  fc.learner.n_min = 5;
  core::FedLStrategy strat(k, fc);
  core::BudgetLedger budget(1e9);
  sim::EpochContext ctx;
  ctx.epoch = 1;
  for (std::size_t i = 0; i < k; ++i) {
    sim::ClientObservation o;
    o.id = i;
    o.cost = rng.uniform(0.1, 12.0);
    o.data_size = 20;
    o.tau_loc = rng.uniform(0.1, 3.0);
    o.tau_cm_est = rng.uniform(0.05, 1.0);
    ctx.available.push_back(o);
  }
  for (auto _ : state) {
    core::Decision dec = strat.decide(ctx, budget);
    fl::EpochOutcome out;
    out.selected = dec.selected;
    out.num_iterations = dec.num_iterations;
    out.client_eta.assign(dec.selected.size(), 0.5);
    out.client_loss_reduction.assign(dec.selected.size(), 0.1);
    out.train_loss_all = 1.0;
    strat.observe(ctx, dec, out);
    benchmark::DoNotOptimize(dec.selected.data());
  }
}
BENCHMARK(BM_FedLDecide)->Arg(10)->Arg(50)->Arg(100);

void BM_SyntheticGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto ds = data::make_synthetic(data::fmnist_like_spec(200, 1));
    benchmark::DoNotOptimize(ds.size());
  }
}
BENCHMARK(BM_SyntheticGeneration);

}  // namespace

BENCHMARK_MAIN();
