// Shared driver for the figure benches (DESIGN.md §3).
//
// Every accuracy figure (Figs. 2–5) runs the paper's roster (FedL, FedCS,
// FedAvg, Pow-d) on IID and non-IID variants of one task and prints one CSV
// series per (algorithm, setting) plus the in-text tables the paper quotes.
// The budget figures (Figs. 6–7) sweep the budget and report the final loss
// per algorithm. Flags let a full-scale run reproduce the paper's exact
// model sizes (--scale 1.0) while the defaults finish on a laptop CPU.
//
// The grid is embarrassingly parallel: every (algorithm, setting[, budget])
// cell is an independent trial, so the benches submit them through the
// process-wide Scheduler. `--jobs J` runs J trials concurrently and
// `--threads K` pins each trial's intra-epoch fan-out (default 0 = each
// trial draws from the scheduler's remaining thread budget, so `--jobs`
// alone saturates the machine); `--thread-budget B` caps the total
// (default: all hardware threads). Every per-trial trace and JSONL decision
// record is bit-identical to a `--jobs 1 --threads 1` run — trials keep
// seed-derived RNG streams and ordered reductions, and results/traces are
// committed in grid order.
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "obs/event_trace.h"
#include "obs/session.h"
#include "parallel/scheduler.h"

namespace fedl::bench {

inline harness::ScenarioConfig scenario_from_flags(const Flags& flags,
                                                   harness::Task task) {
  harness::ScenarioConfig cfg;
  cfg.task = task;
  const bool cifar = task == harness::Task::kCifarLike;
  cfg.num_clients = static_cast<std::size_t>(flags.get_int("clients", 12));
  cfg.n_min = static_cast<std::size_t>(flags.get_int("n", 4));
  // The budget is the binding stop (the paper's long-term constraint);
  // max_epochs is only a safety cap above the budget-induced horizon T_C.
  cfg.budget = flags.get_double("budget", 900.0);
  cfg.max_epochs =
      static_cast<std::size_t>(flags.get_int("epochs", cifar ? 45 : 60));
  cfg.train_samples =
      static_cast<std::size_t>(flags.get_int("samples", cifar ? 400 : 600));
  cfg.test_samples = static_cast<std::size_t>(flags.get_int("test", 250));
  cfg.width_scale = flags.get_double("scale", cifar ? 0.1 : 0.08);
  cfg.batch_cap = static_cast<std::size_t>(flags.get_int("batch", 24));
  cfg.eval_cap = static_cast<std::size_t>(flags.get_int("eval", 160));
  cfg.theta = flags.get_double("theta", 0.5);
  // FedL candidate-pruning width (--width 0 = exact full-E_t solve).
  cfg.selection_width =
      static_cast<std::size_t>(flags.get_int("width", 0));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.dane.sgd_steps =
      static_cast<std::size_t>(flags.get_int("sgd-steps", 3));
  // Per-client training fan-out. The default 0 draws each trial's fan-out
  // from the scheduler's remaining thread budget (so --jobs alone uses the
  // whole machine, and a bare run uses all cores); an explicit K pins it.
  // Thread count never changes the numbers, only the wall clock.
  cfg.num_threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  // Per-epoch JSONL decision telemetry (--trace-out; ObsSession truncates
  // the file at startup, each trial's events are appended in grid order).
  cfg.trace_out = flags.get_string("trace-out", "");
  // Live health plane: --monitor streams the run through the invariant
  // monitor (regret envelope, budget pacing, estimator drift, dropout
  // windows); --strict-monitor promotes any firing to FEDL_CHECK; --digest
  // chains the per-epoch determinism digests into trace and manifest.
  cfg.monitor = flags.get_bool("monitor", false);
  cfg.strict_monitor = flags.get_bool("strict-monitor", false);
  if (cfg.strict_monitor) cfg.monitor = true;
  cfg.record_digests = flags.get_bool("digest", false);
  // Event-driven execution (DESIGN.md §12): --async kills the epoch barrier
  // and aggregates on FedBuff-style buffer flushes of --buffer-k updates
  // with 1/(1+staleness)^(--staleness-exp) damping; --flush-timeout flushes
  // a short buffer after that much virtual time (0 = K-only).
  cfg.async.enabled = flags.get_bool("async", false);
  cfg.async.buffer_k =
      static_cast<std::size_t>(flags.get_int("buffer-k", 4));
  cfg.async.staleness_exponent = flags.get_double("staleness-exp", 0.5);
  cfg.async.flush_timeout_s = flags.get_double("flush-timeout", 0.0);
  // UCB exploration bonus on the --width pruning score (0 = pure exploit).
  cfg.width_explore = flags.get_double("width-explore", 0.0);
  return cfg;
}

// Applies the grid-level concurrency flags to the process-wide scheduler:
// --jobs (concurrent trials, default 1), --thread-budget (total worker
// slots, default 0 = hardware concurrency).
inline void configure_scheduler_from_flags(const Flags& flags) {
  Scheduler::instance().configure(
      static_cast<std::size_t>(flags.get_int("thread-budget", 0)),
      static_cast<std::size_t>(flags.get_int("jobs", 1)));
}

struct FigureRun {
  std::string setting;  // "IID" or "Non-IID"
  std::vector<fl::TrainTrace> traces;
};

// Commits the deferred per-trial JSONL buffers to --trace-out in trial
// order, making the shared file byte-identical for any --jobs value.
inline void commit_traces(
    const std::string& trace_out,
    const std::vector<std::unique_ptr<harness::RunResult>>& results) {
  if (trace_out.empty()) return;
  obs::EventTraceWriter writer(trace_out, true);
  for (const auto& r : results)
    if (r) writer.write_raw(r->trace_jsonl);
}

// Runs the paper roster on both data distributions: one scheduler trial per
// (setting, algorithm) cell. The two Experiments (dataset + partition) are
// built once per setting and shared by the setting's trials — Experiment::run
// only reads them.
inline std::vector<FigureRun> run_roster(const Flags& flags,
                                         harness::Task task) {
  const std::vector<std::string> roster = harness::paper_roster();
  std::vector<FigureRun> out(2);
  std::vector<std::unique_ptr<harness::Experiment>> experiments;
  struct TrialSpec {
    std::size_t setting;
    std::size_t alg;
  };
  std::vector<TrialSpec> trials;
  const bool iids[2] = {true, false};
  for (std::size_t si = 0; si < 2; ++si) {
    harness::ScenarioConfig cfg = scenario_from_flags(flags, task);
    cfg.iid = iids[si];
    cfg.defer_trace = true;
    experiments.push_back(std::make_unique<harness::Experiment>(cfg));
    out[si].setting = iids[si] ? "IID" : "Non-IID";
    for (std::size_t ai = 0; ai < roster.size(); ++ai)
      trials.push_back({si, ai});
  }

  std::vector<std::unique_ptr<harness::RunResult>> results(trials.size());
  Scheduler::instance().run_trials(trials.size(), [&](std::size_t i) {
    harness::Experiment& exp = *experiments[trials[i].setting];
    auto strat = harness::make_strategy(roster[trials[i].alg], exp.config());
    results[i] = std::make_unique<harness::RunResult>(exp.run(*strat));
  });

  commit_traces(experiments.front()->config().trace_out, results);
  for (std::size_t i = 0; i < trials.size(); ++i)
    out[trials[i].setting].traces.push_back(std::move(results[i]->trace));
  return out;
}

// Figs. 2–3: accuracy vs training time, plus the in-text tables
// ("accuracy after T seconds", "completion time to target accuracy").
inline void accuracy_vs_time_figure(const std::string& figure,
                                    harness::Task task, const Flags& flags) {
  const auto runs = run_roster(flags, task);
  for (const auto& run : runs) {
    for (const auto& t : run.traces)
      harness::print_trace_series(std::cout, figure + " " + run.setting,
                                  t.algorithm, t);
  }
  // The CIFAR-like task is deliberately harder (DESIGN.md §5): probe a
  // correspondingly lower completion-time target.
  const double acc_target = flags.get_double(
      "target-acc", task == harness::Task::kCifarLike ? 0.35 : 0.6);
  for (const auto& run : runs) {
    std::cout << "-- Setting: " << run.setting << "\n";
    // "accuracy after X s": use the shortest total time so every algorithm
    // has data at the probe point.
    double probe = run.traces.front().total_time();
    for (const auto& t : run.traces)
      probe = std::min(probe, t.total_time());
    harness::print_accuracy_at_time_table(std::cout, probe, run.traces);
    harness::print_time_to_accuracy_table(std::cout, acc_target, run.traces);
  }
}

// Figs. 4–5: accuracy vs federated round plus "rounds to target" table.
inline void accuracy_vs_round_figure(const std::string& figure,
                                     harness::Task task, const Flags& flags) {
  const auto runs = run_roster(flags, task);
  for (const auto& run : runs) {
    for (const auto& t : run.traces)
      harness::print_trace_series(std::cout, figure + " " + run.setting,
                                  t.algorithm, t);
  }
  const double acc_target = flags.get_double(
      "target-acc", task == harness::Task::kCifarLike ? 0.35 : 0.6);
  for (const auto& run : runs) {
    std::cout << "-- Setting: " << run.setting << "\n";
    harness::print_rounds_to_accuracy_table(std::cout, acc_target,
                                            run.traces);
  }
}

// Figs. 6–7: final training loss as a function of the budget. One scheduler
// trial per (setting, budget, algorithm) cell; each trial owns its
// Experiment (the dataset build is part of the trial's work).
inline void budget_impact_figure(const std::string& figure,
                                 harness::Task task, const Flags& flags) {
  const std::vector<double> budgets =
      flags.get_double_list("budgets", {100, 200, 400, 800});
  const std::vector<std::string> roster = harness::paper_roster();

  struct TrialSpec {
    bool iid;
    double budget;
    std::size_t alg;
  };
  std::vector<TrialSpec> trials;
  for (bool iid : {true, false})
    for (double budget : budgets)
      for (std::size_t ai = 0; ai < roster.size(); ++ai)
        trials.push_back({iid, budget, ai});

  std::vector<std::unique_ptr<harness::RunResult>> results(trials.size());
  Scheduler::instance().run_trials(trials.size(), [&](std::size_t i) {
    harness::ScenarioConfig cfg = scenario_from_flags(flags, task);
    cfg.iid = trials[i].iid;
    cfg.budget = trials[i].budget;
    cfg.defer_trace = true;
    harness::Experiment exp(cfg);
    auto strat = harness::make_strategy(roster[trials[i].alg], cfg);
    results[i] = std::make_unique<harness::RunResult>(exp.run(*strat));
  });
  commit_traces(flags.get_string("trace-out", ""), results);

  std::size_t cell = 0;
  for (bool iid : {true, false}) {
    const std::string setting = iid ? "IID" : "Non-IID";
    std::cout << "== Series: " << figure << " " << setting
              << " / loss_vs_budget\n";
    CsvTable table;
    table.add_column("budget");
    for (const auto& name : roster)
      table.add_column(harness::strategy_display_name(name) + "_loss");
    for (double budget : budgets) {
      std::vector<double> row = {budget};
      for (std::size_t ai = 0; ai < roster.size(); ++ai)
        row.push_back(results[cell++]->trace.final_loss());
      table.append_row(row);
    }
    table.write(std::cout);
    std::cout << "\n";
  }
}

inline int figure_main(int argc, char** argv, const std::string& figure,
                       harness::Task task,
                       void (*fn)(const std::string&, harness::Task,
                                  const Flags&)) {
  try {
    Flags flags(argc, argv);
    obs::ObsSession session(flags, "warn");
    configure_scheduler_from_flags(flags);
    fn(figure, task, flags);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace fedl::bench
