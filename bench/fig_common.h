// Shared driver for the figure benches (DESIGN.md §3).
//
// Every accuracy figure (Figs. 2–5) runs the paper's roster (FedL, FedCS,
// FedAvg, Pow-d) on IID and non-IID variants of one task and prints one CSV
// series per (algorithm, setting) plus the in-text tables the paper quotes.
// The budget figures (Figs. 6–7) sweep the budget and report the final loss
// per algorithm. Flags let a full-scale run reproduce the paper's exact
// model sizes (--scale 1.0) while the defaults finish on a laptop CPU.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "obs/session.h"

namespace fedl::bench {

inline harness::ScenarioConfig scenario_from_flags(const Flags& flags,
                                                   harness::Task task) {
  harness::ScenarioConfig cfg;
  cfg.task = task;
  const bool cifar = task == harness::Task::kCifarLike;
  cfg.num_clients = static_cast<std::size_t>(flags.get_int("clients", 12));
  cfg.n_min = static_cast<std::size_t>(flags.get_int("n", 4));
  // The budget is the binding stop (the paper's long-term constraint);
  // max_epochs is only a safety cap above the budget-induced horizon T_C.
  cfg.budget = flags.get_double("budget", 900.0);
  cfg.max_epochs =
      static_cast<std::size_t>(flags.get_int("epochs", cifar ? 45 : 60));
  cfg.train_samples =
      static_cast<std::size_t>(flags.get_int("samples", cifar ? 400 : 600));
  cfg.test_samples = static_cast<std::size_t>(flags.get_int("test", 250));
  cfg.width_scale = flags.get_double("scale", cifar ? 0.1 : 0.08);
  cfg.batch_cap = static_cast<std::size_t>(flags.get_int("batch", 24));
  cfg.eval_cap = static_cast<std::size_t>(flags.get_int("eval", 160));
  cfg.theta = flags.get_double("theta", 0.5);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.dane.sgd_steps =
      static_cast<std::size_t>(flags.get_int("sgd-steps", 3));
  // Per-client training fan-out (--threads 0 = all cores). Thread count
  // never changes the numbers, only the wall clock.
  cfg.num_threads = static_cast<std::size_t>(flags.get_int("threads", 1));
  // Per-epoch JSONL decision telemetry (--trace-out; ObsSession truncates
  // the file at startup, each run appends).
  cfg.trace_out = flags.get_string("trace-out", "");
  return cfg;
}

struct FigureRun {
  std::string setting;  // "IID" or "Non-IID"
  std::vector<fl::TrainTrace> traces;
};

// Runs the paper roster on both data distributions.
inline std::vector<FigureRun> run_roster(const Flags& flags,
                                         harness::Task task) {
  std::vector<FigureRun> out;
  for (bool iid : {true, false}) {
    harness::ScenarioConfig cfg = scenario_from_flags(flags, task);
    cfg.iid = iid;
    harness::Experiment exp(cfg);
    FigureRun run;
    run.setting = iid ? "IID" : "Non-IID";
    for (const auto& name : harness::paper_roster()) {
      auto strat = harness::make_strategy(name, cfg);
      run.traces.push_back(exp.run(*strat).trace);
    }
    out.push_back(std::move(run));
  }
  return out;
}

// Figs. 2–3: accuracy vs training time, plus the in-text tables
// ("accuracy after T seconds", "completion time to target accuracy").
inline void accuracy_vs_time_figure(const std::string& figure,
                                    harness::Task task, const Flags& flags) {
  const auto runs = run_roster(flags, task);
  for (const auto& run : runs) {
    for (const auto& t : run.traces)
      harness::print_trace_series(std::cout, figure + " " + run.setting,
                                  t.algorithm, t);
  }
  // The CIFAR-like task is deliberately harder (DESIGN.md §5): probe a
  // correspondingly lower completion-time target.
  const double acc_target = flags.get_double(
      "target-acc", task == harness::Task::kCifarLike ? 0.35 : 0.6);
  for (const auto& run : runs) {
    std::cout << "-- Setting: " << run.setting << "\n";
    // "accuracy after X s": use the shortest total time so every algorithm
    // has data at the probe point.
    double probe = run.traces.front().total_time();
    for (const auto& t : run.traces)
      probe = std::min(probe, t.total_time());
    harness::print_accuracy_at_time_table(std::cout, probe, run.traces);
    harness::print_time_to_accuracy_table(std::cout, acc_target, run.traces);
  }
}

// Figs. 4–5: accuracy vs federated round plus "rounds to target" table.
inline void accuracy_vs_round_figure(const std::string& figure,
                                     harness::Task task, const Flags& flags) {
  const auto runs = run_roster(flags, task);
  for (const auto& run : runs) {
    for (const auto& t : run.traces)
      harness::print_trace_series(std::cout, figure + " " + run.setting,
                                  t.algorithm, t);
  }
  const double acc_target = flags.get_double(
      "target-acc", task == harness::Task::kCifarLike ? 0.35 : 0.6);
  for (const auto& run : runs) {
    std::cout << "-- Setting: " << run.setting << "\n";
    harness::print_rounds_to_accuracy_table(std::cout, acc_target,
                                            run.traces);
  }
}

// Figs. 6–7: final training loss as a function of the budget.
inline void budget_impact_figure(const std::string& figure,
                                 harness::Task task, const Flags& flags) {
  const std::vector<double> budgets =
      flags.get_double_list("budgets", {100, 200, 400, 800});
  for (bool iid : {true, false}) {
    const std::string setting = iid ? "IID" : "Non-IID";
    std::cout << "== Series: " << figure << " " << setting
              << " / loss_vs_budget\n";
    CsvTable table;
    table.add_column("budget");
    harness::ScenarioConfig probe = scenario_from_flags(flags, task);
    for (const auto& name : harness::paper_roster()) {
      harness::ScenarioConfig cfg = probe;
      auto strat = harness::make_strategy(name, cfg);
      table.add_column(strat->name() + "_loss");
    }
    for (double budget : budgets) {
      std::vector<double> row = {budget};
      for (const auto& name : harness::paper_roster()) {
        harness::ScenarioConfig cfg = scenario_from_flags(flags, task);
        cfg.iid = iid;
        cfg.budget = budget;
        harness::Experiment exp(cfg);
        auto strat = harness::make_strategy(name, cfg);
        row.push_back(exp.run(*strat).trace.final_loss());
      }
      table.append_row(row);
    }
    table.write(std::cout);
    std::cout << "\n";
  }
}

inline int figure_main(int argc, char** argv, const std::string& figure,
                       harness::Task task,
                       void (*fn)(const std::string&, harness::Task,
                                  const Flags&)) {
  try {
    Flags flags(argc, argv);
    obs::ObsSession session(flags, "warn");
    fn(figure, task, flags);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace fedl::bench
