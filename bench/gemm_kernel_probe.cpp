// Prints the GEMM kernel tier runtime dispatch resolves on this machine
// (honoring FEDL_GEMM_KERNEL and CPUID). run_benches.sh captures the output
// and stamps it into every emitted BENCH_*.json so committed numbers record
// which kernel produced them.
#include <cstdio>

#include "tensor/simd_dispatch.h"

int main() {
  std::printf("%s\n", fedl::gemm_kernel_name(fedl::active_gemm_kernel()));
  return 0;
}
