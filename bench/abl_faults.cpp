// Ablation A10: robustness to mid-epoch client failures. Sweeps the per-
// client dropout probability and compares FedL against FedAvg — failed
// clients cost a server timeout and contribute nothing past their failure
// iteration, so selection quality matters even more under churn.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "harness/experiment.h"
#include "obs/session.h"

int main(int argc, char** argv) {
  using namespace fedl;
  try {
    Flags flags(argc, argv);
    obs::ObsSession session(flags, "warn");

    const std::vector<double> rates =
        flags.get_double_list("dropout", {0.0, 0.1, 0.3});

    std::cout << "== Table: accuracy/time under mid-epoch dropout\n";
    TextTable table({"strategy", "dropout", "final_acc", "total_time_s",
                     "epochs"});
    for (const std::string name : {"fedl", "fedavg"}) {
      for (double rate : rates) {
        harness::ScenarioConfig cfg;
        cfg.num_clients =
            static_cast<std::size_t>(flags.get_int("clients", 12));
        cfg.n_min = 4;
        cfg.budget = flags.get_double("budget", 500.0);
        cfg.max_epochs =
            static_cast<std::size_t>(flags.get_int("epochs", 25));
        cfg.train_samples =
            static_cast<std::size_t>(flags.get_int("samples", 500));
        cfg.test_samples = 150;
        cfg.width_scale = flags.get_double("scale", 0.08);
        cfg.batch_cap = 16;
        cfg.eval_cap = 96;
        cfg.dane.sgd_steps = 2;
        cfg.faults.dropout_prob = rate;
        cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
        harness::Experiment exp(cfg);
        auto strat = harness::make_strategy(name, cfg);
        const auto res = exp.run(*strat);
        table.add_row({res.trace.algorithm, format_num(rate),
                       format_num(res.trace.final_accuracy()),
                       format_num(res.trace.total_time()),
                       std::to_string(res.epochs_run)});
      }
    }
    table.write(std::cout);
    std::cout << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << "\n";
    return 1;
  }
}
