// Ablation A2: empirical check of Theorem 2 / Corollary 1 — dynamic regret
// and dynamic fit should grow sub-linearly in the budget-induced horizon
// T_C (the theory gives O(T_C^{2/3}) for β = δ = O(T_C^{-1/3})).
//
// The bench sweeps the budget (which scales T_C), records Reg and Fit at
// each horizon, and reports the log-log growth slopes; slope < 1 is the
// sub-linearity the paper proves.
#include <cmath>
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "common/stats.h"
#include "harness/experiment.h"
#include "obs/session.h"

int main(int argc, char** argv) {
  using namespace fedl;
  try {
    Flags flags(argc, argv);
    obs::ObsSession session(flags, "warn");

    const std::vector<double> budgets =
        flags.get_double_list("budgets", {120, 240, 480, 960, 1920});

    harness::ScenarioConfig base;
    base.num_clients = static_cast<std::size_t>(flags.get_int("clients", 14));
    base.n_min = static_cast<std::size_t>(flags.get_int("n", 4));
    base.train_samples =
        static_cast<std::size_t>(flags.get_int("samples", 500));
    base.test_samples = 150;
    base.width_scale = flags.get_double("scale", 0.06);
    base.batch_cap = 16;
    base.eval_cap = 96;
    base.dane.sgd_steps = 2;
    base.max_epochs = static_cast<std::size_t>(flags.get_int("epochs", 120));
    base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

    std::cout << "== Series: A2 regret-fit / growth\n";
    CsvTable table;
    table.add_column("budget");
    table.add_column("T_C");
    table.add_column("regret");
    table.add_column("fit");
    table.add_column("regret_per_epoch");
    table.add_column("V_phi");
    table.add_column("V_h");
    table.add_column("thm2_regret_bound");
    table.add_column("thm2_fit_bound");

    // Assumption-constant estimates for the scenario scale (latencies are a
    // few seconds, K ≈ n clients per epoch, losses O(1)).
    core::TheoremConstants tc_consts;
    tc_consts.g_f = 10.0;
    tc_consts.g_h = 5.0;
    tc_consts.radius = 4.0;
    tc_consts.xi = 20.0;

    // Corollary 1's sub-linearity is relative to the comparator path length
    // V({Φ*_t}): with heavy availability churn V(Φ*) itself grows linearly
    // and the bound is Θ(T^{4/3}) — regret may legitimately be linear. We
    // therefore sweep two environments: the default dynamic one and a
    // stable one (full availability) where the comparator moves less.
    struct Sweep {
      const char* label;
      double availability;
    };
    for (const Sweep sweep : {Sweep{"dynamic", 0.8}, Sweep{"stable", 1.0}}) {
      std::cout << "-- Environment: " << sweep.label << "\n";
      CsvTable sweep_table = table;  // fresh copy of the empty column set
      std::vector<double> horizons, regrets, fits;
      for (double budget : budgets) {
        harness::ScenarioConfig cfg = base;
        cfg.budget = budget;
        cfg.availability = sweep.availability;
        harness::Experiment exp(cfg);
        auto strat = harness::make_strategy("fedl", cfg);
        const auto res = exp.run(*strat);
        const double tc = static_cast<double>(res.epochs_run);
        const double reg = std::max(res.regret.regret(), 1e-9);
        const double fit = std::max(res.regret.fit(), 1e-9);
        const double bound = core::theorem2_regret_bound(
            tc_consts, res.regret.v_phi(), res.regret.v_h(),
            res.regret.v_h_step_max(), tc);
        const double fit_bound =
            core::theorem2_fit_bound(tc_consts, res.regret.v_h_step_max());
        sweep_table.append_row({budget, tc, reg, fit,
                                reg / std::max(tc, 1.0), res.regret.v_phi(),
                                res.regret.v_h(), bound, fit_bound});
        horizons.push_back(tc);
        regrets.push_back(reg);
        fits.push_back(fit);
      }
      sweep_table.write(std::cout);

      std::cout << "\n== Table: log-log growth slopes, " << sweep.label
                << " (sub-linear < 1)\n";
      TextTable slopes({"quantity", "slope", "paper_bound"});
      slopes.add_row({"regret", format_num(loglog_slope(horizons, regrets)),
                      "O(max{V_phi, T^2/3} T^1/3)"});
      slopes.add_row({"fit", format_num(loglog_slope(horizons, fits)),
                      "O(T^2/3) -> 0.67"});
      slopes.write(std::cout);
      std::cout << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << "\n";
    return 1;
  }
}
