// Figure 2: accuracy vs training time, Fashion-MNIST-like task, IID and
// non-IID. Also emits the paper's in-text tables (accuracy after a fixed
// training time; completion time to a target accuracy and FedL's saving).
//
// The eight (algorithm, setting) cells are independent trials: `--jobs 8`
// runs them concurrently with identical output (see fig_common.h).
#include "fig_common.h"

int main(int argc, char** argv) {
  return fedl::bench::figure_main(argc, argv, "Fig2 FMNIST acc-vs-time",
                                  fedl::harness::Task::kFmnistLike,
                                  fedl::bench::accuracy_vs_time_figure);
}
