// Ablation A1: RDCS (Algorithm 2, dependent rounding) versus independent
// rounding — the comparison motivating §4.4.
//
// Part 1 isolates the rounding algorithms: marginal preservation (Theorem 3)
// and the variance of the realized participation count.
// Part 2 runs the full FedL pipeline with each rounding mode and reports the
// end-to-end effect on completion time and accuracy.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/rounding.h"
#include "fig_common.h"
#include "obs/session.h"

namespace fedl {
namespace {

void rounding_statistics(std::uint64_t seed) {
  std::cout << "== Table: rounding statistics (K=12 fractions, 20000 trials)\n";
  Rng gen(seed);
  std::vector<double> fractions(12);
  for (auto& f : fractions) f = gen.uniform(0.05, 0.95);
  double target = 0.0;
  for (double f : fractions) target += f;

  TextTable table({"method", "mean_sum", "stddev_sum", "max_marginal_err"});
  for (const bool dependent : {true, false}) {
    Rng rng(seed + 1);
    RunningStat sum_stat;
    std::vector<double> marginal(fractions.size(), 0.0);
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
      const auto r = dependent ? core::rdcs_round(fractions, rng)
                               : core::independent_round(fractions, rng);
      int s = 0;
      for (std::size_t k = 0; k < r.size(); ++k) {
        s += r[k];
        marginal[k] += r[k];
      }
      sum_stat.add(s);
    }
    double max_err = 0.0;
    for (std::size_t k = 0; k < fractions.size(); ++k)
      max_err = std::max(max_err,
                         std::abs(marginal[k] / trials - fractions[k]));
    table.add_row({dependent ? "RDCS" : "independent",
                   format_num(sum_stat.mean()), format_num(sum_stat.stddev()),
                   format_num(max_err)});
  }
  table.write(std::cout);
  std::cout << "-- target sum: " << format_num(target) << "\n\n";
}

void end_to_end(const Flags& flags) {
  harness::ScenarioConfig cfg =
      bench::scenario_from_flags(flags, harness::Task::kFmnistLike);
  harness::Experiment exp(cfg);
  std::vector<fl::TrainTrace> traces;
  for (const std::string name : {"fedl", "fedl-ind"}) {
    auto strat = harness::make_strategy(name, cfg);
    auto res = exp.run(*strat);
    res.trace.algorithm = (name == "fedl") ? "FedL(RDCS)" : "FedL(indep)";
    traces.push_back(std::move(res.trace));
  }
  for (const auto& t : traces)
    harness::print_trace_series(std::cout, "A1 rounding", t.algorithm, t);

  std::cout << "== Table: participation-count stability per epoch\n";
  TextTable table({"method", "mean_selected", "stddev_selected", "final_acc"});
  for (const auto& t : traces) {
    RunningStat sel;
    for (const auto& r : t.records) sel.add(static_cast<double>(r.num_selected));
    table.add_row({t.algorithm, format_num(sel.mean()),
                   format_num(sel.stddev()), format_num(t.final_accuracy())});
  }
  table.write(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace fedl

int main(int argc, char** argv) {
  try {
    fedl::Flags flags(argc, argv);
    fedl::obs::ObsSession session(flags, "warn");
    fedl::rounding_statistics(
        static_cast<std::uint64_t>(flags.get_int("seed", 7)));
    fedl::end_to_end(flags);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << "\n";
    return 1;
  }
}
