// Ablation A12: kill the epoch barrier. Event-driven execution (DESIGN.md
// §12) against lockstep at EQUAL budget on the Fig. 6 FMNIST setting —
// identical seeds, datasets, latency model and spend; the only difference is
// that the event engine aggregates on FedBuff-style buffer flushes instead
// of waiting for each cohort's straggler. Sweeps the buffer size K and the
// staleness-damping exponent a and reports, per cell, the simulated
// wall-clock to reach the lockstep run's final accuracy. The headline
// speedup is lockstep time-to-target over the best event-mode
// time-to-target; run_benches stamps the JSON into BENCH_async.json.
//
//   abl_async --ks=2,4,8 --staleness-exps=0,0.5 --budget=900 \
//             --json-out=BENCH_async.json
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <vector>

#include "common/csv.h"
#include "fig_common.h"
#include "obs/json_writer.h"

namespace fedl::bench {
namespace {

struct Cell {
  bool async = false;
  std::size_t buffer_k = 0;      // 0 for the lockstep baseline
  double staleness_exp = 0.0;
  double final_acc = 0.0;
  double final_loss = 0.0;
  double sim_time_s = 0.0;       // virtual wall-clock of the whole run
  double cost_spent = 0.0;
  std::size_t epochs = 0;
  double time_to_target = 0.0;   // TrainTrace::kNever if never reached
  double speedup = 0.0;          // lockstep time-to-target / this cell's
};

// kNever/NaN render as JSON null (JsonWriter's NaN convention).
double json_or_null(double v) {
  return std::isfinite(v) ? v : std::numeric_limits<double>::quiet_NaN();
}

void write_json(std::ostream& os, const std::vector<Cell>& cells,
                double target, double budget) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("bench").value("abl_async");
  w.key("target_accuracy").value(target);
  w.key("budget").value(budget);
  w.key("cells").begin_array();
  for (const Cell& c : cells) {
    w.begin_object();
    w.key("mode").value(c.async ? "event" : "lockstep");
    w.key("buffer_k").value(static_cast<std::uint64_t>(c.buffer_k));
    w.key("staleness_exp").value(c.staleness_exp);
    w.key("final_accuracy").value(c.final_acc);
    w.key("final_loss").value(c.final_loss);
    w.key("sim_time_s").value(c.sim_time_s);
    w.key("cost_spent").value(c.cost_spent);
    w.key("epochs").value(static_cast<std::uint64_t>(c.epochs));
    w.key("time_to_target_s").value(json_or_null(c.time_to_target));
    w.key("speedup_vs_lockstep").value(json_or_null(c.speedup));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

int async_main(int argc, char** argv) {
  Flags flags(argc, argv);
  obs::ObsSession session(flags, "warn");
  configure_scheduler_from_flags(flags);

  const std::vector<double> ks = flags.get_double_list("ks", {2, 4, 8});
  const std::vector<double> exps =
      flags.get_double_list("staleness-exps", {0.0, 0.5});
  const std::string json_out = flags.get_string("json-out", "");

  // Cell 0 is the lockstep baseline the sweep is normalized against.
  struct Spec {
    bool async = false;
    std::size_t k = 0;
    double a = 0.0;
  };
  std::vector<Spec> specs;
  specs.push_back(Spec{});
  for (double kd : ks)
    for (double a : exps)
      specs.push_back(Spec{true, static_cast<std::size_t>(kd), a});

  std::vector<std::unique_ptr<harness::RunResult>> results(specs.size());
  Scheduler::instance().run_trials(specs.size(), [&](std::size_t i) {
    harness::ScenarioConfig cfg =
        scenario_from_flags(flags, harness::Task::kFmnistLike);
    cfg.defer_trace = true;
    cfg.async.enabled = specs[i].async;
    if (specs[i].async) {
      cfg.async.buffer_k = specs[i].k;
      cfg.async.staleness_exponent = specs[i].a;
      // Event-mode cohorts are n_min-sized and cheap, so the budget horizon
      // T_C spans far more epochs than a lockstep run's; keep the budget —
      // not the lockstep epoch safety cap — as the binding stop.
      cfg.max_epochs = static_cast<std::size_t>(flags.get_int("epochs", 220));
    }
    harness::Experiment exp(cfg);
    auto strat =
        harness::make_strategy(flags.get_string("strategy", "fedl"), cfg);
    results[i] = std::make_unique<harness::RunResult>(exp.run(*strat));
  });
  commit_traces(flags.get_string("trace-out", ""), results);

  // Target: the accuracy the lockstep run actually ends at (override with
  // --target-acc) — "how much sooner does event mode get where the barrier
  // version finishes, on the same rent".
  const double target = flags.get_double(
      "target-acc", results.front()->trace.final_accuracy());
  std::vector<Cell> cells(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Cell& c = cells[i];
    const fl::TrainTrace& tr = results[i]->trace;
    c.async = specs[i].async;
    c.buffer_k = specs[i].k;
    c.staleness_exp = specs[i].a;
    c.final_acc = tr.final_accuracy();
    c.final_loss = tr.final_loss();
    c.sim_time_s = tr.total_time();
    c.cost_spent = tr.total_cost();
    c.epochs = results[i]->epochs_run;
    c.time_to_target = tr.time_to_accuracy(target);
  }
  const double lock_t = cells.front().time_to_target;
  for (Cell& c : cells)
    c.speedup = std::isfinite(c.time_to_target) && c.time_to_target > 0.0
                    ? lock_t / c.time_to_target
                    : 0.0;

  std::cout << "== Table: event-driven vs lockstep at equal budget "
            << "(target acc " << format_num(target) << ")\n";
  TextTable table({"mode", "K", "stale_exp", "final_acc", "vtime_s",
                   "t_to_target_s", "speedup", "epochs", "cost"});
  for (const Cell& c : cells) {
    table.add_row({c.async ? "event" : "lockstep",
                   c.async ? std::to_string(c.buffer_k) : "-",
                   c.async ? format_num(c.staleness_exp) : "-",
                   format_num(c.final_acc), format_num(c.sim_time_s),
                   std::isfinite(c.time_to_target)
                       ? format_num(c.time_to_target)
                       : "never",
                   format_num(c.speedup), std::to_string(c.epochs),
                   format_num(c.cost_spent)});
  }
  table.write(std::cout);

  const Cell* best = nullptr;
  for (const Cell& c : cells)
    if (c.async && (best == nullptr || c.speedup > best->speedup)) best = &c;
  if (best != nullptr)
    std::cout << "\nbest event cell: K=" << best->buffer_k
              << " a=" << best->staleness_exp << " speedup=" << best->speedup
              << "x (simulated wall-clock to lockstep's final accuracy)\n";

  if (!json_out.empty()) {
    std::ofstream f(json_out);
    write_json(f, cells, target, flags.get_double("budget", 900.0));
  } else {
    write_json(std::cout, cells, target, flags.get_double("budget", 900.0));
  }
  return 0;
}

}  // namespace
}  // namespace fedl::bench

int main(int argc, char** argv) {
  try {
    return fedl::bench::async_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << "\n";
    return 1;
  }
}
