// Ablation A6: FDMA bandwidth allocation policy — equal share (the paper's
// assumption) versus inverse-rate weighting and the makespan-optimal
// min-max split. Reports (1) isolated per-epoch upload makespans over many
// channel draws and (2) the end-to-end effect on FedL's completion time.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "harness/experiment.h"
#include "net/bandwidth.h"
#include "obs/session.h"

int main(int argc, char** argv) {
  using namespace fedl;
  try {
    Flags flags(argc, argv);
    obs::ObsSession session(flags, "warn");

    const net::BandwidthPolicy policies[] = {
        net::BandwidthPolicy::kEqual, net::BandwidthPolicy::kInverseRate,
        net::BandwidthPolicy::kMinMaxLatency};

    // Part 1: isolated makespans across random channel epochs.
    std::cout << "== Table: upload makespan over 200 channel draws "
                 "(6 clients, 10 Mb update)\n";
    TextTable iso({"policy", "mean_makespan_s", "p95_makespan_s"});
    for (const auto policy : policies) {
      net::ChannelSpec spec;
      spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
      net::ChannelModel channel(12, spec);
      RunningStat stat;
      std::vector<double> makespans;
      for (int draw = 0; draw < 200; ++draw) {
        channel.advance_epoch();
        const auto alloc = net::allocate_bandwidth(
            channel, {0, 2, 4, 6, 8, 10}, 1e7, policy);
        stat.add(alloc.makespan_s);
        makespans.push_back(alloc.makespan_s);
      }
      iso.add_row({net::bandwidth_policy_name(policy),
                   format_num(stat.mean()),
                   format_num(percentile(makespans, 95))});
    }
    iso.write(std::cout);
    std::cout << "\n";

    // Part 2: end-to-end FedL runs under each policy.
    std::cout << "== Table: FedL end-to-end under each policy\n";
    TextTable e2e({"policy", "total_time_s", "final_acc", "epochs"});
    for (const auto policy : policies) {
      harness::ScenarioConfig cfg;
      cfg.num_clients = static_cast<std::size_t>(flags.get_int("clients", 12));
      cfg.n_min = 4;
      cfg.budget = flags.get_double("budget", 500.0);
      cfg.max_epochs = static_cast<std::size_t>(flags.get_int("epochs", 25));
      cfg.train_samples =
          static_cast<std::size_t>(flags.get_int("samples", 500));
      cfg.test_samples = 150;
      cfg.width_scale = flags.get_double("scale", 0.08);
      cfg.batch_cap = 16;
      cfg.eval_cap = 96;
      cfg.dane.sgd_steps = 2;
      cfg.bandwidth = policy;
      cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
      harness::Experiment exp(cfg);
      auto strat = harness::make_strategy("fedl", cfg);
      const auto res = exp.run(*strat);
      e2e.add_row({net::bandwidth_policy_name(policy),
                   format_num(res.trace.total_time()),
                   format_num(res.trace.final_accuracy()),
                   std::to_string(res.epochs_run)});
    }
    e2e.write(std::cout);
    std::cout << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << "\n";
    return 1;
  }
}
