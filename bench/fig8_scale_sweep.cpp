// Fig. 8 (extension): selection-layer scalability toward million-client
// rosters (ROADMAP open item 1).
//
// Sweeps the roster size M with the availability rate tuned so |E_t| stays
// near a fixed target (the FedCS regime: a huge installed base, a thin slice
// online per epoch), and times ONLY the selection layer — the lazy
// environment synthesizes observations in O(|E_t|), no engine runs, and the
// epoch outcome is a cheap synthetic so observe() gets realistic feedback.
// Each roster size runs twice: the dense prox solve (width 0, all of E_t)
// and the pruned solve (--width coordinates after heap-based top-k). The
// JSON report carries decide-latency and resident-state curves; run_benches
// stamps it into BENCH_scale.json.
//
//   fig8_scale_sweep --ms=1000,10000,100000,1000000 --et=1000 --width=64 \
//                    --epochs=6 --json-out=BENCH_scale.json
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/config.h"
#include "core/fedl_strategy.h"
#include "obs/json_writer.h"
#include "obs/session.h"
#include "sim/environment.h"

namespace fedl::bench {
namespace {

struct Cell {
  std::size_t m = 0;            // roster size M
  std::size_t width = 0;        // pruning width (0 = dense path)
  double et_mean = 0.0;         // realized mean |E_t|
  double decide_ms_mean = 0.0;  // strategy.decide wall clock per epoch
  double decide_ms_min = 0.0;
  double advance_ms_mean = 0.0;  // lazy env epoch advance
  std::size_t resident_bytes = 0;  // learner pooled-state footprint
  std::size_t active_clients = 0;  // clients holding a pool slot
  std::size_t epochs = 0;
  double selected_mean = 0.0;
};

Cell run_cell(std::size_t m, double avail_p, std::size_t width,
              std::size_t epochs, std::size_t n_min, std::uint64_t seed) {
  sim::EnvironmentSpec spec;
  spec.lazy_sampling = true;
  spec.num_clients = m;
  spec.expected_participants = n_min;
  spec.device.availability_prob = avail_p;
  spec.device.seed = seed * 31 + 7;
  sim::EdgeEnvironment env(spec);

  core::FedLConfig fc;
  fc.learner.n_min = n_min;
  fc.learner.selection_width = width;
  fc.seed = seed * 61 + 37;
  core::FedLStrategy strategy(m, fc);
  // Effectively unconstrained: the pacing cap, not the remainder, governs —
  // the sweep measures latency, not budget behavior.
  core::BudgetLedger ledger(1e15);

  Cell cell;
  cell.m = m;
  cell.width = width;
  cell.epochs = epochs;
  cell.decide_ms_min = 1e300;
  using clock = std::chrono::steady_clock;
  for (std::size_t t = 0; t < epochs; ++t) {
    const auto a0 = clock::now();
    const sim::EpochContext& ctx = env.advance_epoch();
    const auto a1 = clock::now();
    core::Decision dec = strategy.decide(ctx, ledger);
    const auto a2 = clock::now();

    const double adv_ms =
        std::chrono::duration<double, std::milli>(a1 - a0).count();
    const double dec_ms =
        std::chrono::duration<double, std::milli>(a2 - a1).count();
    cell.advance_ms_mean += adv_ms;
    cell.decide_ms_mean += dec_ms;
    cell.decide_ms_min = std::min(cell.decide_ms_min, dec_ms);
    cell.et_mean += static_cast<double>(ctx.available.size());
    cell.selected_mean += static_cast<double>(dec.selected.size());

    // Synthetic realized epoch: every selected client completes, with mild
    // per-client variation so the estimate EMAs do real work.
    fl::EpochOutcome out;
    out.epoch = ctx.epoch;
    out.selected = dec.selected;
    out.num_iterations = std::max<std::size_t>(1, dec.num_iterations);
    double cost = 0.0;
    for (std::size_t i = 0; i < dec.selected.size(); ++i) {
      const sim::ClientObservation* obs = ctx.find(dec.selected[i]);
      cost += obs != nullptr ? obs->cost : 0.0;
      out.client_eta.push_back(0.4 + 0.2 * static_cast<double>(i % 3));
      out.client_loss_reduction.push_back(0.02 +
                                          0.01 * static_cast<double>(i % 5));
      out.client_completed_iters.push_back(out.num_iterations);
    }
    out.cost = cost;
    out.train_loss_all = 2.303 / (1.0 + 0.05 * static_cast<double>(t));
    ledger.charge(cost);
    strategy.observe(ctx, dec, out);
  }
  const double n = static_cast<double>(epochs);
  cell.advance_ms_mean /= n;
  cell.decide_ms_mean /= n;
  cell.et_mean /= n;
  cell.selected_mean /= n;
  cell.resident_bytes = strategy.learner().resident_bytes();
  cell.active_clients = strategy.learner().active_clients();
  return cell;
}

void write_json(std::ostream& os, const std::vector<Cell>& cells,
                std::size_t et_target, std::size_t width) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("bench").value("fig8_scale_sweep");
  w.key("et_target").value(static_cast<std::uint64_t>(et_target));
  w.key("pruning_width").value(static_cast<std::uint64_t>(width));
  w.key("cells").begin_array();
  for (const Cell& c : cells) {
    w.begin_object();
    w.key("num_clients").value(static_cast<std::uint64_t>(c.m));
    w.key("selection_width").value(static_cast<std::uint64_t>(c.width));
    w.key("epochs").value(static_cast<std::uint64_t>(c.epochs));
    w.key("et_mean").value(c.et_mean);
    w.key("selected_mean").value(c.selected_mean);
    w.key("advance_ms_mean").value(c.advance_ms_mean);
    w.key("decide_ms_mean").value(c.decide_ms_mean);
    w.key("decide_ms_min").value(c.decide_ms_min);
    w.key("resident_bytes").value(static_cast<std::uint64_t>(c.resident_bytes));
    w.key("active_clients").value(static_cast<std::uint64_t>(c.active_clients));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

int scale_main(int argc, char** argv) {
  Flags flags(argc, argv);
  obs::ObsSession session(flags, "warn");
  const std::vector<double> ms_d =
      flags.get_double_list("ms", {1e3, 1e4, 1e5, 1e6});
  const std::size_t et_target =
      static_cast<std::size_t>(flags.get_int("et", 1000));
  const std::size_t width =
      static_cast<std::size_t>(flags.get_int("width", 64));
  const std::size_t epochs =
      static_cast<std::size_t>(flags.get_int("epochs", 6));
  const std::size_t n_min = static_cast<std::size_t>(flags.get_int("n", 8));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_out = flags.get_string("json-out", "");

  std::vector<Cell> cells;
  for (double md : ms_d) {
    const std::size_t m = static_cast<std::size_t>(md);
    // Keep |E_t| near the target regardless of M (thin online slice).
    const double p = std::min(
        1.0, static_cast<double>(et_target) / static_cast<double>(m));
    for (std::size_t w : {std::size_t{0}, width}) {
      if (w != 0 && w >= et_target) continue;  // pruning would be a no-op
      cells.push_back(run_cell(m, p, w, epochs, n_min, seed));
      const Cell& c = cells.back();
      std::cout << "M=" << c.m << " width=" << c.width
                << " |E_t|=" << c.et_mean
                << " decide_ms=" << c.decide_ms_mean
                << " advance_ms=" << c.advance_ms_mean
                << " resident_kb=" << c.resident_bytes / 1024.0
                << " active=" << c.active_clients << "\n";
    }
  }

  // Headline ratio: dense vs pruned decide latency at the largest M that
  // ran both paths.
  for (auto it = cells.rbegin(); it != cells.rend(); ++it) {
    if (it->width == 0) continue;
    for (const Cell& d : cells) {
      if (d.m == it->m && d.width == 0) {
        std::cout << "speedup@M=" << d.m << ": "
                  << d.decide_ms_mean / it->decide_ms_mean << "x\n";
        break;
      }
    }
    break;
  }

  if (!json_out.empty()) {
    std::ofstream f(json_out);
    write_json(f, cells, et_target, width);
  } else {
    write_json(std::cout, cells, et_target, width);
  }
  return 0;
}

}  // namespace
}  // namespace fedl::bench

int main(int argc, char** argv) {
  try {
    return fedl::bench::scale_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << "\n";
    return 1;
  }
}
