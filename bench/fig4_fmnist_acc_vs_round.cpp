// Figure 4: accuracy vs federated round, Fashion-MNIST-like task, IID and
// non-IID, plus the "rounds to target accuracy" in-text table.
// `--jobs 8` runs the eight (algorithm, setting) trials concurrently with
// identical output (see fig_common.h).
#include "fig_common.h"

int main(int argc, char** argv) {
  return fedl::bench::figure_main(argc, argv, "Fig4 FMNIST acc-vs-round",
                                  fedl::harness::Task::kFmnistLike,
                                  fedl::bench::accuracy_vs_round_figure);
}
