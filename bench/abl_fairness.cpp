// Ablation A7: the selection-fairness extension (paper §7 future work).
// Compares vanilla FedL, FedL with the fairness quota, and FedAvg (naturally
// fair through uniform sampling) on Jain's index of the per-client selection
// counts versus the latency/accuracy cost of spreading selections.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "core/fairness.h"
#include "core/fedl_strategy.h"
#include "harness/experiment.h"
#include "obs/session.h"

int main(int argc, char** argv) {
  using namespace fedl;
  try {
    Flags flags(argc, argv);
    obs::ObsSession session(flags, "warn");

    harness::ScenarioConfig cfg;
    cfg.num_clients = static_cast<std::size_t>(flags.get_int("clients", 12));
    cfg.n_min = 4;
    cfg.budget = flags.get_double("budget", 600.0);
    cfg.max_epochs = static_cast<std::size_t>(flags.get_int("epochs", 30));
    cfg.train_samples = static_cast<std::size_t>(flags.get_int("samples", 500));
    cfg.test_samples = 150;
    cfg.width_scale = flags.get_double("scale", 0.08);
    cfg.batch_cap = 16;
    cfg.eval_cap = 96;
    cfg.dane.sgd_steps = 2;
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    harness::Experiment exp(cfg);

    std::cout << "== Table: fairness vs efficiency\n";
    TextTable table(
        {"strategy", "jains_index", "total_time_s", "final_acc"});
    for (const std::string name : {"fedl", "fedl-fair", "fedavg"}) {
      auto strat = harness::make_strategy(name, cfg);
      const auto res = exp.run(*strat);
      std::string jain = "n/a";
      if (auto* fedl = dynamic_cast<core::FedLStrategy*>(strat.get())) {
        jain = format_num(
            core::jains_index(fedl->participation().selection_counts()));
      }
      table.add_row({res.trace.algorithm, jain,
                     format_num(res.trace.total_time()),
                     format_num(res.trace.final_accuracy())});
    }
    table.write(std::cout);
    std::cout << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << "\n";
    return 1;
  }
}
