// Figure 5: accuracy vs federated round, CIFAR-10-like task, IID and
// non-IID. `--jobs 8` runs the eight (algorithm, setting) trials
// concurrently with identical output (see fig_common.h).
#include "fig_common.h"

int main(int argc, char** argv) {
  return fedl::bench::figure_main(argc, argv, "Fig5 CIFAR acc-vs-round",
                                  fedl::harness::Task::kCifarLike,
                                  fedl::bench::accuracy_vs_round_figure);
}
