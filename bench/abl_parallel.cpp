// Ablation A11: wall-clock speedup of the parallel per-client training
// fan-out. Runs identical 20-client full-participation epochs at several
// thread counts, reports per-epoch wall time and speedup over the serial
// path, and cross-checks that every thread count produced bit-identical
// global parameters (the engine's determinism guarantee).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/engine.h"
#include "nn/factory.h"
#include "obs/session.h"
#include "parallel/scheduler.h"

namespace {

struct EpochTiming {
  double seconds_per_epoch = 0.0;
  fedl::nn::ParamVec final_params;
};

EpochTiming time_epochs(std::size_t clients, std::size_t threads,
                        std::size_t epochs, std::size_t iterations,
                        std::size_t sgd_steps, double scale,
                        std::uint64_t seed) {
  using namespace fedl;
  auto data = data::make_synthetic_train_test(
      data::fmnist_like_spec(40 * clients, seed), 100);
  Rng prng(seed);
  auto part = data::partition_iid(data.train, clients, prng);
  sim::EnvironmentSpec es;
  es.num_clients = clients;
  es.device.seed = seed + 1;
  es.device.availability_prob = 1.0;
  es.channel.seed = seed + 2;
  es.online.seed = seed + 3;
  sim::EdgeEnvironment env(es, part);

  Rng mrng(seed + 4);
  nn::ModelSpec ms;
  ms.width_scale = scale;
  fl::EngineConfig ec;
  ec.batch_cap = 24;
  ec.eval_cap = 64;
  ec.dane.sgd_steps = sgd_steps;
  ec.num_threads = threads;
  ec.seed = seed + 5;
  fl::FlEngine engine(&data.train, &data.test, &env,
                      nn::make_fmnist_cnn(ms, mrng), ec);

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < epochs; ++e) {
    const auto& ctx = env.advance_epoch();
    std::vector<std::size_t> sel;
    for (const auto& o : ctx.available) sel.push_back(o.id);
    engine.run_epoch(sel, iterations);
  }
  const auto stop = std::chrono::steady_clock::now();

  EpochTiming out;
  out.seconds_per_epoch =
      std::chrono::duration<double>(stop - start).count() /
      static_cast<double>(epochs);
  out.final_params = engine.global_params();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedl;
  try {
    Flags flags(argc, argv);
    obs::ObsSession session(flags, "warn");

    const std::size_t clients =
        static_cast<std::size_t>(flags.get_int("clients", 20));
    const std::size_t epochs =
        static_cast<std::size_t>(flags.get_int("epochs", 4));
    const std::size_t iterations =
        static_cast<std::size_t>(flags.get_int("iters", 2));
    const std::size_t sgd_steps =
        static_cast<std::size_t>(flags.get_int("sgd-steps", 3));
    const double scale = flags.get_double("scale", 0.15);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 7));
    const std::vector<double> thread_list =
        flags.get_double_list("threads", {1, 2, 4, 8});

    // One trial at a time; the thread budget must cover the largest
    // requested fan-out so the sweep measures K workers, not a clipped
    // grant.
    std::size_t max_threads = 1;
    for (double td : thread_list)
      max_threads = std::max(max_threads, static_cast<std::size_t>(td));
    Scheduler::instance().configure(
        static_cast<std::size_t>(
            flags.get_int("thread-budget",
                          static_cast<std::int64_t>(max_threads))),
        1);

    std::cout << "== Table: epoch wall time vs num_threads (" << clients
              << " clients, " << iterations << " iters/epoch)\n";
    TextTable table({"threads", "s_per_epoch", "speedup", "bit_identical"});
    EpochTiming serial;
    for (double td : thread_list) {
      const std::size_t threads = static_cast<std::size_t>(td);
      const EpochTiming t = time_epochs(clients, threads, epochs, iterations,
                                        sgd_steps, scale, seed);
      const bool first = serial.final_params.empty();
      if (first) serial = t;
      const bool identical = t.final_params == serial.final_params;
      table.add_row({std::to_string(threads),
                     format_num(t.seconds_per_epoch),
                     format_num(serial.seconds_per_epoch /
                                t.seconds_per_epoch),
                     identical ? "yes" : "NO"});
      if (!identical) {
        std::cerr << "determinism violation at " << threads << " threads\n";
        return 1;
      }
    }
    table.write(std::cout);
    std::cout << "\n";

    // Trial-level cross-check: the same workload submitted as `--jobs`
    // concurrent scheduler trials (auto fan-out drawing from the shared
    // budget, stealing on) must reproduce the serial parameters
    // bit-for-bit.
    const std::size_t jobs =
        static_cast<std::size_t>(flags.get_int("jobs", 4));
    Scheduler::instance().configure(max_threads, jobs);
    std::vector<nn::ParamVec> per_trial(jobs);
    Scheduler::instance().run_trials(jobs, [&](std::size_t i) {
      per_trial[i] = time_epochs(clients, 0, epochs, iterations, sgd_steps,
                                 scale, seed)
                         .final_params;
    });
    for (std::size_t i = 0; i < jobs; ++i) {
      if (per_trial[i] != serial.final_params) {
        std::cerr << "determinism violation in concurrent trial " << i
                  << "\n";
        return 1;
      }
    }
    std::cout << "== Concurrent trials: " << jobs
              << " scheduler trials bit-identical to serial: yes\n\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << "\n";
    return 1;
  }
}
