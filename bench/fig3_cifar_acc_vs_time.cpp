// Figure 3: accuracy vs training time, CIFAR-10-like task, IID and non-IID.
// `--jobs 8` runs the eight (algorithm, setting) trials concurrently with
// identical output (see fig_common.h).
#include "fig_common.h"

int main(int argc, char** argv) {
  return fedl::bench::figure_main(argc, argv, "Fig3 CIFAR acc-vs-time",
                                  fedl::harness::Task::kCifarLike,
                                  fedl::bench::accuracy_vs_time_figure);
}
