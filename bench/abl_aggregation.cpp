// Ablation A8: the server aggregation denominator — the paper's formula
// w += (1/|E_t|)·Σ x_k d_k (average over *available* clients) versus the
// standard selected-mean w += (1/|S_t|)·Σ d_k (DESIGN.md §4 documents why
// the library defaults to the latter). Also contrasts the paper roster under
// the paper rule so the orderings can be compared.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "harness/experiment.h"
#include "obs/session.h"

int main(int argc, char** argv) {
  using namespace fedl;
  try {
    Flags flags(argc, argv);
    obs::ObsSession session(flags, "warn");

    harness::ScenarioConfig base;
    base.num_clients = static_cast<std::size_t>(flags.get_int("clients", 12));
    base.n_min = 4;
    base.budget = flags.get_double("budget", 500.0);
    base.max_epochs = static_cast<std::size_t>(flags.get_int("epochs", 25));
    base.train_samples =
        static_cast<std::size_t>(flags.get_int("samples", 500));
    base.test_samples = 150;
    base.width_scale = flags.get_double("scale", 0.08);
    base.batch_cap = 16;
    base.eval_cap = 96;
    base.dane.sgd_steps = 2;
    base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

    std::cout << "== Table: aggregation rule x strategy\n";
    TextTable table({"strategy", "rule", "final_acc", "final_loss",
                     "rounds_to_acc_0.5"});
    for (const std::string name : {"fedl", "fedavg"}) {
      for (const auto rule : {fl::AggregationRule::kSelectedMean,
                              fl::AggregationRule::kPaperMean}) {
        harness::ScenarioConfig cfg = base;
        cfg.aggregation = rule;
        harness::Experiment exp(cfg);
        auto strat = harness::make_strategy(name, cfg);
        const auto res = exp.run(*strat);
        const double rounds = res.trace.rounds_to_accuracy(0.5);
        table.add_row(
            {res.trace.algorithm,
             rule == fl::AggregationRule::kPaperMean ? "paper 1/|E_t|"
                                                     : "selected 1/|S_t|",
             format_num(res.trace.final_accuracy()),
             format_num(res.trace.final_loss()),
             std::isinf(rounds) ? "never" : format_num(rounds)});
      }
    }
    table.write(std::cout);
    std::cout << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << "\n";
    return 1;
  }
}
