// Figure 6: budget impact for the Fashion-MNIST-like task — final training
// loss per algorithm as the long-term budget C is swept, IID and non-IID.
// The grid is 2 settings × |budgets| × 4 algorithms independent trials;
// `--jobs N` runs N of them concurrently with identical output.
#include "fig_common.h"

int main(int argc, char** argv) {
  return fedl::bench::figure_main(argc, argv, "Fig6 FMNIST budget",
                                  fedl::harness::Task::kFmnistLike,
                                  fedl::bench::budget_impact_figure);
}
