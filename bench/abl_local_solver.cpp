// Ablation A5: the local update rule — the paper's DANE surrogate versus
// FedProx (proximal only, Li et al. [15]) and plain local SGD (FedAvg [19]),
// plus the inner optimizer (SGD / Momentum / Adam). Shows why the paper
// anchors local descent on the broadcast global gradient.
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/logging.h"
#include "harness/experiment.h"
#include "obs/session.h"

int main(int argc, char** argv) {
  using namespace fedl;
  try {
    Flags flags(argc, argv);
    obs::ObsSession session(flags, "warn");

    harness::ScenarioConfig base;
    base.num_clients = static_cast<std::size_t>(flags.get_int("clients", 12));
    base.n_min = 4;
    base.budget = flags.get_double("budget", 500.0);
    base.max_epochs = static_cast<std::size_t>(flags.get_int("epochs", 25));
    base.train_samples =
        static_cast<std::size_t>(flags.get_int("samples", 500));
    base.test_samples = 150;
    base.width_scale = flags.get_double("scale", 0.08);
    base.batch_cap = 16;
    base.eval_cap = 96;
    base.iid = false;  // heterogeneity is where the rules differ
    base.dane.sgd_steps = 3;
    base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

    struct Variant {
      const char* label;
      fl::LocalUpdateRule rule;
      const char* optimizer;
    };
    const Variant variants[] = {
        {"DANE+sgd", fl::LocalUpdateRule::kDane, "sgd"},
        {"DANE+momentum", fl::LocalUpdateRule::kDane, "momentum"},
        {"DANE+adam", fl::LocalUpdateRule::kDane, "adam"},
        {"FedProx+sgd", fl::LocalUpdateRule::kFedProx, "sgd"},
        {"LocalSGD", fl::LocalUpdateRule::kSgd, "sgd"},
    };

    std::cout << "== Series: A5 local-solver / non-IID comparison\n";
    CsvTable table;
    table.add_column("variant");  // encoded as row index; names printed below
    table.add_column("final_acc");
    table.add_column("final_loss");
    table.add_column("total_time_s");
    table.add_column("rounds");

    TextTable names({"row", "variant"});
    int row = 0;
    for (const auto& v : variants) {
      harness::ScenarioConfig cfg = base;
      cfg.dane.rule = v.rule;
      cfg.dane.optimizer = v.optimizer;
      harness::Experiment exp(cfg);
      auto strat = harness::make_strategy("fedl", cfg);
      const auto res = exp.run(*strat);
      table.append_row({static_cast<double>(row),
                        res.trace.final_accuracy(), res.trace.final_loss(),
                        res.trace.total_time(),
                        res.trace.records.empty()
                            ? 0.0
                            : static_cast<double>(res.trace.records.back().round)});
      names.add_row({std::to_string(row), v.label});
      ++row;
    }
    table.write(std::cout);
    std::cout << "\n== Table: variant legend\n";
    names.write(std::cout);
    std::cout << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << "\n";
    return 1;
  }
}
