// Figure 7: budget impact for the CIFAR-10-like task. The grid is
// 2 settings × |budgets| × 4 algorithms independent trials; `--jobs N`
// runs N of them concurrently with identical output.
#include "fig_common.h"

int main(int argc, char** argv) {
  return fedl::bench::figure_main(argc, argv, "Fig7 CIFAR budget",
                                  fedl::harness::Task::kCifarLike,
                                  fedl::bench::budget_impact_figure);
}
