// Figure 7: budget impact for the CIFAR-10-like task.
#include "fig_common.h"

int main(int argc, char** argv) {
  return fedl::bench::figure_main(argc, argv, "Fig7 CIFAR budget",
                                  fedl::harness::Task::kCifarLike,
                                  fedl::bench::budget_impact_figure);
}
